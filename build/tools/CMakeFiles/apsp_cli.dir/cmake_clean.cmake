file(REMOVE_RECURSE
  "CMakeFiles/apsp_cli.dir/apsp_cli.cpp.o"
  "CMakeFiles/apsp_cli.dir/apsp_cli.cpp.o.d"
  "apsp_cli"
  "apsp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apsp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
