# Empty dependencies file for apsp_cli.
# This may be replaced when dependencies are built.
