file(REMOVE_RECURSE
  "CMakeFiles/gapsp_util.dir/args.cpp.o"
  "CMakeFiles/gapsp_util.dir/args.cpp.o.d"
  "CMakeFiles/gapsp_util.dir/common.cpp.o"
  "CMakeFiles/gapsp_util.dir/common.cpp.o.d"
  "CMakeFiles/gapsp_util.dir/table.cpp.o"
  "CMakeFiles/gapsp_util.dir/table.cpp.o.d"
  "CMakeFiles/gapsp_util.dir/thread_pool.cpp.o"
  "CMakeFiles/gapsp_util.dir/thread_pool.cpp.o.d"
  "libgapsp_util.a"
  "libgapsp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gapsp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
