# Empty dependencies file for gapsp_util.
# This may be replaced when dependencies are built.
