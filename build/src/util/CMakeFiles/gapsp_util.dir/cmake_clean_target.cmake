file(REMOVE_RECURSE
  "libgapsp_util.a"
)
