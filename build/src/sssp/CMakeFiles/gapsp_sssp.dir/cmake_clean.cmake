file(REMOVE_RECURSE
  "CMakeFiles/gapsp_sssp.dir/bellman_ford.cpp.o"
  "CMakeFiles/gapsp_sssp.dir/bellman_ford.cpp.o.d"
  "CMakeFiles/gapsp_sssp.dir/delta_stepping.cpp.o"
  "CMakeFiles/gapsp_sssp.dir/delta_stepping.cpp.o.d"
  "CMakeFiles/gapsp_sssp.dir/dijkstra.cpp.o"
  "CMakeFiles/gapsp_sssp.dir/dijkstra.cpp.o.d"
  "CMakeFiles/gapsp_sssp.dir/near_far.cpp.o"
  "CMakeFiles/gapsp_sssp.dir/near_far.cpp.o.d"
  "libgapsp_sssp.a"
  "libgapsp_sssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gapsp_sssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
