file(REMOVE_RECURSE
  "libgapsp_sssp.a"
)
