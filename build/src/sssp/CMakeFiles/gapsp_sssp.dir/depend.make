# Empty dependencies file for gapsp_sssp.
# This may be replaced when dependencies are built.
