# Empty compiler generated dependencies file for gapsp_sssp.
# This may be replaced when dependencies are built.
