file(REMOVE_RECURSE
  "libgapsp_core.a"
)
