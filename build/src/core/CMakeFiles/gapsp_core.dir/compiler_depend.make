# Empty compiler generated dependencies file for gapsp_core.
# This may be replaced when dependencies are built.
