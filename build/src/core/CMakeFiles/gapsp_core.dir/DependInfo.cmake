
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/apsp.cpp" "src/core/CMakeFiles/gapsp_core.dir/apsp.cpp.o" "gcc" "src/core/CMakeFiles/gapsp_core.dir/apsp.cpp.o.d"
  "/root/repo/src/core/apsp_common.cpp" "src/core/CMakeFiles/gapsp_core.dir/apsp_common.cpp.o" "gcc" "src/core/CMakeFiles/gapsp_core.dir/apsp_common.cpp.o.d"
  "/root/repo/src/core/component_solver.cpp" "src/core/CMakeFiles/gapsp_core.dir/component_solver.cpp.o" "gcc" "src/core/CMakeFiles/gapsp_core.dir/component_solver.cpp.o.d"
  "/root/repo/src/core/cost_model.cpp" "src/core/CMakeFiles/gapsp_core.dir/cost_model.cpp.o" "gcc" "src/core/CMakeFiles/gapsp_core.dir/cost_model.cpp.o.d"
  "/root/repo/src/core/device_kernels.cpp" "src/core/CMakeFiles/gapsp_core.dir/device_kernels.cpp.o" "gcc" "src/core/CMakeFiles/gapsp_core.dir/device_kernels.cpp.o.d"
  "/root/repo/src/core/dist_io.cpp" "src/core/CMakeFiles/gapsp_core.dir/dist_io.cpp.o" "gcc" "src/core/CMakeFiles/gapsp_core.dir/dist_io.cpp.o.d"
  "/root/repo/src/core/dist_store.cpp" "src/core/CMakeFiles/gapsp_core.dir/dist_store.cpp.o" "gcc" "src/core/CMakeFiles/gapsp_core.dir/dist_store.cpp.o.d"
  "/root/repo/src/core/incore_fw.cpp" "src/core/CMakeFiles/gapsp_core.dir/incore_fw.cpp.o" "gcc" "src/core/CMakeFiles/gapsp_core.dir/incore_fw.cpp.o.d"
  "/root/repo/src/core/minplus.cpp" "src/core/CMakeFiles/gapsp_core.dir/minplus.cpp.o" "gcc" "src/core/CMakeFiles/gapsp_core.dir/minplus.cpp.o.d"
  "/root/repo/src/core/multi_device.cpp" "src/core/CMakeFiles/gapsp_core.dir/multi_device.cpp.o" "gcc" "src/core/CMakeFiles/gapsp_core.dir/multi_device.cpp.o.d"
  "/root/repo/src/core/ooc_boundary.cpp" "src/core/CMakeFiles/gapsp_core.dir/ooc_boundary.cpp.o" "gcc" "src/core/CMakeFiles/gapsp_core.dir/ooc_boundary.cpp.o.d"
  "/root/repo/src/core/ooc_fw.cpp" "src/core/CMakeFiles/gapsp_core.dir/ooc_fw.cpp.o" "gcc" "src/core/CMakeFiles/gapsp_core.dir/ooc_fw.cpp.o.d"
  "/root/repo/src/core/ooc_johnson.cpp" "src/core/CMakeFiles/gapsp_core.dir/ooc_johnson.cpp.o" "gcc" "src/core/CMakeFiles/gapsp_core.dir/ooc_johnson.cpp.o.d"
  "/root/repo/src/core/path_extract.cpp" "src/core/CMakeFiles/gapsp_core.dir/path_extract.cpp.o" "gcc" "src/core/CMakeFiles/gapsp_core.dir/path_extract.cpp.o.d"
  "/root/repo/src/core/selector.cpp" "src/core/CMakeFiles/gapsp_core.dir/selector.cpp.o" "gcc" "src/core/CMakeFiles/gapsp_core.dir/selector.cpp.o.d"
  "/root/repo/src/core/verify.cpp" "src/core/CMakeFiles/gapsp_core.dir/verify.cpp.o" "gcc" "src/core/CMakeFiles/gapsp_core.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/gapsp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/gapsp_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gapsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sssp/CMakeFiles/gapsp_sssp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gapsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
