# Empty dependencies file for gapsp_graph.
# This may be replaced when dependencies are built.
