file(REMOVE_RECURSE
  "libgapsp_graph.a"
)
