file(REMOVE_RECURSE
  "CMakeFiles/gapsp_graph.dir/csr_graph.cpp.o"
  "CMakeFiles/gapsp_graph.dir/csr_graph.cpp.o.d"
  "CMakeFiles/gapsp_graph.dir/generators.cpp.o"
  "CMakeFiles/gapsp_graph.dir/generators.cpp.o.d"
  "CMakeFiles/gapsp_graph.dir/graph_stats.cpp.o"
  "CMakeFiles/gapsp_graph.dir/graph_stats.cpp.o.d"
  "CMakeFiles/gapsp_graph.dir/matrix_market.cpp.o"
  "CMakeFiles/gapsp_graph.dir/matrix_market.cpp.o.d"
  "CMakeFiles/gapsp_graph.dir/suite.cpp.o"
  "CMakeFiles/gapsp_graph.dir/suite.cpp.o.d"
  "libgapsp_graph.a"
  "libgapsp_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gapsp_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
