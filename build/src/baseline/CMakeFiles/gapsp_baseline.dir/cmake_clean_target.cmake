file(REMOVE_RECURSE
  "libgapsp_baseline.a"
)
