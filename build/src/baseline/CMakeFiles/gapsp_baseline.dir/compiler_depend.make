# Empty compiler generated dependencies file for gapsp_baseline.
# This may be replaced when dependencies are built.
