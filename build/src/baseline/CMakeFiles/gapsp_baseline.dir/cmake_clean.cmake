file(REMOVE_RECURSE
  "CMakeFiles/gapsp_baseline.dir/baselines.cpp.o"
  "CMakeFiles/gapsp_baseline.dir/baselines.cpp.o.d"
  "libgapsp_baseline.a"
  "libgapsp_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gapsp_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
