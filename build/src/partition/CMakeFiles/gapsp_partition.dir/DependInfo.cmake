
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/boundary.cpp" "src/partition/CMakeFiles/gapsp_partition.dir/boundary.cpp.o" "gcc" "src/partition/CMakeFiles/gapsp_partition.dir/boundary.cpp.o.d"
  "/root/repo/src/partition/kway.cpp" "src/partition/CMakeFiles/gapsp_partition.dir/kway.cpp.o" "gcc" "src/partition/CMakeFiles/gapsp_partition.dir/kway.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/gapsp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gapsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
