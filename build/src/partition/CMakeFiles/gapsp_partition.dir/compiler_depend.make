# Empty compiler generated dependencies file for gapsp_partition.
# This may be replaced when dependencies are built.
