file(REMOVE_RECURSE
  "libgapsp_partition.a"
)
