file(REMOVE_RECURSE
  "CMakeFiles/gapsp_partition.dir/boundary.cpp.o"
  "CMakeFiles/gapsp_partition.dir/boundary.cpp.o.d"
  "CMakeFiles/gapsp_partition.dir/kway.cpp.o"
  "CMakeFiles/gapsp_partition.dir/kway.cpp.o.d"
  "libgapsp_partition.a"
  "libgapsp_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gapsp_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
