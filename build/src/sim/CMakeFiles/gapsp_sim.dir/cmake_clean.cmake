file(REMOVE_RECURSE
  "CMakeFiles/gapsp_sim.dir/device.cpp.o"
  "CMakeFiles/gapsp_sim.dir/device.cpp.o.d"
  "CMakeFiles/gapsp_sim.dir/trace.cpp.o"
  "CMakeFiles/gapsp_sim.dir/trace.cpp.o.d"
  "libgapsp_sim.a"
  "libgapsp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gapsp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
