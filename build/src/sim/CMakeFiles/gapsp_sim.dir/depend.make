# Empty dependencies file for gapsp_sim.
# This may be replaced when dependencies are built.
