file(REMOVE_RECURSE
  "libgapsp_sim.a"
)
