
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/partition_test.cpp" "tests/CMakeFiles/partition_test.dir/partition_test.cpp.o" "gcc" "tests/CMakeFiles/partition_test.dir/partition_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gapsp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/gapsp_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/gapsp_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gapsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sssp/CMakeFiles/gapsp_sssp.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gapsp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gapsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
