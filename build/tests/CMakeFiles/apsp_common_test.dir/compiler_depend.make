# Empty compiler generated dependencies file for apsp_common_test.
# This may be replaced when dependencies are built.
