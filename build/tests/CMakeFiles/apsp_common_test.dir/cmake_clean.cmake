file(REMOVE_RECURSE
  "CMakeFiles/apsp_common_test.dir/apsp_common_test.cpp.o"
  "CMakeFiles/apsp_common_test.dir/apsp_common_test.cpp.o.d"
  "apsp_common_test"
  "apsp_common_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apsp_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
