file(REMOVE_RECURSE
  "CMakeFiles/ooc_johnson_test.dir/ooc_johnson_test.cpp.o"
  "CMakeFiles/ooc_johnson_test.dir/ooc_johnson_test.cpp.o.d"
  "ooc_johnson_test"
  "ooc_johnson_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ooc_johnson_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
