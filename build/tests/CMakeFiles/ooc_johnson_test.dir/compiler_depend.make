# Empty compiler generated dependencies file for ooc_johnson_test.
# This may be replaced when dependencies are built.
