file(REMOVE_RECURSE
  "CMakeFiles/ooc_boundary_test.dir/ooc_boundary_test.cpp.o"
  "CMakeFiles/ooc_boundary_test.dir/ooc_boundary_test.cpp.o.d"
  "ooc_boundary_test"
  "ooc_boundary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ooc_boundary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
