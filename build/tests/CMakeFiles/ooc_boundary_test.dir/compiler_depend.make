# Empty compiler generated dependencies file for ooc_boundary_test.
# This may be replaced when dependencies are built.
