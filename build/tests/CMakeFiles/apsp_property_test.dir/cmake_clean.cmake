file(REMOVE_RECURSE
  "CMakeFiles/apsp_property_test.dir/apsp_property_test.cpp.o"
  "CMakeFiles/apsp_property_test.dir/apsp_property_test.cpp.o.d"
  "apsp_property_test"
  "apsp_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apsp_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
