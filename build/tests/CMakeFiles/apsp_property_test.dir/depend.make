# Empty dependencies file for apsp_property_test.
# This may be replaced when dependencies are built.
