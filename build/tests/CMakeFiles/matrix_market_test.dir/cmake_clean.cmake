file(REMOVE_RECURSE
  "CMakeFiles/matrix_market_test.dir/matrix_market_test.cpp.o"
  "CMakeFiles/matrix_market_test.dir/matrix_market_test.cpp.o.d"
  "matrix_market_test"
  "matrix_market_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_market_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
