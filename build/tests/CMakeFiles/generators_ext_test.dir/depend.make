# Empty dependencies file for generators_ext_test.
# This may be replaced when dependencies are built.
