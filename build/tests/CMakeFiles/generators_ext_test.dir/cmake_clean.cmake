file(REMOVE_RECURSE
  "CMakeFiles/generators_ext_test.dir/generators_ext_test.cpp.o"
  "CMakeFiles/generators_ext_test.dir/generators_ext_test.cpp.o.d"
  "generators_ext_test"
  "generators_ext_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generators_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
