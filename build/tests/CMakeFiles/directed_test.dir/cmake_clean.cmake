file(REMOVE_RECURSE
  "CMakeFiles/directed_test.dir/directed_test.cpp.o"
  "CMakeFiles/directed_test.dir/directed_test.cpp.o.d"
  "directed_test"
  "directed_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/directed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
