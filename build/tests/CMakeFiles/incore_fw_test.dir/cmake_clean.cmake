file(REMOVE_RECURSE
  "CMakeFiles/incore_fw_test.dir/incore_fw_test.cpp.o"
  "CMakeFiles/incore_fw_test.dir/incore_fw_test.cpp.o.d"
  "incore_fw_test"
  "incore_fw_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incore_fw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
