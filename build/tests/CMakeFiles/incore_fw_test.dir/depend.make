# Empty dependencies file for incore_fw_test.
# This may be replaced when dependencies are built.
