file(REMOVE_RECURSE
  "CMakeFiles/dist_io_test.dir/dist_io_test.cpp.o"
  "CMakeFiles/dist_io_test.dir/dist_io_test.cpp.o.d"
  "dist_io_test"
  "dist_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
