file(REMOVE_RECURSE
  "CMakeFiles/component_solver_test.dir/component_solver_test.cpp.o"
  "CMakeFiles/component_solver_test.dir/component_solver_test.cpp.o.d"
  "component_solver_test"
  "component_solver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/component_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
