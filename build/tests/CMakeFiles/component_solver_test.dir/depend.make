# Empty dependencies file for component_solver_test.
# This may be replaced when dependencies are built.
