file(REMOVE_RECURSE
  "CMakeFiles/dist_store_test.dir/dist_store_test.cpp.o"
  "CMakeFiles/dist_store_test.dir/dist_store_test.cpp.o.d"
  "dist_store_test"
  "dist_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
