# Empty dependencies file for dist_store_test.
# This may be replaced when dependencies are built.
