file(REMOVE_RECURSE
  "CMakeFiles/path_extract_test.dir/path_extract_test.cpp.o"
  "CMakeFiles/path_extract_test.dir/path_extract_test.cpp.o.d"
  "path_extract_test"
  "path_extract_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_extract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
