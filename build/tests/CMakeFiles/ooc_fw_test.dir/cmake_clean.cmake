file(REMOVE_RECURSE
  "CMakeFiles/ooc_fw_test.dir/ooc_fw_test.cpp.o"
  "CMakeFiles/ooc_fw_test.dir/ooc_fw_test.cpp.o.d"
  "ooc_fw_test"
  "ooc_fw_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ooc_fw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
