file(REMOVE_RECURSE
  "CMakeFiles/minplus_test.dir/minplus_test.cpp.o"
  "CMakeFiles/minplus_test.dir/minplus_test.cpp.o.d"
  "minplus_test"
  "minplus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minplus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
