file(REMOVE_RECURSE
  "CMakeFiles/selector_tour.dir/selector_tour.cpp.o"
  "CMakeFiles/selector_tour.dir/selector_tour.cpp.o.d"
  "selector_tour"
  "selector_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selector_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
