file(REMOVE_RECURSE
  "CMakeFiles/social_centrality.dir/social_centrality.cpp.o"
  "CMakeFiles/social_centrality.dir/social_centrality.cpp.o.d"
  "social_centrality"
  "social_centrality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_centrality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
