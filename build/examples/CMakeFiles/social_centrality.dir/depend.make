# Empty dependencies file for social_centrality.
# This may be replaced when dependencies are built.
