file(REMOVE_RECURSE
  "CMakeFiles/scaleout_trace.dir/scaleout_trace.cpp.o"
  "CMakeFiles/scaleout_trace.dir/scaleout_trace.cpp.o.d"
  "scaleout_trace"
  "scaleout_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaleout_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
