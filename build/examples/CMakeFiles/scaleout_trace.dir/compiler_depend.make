# Empty compiler generated dependencies file for scaleout_trace.
# This may be replaced when dependencies are built.
