# Empty dependencies file for bench_sssp_kernel_ablation.
# This may be replaced when dependencies are built.
