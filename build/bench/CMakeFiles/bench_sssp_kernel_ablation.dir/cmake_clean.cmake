file(REMOVE_RECURSE
  "CMakeFiles/bench_sssp_kernel_ablation.dir/bench_sssp_kernel_ablation.cpp.o"
  "CMakeFiles/bench_sssp_kernel_ablation.dir/bench_sssp_kernel_ablation.cpp.o.d"
  "bench_sssp_kernel_ablation"
  "bench_sssp_kernel_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sssp_kernel_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
