file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_literature.dir/bench_fig4_literature.cpp.o"
  "CMakeFiles/bench_fig4_literature.dir/bench_fig4_literature.cpp.o.d"
  "bench_fig4_literature"
  "bench_fig4_literature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_literature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
