# Empty dependencies file for bench_fig4_literature.
# This may be replaced when dependencies are built.
