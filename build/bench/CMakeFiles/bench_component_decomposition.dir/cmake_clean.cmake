file(REMOVE_RECURSE
  "CMakeFiles/bench_component_decomposition.dir/bench_component_decomposition.cpp.o"
  "CMakeFiles/bench_component_decomposition.dir/bench_component_decomposition.cpp.o.d"
  "bench_component_decomposition"
  "bench_component_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_component_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
