# Empty dependencies file for bench_component_decomposition.
# This may be replaced when dependencies are built.
