# Empty dependencies file for bench_fig6_model_v100.
# This may be replaced when dependencies are built.
