# Empty dependencies file for bench_multi_gpu_scaling.
# This may be replaced when dependencies are built.
