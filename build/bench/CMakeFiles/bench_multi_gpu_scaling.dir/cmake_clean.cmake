file(REMOVE_RECURSE
  "CMakeFiles/bench_multi_gpu_scaling.dir/bench_multi_gpu_scaling.cpp.o"
  "CMakeFiles/bench_multi_gpu_scaling.dir/bench_multi_gpu_scaling.cpp.o.d"
  "bench_multi_gpu_scaling"
  "bench_multi_gpu_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multi_gpu_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
