file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_small_separator.dir/bench_fig2_small_separator.cpp.o"
  "CMakeFiles/bench_fig2_small_separator.dir/bench_fig2_small_separator.cpp.o.d"
  "bench_fig2_small_separator"
  "bench_fig2_small_separator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_small_separator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
