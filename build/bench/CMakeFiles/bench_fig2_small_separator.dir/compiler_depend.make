# Empty compiler generated dependencies file for bench_fig2_small_separator.
# This may be replaced when dependencies are built.
