# Empty dependencies file for bench_table4_large_graphs.
# This may be replaced when dependencies are built.
