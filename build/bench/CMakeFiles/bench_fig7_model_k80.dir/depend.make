# Empty dependencies file for bench_fig7_model_k80.
# This may be replaced when dependencies are built.
