file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_model_k80.dir/bench_fig7_model_k80.cpp.o"
  "CMakeFiles/bench_fig7_model_k80.dir/bench_fig7_model_k80.cpp.o.d"
  "bench_fig7_model_k80"
  "bench_fig7_model_k80.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_model_k80.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
