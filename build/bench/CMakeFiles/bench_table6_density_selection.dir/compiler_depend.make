# Empty compiler generated dependencies file for bench_table6_density_selection.
# This may be replaced when dependencies are built.
