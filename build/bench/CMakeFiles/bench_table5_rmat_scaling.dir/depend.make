# Empty dependencies file for bench_table5_rmat_scaling.
# This may be replaced when dependencies are built.
