# Empty compiler generated dependencies file for bench_incore_vs_ooc.
# This may be replaced when dependencies are built.
