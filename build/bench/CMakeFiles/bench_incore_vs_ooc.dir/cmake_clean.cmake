file(REMOVE_RECURSE
  "CMakeFiles/bench_incore_vs_ooc.dir/bench_incore_vs_ooc.cpp.o"
  "CMakeFiles/bench_incore_vs_ooc.dir/bench_incore_vs_ooc.cpp.o.d"
  "bench_incore_vs_ooc"
  "bench_incore_vs_ooc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_incore_vs_ooc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
