# Empty dependencies file for bench_fig3_sparse.
# This may be replaced when dependencies are built.
