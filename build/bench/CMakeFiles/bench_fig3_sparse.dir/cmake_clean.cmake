file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_sparse.dir/bench_fig3_sparse.cpp.o"
  "CMakeFiles/bench_fig3_sparse.dir/bench_fig3_sparse.cpp.o.d"
  "bench_fig3_sparse"
  "bench_fig3_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
