// Benchmark of the compressed host↔device transfer path (DESIGN.md §14).
//
// For each graph family the paper's transfer argument cares about —
// kInf-dominated road-like (disjoint grid components), R-MAT, and connected
// road — this runs blocked out-of-core FW twice on a transfer-bound device
// (the overlap-ablation setting: the paper's PCIe link against a scaled
// part): once with `--transfer-compression off` (the PR-1 raw+overlap
// baseline) and once with the compressed path, at equal n_d, and measures
// the modeled end-to-end speedup, the wire ratio actually achieved on the
// link, decode-kernel busy time, and full bit-parity of the produced
// distance stores across off/on/auto. Writes BENCH_transfer_compression.json.
//
// A separate row forces compression ON for a high-entropy workload (wide
// random weights, so distance tiles carry near-uniform low bytes) where the
// per-tile raw fallback engages: the modeled overhead vs off must stay
// negligible, because the autotuned threshold only takes the compressed
// path when wire/link + raw/decode beats raw/link.
//
// Acceptance guards (ISSUE 8), checked when the flags are given:
//   --assert-min-speedup S   compressed vs raw+overlap on the kInf-heavy
//                            family must be ≥ S (ISSUE 8 requires ≥ 1.5)
//   --assert-max-overhead P  forced-on overhead on the incompressible
//                            family must be ≤ P percent (ISSUE 8: ≤ 2)
// `--transfer-compression=auto|on|off` selects the compressed leg's mode
// (default auto; off degenerates to a self-comparison). Unknown values are
// hard errors: exit 2, matching the --kernel-variant convention.
// All flags accept `--flag=V` and `--flag V`.
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/ooc_fw.h"
#include "core/transfer_codec.h"
#include "graph/generators.h"
#include "util/common.h"
#include "util/rng.h"

namespace {

using namespace gapsp;
using namespace gapsp::bench;

struct Row {
  std::string family;
  vidx_t n = 0;
  int n_d = 0;
  double sim_off_s = 0.0;
  double sim_z_s = 0.0;
  double speedup = 0.0;
  std::uint64_t bytes_raw = 0;   ///< logical payload through the codec
  std::uint64_t bytes_wire = 0;  ///< bytes actually charged on the link
  double wire_ratio = 0.0;
  double decode_s = 0.0;
  long long decodes = 0;
  double hidden_frac = 0.0;  ///< of the compressed run
  bool bit_identical = false;
};

void write_json(const std::vector<Row>& rows, const std::string& path) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "  {\"family\": \"" << r.family << "\", \"n\": " << r.n
        << ", \"n_d\": " << r.n_d << ", \"sim_off_s\": " << r.sim_off_s
        << ", \"sim_z_s\": " << r.sim_z_s << ", \"speedup\": " << r.speedup
        << ", \"bytes_raw\": " << r.bytes_raw
        << ", \"bytes_wire\": " << r.bytes_wire
        << ", \"wire_ratio\": " << r.wire_ratio
        << ", \"decode_s\": " << r.decode_s << ", \"decodes\": " << r.decodes
        << ", \"hidden_frac\": " << r.hidden_frac
        << ", \"bit_identical\": " << (r.bit_identical ? "true" : "false")
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::cout << rows.size() << " rows -> " << path << "\n";
}

/// `components` disjoint side×side grids: road-like local structure with
/// (components−1)/components of all pairs unreachable — the kInf-dominated
/// regime the compressed wire path exists for (PR-5 measured 11.3× at rest).
graph::CsrGraph disjoint_grids(int components, vidx_t side,
                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<graph::Edge> edges;
  const vidx_t per = side * side;
  for (int c = 0; c < components; ++c) {
    const vidx_t base = static_cast<vidx_t>(c) * per;
    for (vidx_t r = 0; r < side; ++r) {
      for (vidx_t col = 0; col < side; ++col) {
        const vidx_t v = base + r * side + col;
        if (col + 1 < side) {
          edges.push_back({v, v + 1, static_cast<dist_t>(rng.next_in(1, 9))});
        }
        if (r + 1 < side) {
          edges.push_back(
              {v, v + side, static_cast<dist_t>(rng.next_in(1, 9))});
        }
      }
    }
  }
  return graph::CsrGraph::from_edges(static_cast<vidx_t>(components) * per,
                                     std::move(edges), true);
}

/// Full-matrix bit-parity between two solved stores, in stripes.
bool stores_bit_identical(const core::DistStore& a, const core::DistStore& b) {
  const vidx_t n = a.n();
  const vidx_t stripe = 64;
  std::vector<dist_t> ba(static_cast<std::size_t>(stripe) *
                         static_cast<std::size_t>(n));
  std::vector<dist_t> bb(ba.size());
  for (vidx_t r0 = 0; r0 < n; r0 += stripe) {
    const vidx_t rows = std::min<vidx_t>(stripe, n - r0);
    a.read_block(r0, 0, rows, n, ba.data(), static_cast<std::size_t>(n));
    b.read_block(r0, 0, rows, n, bb.data(), static_cast<std::size_t>(n));
    if (std::memcmp(ba.data(), bb.data(),
                    static_cast<std::size_t>(rows) * n * sizeof(dist_t)) !=
        0) {
      return false;
    }
  }
  return true;
}

struct Run {
  core::ApspMetrics metrics;
  std::unique_ptr<core::DistStore> store;
};

Run run_fw(const graph::CsrGraph& g, const core::ApspOptions& opts) {
  Run r;
  r.store = core::make_ram_store(g.num_vertices());
  r.metrics = core::ooc_floyd_warshall(g, opts, *r.store).metrics;
  return r;
}

Row run_family(const std::string& family, const graph::CsrGraph& g,
               const core::ApspOptions& base,
               core::TransferCompression mode) {
  Row row;
  row.family = family;
  row.n = g.num_vertices();

  auto off = base;
  off.transfer_compression = core::TransferCompression::kOff;
  auto z = base;
  z.transfer_compression = mode;

  const Run r_off = run_fw(g, off);
  const Run r_z = run_fw(g, z);
  // Bit-parity must hold for every mode, including the one not timed here.
  auto aux = base;
  aux.transfer_compression = mode == core::TransferCompression::kOn
                                 ? core::TransferCompression::kAuto
                                 : core::TransferCompression::kOn;
  const Run r_aux = run_fw(g, aux);

  if (r_off.metrics.fw_num_blocks != r_z.metrics.fw_num_blocks) {
    std::cerr << "FAIL: " << family << " n_d changed with compression ("
              << r_off.metrics.fw_num_blocks << " vs "
              << r_z.metrics.fw_num_blocks << ")\n";
    std::exit(1);
  }
  row.n_d = r_z.metrics.fw_num_blocks;
  row.sim_off_s = r_off.metrics.sim_seconds;
  row.sim_z_s = r_z.metrics.sim_seconds;
  row.speedup = row.sim_off_s / std::max(row.sim_z_s, 1e-12);
  row.bytes_raw = r_z.metrics.bytes_h2d_raw + r_z.metrics.bytes_d2h_raw;
  row.bytes_wire = r_z.metrics.bytes_h2d_wire + r_z.metrics.bytes_d2h_wire;
  row.wire_ratio = static_cast<double>(row.bytes_raw) /
                   std::max<double>(static_cast<double>(row.bytes_wire), 1.0);
  row.decode_s = r_z.metrics.decode_seconds;
  row.decodes = r_z.metrics.decodes;
  row.hidden_frac =
      r_z.metrics.transfer_seconds > 0.0
          ? r_z.metrics.hidden_transfer_seconds / r_z.metrics.transfer_seconds
          : 0.0;
  row.bit_identical = stores_bit_identical(*r_off.store, *r_z.store) &&
                      stores_bit_identical(*r_off.store, *r_aux.store);

  std::cout << family << ": n=" << row.n << ", n_d=" << row.n_d << ", "
            << ms(row.sim_off_s) << " ms raw -> " << ms(row.sim_z_s)
            << " ms compressed (" << Table::num(row.speedup, 2) << "x), wire "
            << (row.bytes_raw >> 10) << " KiB -> " << (row.bytes_wire >> 10)
            << " KiB (" << Table::num(row.wire_ratio, 1) << "x), decode "
            << ms(row.decode_s) << " ms in " << row.decodes << " kernels, "
            << Table::num(row.hidden_frac * 100.0, 1) << "% hidden, "
            << (row.bit_identical ? "bit-identical" : "MISMATCH") << "\n";
  return row;
}

double flag_value(int argc, char** argv, int& i, const char* name) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(argv[i], name, len) != 0) return -1.0;
  if (argv[i][len] == '=') return std::stod(argv[i] + len + 1);
  if (argv[i][len] == '\0' && i + 1 < argc) return std::stod(argv[++i]);
  return -1.0;
}

const char* flag_string(int argc, char** argv, int& i, const char* name) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(argv[i], name, len) != 0) return nullptr;
  if (argv[i][len] == '=') return argv[i] + len + 1;
  if (argv[i][len] == '\0' && i + 1 < argc) return argv[++i];
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  double min_speedup = 0.0;
  double max_overhead_pct = -1.0;
  auto mode = core::TransferCompression::kAuto;
  for (int i = 1; i < argc; ++i) {
    double v;
    const char* s;
    if ((s = flag_string(argc, argv, i, "--transfer-compression")) !=
        nullptr) {
      try {
        mode = core::parse_transfer_compression(s);
      } catch (const Error& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
      }
    } else if ((v = flag_value(argc, argv, i, "--assert-min-speedup")) >=
               0.0) {
      min_speedup = v;
    } else if ((v = flag_value(argc, argv, i, "--assert-max-overhead")) >=
               0.0) {
      max_overhead_pct = v;
    }
  }

  print_header(
      "Compressed transfer path — z1 wire vs raw, overlap on, equal n_d",
      "transfer term of Sec. III (the O(n_d*n^2) movement PR-1 only hides)");

  // Transfer-bound device (the overlap-ablation setting): the paper's PCIe
  // link against a scaled part, so the movement term carries the makespan
  // and the wire ratio translates into end-to-end time.
  auto tb = bench_options(bench_v100());
  tb.device.link_bandwidth /= 20.0;

  std::vector<Row> rows;
  // Eight disjoint 15×15 grids: n = 1800, 7/8 of all pairs at kInf — the
  // regime PR-5 measured at 11.3× at rest.
  rows.push_back(
      run_family("road_kinf", disjoint_grids(8, 15, 13), tb, mode));
  // R-MAT without forced connectivity (Graph500-style isolated-vertex tail).
  rows.push_back(run_family(
      "rmat",
      graph::make_rmat(11, 6000, 17, 0.57, 0.19, 0.19, /*connect=*/false),
      tb, mode));
  // Connected road: everything reachable, tiles compress on weight locality.
  rows.push_back(run_family("road", graph::make_road(40, 40, 11), tb, mode));

  // Forced-on overhead on a high-entropy workload: wide random weights make
  // distance tiles near-incompressible, the raw fallback engages, and the
  // modeled time must stay within noise of off. Default link (not the
  // transfer-bound trick): this prices the path's overhead, not its win.
  graph::WeightConfig wide;
  wide.max_weight = 7 << 20;
  auto incompressible = bench_options(bench_v100());
  Row inc = run_family(
      "incompressible",
      graph::make_erdos_renyi(700, 4200, 23, /*connect=*/true, wide),
      incompressible, core::TransferCompression::kOn);
  const double overhead_pct =
      (inc.sim_z_s - inc.sim_off_s) / std::max(inc.sim_off_s, 1e-12) * 100.0;
  std::cout << "forced-on overhead on incompressible input: "
            << Table::num(overhead_pct, 2) << "%\n";
  rows.push_back(inc);

  write_json(rows, "BENCH_transfer_compression.json");

  bool ok = true;
  for (const Row& r : rows) {
    if (!r.bit_identical) {
      std::cerr << "FAIL: " << r.family
                << " distances differ between compression modes\n";
      ok = false;
    }
  }
  if (min_speedup > 0.0 && rows[0].speedup < min_speedup) {
    std::cerr << "FAIL: road_kinf end-to-end speedup " << rows[0].speedup
              << " < " << min_speedup << "\n";
    ok = false;
  }
  if (max_overhead_pct >= 0.0 && overhead_pct > max_overhead_pct) {
    std::cerr << "FAIL: forced-on incompressible overhead " << overhead_pct
              << "% > " << max_overhead_pct << "%\n";
    ok = false;
  }
  if (!ok) return 1;
  if (min_speedup > 0.0 || max_overhead_pct >= 0.0) {
    std::cout << "asserts passed (min-speedup " << min_speedup
              << ", max-overhead " << max_overhead_pct << "%)\n";
  }
  return 0;
}
