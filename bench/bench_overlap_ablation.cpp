// Overlap ablation across all three out-of-core algorithms: for each
// algorithm and a representative workload, the serialized vs pipelined
// makespan plus the overlap-efficiency split the StreamPipeline surfaces —
// how much transfer time hid under concurrent kernels and how much stayed
// exposed on the critical path. Extends the paper's Fig. 8 (which ablates
// the boundary algorithm only) to blocked FW and Johnson, and shows the
// volume tax of double buffering: the pipelined FW keeps five resident
// blocks, so on sizes where that bumps n_d the overlap can lose.
// `--transfer-compression=auto|on|off` (default off here, so the table
// keeps measuring the PR-1 overlap engine in isolation) runs the whole
// ablation with the compressed wire path in that mode; unknown values exit 2.
#include <cstring>

#include "bench_common.h"

#include "core/ooc_boundary.h"
#include "core/ooc_fw.h"
#include "core/ooc_johnson.h"
#include "core/transfer_codec.h"
#include "graph/generators.h"

namespace {

using namespace gapsp;
using namespace gapsp::bench;

struct Row {
  std::string algo;
  std::string workload;
  core::ApspMetrics serial;
  core::ApspMetrics overlap;
};

void add(Table& t, const Row& r) {
  const double gain = 100.0 *
                      (r.serial.sim_seconds - r.overlap.sim_seconds) /
                      r.serial.sim_seconds;
  const double hidden_pct =
      r.overlap.transfer_seconds > 0
          ? 100.0 * r.overlap.hidden_transfer_seconds /
                r.overlap.transfer_seconds
          : 0.0;
  t.add_row({r.algo, r.workload, ms(r.serial.sim_seconds),
             ms(r.overlap.sim_seconds), Table::num(gain, 1),
             ms(r.overlap.hidden_transfer_seconds),
             ms(r.overlap.exposed_transfer_seconds),
             Table::num(hidden_pct, 1)});
}

}  // namespace

int main(int argc, char** argv) {
  auto wire_mode = core::TransferCompression::kOff;
  for (int i = 1; i < argc; ++i) {
    const char* val = nullptr;
    if (std::strncmp(argv[i], "--transfer-compression=", 23) == 0) {
      val = argv[i] + 23;
    } else if (std::strcmp(argv[i], "--transfer-compression") == 0 &&
               i + 1 < argc) {
      val = argv[++i];
    }
    if (val != nullptr) {
      try {
        wire_mode = core::parse_transfer_compression(val);
      } catch (const Error& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
      }
    }
  }

  print_header(
      "Overlap ablation — StreamPipeline on/off per algorithm",
      "Sec. IV / Fig. 8 (overlap +12.7%-29.1% on the boundary algorithm)");
  std::cout << "transfer compression: "
            << core::transfer_compression_name(wire_mode) << "\n";

  Table t({"algorithm", "workload", "serial (ms)", "overlap (ms)", "gain %",
           "hidden (ms)", "exposed (ms)", "hidden %"});

  // Transfer-bound device: the paper's PCIe link against a scaled part.
  auto tb = bench_options(bench_v100());
  tb.device.link_bandwidth /= 20.0;
  tb.transfer_compression = wire_mode;

  // --- blocked FW: equal-n_d size (overlap wins) and n_d-bump size
  // (volume tax; overlap can lose) ---
  for (const auto& [n, label] :
       {std::pair<vidx_t, const char*>{1200, "ER n=1200 (equal n_d)"},
        {1500, "ER n=1500 (n_d bump)"}}) {
    const auto g = graph::make_erdos_renyi(n, 6 * n, 4242);
    auto on = tb;
    auto off = tb;
    off.overlap_transfers = false;
    auto s1 = core::make_ram_store(n);
    auto s2 = core::make_ram_store(n);
    Row r;
    r.algo = "blocked FW";
    r.workload = label;
    r.serial = core::ooc_floyd_warshall(g, off, *s1).metrics;
    r.overlap = core::ooc_floyd_warshall(g, on, *s2).metrics;
    add(t, r);
  }

  // --- Johnson: compute-bound mesh (D2H hides fully) and transfer-bound ---
  {
    const auto g = graph::make_mesh(1500, 10, 4243);
    auto cb = bench_options(bench_v100());
    cb.transfer_compression = wire_mode;
    for (const auto& [opts, label] :
         {std::pair<core::ApspOptions, const char*>{cb,
                                                    "mesh (compute-bound)"},
          {tb, "mesh (transfer-bound)"}}) {
      auto on = opts;
      auto off = opts;
      off.overlap_transfers = false;
      auto s1 = core::make_ram_store(g.num_vertices());
      auto s2 = core::make_ram_store(g.num_vertices());
      Row r;
      r.algo = "Johnson";
      r.workload = label;
      r.serial = core::ooc_johnson(g, off, *s1).metrics;
      r.overlap = core::ooc_johnson(g, on, *s2).metrics;
      add(t, r);
    }
  }

  // --- boundary: the small-separator zoo (paper's Fig. 8 setting) ---
  for (const auto& e : graph::small_separator_zoo()) {
    auto on = bench_options(sim::DeviceSpec::v100_scaled(6u << 20));
    on.transfer_compression = wire_mode;
    auto off = on;
    off.overlap_transfers = false;
    auto s1 = core::make_ram_store(e.graph.num_vertices());
    auto s2 = core::make_ram_store(e.graph.num_vertices());
    Row r;
    r.algo = "boundary";
    r.workload = e.name;
    r.serial = core::ooc_boundary(e.graph, off, *s1).metrics;
    r.overlap = core::ooc_boundary(e.graph, on, *s2).metrics;
    add(t, r);
  }

  t.print(std::cout);
  std::cout << "\nhidden + exposed = total transfer seconds of the "
               "overlapped run; gain is serial vs overlapped makespan.\n"
               "Pinned staging high-water mark (overlapped FW on ER n=1200 "
               "spec): reported per run in ApspMetrics::pinned_peak_bytes.\n";
  return 0;
}
