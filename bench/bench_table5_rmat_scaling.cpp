// Table V: R-MAT scaling study on both devices. The paper sweeps R-MAT
// graphs from "output fits in GPU memory" to "output does not fit in CPU
// memory", always solved by Johnson's algorithm, and shows that the
// computational efficiency n·m/s stays stable as sizes grow — i.e. data
// movement does not take over.
#include "bench_common.h"

#include "core/ooc_johnson.h"
#include "graph/generators.h"

int main() {
  using namespace gapsp;
  using namespace gapsp::bench;

  print_header("Table V — R-MAT scaling on V100 and K80 (Johnson)",
               "Table V (n*m/s stays stable as sizes grow)");

  struct Setup {
    int scale;
    eidx_t edges;
  };
  // scale 9 (512 vertices: output fits the scaled device memory) up to
  // scale 12 (4096: output exceeds the Fig. 5 host-store budget).
  const Setup setups[] = {{9, 4000}, {10, 8000}, {11, 16000}, {12, 32000}};

  for (const auto& dev : {bench_v100(), bench_k80()}) {
    std::cout << "\n--- " << dev.name << " ---\n";
    Table t({"n", "m", "bat", "time (ms)", "n*m/s (1e9)"});
    const auto opts = bench_options(dev);
    for (const auto& s : setups) {
      const auto g = graph::make_rmat(s.scale, s.edges, 1000 + s.scale);
      auto store = core::make_ram_store(g.num_vertices());
      const auto r = core::ooc_johnson(g, opts, *store);
      const double nm = static_cast<double>(g.num_vertices()) *
                        static_cast<double>(g.num_edges());
      t.add_row({Table::count(g.num_vertices()),
                 Table::count(g.num_edges()),
                 std::to_string(r.metrics.johnson_batch_size),
                 ms(r.metrics.sim_seconds),
                 Table::num(nm / r.metrics.sim_seconds / 1e9, 2)});
    }
    t.print(std::cout);
  }
  std::cout << "\nstable n*m/s across rows (and V100 > K80) reproduces the "
               "paper's conclusion that\ndata movement does not dominate as "
               "sizes increase.\n";
  return 0;
}
