// Fig. 6: estimated vs actual execution times of the boundary algorithm and
// Johnson's algorithm on the small-separator graphs (V100). The paper's
// claim: the cost models track the real times closely, and the selection
// (boundary on every one of these graphs) is always correct.
#include "bench_common.h"

#include "core/cost_model.h"
#include "core/ooc_boundary.h"
#include "core/ooc_johnson.h"

namespace gapsp::bench {

int run_model_accuracy(const sim::DeviceSpec& dev, const char* figure,
                       const char* paper_note) {
  print_header(std::string(figure) +
                   " — estimated vs actual, boundary & Johnson, "
                   "small-separator graphs (" +
                   dev.name + ")",
               paper_note);

  const auto opts = bench_options(dev);
  Table t({"graph", "est boundary (ms)", "actual boundary (ms)",
           "est johnson (ms)", "actual johnson (ms)", "model picks",
           "faster is", "correct?"});
  int correct = 0, total = 0;
  for (const auto& e : graph::small_separator_zoo()) {
    const auto est_b = core::estimate_boundary(e.graph, opts);
    const auto est_j = core::estimate_johnson(e.graph, opts, 5);
    auto s1 = core::make_ram_store(e.graph.num_vertices());
    auto s2 = core::make_ram_store(e.graph.num_vertices());
    const auto act_b = core::ooc_boundary(e.graph, opts, *s1);
    const auto act_j = core::ooc_johnson(e.graph, opts, *s2);
    const bool model_boundary = est_b.feasible && est_b.total() < est_j.total();
    const bool actual_boundary =
        act_b.metrics.sim_seconds < act_j.metrics.sim_seconds;
    const bool ok = model_boundary == actual_boundary;
    correct += ok;
    ++total;
    t.add_row({e.name, ms(est_b.total()), ms(act_b.metrics.sim_seconds),
               ms(est_j.total()), ms(act_j.metrics.sim_seconds),
               model_boundary ? "boundary" : "johnson",
               actual_boundary ? "boundary" : "johnson", ok ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\nselector correct on " << correct << "/" << total
            << " graphs (paper: always correct).\n";
  return correct == total ? 0 : 1;
}

}  // namespace gapsp::bench

#ifndef GAPSP_FIG7_K80
int main() {
  return gapsp::bench::run_model_accuracy(
      gapsp::bench::bench_v100(), "Fig. 6",
      "Fig. 6 (estimates track actuals; boundary always chosen correctly)");
}
#endif
