// Fig. 2: out-of-core GPU implementation vs the BGL-plus multicore baseline
// on the graphs with a small separator. The out-of-core side is the
// boundary algorithm (the selector's pick for this class); the paper reports
// speedups of 8.22–12.40x.
#include "bench_common.h"

#include "core/ooc_boundary.h"

int main() {
  using namespace gapsp;
  using namespace gapsp::bench;

  print_header(
      "Fig. 2 — out-of-core boundary algorithm vs BGL-plus (small separator)",
      "Fig. 2 (paper speedups: 8.22x – 12.40x)");

  const auto opts = bench_options(bench_v100());
  Table t({"graph", "n", "BGL-plus (ms)", "out-of-core (ms)", "speedup",
           "k", "#boundary"});
  double lo = 1e30, hi = 0.0;
  for (const auto& e : graph::small_separator_zoo()) {
    auto store = core::make_ram_store(e.graph.num_vertices());
    const auto gpu = core::ooc_boundary(e.graph, opts, *store);
    const auto cpu = baseline::bgl_plus_apsp(e.graph, bench_cpu());
    const double speedup = cpu.sim_seconds / gpu.metrics.sim_seconds;
    lo = std::min(lo, speedup);
    hi = std::max(hi, speedup);
    t.add_row({e.name, Table::count(e.graph.num_vertices()),
               ms(cpu.sim_seconds), ms(gpu.metrics.sim_seconds),
               Table::num(speedup, 2), std::to_string(gpu.metrics.boundary_k),
               Table::count(gpu.metrics.boundary_nodes)});
  }
  t.print(std::cout);
  std::cout << "\nmeasured speedup range: " << Table::num(lo, 2) << "x - "
            << Table::num(hi, 2) << "x (paper: 8.22x - 12.40x)\n";
  return 0;
}
