// Table III: features of the input graphs whose output fits in host memory —
// n, m, √(k·n), the number of boundary vertices after k-way partitioning
// with k = √n, and density. The "small separator?" column is derived from
// the measured boundary count exactly as in the paper.
#include "bench_common.h"

#include <cmath>

#include "partition/boundary.h"

int main() {
  using namespace gapsp;
  using namespace gapsp::bench;

  print_header("Table III — features of the input graphs (scaled stand-ins)",
               "Table III (19 SuiteSparse matrices)");

  Table t({"matrix name", "small separator?", "n", "m", "sqrt(k*n)",
           "#boundary nodes", "density (%)"});
  auto add = [&](const graph::ZooEntry& e) {
    const vidx_t n = e.graph.num_vertices();
    const int k = std::max(
        2, static_cast<int>(std::lround(std::sqrt(static_cast<double>(n)))));
    const auto layout = part::partition_and_analyze(e.graph, k);
    const double ideal = std::sqrt(static_cast<double>(k) * n);
    const bool small = part::has_small_separator(e.graph);
    t.add_row({e.name, small ? "Yes" : "No", Table::count(n),
               Table::count(e.graph.num_edges()),
               Table::count(static_cast<long long>(ideal)),
               Table::count(layout.num_boundary),
               Table::num(e.graph.density_percent(), 4)});
  };
  // The paper lists the "No" (FEM) graphs first, then the road family.
  for (const auto& e : graph::other_sparse_zoo()) add(e);
  for (const auto& e : graph::small_separator_zoo()) add(e);
  t.print(std::cout);
  std::cout << "\nclassification rule: #boundary close to sqrt(k*n) (within "
               "4x of n^(3/4)) => small separator,\nmirroring Sec. V-B.\n";
  return 0;
}
