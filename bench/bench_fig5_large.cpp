// Fig. 5: execution times on the large graphs whose output does not fit the
// host RAM budget — solved through the file-backed distance store. The
// paper's point is feasibility plus healthy throughput: none of the other
// implementations could process these at all.
#include "bench_common.h"

#include <cstdio>

#include "core/ooc_boundary.h"
#include "core/ooc_johnson.h"
#include "partition/boundary.h"

int main() {
  using namespace gapsp;
  using namespace gapsp::bench;

  print_header("Fig. 5 — large graphs through the file-backed store",
               "Fig. 5 (execution times; output exceeds CPU memory)");

  const auto opts = bench_options(bench_v100());
  Table t({"graph", "n", "m", "algorithm", "sim time (ms)", "store file",
           "wall (s)"});
  for (const auto& e : graph::large_zoo()) {
    const std::string path = "/tmp/gapsp_fig5_" + e.name + ".bin";
    auto store = core::make_file_store(e.graph.num_vertices(), path);
    // Road-family entries go through the boundary algorithm, the rest
    // through Johnson — mirroring the selector's per-class picks without
    // paying the sampling cost on every large graph.
    core::ApspResult r;
    const char* algo;
    if (e.family == graph::ZooFamily::kRoad) {
      r = core::ooc_boundary(e.graph, opts, *store);
      algo = "boundary";
    } else {
      r = core::ooc_johnson(e.graph, opts, *store);
      algo = "johnson";
    }
    const double out_mib = static_cast<double>(e.graph.num_vertices()) *
                           e.graph.num_vertices() * sizeof(dist_t) /
                           (1 << 20);
    t.add_row({e.name, Table::count(e.graph.num_vertices()),
               Table::count(e.graph.num_edges()), algo,
               ms(r.metrics.sim_seconds),
               Table::num(out_mib, 0) + " MiB",
               Table::num(r.metrics.wall_seconds, 1)});
  }
  t.print(std::cout);
  std::cout << "\nall ten solved; the store streamed each full distance "
               "matrix through a disk file.\n";
  return 0;
}
