// Motivation experiment (the paper's Sec. I story): in-core GPU APSP
// ([16],[20]-style, whole matrix on the device) is fast while the output
// fits device memory and simply *stops existing* beyond that point; the
// out-of-core implementations keep scaling. Also shows the out-of-core
// overhead paid while both still fit.
#include "bench_common.h"

#include "core/incore_fw.h"
#include "core/ooc_fw.h"
#include "core/ooc_johnson.h"
#include "graph/generators.h"

int main() {
  using namespace gapsp;
  using namespace gapsp::bench;

  print_header("Motivation — in-core prior work vs out-of-core scaling",
               "Sec. I / Sec. VI (prior GPU APSP cannot handle our sizes)");

  const auto opts = bench_options(bench_v100());
  Table t({"n", "output", "in-core FW (ms)", "OOC FW (ms)", "OOC Johnson (ms)",
           "OOC overhead"});
  for (vidx_t n : {512, 1024, 1448, 2048, 2896}) {
    const auto g = graph::make_erdos_renyi(n, 6 * n, 9000 + n);
    const double out_mib =
        static_cast<double>(n) * n * sizeof(dist_t) / (1 << 20);
    std::string incore_ms = "OOM";
    double incore_time = -1;
    if (core::incore_fw_fits(opts.device, n)) {
      auto store = core::make_ram_store(n);
      const auto r = core::incore_fw_apsp(g, opts, *store);
      incore_time = r.metrics.sim_seconds;
      incore_ms = ms(incore_time);
    }
    auto s1 = core::make_ram_store(n);
    auto s2 = core::make_ram_store(n);
    const auto ooc = core::ooc_floyd_warshall(g, opts, *s1);
    const auto joh = core::ooc_johnson(g, opts, *s2);
    t.add_row({Table::count(n), Table::num(out_mib, 1) + " MiB", incore_ms,
               ms(ooc.metrics.sim_seconds), ms(joh.metrics.sim_seconds),
               incore_time > 0
                   ? Table::num(ooc.metrics.sim_seconds / incore_time, 2) + "x"
                   : "-"});
  }
  t.print(std::cout);
  std::cout << "\nonce n^2*W exceeds the device ("
            << (opts.device.memory_bytes >> 20)
            << " MiB here), the in-core column disappears; the out-of-core "
               "columns keep going.\n";
  return 0;
}
