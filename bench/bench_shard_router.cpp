// Benchmark of the sharded serving tier (DESIGN.md §15).
//
// Solves one road graph into a kept file store, slices it into row-range
// shards, and measures the same warm point/row batch through three serving
// topologies: a single QueryEngine over the whole store, a ShardRouter over
// in-process engines (one per shard), and a ShardRouter over forked worker
// processes speaking the wire protocol. Every routed run is checked
// bit-identical to the single engine before its throughput is reported —
// a routed number that disagrees with the oracle is a failure, not a row.
//
// A final degraded row kills one worker mid-run (no retries) and measures
// the surviving throughput plus the typed-quarantine count, so the cost of
// losing a shard is a measured number. Writes BENCH_shard.json.
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/apsp.h"
#include "core/shard_store.h"
#include "graph/generators.h"
#include "service/query_engine.h"
#include "service/shard_router.h"
#include "util/rng.h"

namespace {

using namespace gapsp;

struct Row {
  std::string mode;
  int shards = 0;
  std::size_t queries = 0;
  double seconds = 0.0;
  double qps = 0.0;
  long long degraded = 0;
};

void write_json(const std::vector<Row>& rows, const std::string& path) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "  {\"mode\": \"" << r.mode << "\", \"shards\": " << r.shards
        << ", \"queries\": " << r.queries << ", \"seconds\": " << r.seconds
        << ", \"qps\": " << r.qps << ", \"degraded\": " << r.degraded << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::cout << rows.size() << " rows -> " << path << "\n";
}

bool same_results(const service::BatchReport& got,
                  const service::BatchReport& want) {
  if (got.results.size() != want.results.size()) return false;
  for (std::size_t i = 0; i < got.results.size(); ++i) {
    if (got.results[i].status != want.results[i].status ||
        got.results[i].dist != want.results[i].dist ||
        got.results[i].row != want.results[i].row) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double min_parity_qps_ratio = 0.0;  // routed-local floor vs single engine
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--assert-min-local-ratio=", 25) == 0) {
      min_parity_qps_ratio = std::stod(argv[i] + 25);
    }
  }

  const auto g = graph::make_road(40, 40, 23);
  const vidx_t n = g.num_vertices();
  core::ApspOptions opts;
  opts.device = sim::DeviceSpec::v100_scaled();
  opts.algorithm = core::Algorithm::kJohnson;
  const std::string store_path = "bench_shard_dist.bin";
  {
    auto store = core::make_file_store(n, store_path, /*keep_file=*/true);
    core::solve_apsp(g, opts, *store);
  }
  constexpr int kShards = 4;
  const auto manifest = core::shard_store_file(store_path, kShards, 256);
  std::cout << "solved n=" << n << ", sharded " << store_path << " into "
            << manifest.num_shards() << " row-range slices\n";

  constexpr std::size_t kPoints = 20000;
  constexpr std::size_t kRows = 64;
  Rng rng(29);
  std::vector<service::Query> queries;
  queries.reserve(kPoints + kRows);
  for (std::size_t i = 0; i < kPoints; ++i) {
    queries.push_back({service::QueryKind::kPoint,
                       static_cast<vidx_t>(rng.next_below(n)),
                       static_cast<vidx_t>(rng.next_below(n))});
  }
  for (std::size_t i = 0; i < kRows; ++i) {
    queries.push_back(
        {service::QueryKind::kRow, static_cast<vidx_t>(rng.next_below(n)), 0});
  }

  std::vector<Row> rows;
  service::QueryEngineOptions qopt;
  qopt.cache_bytes = 16u << 20;

  // --- oracle: one engine over the whole store ---
  const auto whole = core::open_file_store(store_path);
  const service::QueryEngine single(*whole, qopt);
  single.run_batch(queries);  // cold fill
  const auto want = single.run_batch(queries);
  rows.push_back({"single", 1, queries.size(), want.wall_seconds, want.qps,
                  want.service.degraded});
  std::cout << "single engine (warm): " << static_cast<long long>(want.qps)
            << " qps\n";

  // --- local router: per-shard engines in-process ---
  auto shard_opt = qopt;
  shard_opt.cache_bytes = qopt.cache_bytes / kShards;
  {
    service::ShardRouter router(
        manifest, service::make_local_backends(store_path, manifest,
                                               shard_opt));
    router.run_batch(queries);  // cold fill
    const auto got = router.run_batch(queries);
    if (!same_results(got, want)) {
      std::cerr << "FAILED: local router disagrees with the single engine\n";
      return 1;
    }
    rows.push_back({"router_local", kShards, queries.size(),
                    got.wall_seconds, got.qps, got.service.degraded});
    std::cout << "local router (warm, parity-checked): "
              << static_cast<long long>(got.qps) << " qps\n";
    if (min_parity_qps_ratio > 0.0 &&
        got.qps < want.qps * min_parity_qps_ratio) {
      std::cerr << "FAILED: local router below " << min_parity_qps_ratio
                << "x of single-engine throughput\n";
      return 1;
    }
  }

  // --- process router: one forked worker per shard ---
  {
    service::ShardWorkerOptions wopt;
    wopt.engine = shard_opt;
    auto spawner = service::make_fork_worker_spawner(store_path, wopt);
    std::vector<std::unique_ptr<service::ShardBackend>> backends;
    for (int k = 0; k < manifest.num_shards(); ++k) {
      backends.push_back(service::make_process_backend(spawner, k, manifest));
    }
    service::ShardRouter router(manifest, std::move(backends));
    router.run_batch(queries);  // cold fill (worker-side caches)
    const auto got = router.run_batch(queries);
    if (!same_results(got, want)) {
      std::cerr << "FAILED: process router disagrees with the single "
                   "engine\n";
      return 1;
    }
    rows.push_back({"router_process", kShards, queries.size(),
                    got.wall_seconds, got.qps, got.service.degraded});
    std::cout << "process router (warm, parity-checked): "
              << static_cast<long long>(got.qps) << " qps\n";
  }

  // --- degraded: worker 1 dies on its first batch, no retries ---
  {
    service::ProcessBackendOptions popt;
    popt.retries = 0;
    popt.respawn = false;
    std::vector<std::unique_ptr<service::ShardBackend>> backends;
    for (int k = 0; k < manifest.num_shards(); ++k) {
      service::ShardWorkerOptions wk;
      wk.engine = shard_opt;
      wk.exit_after = (k == 1) ? 1 : 0;
      backends.push_back(service::make_process_backend(
          service::make_fork_worker_spawner(store_path, wk), k, manifest,
          popt));
    }
    service::ShardRouter router(manifest, std::move(backends));
    const auto got = router.run_batch(queries);
    if (got.results.size() != queries.size()) {
      std::cerr << "FAILED: degraded batch lost results\n";
      return 1;
    }
    rows.push_back({"router_killed_worker", kShards, queries.size(),
                    got.wall_seconds, got.qps, got.service.degraded});
    std::cout << "process router, one worker killed: "
              << static_cast<long long>(got.qps) << " qps, "
              << got.service.degraded << " typed-quarantined of "
              << queries.size() << "\n";
  }

  write_json(rows, "BENCH_shard.json");

  std::remove(core::shard_manifest_path(store_path).c_str());
  for (int k = 0; k < manifest.num_shards(); ++k) {
    std::remove(core::shard_file_path(store_path, k).c_str());
  }
  std::remove(store_path.c_str());
  return 0;
}
