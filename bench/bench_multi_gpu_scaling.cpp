// Extension experiment (beyond the paper): multi-GPU scaling of the
// out-of-core boundary algorithm. The boundary algorithm descends from
// Djidjev et al.'s multi-node method, so distributing components across
// devices is its natural scale-out. Components go to devices by LPT
// scheduling; the boundary graph is closed on device 0 and broadcast; each
// device streams out its own block-rows. Reported: makespan vs device
// count, per-device finish times, and the step-2/step-3 barrier positions.
#include "bench_common.h"

#include "core/multi_device.h"
#include "graph/generators.h"

int main() {
  using namespace gapsp;
  using namespace gapsp::bench;

  print_header("Extension — multi-GPU boundary-algorithm scaling",
               "(no paper counterpart; extends Sec. III-C toward Djidjev's "
               "multi-node setting)");

  const auto opts = bench_options(bench_v100());
  for (const char* name : {"usroads", "nj2010"}) {
    const auto entry = graph::zoo_by_name(name);
    const auto& g = entry->graph;
    std::cout << "\n--- " << name << " (n=" << g.num_vertices() << ") ---\n";
    Table t({"devices", "makespan (ms)", "speedup vs 1", "efficiency %",
             "barrier2 (ms)", "slowest/fastest device"});
    double base = 0.0;
    for (int d : {1, 2, 3, 4, 6, 8}) {
      auto store = core::make_ram_store(g.num_vertices());
      const auto r = core::ooc_boundary_multi(g, opts, d, *store);
      const double mk = r.result.metrics.sim_seconds;
      if (d == 1) base = mk;
      double lo = 1e30, hi = 0;
      for (double x : r.multi.device_seconds) {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
      }
      t.add_row({std::to_string(d), ms(mk), Table::num(base / mk, 2),
                 Table::num(100.0 * base / mk / d, 1),
                 ms(r.multi.barrier2_s),
                 Table::num(hi / lo, 2)});
    }
    t.print(std::cout);
  }
  std::cout << "\nscaling saturates where the serialized pieces dominate "
               "(boundary-graph FW on device 0,\nthe barriers, and the "
               "shared host link) — an Amdahl profile, as expected.\n";
  return 0;
}
