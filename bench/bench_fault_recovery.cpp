// Fault-recovery ablation (DESIGN.md §8): what does resilience cost when
// nothing fails, and what does it save when something does?
//
//   1. Checkpoint overhead — round-level sidecar writes are host-side I/O,
//      so the simulated makespan must be bit-identical with and without
//      them; the wall-clock delta is the real price.
//   2. Kill/resume — kill the device at increasing points of the op stream
//      and resume from the sidecar: the later the death, the more completed
//      rounds the checkpoint saves versus recomputing from scratch.
//   3. Retry tax — probabilistic transient transfer/kernel faults absorbed
//      by bounded retry-with-backoff: makespan growth vs fault rate.
//   4. Multi-GPU failover — kill one of three devices mid-run; survivors
//      re-run its unfinished components (LPT re-assignment) and the run
//      still completes, at a measurable makespan premium.
#include "bench_common.h"

#include <cstdio>

#include "core/multi_device.h"
#include "graph/generators.h"

namespace {

using namespace gapsp;
using namespace gapsp::bench;

constexpr const char* kCkPath = "bench_fault_recovery.ck";

core::ApspOptions fw_opts() {
  auto o = bench_options(bench_v100());
  // Shrink the device so the run has enough k-rounds (and enough gated ops)
  // for mid-stream kills and probabilistic faults to actually land.
  o.device = sim::DeviceSpec::v100_scaled(2u << 20);
  o.algorithm = core::Algorithm::kBlockedFloydWarshall;
  return o;
}

}  // namespace

int main() {
  print_header("Fault injection & recovery — overhead and payoff",
               "DESIGN.md §8 (no paper counterpart; robustness extension)");

  const auto g = graph::make_erdos_renyi(1200, 7200, 777);
  const vidx_t n = g.num_vertices();

  // --- 1. checkpoint overhead on a fault-free run ---
  {
    auto plain = fw_opts();
    auto ck = fw_opts();
    ck.checkpoint_path = kCkPath;
    auto s1 = core::make_ram_store(n);
    auto s2 = core::make_ram_store(n);
    const auto r1 = core::solve_apsp(g, plain, *s1);
    const auto r2 = core::solve_apsp(g, ck, *s2);
    Table t({"run", "sim (ms)", "wall (ms)", "checkpoints"});
    t.add_row({"no checkpoint", ms(r1.metrics.sim_seconds),
               ms(r1.metrics.wall_seconds), "0"});
    t.add_row({"per-round checkpoint", ms(r2.metrics.sim_seconds),
               ms(r2.metrics.wall_seconds),
               Table::count(r2.metrics.checkpoints_written)});
    t.print(std::cout);
    std::cout << "sim makespans identical: "
              << (r1.metrics.sim_seconds == r2.metrics.sim_seconds ? "yes"
                                                                   : "NO")
              << " (sidecar writes are host-side)\n\n";
  }

  // --- 2. kill at op K, resume from the sidecar vs recompute ---
  {
    auto clean_store = core::make_ram_store(n);
    const auto clean = core::solve_apsp(g, fw_opts(), *clean_store);
    Table t({"killed at op", "rounds saved", "resume (ms)", "scratch (ms)",
             "recompute avoided %"});
    for (long long kill = 16; kill <= 16384; kill *= 2) {
      sim::FaultPlan plan;
      plan.kill_device = 0;
      plan.kill_at_op = kill;
      auto faulty = fw_opts();
      faulty.faults = &plan;
      faulty.checkpoint_path = kCkPath;
      auto store = core::make_ram_store(n);
      bool died = false;
      try {
        core::solve_apsp(g, faulty, *store);
      } catch (const sim::FaultError&) {
        died = true;
      }
      if (!died) break;  // kill op beyond the op stream
      auto resume = fw_opts();
      resume.checkpoint_path = kCkPath;
      resume.resume = true;
      const auto r = core::solve_apsp(g, resume, *store);
      const double avoided =
          100.0 * (1.0 - r.metrics.sim_seconds / clean.metrics.sim_seconds);
      t.add_row({Table::count(kill), Table::count(r.metrics.resumed_progress),
                 ms(r.metrics.sim_seconds), ms(clean.metrics.sim_seconds),
                 Table::num(avoided, 1)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  // --- 3. transient-fault retry tax ---
  {
    auto clean_store = core::make_ram_store(n);
    const auto clean = core::solve_apsp(g, fw_opts(), *clean_store);
    Table t({"fault rate", "faults", "retries", "backoff (ms)",
             "makespan (ms)", "overhead %"});
    for (double p : {1e-4, 1e-3, 1e-2}) {
      sim::FaultPlan plan;
      plan.seed = 99;
      plan.p_h2d = p;
      plan.p_d2h = p;
      plan.p_kernel = p / 2;
      auto opts = fw_opts();
      opts.faults = &plan;
      opts.retry.max_retries = 5;
      auto store = core::make_ram_store(n);
      const auto r = core::solve_apsp(g, opts, *store);
      const double overhead =
          100.0 * (r.metrics.sim_seconds / clean.metrics.sim_seconds - 1.0);
      t.add_row({Table::num(p, 4), Table::count(r.metrics.faults_injected),
                 Table::count(r.metrics.transfer_retries +
                              r.metrics.kernel_retries),
                 ms(r.metrics.retry_backoff_seconds),
                 ms(r.metrics.sim_seconds), Table::num(overhead, 2)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  // --- 4. multi-GPU failover ---
  {
    const auto mg = graph::make_road(40, 40, 778);
    auto opts = bench_options(bench_v100());
    opts.algorithm = core::Algorithm::kBoundary;
    auto s_ref = core::make_ram_store(mg.num_vertices());
    const auto ref = core::ooc_boundary_multi(mg, opts, 3, *s_ref);
    Table t({"killed at op", "failed devs", "components re-run",
             "failover cost (ms)", "makespan (ms)", "fault-free (ms)"});
    for (long long kill : {10LL, 25LL, 60LL}) {
      sim::FaultPlan plan;
      plan.kill_device = 1;
      plan.kill_at_op = kill;
      auto faulty = opts;
      faulty.faults = &plan;
      auto store = core::make_ram_store(mg.num_vertices());
      const auto r = core::ooc_boundary_multi(mg, faulty, 3, *store);
      t.add_row({Table::count(kill),
                 Table::count(static_cast<long long>(
                     r.multi.failed_devices.size())),
                 Table::count(r.multi.failover_components),
                 ms(r.multi.failover_cost_s),
                 ms(r.result.metrics.sim_seconds),
                 ms(ref.result.metrics.sim_seconds)});
    }
    t.print(std::cout);
  }

  std::remove(kCkPath);
  return 0;
}
