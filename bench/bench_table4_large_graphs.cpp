// Table IV: features of the graphs whose output does not fit in the host
// store RAM budget of the Fig. 5 experiment (file-backed store required).
#include "bench_common.h"

int main() {
  using namespace gapsp;
  using namespace gapsp::bench;

  print_header("Table IV — large graphs (output exceeds host-store budget)",
               "Table IV (10 matrices)");

  Table t({"matrix name", "n", "m", "density (%)", "output size"});
  for (const auto& e : graph::large_zoo()) {
    const double out_bytes = static_cast<double>(e.graph.num_vertices()) *
                             e.graph.num_vertices() * sizeof(dist_t);
    t.add_row({e.name, Table::count(e.graph.num_vertices()),
               Table::count(e.graph.num_edges()),
               Table::num(e.graph.density_percent(), 4),
               Table::num(out_bytes / (1 << 20), 1) + " MiB"});
  }
  t.print(std::cout);
  std::cout << "\nthe Fig. 5 bench solves these through the file-backed "
               "distance store (core/dist_store).\n";
  return 0;
}
