// Table VI: selection between Johnson's algorithm and the blocked
// Floyd-Warshall on synthetic scale-free graphs — n fixed, m doubled per
// setup. The paper's shape: the FW time (and its estimate) is flat in m,
// Johnson's grows with m, the curves cross, and the selector always picks
// the winner. FW is estimated once from a smaller calibration graph
// (T0 · (n/n0)³); Johnson is estimated by sampling 5 random batches.
#include "bench_common.h"

#include "core/cost_model.h"
#include "core/ooc_fw.h"
#include "core/ooc_johnson.h"
#include "graph/generators.h"

int main() {
  using namespace gapsp;
  using namespace gapsp::bench;

  print_header("Table VI — Johnson vs blocked FW selection (R-MAT, fixed n)",
               "Table VI (FW flat in m, Johnson grows; selector always right)");

  const auto opts = bench_options(bench_v100());
  const int scale = 10;  // n = 1024 fixed, like the paper's fixed n = 80000
  Table t({"setup", "n", "m", "FW (ms)", "est FW (ms)", "Johnson (ms)",
           "est Johnson (ms)", "selector", "faster", "correct?"});
  int correct = 0, total = 0;
  eidx_t m = 1000;
  for (int setup = 1; setup <= 8; ++setup, m *= 2) {
    const auto g = graph::make_rmat(scale, m, 5000 + setup);
    auto s1 = core::make_ram_store(g.num_vertices());
    auto s2 = core::make_ram_store(g.num_vertices());
    const auto act_fw = core::ooc_floyd_warshall(g, opts, *s1);
    const auto act_j = core::ooc_johnson(g, opts, *s2);
    const auto est_fw = core::estimate_fw(g, opts);
    const auto est_j = core::estimate_johnson(g, opts, 5);
    const bool pick_fw = est_fw.total() < est_j.total();
    const bool fw_faster =
        act_fw.metrics.sim_seconds < act_j.metrics.sim_seconds;
    const bool ok = pick_fw == fw_faster;
    correct += ok;
    ++total;
    t.add_row({"setup" + std::to_string(setup),
               Table::count(g.num_vertices()), Table::count(g.num_edges()),
               ms(act_fw.metrics.sim_seconds), ms(est_fw.total()),
               ms(act_j.metrics.sim_seconds), ms(est_j.total()),
               pick_fw ? "FW" : "Johnson", fw_faster ? "FW" : "Johnson",
               ok ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\nselector correct on " << correct << "/" << total
            << " setups (paper: always correct).\nFW columns stay flat while "
               "the Johnson columns grow with m — the crossover drives the "
               "density filter's >1% rule.\n";
  return correct == total ? 0 : 1;
}
