// Table II: specifications of the two GPUs, plus the scaled presets this
// reproduction runs on and the measured-equivalent host-link throughputs.
#include "bench_common.h"

#include "sim/device_spec.h"

int main() {
  using namespace gapsp;
  using namespace gapsp::bench;

  print_header("Table II — device specifications (simulated)",
               "Table II (Tesla V100 / Tesla K80)");

  Table t({"device", "memory", "SMs", "max active blocks",
           "compute (Gops/s)", "mem BW (GB/s)", "link (GB/s)",
           "launch (us)"});
  auto row = [&](const sim::DeviceSpec& s) {
    t.add_row({s.name,
               std::to_string(s.memory_bytes >> 20) + " MiB",
               std::to_string(s.sm_count),
               std::to_string(s.max_active_blocks),
               Table::num(s.compute_ops_per_s / 1e9, 0),
               Table::num(s.mem_bandwidth / 1e9, 0),
               Table::num(s.link_bandwidth / 1e9, 2),
               Table::num(s.kernel_launch_s * 1e6, 0)});
  };
  row(sim::DeviceSpec::v100());
  row(sim::DeviceSpec::k80());
  row(bench_v100());
  row(bench_k80());
  t.print(std::cout);
  std::cout << "\nlink throughputs 11.75 / 7.23 GB/s are the paper's nvprof "
               "measurements (Sec. V-E);\nthe scaled presets shrink memory "
               "and resident-block capacity together (DESIGN.md §2).\n";
  return 0;
}
