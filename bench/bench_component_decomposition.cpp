// Extension experiment: connected-component pre-decomposition. On a
// disconnected graph, solving per component turns the n² output into Σnᵢ²
// and lets the selector pick per component — the monolithic solve pays full
// price for distances that are kInf by definition.
#include "bench_common.h"

#include "core/component_solver.h"
#include "graph/generators.h"

int main() {
  using namespace gapsp;
  using namespace gapsp::bench;

  print_header("Extension — connected-component pre-decomposition",
               "(no paper counterpart; removes provably-infinite work)");

  const auto opts = [] {
    auto o = bench_options(bench_v100());
    o.algorithm = core::Algorithm::kJohnson;
    return o;
  }();

  Table t({"components", "n", "monolithic (ms)", "per-component (ms)",
           "speedup", "D2H saved"});
  // Erdős–Rényi below the connectivity threshold fragments progressively.
  struct Case {
    vidx_t n;
    eidx_t m;
  };
  for (const Case& c : {Case{1200, 3000}, Case{1200, 900}, Case{1200, 500}}) {
    const auto g =
        graph::make_erdos_renyi(c.n, c.m, 4000 + c.m, /*connect=*/false);
    auto s1 = core::make_ram_store(g.num_vertices());
    auto s2 = core::make_ram_store(g.num_vertices());
    const auto mono = core::solve_apsp(g, opts, *s1);
    const auto split = core::solve_apsp_per_component(g, opts, *s2);
    t.add_row({std::to_string(split.num_components), Table::count(c.n),
               ms(mono.metrics.sim_seconds),
               ms(split.result.metrics.sim_seconds),
               Table::num(mono.metrics.sim_seconds /
                              split.result.metrics.sim_seconds,
                          2) + "x",
               Table::num(100.0 * (1.0 - static_cast<double>(
                                             split.result.metrics.bytes_d2h) /
                                             mono.metrics.bytes_d2h),
                          1) + "%"});
  }
  t.print(std::cout);
  std::cout << "\nmore fragments -> larger share of the n^2 output provably "
               "infinite -> bigger win.\n";
  return 0;
}
