// Ablation of the SSSP kernel inside the OOC Johnson MSSP launch — the
// runnable form of the paper's Sec. II-B argument for Near-Far:
//   * Bellman-Ford exposes maximal parallelism but does redundant work
//     (whole-edge-list sweeps until convergence);
//   * full delta-stepping is work-efficient but pays heavy bucket-
//     management overhead on GPUs;
//   * Near-Far keeps delta-stepping's work efficiency with a two-queue
//     simplification.
// Work counts come from the functional runs (the redundancy is measured,
// not assumed).
#include "bench_common.h"

#include "core/ooc_johnson.h"
#include "graph/generators.h"

int main() {
  using namespace gapsp;
  using namespace gapsp::bench;

  print_header("Ablation — SSSP kernel inside OOC Johnson",
               "Sec. II-B (why the paper adopts Near-Far)");

  const auto base = bench_options(bench_v100());
  struct Workload {
    const char* name;
    graph::CsrGraph graph;
  };
  const Workload workloads[] = {
      {"road (usroads)", graph::zoo_by_name("usroads")->graph},
      {"mesh (oilpan)", graph::zoo_by_name("oilpan")->graph},
      {"rmat-11", graph::make_rmat(11, 12000, 77)},
  };
  const core::SsspKernel kernels[] = {core::SsspKernel::kNearFar,
                                      core::SsspKernel::kDeltaStepping,
                                      core::SsspKernel::kBellmanFord};

  Table t({"graph", "kernel", "sim (ms)", "total ops", "vs near-far"});
  for (const auto& wl : workloads) {
    double nf_time = 0.0;
    for (const auto kernel : kernels) {
      auto opts = base;
      opts.sssp_kernel = kernel;
      auto store = core::make_ram_store(wl.graph.num_vertices());
      const auto r = core::ooc_johnson(wl.graph, opts, *store);
      if (kernel == core::SsspKernel::kNearFar) {
        nf_time = r.metrics.sim_seconds;
      }
      t.add_row({wl.name, core::sssp_kernel_name(kernel),
                 ms(r.metrics.sim_seconds),
                 Table::count(static_cast<long long>(r.metrics.total_ops)),
                 Table::num(r.metrics.sim_seconds / nf_time, 2) + "x"});
    }
  }
  t.print(std::cout);
  std::cout << "\nNear-Far wins everywhere, as the paper argues: Bellman-Ford"
               " pays measured redundant\nrelaxations, delta-stepping pays "
               "bucket-management overhead.\n";
  return 0;
}
