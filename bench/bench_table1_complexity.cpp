// Table I: comparison of the three implementations — analytic complexity
// columns plus *measured* counters that confirm each column on a live run:
// data-movement bytes (O(n_d·n²) vs O(n²)) and operation counts.
#include "bench_common.h"

#include "core/ooc_boundary.h"
#include "core/ooc_fw.h"
#include "core/ooc_johnson.h"
#include "graph/generators.h"

int main() {
  using namespace gapsp;
  using namespace gapsp::bench;

  print_header("Table I — comparison of the three out-of-core implementations",
               "Table I (complexity / pattern / movement / target graphs)");

  Table analytic({"algorithm", "compute complexity", "data & control flow",
                  "data movement", "target graphs"});
  analytic.add_row({"Floyd-Warshall", "O(n^3)", "regular", "O(n_d * n^2)",
                    "dense graphs"});
  analytic.add_row({"Johnson's", "O(n*m*log n) .. O(n*m)", "irregular",
                    "O(n^2)", "sparse scale-free graphs"});
  analytic.add_row({"Boundary", "O(n^(3/2)) .. O(n^3)", "regular",
                    "O(n^2)", "graphs with a small separator"});
  analytic.print(std::cout);

  // Measured confirmation on one mid-size graph per target class.
  std::cout << "\nmeasured movement/ops on live runs (device: "
            << bench_v100().name << "):\n\n";
  Table measured({"algorithm", "graph", "n", "D2H bytes", "n^2*W bytes",
                  "movement ratio", "kernel ops"});

  auto report = [&](const char* algo, const char* gname,
                    const graph::CsrGraph& g, const core::ApspResult& r) {
    const double n2w = static_cast<double>(g.num_vertices()) *
                       g.num_vertices() * sizeof(dist_t);
    measured.add_row({algo, gname, Table::count(g.num_vertices()),
                      Table::count(static_cast<long long>(r.metrics.bytes_d2h)),
                      Table::count(static_cast<long long>(n2w)),
                      Table::num(r.metrics.bytes_d2h / n2w, 2),
                      Table::count(static_cast<long long>(r.metrics.total_ops))});
  };

  const auto opts = bench_options(bench_v100());
  {
    const auto g = graph::make_dense(900, 6.0, 1);
    auto store = core::make_ram_store(g.num_vertices());
    const auto r = core::ooc_floyd_warshall(g, opts, *store);
    report("Floyd-Warshall", "dense-6%", g, r);
  }
  {
    const auto g = graph::make_rmat(10, 8000, 2);
    auto store = core::make_ram_store(g.num_vertices());
    const auto r = core::ooc_johnson(g, opts, *store);
    report("Johnson's", "rmat-10", g, r);
  }
  {
    const auto g = graph::make_road(32, 32, 3);
    auto store = core::make_ram_store(g.num_vertices());
    const auto r = core::ooc_boundary(g, opts, *store);
    report("Boundary", "road-32x32", g, r);
  }
  measured.print(std::cout);
  std::cout << "\nNote: the FW movement ratio equals n_d (every block moves "
               "once per round);\nJohnson and Boundary sit near 1 — the "
               "output matrix moves exactly once.\n";
  return 0;
}
