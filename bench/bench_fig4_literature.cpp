// Fig. 4: comparison against the two literature comparators on the other
// sparse graphs — SuperFW (tuned shared-memory blocked Floyd–Warshall of
// [31]) and Galois (delta-stepping APSP), both on a 64-thread Haswell. The
// paper compares against *reported* numbers; we run faithful analogs through
// the same machine model (functional execution disabled for the O(n³)
// SuperFW to keep the bench fast; its model is validated in tests).
//
// Paper speedup ranges: 4.70–69.2x over SuperFW, 79.9–152.6x over Galois.
// At this scale the SuperFW factors compress (n³ shrinks much faster than
// n·m when n drops 100x) — see EXPERIMENTS.md — but the ordering
// (ours < SuperFW < Galois in time) must hold.
#include "bench_common.h"

#include "core/ooc_johnson.h"

int main() {
  using namespace gapsp;
  using namespace gapsp::bench;

  print_header("Fig. 4 — comparison with SuperFW and Galois (other sparse)",
               "Fig. 4 (paper: 4.70-69.2x over SuperFW, 79.9-152.6x over Galois)");

  const auto opts = bench_options(bench_v100());
  const auto haswell = baseline::CpuSpec::e5_2698_v3();
  Table t({"graph", "ours (ms)", "SuperFW (ms)", "Galois (ms)",
           "speedup vs SuperFW", "speedup vs Galois"});
  double sf_lo = 1e30, sf_hi = 0, ga_lo = 1e30, ga_hi = 0;
  for (const auto& e : graph::other_sparse_zoo()) {
    auto store = core::make_ram_store(e.graph.num_vertices());
    const auto ours = core::ooc_johnson(e.graph, opts, *store);
    const auto superfw =
        baseline::superfw_apsp(e.graph, haswell, nullptr, /*functional=*/false);
    const auto galois = baseline::galois_apsp(e.graph, haswell);
    const double s1 = superfw.sim_seconds / ours.metrics.sim_seconds;
    const double s2 = galois.sim_seconds / ours.metrics.sim_seconds;
    sf_lo = std::min(sf_lo, s1);
    sf_hi = std::max(sf_hi, s1);
    ga_lo = std::min(ga_lo, s2);
    ga_hi = std::max(ga_hi, s2);
    t.add_row({e.name, ms(ours.metrics.sim_seconds), ms(superfw.sim_seconds),
               ms(galois.sim_seconds), Table::num(s1, 2), Table::num(s2, 2)});
  }
  t.print(std::cout);
  std::cout << "\nmeasured: " << Table::num(sf_lo, 2) << "-"
            << Table::num(sf_hi, 2) << "x over SuperFW, " << Table::num(ga_lo, 1)
            << "-" << Table::num(ga_hi, 1)
            << "x over Galois.\nSuperFW factors compress at laptop scale "
               "(n^3 work shrinks faster than n*m) — see EXPERIMENTS.md.\n";
  return 0;
}
