// Incremental delta-repair vs full re-solve (DESIGN.md §16, ISSUE 10).
//
// For each (graph × churn % × update mix) cell this solves the pristine road
// graph into a kept RAM store, perturbs churn·m arcs (decrease-only /
// increase-only / mixed), then measures wall-clock of (a) the
// IncrementalEngine repair of the kept store and (b) a from-scratch
// solve_apsp of the updated graph — the cost the repair path avoids. Every
// cell asserts bit-parity between the repaired store and the fresh solve
// (perm-aware, so a permuting solver would still compare correctly). Writes
// BENCH_incremental.json.
//
// Acceptance guards (ISSUE 10), checked when the flag is given:
//   --assert-min-speedup S   decrease-only road cells at ≤1% churn must
//                            reach max(10, S)×; mixed cells the ISSUE's own
//                            fixed 3× floor (S guards the headline
//                            decrease-only number — mixed batches pay for
//                            exact SWSF raise repair and legitimately sit
//                            near break-even on the smallest graph at the
//                            highest churn, the regime where the engine's
//                            cost model would pick the full re-solve).
// Bit-parity is asserted unconditionally. Flags accept `--flag=V`/`--flag V`.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/apsp.h"
#include "core/incremental.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace gapsp;

struct Row {
  std::string graph;
  vidx_t n = 0;
  long long arcs = 0;
  double churn_pct = 0.0;
  std::string mix;
  long long batch = 0;
  long long damaged_rows = 0;
  long long tiles_touched = 0;
  long long tiles_total = 0;
  bool full_solve = false;  ///< damage threshold tripped inside the engine
  double repair_s = 0.0;
  double probe_s = 0.0;
  double sssp_s = 0.0;
  double panel_s = 0.0;
  double tile_s = 0.0;
  double full_s = 0.0;
  double speedup = 0.0;
  double modeled_repair_s = 0.0;
  double modeled_full_s = 0.0;
  bool bit_identical = false;
};

void write_json(const std::vector<Row>& rows, const std::string& path) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "  {\"graph\": \"" << r.graph << "\", \"n\": " << r.n
        << ", \"arcs\": " << r.arcs << ", \"churn_pct\": " << r.churn_pct
        << ", \"mix\": \"" << r.mix << "\", \"batch\": " << r.batch
        << ", \"damaged_rows\": " << r.damaged_rows
        << ", \"tiles_touched\": " << r.tiles_touched
        << ", \"tiles_total\": " << r.tiles_total
        << ", \"full_solve_fallback\": " << (r.full_solve ? "true" : "false")
        << ", \"repair_s\": " << r.repair_s << ", \"probe_s\": " << r.probe_s
        << ", \"sssp_s\": " << r.sssp_s << ", \"panel_s\": " << r.panel_s
        << ", \"tile_s\": " << r.tile_s << ", \"full_s\": " << r.full_s
        << ", \"speedup\": " << r.speedup
        << ", \"modeled_repair_s\": " << r.modeled_repair_s
        << ", \"modeled_full_s\": " << r.modeled_full_s
        << ", \"bit_identical\": " << (r.bit_identical ? "true" : "false")
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::cout << rows.size() << " rows -> " << path << "\n";
}

/// churn·arcs updates of the requested mix over existing arcs, mirroring the
/// batches a live-traffic feed would produce (last-wins dedup is the
/// engine's job, not ours).
std::vector<core::EdgeUpdate> make_batch(const graph::CsrGraph& g,
                                         const std::string& mix,
                                         std::size_t count,
                                         std::uint64_t seed) {
  Rng rng(seed);
  const vidx_t n = g.num_vertices();
  std::vector<core::EdgeUpdate> batch;
  while (batch.size() < count) {
    const auto u = static_cast<vidx_t>(rng.next_below(n));
    const auto nbrs = g.neighbors(u);
    const auto ws = g.weights(u);
    if (nbrs.empty()) continue;
    const auto e = rng.next_below(nbrs.size());
    const dist_t w = ws[e];
    const bool decrease =
        mix == "decrease" || (mix == "mixed" && rng.next_below(2) == 0);
    if (decrease) {
      if (w <= 1) continue;
      batch.push_back({u, nbrs[e],
                       static_cast<dist_t>(rng.next_below(
                           static_cast<std::uint64_t>(w)))});  // [0, w)
    } else {
      batch.push_back(
          {u, nbrs[e], static_cast<dist_t>(w + 1 + rng.next_below(60))});
    }
  }
  return batch;
}

/// Perm-aware elementwise comparison in vertex space.
bool stores_bit_identical(const core::DistStore& got,
                          const std::vector<vidx_t>& got_perm,
                          const core::DistStore& want,
                          const std::vector<vidx_t>& want_perm) {
  const vidx_t n = got.n();
  std::vector<dist_t> a(static_cast<std::size_t>(n));
  std::vector<dist_t> b(static_cast<std::size_t>(n));
  const bool trivial = got_perm.empty() && want_perm.empty();
  for (vidx_t u = 0; u < n; ++u) {
    const vidx_t gu = got_perm.empty() ? u : got_perm[u];
    const vidx_t wu = want_perm.empty() ? u : want_perm[u];
    got.read_block(gu, 0, 1, n, a.data(), a.size());
    want.read_block(wu, 0, 1, n, b.data(), b.size());
    if (trivial) {
      if (std::memcmp(a.data(), b.data(), a.size() * sizeof(dist_t)) != 0) {
        return false;
      }
      continue;
    }
    for (vidx_t v = 0; v < n; ++v) {
      const vidx_t gv = got_perm.empty() ? v : got_perm[v];
      const vidx_t wv = want_perm.empty() ? v : want_perm[v];
      if (a[gv] != b[wv]) return false;
    }
  }
  return true;
}

core::ApspOptions solve_opts() {
  core::ApspOptions o;
  o.device = sim::DeviceSpec::v100_scaled();
  o.algorithm = core::Algorithm::kBlockedFloydWarshall;
  return o;
}

Row run_cell(const std::string& name, const graph::CsrGraph& g,
             double churn_pct, const std::string& mix, std::uint64_t seed) {
  Row row;
  row.graph = name;
  row.n = g.num_vertices();
  row.arcs = static_cast<long long>(g.num_edges());
  row.churn_pct = churn_pct;
  row.mix = mix;

  const auto count = static_cast<std::size_t>(
      std::max(2.0, churn_pct / 100.0 * static_cast<double>(row.arcs)));
  const auto batch = make_batch(g, mix, count, seed);
  row.batch = static_cast<long long>(batch.size());

  // The kept artifact the repair path protects: one full pristine solve.
  auto kept = core::make_ram_store(row.n);
  const auto pristine = core::solve_apsp(g, solve_opts(), *kept);

  core::IncrementalOptions iopt;
  iopt.tile = 64;
  iopt.solve_opts = solve_opts();
  core::IncrementalEngine engine(g, iopt, pristine.perm);
  Timer t_repair;
  const auto out = engine.apply_in_place(*kept, batch);
  row.repair_s = t_repair.seconds();

  const auto updated = core::apply_edge_updates(g, batch);
  auto fresh = core::make_ram_store(row.n);
  Timer t_full;
  const auto full = core::solve_apsp(updated, solve_opts(), *fresh);
  row.full_s = t_full.seconds();

  row.speedup = row.full_s / std::max(row.repair_s, 1e-12);
  row.probe_s = out.probe_seconds;
  row.sssp_s = out.sssp_seconds;
  row.panel_s = out.panel_seconds;
  row.tile_s = out.tile_seconds;
  row.damaged_rows = out.damaged_rows;
  row.tiles_touched = out.tiles_touched;
  row.tiles_total = out.tiles_total;
  row.full_solve = out.full_solve;
  row.modeled_repair_s = out.modeled_repair_seconds;
  row.modeled_full_s = out.modeled_full_seconds;
  row.bit_identical =
      stores_bit_identical(*kept, pristine.perm, *fresh, full.perm);
  return row;
}

double flag_value(int argc, char** argv, int& i, const char* name) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(argv[i], name, len) != 0) return -1.0;
  if (argv[i][len] == '=') return std::stod(argv[i] + len + 1);
  if (argv[i][len] == '\0' && i + 1 < argc) return std::stod(argv[++i]);
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  double min_speedup = 0.0;
  for (int i = 1; i < argc; ++i) {
    double v;
    if ((v = flag_value(argc, argv, i, "--assert-min-speedup")) >= 0.0) {
      min_speedup = v;
    }
  }

  struct GraphCell {
    std::string name;
    graph::CsrGraph g;
  };
  std::vector<GraphCell> graphs;
  graphs.push_back({"road32", graph::make_road(32, 32, 11)});
  graphs.push_back({"road48", graph::make_road(48, 48, 12)});

  std::vector<Row> rows;
  Table table({"graph", "n", "churn %", "mix", "batch", "tiles", "repair (ms)",
               "full (ms)", "speedup", "parity"});
  for (const auto& gc : graphs) {
    for (const double churn : {0.1, 1.0}) {
      for (const std::string mix : {"decrease", "increase", "mixed"}) {
        const Row r = run_cell(gc.name, gc.g, churn, mix, 29);
        rows.push_back(r);
        table.add_row({r.graph, Table::count(r.n), Table::num(r.churn_pct, 1),
                       r.mix, Table::count(r.batch),
                       Table::count(r.tiles_touched) + "/" +
                           Table::count(r.tiles_total),
                       Table::num(r.repair_s * 1e3, 2),
                       Table::num(r.full_s * 1e3, 2),
                       Table::num(r.speedup, 1) + "x",
                       r.bit_identical ? "ok" : "MISMATCH"});
      }
    }
  }
  table.print(std::cout);
  write_json(rows, "BENCH_incremental.json");

  bool ok = true;
  for (const Row& r : rows) {
    if (!r.bit_identical) {
      std::cerr << "FAIL: " << r.graph << " churn " << r.churn_pct << "% "
                << r.mix << " repair is not bit-identical to a fresh solve\n";
      ok = false;
    }
  }
  if (min_speedup > 0.0) {
    for (const Row& r : rows) {
      double floor = 0.0;
      if (r.mix == "decrease" && r.churn_pct <= 1.0) {
        floor = std::max(10.0, min_speedup);
      } else if (r.mix == "mixed") {
        floor = 3.0;
      }
      if (floor > 0.0 && r.speedup < floor) {
        std::cerr << "FAIL: " << r.graph << " churn " << r.churn_pct << "% "
                  << r.mix << " speedup " << r.speedup << " < " << floor
                  << "\n";
        ok = false;
      }
    }
  }
  if (!ok) return 1;
  if (min_speedup > 0.0) {
    std::cout << "asserts passed (min-speedup " << min_speedup << ")\n";
  }
  return 0;
}
