// Microbenchmarks (google-benchmark) of the primitive kernels behind every
// experiment: dense min-plus tiles, in-place FW, Near-Far SSSP rounds, the
// k-way partitioner, plus ablations over the Near-Far Δ and the dynamic-
// parallelism degree threshold.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/minplus.h"
#include "graph/generators.h"
#include "partition/kway.h"
#include "sssp/dijkstra.h"
#include "sssp/near_far.h"
#include "util/rng.h"

namespace {

using namespace gapsp;

std::vector<dist_t> random_tile(vidx_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<dist_t> m(static_cast<std::size_t>(n) * n);
  for (auto& x : m) x = static_cast<dist_t>(rng.next_in(1, 1000));
  return m;
}

void BM_MinPlusTile(benchmark::State& state) {
  const vidx_t n = static_cast<vidx_t>(state.range(0));
  auto a = random_tile(n, 1), b = random_tile(n, 2), c = random_tile(n, 3);
  for (auto _ : state) {
    core::minplus_accum(c.data(), n, a.data(), n, b.data(), n, n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * static_cast<long long>(n) *
                          n * n);
}
BENCHMARK(BM_MinPlusTile)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_FwInplace(benchmark::State& state) {
  const vidx_t n = static_cast<vidx_t>(state.range(0));
  const auto original = random_tile(n, 4);
  for (auto _ : state) {
    auto m = original;
    core::fw_inplace(m.data(), n, n);
    benchmark::DoNotOptimize(m.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * static_cast<long long>(n) *
                          n * n);
}
BENCHMARK(BM_FwInplace)->Arg(64)->Arg(128)->Arg(256);

void BM_DijkstraRoad(benchmark::State& state) {
  const auto g = graph::make_road(40, 40, 5);
  vidx_t src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sssp::dijkstra(g, src).data());
    src = (src + 37) % g.num_vertices();
  }
}
BENCHMARK(BM_DijkstraRoad);

void BM_NearFarDeltaSweep(benchmark::State& state) {
  // Δ sensitivity ablation: too small -> many phases, too large -> extra
  // relaxation work (Bellman-Ford-like).
  const auto g = graph::make_mesh(1200, 16, 6);
  std::vector<dist_t> out(g.num_vertices());
  sssp::NearFarConfig cfg;
  cfg.delta = static_cast<dist_t>(state.range(0));
  long long relax = 0;
  for (auto _ : state) {
    const auto st = sssp::near_far_sssp(g, 0, out, cfg);
    relax += st.relaxations;
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["relax/iter"] =
      static_cast<double>(relax) / state.iterations();
}
BENCHMARK(BM_NearFarDeltaSweep)->Arg(5)->Arg(25)->Arg(50)->Arg(200)->Arg(2000);

void BM_NearFarHeavyThreshold(benchmark::State& state) {
  // Dynamic-parallelism threshold ablation on a scale-free graph: how much
  // of the traversal work is classified as "heavy" per threshold.
  const auto g = graph::make_rmat(11, 16000, 7);
  std::vector<dist_t> out(g.num_vertices());
  sssp::NearFarConfig cfg;
  cfg.heavy_degree_threshold = static_cast<int>(state.range(0));
  long long heavy = 0, total = 0;
  for (auto _ : state) {
    const auto st = sssp::near_far_sssp(g, 0, out, cfg);
    heavy += st.heavy_relaxations;
    total += st.relaxations;
  }
  state.counters["heavy_share"] =
      total == 0 ? 0.0 : static_cast<double>(heavy) / static_cast<double>(total);
}
BENCHMARK(BM_NearFarHeavyThreshold)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_KwayPartition(benchmark::State& state) {
  const auto g = graph::make_road(45, 45, 8);
  part::PartitionOptions opts;
  opts.k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto p = part::kway_partition(g, opts);
    benchmark::DoNotOptimize(p.edge_cut);
  }
}
BENCHMARK(BM_KwayPartition)->Arg(4)->Arg(11)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
