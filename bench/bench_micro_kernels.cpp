// Microbenchmarks (google-benchmark) of the primitive kernels behind every
// experiment: dense min-plus tiles, in-place FW, Near-Far SSSP rounds, the
// k-way partitioner, plus ablations over the Near-Far Δ and the dynamic-
// parallelism degree threshold.
//
// Besides the google-benchmark suite, `--ablation` runs the kernel-engine
// ablation (microkernel variant × grid-execution threads on the blocked-FW
// path), prints the table behind EXPERIMENTS.md §"Microkernel ablation" and
// writes BENCH_kernels.json. `--kernel-variant=a,b,...` restricts the
// ablation to the named variants — unknown names are an error (exit 2), not
// a silent skip. `--assert-min-speedup=R` additionally exits non-zero unless
// best-tiled is at least R× naive-serial, and `--assert-simd-speedup=R`
// requires the simd variant to beat tiled-reg by R× on serial blocked FW —
// the CI perf-smoke guards against microkernel regressions.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "core/device_kernels.h"
#include "core/kernel_engine.h"
#include "core/minplus.h"
#include "graph/generators.h"
#include "partition/kway.h"
#include "sssp/dijkstra.h"
#include "sssp/near_far.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace gapsp;

std::vector<dist_t> random_tile(vidx_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<dist_t> m(static_cast<std::size_t>(n) * n);
  for (auto& x : m) x = static_cast<dist_t>(rng.next_in(1, 1000));
  return m;
}

void BM_MinPlusTile(benchmark::State& state) {
  const vidx_t n = static_cast<vidx_t>(state.range(0));
  auto a = random_tile(n, 1), b = random_tile(n, 2), c = random_tile(n, 3);
  for (auto _ : state) {
    core::minplus_accum(c.data(), n, a.data(), n, b.data(), n, n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * static_cast<long long>(n) *
                          n * n);
}
BENCHMARK(BM_MinPlusTile)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_FwInplace(benchmark::State& state) {
  const vidx_t n = static_cast<vidx_t>(state.range(0));
  const auto original = random_tile(n, 4);
  for (auto _ : state) {
    auto m = original;
    core::fw_inplace(m.data(), n, n);
    benchmark::DoNotOptimize(m.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * static_cast<long long>(n) *
                          n * n);
}
BENCHMARK(BM_FwInplace)->Arg(64)->Arg(128)->Arg(256);

constexpr core::KernelVariant kAllVariants[core::kNumKernelVariants] = {
    core::KernelVariant::kNaive,    core::KernelVariant::kTiled,
    core::KernelVariant::kTiledReg, core::KernelVariant::kSimd,
    core::KernelVariant::kTensor};

core::KernelVariant variant_of(int idx) {
  GAPSP_CHECK(idx >= 0 && idx < core::kNumKernelVariants,
              "variant index out of range");
  return kAllVariants[idx];
}

void BM_MinPlusVariant(benchmark::State& state) {
  // Microkernel variant sweep: the ratio between rows (same size) is the
  // cache/register-blocking payoff, independent of the thread pool.
  const core::KernelVariant v = variant_of(static_cast<int>(state.range(0)));
  const vidx_t n = static_cast<vidx_t>(state.range(1));
  auto a = random_tile(n, 1), b = random_tile(n, 2), c = random_tile(n, 3);
  for (auto _ : state) {
    core::minplus_accum_variant(v, c.data(), n, a.data(), n, b.data(), n, n,
                                n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetLabel(core::kernel_variant_name(v));
  state.SetItemsProcessed(state.iterations() * 2 * static_cast<long long>(n) *
                          n * n);
}
BENCHMARK(BM_MinPlusVariant)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {64, 128, 256}});

void BM_BlockedFwVariantThreads(benchmark::State& state) {
  // The full simulated blocked-FW path (diag / panels / update grid
  // launches) under an explicit variant × grid-thread setting. Results and
  // the simulated timeline are identical across all rows; only host
  // wall-clock moves.
  const core::KernelVariant v = variant_of(static_cast<int>(state.range(0)));
  const int threads = static_cast<int>(state.range(1));
  const vidx_t n = 512;
  core::KernelConfig cfg;
  cfg.variant = v;
  cfg.threads = threads;
  core::set_kernel_config(cfg);
  const auto original = random_tile(n, 5);
  for (auto _ : state) {
    sim::Device dev(sim::DeviceSpec::v100_scaled(std::size_t{64} << 20));
    dev.set_kernel_threads(threads);
    auto m = dev.alloc<dist_t>(original.size(), "fw matrix");
    std::copy(original.begin(), original.end(), m.data());
    core::dev_blocked_fw(dev, sim::kDefaultStream, m.data(), n, n,
                         core::kDeviceTile);
    benchmark::DoNotOptimize(m.data());
  }
  state.SetLabel(std::string(core::kernel_variant_name(v)) + "/t" +
                 std::to_string(threads));
  state.SetItemsProcessed(state.iterations() * 2 * static_cast<long long>(n) *
                          n * n);
  core::set_kernel_config(core::KernelConfig{});
}
BENCHMARK(BM_BlockedFwVariantThreads)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {1, 0}});

void BM_DijkstraRoad(benchmark::State& state) {
  const auto g = graph::make_road(40, 40, 5);
  vidx_t src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sssp::dijkstra(g, src).data());
    src = (src + 37) % g.num_vertices();
  }
}
BENCHMARK(BM_DijkstraRoad);

void BM_NearFarDeltaSweep(benchmark::State& state) {
  // Δ sensitivity ablation: too small -> many phases, too large -> extra
  // relaxation work (Bellman-Ford-like).
  const auto g = graph::make_mesh(1200, 16, 6);
  std::vector<dist_t> out(g.num_vertices());
  sssp::NearFarConfig cfg;
  cfg.delta = static_cast<dist_t>(state.range(0));
  long long relax = 0;
  for (auto _ : state) {
    const auto st = sssp::near_far_sssp(g, 0, out, cfg);
    relax += st.relaxations;
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["relax/iter"] =
      static_cast<double>(relax) / state.iterations();
}
BENCHMARK(BM_NearFarDeltaSweep)->Arg(5)->Arg(25)->Arg(50)->Arg(200)->Arg(2000);

void BM_NearFarHeavyThreshold(benchmark::State& state) {
  // Dynamic-parallelism threshold ablation on a scale-free graph: how much
  // of the traversal work is classified as "heavy" per threshold.
  const auto g = graph::make_rmat(11, 16000, 7);
  std::vector<dist_t> out(g.num_vertices());
  sssp::NearFarConfig cfg;
  cfg.heavy_degree_threshold = static_cast<int>(state.range(0));
  long long heavy = 0, total = 0;
  for (auto _ : state) {
    const auto st = sssp::near_far_sssp(g, 0, out, cfg);
    heavy += st.heavy_relaxations;
    total += st.relaxations;
  }
  state.counters["heavy_share"] =
      total == 0 ? 0.0 : static_cast<double>(heavy) / static_cast<double>(total);
}
BENCHMARK(BM_NearFarHeavyThreshold)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_KwayPartition(benchmark::State& state) {
  const auto g = graph::make_road(45, 45, 8);
  part::PartitionOptions opts;
  opts.k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto p = part::kway_partition(g, opts);
    benchmark::DoNotOptimize(p.edge_cut);
  }
}
BENCHMARK(BM_KwayPartition)->Arg(4)->Arg(11)->Arg(32);

struct AblationRow {
  std::string kernel;
  std::string variant;
  int threads = 1;
  vidx_t n = 0;
  double seconds = 0.0;
  double gops = 0.0;
};

double best_of(int reps, const std::function<double()>& run) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) best = std::min(best, run());
  return best;
}

/// Kernel-engine ablation: microkernel alone (n=256) and the full blocked-FW
/// launch path (n=512) for the selected variant × thread settings. Returns
/// the rows and prints the table.
std::vector<AblationRow> run_ablation(
    const std::vector<core::KernelVariant>& variants) {
  using clock = std::chrono::steady_clock;
  std::vector<AblationRow> rows;
  const std::size_t pool = ThreadPool::global().size();

  // ---- microkernel, serial (variant effect in isolation) ----
  {
    const vidx_t n = 256;
    auto a = random_tile(n, 1), b = random_tile(n, 2), c0 = random_tile(n, 3);
    for (const core::KernelVariant v : variants) {
      auto c = c0;
      const double s = best_of(5, [&] {
        c = c0;
        const auto t0 = clock::now();
        core::minplus_accum_variant(v, c.data(), n, a.data(), n, b.data(), n,
                                    n, n, n);
        return std::chrono::duration<double>(clock::now() - t0).count();
      });
      rows.push_back({"minplus", core::kernel_variant_name(v), 1, n, s,
                      2.0 * n * n * n / s / 1e9});
    }
  }

  // ---- blocked FW through the simulator, variant × threads ----
  {
    const vidx_t n = 512;
    const auto original = random_tile(n, 5);
    for (const core::KernelVariant v : variants) {
      for (const int threads : {1, 0}) {
        core::KernelConfig cfg;
        cfg.variant = v;
        cfg.threads = threads;
        core::set_kernel_config(cfg);
        const double s = best_of(3, [&] {
          sim::Device dev(
              sim::DeviceSpec::v100_scaled(std::size_t{64} << 20));
          dev.set_kernel_threads(threads);
          auto m = dev.alloc<dist_t>(original.size(), "fw matrix");
          std::copy(original.begin(), original.end(), m.data());
          const auto t0 = clock::now();
          core::dev_blocked_fw(dev, sim::kDefaultStream, m.data(), n, n,
                               core::kDeviceTile);
          return std::chrono::duration<double>(clock::now() - t0).count();
        });
        rows.push_back({"blocked_fw", core::kernel_variant_name(v),
                        threads == 0 ? static_cast<int>(pool) : threads, n, s,
                        2.0 * n * n * n / s / 1e9});
      }
    }
    core::set_kernel_config(core::KernelConfig{});
  }

  std::cout << "kernel engine ablation (pool: " << pool << " threads, "
            << core::simd_lane_isa() << " lanes)\n"
            << "kernel       variant    threads       n      ms    GOP/s\n";
  for (const auto& r : rows) {
    std::printf("%-12s %-10s %7d %7d %7.2f %8.2f\n", r.kernel.c_str(),
                r.variant.c_str(), r.threads, static_cast<int>(r.n),
                r.seconds * 1e3, r.gops);
  }
  const core::KernelVariant winner = core::autotune_kernel_variant();
  std::cout << "autotuner winner: " << core::kernel_variant_name(winner)
            << " (" << core::kernel_variant_rel_speed(winner)
            << "x vs naive on the tuning shape)\n";
  return rows;
}

/// Best serial blocked-FW seconds of `variant` among the rows; 0 when the
/// ablation did not run it.
double serial_fw_seconds(const std::vector<AblationRow>& rows,
                         const std::string& variant) {
  for (const auto& r : rows) {
    if (r.kernel == "blocked_fw" && r.variant == variant && r.threads == 1) {
      return r.seconds;
    }
  }
  return 0.0;
}

void write_json(const std::vector<AblationRow>& rows, const std::string& path) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    out << "  {\"kernel\": \"" << r.kernel << "\", \"variant\": \""
        << r.variant << "\", \"threads\": " << r.threads
        << ", \"n\": " << r.n << ", \"seconds\": " << r.seconds
        << ", \"gops\": " << r.gops << "}" << (i + 1 < rows.size() ? "," : "")
        << "\n";
  }
  out << "]\n";
  std::cout << rows.size() << " rows -> " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool ablation = false;
  double min_speedup = 0.0;
  double simd_speedup = 0.0;
  // Default: every concrete variant (the ablation never skips one silently;
  // narrowing the sweep takes an explicit, validated filter).
  std::vector<core::KernelVariant> variants(kAllVariants,
                                            kAllVariants +
                                                core::kNumKernelVariants);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ablation") == 0) ablation = true;
    if (std::strncmp(argv[i], "--assert-min-speedup=", 21) == 0) {
      ablation = true;
      min_speedup = std::stod(argv[i] + 21);
    }
    if (std::strncmp(argv[i], "--assert-simd-speedup=", 22) == 0) {
      ablation = true;
      simd_speedup = std::stod(argv[i] + 22);
    }
    if (std::strncmp(argv[i], "--kernel-variant=", 17) == 0) {
      ablation = true;
      variants.clear();
      std::string list(argv[i] + 17);
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const std::size_t comma = std::min(list.find(',', pos), list.size());
        const std::string name = list.substr(pos, comma - pos);
        pos = comma + 1;
        try {
          const core::KernelVariant v = core::parse_kernel_variant(name);
          if (v == core::KernelVariant::kAuto) {
            throw Error("'auto' is not an explicit ablation variant");
          }
          variants.push_back(v);
        } catch (const Error& e) {
          std::cerr << "bench_micro_kernels: bad --kernel-variant: "
                    << e.what() << "\n";
          return 2;
        }
      }
    }
  }
  if (ablation) {
    const auto rows = run_ablation(variants);
    write_json(rows, "BENCH_kernels.json");
    if (min_speedup > 0.0) {
      // Guard: the best tiled blocked-FW configuration must beat the naive
      // serial one by at least the requested factor.
      double naive_serial = 0.0, best_tiled = 1e300;
      for (const auto& r : rows) {
        if (r.kernel != "blocked_fw") continue;
        if (r.variant == "naive" && r.threads == 1) naive_serial = r.seconds;
        if (r.variant != "naive") best_tiled = std::min(best_tiled, r.seconds);
      }
      const double speedup = naive_serial / best_tiled;
      std::cout << "speedup (best tiled vs naive serial): " << speedup
                << "x (required >= " << min_speedup << "x)\n";
      if (speedup < min_speedup) {
        std::cerr << "FAILED: kernel engine speedup below threshold\n";
        return 1;
      }
    }
    if (simd_speedup > 0.0) {
      // Guard: the vector microkernel must beat the scalar register-blocked
      // one on the serial blocked-FW path (ISSUE 6 acceptance floor).
      const double reg = serial_fw_seconds(rows, "tiled-reg");
      const double simd = serial_fw_seconds(rows, "simd");
      if (reg == 0.0 || simd == 0.0) {
        std::cerr << "FAILED: --assert-simd-speedup needs both tiled-reg and "
                     "simd in the ablation sweep\n";
        return 1;
      }
      const double speedup = reg / simd;
      std::cout << "speedup (simd vs tiled-reg, serial blocked FW): "
                << speedup << "x (required >= " << simd_speedup << "x)\n";
      if (speedup < simd_speedup) {
        std::cerr << "FAILED: simd microkernel speedup below threshold\n";
        return 1;
      }
    }
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
