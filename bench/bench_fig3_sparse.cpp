// Fig. 3: out-of-core GPU implementation vs BGL-plus on the other sparse
// graphs (FEM meshes, no small separator). Here the out-of-core side is
// Johnson's algorithm; the paper reports speedups of 2.23–2.79x and explains
// they are lower because larger m shrinks the batch size bat, leaving less
// parallelism on the device.
#include "bench_common.h"

#include "core/ooc_johnson.h"

int main() {
  using namespace gapsp;
  using namespace gapsp::bench;

  print_header(
      "Fig. 3 — out-of-core Johnson's algorithm vs BGL-plus (other sparse)",
      "Fig. 3 (paper speedups: 2.23x – 2.79x)");

  const auto opts = bench_options(bench_v100());
  Table t({"graph", "n", "m", "bat", "BGL-plus (ms)", "out-of-core (ms)",
           "speedup"});
  double lo = 1e30, hi = 0.0;
  for (const auto& e : graph::other_sparse_zoo()) {
    auto store = core::make_ram_store(e.graph.num_vertices());
    const auto gpu = core::ooc_johnson(e.graph, opts, *store);
    const auto cpu = baseline::bgl_plus_apsp(e.graph, bench_cpu());
    const double speedup = cpu.sim_seconds / gpu.metrics.sim_seconds;
    lo = std::min(lo, speedup);
    hi = std::max(hi, speedup);
    t.add_row({e.name, Table::count(e.graph.num_vertices()),
               Table::count(e.graph.num_edges()),
               std::to_string(gpu.metrics.johnson_batch_size),
               ms(cpu.sim_seconds), ms(gpu.metrics.sim_seconds),
               Table::num(speedup, 2)});
  }
  t.print(std::cout);
  std::cout << "\nmeasured speedup range: " << Table::num(lo, 2) << "x - "
            << Table::num(hi, 2)
            << "x (paper: 2.23x - 2.79x)\nnote the bat column: denser graphs "
               "-> smaller batches -> less device parallelism.\n";
  return 0;
}
