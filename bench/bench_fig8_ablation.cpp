// Fig. 8: benefits of the two optimizations in the out-of-core boundary
// algorithm on the small-separator graphs — transfer batching (paper:
// 1.988–5.706x) and compute/transfer overlap on top of batching (paper:
// 12.7%–29.1% further improvement). Plus an extra ablation the paper's
// Sec. V-F motivates: the component-count sweep around the default k = √n/4.
#include "bench_common.h"

#include "core/ooc_boundary.h"

int main() {
  using namespace gapsp;
  using namespace gapsp::bench;

  print_header("Fig. 8 — boundary-algorithm optimization ablation",
               "Fig. 8 (batching 1.988-5.706x; overlap +12.7%-29.1%)");

  // A smaller device accentuates the staging pressure, like the paper's
  // full-size graphs against 16 GB.
  auto base = bench_options(sim::DeviceSpec::v100_scaled(6u << 20));

  Table t({"graph", "naive (ms)", "+batching (ms)", "+overlap (ms)",
           "batching speedup", "overlap gain %", "naive transfer share %"});
  double b_lo = 1e30, b_hi = 0, o_lo = 1e30, o_hi = 0;
  for (const auto& e : graph::small_separator_zoo()) {
    auto naive_opts = base;
    naive_opts.batch_transfers = false;
    naive_opts.overlap_transfers = false;
    auto batch_opts = base;
    batch_opts.batch_transfers = true;
    batch_opts.overlap_transfers = false;
    auto overlap_opts = base;

    auto s1 = core::make_ram_store(e.graph.num_vertices());
    auto s2 = core::make_ram_store(e.graph.num_vertices());
    auto s3 = core::make_ram_store(e.graph.num_vertices());
    const auto naive = core::ooc_boundary(e.graph, naive_opts, *s1);
    const auto batched = core::ooc_boundary(e.graph, batch_opts, *s2);
    const auto overlap = core::ooc_boundary(e.graph, overlap_opts, *s3);

    const double bspeed =
        naive.metrics.sim_seconds / batched.metrics.sim_seconds;
    const double ogain = 100.0 *
                         (batched.metrics.sim_seconds -
                          overlap.metrics.sim_seconds) /
                         batched.metrics.sim_seconds;
    const double share = 100.0 * naive.metrics.transfer_seconds /
                         naive.metrics.sim_seconds;
    b_lo = std::min(b_lo, bspeed);
    b_hi = std::max(b_hi, bspeed);
    o_lo = std::min(o_lo, ogain);
    o_hi = std::max(o_hi, ogain);
    t.add_row({e.name, ms(naive.metrics.sim_seconds),
               ms(batched.metrics.sim_seconds),
               ms(overlap.metrics.sim_seconds), Table::num(bspeed, 2),
               Table::num(ogain, 1), Table::num(share, 1)});
  }
  t.print(std::cout);
  std::cout << "\nmeasured: batching " << Table::num(b_lo, 2) << "-"
            << Table::num(b_hi, 2) << "x (paper 1.99-5.71x), overlap +"
            << Table::num(o_lo, 1) << "%-" << Table::num(o_hi, 1)
            << "% (paper 12.7-29.1%).\n";

  // --- extra ablation: component count k around the √n/4 default ---
  std::cout << "\ncomponent-count sweep (usroads stand-in; paper sets k=sqrt(n)/4):\n";
  const auto g = graph::zoo_by_name("usroads")->graph;
  Table ks({"k", "sim (ms)", "kernel (ms)", "transfer (ms)", "#boundary"});
  for (int k : {4, 6, 8, 11, 16, 24, 32}) {
    auto o = base;
    o.num_components = k;
    try {
      auto store = core::make_ram_store(g.num_vertices());
      const auto r = core::ooc_boundary(g, o, *store);
      ks.add_row({std::to_string(r.metrics.boundary_k),
                  ms(r.metrics.sim_seconds), ms(r.metrics.kernel_seconds),
                  ms(r.metrics.transfer_seconds),
                  Table::count(r.metrics.boundary_nodes)});
    } catch (const Error&) {
      ks.add_row({std::to_string(k), "infeasible", "-", "-", "-"});
    }
  }
  ks.print(std::cout);

  // --- extra ablation: partitioner quality (direct k-way vs recursive
  // bisection) — boundary count feeds straight into steps 3 and 4 ---
  std::cout << "\npartitioner-method sweep (boundary count drives the "
               "algorithm's cost):\n";
  Table pm({"graph", "method", "#boundary", "sim (ms)"});
  for (const char* gname : {"usroads", "luxembourg_osm"}) {
    const auto g2 = graph::zoo_by_name(gname)->graph;
    for (const auto method : {part::Method::kMultilevelKway,
                              part::Method::kRecursiveBisection}) {
      auto o = base;
      o.partition_method = method;
      auto store = core::make_ram_store(g2.num_vertices());
      const auto r = core::ooc_boundary(g2, o, *store);
      pm.add_row({gname,
                  method == part::Method::kMultilevelKway
                      ? "multilevel k-way"
                      : "recursive bisection",
                  Table::count(r.metrics.boundary_nodes),
                  ms(r.metrics.sim_seconds)});
    }
  }
  pm.print(std::cout);
  return 0;
}
