// Benchmark of the distance-oracle query service (DESIGN.md §10).
//
// Solves one road graph into a file-backed store, then measures batched
// point-query throughput through the block-cached QueryEngine — cold cache
// vs warm cache, across cache capacities, serial vs pooled — against the
// baseline every pre-service caller used: a per-element DistStore::at()
// loop that pays one seek+read per query. Writes BENCH_query.json.
//
// `--assert-min-speedup=R` exits non-zero unless the warm-cache pooled
// batch throughput is at least R× the at() loop — the acceptance guard
// (ISSUE 4 requires ≥ 5×).
//
// Fault-tolerance rows (DESIGN.md §13): the same batch is replayed through
// a checksum-verified engine (GAPSPSM1 sidecar) and through degraded modes —
// injected transient read faults with retries, and a quarantined-tile
// sweep — so the cost of the serving-tier fault ladder is a measured number,
// not a guess. `--assert-max-overhead=PCT` exits non-zero when the
// checksum-verified clean path costs more than PCT% of best-of-warm pooled
// throughput vs the unverified engine (ISSUE 7 requires ≤ 2%).
// `--transfer-compression=auto|on|off` sets the solve phase's wire-path
// mode (serving numbers are mode-invariant); unknown values exit 2.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/apsp.h"
#include "core/store_integrity.h"
#include "core/transfer_codec.h"
#include "graph/generators.h"
#include "service/query_engine.h"
#include "sim/fault.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace gapsp;

struct Row {
  std::string mode;
  std::size_t cache_kb = 0;
  int threads = 0;
  std::size_t queries = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double hit_rate = 0.0;
};

void write_json(const std::vector<Row>& rows, const std::string& path) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "  {\"mode\": \"" << r.mode << "\", \"cache_kb\": " << r.cache_kb
        << ", \"threads\": " << r.threads << ", \"queries\": " << r.queries
        << ", \"seconds\": " << r.seconds << ", \"qps\": " << r.qps
        << ", \"hit_rate\": " << r.hit_rate << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::cout << rows.size() << " rows -> " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  double min_speedup = 0.0;
  double max_overhead_pct = -1.0;
  auto wire_mode = core::TransferCompression::kAuto;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--assert-min-speedup=", 21) == 0) {
      min_speedup = std::stod(argv[i] + 21);
    } else if (std::strncmp(argv[i], "--assert-max-overhead=", 22) == 0) {
      max_overhead_pct = std::stod(argv[i] + 22);
    } else if (std::strncmp(argv[i], "--transfer-compression=", 23) == 0 ||
               (std::strcmp(argv[i], "--transfer-compression") == 0 &&
                i + 1 < argc)) {
      const char* val = argv[i][22] == '=' ? argv[i] + 23 : argv[++i];
      try {
        wire_mode = core::parse_transfer_compression(val);
      } catch (const Error& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
      }
    }
  }

  // One solved matrix serves every series: road 40×40 → n = 1600, a 10 MiB
  // file store, 49 cache tiles of 256².
  const auto g = graph::make_road(40, 40, 11);
  const vidx_t n = g.num_vertices();
  core::ApspOptions opts;
  opts.device = sim::DeviceSpec::v100_scaled();
  opts.algorithm = core::Algorithm::kJohnson;
  opts.transfer_compression = wire_mode;  // solve phase's wire path
  const std::string store_path = "bench_query_dist.bin";
  auto store = core::make_file_store(n, store_path, /*keep_file=*/false);
  const auto solved = core::solve_apsp(g, opts, *store);
  std::cout << "solved n=" << n << " via "
            << core::algorithm_name(solved.used) << ", serving from "
            << store_path << "\n";

  constexpr std::size_t kQueries = 50000;
  Rng rng(17);
  std::vector<service::Query> queries;
  queries.reserve(kQueries);
  for (std::size_t i = 0; i < kQueries; ++i) {
    queries.push_back({service::QueryKind::kPoint,
                       static_cast<vidx_t>(rng.next_below(n)),
                       static_cast<vidx_t>(rng.next_below(n))});
  }

  std::vector<Row> rows;

  // --- baseline: the pre-service read path, one at() per element ---
  {
    Timer t;
    long long sum = 0;
    for (const auto& q : queries) sum += store->at(q.u, q.v);
    const double s = t.seconds();
    rows.push_back({"at_loop", 0, 1, kQueries, s,
                    static_cast<double>(kQueries) / s, 0.0});
    std::cout << "at() loop: " << s * 1e3 << " ms ("
              << static_cast<long long>(rows.back().qps)
              << " qps, checksum " << sum << ")\n";
  }

  double best_warm_qps = 0.0;
  for (const std::size_t cache_kb : {256u, 1024u, 4096u, 16384u}) {
    service::QueryEngineOptions qopt;
    qopt.cache_bytes = cache_kb << 10;
    for (const int threads : {1, 0}) {  // serial, then the whole pool
      qopt.max_threads = threads;
      const service::QueryEngine engine(*store, qopt);
      const auto cold = engine.run_batch(queries);
      rows.push_back({"cold", cache_kb, threads, kQueries, cold.wall_seconds,
                      cold.qps, cold.cache.hit_rate()});
      const auto warm = engine.run_batch(queries);
      const auto warm_stats = warm.cache;
      // Batched execution resolves each tile once per bucket, so cache
      // counters move per tile resolution: the warm hit rate is the share
      // of the warm run's resolutions served from cache.
      const auto hits_d =
          static_cast<double>(warm_stats.hits - cold.cache.hits);
      const auto miss_d =
          static_cast<double>(warm_stats.misses - cold.cache.misses);
      const double warm_hit_rate =
          hits_d + miss_d == 0.0 ? 1.0 : hits_d / (hits_d + miss_d);
      rows.push_back({"warm", cache_kb, threads, kQueries, warm.wall_seconds,
                      warm.qps, warm_hit_rate});
      if (threads == 0) best_warm_qps = std::max(best_warm_qps, warm.qps);
      std::cout << "cache " << (cache_kb >> 10 > 0 ? cache_kb >> 10 : cache_kb)
                << (cache_kb >= 1024 ? " MiB" : " KiB") << ", "
                << (threads == 1 ? "serial" : "pooled") << ": cold "
                << static_cast<long long>(cold.qps) << " qps, warm "
                << static_cast<long long>(warm.qps) << " qps ("
                << warm_hit_rate * 100.0 << "% warm tile hits, "
                << warm_stats.evictions << " evictions)\n";
    }
  }

  // --- fault-tolerance rows: same batch, same 16 MiB pooled config ---
  // Sidecar tile = 256 matches the default cache tiling, so the verified
  // engine resolves the identical tile grid and the comparison is purely
  // "checksum the miss path or not". Warm runs are best-of-3 on both sides:
  // the clean-path overhead must come from the ladder, not scheduler noise.
  const auto sums = core::compute_store_checksums(*store, /*tile=*/256);
  service::QueryEngineOptions base_opt;
  base_opt.cache_bytes = 16384u << 10;
  auto best_of_warm = [&](const service::QueryEngine& engine,
                          const char* mode) {
    engine.run_batch(queries);  // cold fill
    double best = 0.0;
    double best_s = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      const auto warm = engine.run_batch(queries);
      if (warm.qps > best) {
        best = warm.qps;
        best_s = warm.wall_seconds;
      }
    }
    rows.push_back({mode, 16384, 0, kQueries, best_s, best, 1.0});
    return best;
  };
  const double plain_qps =
      best_of_warm(service::QueryEngine(*store, base_opt), "ft_plain_warm");

  auto verified_opt = base_opt;
  verified_opt.checksums = sums;
  const double verified_qps = best_of_warm(
      service::QueryEngine(*store, verified_opt), "ft_verified_warm");
  const double overhead_pct =
      plain_qps <= 0.0 ? 0.0 : (plain_qps - verified_qps) / plain_qps * 100.0;
  std::cout << "checksum-verified warm path: " << verified_qps << " qps vs "
            << plain_qps << " qps plain (" << overhead_pct
            << "% overhead)\n";

  {  // degraded: transient read faults healed by the retry ladder (cold —
     // faults only exist on the miss path)
    sim::FaultPlan plan;
    plan.p_store_read = 0.2;
    sim::FaultInjector inject(plan);
    auto opt = verified_opt;
    opt.retry.max_retries = 4;
    opt.faults = &inject;
    const service::QueryEngine engine(*store, opt);
    const auto r = engine.run_batch(queries);
    rows.push_back({"ft_faulty_cold", 16384, 0, kQueries, r.wall_seconds,
                    r.qps, r.cache.hit_rate()});
    std::cout << "cold with 20% injected read faults: "
              << static_cast<long long>(r.qps) << " qps ("
              << r.service.retries << " retries, " << r.service.degraded
              << " degraded)\n";
  }
  {  // degraded: nothing readable — every tile quarantines, every query is
     // answered typed; measures the degraded-serve floor, not a hang
    sim::FaultPlan plan;
    plan.p_store_read = 1.0;
    sim::FaultInjector inject(plan);
    auto opt = verified_opt;
    opt.retry.max_retries = 1;
    opt.faults = &inject;
    const service::QueryEngine engine(*store, opt);
    const auto r = engine.run_batch(queries);
    rows.push_back({"ft_quarantined_cold", 16384, 0, kQueries,
                    r.wall_seconds, r.qps, 0.0});
    std::cout << "cold with unreadable store: "
              << static_cast<long long>(r.qps)
              << " qps all-degraded (" << r.service.degraded << " typed, "
              << r.cache.quarantined_tiles << " tiles quarantined)\n";
  }
  {  // overload: admission control sheds half the batch up front
    auto opt = verified_opt;
    opt.max_queue = kQueries / 2;
    const service::QueryEngine engine(*store, opt);
    engine.run_batch(queries);  // cold fill
    const auto r = engine.run_batch(queries);
    rows.push_back({"ft_shed_warm", 16384, 0, kQueries, r.wall_seconds,
                    r.qps, 1.0});
    std::cout << "warm with max-queue " << kQueries / 2 << ": "
              << static_cast<long long>(r.qps) << " qps ("
              << (r.service.shed / 2) << " shed this run)\n";
  }

  write_json(rows, "BENCH_query.json");

  const double at_qps = rows.front().qps;
  const double speedup = best_warm_qps / at_qps;
  std::cout << "warm-cache batch vs at() loop: " << speedup << "x\n";
  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::cerr << "FAILED: query service speedup below " << min_speedup
              << "x\n";
    return 1;
  }
  if (max_overhead_pct >= 0.0 && overhead_pct > max_overhead_pct) {
    std::cerr << "FAILED: checksum-verified clean path costs "
              << overhead_pct << "% (budget " << max_overhead_pct << "%)\n";
    return 1;
  }
  return 0;
}
