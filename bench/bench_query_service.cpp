// Benchmark of the distance-oracle query service (DESIGN.md §10).
//
// Solves one road graph into a file-backed store, then measures batched
// point-query throughput through the block-cached QueryEngine — cold cache
// vs warm cache, across cache capacities, serial vs pooled — against the
// baseline every pre-service caller used: a per-element DistStore::at()
// loop that pays one seek+read per query. Writes BENCH_query.json.
//
// `--assert-min-speedup=R` exits non-zero unless the warm-cache pooled
// batch throughput is at least R× the at() loop — the acceptance guard
// (ISSUE 4 requires ≥ 5×).
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/apsp.h"
#include "graph/generators.h"
#include "service/query_engine.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace gapsp;

struct Row {
  std::string mode;
  std::size_t cache_kb = 0;
  int threads = 0;
  std::size_t queries = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double hit_rate = 0.0;
};

void write_json(const std::vector<Row>& rows, const std::string& path) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "  {\"mode\": \"" << r.mode << "\", \"cache_kb\": " << r.cache_kb
        << ", \"threads\": " << r.threads << ", \"queries\": " << r.queries
        << ", \"seconds\": " << r.seconds << ", \"qps\": " << r.qps
        << ", \"hit_rate\": " << r.hit_rate << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::cout << rows.size() << " rows -> " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  double min_speedup = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--assert-min-speedup=", 21) == 0) {
      min_speedup = std::stod(argv[i] + 21);
    }
  }

  // One solved matrix serves every series: road 40×40 → n = 1600, a 10 MiB
  // file store, 49 cache tiles of 256².
  const auto g = graph::make_road(40, 40, 11);
  const vidx_t n = g.num_vertices();
  core::ApspOptions opts;
  opts.device = sim::DeviceSpec::v100_scaled();
  opts.algorithm = core::Algorithm::kJohnson;
  const std::string store_path = "bench_query_dist.bin";
  auto store = core::make_file_store(n, store_path, /*keep_file=*/false);
  const auto solved = core::solve_apsp(g, opts, *store);
  std::cout << "solved n=" << n << " via "
            << core::algorithm_name(solved.used) << ", serving from "
            << store_path << "\n";

  constexpr std::size_t kQueries = 50000;
  Rng rng(17);
  std::vector<service::Query> queries;
  queries.reserve(kQueries);
  for (std::size_t i = 0; i < kQueries; ++i) {
    queries.push_back({service::QueryKind::kPoint,
                       static_cast<vidx_t>(rng.next_below(n)),
                       static_cast<vidx_t>(rng.next_below(n))});
  }

  std::vector<Row> rows;

  // --- baseline: the pre-service read path, one at() per element ---
  {
    Timer t;
    long long sum = 0;
    for (const auto& q : queries) sum += store->at(q.u, q.v);
    const double s = t.seconds();
    rows.push_back({"at_loop", 0, 1, kQueries, s,
                    static_cast<double>(kQueries) / s, 0.0});
    std::cout << "at() loop: " << s * 1e3 << " ms ("
              << static_cast<long long>(rows.back().qps)
              << " qps, checksum " << sum << ")\n";
  }

  double best_warm_qps = 0.0;
  for (const std::size_t cache_kb : {256u, 1024u, 4096u, 16384u}) {
    service::QueryEngineOptions qopt;
    qopt.cache_bytes = cache_kb << 10;
    for (const int threads : {1, 0}) {  // serial, then the whole pool
      qopt.max_threads = threads;
      const service::QueryEngine engine(*store, qopt);
      const auto cold = engine.run_batch(queries);
      rows.push_back({"cold", cache_kb, threads, kQueries, cold.wall_seconds,
                      cold.qps, cold.cache.hit_rate()});
      const auto warm = engine.run_batch(queries);
      const auto warm_stats = warm.cache;
      // Batched execution resolves each tile once per bucket, so cache
      // counters move per tile resolution: the warm hit rate is the share
      // of the warm run's resolutions served from cache.
      const auto hits_d =
          static_cast<double>(warm_stats.hits - cold.cache.hits);
      const auto miss_d =
          static_cast<double>(warm_stats.misses - cold.cache.misses);
      const double warm_hit_rate =
          hits_d + miss_d == 0.0 ? 1.0 : hits_d / (hits_d + miss_d);
      rows.push_back({"warm", cache_kb, threads, kQueries, warm.wall_seconds,
                      warm.qps, warm_hit_rate});
      if (threads == 0) best_warm_qps = std::max(best_warm_qps, warm.qps);
      std::cout << "cache " << (cache_kb >> 10 > 0 ? cache_kb >> 10 : cache_kb)
                << (cache_kb >= 1024 ? " MiB" : " KiB") << ", "
                << (threads == 1 ? "serial" : "pooled") << ": cold "
                << static_cast<long long>(cold.qps) << " qps, warm "
                << static_cast<long long>(warm.qps) << " qps ("
                << warm_hit_rate * 100.0 << "% warm tile hits, "
                << warm_stats.evictions << " evictions)\n";
    }
  }

  write_json(rows, "BENCH_query.json");

  const double at_qps = rows.front().qps;
  const double speedup = best_warm_qps / at_qps;
  std::cout << "warm-cache batch vs at() loop: " << speedup << "x\n";
  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::cerr << "FAILED: query service speedup below " << min_speedup
              << "x\n";
    return 1;
  }
  return 0;
}
