// Shared configuration for the paper-reproduction benches. Every bench
// prints the rows/series of one table or figure of the paper; EXPERIMENTS.md
// records paper-vs-measured for each.
#pragma once

#include <cmath>
#include <iostream>
#include <string>

#include "baseline/baselines.h"
#include "core/apsp.h"
#include "graph/suite.h"
#include "util/table.h"

namespace gapsp::bench {

/// The scaled device configurations used throughout the evaluation (see
/// DESIGN.md §2: memory and SM count scale together, the host link keeps the
/// paper-measured PCIe throughput).
inline sim::DeviceSpec bench_v100() { return sim::DeviceSpec::v100_scaled(); }
inline sim::DeviceSpec bench_k80() { return sim::DeviceSpec::k80_scaled(); }

/// Density-filter thresholds scaled to this machine's graph sizes. Density
/// of a bounded-degree graph is deg/n, so the paper's 1% / 0.01% at
/// n ≈ 10⁵ correspond to ~4% / 0.8% at n ≈ 10³ (see DESIGN.md §2).
inline core::SelectorOptions bench_selector() {
  core::SelectorOptions s;
  s.dense_percent = 4.0;
  s.sparse_percent = 0.8;
  return s;
}

inline core::ApspOptions bench_options(const sim::DeviceSpec& dev) {
  core::ApspOptions o;
  o.device = dev;
  return o;
}

/// The paper's BGL-plus host (Table II text: 14-core E5-2680, 28 threads).
inline baseline::CpuSpec bench_cpu() { return baseline::CpuSpec::e5_2680_v2(); }

inline std::string ms(double seconds, int digits = 3) {
  return Table::num(seconds * 1e3, digits);
}

inline void print_header(const std::string& what, const std::string& paper) {
  std::cout << "==============================================================\n"
            << what << "\n"
            << "paper reference: " << paper << "\n"
            << "==============================================================\n";
}

}  // namespace gapsp::bench
