// Benchmark of the block-compressed distance store (DESIGN.md §11).
//
// For each graph family the paper's footprint argument cares about —
// connected road, kInf-dominated road-like (disjoint grid components), and
// R-MAT — this solves into a raw kept file store, compacts it into a
// GAPSPZ1 store, and measures: compression ratio, compress and decompress
// throughput, full-scan time raw vs compressed (the chaos-resume /
// re-ingest read path), warm point-query throughput raw vs compressed
// through the QueryEngine, and full-decompress bit-parity against the raw
// store. Writes BENCH_store_compression.json.
//
// The scan numbers need care to read: both files sit in the page cache
// here, so the raw scan is a memcpy-speed fread and the compressed scan is
// CPU-bound decompression — `scan_speedup` is therefore < 1 and reported
// only to price the decompression cost. The win the paper cares about is
// bytes moved across a disk- or link-bound channel, so the headline
// `io_speedup` combines the *measured* decompress time with a *modeled*
// byte-transfer time at `--disk-mbps` (default 200, SATA-class):
//   t_raw = raw_bytes / disk,  t_z = z_bytes / disk + measured decompress,
//   io_speedup = t_raw / t_z.
//
// Acceptance guards (ISSUE 5), checked when the flags are given:
//   --assert-min-ratio R    kInf-dominated road-like family must reach
//                           max(4, R)× and R-MAT max(2, R)×
//   --assert-min-speedup S  io_speedup on the kInf-heavy family must be
//                           ≥ S, and warm query throughput on every
//                           family within 10% of raw (≥ 0.9×)
// `--transfer-compression=auto|on|off` sets the wire-path mode of the solve
// phase (the at-rest numbers are mode-invariant — stores are bit-identical
// either way); unknown values exit 2.
// All flags accept `--flag=V` and `--flag V`.
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/apsp.h"
#include "core/compressed_store.h"
#include "core/transfer_codec.h"
#include "graph/generators.h"
#include "service/query_engine.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace gapsp;

struct Row {
  std::string family;
  vidx_t n = 0;
  std::uint64_t raw_bytes = 0;
  std::uint64_t z_bytes = 0;
  double ratio = 0.0;
  long long tiles = 0;
  long long inf_tiles = 0;
  double compress_mbps = 0.0;
  double decompress_mbps = 0.0;
  double scan_raw_s = 0.0;
  double scan_z_s = 0.0;
  double scan_speedup = 0.0;  ///< page-cache-resident: prices decompression
  double io_speedup = 0.0;    ///< at --disk-mbps byte transfer, the paper's regime
  double warm_qps_raw = 0.0;
  double warm_qps_z = 0.0;
  double warm_parity = 0.0;
  bool bit_identical = false;
};

void write_json(const std::vector<Row>& rows, const std::string& path) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "  {\"family\": \"" << r.family << "\", \"n\": " << r.n
        << ", \"raw_bytes\": " << r.raw_bytes
        << ", \"compressed_bytes\": " << r.z_bytes
        << ", \"ratio\": " << r.ratio << ", \"tiles\": " << r.tiles
        << ", \"inf_tiles\": " << r.inf_tiles
        << ", \"compress_mbps\": " << r.compress_mbps
        << ", \"decompress_mbps\": " << r.decompress_mbps
        << ", \"scan_raw_s\": " << r.scan_raw_s
        << ", \"scan_z_s\": " << r.scan_z_s
        << ", \"scan_speedup\": " << r.scan_speedup
        << ", \"io_speedup\": " << r.io_speedup
        << ", \"warm_qps_raw\": " << r.warm_qps_raw
        << ", \"warm_qps_z\": " << r.warm_qps_z
        << ", \"warm_parity\": " << r.warm_parity
        << ", \"bit_identical\": " << (r.bit_identical ? "true" : "false")
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::cout << rows.size() << " rows -> " << path << "\n";
}

/// `components` disjoint side×side grids: road-like local structure with
/// (components−1)/components of all pairs unreachable — the kInf-dominated
/// regime the compressed store exists for.
graph::CsrGraph disjoint_grids(int components, vidx_t side,
                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<graph::Edge> edges;
  const vidx_t per = side * side;
  for (int c = 0; c < components; ++c) {
    const vidx_t base = static_cast<vidx_t>(c) * per;
    for (vidx_t r = 0; r < side; ++r) {
      for (vidx_t col = 0; col < side; ++col) {
        const vidx_t v = base + r * side + col;
        if (col + 1 < side) {
          edges.push_back({v, v + 1, static_cast<dist_t>(rng.next_in(1, 9))});
        }
        if (r + 1 < side) {
          edges.push_back(
              {v, v + side, static_cast<dist_t>(rng.next_in(1, 9))});
        }
      }
    }
  }
  return graph::CsrGraph::from_edges(static_cast<vidx_t>(components) * per,
                                     std::move(edges), true);
}

/// Full-matrix sweep in tile-height stripes (each stored tile decompressed
/// exactly once) returning wall time; accumulates into `sink` so the reads
/// cannot be optimized away. Pure read path — parity is checked separately
/// so the comparison never pollutes the timing.
double scan_store(const core::DistStore& store, vidx_t stripe,
                  long long* sink) {
  const vidx_t n = store.n();
  std::vector<dist_t> buf(static_cast<std::size_t>(stripe) *
                          static_cast<std::size_t>(n));
  Timer t;
  for (vidx_t r0 = 0; r0 < n; r0 += stripe) {
    const vidx_t rows = std::min<vidx_t>(stripe, n - r0);
    store.read_block(r0, 0, rows, n, buf.data(), static_cast<std::size_t>(n));
    for (vidx_t i = 0; i < rows; ++i) {
      *sink += buf[static_cast<std::size_t>(i) * n + (r0 + i) % n];
    }
  }
  return t.seconds();
}

/// Acceptance: the compressed store must decompress bit-identically.
bool stores_bit_identical(const core::DistStore& a, const core::DistStore& b,
                          vidx_t stripe) {
  const vidx_t n = a.n();
  std::vector<dist_t> ba(static_cast<std::size_t>(stripe) *
                         static_cast<std::size_t>(n));
  std::vector<dist_t> bb(ba.size());
  for (vidx_t r0 = 0; r0 < n; r0 += stripe) {
    const vidx_t rows = std::min<vidx_t>(stripe, n - r0);
    a.read_block(r0, 0, rows, n, ba.data(), static_cast<std::size_t>(n));
    b.read_block(r0, 0, rows, n, bb.data(), static_cast<std::size_t>(n));
    if (std::memcmp(ba.data(), bb.data(),
                    static_cast<std::size_t>(rows) * n * sizeof(dist_t)) !=
        0) {
      return false;
    }
  }
  return true;
}

double warm_batch_qps(const core::DistStore& store,
                      const std::vector<vidx_t>& perm,
                      const std::vector<service::Query>& queries) {
  service::QueryEngineOptions qopt;
  qopt.cache_bytes = 64u << 20;  // larger than any matrix here: warm = hits
  const service::QueryEngine engine(store, qopt, perm);
  engine.run_batch(queries);  // cold pass populates the cache
  double best = 0.0;
  for (int pass = 0; pass < 3; ++pass) {
    best = std::max(best, engine.run_batch(queries).qps);
  }
  return best;
}

Row run_family(const std::string& family, const graph::CsrGraph& g,
               double disk_mbps, core::TransferCompression wire_mode) {
  Row row;
  row.family = family;
  row.n = g.num_vertices();

  core::ApspOptions opts;
  opts.device = sim::DeviceSpec::v100_scaled();
  opts.algorithm = core::Algorithm::kJohnson;
  opts.transfer_compression = wire_mode;
  const std::string raw_path = "bench_zstore_" + family + ".bin";
  const std::string z_path = raw_path + ".z";
  core::ApspResult solved;
  {
    auto store = core::make_file_store(row.n, raw_path, /*keep_file=*/true);
    solved = core::solve_apsp(g, opts, *store);
  }  // closed: compaction re-reads the kept file, the CLI's exact flow

  const auto cs = core::compact_store(raw_path, z_path);
  row.raw_bytes = cs.raw_bytes;
  row.z_bytes = cs.compressed_bytes;
  row.ratio = cs.ratio();
  row.tiles = cs.tiles;
  row.inf_tiles = cs.inf_tiles;
  row.compress_mbps =
      static_cast<double>(cs.raw_bytes) / 1e6 / std::max(cs.seconds, 1e-12);

  const auto raw = core::open_store(raw_path);
  const auto z = core::open_store(z_path);
  const vidx_t stripe = z->tile_size();

  row.bit_identical = stores_bit_identical(*raw, *z, stripe);

  long long sink = 0;
  row.scan_raw_s = scan_store(*raw, stripe, &sink);
  row.scan_z_s = scan_store(*z, stripe, &sink);
  row.scan_speedup = row.scan_raw_s / std::max(row.scan_z_s, 1e-12);
  row.decompress_mbps =
      static_cast<double>(row.raw_bytes) / 1e6 / std::max(row.scan_z_s, 1e-12);
  const double t_raw = static_cast<double>(row.raw_bytes) / 1e6 / disk_mbps;
  const double t_z = static_cast<double>(row.z_bytes) / 1e6 / disk_mbps +
                     row.scan_z_s;
  row.io_speedup = t_raw / std::max(t_z, 1e-12);

  std::vector<service::Query> queries;
  Rng rng(29);
  for (int i = 0; i < 30000; ++i) {
    queries.push_back({service::QueryKind::kPoint,
                       static_cast<vidx_t>(rng.next_below(row.n)),
                       static_cast<vidx_t>(rng.next_below(row.n))});
  }
  row.warm_qps_raw = warm_batch_qps(*raw, solved.perm, queries);
  row.warm_qps_z = warm_batch_qps(*z, solved.perm, queries);
  row.warm_parity = row.warm_qps_z / std::max(row.warm_qps_raw, 1e-12);

  std::remove(raw_path.c_str());
  std::remove(z_path.c_str());

  std::cout << family << ": n=" << row.n << ", " << (row.raw_bytes >> 10)
            << " KiB -> " << (row.z_bytes >> 10) << " KiB (" << row.ratio
            << "x, " << row.inf_tiles << "/" << row.tiles
            << " all-kInf tiles), compress " << row.compress_mbps
            << " MB/s, decompress " << row.decompress_mbps
            << " MB/s, scan " << row.scan_speedup << "x (page cache), io "
            << row.io_speedup << "x @" << disk_mbps << " MB/s, warm query "
            << row.warm_parity << "x raw ("
            << static_cast<long long>(row.warm_qps_z) << " qps), "
            << (row.bit_identical ? "bit-identical" : "MISMATCH") << "\n";
  return row;
}

double flag_value(int argc, char** argv, int& i, const char* name) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(argv[i], name, len) != 0) return -1.0;
  if (argv[i][len] == '=') return std::stod(argv[i] + len + 1);
  if (argv[i][len] == '\0' && i + 1 < argc) return std::stod(argv[++i]);
  return -1.0;
}

const char* flag_string(int argc, char** argv, int& i, const char* name) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(argv[i], name, len) != 0) return nullptr;
  if (argv[i][len] == '=') return argv[i] + len + 1;
  if (argv[i][len] == '\0' && i + 1 < argc) return argv[++i];
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  double min_ratio = 0.0;
  double min_speedup = 0.0;
  double disk_mbps = 200.0;
  auto wire_mode = core::TransferCompression::kAuto;
  for (int i = 1; i < argc; ++i) {
    double v;
    const char* s;
    if ((s = flag_string(argc, argv, i, "--transfer-compression")) !=
        nullptr) {
      try {
        wire_mode = core::parse_transfer_compression(s);
      } catch (const Error& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
      }
    } else if ((v = flag_value(argc, argv, i, "--assert-min-ratio")) >= 0.0) {
      min_ratio = v;
    } else if ((v = flag_value(argc, argv, i, "--assert-min-speedup")) >=
               0.0) {
      min_speedup = v;
    } else if ((v = flag_value(argc, argv, i, "--disk-mbps")) > 0.0) {
      disk_mbps = v;
    }
  }

  std::vector<Row> rows;
  rows.push_back(
      run_family("road", graph::make_road(40, 40, 11), disk_mbps, wire_mode));
  // Eight disjoint 15×15 grids: n = 1800, 7/8 of all pairs at kInf.
  rows.push_back(run_family("road_kinf", disjoint_grids(8, 15, 13), disk_mbps,
                            wire_mode));
  // R-MAT without forced connectivity (Graph500-style): the natural
  // isolated-vertex tail leaves a large unreachable fraction.
  rows.push_back(run_family(
      "rmat", graph::make_rmat(11, 6000, 17, 0.57, 0.19, 0.19,
                               /*connect=*/false),
      disk_mbps, wire_mode));
  write_json(rows, "BENCH_store_compression.json");

  bool ok = true;
  for (const Row& r : rows) {
    if (!r.bit_identical) {
      std::cerr << "FAIL: " << r.family
                << " compressed store is not bit-identical to raw\n";
      ok = false;
    }
  }
  const Row& kinf = rows[1];
  const Row& rmat = rows[2];
  if (min_ratio > 0.0) {
    const double kinf_floor = std::max(4.0, min_ratio);
    const double rmat_floor = std::max(2.0, min_ratio);
    if (kinf.ratio < kinf_floor) {
      std::cerr << "FAIL: road_kinf ratio " << kinf.ratio << " < "
                << kinf_floor << "\n";
      ok = false;
    }
    if (rmat.ratio < rmat_floor) {
      std::cerr << "FAIL: rmat ratio " << rmat.ratio << " < " << rmat_floor
                << "\n";
      ok = false;
    }
  }
  if (min_speedup > 0.0) {
    if (kinf.io_speedup < min_speedup) {
      std::cerr << "FAIL: road_kinf io speedup " << kinf.io_speedup << " < "
                << min_speedup << "\n";
      ok = false;
    }
    for (const Row& r : rows) {
      if (r.warm_parity < 0.9) {
        std::cerr << "FAIL: " << r.family << " warm query parity "
                  << r.warm_parity << " < 0.9\n";
        ok = false;
      }
    }
  }
  if (!ok) return 1;
  if (min_ratio > 0.0 || min_speedup > 0.0) {
    std::cout << "asserts passed (min-ratio " << min_ratio
              << ", min-speedup " << min_speedup << ")\n";
  }
  return 0;
}
