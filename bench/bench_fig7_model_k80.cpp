// Fig. 7: the Fig. 6 estimated-vs-actual study repeated on the K80 — the
// paper's generality check across devices.
#define GAPSP_FIG7_K80
#include "bench_fig6_model_v100.cpp"

int main() {
  return gapsp::bench::run_model_accuracy(
      gapsp::bench::bench_k80(), "Fig. 7",
      "Fig. 7 (same study on the K80; model stays accurate across devices)");
}
