#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/device_kernels.h"
#include "util/rng.h"
#include "core/minplus.h"
#include "graph/generators.h"
#include "sssp/dijkstra.h"

namespace gapsp::core {
namespace {

TEST(MinPlus, SmallKnownProduct) {
  // C = min(C, A⊗B) with 2x2 matrices.
  std::vector<dist_t> a{1, 4, 2, kInf};
  std::vector<dist_t> b{10, 1, 3, 2};
  std::vector<dist_t> c{100, 100, 100, 100};
  minplus_accum(c.data(), 2, a.data(), 2, b.data(), 2, 2, 2, 2);
  // c00 = min(100, 1+10, 4+3) = 7 ; c01 = min(100, 1+1, 4+2) = 2
  // c10 = min(100, 2+10, inf+3) = 12 ; c11 = min(100, 2+1, inf+2) = 3
  EXPECT_EQ(c, (std::vector<dist_t>{7, 2, 12, 3}));
}

TEST(MinPlus, AccumulateKeepsSmallerExisting) {
  std::vector<dist_t> a{5}, b{5}, c{3};
  minplus_accum(c.data(), 1, a.data(), 1, b.data(), 1, 1, 1, 1);
  EXPECT_EQ(c[0], 3);
}

TEST(MinPlus, InfinityRowsAreNeutral) {
  std::vector<dist_t> a{kInf, kInf};
  std::vector<dist_t> b{1, 2, 3, 4};
  std::vector<dist_t> c{kInf, kInf};
  minplus_accum(c.data(), 2, a.data(), 2, b.data(), 2, 1, 2, 2);
  EXPECT_EQ(c[0], kInf);
  EXPECT_EQ(c[1], kInf);
}

TEST(MinPlus, ValuesNeverExceedInfinity) {
  std::vector<dist_t> a{kInf - 1};
  std::vector<dist_t> b{kInf};
  std::vector<dist_t> c{kInf};
  minplus_accum(c.data(), 1, a.data(), 1, b.data(), 1, 1, 1, 1);
  EXPECT_LE(c[0], kInf);
}

TEST(MinPlus, IdentityUnderMinPlusLeavesMatrix) {
  // Identity of min-plus: 0 on the diagonal, inf elsewhere.
  const vidx_t n = 5;
  std::vector<dist_t> id(n * n, kInf);
  for (vidx_t i = 0; i < n; ++i) id[i * n + i] = 0;
  std::vector<dist_t> m(n * n);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = static_cast<dist_t>(i % 17 + 1);
  }
  std::vector<dist_t> c = m;
  minplus_accum(c.data(), n, id.data(), n, m.data(), n, n, n, n);
  EXPECT_EQ(c, m);
}

TEST(MinPlus, RectangularShapes) {
  // 1x3 times 3x2.
  std::vector<dist_t> a{1, 2, 3};
  std::vector<dist_t> b{4, 5, 6, 7, 8, 9};
  std::vector<dist_t> c{kInf, kInf};
  minplus_accum(c.data(), 2, a.data(), 3, b.data(), 2, 1, 3, 2);
  EXPECT_EQ(c[0], 5);  // min(1+4, 2+6, 3+8)
  EXPECT_EQ(c[1], 6);  // min(1+5, 2+7, 3+9)
}

TEST(MinPlus, StridedSubmatrices) {
  // Operate on the top-left 2x2 of 3x3 buffers (ld = 3).
  std::vector<dist_t> a{1, 2, 99, 3, 4, 99, 99, 99, 99};
  std::vector<dist_t> b{1, 1, 99, 1, 1, 99, 99, 99, 99};
  std::vector<dist_t> c(9, kInf);
  minplus_accum(c.data(), 3, a.data(), 3, b.data(), 3, 2, 2, 2);
  EXPECT_EQ(c[0], 2);
  EXPECT_EQ(c[4], 4);
  EXPECT_EQ(c[2], kInf);  // untouched outside the submatrix
  EXPECT_EQ(c[8], kInf);
}

std::vector<dist_t> weight_matrix(const graph::CsrGraph& g) {
  const vidx_t n = g.num_vertices();
  std::vector<dist_t> m(static_cast<std::size_t>(n) * n, kInf);
  for (vidx_t u = 0; u < n; ++u) {
    m[static_cast<std::size_t>(u) * n + u] = 0;
    const auto nbr = g.neighbors(u);
    const auto wts = g.weights(u);
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      auto& cell = m[static_cast<std::size_t>(u) * n + nbr[i]];
      cell = std::min(cell, wts[i]);
    }
  }
  return m;
}

TEST(FwInplace, MatchesDijkstraOnRandomGraph) {
  const auto g = graph::make_erdos_renyi(60, 240, 77);
  auto m = weight_matrix(g);
  fw_inplace(m.data(), g.num_vertices(), g.num_vertices());
  for (vidx_t u = 0; u < g.num_vertices(); ++u) {
    const auto ref = sssp::dijkstra(g, u);
    for (vidx_t v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(m[static_cast<std::size_t>(u) * g.num_vertices() + v], ref[v]);
    }
  }
}

TEST(FwInplace, HandlesDisconnected) {
  const auto g = graph::CsrGraph::from_edges(4, {{0, 1, 3}, {2, 3, 4}}, true);
  auto m = weight_matrix(g);
  fw_inplace(m.data(), 4, 4);
  EXPECT_EQ(m[0 * 4 + 1], 3);
  EXPECT_EQ(m[0 * 4 + 2], kInf);
}

TEST(FwPanels, RowPanelEqualsOutOfPlace) {
  // In-place row panel update against a closed diagonal must equal the
  // out-of-place result (Sec. III-A correctness argument).
  const vidx_t nk = 8, nc = 12;
  Rng rng(5);
  std::vector<dist_t> d(nk * nk), p(nk * nc);
  for (auto& x : d) x = static_cast<dist_t>(rng.next_in(1, 40));
  for (vidx_t i = 0; i < nk; ++i) d[i * nk + i] = 0;
  fw_inplace(d.data(), nk, nk);  // close the diagonal block
  for (auto& x : p) x = static_cast<dist_t>(rng.next_in(1, 40));

  std::vector<dist_t> expect = p;
  {
    std::vector<dist_t> src = p;  // out-of-place reference
    minplus_accum(expect.data(), nc, d.data(), nk, src.data(), nc, nk, nk, nc);
  }
  fw_row_panel(p.data(), nc, d.data(), nk, nk, nc);  // in-place
  EXPECT_EQ(p, expect);
}

TEST(FwPanels, ColPanelEqualsOutOfPlace) {
  const vidx_t nr = 10, nk = 6;
  Rng rng(9);
  std::vector<dist_t> d(nk * nk), p(nr * nk);
  for (auto& x : d) x = static_cast<dist_t>(rng.next_in(1, 40));
  for (vidx_t i = 0; i < nk; ++i) d[i * nk + i] = 0;
  fw_inplace(d.data(), nk, nk);
  for (auto& x : p) x = static_cast<dist_t>(rng.next_in(1, 40));

  std::vector<dist_t> expect = p;
  {
    std::vector<dist_t> src = p;
    minplus_accum(expect.data(), nk, src.data(), nk, d.data(), nk, nr, nk, nk);
  }
  fw_col_panel(p.data(), nk, d.data(), nk, nr, nk);
  EXPECT_EQ(p, expect);
}

TEST(DeviceKernels, BlockedFwMatchesPlainFw) {
  const auto g = graph::make_erdos_renyi(150, 700, 13);
  auto plain = weight_matrix(g);
  auto blocked = plain;
  fw_inplace(plain.data(), g.num_vertices(), g.num_vertices());

  sim::Device dev(sim::DeviceSpec::v100().with_memory(1 << 20));
  auto buf = dev.alloc<dist_t>(blocked.size());
  std::copy(blocked.begin(), blocked.end(), buf.data());
  // tile smaller than n forces the multi-round blocked path
  dev_blocked_fw(dev, sim::kDefaultStream, buf.data(), g.num_vertices(),
                 g.num_vertices(), /*tile=*/32);
  for (std::size_t i = 0; i < plain.size(); ++i) {
    ASSERT_EQ(buf.data()[i], plain[i]) << "at " << i;
  }
}

TEST(DeviceKernels, BlockedFwNonDivisibleTail) {
  const auto g = graph::make_erdos_renyi(70, 300, 14);  // 70 % 32 != 0
  auto plain = weight_matrix(g);
  auto copy = plain;
  fw_inplace(plain.data(), 70, 70);
  sim::Device dev(sim::DeviceSpec::v100().with_memory(1 << 20));
  auto buf = dev.alloc<dist_t>(copy.size());
  std::copy(copy.begin(), copy.end(), buf.data());
  dev_blocked_fw(dev, sim::kDefaultStream, buf.data(), 70, 70, 32);
  for (std::size_t i = 0; i < plain.size(); ++i) {
    ASSERT_EQ(buf.data()[i], plain[i]);
  }
}

TEST(DeviceKernels, MinplusLaunchChargesKernel) {
  sim::Device dev(sim::DeviceSpec::v100().with_memory(1 << 20));
  auto a = dev.alloc<dist_t>(64 * 64);
  std::fill_n(a.data(), 64 * 64, 1);
  const double t = dev_minplus(dev, sim::kDefaultStream, a.data(), 64,
                               a.data(), 64, a.data(), 64, 64, 64, 64);
  EXPECT_GT(t, 0.0);
  EXPECT_EQ(dev.metrics().kernels, 1);
}

TEST(DeviceKernels, CostHelpers) {
  EXPECT_DOUBLE_EQ(minplus_ops(2, 3, 4), 48.0);
  EXPECT_GT(minplus_bytes(64, 64, 64, 32), 0.0);
}

}  // namespace
}  // namespace gapsp::core
