// Directed / asymmetric-weight coverage. The zoo is undirected (SuiteSparse
// matrices are symmetric), but nothing in the algorithms requires symmetry:
// Floyd-Warshall is inherently directed, Johnson runs directed SSSP, and the
// boundary algorithm's cross-edge and C2B/B2C constructions are directional.
// These tests pin that property.
#include <gtest/gtest.h>

#include <vector>

#include "core/apsp.h"
#include "core/component_solver.h"
#include "core/path_extract.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "test_util.h"
#include "util/rng.h"

namespace gapsp::core {
namespace {

/// Random directed graph: distinct weights per direction, some one-way arcs.
graph::CsrGraph random_directed(vidx_t n, eidx_t m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<graph::Edge> edges;
  for (eidx_t e = 0; e < m; ++e) {
    const auto u = static_cast<vidx_t>(rng.next_below(n));
    const auto v = static_cast<vidx_t>(rng.next_below(n));
    if (u == v) continue;
    edges.push_back({u, v, static_cast<dist_t>(rng.next_in(1, 50))});
    if (rng.next_bool(0.5)) {
      // Two-way street with a *different* return weight.
      edges.push_back({v, u, static_cast<dist_t>(rng.next_in(1, 50))});
    }
  }
  // A directed cycle keeps everything reachable without symmetrizing.
  for (vidx_t v = 0; v < n; ++v) {
    edges.push_back({v, (v + 1) % n, static_cast<dist_t>(rng.next_in(1, 50))});
  }
  return graph::CsrGraph::from_edges(n, std::move(edges),
                                     /*symmetrize=*/false);
}

class DirectedApsp : public ::testing::TestWithParam<int> {
 protected:
  static ApspOptions opts() {
    ApspOptions o;
    o.device = sim::DeviceSpec::v100_scaled(2u << 20);
    o.fw_tile = 32;
    return o;
  }
};

TEST_P(DirectedApsp, MatchesDijkstraOnAsymmetricGraph) {
  const Algorithm algos[] = {Algorithm::kBlockedFloydWarshall,
                             Algorithm::kJohnson, Algorithm::kBoundary};
  const auto g = random_directed(180, 700, 901);
  auto o = opts();
  o.algorithm = algos[GetParam()];
  auto store = make_ram_store(g.num_vertices());
  const auto r = solve_apsp(g, o, *store);
  test::expect_store_matches_reference(g, *store, r);
}

TEST_P(DirectedApsp, AsymmetryIsPreserved) {
  const Algorithm algos[] = {Algorithm::kBlockedFloydWarshall,
                             Algorithm::kJohnson, Algorithm::kBoundary};
  // 0 -> 1 cheap, 1 -> 0 expensive (and no shortcut back).
  auto g = graph::CsrGraph::from_edges(
      3, {{0, 1, 1}, {1, 0, 40}, {1, 2, 1}, {2, 0, 50}}, false);
  auto o = opts();
  o.algorithm = algos[GetParam()];
  auto store = make_ram_store(3);
  const auto r = solve_apsp(g, o, *store);
  EXPECT_EQ(store->at(r.stored_id(0), r.stored_id(1)), 1);
  EXPECT_EQ(store->at(r.stored_id(1), r.stored_id(0)), 40);
  EXPECT_EQ(store->at(r.stored_id(0), r.stored_id(2)), 2);
  EXPECT_EQ(store->at(r.stored_id(2), r.stored_id(0)), 50);
}

TEST_P(DirectedApsp, OneWayUnreachability) {
  const Algorithm algos[] = {Algorithm::kBlockedFloydWarshall,
                             Algorithm::kJohnson, Algorithm::kBoundary};
  // Strict DAG: nothing flows backwards.
  auto g = graph::CsrGraph::from_edges(
      4, {{0, 1, 2}, {1, 2, 3}, {2, 3, 4}}, false);
  auto o = opts();
  o.algorithm = algos[GetParam()];
  auto store = make_ram_store(4);
  const auto r = solve_apsp(g, o, *store);
  EXPECT_EQ(store->at(r.stored_id(0), r.stored_id(3)), 9);
  EXPECT_EQ(store->at(r.stored_id(3), r.stored_id(0)), kInf);
  EXPECT_EQ(store->at(r.stored_id(2), r.stored_id(1)), kInf);
}

std::string directed_name(const ::testing::TestParamInfo<int>& info) {
  static const char* names[] = {"fw", "johnson", "boundary"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(Algorithms, DirectedApsp, ::testing::Range(0, 3),
                         directed_name);

TEST(DirectedPath, BacktrackingFollowsArcDirections) {
  const auto g = random_directed(60, 200, 902);
  ApspOptions o;
  o.device = test::tiny_device(1u << 20);
  o.algorithm = Algorithm::kJohnson;
  auto store = make_ram_store(g.num_vertices());
  const auto r = solve_apsp(g, o, *store);
  const PathExtractor px(g, *store, r);
  Rng rng(3);
  for (int trial = 0; trial < 40; ++trial) {
    const auto u = static_cast<vidx_t>(rng.next_below(60));
    const auto v = static_cast<vidx_t>(rng.next_below(60));
    const dist_t d = px.distance(u, v);
    const auto p = px.path(u, v);
    if (d >= kInf) {
      EXPECT_TRUE(p.empty());
    } else {
      ASSERT_FALSE(p.empty());
      // walk_length validates every hop as a real *directed* arc.
      EXPECT_EQ(px.walk_length(p), d);
    }
  }
}

TEST(DirectedComponents, BackwardArcStillOneWeakComponent) {
  // Regression: component_labels used to follow out-edges only, so the sole
  // arc 1 -> 0 left vertex 0 labelled before its in-neighbour was reached
  // and the graph split into two bogus components.
  const auto g = graph::CsrGraph::from_edges(2, {{1, 0, 5}}, false);
  const auto labels = graph::component_labels(g);
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(graph::count_components(g), 1);
  EXPECT_TRUE(graph::is_connected(g));
}

TEST(DirectedComponents, ReverseChainIsOneWeakComponent) {
  // Every arc points "backwards" (v -> v-1): an out-edge-only BFS from any
  // start reaches only lower-numbered vertices, fragmenting the chain.
  std::vector<graph::Edge> edges;
  for (vidx_t v = 1; v < 50; ++v) edges.push_back({v, v - 1, 1});
  const auto g = graph::CsrGraph::from_edges(50, std::move(edges), false);
  EXPECT_EQ(graph::count_components(g), 1);
  const auto labels = graph::component_labels(g);
  for (vidx_t v = 1; v < 50; ++v) EXPECT_EQ(labels[v], labels[0]);
}

TEST(DirectedComponents, PerComponentSolveKeepsOneWayDistances) {
  // Weak components group 1 -> 0 together, and the per-component solve must
  // still report the directed truth: 1 reaches 0, 0 never reaches 1.
  const auto g = graph::CsrGraph::from_edges(2, {{1, 0, 5}}, false);
  ApspOptions o;
  o.device = test::tiny_device(1u << 20);
  o.algorithm = Algorithm::kJohnson;
  auto store = make_ram_store(2);
  const auto r = solve_apsp_per_component(g, o, *store, {});
  EXPECT_EQ(r.num_components, 1);
  EXPECT_EQ(store->at(r.result.stored_id(1), r.result.stored_id(0)), 5);
  EXPECT_EQ(store->at(r.result.stored_id(0), r.result.stored_id(1)), kInf);
}

}  // namespace
}  // namespace gapsp::core
