#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/csr_graph.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "graph/suite.h"

namespace gapsp::graph {
namespace {

TEST(CsrGraph, BuildsFromEdgeList) {
  CsrGraph g = CsrGraph::from_edges(
      3, {{0, 1, 5}, {1, 2, 7}, {0, 2, 9}}, /*symmetrize=*/false);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.out_degree(0), 2);
  EXPECT_EQ(g.out_degree(2), 0);
  EXPECT_EQ(g.neighbors(0)[0], 1);
  EXPECT_EQ(g.weights(0)[0], 5);
}

TEST(CsrGraph, SymmetrizeAddsReverseArcs) {
  CsrGraph g = CsrGraph::from_edges(2, {{0, 1, 3}}, /*symmetrize=*/true);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.neighbors(1)[0], 0);
  EXPECT_EQ(g.weights(1)[0], 3);
}

TEST(CsrGraph, DropsSelfLoops) {
  CsrGraph g = CsrGraph::from_edges(2, {{0, 0, 1}, {0, 1, 2}}, false);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(CsrGraph, DuplicateEdgesKeepMinimumWeight) {
  CsrGraph g = CsrGraph::from_edges(
      2, {{0, 1, 9}, {0, 1, 4}, {0, 1, 6}}, false);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.weights(0)[0], 4);
}

TEST(CsrGraph, RejectsOutOfRangeEndpoints) {
  EXPECT_THROW(CsrGraph::from_edges(2, {{0, 2, 1}}, false), Error);
  EXPECT_THROW(CsrGraph::from_edges(2, {{-1, 0, 1}}, false), Error);
}

TEST(CsrGraph, RejectsBadWeights) {
  EXPECT_THROW(CsrGraph::from_edges(2, {{0, 1, -3}}, false), Error);
  EXPECT_THROW(CsrGraph::from_edges(2, {{0, 1, kInf}}, false), Error);
}

TEST(CsrGraph, TransposeReversesArcs) {
  CsrGraph g = CsrGraph::from_edges(3, {{0, 1, 5}, {1, 2, 7}}, false);
  CsrGraph t = g.transpose();
  EXPECT_EQ(t.num_edges(), 2);
  EXPECT_EQ(t.out_degree(0), 0);
  EXPECT_EQ(t.neighbors(1)[0], 0);
  EXPECT_EQ(t.neighbors(2)[0], 1);
}

TEST(CsrGraph, TransposeOfSymmetricGraphPreservesEdges) {
  CsrGraph g = make_road(8, 8, 1);
  CsrGraph t = g.transpose();
  EXPECT_EQ(g.num_edges(), t.num_edges());
  for (vidx_t u = 0; u < g.num_vertices(); ++u) {
    EXPECT_EQ(g.out_degree(u), t.out_degree(u));
  }
}

TEST(CsrGraph, RelabelPermutesEverything) {
  CsrGraph g = CsrGraph::from_edges(3, {{0, 1, 5}, {1, 2, 7}}, false);
  const std::vector<vidx_t> perm{2, 0, 1};  // 0->2, 1->0, 2->1
  CsrGraph r = g.relabel(perm);
  EXPECT_EQ(r.num_edges(), 2);
  EXPECT_EQ(r.neighbors(2)[0], 0);  // old (0,1,5)
  EXPECT_EQ(r.weights(2)[0], 5);
  EXPECT_EQ(r.neighbors(0)[0], 1);  // old (1,2,7)
}

TEST(CsrGraph, RelabelRejectsWrongSize) {
  CsrGraph g = CsrGraph::from_edges(3, {{0, 1, 5}}, false);
  const std::vector<vidx_t> perm{0, 1};
  EXPECT_THROW(g.relabel(perm), Error);
}

TEST(CsrGraph, DensityPercent) {
  CsrGraph g = CsrGraph::from_edges(10, {{0, 1, 1}, {2, 3, 1}}, false);
  EXPECT_DOUBLE_EQ(g.density_percent(), 100.0 * 2 / 100.0);
}

TEST(CsrGraph, BytesAccountsAllArrays) {
  CsrGraph g = CsrGraph::from_edges(4, {{0, 1, 1}, {1, 2, 1}}, false);
  EXPECT_EQ(g.bytes(), 5 * sizeof(eidx_t) + 2 * sizeof(vidx_t) +
                           2 * sizeof(dist_t));
}

TEST(CsrGraph, WeightStats) {
  CsrGraph g = CsrGraph::from_edges(3, {{0, 1, 2}, {1, 2, 8}}, false);
  EXPECT_EQ(g.max_weight(), 8);
  EXPECT_DOUBLE_EQ(g.mean_weight(), 5.0);
}

// ---- generators ----

TEST(Generators, RoadIsConnectedAndUndirected) {
  CsrGraph g = make_road(12, 15, 99);
  EXPECT_EQ(g.num_vertices(), 12 * 15);
  EXPECT_TRUE(is_connected(g));
  // Undirected: every arc has its reverse with the same weight.
  for (vidx_t u = 0; u < g.num_vertices(); ++u) {
    const auto nbr = g.neighbors(u);
    const auto wts = g.weights(u);
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      const auto back = g.neighbors(nbr[i]);
      const auto bw = g.weights(nbr[i]);
      bool found = false;
      for (std::size_t j = 0; j < back.size(); ++j) {
        if (back[j] == u && bw[j] == wts[i]) found = true;
      }
      EXPECT_TRUE(found) << "missing reverse of (" << u << "," << nbr[i] << ")";
    }
  }
}

TEST(Generators, RoadDeterministicPerSeed) {
  CsrGraph a = make_road(10, 10, 5);
  CsrGraph b = make_road(10, 10, 5);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_TRUE(std::equal(a.targets().begin(), a.targets().end(),
                         b.targets().begin()));
  EXPECT_TRUE(std::equal(a.edge_weights().begin(), a.edge_weights().end(),
                         b.edge_weights().begin()));
}

TEST(Generators, MeshIsConnectedWithExpectedDegree) {
  CsrGraph g = make_mesh(400, 12, 17);
  EXPECT_EQ(g.num_vertices(), 400);
  EXPECT_TRUE(is_connected(g));
  const auto ds = degree_stats(g);
  EXPECT_GT(ds.mean, 6.0);
}

TEST(Generators, RmatHasPowerOfTwoVertices) {
  CsrGraph g = make_rmat(8, 1500, 3);
  EXPECT_EQ(g.num_vertices(), 256);
  EXPECT_TRUE(is_connected(g));
  // Scale-free skew: max degree far above mean.
  const auto ds = degree_stats(g);
  EXPECT_GT(ds.max, 3 * ds.mean);
}

TEST(Generators, RmatRejectsBadProbabilities) {
  EXPECT_THROW(make_rmat(4, 10, 1, 0.7, 0.2, 0.2), Error);
}

TEST(Generators, ErdosRenyiUnconnectedOption) {
  CsrGraph g = make_erdos_renyi(300, 30, 5, /*connect=*/false);
  EXPECT_GT(count_components(g), 1);
  CsrGraph c = make_erdos_renyi(300, 30, 5, /*connect=*/true);
  EXPECT_TRUE(is_connected(c));
}

TEST(Generators, DenseHitsRequestedDensity) {
  CsrGraph g = make_dense(200, 10.0, 8);
  EXPECT_NEAR(g.density_percent(), 10.0, 2.5);
}

TEST(Generators, WeightsWithinConfiguredRange) {
  WeightConfig w{3, 7};
  CsrGraph g = make_road(8, 8, 2, 0.1, 0.05, w);
  for (dist_t wt : g.edge_weights()) {
    EXPECT_GE(wt, 3);
    EXPECT_LE(wt, 7);
  }
}

// ---- stats ----

TEST(GraphStats, ComponentsOfForest) {
  CsrGraph g = CsrGraph::from_edges(6, {{0, 1, 1}, {2, 3, 1}}, true);
  EXPECT_EQ(count_components(g), 4);  // {0,1},{2,3},{4},{5}
  const auto labels = component_labels(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[2], labels[3]);
  EXPECT_NE(labels[0], labels[2]);
}

TEST(GraphStats, DegreeStatsSimple) {
  CsrGraph g = CsrGraph::from_edges(3, {{0, 1, 1}, {0, 2, 1}}, false);
  const auto ds = degree_stats(g);
  EXPECT_EQ(ds.max, 2);
  EXPECT_EQ(ds.min, 0);
  EXPECT_NEAR(ds.mean, 2.0 / 3.0, 1e-12);
}

// ---- zoo ----

TEST(Suite, ZoosHavePaperCardinality) {
  EXPECT_EQ(small_separator_zoo().size(), 11u);
  EXPECT_EQ(other_sparse_zoo().size(), 8u);
  EXPECT_EQ(large_zoo().size(), 10u);
}

TEST(Suite, AllZooGraphsConnected) {
  for (auto maker : {small_separator_zoo, other_sparse_zoo}) {
    for (const auto& e : maker()) {
      EXPECT_TRUE(is_connected(e.graph)) << e.name;
      EXPECT_GT(e.graph.num_vertices(), 500) << e.name;
    }
  }
}

TEST(Suite, MeshEntriesDenserThanRoadEntries) {
  double road_max = 0, mesh_min = 1e9;
  for (const auto& e : small_separator_zoo()) {
    road_max = std::max(road_max, e.graph.density_percent());
  }
  for (const auto& e : other_sparse_zoo()) {
    mesh_min = std::min(mesh_min, e.graph.density_percent());
  }
  EXPECT_LT(road_max, mesh_min);
}

TEST(Suite, LookupByName) {
  const auto e = zoo_by_name("usroads");
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(e->small_separator);
  EXPECT_FALSE(zoo_by_name("no-such-graph").has_value());
}

}  // namespace
}  // namespace gapsp::graph
