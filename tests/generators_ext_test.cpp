#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "partition/boundary.h"

namespace gapsp::graph {
namespace {

TEST(SmallWorld, RingLatticeStructure) {
  // rewire = 0: every vertex has exactly 2k neighbours.
  const CsrGraph g = make_small_world(100, 3, 0.0, 1);
  EXPECT_TRUE(is_connected(g));
  for (vidx_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.out_degree(v), 6);
  }
}

TEST(SmallWorld, RewiringKeepsConnectivity) {
  for (double rw : {0.05, 0.3, 0.9}) {
    const CsrGraph g = make_small_world(300, 2, rw, 7);
    EXPECT_TRUE(is_connected(g)) << "rewire=" << rw;
    EXPECT_EQ(g.num_vertices(), 300);
  }
}

TEST(SmallWorld, RewiringDestroysSeparator) {
  // The controllable knob: a ring has a tiny separator, heavy rewiring
  // produces an expander.
  const double ring = part::separator_ratio(make_small_world(500, 2, 0.0, 3));
  const double rand_like =
      part::separator_ratio(make_small_world(500, 2, 0.8, 3));
  EXPECT_LT(ring, rand_like / 3.0);
}

TEST(SmallWorld, RejectsBadParameters) {
  EXPECT_THROW(make_small_world(10, 5, 0.1, 1), Error);
  EXPECT_THROW(make_small_world(100, 2, 1.5, 1), Error);
  EXPECT_THROW(make_small_world(100, 0, 0.1, 1), Error);
}

TEST(Preferential, HeavyTailedDegrees) {
  const CsrGraph g = make_preferential(800, 3, 11);
  EXPECT_TRUE(is_connected(g));
  const auto ds = degree_stats(g);
  EXPECT_GT(ds.max, 6 * ds.mean);  // hubs
  EXPECT_GE(ds.min, 1);
}

TEST(Preferential, AttachCountBoundsEdges) {
  const CsrGraph g = make_preferential(500, 4, 12);
  // Directed arc count <= 2 * (clique + (n - attach - 1) * attach).
  EXPECT_LE(g.num_edges(), 2 * (10 + 496 * 4));
  EXPECT_GE(g.num_edges(), 2 * 400);
}

TEST(Preferential, DeterministicPerSeed) {
  const CsrGraph a = make_preferential(300, 2, 5);
  const CsrGraph b = make_preferential(300, 2, 5);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_TRUE(std::equal(a.targets().begin(), a.targets().end(),
                         b.targets().begin()));
}

TEST(Preferential, RejectsBadParameters) {
  EXPECT_THROW(make_preferential(3, 3, 1), Error);
  EXPECT_THROW(make_preferential(100, 0, 1), Error);
}

TEST(Grid3d, StructureAndDegrees) {
  const CsrGraph g = make_grid3d(4, 5, 6, 2);
  EXPECT_EQ(g.num_vertices(), 120);
  EXPECT_TRUE(is_connected(g));
  const auto ds = degree_stats(g);
  EXPECT_EQ(ds.max, 6);  // interior vertex
  EXPECT_EQ(ds.min, 3);  // corner
}

TEST(Grid3d, SingleLayerIsA2dGrid) {
  const CsrGraph g3 = make_grid3d(8, 8, 1, 4);
  EXPECT_EQ(g3.num_vertices(), 64);
  const auto ds = degree_stats(g3);
  EXPECT_EQ(ds.max, 4);
}

TEST(Grid3d, SeparatorBetweenRoadAndExpander) {
  // Θ(n^(2/3)) separator: larger ratio than a 2-D grid, far smaller than an
  // expander of the same size.
  const double g2 = part::separator_ratio(make_road(22, 22, 5, 0.0, 0.0));
  const double g3 = part::separator_ratio(make_grid3d(8, 8, 8, 5));
  const double ex = part::separator_ratio(make_small_world(512, 3, 0.9, 5));
  EXPECT_LT(g2, g3);
  EXPECT_LT(g3, ex);
}

}  // namespace
}  // namespace gapsp::graph
