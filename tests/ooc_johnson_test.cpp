#include <gtest/gtest.h>

#include <vector>

#include "core/ooc_johnson.h"
#include "graph/generators.h"
#include "test_util.h"
#include "util/stats.h"

namespace gapsp::core {
namespace {

using test::expect_store_matches_reference;
using test::tiny_device;

ApspOptions tiny_opts(std::size_t mem = 256u << 10) {
  ApspOptions o;
  o.device = tiny_device(mem);
  return o;
}

TEST(OocJohnson, BatchSizeFormula) {
  const auto g = graph::make_erdos_renyi(500, 3000, 41);
  const auto spec = tiny_device(1 << 20);
  const int bat = johnson_batch_size(spec, g, 2.0);
  // Recompute the paper formula by hand.
  const double L = 0.95 * static_cast<double>(spec.memory_bytes);
  const double S = static_cast<double>(g.bytes());
  const double per =
      sizeof(dist_t) * (500.0 + 2.0 * static_cast<double>(g.num_edges()));
  EXPECT_EQ(bat, static_cast<int>((L - S) / per));
  EXPECT_GE(bat, 1);
}

TEST(OocJohnson, BatchSizeShrinksWithEdges) {
  const auto sparse = graph::make_erdos_renyi(400, 1000, 42);
  const auto dense = graph::make_erdos_renyi(400, 8000, 42);
  const auto spec = tiny_device(1 << 20);
  EXPECT_GT(johnson_batch_size(spec, sparse, 2.0),
            johnson_batch_size(spec, dense, 2.0));
}

TEST(OocJohnson, BatchSizeCappedAtN) {
  const auto g = graph::make_erdos_renyi(50, 120, 43);
  EXPECT_EQ(johnson_batch_size(tiny_device(512u << 20), g, 2.0), 50);
}

TEST(OocJohnson, TooSmallDeviceThrows) {
  const auto g = graph::make_erdos_renyi(400, 5000, 44);
  EXPECT_THROW(johnson_batch_size(tiny_device(40 << 10), g, 2.0), Error);
}

TEST(OocJohnson, MatchesDijkstraMultiBatch) {
  const auto g = graph::make_erdos_renyi(220, 900, 45);
  auto store = make_ram_store(g.num_vertices());
  const auto opts = tiny_opts(96u << 10);
  const auto r = ooc_johnson(g, opts, *store);
  EXPECT_GT(r.metrics.johnson_num_batches, 1);
  EXPECT_EQ(r.metrics.johnson_batch_size *
                    (r.metrics.johnson_num_batches - 1) <
                g.num_vertices(),
            true);
  expect_store_matches_reference(g, *store, r);
}

TEST(OocJohnson, MatchesDijkstraOnScaleFree) {
  const auto g = graph::make_rmat(8, 1800, 46);
  auto store = make_ram_store(g.num_vertices());
  const auto r = ooc_johnson(g, tiny_opts(128u << 10), *store);
  expect_store_matches_reference(g, *store, r);
}

TEST(OocJohnson, DynamicParallelismDoesNotChangeResults) {
  const auto g = graph::make_rmat(8, 2000, 47);
  auto s1 = make_ram_store(g.num_vertices());
  auto s2 = make_ram_store(g.num_vertices());
  auto opts = tiny_opts(128u << 10);
  opts.dynamic_parallelism = false;
  const auto r1 = ooc_johnson(g, opts, *s1);
  opts.dynamic_parallelism = true;
  opts.heavy_degree_threshold = 8;
  const auto r2 = ooc_johnson(g, opts, *s2);
  const vidx_t n = g.num_vertices();
  std::vector<dist_t> a(n), b(n);
  for (vidx_t u = 0; u < n; ++u) {
    s1->read_block(u, 0, 1, n, a.data(), n);
    s2->read_block(u, 0, 1, n, b.data(), n);
    ASSERT_EQ(a, b);
  }
  EXPECT_EQ(r1.metrics.child_kernels, 0);
  EXPECT_GT(r2.metrics.child_kernels, 0);
}

TEST(OocJohnson, DynamicParallelismHelpsWhenBatchSmall) {
  // Dense-ish scale-free graph, small memory -> few blocks; child kernels at
  // full occupancy must reduce the simulated kernel time.
  const auto g = graph::make_rmat(9, 12000, 48);
  auto opts = tiny_opts(600u << 10);
  const int bat = johnson_batch_size(opts.device, g, opts.johnson_queue_factor);
  ASSERT_LT(bat, opts.device.max_active_blocks);  // precondition of the claim
  auto s1 = make_ram_store(g.num_vertices());
  auto s2 = make_ram_store(g.num_vertices());
  opts.dynamic_parallelism = false;
  const auto r_plain = ooc_johnson(g, opts, *s1);
  opts.dynamic_parallelism = true;
  opts.heavy_degree_threshold = 16;
  const auto r_dp = ooc_johnson(g, opts, *s2);
  EXPECT_LT(r_dp.metrics.kernel_seconds, r_plain.metrics.kernel_seconds);
}

TEST(OocJohnson, AllSsspKernelsAgree) {
  const auto g = graph::make_mesh(260, 10, 54);
  const vidx_t n = g.num_vertices();
  std::vector<std::unique_ptr<DistStore>> stores;
  for (const auto kernel :
       {SsspKernel::kNearFar, SsspKernel::kDeltaStepping,
        SsspKernel::kBellmanFord}) {
    auto opts = tiny_opts(512u << 10);
    opts.sssp_kernel = kernel;
    stores.push_back(make_ram_store(n));
    ooc_johnson(g, opts, *stores.back());
  }
  std::vector<dist_t> a(n), b(n);
  for (std::size_t variant = 1; variant < stores.size(); ++variant) {
    for (vidx_t u = 0; u < n; u += 17) {
      stores[0]->read_block(u, 0, 1, n, a.data(), n);
      stores[variant]->read_block(u, 0, 1, n, b.data(), n);
      ASSERT_EQ(a, b) << "kernel variant " << variant << " row " << u;
    }
  }
}

TEST(OocJohnson, BellmanFordDoesMoreWorkThanNearFar) {
  // The measured redundancy behind the Sec. II-B argument.
  const auto g = graph::make_road(14, 14, 55);
  auto nf_opts = tiny_opts(512u << 10);
  auto bf_opts = tiny_opts(512u << 10);
  bf_opts.sssp_kernel = SsspKernel::kBellmanFord;
  auto s1 = make_ram_store(g.num_vertices());
  auto s2 = make_ram_store(g.num_vertices());
  const auto nf = ooc_johnson(g, nf_opts, *s1);
  const auto bf = ooc_johnson(g, bf_opts, *s2);
  EXPECT_GT(bf.metrics.total_ops, 3.0 * nf.metrics.total_ops);
}

TEST(OocJohnson, KernelNames) {
  EXPECT_STREQ(sssp_kernel_name(SsspKernel::kNearFar), "near-far");
  EXPECT_STREQ(sssp_kernel_name(SsspKernel::kDeltaStepping),
               "delta-stepping");
  EXPECT_STREQ(sssp_kernel_name(SsspKernel::kBellmanFord), "bellman-ford");
}

TEST(OocJohnson, HandlesDisconnected) {
  const auto g = graph::make_erdos_renyi(150, 120, 49, /*connect=*/false);
  auto store = make_ram_store(g.num_vertices());
  const auto r = ooc_johnson(g, tiny_opts(), *store);
  expect_store_matches_reference(g, *store, r);
}

TEST(OocJohnson, TransfersTotalN2) {
  const auto g = graph::make_erdos_renyi(200, 800, 50);
  auto store = make_ram_store(g.num_vertices());
  const auto r = ooc_johnson(g, tiny_opts(96u << 10), *store);
  const std::size_t n2 = static_cast<std::size_t>(g.num_vertices()) *
                         g.num_vertices() * sizeof(dist_t);
  EXPECT_EQ(r.metrics.bytes_d2h, n2);  // the O(n²) movement of Table I
}

TEST(OocJohnson, SampleBatchesSubsetTiming) {
  const auto g = graph::make_erdos_renyi(300, 1200, 51);
  const auto opts = tiny_opts(96u << 10);
  const std::vector<int> pick{0, 1};
  const JohnsonSample s = johnson_sample_batches(g, opts, pick);
  EXPECT_EQ(s.sampled, 2);
  EXPECT_GT(s.kernel_seconds, 0.0);
  EXPECT_GT(s.transfer_seconds, 0.0);
  EXPECT_GT(s.num_batches, 2);
}

TEST(OocJohnson, SampleRejectsBadIndex) {
  const auto g = graph::make_erdos_renyi(100, 400, 52);
  const std::vector<int> bad{999};
  EXPECT_THROW(johnson_sample_batches(g, tiny_opts(), bad), Error);
}

TEST(OocJohnson, BatchTimesAreStable) {
  // The Sec. IV-B2 premise: batch execution times are similar (the paper
  // measured 1.67%-13.4% CV). Verify the simulated batches stay regular.
  const auto g = graph::make_erdos_renyi(400, 1600, 53);
  const auto opts = tiny_opts(128u << 10);
  const int bat = johnson_batch_size(opts.device, g, opts.johnson_queue_factor);
  const int nb = (g.num_vertices() + bat - 1) / bat;
  RunningStats st;
  for (int i = 0; i + 1 < nb; ++i) {  // skip the ragged final batch
    const std::vector<int> one{i};
    st.add(johnson_sample_batches(g, opts, one).kernel_seconds);
  }
  ASSERT_GT(st.count(), 2u);
  EXPECT_LT(st.cv_percent(), 25.0);
}

}  // namespace
}  // namespace gapsp::core
