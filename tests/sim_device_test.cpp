#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/device.h"
#include "sim/device_spec.h"

namespace gapsp::sim {
namespace {

DeviceSpec small_spec() {
  DeviceSpec s = DeviceSpec::v100().with_memory(1 << 20);  // 1 MiB
  return s;
}

TEST(DeviceSpec, PresetsMatchTableII) {
  const auto v = DeviceSpec::v100();
  const auto k = DeviceSpec::k80();
  EXPECT_GT(v.compute_ops_per_s, k.compute_ops_per_s);
  EXPECT_GT(v.mem_bandwidth, k.mem_bandwidth);
  EXPECT_NEAR(v.link_bandwidth, 11.75e9, 1e6);  // paper-measured
  EXPECT_NEAR(k.link_bandwidth, 7.23e9, 1e6);
}

TEST(DeviceSpec, WithMemoryOnlyChangesCapacity) {
  const auto v = DeviceSpec::v100();
  const auto s = v.with_memory(123);
  EXPECT_EQ(s.memory_bytes, 123u);
  EXPECT_EQ(s.compute_ops_per_s, v.compute_ops_per_s);
}

TEST(Device, AllocationTracksUsage) {
  Device dev(small_spec());
  EXPECT_EQ(dev.used_bytes(), 0u);
  auto buf = dev.alloc<dist_t>(1000);
  EXPECT_EQ(dev.used_bytes(), 4000u);
  buf.release();
  EXPECT_EQ(dev.used_bytes(), 0u);
}

TEST(Device, AllocationFailsOverCapacity) {
  Device dev(small_spec());
  EXPECT_THROW(dev.alloc<dist_t>((1 << 20) / 4 + 1), Error);
  // Partial fill, then overflow.
  auto a = dev.alloc<dist_t>(200000);  // 800 KB
  EXPECT_THROW(dev.alloc<dist_t>(100000), Error);  // +400 KB > 1 MiB
}

TEST(Device, BufferMoveTransfersOwnership) {
  Device dev(small_spec());
  auto a = dev.alloc<dist_t>(100);
  auto b = std::move(a);
  EXPECT_EQ(dev.used_bytes(), 400u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move) — spec'd empty
  b.release();
  EXPECT_EQ(dev.used_bytes(), 0u);
}

TEST(Device, BufferMoveAssignReleasesOldAllocation) {
  Device dev(small_spec());
  auto a = dev.alloc<dist_t>(100);   // 400 B
  auto b = dev.alloc<dist_t>(1000);  // 4000 B
  EXPECT_EQ(dev.used_bytes(), 4400u);
  a = std::move(b);  // a's original 400 B must be returned, not leaked
  EXPECT_EQ(dev.used_bytes(), 4000u);
  EXPECT_EQ(a.size(), 1000u);
  a.release();
  EXPECT_EQ(dev.used_bytes(), 0u);
}

TEST(Device, BufferDoubleReleaseIsIdempotent) {
  Device dev(small_spec());
  auto a = dev.alloc<dist_t>(100);
  a.release();
  a.release();  // second release (and the destructor later) must be a no-op
  EXPECT_EQ(dev.used_bytes(), 0u);
}

TEST(Device, UsedBytesExactUnderExceptionUnwinding) {
  // Recovery re-plans on the same Device after faults: a leak in the
  // unwinding path would masquerade as a shrunken device and degrade every
  // subsequent attempt. Throw mid-scope and check the ledger returns to its
  // prior state exactly.
  Device dev(small_spec());
  auto outer = dev.alloc<dist_t>(5000);
  const std::size_t before = dev.used_bytes();
  try {
    auto a = dev.alloc<dist_t>(10000);
    auto b = std::move(a);         // moved-from + owner in flight
    auto c = dev.alloc<dist_t>(1); // distinct small allocation
    b.release();                   // early release before the throw
    throw std::runtime_error("unwind");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(dev.used_bytes(), before);
  outer.release();
  EXPECT_EQ(dev.used_bytes(), 0u);
}

TEST(Device, UsedBytesExactWhenAllocFaultUnwinds) {
  // An injected alloc fault throws out of Device::alloc — buffers already
  // live in the failing scope unwind through ~DeviceBuffer and the ledger
  // must balance so a degraded retry sees the full capacity again.
  Device dev(small_spec());
  FaultPlan plan;
  FaultInjector inj(plan);
  dev.set_fault_injector(&inj);
  {
    FaultPlan scripted;
    scripted.scripted.push_back({.op = FaultOp::kAlloc, .nth = 2});
    FaultInjector one_shot(scripted);
    dev.set_fault_injector(&one_shot);
    try {
      auto a = dev.alloc<dist_t>(1000);
      auto b = dev.alloc<dist_t>(1000);  // the scripted fault fires here
      FAIL() << "expected FaultError";
    } catch (const FaultError& e) {
      EXPECT_EQ(e.op(), FaultOp::kAlloc);
    }
  }
  dev.set_fault_injector(nullptr);
  EXPECT_EQ(dev.used_bytes(), 0u);
  auto again = dev.alloc<dist_t>((1 << 20) / sizeof(dist_t));  // full capacity
  EXPECT_EQ(dev.used_bytes(), static_cast<std::size_t>(1 << 20));
}

TEST(Device, PeakBytesHighWaterMark) {
  Device dev(small_spec());
  {
    auto a = dev.alloc<dist_t>(100000);
    auto b = dev.alloc<dist_t>(50000);
  }
  EXPECT_EQ(dev.used_bytes(), 0u);
  EXPECT_EQ(dev.metrics().peak_bytes, 600000u);
}

TEST(Device, TransferTimeHasLatencyPlusBandwidth) {
  Device dev(small_spec());
  const auto& sp = dev.spec();
  const double t = dev.transfer_time(1 << 20, /*pinned=*/true);
  EXPECT_NEAR(t, sp.transfer_latency_s + (1 << 20) / sp.link_bandwidth, 1e-12);
}

TEST(Device, PageablePenaltySlowsTransfers) {
  Device dev(small_spec());
  EXPECT_GT(dev.transfer_time(1 << 20, false), dev.transfer_time(1 << 20, true));
}

TEST(Device, MemcpyMovesRealData) {
  Device dev(small_spec());
  auto buf = dev.alloc<dist_t>(4);
  const std::vector<dist_t> src{1, 2, 3, 4};
  dev.memcpy_h2d(kDefaultStream, buf.data(), src.data(), 16);
  std::vector<dist_t> dst(4, 0);
  dev.memcpy_d2h(kDefaultStream, dst.data(), buf.data(), 16);
  EXPECT_EQ(dst, src);
}

TEST(Device, SyncCopyAdvancesHostClock) {
  Device dev(small_spec());
  auto buf = dev.alloc<dist_t>(1024);
  std::vector<dist_t> host(1024);
  const double before = dev.now();
  dev.memcpy_h2d(kDefaultStream, buf.data(), host.data(), 4096,
                 /*async=*/false);
  EXPECT_GT(dev.now(), before);
}

TEST(Device, AsyncCopyDoesNotAdvanceHostClock) {
  Device dev(small_spec());
  auto buf = dev.alloc<dist_t>(1024);
  std::vector<dist_t> host(1024);
  dev.memcpy_h2d(kDefaultStream, buf.data(), host.data(), 4096,
                 /*async=*/true);
  EXPECT_EQ(dev.now(), 0.0);
  dev.synchronize();
  EXPECT_GT(dev.now(), 0.0);
}

TEST(Device, KernelTimeComputeVsMemoryBound) {
  Device dev(small_spec());
  const auto& sp = dev.spec();
  KernelProfile compute_bound;
  compute_bound.ops = 1e9;
  compute_bound.bytes = 1;
  compute_bound.blocks = sp.max_active_blocks;
  EXPECT_NEAR(dev.kernel_time(compute_bound), 1e9 / sp.compute_ops_per_s,
              1e-9);
  KernelProfile memory_bound;
  memory_bound.ops = 1;
  memory_bound.bytes = 1e9;
  memory_bound.blocks = sp.max_active_blocks;
  EXPECT_NEAR(dev.kernel_time(memory_bound), 1e9 / sp.mem_bandwidth, 1e-9);
}

TEST(Device, OccupancyPenalizesSmallGrids) {
  Device dev(small_spec());
  KernelProfile p;
  p.ops = 1e9;
  p.blocks = dev.spec().max_active_blocks / 4;
  const double quarter = dev.kernel_time(p);
  p.blocks = dev.spec().max_active_blocks;
  const double full = dev.kernel_time(p);
  EXPECT_NEAR(quarter, 4.0 * full, full * 1e-6);
}

TEST(Device, EfficiencyDiscountsThroughput) {
  Device dev(small_spec());
  KernelProfile p;
  p.ops = 1e9;
  p.blocks = dev.spec().max_active_blocks;
  const double base = dev.kernel_time(p);
  p.efficiency = 0.5;
  EXPECT_NEAR(dev.kernel_time(p), 2.0 * base, base * 1e-6);
}

TEST(Device, LaunchRunsBodyAndCharges) {
  Device dev(small_spec());
  bool ran = false;
  const double dur = dev.launch(kDefaultStream, "k", [&](LaunchCtx&) {
    ran = true;
    KernelProfile p;
    p.ops = 1e6;
    p.blocks = dev.spec().max_active_blocks;
    return p;
  });
  EXPECT_TRUE(ran);
  EXPECT_GT(dur, 0.0);
  EXPECT_EQ(dev.metrics().kernels, 1);
  EXPECT_GT(dev.metrics().kernel_seconds, 0.0);
}

TEST(Device, ChildLaunchAddsCostAndCount) {
  Device dev(small_spec());
  KernelProfile child;
  child.ops = 1e6;
  child.blocks = dev.spec().max_active_blocks;
  const double with_child = dev.launch(kDefaultStream, "k", [&](LaunchCtx& c) {
    c.child_launch(child);
    return KernelProfile{};
  });
  EXPECT_GT(with_child, dev.spec().kernel_launch_s);
  EXPECT_EQ(dev.metrics().child_kernels, 1);
}

TEST(Device, StreamsOverlapInTimeline) {
  // Two equal async copies: on one stream they serialize, on two they
  // overlap and the makespan is halved (same start time).
  const std::size_t bytes = 1 << 18;
  std::vector<dist_t> host(bytes / 4);

  Device serial(small_spec());
  auto b1 = serial.alloc<dist_t>(bytes / 4);
  serial.memcpy_h2d(kDefaultStream, b1.data(), host.data(), bytes, true);
  serial.memcpy_h2d(kDefaultStream, b1.data(), host.data(), bytes, true);
  serial.synchronize();

  Device parallel(small_spec());
  auto b2 = parallel.alloc<dist_t>(bytes / 4);
  const StreamId s2 = parallel.create_stream();
  parallel.memcpy_h2d(kDefaultStream, b2.data(), host.data(), bytes, true);
  parallel.memcpy_h2d(s2, b2.data(), host.data(), bytes, true);
  parallel.synchronize();

  EXPECT_NEAR(parallel.now() * 2.0, serial.now(), serial.now() * 1e-6);
}

TEST(Device, EventsOrderAcrossStreams) {
  Device dev(small_spec());
  auto buf = dev.alloc<dist_t>(1024);
  std::vector<dist_t> host(1024);
  const StreamId s2 = dev.create_stream();
  dev.memcpy_h2d(kDefaultStream, buf.data(), host.data(), 4096, true);
  const Event e = dev.record_event(kDefaultStream);
  dev.wait_event(s2, e);
  dev.memcpy_d2h(s2, host.data(), buf.data(), 4096, true);
  dev.synchronize();
  // Total must be at least the serialized duration of both copies.
  EXPECT_GE(dev.now(), 2 * dev.transfer_time(4096, false) - 1e-12);
}

TEST(Device, MetricsCountTransfers) {
  Device dev(small_spec());
  auto buf = dev.alloc<dist_t>(64);
  std::vector<dist_t> host(64);
  dev.memcpy_h2d(kDefaultStream, buf.data(), host.data(), 256);
  dev.memcpy_d2h(kDefaultStream, host.data(), buf.data(), 256);
  dev.memcpy_d2h(kDefaultStream, host.data(), buf.data(), 128);
  const auto m = dev.metrics();
  EXPECT_EQ(m.transfers_h2d, 1);
  EXPECT_EQ(m.transfers_d2h, 2);
  EXPECT_EQ(m.bytes_h2d, 256u);
  EXPECT_EQ(m.bytes_d2h, 384u);
}

TEST(Device, AdvanceToActsAsBarrier) {
  Device dev(small_spec());
  auto buf = dev.alloc<dist_t>(1024);
  std::vector<dist_t> host(1024);
  dev.memcpy_h2d(kDefaultStream, buf.data(), host.data(), 4096);
  const double before = dev.now();
  dev.advance_to(before + 1.0);
  EXPECT_NEAR(dev.now(), before + 1.0, 1e-12);
  // New work starts after the barrier on every stream.
  const StreamId s2 = dev.create_stream();
  dev.memcpy_h2d(s2, buf.data(), host.data(), 4096, true);
  dev.synchronize();
  EXPECT_GT(dev.now(), before + 1.0);
}

TEST(Device, AdvanceToNeverMovesBackwards) {
  Device dev(small_spec());
  auto buf = dev.alloc<dist_t>(64);
  std::vector<dist_t> host(64);
  dev.memcpy_h2d(kDefaultStream, buf.data(), host.data(), 256);
  const double t = dev.now();
  dev.advance_to(t / 2);
  EXPECT_EQ(dev.now(), t);
}

TEST(Device, InvalidStreamRejected) {
  Device dev(small_spec());
  auto buf = dev.alloc<dist_t>(16);
  std::vector<dist_t> host(16);
  EXPECT_THROW(dev.memcpy_h2d(99, buf.data(), host.data(), 64), Error);
  EXPECT_THROW(dev.record_event(5), Error);
}

}  // namespace
}  // namespace gapsp::sim
