#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "core/cost_model.h"
#include "core/kernel_engine.h"
#include "core/ooc_fw.h"
#include "core/ooc_johnson.h"
#include "graph/generators.h"
#include "test_util.h"

namespace gapsp::core {
namespace {

ApspOptions model_opts() {
  ApspOptions o;
  o.device = test::tiny_device(2u << 20);
  o.fw_tile = 32;
  return o;
}

TEST(TransferModels, FwMatchesClosedForm) {
  const auto spec = test::tiny_device(1u << 20);
  const vidx_t n = 5000;
  const vidx_t b = fw_block_size(spec, n);
  const double nd = std::ceil(static_cast<double>(n) / b);
  const double expect = nd * sizeof(dist_t) *
                        (3.0 * b * b + static_cast<double>(n) * n) /
                        spec.link_bandwidth;
  EXPECT_NEAR(fw_transfer_model(n, spec), expect, expect * 1e-12);
}

TEST(TransferModels, JohnsonIsN2OverThroughput) {
  const auto spec = test::tiny_device();
  EXPECT_NEAR(johnson_transfer_model(1000, spec),
              4.0 * 1e6 / spec.link_bandwidth, 1e-12);
}

TEST(TransferModels, JohnsonBelowFwForManyBlocks) {
  // FW moves n_d times the matrix; Johnson moves it once.
  const auto spec = test::tiny_device(1u << 20);
  EXPECT_GT(fw_transfer_model(4000, spec), johnson_transfer_model(4000, spec));
}

TEST(TransferModels, BoundaryCountsBatchedTransfers) {
  const auto g = graph::make_road(16, 16, 81);
  const auto opts = model_opts();
  const auto plan = plan_boundary(g, opts);
  const double t = boundary_transfer_model(plan, g.num_vertices(), opts.device);
  const double bytes = sizeof(dist_t) *
                       static_cast<double>(g.num_vertices()) *
                       g.num_vertices();
  EXPECT_GT(t, bytes / opts.device.link_bandwidth);  // latency included
  EXPECT_LT(t, bytes / opts.device.link_bandwidth +
                   1000 * opts.device.transfer_latency_s);
}

TEST(BoundaryNop, FormulaTerms) {
  // N_op = n³/k² + (kB)³ + nkB² + n²B
  const double nop = boundary_nop(100, 4, 2.0);
  EXPECT_DOUBLE_EQ(nop, 1e6 / 16 + 512.0 + 100.0 * 4 * 4 + 1e4 * 2);
}

TEST(BoundaryBucket, RangesDoubleFromIdeal) {
  const vidx_t n = 10000;  // n^(3/4) = 1000
  EXPECT_EQ(boundary_bucket(n, 500, 6), 0);   // below ideal clamps to 0
  EXPECT_EQ(boundary_bucket(n, 1500, 6), 0);  // [1, 2)·ideal
  EXPECT_EQ(boundary_bucket(n, 2500, 6), 1);  // [2, 4)·ideal
  EXPECT_EQ(boundary_bucket(n, 5000, 6), 2);  // [4, 8)·ideal
  EXPECT_EQ(boundary_bucket(n, 900000, 6), 5);  // clamps at the top
}

TEST(Calibration, ProducesPositiveReferencePoints) {
  const auto& cal = calibrate(model_opts());
  EXPECT_GT(cal.fw_t0, 0.0);
  EXPECT_GT(cal.fw_n0, 0);
  EXPECT_GT(cal.bnd_t0, 0.0);
  EXPECT_GT(cal.bnd_n0, 0);
  for (double c : cal.c_unit) EXPECT_GT(c, 0.0);
}

TEST(Calibration, CachedPerDeviceConfig) {
  const auto opts = model_opts();
  const Calibration& a = calibrate(opts);
  const Calibration& b = calibrate(opts);
  EXPECT_EQ(&a, &b);
  auto other = opts;
  other.device = test::tiny_device(3u << 20);
  EXPECT_NE(&calibrate(other), &a);
}

TEST(Calibration, KeyedOnCostRelevantOptions) {
  // Regression: the cache key was device name + memory only, so flipping
  // overlap_transfers, the kernel variant, or the Johnson queue factor
  // returned a calibration measured under the *other* configuration.
  const auto base = model_opts();
  const Calibration& a = calibrate(base);

  auto overlap = base;
  overlap.overlap_transfers = !base.overlap_transfers;
  EXPECT_NE(&calibrate(overlap), &a);

  auto qf = base;
  qf.johnson_queue_factor = base.johnson_queue_factor * 2.0;
  EXPECT_NE(&calibrate(qf), &a);

  // Same cost-relevant options still share one entry.
  auto same = base;
  EXPECT_EQ(&calibrate(same), &a);
}

TEST(TransferModels, CompressedSinkScalesOnlyTheOutputTerm) {
  // A store sink at ratio R shrinks the n² output stream R-fold but leaves
  // the device-bound working tiles (FW's 3b² term) at the raw element size.
  const auto spec = test::tiny_device(1u << 20);
  const vidx_t n = 5000;
  const double w = sizeof(dist_t) / 4.0;  // measured ratio 4
  const vidx_t b = fw_block_size(spec, n);
  const double nd = std::ceil(static_cast<double>(n) / b);
  const double expect = nd *
                        (3.0 * sizeof(dist_t) * b * b +
                         w * static_cast<double>(n) * n) /
                        spec.link_bandwidth;
  EXPECT_NEAR(fw_transfer_model(n, spec, false, w), expect, expect * 1e-12);
  // Johnson and boundary outputs are pure n² streams: exactly R× cheaper.
  EXPECT_NEAR(johnson_transfer_model(n, spec, w),
              johnson_transfer_model(n, spec) / 4.0, 1e-12);
  const auto g = graph::make_road(16, 16, 81);
  const auto opts = model_opts();
  const auto plan = plan_boundary(g, opts);
  EXPECT_LT(boundary_transfer_model(plan, g.num_vertices(), opts.device, w),
            boundary_transfer_model(plan, g.num_vertices(), opts.device));
  // End to end: a cheaper sink must lower the estimates' transfer share.
  auto zopts = opts;
  zopts.store_bytes_per_element = w;
  EXPECT_LT(estimate_fw(g, zopts).transfer_s,
            estimate_fw(g, opts).transfer_s);
  EXPECT_LT(estimate_johnson(g, zopts).transfer_s,
            estimate_johnson(g, opts).transfer_s);
}

TEST(Calibration, PersistsNextToTheStoreAndSkipsWarmup) {
  const std::string path =
      ::testing::TempDir() + "gapsp_cal_roundtrip.cal";
  auto opts = model_opts();
  // A device name no other test calibrates, so this entry is ours alone.
  opts.device.name = "cal-persist-test";

  // Nothing cached for this configuration yet: nothing to save.
  EXPECT_FALSE(save_calibration(opts, path));

  const Calibration before = calibrate(opts);  // pays the probe runs
  ASSERT_TRUE(save_calibration(opts, path));

  // Drop the in-process cache and reload from the sidecar: calibrate()
  // must be a pure cache hit (no new probe runs) with identical numbers.
  clear_calibration_cache();
  const long long runs = calibration_runs();
  ASSERT_TRUE(load_calibration(opts, path));
  const Calibration& after = calibrate(opts);
  EXPECT_EQ(calibration_runs(), runs);
  EXPECT_EQ(after.fw_t0, before.fw_t0);
  EXPECT_EQ(after.fw_n0, before.fw_n0);
  EXPECT_EQ(after.fw_exponent, before.fw_exponent);
  EXPECT_EQ(after.bnd_t0, before.bnd_t0);
  EXPECT_EQ(after.bnd_n0, before.bnd_n0);
  EXPECT_EQ(after.bnd_exponent, before.bnd_exponent);
  EXPECT_EQ(after.c_unit, before.c_unit);
  std::remove(path.c_str());
}

TEST(Calibration, SidecarForOtherConfigurationIsIgnored) {
  const std::string path = ::testing::TempDir() + "gapsp_cal_mismatch.cal";
  auto opts = model_opts();
  opts.device.name = "cal-mismatch-test";
  calibrate(opts);
  ASSERT_TRUE(save_calibration(opts, path));

  // Same sidecar, different cost-relevant option: keyed out, not reused —
  // loading a table measured under another configuration would silently
  // mis-rank the algorithms.
  auto other = opts;
  other.overlap_transfers = !opts.overlap_transfers;
  EXPECT_FALSE(load_calibration(other, path));

  // Damage the file: checksum rejects it, the cache stays untouched.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 24, SEEK_SET);
    const char x = 0x5a;
    std::fwrite(&x, 1, 1, f);
    std::fclose(f);
  }
  EXPECT_FALSE(load_calibration(opts, path));
  EXPECT_FALSE(load_calibration(opts, path + ".does_not_exist"));
  std::remove(path.c_str());
}

TEST(JohnsonBatches, CountIsComputedIn64Bit) {
  // Regression: ⌈n/bat⌉ was computed as (n + bat - 1) in int, which wraps
  // negative for n near INT32_MAX and small bat.
  const vidx_t big = std::numeric_limits<vidx_t>::max();
  EXPECT_EQ(johnson_num_batches(big, 1), static_cast<std::int64_t>(big));
  EXPECT_EQ(johnson_num_batches(big, 2), (static_cast<std::int64_t>(big) + 1) / 2);
  EXPECT_GT(johnson_num_batches(big, 7), 0);
  EXPECT_EQ(johnson_num_batches(10, 3), 4);
  EXPECT_EQ(johnson_num_batches(9, 3), 3);
}

TEST(Estimates, JohnsonInfeasibleWhenNoInstanceFits) {
  // Regression: estimate_johnson let the batch planner's exception escape;
  // it must report an infeasible (infinite) estimate like estimate_boundary.
  const auto g = graph::make_dense(300, 12.0, 88);
  auto opts = model_opts();
  opts.device = test::tiny_device(64u << 10);  // CSR alone exceeds the device
  CostBreakdown est;
  EXPECT_NO_THROW(est = estimate_johnson(g, opts));
  EXPECT_FALSE(est.feasible);
  EXPECT_TRUE(std::isinf(est.total()));
}

TEST(Estimates, FwPowerLawScaling) {
  const auto opts = model_opts();
  const auto& cal = calibrate(opts);
  EXPECT_GE(cal.fw_exponent, 1.0);
  EXPECT_LE(cal.fw_exponent, 3.0);
  const auto g1 = graph::make_erdos_renyi(200, 800, 82);
  const auto g2 = graph::make_erdos_renyi(400, 1600, 82);
  const auto e1 = estimate_fw(g1, opts);
  const auto e2 = estimate_fw(g2, opts);
  EXPECT_NEAR(e2.compute_s / e1.compute_s, std::pow(2.0, cal.fw_exponent),
              0.01);
}

TEST(Estimates, FwPredictsActualWithinFactor) {
  const auto opts = model_opts();
  const auto g = graph::make_erdos_renyi(300, 2000, 83);
  const auto est = estimate_fw(g, opts);
  auto store = make_ram_store(g.num_vertices());
  const auto actual = ooc_floyd_warshall(g, opts, *store);
  EXPECT_GT(est.total(), actual.metrics.sim_seconds / 3.0);
  EXPECT_LT(est.total(), actual.metrics.sim_seconds * 3.0);
}

TEST(Estimates, JohnsonPredictsActualWithinFactor) {
  const auto opts = model_opts();
  const auto g = graph::make_mesh(500, 12, 84);
  const auto est = estimate_johnson(g, opts, 5);
  auto store = make_ram_store(g.num_vertices());
  const auto actual = ooc_johnson(g, opts, *store);
  EXPECT_GT(est.total(), actual.metrics.sim_seconds / 2.0);
  EXPECT_LT(est.total(), actual.metrics.sim_seconds * 2.0);
}

TEST(Estimates, BoundaryPredictsActualOnSmallSeparator) {
  const auto opts = model_opts();
  const auto g = graph::make_road(22, 22, 85);
  const auto est = estimate_boundary(g, opts);
  ASSERT_TRUE(est.feasible);
  auto store = make_ram_store(g.num_vertices());
  const auto actual = ooc_boundary(g, opts, *store);
  EXPECT_GT(est.total(), actual.metrics.sim_seconds / 3.0);
  EXPECT_LT(est.total(), actual.metrics.sim_seconds * 3.0);
}

TEST(Estimates, BoundaryInfeasibleReported) {
  const auto g = graph::make_mesh(600, 14, 86, 0.3);
  auto opts = model_opts();
  opts.device = test::tiny_device(64u << 10);
  const auto est = estimate_boundary(g, opts);
  EXPECT_FALSE(est.feasible);
  EXPECT_TRUE(std::isinf(est.total()));
}

TEST(Estimates, HostMinplusTermIsVariantAware) {
  // The host-side min-plus prediction prices the variant the run would
  // resolve to: explicit naive costs n³ ops × the naive per-op constant,
  // and a measured faster variant predicts proportionally less host time.
  // total() must not move — the selector orders on the variant-invariant
  // simulated timeline.
  const auto g = graph::make_erdos_renyi(200, 800, 88);
  auto naive_opts = model_opts();
  naive_opts.kernel_variant = KernelVariant::kNaive;
  const auto naive_est = estimate_fw(g, naive_opts);
  const KernelTuning tuning = kernel_tuning();
  const double n = g.num_vertices();
  EXPECT_DOUBLE_EQ(naive_est.host_minplus_s,
                   2.0 * n * n * n * tuning.seconds_per_op[0]);
  EXPECT_DOUBLE_EQ(naive_est.kernel_rel_speed, 1.0);

  for (const KernelVariant v :
       {KernelVariant::kTiledReg, KernelVariant::kSimd,
        KernelVariant::kTensor}) {
    auto opts = model_opts();
    opts.kernel_variant = v;
    const auto est = estimate_fw(g, opts);
    EXPECT_DOUBLE_EQ(est.kernel_rel_speed, kernel_variant_rel_speed(v));
    EXPECT_NEAR(est.host_minplus_s * est.kernel_rel_speed,
                naive_est.host_minplus_s, naive_est.host_minplus_s * 1e-9);
    // The simulated-timeline estimate is identical across variants, so the
    // selector's ordering cannot be perturbed by host kernel speed.
    EXPECT_DOUBLE_EQ(est.compute_s, naive_est.compute_s);
  }
}

TEST(Estimates, AutoVariantPricesTheTunedWinner) {
  const auto g = graph::make_erdos_renyi(150, 600, 89);
  auto opts = model_opts();
  opts.kernel_variant = KernelVariant::kAuto;
  const auto est = estimate_fw(g, opts);
  const KernelTuning tuning = kernel_tuning();
  auto explicit_opts = model_opts();
  explicit_opts.kernel_variant = tuning.winner;
  const auto want = estimate_fw(g, explicit_opts);
  EXPECT_DOUBLE_EQ(est.host_minplus_s, want.host_minplus_s);
  EXPECT_DOUBLE_EQ(est.kernel_rel_speed, want.kernel_rel_speed);
}

TEST(Estimates, JohnsonHasNoHostMinplusTerm) {
  const auto g = graph::make_mesh(400, 12, 90);
  auto opts = model_opts();
  opts.kernel_variant = KernelVariant::kSimd;
  const auto est = estimate_johnson(g, opts, 3);
  EXPECT_DOUBLE_EQ(est.host_minplus_s, 0.0);
  EXPECT_DOUBLE_EQ(est.kernel_rel_speed,
                   kernel_variant_rel_speed(KernelVariant::kSimd));
}

TEST(Estimates, BoundaryHostTermTracksOperationCount) {
  const auto opts = model_opts();
  const auto g = graph::make_road(20, 20, 91);
  const auto est = estimate_boundary(g, opts);
  ASSERT_TRUE(est.feasible);
  EXPECT_GT(est.host_minplus_s, 0.0);
  EXPECT_GT(est.kernel_rel_speed, 0.0);
}

TEST(Estimates, JohnsonSamplingUsesFewBatches) {
  // Sampling must be much cheaper than the full run: it runs <= 5 batches.
  const auto opts = model_opts();
  const auto g = graph::make_erdos_renyi(600, 2400, 87);
  const int bat = johnson_batch_size(opts.device, g, opts.johnson_queue_factor);
  const int nb = (g.num_vertices() + bat - 1) / bat;
  ASSERT_GT(nb, 5);
  const auto est = estimate_johnson(g, opts, 5);
  EXPECT_GT(est.compute_s, 0.0);
}

}  // namespace
}  // namespace gapsp::core
