#include <gtest/gtest.h>

#include "core/ooc_fw.h"
#include "graph/generators.h"
#include "test_util.h"

namespace gapsp::core {
namespace {

using test::expect_store_matches_reference;
using test::tiny_device;

ApspOptions tiny_opts(std::size_t mem = 256u << 10) {
  ApspOptions o;
  o.device = tiny_device(mem);
  o.fw_tile = 32;
  return o;
}

TEST(OocFw, BlockSizeFitsThreeBlocks) {
  const auto spec = tiny_device(1 << 20);
  const vidx_t b = fw_block_size(spec, 100000);
  EXPECT_LE(3u * b * b * sizeof(dist_t),
            static_cast<std::size_t>(spec.memory_bytes));
  // Maximal: the next size up must not fit.
  EXPECT_GT(3.0 * (b + 16.0) * (b + 16.0) * sizeof(dist_t),
            0.95 * static_cast<double>(spec.memory_bytes));
}

TEST(OocFw, BlockSizeCappedAtN) {
  EXPECT_EQ(fw_block_size(tiny_device(64u << 20), 100), 100);
}

TEST(OocFw, TinyDeviceRejected) {
  EXPECT_THROW(fw_block_size(tiny_device(1024), 1000), Error);
}

TEST(OocFw, MatchesDijkstraMultiBlock) {
  const auto g = graph::make_erdos_renyi(180, 800, 31);
  auto store = make_ram_store(g.num_vertices());
  const auto opts = tiny_opts(64u << 10);  // forces several blocks
  const auto r = ooc_floyd_warshall(g, opts, *store);
  EXPECT_GT(r.metrics.fw_num_blocks, 1);
  expect_store_matches_reference(g, *store, r);
}

TEST(OocFw, MatchesDijkstraSingleBlockInCore) {
  const auto g = graph::make_erdos_renyi(90, 400, 32);
  auto store = make_ram_store(g.num_vertices());
  const auto opts = tiny_opts(4u << 20);  // whole matrix fits one block
  const auto r = ooc_floyd_warshall(g, opts, *store);
  EXPECT_EQ(r.metrics.fw_num_blocks, 1);
  expect_store_matches_reference(g, *store, r);
}

TEST(OocFw, MatchesDijkstraOnRoadGraph) {
  const auto g = graph::make_road(12, 13, 33);
  auto store = make_ram_store(g.num_vertices());
  const auto r = ooc_floyd_warshall(g, tiny_opts(), *store);
  expect_store_matches_reference(g, *store, r);
}

TEST(OocFw, HandlesDisconnectedGraph) {
  const auto g = graph::make_erdos_renyi(120, 100, 34, /*connect=*/false);
  auto store = make_ram_store(g.num_vertices());
  const auto r = ooc_floyd_warshall(g, tiny_opts(64u << 10), *store);
  expect_store_matches_reference(g, *store, r);
}

TEST(OocFw, NonDivisibleBlockTail) {
  // n chosen so n % b != 0 for the tiny device's block size.
  const auto g = graph::make_erdos_renyi(131, 500, 35);
  auto store = make_ram_store(g.num_vertices());
  const auto r = ooc_floyd_warshall(g, tiny_opts(64u << 10), *store);
  expect_store_matches_reference(g, *store, r);
}

TEST(OocFw, IdentityPermutation) {
  const auto g = graph::make_erdos_renyi(60, 250, 36);
  auto store = make_ram_store(g.num_vertices());
  const auto r = ooc_floyd_warshall(g, tiny_opts(), *store);
  EXPECT_TRUE(r.perm.empty());
  EXPECT_EQ(r.stored_id(17), 17);
}

TEST(OocFw, MetricsAccountTransfersAndKernels) {
  const auto g = graph::make_erdos_renyi(150, 600, 37);
  auto store = make_ram_store(g.num_vertices());
  const auto r = ooc_floyd_warshall(g, tiny_opts(64u << 10), *store);
  EXPECT_GT(r.metrics.sim_seconds, 0.0);
  EXPECT_GT(r.metrics.kernel_seconds, 0.0);
  EXPECT_GT(r.metrics.transfer_seconds, 0.0);
  EXPECT_GT(r.metrics.kernels, 0);
  // Every round ships at least the full matrix back: d2h >= n_d * n² * W.
  const double n2 = static_cast<double>(g.num_vertices()) * g.num_vertices();
  EXPECT_GE(static_cast<double>(r.metrics.bytes_d2h),
            r.metrics.fw_num_blocks * n2 * sizeof(dist_t));
  EXPECT_LE(r.metrics.device_peak_bytes, r.metrics.device_peak_bytes);
  EXPECT_LE(r.metrics.device_peak_bytes,
            static_cast<std::size_t>(tiny_opts(64u << 10).device.memory_bytes));
}

TEST(OocFw, MoreBlocksMoreTraffic) {
  const auto g = graph::make_erdos_renyi(160, 700, 38);
  auto s1 = make_ram_store(g.num_vertices());
  auto s2 = make_ram_store(g.num_vertices());
  const auto r_small = ooc_floyd_warshall(g, tiny_opts(48u << 10), *s1);
  const auto r_large = ooc_floyd_warshall(g, tiny_opts(512u << 10), *s2);
  EXPECT_GT(r_small.metrics.fw_num_blocks, r_large.metrics.fw_num_blocks);
  EXPECT_GT(r_small.metrics.bytes_d2h, r_large.metrics.bytes_d2h);
}

TEST(OocFw, WorksWithFileStore) {
  const auto g = graph::make_erdos_renyi(80, 350, 39);
  auto store = make_file_store(
      g.num_vertices(), testing::TempDir() + "/gapsp_fw_file_test.bin");
  const auto r = ooc_floyd_warshall(g, tiny_opts(64u << 10), *store);
  expect_store_matches_reference(g, *store, r);
}

}  // namespace
}  // namespace gapsp::core
