#include <gtest/gtest.h>

#include <vector>

#include "core/component_solver.h"
#include "graph/generators.h"
#include "test_util.h"

namespace gapsp::core {
namespace {

ApspOptions opts() {
  ApspOptions o;
  o.device = sim::DeviceSpec::v100_scaled(2u << 20);
  o.fw_tile = 32;
  o.algorithm = Algorithm::kJohnson;
  return o;
}

SelectorOptions sel() {
  SelectorOptions s;
  s.dense_percent = 4.0;
  s.sparse_percent = 0.8;
  return s;
}

graph::CsrGraph two_islands() {
  // Two disjoint chains: {0..59} and {60..139}.
  std::vector<graph::Edge> edges;
  for (vidx_t v = 1; v < 60; ++v) edges.push_back({v - 1, v, 1});
  for (vidx_t v = 61; v < 140; ++v) edges.push_back({v - 1, v, 2});
  return graph::CsrGraph::from_edges(140, std::move(edges), true);
}

TEST(ComponentSolver, SingleComponentDegradesToPlainSolve) {
  const auto g = graph::make_road(12, 12, 701);
  auto store = make_ram_store(g.num_vertices());
  const auto r = solve_apsp_per_component(g, opts(), *store, sel());
  EXPECT_EQ(r.num_components, 1);
  EXPECT_EQ(r.largest_component, g.num_vertices());
  test::expect_store_matches_reference(g, *store, r.result);
}

TEST(ComponentSolver, TwoIslandsSolvedIndependently) {
  const auto g = two_islands();
  auto store = make_ram_store(g.num_vertices());
  const auto r = solve_apsp_per_component(g, opts(), *store, sel());
  EXPECT_EQ(r.num_components, 2);
  EXPECT_EQ(r.largest_component, 80);
  test::expect_store_matches_reference(g, *store, r.result);
  // Cross-island entries stayed at the store's kInf initialization.
  EXPECT_EQ(store->at(r.result.stored_id(0), r.result.stored_id(100)), kInf);
}

TEST(ComponentSolver, IsolatedVerticesHandled) {
  auto g = graph::CsrGraph::from_edges(7, {{0, 1, 3}, {1, 2, 4}}, true);
  // vertices 3..6 are isolated singletons
  auto store = make_ram_store(7);
  const auto r = solve_apsp_per_component(g, opts(), *store, sel());
  EXPECT_EQ(r.num_components, 5);
  test::expect_store_matches_reference(g, *store, r.result);
  for (vidx_t v : {3, 4, 5, 6}) {
    EXPECT_EQ(store->at(r.result.stored_id(v), r.result.stored_id(v)), 0);
  }
}

TEST(ComponentSolver, ManyRandomComponents) {
  const auto g = graph::make_erdos_renyi(300, 260, 702, /*connect=*/false);
  auto store = make_ram_store(g.num_vertices());
  const auto r = solve_apsp_per_component(g, opts(), *store, sel());
  EXPECT_GT(r.num_components, 1);
  EXPECT_EQ(static_cast<int>(r.per_group.size()), r.num_groups);
  EXPECT_LE(r.num_groups, r.num_components);  // small fragments were packed
  test::expect_store_matches_reference(g, *store, r.result);
}

TEST(ComponentSolver, LessOutputTrafficThanMonolithicSolve) {
  const auto g = two_islands();
  auto s1 = make_ram_store(g.num_vertices());
  auto s2 = make_ram_store(g.num_vertices());
  const auto split = solve_apsp_per_component(g, opts(), *s1, sel());
  const auto mono = solve_apsp(g, opts(), *s2);
  // Σnᵢ² = 60² + 80² = 10000 < 140² = 19600 — the whole point.
  EXPECT_LT(split.result.metrics.bytes_d2h, mono.metrics.bytes_d2h);
}

TEST(ComponentSolver, AutoSelectionPerComponent) {
  const auto g = two_islands();
  auto o = opts();
  o.algorithm = Algorithm::kAuto;
  auto store = make_ram_store(g.num_vertices());
  const auto r = solve_apsp_per_component(g, o, *store, sel());
  ASSERT_EQ(r.per_group.size(), 2u);  // 80 and 60 both exceed the pack size
  for (const Algorithm a : r.per_group) {
    EXPECT_NE(a, Algorithm::kAuto);
  }
  test::expect_store_matches_reference(g, *store, r.result);
}

TEST(ComponentSolver, PermutationIsBijection) {
  const auto g = graph::make_erdos_renyi(200, 150, 703, false);
  auto store = make_ram_store(g.num_vertices());
  const auto r = solve_apsp_per_component(g, opts(), *store, sel());
  std::vector<bool> seen(static_cast<std::size_t>(g.num_vertices()), false);
  for (vidx_t p : r.result.perm) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, g.num_vertices());
    ASSERT_FALSE(seen[p]);
    seen[p] = true;
  }
}

TEST(ComponentSolver, DirectedIslandsUseWeakComponents) {
  // Regression: island B is a *reverse* chain (every arc v -> v-1), which an
  // out-edge-only labelling shreds into singletons — the packed-group solve
  // then produced wrong group shapes. Weak labelling keeps each island whole.
  std::vector<graph::Edge> edges;
  for (vidx_t v = 1; v < 50; ++v) edges.push_back({v - 1, v, 1});    // A: fwd
  for (vidx_t v = 51; v < 120; ++v) edges.push_back({v, v - 1, 2});  // B: rev
  const auto g = graph::CsrGraph::from_edges(120, std::move(edges),
                                             /*symmetrize=*/false);
  auto store = make_ram_store(g.num_vertices());
  const auto r = solve_apsp_per_component(g, opts(), *store, sel());
  EXPECT_EQ(r.num_components, 2);
  EXPECT_EQ(r.largest_component, 70);
  test::expect_store_matches_reference(g, *store, r.result);
  // Directedness survives the decomposition: B flows only downwards.
  EXPECT_EQ(store->at(r.result.stored_id(119), r.result.stored_id(51)), 136);
  EXPECT_EQ(store->at(r.result.stored_id(51), r.result.stored_id(119)), kInf);
}

}  // namespace
}  // namespace gapsp::core
