// Integration tests pinning the paper's headline claims as executable
// assertions — if a refactor breaks the *story* (not just a unit), these
// fail. Each claim runs on one representative workload to keep the suite
// fast; the benches sweep the full zoo.
#include <gtest/gtest.h>

#include "baseline/baselines.h"
#include "core/apsp.h"
#include "core/ooc_boundary.h"
#include "core/ooc_johnson.h"
#include "graph/generators.h"
#include "graph/suite.h"
#include "test_util.h"

namespace gapsp::core {
namespace {

ApspOptions v100() {
  ApspOptions o;
  o.device = sim::DeviceSpec::v100_scaled();
  return o;
}

SelectorOptions scaled_sel() {
  SelectorOptions s;
  s.dense_percent = 4.0;
  s.sparse_percent = 0.8;
  return s;
}

TEST(PaperClaims, Fig2BoundaryBeatsBglPlusOnSmallSeparator) {
  // Paper: 8.22x - 12.40x. Allow a generous band around it.
  const auto g = graph::zoo_by_name("usroads")->graph;
  auto store = make_ram_store(g.num_vertices());
  const auto gpu = ooc_boundary(g, v100(), *store);
  const auto cpu = baseline::bgl_plus_apsp(g, baseline::CpuSpec::e5_2680_v2());
  const double speedup = cpu.sim_seconds / gpu.metrics.sim_seconds;
  EXPECT_GE(speedup, 6.0);
  EXPECT_LE(speedup, 16.0);
}

TEST(PaperClaims, Fig3JohnsonBeatsBglPlusOnMeshes) {
  // Paper: 2.23x - 2.79x.
  const auto g = graph::zoo_by_name("oilpan")->graph;
  auto store = make_ram_store(g.num_vertices());
  const auto gpu = ooc_johnson(g, v100(), *store);
  const auto cpu = baseline::bgl_plus_apsp(g, baseline::CpuSpec::e5_2680_v2());
  const double speedup = cpu.sim_seconds / gpu.metrics.sim_seconds;
  EXPECT_GE(speedup, 1.5);
  EXPECT_LE(speedup, 4.5);
}

TEST(PaperClaims, BoundaryBeatsJohnsonOnSmallSeparatorGraphs) {
  // The Fig. 6 ordering on every small-separator zoo graph.
  for (const auto& e : graph::small_separator_zoo()) {
    auto s1 = make_ram_store(e.graph.num_vertices());
    auto s2 = make_ram_store(e.graph.num_vertices());
    const auto bnd = ooc_boundary(e.graph, v100(), *s1);
    const auto joh = ooc_johnson(e.graph, v100(), *s2);
    EXPECT_LT(bnd.metrics.sim_seconds, joh.metrics.sim_seconds) << e.name;
  }
}

TEST(PaperClaims, SelectorPicksBoundaryForEverySmallSeparatorGraph) {
  for (const auto& e : graph::small_separator_zoo()) {
    const auto report = select_algorithm(e.graph, v100(), scaled_sel());
    EXPECT_EQ(report.chosen, Algorithm::kBoundary) << e.name;
  }
}

TEST(PaperClaims, SelectorPicksJohnsonForEveryMeshGraph) {
  // Density filter: the FEM meshes fall in the middle band -> Johnson.
  for (const auto& e : graph::other_sparse_zoo()) {
    const auto report = select_algorithm(e.graph, v100(), scaled_sel());
    EXPECT_EQ(report.chosen, Algorithm::kJohnson) << e.name;
  }
}

TEST(PaperClaims, Fig8BatchingAndOverlapBothHelp) {
  const auto g = graph::zoo_by_name("nm2010")->graph;
  auto naive_opts = v100();
  naive_opts.batch_transfers = false;
  naive_opts.overlap_transfers = false;
  auto batch_opts = v100();
  batch_opts.overlap_transfers = false;
  auto overlap_opts = v100();
  auto s1 = make_ram_store(g.num_vertices());
  auto s2 = make_ram_store(g.num_vertices());
  auto s3 = make_ram_store(g.num_vertices());
  const double naive =
      ooc_boundary(g, naive_opts, *s1).metrics.sim_seconds;
  const double batched =
      ooc_boundary(g, batch_opts, *s2).metrics.sim_seconds;
  const double overlapped =
      ooc_boundary(g, overlap_opts, *s3).metrics.sim_seconds;
  EXPECT_GT(naive / batched, 1.4);       // paper: 1.99-5.71
  const double gain = (batched - overlapped) / batched;
  EXPECT_GT(gain, 0.10);                 // paper: 12.7%-29.1%
  EXPECT_LT(gain, 0.35);
}

TEST(PaperClaims, JohnsonBatchSizeShrinksWithDensityAcrossTheZoo) {
  // The Fig. 3 mechanism: denser graph -> smaller bat.
  int last_bat = 1 << 30;
  double last_m = 0;
  for (const auto& e : graph::other_sparse_zoo()) {
    const int bat = johnson_batch_size(v100().device, e.graph, 2.0);
    if (static_cast<double>(e.graph.num_edges()) > last_m) {
      EXPECT_LE(bat, last_bat) << e.name;
    }
    last_bat = bat;
    last_m = static_cast<double>(e.graph.num_edges());
  }
}

TEST(PaperClaims, TableVComputeEfficiencyStableOnV100) {
  // n·m/s within a 2x band across a 4x size range (paper: "relatively
  // stable").
  double lo = 1e30, hi = 0;
  for (int scale : {9, 10, 11}) {
    const auto g = graph::make_rmat(scale, 4000 << (scale - 9), 999 + scale);
    auto store = make_ram_store(g.num_vertices());
    const auto r = ooc_johnson(g, v100(), *store);
    const double nms = static_cast<double>(g.num_vertices()) *
                       static_cast<double>(g.num_edges()) /
                       r.metrics.sim_seconds;
    lo = std::min(lo, nms);
    hi = std::max(hi, nms);
  }
  EXPECT_LT(hi / lo, 2.0);
}

}  // namespace
}  // namespace gapsp::core
