// Differential kernel-conformance harness (ISSUE 6): every registered
// min-plus microkernel variant must be bit-identical to kNaive — same
// distances for every cell, no tolerance — across a corpus chosen to hit the
// places vector kernels break: ragged tails at every blocking boundary,
// kInf-dense strips (the hoisted liveness skip must not change results),
// aliased closed-operand panel forms (the FW call sites), and plain directed
// asymmetry. The contract closes end-to-end with full solve_apsp parity,
// including under a chaos fault schedule: variants may only move host
// wall-clock, never distances, the simulated timeline, or the fault/retry
// sequence.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/apsp.h"
#include "core/kernel_engine.h"
#include "core/minplus.h"
#include "graph/generators.h"
#include "test_util.h"
#include "util/rng.h"

namespace gapsp::core {
namespace {

using test::expect_store_matches_reference;
using test::tiny_device;

// Exercise the parallel grid path even on single-hardware-thread containers
// (must precede the first ThreadPool::global(); see kernel_engine_test.cpp).
[[maybe_unused]] const bool g_pool_env = [] {
  ::setenv("GAPSP_THREADS", "4", /*overwrite=*/0);
  return true;
}();

/// Every concrete variant that is not the oracle.
const std::vector<KernelVariant>& non_naive_variants() {
  static const std::vector<KernelVariant> v{
      KernelVariant::kTiled, KernelVariant::kTiledReg, KernelVariant::kSimd,
      KernelVariant::kTensor};
  return v;
}

class KernelConformance : public ::testing::Test {
 protected:
  void TearDown() override { set_kernel_config(KernelConfig{}); }
};

std::vector<dist_t> random_matrix(vidx_t rows, vidx_t cols,
                                  std::uint64_t seed, double p_inf) {
  Rng rng(seed);
  std::vector<dist_t> m(static_cast<std::size_t>(rows) * cols);
  for (auto& x : m) {
    x = rng.next_bool(p_inf) ? kInf
                             : static_cast<dist_t>(rng.next_in(1, 1000));
  }
  return m;
}

/// Runs every non-naive variant against the naive oracle on one operand set
/// and asserts bit-identical output.
void expect_all_variants_match(const std::vector<dist_t>& a,
                               const std::vector<dist_t>& b,
                               const std::vector<dist_t>& c0, vidx_t nr,
                               vidx_t nk, vidx_t nc,
                               const std::string& what) {
  auto want = c0;
  minplus_accum_naive(want.data(), nc, a.data(), nk, b.data(), nc, nr, nk,
                      nc);
  for (const KernelVariant v : non_naive_variants()) {
    auto got = c0;
    minplus_accum_variant(v, got.data(), nc, a.data(), nk, b.data(), nc, nr,
                          nk, nc);
    ASSERT_EQ(got, want) << kernel_variant_name(v) << " diverges on " << what
                         << " (" << nr << "x" << nk << "x" << nc << ")";
  }
}

TEST_F(KernelConformance, RandomizedRaggedCorpus) {
  // Shapes straddle every blocking boundary in play: the 8-row / 16-column
  // vector register tile, the lane width, the 64-wide k tile, and the
  // scalar kernels' 4×16 block — plus asymmetric nr/nk/nc so row, column
  // and depth tails all appear, separately and together. Random directed
  // weights are asymmetric by construction (d(i,j) independent of d(j,i)).
  const vidx_t sizes[] = {1, 2, 7, 8, 9, 15, 17, 31, 64, 65, 97};
  int case_no = 0;
  for (const vidx_t nr : sizes) {
    for (const vidx_t nk : {sizes[2], sizes[8], sizes[10]}) {
      for (const vidx_t nc : {sizes[0], sizes[5], sizes[9], sizes[10]}) {
        for (const double p_inf : {0.0, 0.4, 0.95}) {
          const std::uint64_t seed = 0xC0FFEEu + 7919u * ++case_no;
          expect_all_variants_match(
              random_matrix(nr, nk, seed, p_inf),
              random_matrix(nk, nc, seed + 1, p_inf),
              random_matrix(nr, nc, seed + 2, p_inf / 3), nr, nk, nc,
              "random corpus p_inf=" + std::to_string(p_inf));
        }
      }
    }
  }
}

TEST_F(KernelConformance, KInfDenseStrips) {
  // Whole (row-block × k-tile) strips of A dead, in several patterns: the
  // hoisted liveness skip must fire without ever changing a cell, including
  // when a strip is dead except for a single lane at its edge.
  const vidx_t nr = 80, nk = 192, nc = 80;
  for (const int pattern : {0, 1, 2, 3}) {
    auto a = random_matrix(nr, nk, 0xDEAD + pattern, 0.0);
    for (vidx_t r = 0; r < nr; ++r) {
      for (vidx_t k = 0; k < nk; ++k) {
        const vidx_t tile = k / 64;
        const bool dead =
            pattern == 0 ||                         // all strips dead
            (pattern == 1 && tile % 2 == 0) ||      // alternating tiles
            (pattern == 2 && r >= 32) ||            // dead row blocks
            (pattern == 3 && !(tile == 1 && r == 33 && k == 127));
        if (dead) a[static_cast<std::size_t>(r) * nk + k] = kInf;
      }
    }
    expect_all_variants_match(a, random_matrix(nk, nc, 0xBEEF, 0.2),
                              random_matrix(nr, nc, 0xF00D, 0.5), nr, nk, nc,
                              "kInf strips pattern " + std::to_string(pattern));
  }
}

TEST_F(KernelConformance, AliasedClosedOperandForms) {
  // The FW panel forms run the product in place: row-panel P = min(P, D⊗P)
  // (C aliases B) and col-panel P = min(P, P⊗D) (C aliases A), with D the
  // transitively closed diagonal block. Closure makes every read
  // interleaving — including tensor's pack-then-sweep and the deferred
  // scalar tails — converge to the same entrywise min (DESIGN.md §9), so
  // bit-identicality must hold here exactly as in the unaliased case.
  const vidx_t n = 150;  // ragged against every tile width in play
  auto d = random_matrix(n, n, 41, 0.3);
  fw_inplace(d.data(), n, n);
  const auto p0 = random_matrix(n, n, 42, 0.3);
  auto closed_p0 = p0;
  fw_inplace(closed_p0.data(), n, n);

  struct Form {
    const char* name;
    bool c_is_a, c_is_b, close_c;
  };
  for (const Form f : {Form{"row-panel", false, true, false},
                       Form{"col-panel", true, false, false},
                       Form{"self", true, true, true}}) {
    const auto& init = f.close_c ? closed_p0 : p0;
    auto want = init;
    {
      const dist_t* a = f.c_is_a ? want.data() : d.data();
      const dist_t* b = f.c_is_b ? want.data() : d.data();
      minplus_accum_naive(want.data(), n, a, n, b, n, n, n, n);
    }
    for (const KernelVariant v : non_naive_variants()) {
      auto got = init;
      const dist_t* a = f.c_is_a ? got.data() : d.data();
      const dist_t* b = f.c_is_b ? got.data() : d.data();
      minplus_accum_variant(v, got.data(), n, a, n, b, n, n, n, n);
      ASSERT_EQ(got, want)
          << kernel_variant_name(v) << " diverges on aliased " << f.name;
    }
  }
}

TEST_F(KernelConformance, TuningTableCoversEveryVariant) {
  const KernelTuning tuning = kernel_tuning();
  EXPECT_TRUE(tuning.measured);
  EXPECT_NE(tuning.winner, KernelVariant::kAuto);
  for (int i = 0; i < kNumKernelVariants; ++i) {
    EXPECT_GT(tuning.seconds_per_op[i], 0.0) << "variant index " << i;
  }
  EXPECT_DOUBLE_EQ(kernel_variant_rel_speed(KernelVariant::kNaive), 1.0);
  // kAuto prices as the winner it resolves to.
  EXPECT_DOUBLE_EQ(kernel_variant_rel_speed(KernelVariant::kAuto),
                   kernel_variant_rel_speed(tuning.winner));
}

TEST_F(KernelConformance, LaneBackendReportsSanely) {
  const std::string isa = simd_lane_isa();
  EXPECT_TRUE(isa == "avx2" || isa == "neon" || isa == "autovec") << isa;
  EXPECT_TRUE(simd_lane_width() == 4 || simd_lane_width() == 8);
  if (simd_kernels_built_avx2()) {
    EXPECT_EQ(isa, "avx2");
  }
}

void expect_stores_identical(const DistStore& sa, const DistStore& sb) {
  ASSERT_EQ(sa.n(), sb.n());
  const vidx_t n = sa.n();
  std::vector<dist_t> a(static_cast<std::size_t>(n));
  std::vector<dist_t> b(static_cast<std::size_t>(n));
  for (vidx_t r = 0; r < n; ++r) {
    sa.read_block(r, 0, 1, n, a.data(), a.size());
    sb.read_block(r, 0, 1, n, b.data(), b.size());
    ASSERT_EQ(a, b) << "row " << r;
  }
}

class SolveConformance : public ::testing::TestWithParam<Algorithm> {
 protected:
  void TearDown() override { set_kernel_config(KernelConfig{}); }
};

TEST_P(SolveConformance, FullSolveParityForVectorVariants) {
  const auto g = graph::make_erdos_renyi(140, 850, 51);
  ApspOptions opts;
  opts.device = tiny_device(512u << 10);
  opts.fw_tile = 32;
  opts.algorithm = GetParam();
  opts.kernel_variant = KernelVariant::kNaive;
  opts.kernel_threads = 1;
  auto s_base = make_ram_store(g.num_vertices());
  const auto base = solve_apsp(g, opts, *s_base);
  expect_store_matches_reference(g, *s_base, base);

  for (const KernelVariant v :
       {KernelVariant::kSimd, KernelVariant::kTensor}) {
    for (const int threads : {1, 0}) {
      ApspOptions alt = opts;
      alt.kernel_variant = v;
      alt.kernel_threads = threads;
      auto s_alt = make_ram_store(g.num_vertices());
      const auto r = solve_apsp(g, alt, *s_alt);
      EXPECT_EQ(r.metrics.kernel_variant, kernel_variant_name(v));
      EXPECT_DOUBLE_EQ(r.metrics.sim_seconds, base.metrics.sim_seconds);
      EXPECT_EQ(r.metrics.kernels, base.metrics.kernels);
      EXPECT_EQ(r.metrics.total_ops, base.metrics.total_ops);
      expect_stores_identical(*s_base, *s_alt);
    }
  }
}

TEST_P(SolveConformance, ChaosScheduleParityForVectorVariants) {
  // Faults gate at launch granularity, before kernel bodies run: an
  // identical launch sequence implies an identical fault/retry schedule, so
  // swapping in the vector microkernels must reproduce the whole chaotic
  // run bit-for-bit.
  const auto g = graph::make_erdos_renyi(130, 700, 52);
  ApspOptions opts;
  opts.device = tiny_device(256u << 10);
  opts.fw_tile = 32;
  opts.algorithm = GetParam();
  sim::FaultPlan plan;
  plan.seed = 77;
  plan.p_kernel = 0.02;
  plan.p_h2d = 0.02;
  plan.p_d2h = 0.02;
  opts.faults = &plan;
  opts.retry.max_retries = 8;
  opts.kernel_variant = KernelVariant::kNaive;
  opts.kernel_threads = 1;
  auto s_base = make_ram_store(g.num_vertices());
  const auto base = solve_apsp(g, opts, *s_base);

  for (const KernelVariant v :
       {KernelVariant::kSimd, KernelVariant::kTensor}) {
    ApspOptions alt = opts;
    alt.kernel_variant = v;
    alt.kernel_threads = 0;
    auto s_alt = make_ram_store(g.num_vertices());
    const auto r = solve_apsp(g, alt, *s_alt);
    EXPECT_EQ(r.metrics.faults_injected, base.metrics.faults_injected);
    EXPECT_EQ(r.metrics.kernel_retries, base.metrics.kernel_retries);
    EXPECT_EQ(r.metrics.transfer_retries, base.metrics.transfer_retries);
    EXPECT_DOUBLE_EQ(r.metrics.sim_seconds, base.metrics.sim_seconds);
    expect_stores_identical(*s_base, *s_alt);
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, SolveConformance,
                         ::testing::Values(Algorithm::kBlockedFloydWarshall,
                                           Algorithm::kJohnson,
                                           Algorithm::kBoundary));

}  // namespace
}  // namespace gapsp::core
