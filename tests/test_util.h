// Shared helpers for the gapsp test suite.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "core/apsp.h"
#include "graph/csr_graph.h"
#include "sssp/dijkstra.h"
#include "util/rng.h"

namespace gapsp::test {

/// Reference APSP row via Dijkstra.
inline std::vector<dist_t> ref_row(const graph::CsrGraph& g, vidx_t src) {
  return sssp::dijkstra(g, src);
}

/// Asserts that the store produced by `result` matches Dijkstra on every
/// row (small graphs) — the master correctness oracle.
inline void expect_store_matches_reference(const graph::CsrGraph& g,
                                           const core::DistStore& store,
                                           const core::ApspResult& result) {
  const vidx_t n = g.num_vertices();
  std::vector<dist_t> row(static_cast<std::size_t>(n));
  for (vidx_t u = 0; u < n; ++u) {
    const auto ref = ref_row(g, u);
    store.read_block(result.stored_id(u), 0, 1, n, row.data(), row.size());
    for (vidx_t v = 0; v < n; ++v) {
      ASSERT_EQ(ref[v], row[result.stored_id(v)])
          << "dist(" << u << "," << v << ") mismatch";
    }
  }
}

/// Spot-check `samples` random rows instead of all n (larger graphs).
inline void expect_store_rows_match(const graph::CsrGraph& g,
                                    const core::DistStore& store,
                                    const core::ApspResult& result,
                                    int samples, std::uint64_t seed = 42) {
  Rng rng(seed);
  const vidx_t n = g.num_vertices();
  std::vector<dist_t> row(static_cast<std::size_t>(n));
  for (int s = 0; s < samples; ++s) {
    const vidx_t u = static_cast<vidx_t>(rng.next_below(n));
    const auto ref = ref_row(g, u);
    store.read_block(result.stored_id(u), 0, 1, n, row.data(), row.size());
    for (vidx_t v = 0; v < n; ++v) {
      ASSERT_EQ(ref[v], row[result.stored_id(v)])
          << "dist(" << u << "," << v << ") mismatch";
    }
  }
}

/// A small device so out-of-core paths trigger even on tiny test graphs.
inline sim::DeviceSpec tiny_device(std::size_t bytes = 256u << 10) {
  return sim::DeviceSpec::v100().with_memory(bytes);
}

}  // namespace gapsp::test
