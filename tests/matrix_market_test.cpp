#include <gtest/gtest.h>

#include <sstream>

#include "graph/matrix_market.h"

namespace gapsp::graph {
namespace {

TEST(MatrixMarket, ParsesGeneralInteger) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "% a comment\n"
      "3 3 2\n"
      "1 2 5\n"
      "2 3 7\n");
  CsrGraph g = read_matrix_market(in);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.neighbors(0)[0], 1);
  EXPECT_EQ(g.weights(0)[0], 5);
}

TEST(MatrixMarket, SymmetricAddsBothDirections) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "2 2 1\n"
      "2 1 4.2\n");
  CsrGraph g = read_matrix_market(in);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.weights(0)[0], 4);  // |4.2| rounded
  EXPECT_EQ(g.weights(1)[0], 4);
}

TEST(MatrixMarket, PatternEntriesGetUnitWeight) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "1 2\n");
  CsrGraph g = read_matrix_market(in);
  EXPECT_EQ(g.weights(0)[0], 1);
}

TEST(MatrixMarket, NegativeAndFractionalValuesMapToPositiveWeights) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 2 -3.7\n"
      "2 1 0.2\n");
  CsrGraph g = read_matrix_market(in);
  EXPECT_EQ(g.weights(0)[0], 4);  // round(|-3.7|)
  EXPECT_EQ(g.weights(1)[0], 1);  // clamped up to 1
}

TEST(MatrixMarket, SelfLoopsDropped) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 2\n"
      "1 1 9\n"
      "1 2 3\n");
  CsrGraph g = read_matrix_market(in);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(MatrixMarket, RejectsRectangular) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 3 0\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(MatrixMarket, RejectsMissingBanner) {
  std::istringstream in("3 3 0\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(MatrixMarket, RejectsUnsupportedField) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate complex general\n"
      "2 2 0\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(MatrixMarket, RejectsTruncatedEntries) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 2\n"
      "1 2 3\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(MatrixMarket, RejectsIndexOutOfRange) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 1\n"
      "1 5 3\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(MatrixMarket, WriteReadRoundTrip) {
  CsrGraph g = CsrGraph::from_edges(
      4, {{0, 1, 5}, {1, 2, 7}, {3, 0, 2}}, /*symmetrize=*/false);
  std::stringstream buf;
  write_matrix_market(g, buf);
  CsrGraph back = read_matrix_market(buf);
  ASSERT_EQ(back.num_vertices(), g.num_vertices());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (vidx_t u = 0; u < g.num_vertices(); ++u) {
    ASSERT_EQ(back.out_degree(u), g.out_degree(u));
    for (std::size_t i = 0; i < g.neighbors(u).size(); ++i) {
      EXPECT_EQ(back.neighbors(u)[i], g.neighbors(u)[i]);
      EXPECT_EQ(back.weights(u)[i], g.weights(u)[i]);
    }
  }
}

TEST(MatrixMarket, FileRoundTrip) {
  CsrGraph g = CsrGraph::from_edges(3, {{0, 1, 4}, {2, 0, 6}}, false);
  const std::string path = testing::TempDir() + "/gapsp_mm_test.mtx";
  write_matrix_market_file(g, path);
  CsrGraph back = read_matrix_market_file(path);
  EXPECT_EQ(back.num_edges(), 2);
  EXPECT_EQ(back.weights(2)[0], 6);
  std::remove(path.c_str());
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/nowhere.mtx"), Error);
}

}  // namespace
}  // namespace gapsp::graph
