// Sharded-store + router coverage: GAPSPSH1 manifest round-trips (raw and
// GAPSPZ1 sources, ragged last shard), slice stores that refuse rows they
// do not own, router-vs-single-engine bit parity (in-process and forked
// worker processes), and the typed degradation sweep — a killed worker
// quarantines exactly its row range while sibling shards stay bit-identical.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/apsp.h"
#include "core/compressed_store.h"
#include "core/shard_store.h"
#include "graph/generators.h"
#include "service/query_engine.h"
#include "service/shard_router.h"
#include "test_util.h"
#include "util/rng.h"

namespace gapsp::service {
namespace {

using core::DistStore;
using core::ShardManifest;

/// Solves into a kept raw file store; returns the result (perm for
/// boundary solves).
core::ApspResult solve_to_file(const graph::CsrGraph& g,
                               const std::string& path,
                               core::Algorithm algo) {
  core::ApspOptions o;
  o.device = sim::DeviceSpec::v100_scaled(2u << 20);
  o.fw_tile = 32;
  o.algorithm = algo;
  auto store = core::make_file_store(g.num_vertices(), path,
                                     /*keep_file=*/true);
  return core::solve_apsp(g, o, *store);
}

void remove_shard_files(const std::string& path, const ShardManifest& m) {
  std::remove(core::shard_manifest_path(path).c_str());
  for (int k = 0; k < m.num_shards(); ++k) {
    std::remove(core::shard_file_path(path, k).c_str());
  }
  std::remove(path.c_str());
}

std::vector<Query> random_queries(vidx_t n, int points, int rows,
                                  std::uint64_t seed) {
  std::vector<Query> qs;
  Rng rng(seed);
  for (int i = 0; i < points; ++i) {
    qs.push_back({QueryKind::kPoint, static_cast<vidx_t>(rng.next_below(n)),
                  static_cast<vidx_t>(rng.next_below(n))});
  }
  for (int i = 0; i < rows; ++i) {
    qs.push_back(
        {QueryKind::kRow, static_cast<vidx_t>(rng.next_below(n)), 0});
  }
  return qs;
}

void expect_same_results(const BatchReport& got, const BatchReport& want) {
  ASSERT_EQ(got.results.size(), want.results.size());
  for (std::size_t i = 0; i < got.results.size(); ++i) {
    ASSERT_EQ(got.results[i].status, want.results[i].status) << "query " << i;
    ASSERT_EQ(got.results[i].dist, want.results[i].dist) << "query " << i;
    ASSERT_EQ(got.results[i].row, want.results[i].row) << "query " << i;
  }
}

TEST(ShardStore, RawManifestRoundTripWithRaggedLastShard) {
  const std::string path = ::testing::TempDir() + "gapsp_shard_raw.bin";
  const auto g = graph::make_road(11, 11, 601);  // n=121: ragged vs tile 32
  solve_to_file(g, path, core::Algorithm::kJohnson);

  core::ShardingStats stats;
  const auto m = core::shard_store_file(path, /*num_shards=*/3, /*tile=*/32,
                                        &stats);
  EXPECT_FALSE(m.compressed);
  EXPECT_EQ(m.n, 121);
  EXPECT_EQ(m.tile, 32);
  ASSERT_EQ(m.num_shards(), 3);
  // Contiguous whole-tile ranges covering [0, n), last one ragged.
  EXPECT_EQ(m.shards[0].row_begin, 0);
  for (int k = 0; k + 1 < 3; ++k) {
    EXPECT_EQ(m.shards[static_cast<std::size_t>(k)].row_end,
              m.shards[static_cast<std::size_t>(k) + 1].row_begin);
    EXPECT_EQ(m.shards[static_cast<std::size_t>(k)].row_begin % 32, 0);
  }
  EXPECT_EQ(m.shards[2].row_end, 121);
  EXPECT_NE(m.shards[2].row_end % 32, 0);  // genuinely ragged
  EXPECT_GT(stats.bytes_written, 0u);

  ShardManifest loaded;
  ASSERT_TRUE(core::load_shard_manifest(core::shard_manifest_path(path),
                                        loaded));
  ASSERT_EQ(loaded.num_shards(), 3);
  EXPECT_EQ(loaded.n, m.n);
  EXPECT_EQ(loaded.tile, m.tile);
  EXPECT_EQ(loaded.compressed, m.compressed);
  for (int k = 0; k < 3; ++k) {
    const auto& a = m.shards[static_cast<std::size_t>(k)];
    const auto& b = loaded.shards[static_cast<std::size_t>(k)];
    EXPECT_EQ(a.row_begin, b.row_begin);
    EXPECT_EQ(a.row_end, b.row_end);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.checksum, b.checksum);
  }
  remove_shard_files(path, m);
}

TEST(ShardStore, SlicesReproduceTheStoreAndRejectForeignRows) {
  const std::string path = ::testing::TempDir() + "gapsp_shard_slice.bin";
  const auto g = graph::make_road(11, 11, 602);
  solve_to_file(g, path, core::Algorithm::kJohnson);
  const auto m = core::shard_store_file(path, 3, 32);
  const auto whole = core::open_file_store(path);

  std::vector<dist_t> want(static_cast<std::size_t>(m.n));
  std::vector<dist_t> got(static_cast<std::size_t>(m.n));
  for (int k = 0; k < m.num_shards(); ++k) {
    const auto slice = core::open_shard_slice(path, m, k);
    EXPECT_EQ(slice->n(), m.n);  // full-n addressing, partial ownership
    const auto& r = m.shards[static_cast<std::size_t>(k)];
    for (vidx_t u = r.row_begin; u < r.row_end; u += 7) {
      whole->read_block(u, 0, 1, m.n, want.data(), want.size());
      slice->read_block(u, 0, 1, m.n, got.data(), got.size());
      ASSERT_EQ(want, got) << "shard " << k << " row " << u;
    }
    // Rows the shard does not own are an IoError, not garbage or kInf.
    const vidx_t foreign = r.row_begin > 0 ? 0 : r.row_end;
    EXPECT_THROW(slice->read_block(foreign, 0, 1, m.n, got.data(),
                                   got.size()),
                 IoError);
  }
  remove_shard_files(path, m);
}

TEST(ShardStore, CompressedManifestRoundTripAndParity) {
  const std::string raw = ::testing::TempDir() + "gapsp_shard_z_src.bin";
  const std::string zpath = ::testing::TempDir() + "gapsp_shard_z.bin";
  const auto g = graph::make_road(11, 11, 603);
  solve_to_file(g, raw, core::Algorithm::kJohnson);
  {
    const auto src = core::open_file_store(raw);
    core::write_compressed_store(*src, zpath, /*tile=*/32);
  }
  const auto m = core::shard_store_file(zpath, 3, /*tile ignored for z1*/ 0);
  EXPECT_TRUE(m.compressed);
  EXPECT_EQ(m.tile, 32);  // inherited from the GAPSPZ1 tiling

  const auto whole = core::open_store(zpath);
  std::vector<dist_t> want(static_cast<std::size_t>(m.n));
  std::vector<dist_t> got(static_cast<std::size_t>(m.n));
  for (int k = 0; k < m.num_shards(); ++k) {
    const auto slice = core::open_shard_slice(zpath, m, k);
    EXPECT_EQ(slice->tile_size(), 32);  // cache grids snap to the tiling
    const auto& r = m.shards[static_cast<std::size_t>(k)];
    for (vidx_t u = r.row_begin; u < r.row_end; u += 5) {
      whole->read_block(u, 0, 1, m.n, want.data(), want.size());
      slice->read_block(u, 0, 1, m.n, got.data(), got.size());
      ASSERT_EQ(want, got) << "z1 shard " << k << " row " << u;
    }
  }
  remove_shard_files(zpath, m);
  std::remove(raw.c_str());
}

TEST(ShardStore, ShardOfRowBinarySearchBoundaries) {
  const std::string path = ::testing::TempDir() + "gapsp_shard_rows.bin";
  const auto g = graph::make_road(11, 11, 604);
  solve_to_file(g, path, core::Algorithm::kJohnson);
  const auto m = core::shard_store_file(path, 3, 32);
  for (int k = 0; k < m.num_shards(); ++k) {
    const auto& r = m.shards[static_cast<std::size_t>(k)];
    EXPECT_EQ(m.shard_of_row(r.row_begin), k);
    EXPECT_EQ(m.shard_of_row(r.row_end - 1), k);
  }
  EXPECT_EQ(m.shard_of_row(-1), -1);
  EXPECT_EQ(m.shard_of_row(m.n), -1);
  remove_shard_files(path, m);
}

TEST(ShardStore, VerifiedOpenDetectsCorruptShardFile) {
  const std::string path = ::testing::TempDir() + "gapsp_shard_corrupt.bin";
  const auto g = graph::make_road(11, 11, 605);
  solve_to_file(g, path, core::Algorithm::kJohnson);
  const auto m = core::shard_store_file(path, 2, 32);

  const std::string victim = core::shard_file_path(path, 1);
  {
    std::FILE* f = std::fopen(victim.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 4096, SEEK_SET), 0);
    const unsigned char junk = 0xa5;
    ASSERT_EQ(std::fwrite(&junk, 1, 1, f), 1u);
    std::fclose(f);
  }
  EXPECT_THROW(core::open_shard_slice(path, m, 1), CorruptError);
  // The sibling shard is untouched and still verifies.
  EXPECT_NO_THROW(core::open_shard_slice(path, m, 0));
  remove_shard_files(path, m);
}

TEST(ShardRouter, LocalBackendsMatchSingleEngineBitForBit) {
  // Boundary solve: non-identity perm, so routing exercises stored-id
  // translation too.
  const std::string path = ::testing::TempDir() + "gapsp_router_parity.bin";
  const auto g = graph::make_road(12, 11, 606);
  const auto result = solve_to_file(g, path, core::Algorithm::kBoundary);
  const auto m = core::shard_store_file(path, 3, 32);

  const auto whole = core::open_file_store(path);
  QueryEngineOptions opt;
  opt.block_size = 32;
  const QueryEngine single(*whole, opt, result.perm);
  ShardRouter router(m, make_local_backends(path, m, opt, result.perm), {},
                     result.perm);

  const auto qs = random_queries(m.n, 300, 10, 607);
  const auto want = single.run_batch(qs);
  const auto got = router.run_batch(qs);
  expect_same_results(got, want);
  EXPECT_EQ(got.service.served,
            static_cast<long long>(qs.size()));
  remove_shard_files(path, m);
}

TEST(ShardRouter, ForkedWorkerProcessesMatchSingleEngine) {
  const std::string path = ::testing::TempDir() + "gapsp_router_fork.bin";
  const auto g = graph::make_road(11, 11, 608);
  solve_to_file(g, path, core::Algorithm::kJohnson);
  const auto m = core::shard_store_file(path, 3, 32);

  const auto whole = core::open_file_store(path);
  QueryEngineOptions opt;
  opt.block_size = 32;
  const QueryEngine single(*whole, opt);

  ShardWorkerOptions wopt;
  wopt.engine = opt;
  auto spawner = make_fork_worker_spawner(path, wopt);
  std::vector<std::unique_ptr<ShardBackend>> backends;
  for (int k = 0; k < m.num_shards(); ++k) {
    backends.push_back(make_process_backend(spawner, k, m));
  }
  ShardRouter router(m, std::move(backends));

  const auto qs = random_queries(m.n, 200, 6, 609);
  const auto want = single.run_batch(qs);
  // Two batches through the same workers: results stable across requests.
  for (int round = 0; round < 2; ++round) {
    const auto got = router.run_batch(qs);
    expect_same_results(got, want);
  }
  remove_shard_files(path, m);
}

TEST(ShardRouter, KilledWorkerDegradesExactlyItsRowRange) {
  const std::string path = ::testing::TempDir() + "gapsp_router_kill.bin";
  const auto g = graph::make_road(11, 11, 610);
  solve_to_file(g, path, core::Algorithm::kJohnson);
  const auto m = core::shard_store_file(path, 3, 32);

  const auto whole = core::open_file_store(path);
  const QueryEngine single(*whole, {});

  // Worker 1 dies on its first batch; no retries, no respawn: its whole
  // row range must come back kQuarantined while shards 0 and 2 stay
  // bit-identical to the single engine. The batch itself never throws.
  ShardWorkerOptions wopt;
  wopt.exit_after = 1;
  ProcessBackendOptions popt;
  popt.retries = 0;
  popt.respawn = false;
  std::vector<std::unique_ptr<ShardBackend>> backends;
  for (int k = 0; k < m.num_shards(); ++k) {
    ShardWorkerOptions wk;
    wk.exit_after = (k == 1) ? 1 : 0;
    backends.push_back(make_process_backend(
        make_fork_worker_spawner(path, wk), k, m, popt));
  }
  ShardRouter router(m, std::move(backends));

  const auto qs = random_queries(m.n, 250, 8, 611);
  const auto want = single.run_batch(qs);
  const auto got = router.run_batch(qs);
  ASSERT_EQ(got.results.size(), qs.size());
  const auto& dead = m.shards[1];
  long long quarantined = 0;
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const bool owned_by_dead =
        qs[i].u >= dead.row_begin && qs[i].u < dead.row_end;
    if (owned_by_dead) {
      ++quarantined;
      ASSERT_EQ(got.results[i].status, QueryStatus::kQuarantined)
          << "query " << i;
      EXPECT_NE(got.results[i].error.find("worker dead"), std::string::npos);
    } else {
      ASSERT_EQ(got.results[i].status, QueryStatus::kOk) << "query " << i;
      ASSERT_EQ(got.results[i].dist, want.results[i].dist) << "query " << i;
      ASSERT_EQ(got.results[i].row, want.results[i].row) << "query " << i;
    }
  }
  EXPECT_GT(quarantined, 0);  // the sweep actually covered the dead range
  EXPECT_EQ(got.service.degraded, quarantined);
  EXPECT_EQ(got.service.served,
            static_cast<long long>(qs.size()) - quarantined);
  remove_shard_files(path, m);
}

TEST(ShardRouter, RespawnRetryHealsAWorkerThatDiesMidBatch) {
  const std::string path = ::testing::TempDir() + "gapsp_router_heal.bin";
  const auto g = graph::make_road(11, 11, 612);
  solve_to_file(g, path, core::Algorithm::kJohnson);
  const auto m = core::shard_store_file(path, 2, 32);

  const auto whole = core::open_file_store(path);
  const QueryEngine single(*whole, {});

  // Worker 0 dies on its *second* batch. With respawn+1 retry the replacement
  // serves the resent batch as its own first — the caller never sees the
  // death.
  ProcessBackendOptions popt;
  popt.retries = 1;
  std::vector<std::unique_ptr<ShardBackend>> backends;
  for (int k = 0; k < m.num_shards(); ++k) {
    ShardWorkerOptions wk;
    wk.exit_after = (k == 0) ? 2 : 0;
    backends.push_back(make_process_backend(
        make_fork_worker_spawner(path, wk), k, m, popt));
  }
  ShardRouter router(m, std::move(backends));

  const auto qs = random_queries(m.n, 120, 4, 613);
  const auto want = single.run_batch(qs);
  for (int round = 0; round < 3; ++round) {
    const auto got = router.run_batch(qs);
    expect_same_results(got, want);  // round 2 rides through the respawn
  }
  remove_shard_files(path, m);
}

TEST(ShardRouter, CorruptSliceDegradesOnlyItsShard) {
  const std::string path = ::testing::TempDir() + "gapsp_router_corrupt.bin";
  const auto g = graph::make_road(11, 11, 614);
  solve_to_file(g, path, core::Algorithm::kJohnson);
  const auto m = core::shard_store_file(path, 3, 32);
  {
    const std::string victim = core::shard_file_path(path, 2);
    std::FILE* f = std::fopen(victim.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 2048, SEEK_SET), 0);
    const unsigned char junk = 0x5a;
    ASSERT_EQ(std::fwrite(&junk, 1, 1, f), 1u);
    std::fclose(f);
  }
  // make_local_backends must absorb the CorruptError into a degraded
  // backend, not throw the router construction away.
  ShardRouter router(m, make_local_backends(path, m, {}));
  const auto qs = random_queries(m.n, 100, 4, 615);
  const auto got = router.run_batch(qs);
  const auto& bad = m.shards[2];
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const bool in_bad = qs[i].u >= bad.row_begin && qs[i].u < bad.row_end;
    ASSERT_EQ(got.results[i].status,
              in_bad ? QueryStatus::kQuarantined : QueryStatus::kOk)
        << "query " << i;
  }
  remove_shard_files(path, m);
}

TEST(ShardRouter, ShedsBeyondAdmissionAndTypesBadVertices) {
  const std::string path = ::testing::TempDir() + "gapsp_router_shed.bin";
  const auto g = graph::make_road(11, 11, 616);
  solve_to_file(g, path, core::Algorithm::kJohnson);
  const auto m = core::shard_store_file(path, 2, 32);

  ShardRouterOptions ropt;
  ropt.max_queue = 3;
  ShardRouter router(m, make_local_backends(path, m, {}), ropt);
  std::vector<Query> qs = {
      {QueryKind::kPoint, 0, 1},
      {QueryKind::kPoint, 5, static_cast<vidx_t>(m.n)},  // out of range
      {QueryKind::kPoint, -3, 0},                        // out of range
      {QueryKind::kPoint, 1, 2},                         // shed (beyond 3)
      {QueryKind::kRow, 2, 0},                           // shed
  };
  const auto got = router.run_batch(qs);
  ASSERT_EQ(got.results.size(), qs.size());
  EXPECT_EQ(got.results[0].status, QueryStatus::kOk);
  EXPECT_EQ(got.results[1].status, QueryStatus::kError);
  EXPECT_EQ(got.results[2].status, QueryStatus::kError);
  EXPECT_EQ(got.results[3].status, QueryStatus::kShed);
  EXPECT_EQ(got.results[4].status, QueryStatus::kShed);
  EXPECT_EQ(got.service.shed, 2);
  remove_shard_files(path, m);
}

TEST(ShardStore, ManifestValidationRejectsDamage) {
  const std::string path = ::testing::TempDir() + "gapsp_manifest_bad.bin";
  const auto g = graph::make_road(11, 11, 617);
  solve_to_file(g, path, core::Algorithm::kJohnson);
  const auto m = core::shard_store_file(path, 2, 32);
  const std::string mpath = core::shard_manifest_path(path);

  // Missing manifest is a clean false, not a throw.
  ShardManifest out;
  EXPECT_FALSE(core::load_shard_manifest(mpath + ".nope", out));

  // A flipped byte inside the entry table must fail the directory checksum.
  {
    std::FILE* f = std::fopen(mpath.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 64 + 8, SEEK_SET), 0);  // entry 0, row_end
    const unsigned char junk = 0xff;
    ASSERT_EQ(std::fwrite(&junk, 1, 1, f), 1u);
    std::fclose(f);
  }
  EXPECT_THROW(core::load_shard_manifest(mpath, out), CorruptError);
  remove_shard_files(path, m);
}

}  // namespace
}  // namespace gapsp::service
