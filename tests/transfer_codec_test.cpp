// Compressed host↔device transfer path (DESIGN.md §14).
//
// Four contracts under test: (1) the TransferCodec is a bit-exact drop-in
// for the raw staging lanes on any payload — kInf-dense, ragged, or
// incompressible — in both the staged and the synchronous forms; (2) the
// per-lane raw/wire metrics are honest (legacy byte counters stay in
// logical bytes and are invariant under the mode, fallback tiles count on
// both sides); (3) every driver × overlap × mode combination produces
// bit-identical distances, and the compressed timeline never loses to raw
// (the autotuned threshold only takes the wire path when it wins); (4) the
// kDecode fault gate retries whole tiles — a mid-decode fault never
// publishes a partial decode, probability schedules heal bit-identically,
// and a killed run resumes through checkpoints unchanged.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/apsp.h"
#include "core/transfer_codec.h"
#include "core/z1_codec.h"
#include "graph/generators.h"
#include "sim/stream_pipeline.h"
#include "test_util.h"
#include "util/rng.h"

namespace gapsp::core {
namespace {

using test::expect_store_matches_reference;
using test::tiny_device;

// ---------------------------------------------------------------------------
// Mode parsing: the --kernel-variant convention (typed hard error).
// ---------------------------------------------------------------------------

TEST(TransferCompressionFlag, ParsesKnownModes) {
  EXPECT_EQ(parse_transfer_compression("auto"), TransferCompression::kAuto);
  EXPECT_EQ(parse_transfer_compression("on"), TransferCompression::kOn);
  EXPECT_EQ(parse_transfer_compression("off"), TransferCompression::kOff);
  EXPECT_STREQ(transfer_compression_name(TransferCompression::kAuto), "auto");
  EXPECT_STREQ(transfer_compression_name(TransferCompression::kOn), "on");
  EXPECT_STREQ(transfer_compression_name(TransferCompression::kOff), "off");
}

TEST(TransferCompressionFlag, UnknownModeIsTypedError) {
  EXPECT_THROW(parse_transfer_compression("bogus"), Error);
  EXPECT_THROW(parse_transfer_compression(""), Error);
  EXPECT_THROW(parse_transfer_compression("ON"), Error);
  try {
    parse_transfer_compression("zstd");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("zstd"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("auto|on|off"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Incompressible early-out probe.
// ---------------------------------------------------------------------------

TEST(Z1Probe, AcceptsKinfTilesRejectsRandomBytes) {
  std::vector<dist_t> inf_tile(16 * 1024, kInf);
  EXPECT_TRUE(z1_probe_compressible(inf_tile.data(),
                                    inf_tile.size() * sizeof(dist_t)));

  Rng rng(99);
  std::vector<std::uint8_t> noise(64 * 1024);
  for (auto& b : noise) b = static_cast<std::uint8_t>(rng.next_below(256));
  EXPECT_FALSE(z1_probe_compressible(noise.data(), noise.size()));

  // Rejected inputs still roundtrip: the encoder emits a literal-only frame.
  const auto frame = z1_compress(noise.data(), noise.size());
  EXPECT_GE(frame.size(), noise.size());  // no magic, just headered literals
  std::vector<std::uint8_t> back(noise.size());
  z1_decompress(frame.data(), frame.size(), back.data(), back.size());
  EXPECT_EQ(back, noise);
}

// ---------------------------------------------------------------------------
// Codec vs raw oracle on a tile corpus, staged and synchronous.
// ---------------------------------------------------------------------------

/// The three payload shapes the wire path must carry bit-exactly:
/// kInf-dense (the 11.3× regime), ragged (odd, non-tile-aligned length),
/// and incompressible (fallback engages).
std::vector<std::vector<std::uint8_t>> tile_corpus() {
  std::vector<std::vector<std::uint8_t>> corpus;

  std::vector<dist_t> inf_tile(12000, kInf);
  for (std::size_t i = 0; i < inf_tile.size(); i += 97) {
    inf_tile[i] = static_cast<dist_t>(i);  // sparse reachable entries
  }
  corpus.emplace_back(
      reinterpret_cast<const std::uint8_t*>(inf_tile.data()),
      reinterpret_cast<const std::uint8_t*>(inf_tile.data()) +
          inf_tile.size() * sizeof(dist_t));

  Rng rng(7);
  std::vector<std::uint8_t> ragged(4093);  // prime: no 4-byte alignment
  for (std::size_t i = 0; i < ragged.size(); ++i) {
    ragged[i] = static_cast<std::uint8_t>(i % 11 == 0 ? rng.next_below(256)
                                                      : 0x5a);
  }
  corpus.push_back(std::move(ragged));

  std::vector<std::uint8_t> noise(48 * 1024);
  for (auto& b : noise) b = static_cast<std::uint8_t>(rng.next_below(256));
  corpus.push_back(std::move(noise));
  return corpus;
}

class CodecOracle : public ::testing::TestWithParam<TransferCompression> {};

TEST_P(CodecOracle, StagedRoundTripIsBitExact) {
  sim::Device dev(tiny_device(1u << 20));
  sim::StreamPipeline pipe(dev, /*overlap=*/true);
  TransferCodec codec(dev, GetParam());

  for (const auto& tile : tile_corpus()) {
    auto dbuf = dev.alloc<std::uint8_t>(tile.size(), "tile");
    const auto ready = codec.stage_in(pipe, dbuf.data(), tile.data(),
                                      tile.size());
    pipe.consume(ready);
    ASSERT_EQ(std::memcmp(dbuf.data(), tile.data(), tile.size()), 0);

    std::vector<std::uint8_t> back(tile.size(), 0xee);
    codec.stage_out(pipe, back.data(), dbuf.data(), tile.size(),
                    pipe.computed());
    pipe.drain();
    ASSERT_EQ(back, tile);
  }
  dev.synchronize();
  const auto m = dev.metrics();
  // Logical byte accounting never depends on the mode.
  std::size_t total = 0;
  for (const auto& tile : tile_corpus()) total += tile.size();
  EXPECT_EQ(m.bytes_h2d, total);
  EXPECT_EQ(m.bytes_d2h, total);
  if (GetParam() == TransferCompression::kOff) {
    EXPECT_EQ(m.bytes_h2d_raw + m.bytes_d2h_raw, 0u);
    EXPECT_EQ(m.bytes_h2d_wire + m.bytes_d2h_wire, 0u);
    EXPECT_EQ(m.decodes, 0);
    EXPECT_EQ(m.decode_seconds, 0.0);
  } else {
    // Every routed byte shows up on the raw side (fallback included), and
    // the wire side strictly beats it: the corpus has compressible tiles.
    EXPECT_EQ(m.bytes_h2d_raw, total);
    EXPECT_EQ(m.bytes_d2h_raw, total);
    EXPECT_LT(m.bytes_h2d_wire, m.bytes_h2d_raw);
    EXPECT_LT(m.bytes_d2h_wire, m.bytes_d2h_raw);
    // The incompressible tile fell back on both lanes, so wire includes it
    // at full size: the split can never claim more than the frames saved.
    EXPECT_GT(m.bytes_h2d_wire, 0u);
    EXPECT_GT(m.decodes, 0);
    EXPECT_GT(m.decode_seconds, 0.0);
  }
}

TEST_P(CodecOracle, SynchronousRoundTripIsBitExact) {
  sim::Device dev(tiny_device(1u << 20));
  TransferCodec codec(dev, GetParam());

  for (const auto& tile : tile_corpus()) {
    auto dbuf = dev.alloc<std::uint8_t>(tile.size(), "tile");
    codec.h2d(sim::kDefaultStream, dbuf.data(), tile.data(), tile.size(),
              /*pinned=*/true);
    ASSERT_EQ(std::memcmp(dbuf.data(), tile.data(), tile.size()), 0);
    std::vector<std::uint8_t> back(tile.size(), 0xee);
    codec.d2h(sim::kDefaultStream, back.data(), dbuf.data(), tile.size(),
              /*pinned=*/false);
    ASSERT_EQ(back, tile);
  }
  dev.synchronize();
  EXPECT_GE(dev.metrics().bytes_h2d, 0u);
}

INSTANTIATE_TEST_SUITE_P(Modes, CodecOracle,
                         ::testing::Values(TransferCompression::kOff,
                                           TransferCompression::kOn,
                                           TransferCompression::kAuto));

TEST(CodecAccounting, WireBufferIsPinnedAccounted) {
  sim::Device dev(tiny_device(1u << 20));
  {
    sim::StreamPipeline pipe(dev, /*overlap=*/true);
    TransferCodec codec(dev, TransferCompression::kOn);
    std::vector<dist_t> tile(8192, kInf);
    auto dbuf = dev.alloc<dist_t>(tile.size(), "tile");
    pipe.consume(codec.stage_in(pipe, dbuf.data(), tile.data(),
                                tile.size() * sizeof(dist_t)));
    pipe.drain();
    EXPECT_GT(dev.pinned_bytes(), 0u);  // the frame buffer is staged memory
  }
  // Codec destruction returns its pinned accounting.
  EXPECT_EQ(dev.pinned_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Driver parity: mode × algorithm × overlap, bit-identical distances and
// sim_seconds invariants.
// ---------------------------------------------------------------------------

struct DriverCase {
  Algorithm algo;
  std::size_t mem;
  const char* name;
};

class DriverParity : public ::testing::TestWithParam<DriverCase> {};

ApspOptions parity_opts(const DriverCase& c, bool overlap,
                        TransferCompression mode) {
  ApspOptions o;
  o.device = tiny_device(c.mem);  // v100 rates: decode 64 GB/s > link, so
                                  // auto engages exactly like on
  o.fw_tile = 32;
  o.algorithm = c.algo;
  o.overlap_transfers = overlap;
  o.transfer_compression = mode;
  return o;
}

TEST_P(DriverParity, ModesAreBitIdenticalAndCompressionNeverLoses) {
  const DriverCase c = GetParam();
  const auto g = graph::make_erdos_renyi(150, 700, 1234);
  const vidx_t n = g.num_vertices();

  for (const bool overlap : {false, true}) {
    auto s_off = make_ram_store(n);
    auto s_on = make_ram_store(n);
    auto s_auto = make_ram_store(n);
    const auto r_off =
        solve_apsp(g, parity_opts(c, overlap, TransferCompression::kOff),
                   *s_off);
    const auto r_on =
        solve_apsp(g, parity_opts(c, overlap, TransferCompression::kOn),
                   *s_on);
    const auto r_auto =
        solve_apsp(g, parity_opts(c, overlap, TransferCompression::kAuto),
                   *s_auto);

    // Distances: every mode bit-identical, and correct vs Dijkstra.
    ASSERT_EQ(r_off.perm, r_on.perm);
    ASSERT_EQ(r_off.perm, r_auto.perm);
    std::vector<dist_t> a(static_cast<std::size_t>(n));
    std::vector<dist_t> b(static_cast<std::size_t>(n));
    std::vector<dist_t> d(static_cast<std::size_t>(n));
    for (vidx_t r = 0; r < n; ++r) {
      s_off->read_block(r, 0, 1, n, a.data(), a.size());
      s_on->read_block(r, 0, 1, n, b.data(), b.size());
      s_auto->read_block(r, 0, 1, n, d.data(), d.size());
      ASSERT_EQ(a, b) << c.name << " row " << r << " overlap=" << overlap;
      ASSERT_EQ(a, d) << c.name << " row " << r << " overlap=" << overlap;
    }
    expect_store_matches_reference(g, *s_off, r_off);

    // sim_seconds invariants: off moves no wire bytes; on this device auto
    // and on make identical decisions, so their timelines coincide exactly;
    // the threshold only takes the wire path when it wins, so the
    // compressed makespan never exceeds raw.
    EXPECT_EQ(r_off.metrics.bytes_h2d_wire + r_off.metrics.bytes_d2h_wire,
              0u);
    EXPECT_EQ(r_off.metrics.decodes, 0);
    EXPECT_DOUBLE_EQ(r_on.metrics.sim_seconds, r_auto.metrics.sim_seconds);
    EXPECT_LE(r_on.metrics.sim_seconds,
              r_off.metrics.sim_seconds * (1.0 + 1e-9));
    // Legacy traffic counters stay logical: mode-invariant.
    EXPECT_EQ(r_off.metrics.bytes_h2d, r_on.metrics.bytes_h2d);
    EXPECT_EQ(r_off.metrics.bytes_d2h, r_on.metrics.bytes_d2h);

    // Determinism: the same configuration reproduces its timeline exactly.
    auto s_rep = make_ram_store(n);
    const auto r_rep =
        solve_apsp(g, parity_opts(c, overlap, TransferCompression::kOn),
                   *s_rep);
    EXPECT_DOUBLE_EQ(r_rep.metrics.sim_seconds, r_on.metrics.sim_seconds);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Drivers, DriverParity,
    ::testing::Values(
        DriverCase{Algorithm::kBlockedFloydWarshall, 64u << 10, "fw"},
        DriverCase{Algorithm::kJohnson, 256u << 10, "johnson"},
        DriverCase{Algorithm::kBoundary, 2u << 20, "boundary"}),
    [](const ::testing::TestParamInfo<DriverCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Chaos: the kDecode gate, probability schedules, and checkpoint resume.
// ---------------------------------------------------------------------------

ApspOptions chaos_fw_opts() {
  ApspOptions o;
  o.device = tiny_device(64u << 10);
  o.fw_tile = 32;
  o.algorithm = Algorithm::kBlockedFloydWarshall;
  o.transfer_compression = TransferCompression::kOn;
  return o;
}

TEST(TransferChaos, ScriptedDecodeFaultRetriesWholeTileBitIdentical) {
  const auto g = graph::make_erdos_renyi(90, 400, 508);
  ApspOptions clean = chaos_fw_opts();
  auto s_ref = make_ram_store(g.num_vertices());
  const auto ref = solve_apsp(g, clean, *s_ref);
  ASSERT_GT(ref.metrics.decodes, 0) << "compressed path never engaged";

  // Fail the first decode and one mid-stream decode: the gate fires before
  // materialize, so the retry re-runs the whole tile.
  sim::FaultPlan plan;
  plan.scripted.push_back({sim::FaultOp::kDecode, 1, -1, true});
  plan.scripted.push_back({sim::FaultOp::kDecode, 5, -1, true});
  ApspOptions faulty = clean;
  faulty.faults = &plan;
  auto store = make_ram_store(g.num_vertices());
  const auto r = solve_apsp(g, faulty, *store);
  EXPECT_EQ(r.metrics.decode_retries, 2);
  EXPECT_GT(r.metrics.retry_backoff_seconds, 0.0);

  const vidx_t n = g.num_vertices();
  std::vector<dist_t> a(static_cast<std::size_t>(n));
  std::vector<dist_t> b(static_cast<std::size_t>(n));
  for (vidx_t row = 0; row < n; ++row) {
    s_ref->read_block(row, 0, 1, n, a.data(), a.size());
    store->read_block(row, 0, 1, n, b.data(), b.size());
    ASSERT_EQ(a, b) << "row " << row;
  }
}

TEST(TransferChaos, ProbabilityScheduleOnEveryCompressedOpHeals) {
  const auto g = graph::make_erdos_renyi(90, 400, 508);
  ApspOptions clean = chaos_fw_opts();
  auto s_ref = make_ram_store(g.num_vertices());
  const auto ref = solve_apsp(g, clean, *s_ref);

  // Faults on every op class the compressed path gates: the wire spans
  // (h2d/d2h) and the decode kernels.
  sim::FaultPlan plan;
  plan.seed = 77;
  plan.p_h2d = 0.2;
  plan.p_d2h = 0.2;
  plan.p_decode = 0.3;
  ApspOptions faulty = clean;
  faulty.faults = &plan;
  faulty.retry.max_retries = 8;
  auto store = make_ram_store(g.num_vertices());
  const auto r = solve_apsp(g, faulty, *store);
  EXPECT_GT(r.metrics.faults_injected, 0);
  EXPECT_GT(r.metrics.decode_retries, 0);
  EXPECT_GT(r.metrics.transfer_retries, 0);

  const vidx_t n = g.num_vertices();
  std::vector<dist_t> a(static_cast<std::size_t>(n));
  std::vector<dist_t> b(static_cast<std::size_t>(n));
  for (vidx_t row = 0; row < n; ++row) {
    s_ref->read_block(row, 0, 1, n, a.data(), a.size());
    store->read_block(row, 0, 1, n, b.data(), b.size());
    ASSERT_EQ(a, b) << "row " << row;
  }
  // The faulted timeline paid for its retries.
  EXPECT_GT(r.metrics.sim_seconds, ref.metrics.sim_seconds);
}

TEST(TransferChaos, KillSweepResumesCompressedRunBitIdentical) {
  const auto g = graph::make_erdos_renyi(90, 400, 508);
  ApspOptions clean = chaos_fw_opts();
  const std::string path =
      ::testing::TempDir() + "gapsp_transfer_chaos.ck";
  auto s_ref = make_ram_store(g.num_vertices());
  const auto ref = solve_apsp(g, clean, *s_ref);

  int interruptions = 0;
  for (long long kill = 1;; kill += 3) {
    ASSERT_LT(kill, 1000000) << "kill sweep failed to terminate";
    sim::FaultPlan plan;
    plan.kill_device = 0;
    plan.kill_at_op = kill;
    ApspOptions faulty = clean;
    faulty.faults = &plan;
    faulty.checkpoint_path = path;
    auto store = make_ram_store(g.num_vertices());
    try {
      const auto done = solve_apsp(g, faulty, *store);
      EXPECT_EQ(done.metrics.faults_injected, 0);
      break;
    } catch (const sim::FaultError& e) {
      ASSERT_EQ(e.op(), sim::FaultOp::kDeviceLost);
      ++interruptions;
    }
    ApspOptions rec = clean;
    rec.checkpoint_path = path;
    rec.resume = true;
    const auto resumed = solve_apsp(g, rec, *store);
    const vidx_t n = g.num_vertices();
    std::vector<dist_t> a(static_cast<std::size_t>(n));
    std::vector<dist_t> b(static_cast<std::size_t>(n));
    for (vidx_t row = 0; row < n; ++row) {
      s_ref->read_block(row, 0, 1, n, a.data(), a.size());
      store->read_block(row, 0, 1, n, b.data(), b.size());
      ASSERT_EQ(a, b) << "kill " << kill << " row " << row;
    }
    EXPECT_EQ(resumed.perm, ref.perm);
  }
  EXPECT_GT(interruptions, 0) << "sweep never actually killed the device";
}

}  // namespace
}  // namespace gapsp::core
