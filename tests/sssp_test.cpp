#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "graph/generators.h"
#include "sssp/bellman_ford.h"
#include "sssp/delta_stepping.h"
#include "sssp/dijkstra.h"
#include "sssp/near_far.h"

namespace gapsp::sssp {
namespace {

graph::CsrGraph line_graph() {
  // 0 -5- 1 -3- 2 -1- 3
  return graph::CsrGraph::from_edges(
      4, {{0, 1, 5}, {1, 2, 3}, {2, 3, 1}}, /*symmetrize=*/true);
}

TEST(Dijkstra, LineGraphExactDistances) {
  const auto d = dijkstra(line_graph(), 0);
  EXPECT_EQ(d, (std::vector<dist_t>{0, 5, 8, 9}));
}

TEST(Dijkstra, FromLastVertex) {
  const auto d = dijkstra(line_graph(), 3);
  EXPECT_EQ(d, (std::vector<dist_t>{9, 4, 1, 0}));
}

TEST(Dijkstra, UnreachableVerticesStayInfinite) {
  auto g = graph::CsrGraph::from_edges(4, {{0, 1, 2}}, true);
  const auto d = dijkstra(g, 0);
  EXPECT_EQ(d[1], 2);
  EXPECT_EQ(d[2], kInf);
  EXPECT_EQ(d[3], kInf);
}

TEST(Dijkstra, SingleVertexGraph) {
  auto g = graph::CsrGraph::from_edges(1, {}, false);
  EXPECT_EQ(dijkstra(g, 0), (std::vector<dist_t>{0}));
}

TEST(Dijkstra, ZeroWeightEdges) {
  auto g = graph::CsrGraph::from_edges(3, {{0, 1, 0}, {1, 2, 0}}, true);
  const auto d = dijkstra(g, 0);
  EXPECT_EQ(d, (std::vector<dist_t>{0, 0, 0}));
}

TEST(Dijkstra, CountersArePopulated) {
  SsspCounters c;
  dijkstra(graph::make_road(10, 10, 1), 0, &c);
  EXPECT_GT(c.relaxations, 0);
  EXPECT_GT(c.heap_pops, 0);
  EXPECT_GE(c.heap_pops, 100);  // at least one pop per reachable vertex
}

TEST(Dijkstra, RejectsBadSource) {
  EXPECT_THROW(dijkstra(line_graph(), 7), Error);
  EXPECT_THROW(dijkstra(line_graph(), -1), Error);
}

TEST(BellmanFord, MatchesDijkstraOnLine) {
  const auto bf = bellman_ford(line_graph(), 1);
  EXPECT_EQ(bf.dist, dijkstra(line_graph(), 1));
  EXPECT_GE(bf.rounds, 1);
}

TEST(DeltaStepping, MatchesDijkstraOnLine) {
  EXPECT_EQ(delta_stepping(line_graph(), 0).dist, dijkstra(line_graph(), 0));
}

TEST(DeltaStepping, ExplicitDeltaValuesAgree) {
  const auto g = graph::make_mesh(300, 8, 4);
  const auto ref = dijkstra(g, 7);
  for (dist_t delta : {1, 5, 50, 500}) {
    EXPECT_EQ(delta_stepping(g, 7, delta).dist, ref) << "delta=" << delta;
  }
}

TEST(NearFar, MatchesDijkstraOnLine) {
  std::vector<dist_t> out(4);
  near_far_sssp(line_graph(), 0, out);
  EXPECT_EQ(out, dijkstra(line_graph(), 0));
}

TEST(NearFar, DisconnectedStaysInfinite) {
  auto g = graph::CsrGraph::from_edges(5, {{0, 1, 2}, {3, 4, 1}}, true);
  std::vector<dist_t> out(5);
  near_far_sssp(g, 0, out);
  EXPECT_EQ(out[3], kInf);
  EXPECT_EQ(out[4], kInf);
}

TEST(NearFar, HeavySplitDoesNotChangeResults) {
  const auto g = graph::make_rmat(8, 2000, 5);
  std::vector<dist_t> plain(g.num_vertices()), split(g.num_vertices());
  NearFarConfig cfg_plain;
  NearFarConfig cfg_split;
  cfg_split.heavy_degree_threshold = 8;
  const auto s1 = near_far_sssp(g, 3, plain, cfg_plain);
  const auto s2 = near_far_sssp(g, 3, split, cfg_split);
  EXPECT_EQ(plain, split);
  EXPECT_EQ(s1.relaxations, s2.relaxations);
  EXPECT_EQ(s1.heavy_relaxations, 0);
  EXPECT_GT(s2.heavy_relaxations, 0);
  EXPECT_LE(s2.heavy_relaxations, s2.relaxations);
}

TEST(NearFar, StatsAreConsistent) {
  const auto g = graph::make_road(12, 12, 9);
  std::vector<dist_t> out(g.num_vertices());
  const auto st = near_far_sssp(g, 0, out);
  EXPECT_GT(st.relaxations, 0);
  EXPECT_GT(st.vertices_processed, 0);
  EXPECT_GT(st.phases, 0);  // a road graph needs several threshold bumps
}

// ---- cross-algorithm agreement sweep (the SSSP family property) ----

struct SsspCase {
  const char* name;
  graph::CsrGraph graph;
};

class SsspAgreement : public ::testing::TestWithParam<int> {};

std::vector<SsspCase> sssp_cases() {
  std::vector<SsspCase> cases;
  cases.push_back({"road", graph::make_road(15, 14, 21)});
  cases.push_back({"mesh", graph::make_mesh(250, 10, 22)});
  cases.push_back({"rmat", graph::make_rmat(8, 1500, 23)});
  cases.push_back({"erdos", graph::make_erdos_renyi(220, 900, 24)});
  cases.push_back({"disconnected",
                   graph::make_erdos_renyi(200, 150, 25, /*connect=*/false)});
  cases.push_back({"wideweights",
                   graph::make_erdos_renyi(150, 600, 26, true, {1, 10000})});
  return cases;
}

TEST_P(SsspAgreement, AllAlgorithmsAgreeWithDijkstra) {
  const auto cases = sssp_cases();
  const auto& tc = cases[GetParam()];
  const auto& g = tc.graph;
  for (vidx_t src : {vidx_t{0}, g.num_vertices() / 2, g.num_vertices() - 1}) {
    const auto ref = dijkstra(g, src);
    EXPECT_EQ(bellman_ford(g, src).dist, ref) << tc.name << " bellman-ford";
    EXPECT_EQ(delta_stepping(g, src).dist, ref) << tc.name << " delta";
    std::vector<dist_t> nf(g.num_vertices());
    near_far_sssp(g, src, nf);
    EXPECT_EQ(nf, ref) << tc.name << " near-far";
  }
}

INSTANTIATE_TEST_SUITE_P(Families, SsspAgreement,
                         ::testing::Range(0, 6),
                         [](const auto& info) {
                           return sssp_cases()[info.param].name;
                         });

}  // namespace
}  // namespace gapsp::sssp
