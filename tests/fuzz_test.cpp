// Randomized cross-checking ("fuzz") sweep: random graph family × random
// size × random device memory × every algorithm, validated on sampled rows
// against the Dijkstra oracle. Complements the deterministic property
// tests with breadth across the configuration space.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/apsp.h"
#include "core/compressed_store.h"
#include "core/kernel_engine.h"
#include "core/store_integrity.h"
#include "graph/generators.h"
#include "service/query_engine.h"
#include "test_util.h"

namespace gapsp::core {
namespace {

graph::CsrGraph random_graph(Rng& rng) {
  const int family = static_cast<int>(rng.next_below(7));
  const auto seed = rng.next_u64();
  switch (family) {
    case 0: {
      const vidx_t side = static_cast<vidx_t>(rng.next_in(8, 16));
      return graph::make_road(side, side + 1, seed);
    }
    case 1:
      return graph::make_mesh(static_cast<vidx_t>(rng.next_in(120, 280)),
                              static_cast<int>(rng.next_in(6, 16)), seed);
    case 2:
      return graph::make_rmat(static_cast<int>(rng.next_in(6, 8)),
                              rng.next_in(300, 1200), seed);
    case 3:
      return graph::make_erdos_renyi(
          static_cast<vidx_t>(rng.next_in(100, 260)), rng.next_in(150, 900),
          seed, /*connect=*/rng.next_bool(0.5));
    case 4:
      return graph::make_small_world(
          static_cast<vidx_t>(rng.next_in(100, 260)),
          static_cast<int>(rng.next_in(1, 4)), rng.next_double() * 0.5, seed);
    case 5:
      return graph::make_preferential(
          static_cast<vidx_t>(rng.next_in(100, 260)),
          static_cast<int>(rng.next_in(1, 4)), seed);
    default: {
      const vidx_t side = static_cast<vidx_t>(rng.next_in(4, 7));
      return graph::make_grid3d(side, side, side - 1, seed);
    }
  }
}

class ApspFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ApspFuzz, RandomConfigurationMatchesOracle) {
  Rng rng(0xF00D + static_cast<std::uint64_t>(GetParam()) * 7919);
  const auto g = random_graph(rng);

  ApspOptions opts;
  // Random device memory between 256 KiB and 4 MiB; occasionally K80.
  const std::size_t mem = (256u << 10)
                          << static_cast<unsigned>(rng.next_below(5));
  opts.device = rng.next_bool(0.3) ? sim::DeviceSpec::k80_scaled(mem)
                                   : sim::DeviceSpec::v100_scaled(mem);
  opts.fw_tile = rng.next_bool(0.5) ? 32 : 64;
  opts.delta = static_cast<dist_t>(rng.next_in(0, 120));
  opts.heavy_degree_threshold = static_cast<int>(rng.next_in(4, 64));
  opts.dynamic_parallelism = rng.next_bool(0.7);
  opts.batch_transfers = rng.next_bool(0.8);
  opts.overlap_transfers = rng.next_bool(0.8);
  opts.num_components = rng.next_bool(0.5)
                            ? 0
                            : static_cast<int>(rng.next_in(2, 12));
  opts.johnson_queue_factor = 1.0 + rng.next_double() * 2.0;

  const Algorithm algos[] = {Algorithm::kBlockedFloydWarshall,
                             Algorithm::kJohnson, Algorithm::kBoundary};
  opts.algorithm = algos[rng.next_below(3)];

  auto store = make_ram_store(g.num_vertices());
  ApspResult r;
  try {
    r = solve_apsp(g, opts, *store);
  } catch (const Error&) {
    // Legitimately infeasible configuration (device too small for this
    // graph/algorithm) — acceptable, but it must be *reported*, not wrong.
    return;
  }
  test::expect_store_rows_match(g, *store, r, /*samples=*/6, rng.next_u64());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApspFuzz, ::testing::Range(0, 40));

// ---------------------------------------------------------------------------
// Fault-schedule fuzzer: random FaultPlan (probabilistic faults, occasional
// device kill) × random graph × random recovery budget. The invariant is the
// DESIGN.md §8 contract: every run either completes with distances
// bit-identical to a fault-free twin — possibly after checkpointed resume
// attempts — or surfaces a typed sim::FaultError. Crashes, hangs and silently
// wrong matrices are the bugs this sweep exists to catch.
// ---------------------------------------------------------------------------

class FaultFuzz : public ::testing::TestWithParam<int> {};

TEST_P(FaultFuzz, RandomFaultScheduleRecoversOrFailsTyped) {
  Rng rng(0xFA17 + static_cast<std::uint64_t>(GetParam()) * 104729);
  const auto g = random_graph(rng);

  ApspOptions opts;
  const std::size_t mem = (256u << 10)
                          << static_cast<unsigned>(rng.next_below(4));
  opts.device = sim::DeviceSpec::v100_scaled(mem);
  opts.fw_tile = 32;
  opts.overlap_transfers = rng.next_bool(0.7);
  opts.num_components = rng.next_bool(0.5)
                            ? 0
                            : static_cast<int>(rng.next_in(2, 8));
  const Algorithm algos[] = {Algorithm::kBlockedFloydWarshall,
                             Algorithm::kJohnson, Algorithm::kBoundary};
  opts.algorithm = algos[rng.next_below(3)];

  auto clean_store = make_ram_store(g.num_vertices());
  ApspResult clean;
  try {
    clean = solve_apsp(g, opts, *clean_store);
  } catch (const Error&) {
    return;  // infeasible configuration — covered by ApspFuzz above
  }

  sim::FaultPlan plan;
  plan.seed = rng.next_u64();
  if (rng.next_bool(0.7)) plan.p_h2d = rng.next_double() * 0.03;
  if (rng.next_bool(0.7)) plan.p_d2h = rng.next_double() * 0.03;
  if (rng.next_bool(0.5)) plan.p_kernel = rng.next_double() * 0.02;
  if (rng.next_bool(0.2)) plan.p_alloc = rng.next_double() * 0.1;
  if (rng.next_bool(0.4)) {
    plan.kill_device = 0;
    plan.kill_at_op = static_cast<long long>(rng.next_in(1, 500));
  }

  auto injector = std::make_unique<sim::FaultInjector>(plan);
  ApspOptions faulty = opts;
  faulty.fault_injector = injector.get();
  faulty.retry.max_retries = static_cast<int>(rng.next_below(4));
  faulty.max_degradations = static_cast<int>(rng.next_below(3));
  faulty.checkpoint_path = ::testing::TempDir() + "gapsp_fault_fuzz_" +
                           std::to_string(GetParam()) + ".ck";

  auto store = make_ram_store(g.num_vertices());
  bool completed = false;
  ApspResult r;
  for (int attempt = 0; attempt < 6 && !completed; ++attempt) {
    try {
      r = solve_apsp(g, faulty, *store);
      completed = true;
    } catch (const sim::FaultError& e) {
      // Typed failure — resume from the checkpoint. A killed device stays
      // dead, so model its replacement with a fresh injector whose kill
      // rule already fired.
      if (e.op() == sim::FaultOp::kDeviceLost) {
        sim::FaultPlan replacement = plan;
        replacement.kill_device = -1;
        injector = std::make_unique<sim::FaultInjector>(replacement);
        faulty.fault_injector = injector.get();
      }
      faulty.resume = true;
    }
    // Any exception that is not a gapsp::Error escapes and fails the test.
  }
  if (completed) {
    ASSERT_EQ(r.perm, clean.perm);
    const vidx_t n = g.num_vertices();
    std::vector<dist_t> a(static_cast<std::size_t>(n));
    std::vector<dist_t> b(static_cast<std::size_t>(n));
    for (vidx_t row = 0; row < n; ++row) {
      clean_store->read_block(row, 0, 1, n, a.data(), a.size());
      store->read_block(row, 0, 1, n, b.data(), b.size());
      ASSERT_EQ(a, b) << "row " << row;
    }
  }
  std::remove(faulty.checkpoint_path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultFuzz, ::testing::Range(0, 24));

// ---------------------------------------------------------------------------
// z1 codec fuzzer (compressed_store.h). Two invariants: (a) any input —
// random noise, adversarially repetitive, all-kInf, or mixed — round-trips
// bit-exactly; (b) any damaged frame (truncation, byte flips, bit flips)
// either round-trips to checksum-valid output or throws IoError. It must
// never read or write out of bounds — the CI chaos job runs this suite
// under ASan/UBSan, which turns an over-read into a hard failure.
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> random_z1_input(Rng& rng) {
  const int shape = static_cast<int>(rng.next_below(7));
  std::vector<std::uint8_t> buf(
      static_cast<std::size_t>(rng.next_in(0, 20000)));
  switch (shape) {
    case 5: {  // degenerate tiles: empty, 1 byte, below-minimum-match sizes
      buf.resize(static_cast<std::size_t>(rng.next_in(0, 4)));
      for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_u64());
      return buf;
    }
    case 6: {  // repeats separated by ~the u16 match-offset limit (65535)
      const std::size_t gap =
          static_cast<std::size_t>(rng.next_in(65535 - 80, 65535 + 80));
      buf.assign(gap + 128, 0);
      for (std::size_t i = 0; i < 64; ++i) {
        const auto m = static_cast<std::uint8_t>(rng.next_u64());
        buf[i] = m;
        buf[gap + 64 + i] = m;
      }
      return buf;
    }
    default:
      break;
  }
  switch (shape) {
    case 0:  // incompressible noise
      for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_u64());
      break;
    case 1: {  // all-kInf distance data, the dominant store pattern
      const dist_t inf = kInf;
      for (std::size_t i = 0; i < buf.size(); ++i) {
        buf[i] = reinterpret_cast<const std::uint8_t*>(&inf)[i % sizeof(inf)];
      }
      break;
    }
    case 2: {  // short period just off the 4-byte fast path
      const std::size_t period = static_cast<std::size_t>(rng.next_in(1, 9));
      for (std::size_t i = 0; i < buf.size(); ++i) {
        buf[i] = static_cast<std::uint8_t>(i % period);
      }
      break;
    }
    case 3: {  // adversarial: long runs broken by noise at random points
      std::uint8_t fill = 0xff;
      for (auto& b : buf) {
        if (rng.next_bool(0.01)) fill = static_cast<std::uint8_t>(rng.next_u64());
        b = rng.next_bool(0.02) ? static_cast<std::uint8_t>(rng.next_u64())
                                : fill;
      }
      break;
    }
    default: {  // plausible distance matrix rows: small values + kInf gaps
      std::vector<dist_t> d(buf.size() / sizeof(dist_t) + 1);
      for (auto& v : d) {
        v = rng.next_bool(0.6) ? kInf
                               : static_cast<dist_t>(rng.next_below(1000));
      }
      std::memcpy(buf.data(), d.data(), buf.size());
      break;
    }
  }
  return buf;
}

class Z1Fuzz : public ::testing::TestWithParam<int> {};

TEST_P(Z1Fuzz, RoundTripsExactlyAndRejectsDamageTyped) {
  Rng rng(0x21F0 + static_cast<std::uint64_t>(GetParam()) * 6151);
  const auto raw = random_z1_input(rng);
  const auto frame = z1_compress(raw.data(), raw.size());

  ASSERT_EQ(z1_raw_size(frame.data(), frame.size()), raw.size());
  std::vector<std::uint8_t> back(raw.size());
  z1_decompress(frame.data(), frame.size(), back.data(), back.size());
  ASSERT_EQ(back, raw);

  // Random truncations: always a typed error.
  for (int i = 0; i < 16; ++i) {
    const auto cut = static_cast<std::size_t>(rng.next_below(frame.size()));
    EXPECT_THROW(
        z1_decompress(frame.data(), cut, back.data(), back.size()), IoError)
        << "cut " << cut;
  }

  // Random damage: flips in header, token stream, and literals. Decoding
  // either throws IoError or — if the flip cancels out semantically —
  // reproduces the exact input (the content checksum gates everything
  // else). `raw_len` flips also hit the destination-size check.
  for (int i = 0; i < 32; ++i) {
    auto bad = frame;
    const int edits = static_cast<int>(rng.next_in(1, 4));
    for (int e = 0; e < edits; ++e) {
      const auto at = static_cast<std::size_t>(rng.next_below(bad.size()));
      bad[at] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    }
    try {
      std::vector<std::uint8_t> out(raw.size());
      z1_decompress(bad.data(), bad.size(), out.data(), out.size());
      EXPECT_EQ(out, raw) << "damaged frame decoded to different content";
    } catch (const IoError&) {
      // typed rejection is the expected outcome
    }
  }
}

// 36 seeds so the degenerate shapes (5: empty/1-byte, 6: u16-offset
// boundary) each land several times per run.
INSTANTIATE_TEST_SUITE_P(Seeds, Z1Fuzz, ::testing::Range(0, 36));

// ---------------------------------------------------------------------------
// Vector microkernel fuzzer (kernel_engine.h kSimd/kTensor): random tile
// shapes × random kInf density × random leading dimensions and base-pointer
// offsets, checked elementwise against the scalar naive oracle. The shapes
// deliberately straddle the 8×16 register tile, the lane width and the
// 64-deep k tile so lane tails, strip-liveness edges and the branch-free
// saturation path all get hit; the random offsets make the unaligned
// load/store paths real (an aligned-only assumption would fault or corrupt
// here). Comparing the *whole* padded buffer also proves the kernels never
// write outside the logical nr×nc window.
// ---------------------------------------------------------------------------

class SimdFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SimdFuzz, VectorKernelsMatchScalarOracleAtAnyAlignment) {
  Rng rng(0x51D0 + static_cast<std::uint64_t>(GetParam()) * 9176);
  auto fill = [&rng](std::vector<dist_t>& buf, double p_inf) {
    for (auto& x : buf) {
      x = rng.next_bool(p_inf) ? kInf
                               : static_cast<dist_t>(rng.next_in(0, 1000));
    }
  };
  for (int trial = 0; trial < 8; ++trial) {
    const vidx_t nr = static_cast<vidx_t>(rng.next_in(1, 90));
    const vidx_t nk = static_cast<vidx_t>(rng.next_in(1, 150));
    const vidx_t nc = static_cast<vidx_t>(rng.next_in(1, 90));
    const double p_inf = rng.next_double();
    // Random pad past each logical row and a random base offset: every
    // combination of leading dimension and pointer alignment mod the vector
    // width shows up across the sweep.
    const std::size_t lda = nk + rng.next_below(18);
    const std::size_t ldb = nc + rng.next_below(18);
    const std::size_t ldc = nc + rng.next_below(18);
    const std::size_t offa = rng.next_below(8);
    const std::size_t offb = rng.next_below(8);
    const std::size_t offc = rng.next_below(8);
    std::vector<dist_t> abuf(offa + static_cast<std::size_t>(nr) * lda);
    std::vector<dist_t> bbuf(offb + static_cast<std::size_t>(nk) * ldb);
    std::vector<dist_t> cbuf(offc + static_cast<std::size_t>(nr) * ldc);
    fill(abuf, p_inf);
    fill(bbuf, p_inf);
    fill(cbuf, p_inf / 2);

    auto want = cbuf;
    minplus_accum_naive(want.data() + offc, ldc, abuf.data() + offa, lda,
                        bbuf.data() + offb, ldb, nr, nk, nc);
    for (const KernelVariant v :
         {KernelVariant::kSimd, KernelVariant::kTensor}) {
      auto got = cbuf;
      minplus_accum_variant(v, got.data() + offc, ldc, abuf.data() + offa,
                            lda, bbuf.data() + offb, ldb, nr, nk, nc);
      ASSERT_EQ(got, want) << kernel_variant_name(v) << " diverges at " << nr
                           << "x" << nk << "x" << nc << " ld=(" << lda << ","
                           << ldb << "," << ldc << ") off=(" << offa << ","
                           << offb << "," << offc << ") p_inf=" << p_inf;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimdFuzz, ::testing::Range(0, 24));

// ---------------------------------------------------------------------------
// Raw kept-store damage fuzzer (DESIGN.md §13): random truncations of the
// kept file are rejected typed at open (the size is no longer n²·4), and
// random bit flips under a GAPSPSM1 sidecar make the serving tier answer
// every query either exactly right or with a typed per-query status — no
// crash, no silently wrong distance.
// ---------------------------------------------------------------------------

class RawStoreFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RawStoreFuzz, DamageIsTypedOrExact) {
  Rng rng(0x4A57 + static_cast<std::uint64_t>(GetParam()) * 7877);
  const auto g = random_graph(rng);
  const vidx_t n = g.num_vertices();
  const std::string path = ::testing::TempDir() + "gapsp_rawfuzz_" +
                           std::to_string(GetParam()) + ".bin";

  ApspOptions o;
  o.device = sim::DeviceSpec::v100_scaled(2u << 20);
  o.algorithm = Algorithm::kJohnson;  // identity layout
  {
    auto store = make_file_store(n, path, /*keep_file=*/true);
    solve_apsp(g, o, *store);
  }
  const vidx_t tile = static_cast<vidx_t>(rng.next_in(16, 96));
  StoreChecksums sums;
  std::vector<std::uint8_t> pristine;
  {
    auto ro = open_file_store(path);
    sums = compute_store_checksums(*ro, tile);
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    pristine.resize(static_cast<std::size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    ASSERT_EQ(std::fread(pristine.data(), 1, pristine.size(), f),
              pristine.size());
    std::fclose(f);
  }
  const auto rewrite = [&](const std::vector<std::uint8_t>& bytes) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  };

  // Truncations: unless the cut happens to stay a perfect square matrix
  // size, open is a typed rejection, not a crash or a short-read garbage
  // serve.
  for (int i = 0; i < 4; ++i) {
    auto bytes = pristine;
    bytes.resize(static_cast<std::size_t>(rng.next_below(bytes.size())));
    rewrite(bytes);
    try {
      const auto store = open_file_store(path);
      EXPECT_LT(store->n(), n);  // a smaller square matrix: legal but small
    } catch (const IoError&) {
      // typed rejection is the expected outcome
    }
  }

  // Bit flips under the sidecar: every point query comes back exact or
  // typed.
  for (int round = 0; round < 4; ++round) {
    auto bytes = pristine;
    const int flips = static_cast<int>(rng.next_in(1, 5));
    for (int e = 0; e < flips; ++e) {
      const auto at = static_cast<std::size_t>(rng.next_below(bytes.size()));
      bytes[at] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    }
    rewrite(bytes);

    const auto store = open_file_store(path);
    service::QueryEngineOptions qopt;
    qopt.retry.max_retries = 1;
    qopt.retry.backoff_s = 1e-6;
    qopt.checksums = sums;
    const service::QueryEngine engine(*store, qopt);
    std::vector<service::Query> queries;
    for (int i = 0; i < 32; ++i) {
      queries.push_back({service::QueryKind::kPoint,
                         static_cast<vidx_t>(rng.next_below(n)),
                         static_cast<vidx_t>(rng.next_below(n))});
    }
    const auto report = engine.run_batch(queries);
    for (const auto& r : report.results) {
      if (r.status == service::QueryStatus::kOk) {
        const auto ref = test::ref_row(g, r.query.u);
        ASSERT_EQ(r.dist, ref[r.query.v])
            << "round " << round << ": damaged store served a wrong distance"
            << " for (" << r.query.u << ", " << r.query.v << ")";
      } else {
        EXPECT_EQ(r.status, service::QueryStatus::kQuarantined);
        EXPECT_FALSE(r.error.empty());
      }
    }
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RawStoreFuzz, ::testing::Range(0, 12));

}  // namespace
}  // namespace gapsp::core
