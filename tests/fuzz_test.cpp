// Randomized cross-checking ("fuzz") sweep: random graph family × random
// size × random device memory × every algorithm, validated on sampled rows
// against the Dijkstra oracle. Complements the deterministic property
// tests with breadth across the configuration space.
#include <gtest/gtest.h>

#include "core/apsp.h"
#include "graph/generators.h"
#include "test_util.h"

namespace gapsp::core {
namespace {

graph::CsrGraph random_graph(Rng& rng) {
  const int family = static_cast<int>(rng.next_below(7));
  const auto seed = rng.next_u64();
  switch (family) {
    case 0: {
      const vidx_t side = static_cast<vidx_t>(rng.next_in(8, 16));
      return graph::make_road(side, side + 1, seed);
    }
    case 1:
      return graph::make_mesh(static_cast<vidx_t>(rng.next_in(120, 280)),
                              static_cast<int>(rng.next_in(6, 16)), seed);
    case 2:
      return graph::make_rmat(static_cast<int>(rng.next_in(6, 8)),
                              rng.next_in(300, 1200), seed);
    case 3:
      return graph::make_erdos_renyi(
          static_cast<vidx_t>(rng.next_in(100, 260)), rng.next_in(150, 900),
          seed, /*connect=*/rng.next_bool(0.5));
    case 4:
      return graph::make_small_world(
          static_cast<vidx_t>(rng.next_in(100, 260)),
          static_cast<int>(rng.next_in(1, 4)), rng.next_double() * 0.5, seed);
    case 5:
      return graph::make_preferential(
          static_cast<vidx_t>(rng.next_in(100, 260)),
          static_cast<int>(rng.next_in(1, 4)), seed);
    default: {
      const vidx_t side = static_cast<vidx_t>(rng.next_in(4, 7));
      return graph::make_grid3d(side, side, side - 1, seed);
    }
  }
}

class ApspFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ApspFuzz, RandomConfigurationMatchesOracle) {
  Rng rng(0xF00D + static_cast<std::uint64_t>(GetParam()) * 7919);
  const auto g = random_graph(rng);

  ApspOptions opts;
  // Random device memory between 256 KiB and 4 MiB; occasionally K80.
  const std::size_t mem = (256u << 10)
                          << static_cast<unsigned>(rng.next_below(5));
  opts.device = rng.next_bool(0.3) ? sim::DeviceSpec::k80_scaled(mem)
                                   : sim::DeviceSpec::v100_scaled(mem);
  opts.fw_tile = rng.next_bool(0.5) ? 32 : 64;
  opts.delta = static_cast<dist_t>(rng.next_in(0, 120));
  opts.heavy_degree_threshold = static_cast<int>(rng.next_in(4, 64));
  opts.dynamic_parallelism = rng.next_bool(0.7);
  opts.batch_transfers = rng.next_bool(0.8);
  opts.overlap_transfers = rng.next_bool(0.8);
  opts.num_components = rng.next_bool(0.5)
                            ? 0
                            : static_cast<int>(rng.next_in(2, 12));
  opts.johnson_queue_factor = 1.0 + rng.next_double() * 2.0;

  const Algorithm algos[] = {Algorithm::kBlockedFloydWarshall,
                             Algorithm::kJohnson, Algorithm::kBoundary};
  opts.algorithm = algos[rng.next_below(3)];

  auto store = make_ram_store(g.num_vertices());
  ApspResult r;
  try {
    r = solve_apsp(g, opts, *store);
  } catch (const Error&) {
    // Legitimately infeasible configuration (device too small for this
    // graph/algorithm) — acceptable, but it must be *reported*, not wrong.
    return;
  }
  test::expect_store_rows_match(g, *store, r, /*samples=*/6, rng.next_u64());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApspFuzz, ::testing::Range(0, 40));

}  // namespace
}  // namespace gapsp::core
