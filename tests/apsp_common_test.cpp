#include <gtest/gtest.h>

#include <vector>

#include "core/apsp_common.h"
#include "graph/generators.h"
#include "test_util.h"

namespace gapsp::core {
namespace {

graph::CsrGraph triangle() {
  return graph::CsrGraph::from_edges(
      3, {{0, 1, 5}, {1, 2, 7}, {0, 2, 9}}, /*symmetrize=*/false);
}

TEST(WeightBlock, FullMatrix) {
  std::vector<dist_t> m(9, -1);
  weight_block(triangle(), 0, 0, 3, 3, m.data(), 3);
  const std::vector<dist_t> expect{0, 5, 9, kInf, 0, 7, kInf, kInf, 0};
  EXPECT_EQ(m, expect);
}

TEST(WeightBlock, OffDiagonalSubBlock) {
  std::vector<dist_t> m(4, -1);
  weight_block(triangle(), 0, 1, 2, 2, m.data(), 2);
  // rows {0,1} x cols {1,2}: [5 9; 0 7]
  EXPECT_EQ(m, (std::vector<dist_t>{5, 9, 0, 7}));
}

TEST(WeightBlock, StrideRespected) {
  std::vector<dist_t> m(8, -1);
  weight_block(triangle(), 1, 1, 2, 2, m.data(), 4);  // ld = 4
  EXPECT_EQ(m[0], 0);
  EXPECT_EQ(m[1], 7);
  EXPECT_EQ(m[2], -1);  // padding untouched
  EXPECT_EQ(m[4], kInf);
  EXPECT_EQ(m[5], 0);
}

TEST(WeightBlock, ParallelEdgesKeepMinimum) {
  // from_edges already dedupes; verify the block sees the min.
  auto g = graph::CsrGraph::from_edges(2, {{0, 1, 9}, {0, 1, 2}}, false);
  std::vector<dist_t> m(4);
  weight_block(g, 0, 0, 2, 2, m.data(), 2);
  EXPECT_EQ(m[1], 2);
}

TEST(InitWeightMatrix, MatchesWeightBlocks) {
  const auto g = graph::make_erdos_renyi(40, 160, 601);
  auto store = make_ram_store(g.num_vertices());
  init_weight_matrix(g, *store);
  std::vector<dist_t> row(40), expect(40);
  for (vidx_t u = 0; u < 40; ++u) {
    store->read_block(u, 0, 1, 40, row.data(), 40);
    weight_block(g, u, 0, 1, 40, expect.data(), 40);
    ASSERT_EQ(row, expect) << "row " << u;
  }
}

TEST(InitWeightMatrix, RejectsMismatchedStore) {
  const auto g = graph::make_erdos_renyi(40, 100, 602);
  auto store = make_ram_store(39);
  EXPECT_THROW(init_weight_matrix(g, *store), Error);
}

TEST(UploadGraph, ChargesCsrBytes) {
  const auto g = graph::make_erdos_renyi(100, 400, 603);
  sim::Device dev(test::tiny_device(1u << 20));
  const DeviceGraph dg = upload_graph(dev, sim::kDefaultStream, g);
  EXPECT_EQ(dg.bytes(), g.bytes());
  EXPECT_EQ(dev.metrics().bytes_h2d, g.bytes());
  EXPECT_EQ(dev.metrics().transfers_h2d, 3);  // offsets, targets, weights
  // Contents really arrived.
  EXPECT_TRUE(std::equal(g.offsets().begin(), g.offsets().end(),
                         dg.offsets.data()));
  EXPECT_TRUE(std::equal(g.targets().begin(), g.targets().end(),
                         dg.targets.data()));
}

TEST(UploadGraph, EmptyEdgeSet) {
  auto g = graph::CsrGraph::from_edges(5, {}, false);
  sim::Device dev(test::tiny_device(1u << 20));
  const DeviceGraph dg = upload_graph(dev, sim::kDefaultStream, g);
  EXPECT_EQ(dg.targets.size(), 0u);
  EXPECT_EQ(dev.metrics().transfers_h2d, 1);  // only the offsets move
}

TEST(MetricsFromDevice, CopiesCounters) {
  sim::Device dev(test::tiny_device(1u << 20));
  auto buf = dev.alloc<dist_t>(64);
  std::vector<dist_t> host(64);
  dev.memcpy_h2d(sim::kDefaultStream, buf.data(), host.data(), 256);
  dev.launch(sim::kDefaultStream, "k", [&](sim::LaunchCtx&) {
    sim::KernelProfile p;
    p.ops = 1000;
    return p;
  });
  dev.synchronize();
  const ApspMetrics m = metrics_from_device(dev, 1.5);
  EXPECT_EQ(m.wall_seconds, 1.5);
  EXPECT_EQ(m.bytes_h2d, 256u);
  EXPECT_EQ(m.kernels, 1);
  EXPECT_GT(m.sim_seconds, 0.0);
  EXPECT_EQ(m.total_ops, 1000.0);
}

}  // namespace
}  // namespace gapsp::core
