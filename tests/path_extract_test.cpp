#include <gtest/gtest.h>

#include <vector>

#include "core/path_extract.h"
#include "graph/generators.h"
#include "test_util.h"

namespace gapsp::core {
namespace {

ApspOptions opts() {
  ApspOptions o;
  o.device = test::tiny_device(2u << 20);
  o.fw_tile = 32;
  return o;
}

struct Solved {
  graph::CsrGraph g;
  std::unique_ptr<DistStore> store;
  ApspResult result;
};

Solved solve(graph::CsrGraph g, Algorithm algo) {
  Solved s;
  s.g = std::move(g);
  s.store = make_ram_store(s.g.num_vertices());
  auto o = opts();
  o.algorithm = algo;
  s.result = solve_apsp(s.g, o, *s.store);
  return s;
}

TEST(PathExtract, LineGraphPath) {
  auto s = solve(graph::CsrGraph::from_edges(
                     4, {{0, 1, 5}, {1, 2, 3}, {2, 3, 1}}, true),
                 Algorithm::kJohnson);
  const PathExtractor px(s.g, *s.store, s.result);
  EXPECT_EQ(px.path(0, 3), (std::vector<vidx_t>{0, 1, 2, 3}));
  EXPECT_EQ(px.path(3, 0), (std::vector<vidx_t>{3, 2, 1, 0}));
  EXPECT_EQ(px.distance(0, 3), 9);
}

TEST(PathExtract, TrivialAndUnreachable) {
  auto s = solve(graph::CsrGraph::from_edges(3, {{0, 1, 2}}, true),
                 Algorithm::kJohnson);
  const PathExtractor px(s.g, *s.store, s.result);
  EXPECT_EQ(px.path(1, 1), (std::vector<vidx_t>{1}));
  EXPECT_TRUE(px.path(0, 2).empty());
  EXPECT_EQ(px.distance(0, 2), kInf);
}

TEST(PathExtract, ShortcutBeatsMoreHops) {
  // 0-1-2 costs 2+2=4; direct 0-2 costs 7 -> path must take the hops.
  auto s = solve(graph::CsrGraph::from_edges(
                     3, {{0, 1, 2}, {1, 2, 2}, {0, 2, 7}}, true),
                 Algorithm::kBlockedFloydWarshall);
  const PathExtractor px(s.g, *s.store, s.result);
  EXPECT_EQ(px.path(0, 2), (std::vector<vidx_t>{0, 1, 2}));
}

TEST(PathExtract, ZeroWeightEdgesTerminate) {
  auto s = solve(graph::CsrGraph::from_edges(
                     4, {{0, 1, 0}, {1, 2, 0}, {2, 3, 0}, {0, 3, 0}}, true),
                 Algorithm::kJohnson);
  const PathExtractor px(s.g, *s.store, s.result);
  const auto p = px.path(0, 3);
  ASSERT_FALSE(p.empty());
  EXPECT_EQ(p.front(), 0);
  EXPECT_EQ(p.back(), 3);
  EXPECT_EQ(px.walk_length(p), 0);
}

TEST(PathExtract, WalkLengthValidatesEdges) {
  auto s = solve(graph::CsrGraph::from_edges(3, {{0, 1, 4}, {1, 2, 6}}, true),
                 Algorithm::kJohnson);
  const PathExtractor px(s.g, *s.store, s.result);
  EXPECT_EQ(px.walk_length({0, 1, 2}), 10);
  EXPECT_EQ(px.walk_length({0, 2}), kInf);  // not an edge
  EXPECT_EQ(px.walk_length({}), kInf);
  EXPECT_EQ(px.walk_length({1}), 0);
}

TEST(PathExtract, RejectsOutOfRange) {
  auto s = solve(graph::CsrGraph::from_edges(2, {{0, 1, 1}}, true),
                 Algorithm::kJohnson);
  const PathExtractor px(s.g, *s.store, s.result);
  EXPECT_THROW(px.path(0, 5), Error);
  EXPECT_THROW(px.path(-1, 0), Error);
}

class PathExtractSweep : public ::testing::TestWithParam<int> {};

TEST_P(PathExtractSweep, EveryPathIsAValidShortestWalk) {
  const Algorithm algos[] = {Algorithm::kBlockedFloydWarshall,
                             Algorithm::kJohnson, Algorithm::kBoundary};
  const Algorithm algo = algos[GetParam()];
  auto s = solve(graph::make_road(14, 15, 321), algo);
  const PathExtractor px(s.g, *s.store, s.result);
  Rng rng(11);
  const vidx_t n = s.g.num_vertices();
  for (int trial = 0; trial < 60; ++trial) {
    const vidx_t u = static_cast<vidx_t>(rng.next_below(n));
    const vidx_t v = static_cast<vidx_t>(rng.next_below(n));
    const dist_t d = px.distance(u, v);
    const auto p = px.path(u, v);
    if (d >= kInf) {
      EXPECT_TRUE(p.empty());
      continue;
    }
    ASSERT_FALSE(p.empty());
    EXPECT_EQ(p.front(), u);
    EXPECT_EQ(p.back(), v);
    // The walk exists in the graph and its length equals the distance —
    // which also proves the distance matrix is achievable, not just a bound.
    EXPECT_EQ(px.walk_length(p), d);
    // No vertex repeats (positive expected weights here).
    std::vector<std::uint8_t> seen(static_cast<std::size_t>(n), 0);
    for (vidx_t w : p) {
      EXPECT_FALSE(seen[w]);
      seen[w] = 1;
    }
  }
}

std::string sweep_name(const ::testing::TestParamInfo<int>& info) {
  static const char* names[] = {"fw", "johnson", "boundary"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(Algorithms, PathExtractSweep, ::testing::Range(0, 3),
                         sweep_name);

}  // namespace
}  // namespace gapsp::core
