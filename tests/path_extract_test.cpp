#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/compressed_store.h"
#include "core/path_extract.h"
#include "graph/generators.h"
#include "test_util.h"
#include "util/rng.h"

namespace gapsp::core {
namespace {

ApspOptions opts() {
  ApspOptions o;
  o.device = test::tiny_device(2u << 20);
  o.fw_tile = 32;
  return o;
}

struct Solved {
  graph::CsrGraph g;
  std::unique_ptr<DistStore> store;
  ApspResult result;
};

Solved solve(graph::CsrGraph g, Algorithm algo) {
  Solved s;
  s.g = std::move(g);
  s.store = make_ram_store(s.g.num_vertices());
  auto o = opts();
  o.algorithm = algo;
  s.result = solve_apsp(s.g, o, *s.store);
  return s;
}

TEST(PathExtract, LineGraphPath) {
  auto s = solve(graph::CsrGraph::from_edges(
                     4, {{0, 1, 5}, {1, 2, 3}, {2, 3, 1}}, true),
                 Algorithm::kJohnson);
  const PathExtractor px(s.g, *s.store, s.result);
  EXPECT_EQ(px.path(0, 3), (std::vector<vidx_t>{0, 1, 2, 3}));
  EXPECT_EQ(px.path(3, 0), (std::vector<vidx_t>{3, 2, 1, 0}));
  EXPECT_EQ(px.distance(0, 3), 9);
}

TEST(PathExtract, TrivialAndUnreachable) {
  auto s = solve(graph::CsrGraph::from_edges(3, {{0, 1, 2}}, true),
                 Algorithm::kJohnson);
  const PathExtractor px(s.g, *s.store, s.result);
  EXPECT_EQ(px.path(1, 1), (std::vector<vidx_t>{1}));
  EXPECT_TRUE(px.path(0, 2).empty());
  EXPECT_EQ(px.distance(0, 2), kInf);
}

TEST(PathExtract, ShortcutBeatsMoreHops) {
  // 0-1-2 costs 2+2=4; direct 0-2 costs 7 -> path must take the hops.
  auto s = solve(graph::CsrGraph::from_edges(
                     3, {{0, 1, 2}, {1, 2, 2}, {0, 2, 7}}, true),
                 Algorithm::kBlockedFloydWarshall);
  const PathExtractor px(s.g, *s.store, s.result);
  EXPECT_EQ(px.path(0, 2), (std::vector<vidx_t>{0, 1, 2}));
}

TEST(PathExtract, ZeroWeightEdgesTerminate) {
  auto s = solve(graph::CsrGraph::from_edges(
                     4, {{0, 1, 0}, {1, 2, 0}, {2, 3, 0}, {0, 3, 0}}, true),
                 Algorithm::kJohnson);
  const PathExtractor px(s.g, *s.store, s.result);
  const auto p = px.path(0, 3);
  ASSERT_FALSE(p.empty());
  EXPECT_EQ(p.front(), 0);
  EXPECT_EQ(p.back(), 3);
  EXPECT_EQ(px.walk_length(p), 0);
}

TEST(PathExtract, WalkLengthValidatesEdges) {
  auto s = solve(graph::CsrGraph::from_edges(3, {{0, 1, 4}, {1, 2, 6}}, true),
                 Algorithm::kJohnson);
  const PathExtractor px(s.g, *s.store, s.result);
  EXPECT_EQ(px.walk_length({0, 1, 2}), 10);
  EXPECT_EQ(px.walk_length({0, 2}), kInf);  // not an edge
  EXPECT_EQ(px.walk_length({}), kInf);
  EXPECT_EQ(px.walk_length({1}), 0);
}

TEST(PathExtract, RejectsOutOfRange) {
  auto s = solve(graph::CsrGraph::from_edges(2, {{0, 1, 1}}, true),
                 Algorithm::kJohnson);
  const PathExtractor px(s.g, *s.store, s.result);
  EXPECT_THROW(px.path(0, 5), Error);
  EXPECT_THROW(px.path(-1, 0), Error);
}

class PathExtractSweep : public ::testing::TestWithParam<int> {};

TEST_P(PathExtractSweep, EveryPathIsAValidShortestWalk) {
  const Algorithm algos[] = {Algorithm::kBlockedFloydWarshall,
                             Algorithm::kJohnson, Algorithm::kBoundary};
  const Algorithm algo = algos[GetParam()];
  auto s = solve(graph::make_road(14, 15, 321), algo);
  const PathExtractor px(s.g, *s.store, s.result);
  Rng rng(11);
  const vidx_t n = s.g.num_vertices();
  for (int trial = 0; trial < 60; ++trial) {
    const vidx_t u = static_cast<vidx_t>(rng.next_below(n));
    const vidx_t v = static_cast<vidx_t>(rng.next_below(n));
    const dist_t d = px.distance(u, v);
    const auto p = px.path(u, v);
    if (d >= kInf) {
      EXPECT_TRUE(p.empty());
      continue;
    }
    ASSERT_FALSE(p.empty());
    EXPECT_EQ(p.front(), u);
    EXPECT_EQ(p.back(), v);
    // The walk exists in the graph and its length equals the distance —
    // which also proves the distance matrix is achievable, not just a bound.
    EXPECT_EQ(px.walk_length(p), d);
    // No vertex repeats (positive expected weights here).
    std::vector<std::uint8_t> seen(static_cast<std::size_t>(n), 0);
    for (vidx_t w : p) {
      EXPECT_FALSE(seen[w]);
      seen[w] = 1;
    }
  }
}

std::string sweep_name(const ::testing::TestParamInfo<int>& info) {
  static const char* names[] = {"fw", "johnson", "boundary"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(Algorithms, PathExtractSweep, ::testing::Range(0, 3),
                         sweep_name);

// ---------------------------------------------------------------------------
// Regression against the store oracle: distance() now reads through a
// BlockCache tile front instead of one DistStore::at() per element, and the
// answers must not move — for permuted (boundary) results, under a cache too
// small to hold the working set, and over a GAPSPZ1 compressed store.
// ---------------------------------------------------------------------------

TEST(PathExtract, CachedDistancesMatchElementwiseOracle) {
  // Boundary permutes the store, so this also proves the tile arithmetic
  // composes with ApspResult::perm exactly like the old at() path did.
  auto s = solve(graph::make_road(12, 12, 99), Algorithm::kBoundary);
  const vidx_t n = s.g.num_vertices();
  // A one-tile cache budget forces constant eviction; answers must hold.
  const PathExtractor px(s.g, *s.store, s.result,
                         /*cache_bytes=*/256 * 256 * sizeof(dist_t));
  for (vidx_t u = 0; u < n; u += 7) {
    for (vidx_t v = 0; v < n; v += 5) {
      const vidx_t su = s.result.perm.empty() ? u : s.result.perm[u];
      const vidx_t sv = s.result.perm.empty() ? v : s.result.perm[v];
      ASSERT_EQ(px.distance(u, v), s.store->at(su, sv))
          << "(" << u << ", " << v << ")";
    }
  }
}

TEST(PathExtract, CompressedStoreServesIdenticalPaths) {
  auto s = solve(graph::make_road(11, 13, 41), Algorithm::kJohnson);
  const std::string zpath =
      ::testing::TempDir() + "gapsp_path_extract_z.bin";
  write_compressed_store(*s.store, zpath, /*tile=*/48);
  const auto z = open_store(zpath);
  ASSERT_EQ(z->tile_size(), 48);  // extractor snaps its grid to this
  const PathExtractor raw(s.g, *s.store, s.result);
  const PathExtractor zx(s.g, *z, s.result);
  Rng rng(4242);
  const vidx_t n = s.g.num_vertices();
  for (int trial = 0; trial < 80; ++trial) {
    const vidx_t u = static_cast<vidx_t>(rng.next_below(n));
    const vidx_t v = static_cast<vidx_t>(rng.next_below(n));
    ASSERT_EQ(zx.distance(u, v), raw.distance(u, v));
    ASSERT_EQ(zx.path(u, v), raw.path(u, v));
  }
  std::remove(zpath.c_str());
}

TEST(PathExtract, DisconnectedPairsServeFromSharedInfTile) {
  // Two components: cross-component tiles resolve to the shared all-kInf
  // tile, so even a zero-byte cache budget serves them (negative entries
  // charge nothing) and path() correctly returns empty.
  auto s = solve(graph::CsrGraph::from_edges(
                     6, {{0, 1, 2}, {1, 2, 2}, {3, 4, 1}, {4, 5, 1}}, true),
                 Algorithm::kJohnson);
  const PathExtractor px(s.g, *s.store, s.result, /*cache_bytes=*/0);
  EXPECT_EQ(px.distance(0, 5), kInf);
  EXPECT_EQ(px.distance(4, 2), kInf);
  EXPECT_TRUE(px.path(0, 5).empty());
  EXPECT_EQ(px.distance(0, 2), 4);
  EXPECT_EQ(px.path(3, 5), (std::vector<vidx_t>{3, 4, 5}));
}

}  // namespace
}  // namespace gapsp::core
