// Serving-tier fault tolerance (DESIGN.md §13): the GAPSPSM1 checksum
// sidecar, the CheckedTileReader's retry/verify ladder, BlockCache
// quarantine + racing-publish rescue, QueryEngine degraded serving /
// on-demand repair / overload shedding, and the offline scrubber.
//
// The headline invariant, checked by the corrupt-at-every-tile sweeps:
// whatever single tile rots on disk, every query either returns the correct
// distance or a typed per-query error — the process never dies, sibling
// queries never degrade, and untouched tiles stay bit-identical.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/apsp.h"
#include "core/compressed_store.h"
#include "core/scrub.h"
#include "core/store_integrity.h"
#include "core/tile_reader.h"
#include "graph/generators.h"
#include "service/query_engine.h"
#include "sim/fault.h"
#include "test_util.h"

namespace gapsp::service {
namespace {

using core::BlockData;
using core::StoreChecksums;
using core::TileError;
using core::TileFailure;

std::string temp_path(const std::string& tag) {
  return ::testing::TempDir() + "gapsp_fault_service_" + tag + ".bin";
}

BlockData make_block(std::size_t elems, dist_t fill) {
  return std::make_shared<const std::vector<dist_t>>(elems, fill);
}

util::RetryPolicy fast_retry(int max_retries = 3) {
  util::RetryPolicy p;
  p.max_retries = max_retries;
  p.backoff_s = 1e-6;  // keep retry ladders fast in tests
  return p;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::fseek(f, 0, SEEK_END);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(b.data(), 1, b.size(), f), b.size());
  std::fclose(f);
}

// ---------------------------------------------------------------------------
// BlockCache: racing-publish rescue (the pre-existing bug) and quarantine.
// ---------------------------------------------------------------------------

// Regression: a loader failure used to propagate even when a racing thread
// had already published a valid copy of the same key — the caller saw an
// error for data the cache could serve. Simulated deterministically: the
// loader itself publishes the key (as the racing winner would) and then
// fails.
TEST(BlockCacheFault, LoaderFailureRescuedByRacingPublish) {
  core::BlockCache cache(1u << 20, /*shards=*/1);
  const auto winner = make_block(16, 7);
  const auto got = cache.get_or_load(3, 4, [&]() -> BlockData {
    cache.get_or_load(3, 4, [&] { return winner; });  // racing thread wins
    throw IoError("loser's read failed after the winner published");
  });
  EXPECT_EQ(got, winner);
  EXPECT_FALSE(cache.is_quarantined(3, 4));
  // The served entry is a real hit for later readers.
  int loads = 0;
  EXPECT_EQ(cache.get_or_load(3, 4, [&] { ++loads; return winner; }), winner);
  EXPECT_EQ(loads, 0);
}

TEST(BlockCacheFault, PlainErrorPropagatesWithoutQuarantine) {
  core::BlockCache cache(1u << 20, 2);
  // A plain IoError is not evidence of persistent damage (the checked
  // reader throws TileError once it *is*): propagate but allow re-tries.
  EXPECT_THROW(cache.get_or_load(0, 0,
                                 []() -> BlockData {
                                   throw IoError("transient hiccup");
                                 }),
               IoError);
  EXPECT_FALSE(cache.is_quarantined(0, 0));
  const auto got = cache.get_or_load(0, 0, [] { return make_block(4, 1); });
  EXPECT_EQ(got->at(0), 1);
}

TEST(BlockCacheFault, TileErrorQuarantinesAndPublishHeals) {
  core::BlockCache cache(1u << 20, 2);
  EXPECT_THROW(cache.get_or_load(1, 2,
                                 []() -> BlockData {
                                   throw TileError(TileFailure::kCorrupt, 1, 2,
                                                   "checksum mismatch");
                                 }),
               TileError);
  EXPECT_TRUE(cache.is_quarantined(1, 2));

  // Later misses fail fast without re-reading the sick byte range.
  int loads = 0;
  try {
    cache.get_or_load(1, 2, [&] { ++loads; return make_block(4, 9); });
    FAIL() << "quarantined tile served";
  } catch (const TileError& e) {
    EXPECT_EQ(e.kind(), TileFailure::kQuarantined);
    EXPECT_EQ(e.row_block(), 1);
    EXPECT_EQ(e.col_block(), 2);
  }
  EXPECT_EQ(loads, 0);
  auto s = cache.stats();
  EXPECT_EQ(s.quarantined_tiles, 1);
  EXPECT_EQ(s.quarantine_hits, 1);

  // Repair path: publish() replaces the mark with served data.
  const auto fixed = make_block(4, 5);
  cache.publish(1, 2, fixed);
  EXPECT_FALSE(cache.is_quarantined(1, 2));
  EXPECT_EQ(cache.get_or_load(1, 2, [&] { ++loads; return fixed; }), fixed);
  EXPECT_EQ(loads, 0);
  EXPECT_EQ(cache.stats().quarantined_tiles, 0);
}

TEST(BlockCacheFault, ClearQuarantineDropsAllMarks) {
  core::BlockCache cache(1u << 20, 4);
  for (vidx_t k = 0; k < 3; ++k) {
    EXPECT_THROW(cache.get_or_load(k, k,
                                   [k]() -> BlockData {
                                     throw TileError(TileFailure::kTransient,
                                                     k, k, "dead disk");
                                   }),
                 TileError);
  }
  EXPECT_EQ(cache.stats().quarantined_tiles, 3);
  EXPECT_EQ(cache.clear_quarantine(), 3);
  EXPECT_EQ(cache.stats().quarantined_tiles, 0);
  EXPECT_NE(cache.get_or_load(0, 0, [] { return make_block(4, 2); }), nullptr);
}

// ---------------------------------------------------------------------------
// GAPSPSM1 checksum sidecar.
// ---------------------------------------------------------------------------

TEST(StoreIntegrity, SidecarRoundTripsAndDetectsTampering) {
  const auto store = core::make_ram_store(50);
  std::vector<dist_t> tile(50, 3);
  store->write_block(7, 0, 1, 50, tile.data(), 50);

  const auto sums = core::compute_store_checksums(*store, /*tile=*/16);
  EXPECT_EQ(sums.n, 50);
  EXPECT_EQ(sums.tiles_per_side, 4);
  EXPECT_EQ(sums.sums.size(), 16u);

  const std::string path = temp_path("sidecar");
  core::write_store_checksums(sums, path);
  StoreChecksums back;
  ASSERT_TRUE(core::load_store_checksums(path, back));
  EXPECT_EQ(back.n, sums.n);
  EXPECT_EQ(back.tile, sums.tile);
  EXPECT_EQ(back.sums, sums.sums);

  // Missing file: absent, not an error.
  StoreChecksums none;
  EXPECT_FALSE(core::load_store_checksums(path + ".nope", none));
  EXPECT_FALSE(none.present());

  // A flipped byte in the sums array fails the sidecar's own self-check.
  auto bytes = read_file(path);
  bytes[bytes.size() - 1] ^= 0x40;
  write_file(path, bytes);
  EXPECT_THROW(core::load_store_checksums(path, back), CorruptError);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// CheckedTileReader: retry ladder and checksum verification.
// ---------------------------------------------------------------------------

TEST(CheckedTileReader, RetriesTransientFaultsThenSucceeds) {
  const auto store = core::make_ram_store(32);
  sim::FaultPlan plan;
  // Fail the first two physical reads, transiently.
  plan.scripted.push_back({sim::FaultOp::kStoreRead, 1, -1, true});
  plan.scripted.push_back({sim::FaultOp::kStoreRead, 2, -1, true});
  sim::FaultInjector injector(plan);

  core::TileReaderOptions opt;
  opt.retry = fast_retry(3);
  opt.faults = &injector;
  core::CheckedTileReader reader(*store, StoreChecksums{}, opt);
  std::vector<dist_t> buf(16 * 16);
  reader.read_tile(0, 0, 0, 0, 16, 16, buf.data());
  EXPECT_EQ(buf[0], kInf);
  const auto s = reader.stats();
  EXPECT_EQ(s.reads, 1);
  EXPECT_EQ(s.retries, 2);
  EXPECT_EQ(s.transient_failures, 0);
}

TEST(CheckedTileReader, ExhaustedRetriesThrowTransientTileError) {
  const auto store = core::make_ram_store(32);
  sim::FaultPlan plan;
  plan.p_store_read = 1.0;  // every read faults
  sim::FaultInjector injector(plan);
  core::TileReaderOptions opt;
  opt.retry = fast_retry(2);
  opt.faults = &injector;
  core::CheckedTileReader reader(*store, StoreChecksums{}, opt);
  std::vector<dist_t> buf(32 * 32);
  try {
    reader.read_tile(0, 0, 0, 0, 32, 32, buf.data());
    FAIL() << "read succeeded under p=1.0 faults";
  } catch (const TileError& e) {
    EXPECT_EQ(e.kind(), TileFailure::kTransient);
  }
  const auto s = reader.stats();
  EXPECT_EQ(s.retries, 2);
  EXPECT_EQ(s.transient_failures, 1);
}

TEST(CheckedTileReader, ChecksumMismatchIsCorruptNotRetried) {
  const vidx_t n = 40;
  const std::string path = temp_path("reader_corrupt");
  {
    auto store = core::make_file_store(n, path, /*keep_file=*/true);
    std::vector<dist_t> row(static_cast<std::size_t>(n), 5);
    for (vidx_t r = 0; r < n; ++r) {
      store->write_block(r, 0, 1, n, row.data(), row.size());
    }
  }
  const auto ro = core::open_file_store(path);
  const auto sums = core::compute_store_checksums(*ro, /*tile=*/16);

  // Flip one element inside tile (1, 1): stored row 16, col 16.
  auto bytes = read_file(path);
  bytes[(16 * static_cast<std::size_t>(n) + 16) * sizeof(dist_t)] ^= 0x01;
  write_file(path, bytes);

  const auto damaged = core::open_file_store(path);
  core::TileReaderOptions opt;
  opt.retry = fast_retry(3);
  core::CheckedTileReader reader(*damaged, sums, opt);
  std::vector<dist_t> buf(16 * 16);
  reader.read_tile(0, 0, 0, 0, 16, 16, buf.data());  // clean tile is fine
  try {
    reader.read_tile(1, 1, 16, 16, 16, 16, buf.data());
    FAIL() << "corrupt tile served";
  } catch (const TileError& e) {
    EXPECT_EQ(e.kind(), TileFailure::kCorrupt);
  }
  const auto s = reader.stats();
  EXPECT_EQ(s.corrupt_tiles, 1);
  EXPECT_EQ(s.retries, 0);  // corruption is persistent: no retry ladder
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// End-to-end serving under damage. One solved store, every tile corrupted
// in turn; the engine must give a correct answer or a typed error for every
// query, keep siblings untouched, and never crash.
// ---------------------------------------------------------------------------

struct ServedStore {
  graph::CsrGraph g;
  std::string path;
  StoreChecksums sums;
  std::vector<std::uint8_t> pristine;  ///< raw file bytes before damage
  vidx_t n = 0;
  vidx_t tile = 0;
  vidx_t tps = 0;
};

/// Solves er:N (disconnected, kInf-rich) with the identity-permutation
/// Johnson algorithm into a kept raw file store, plus its sidecar grid.
ServedStore solve_raw(const std::string& tag, vidx_t tile) {
  ServedStore s;
  s.g = graph::make_erdos_renyi(150, 450, 99, /*connect=*/false);
  s.n = s.g.num_vertices();
  s.path = temp_path(tag);
  {
    core::ApspOptions o;
    o.device = sim::DeviceSpec::v100_scaled(2u << 20);
    o.algorithm = core::Algorithm::kJohnson;  // identity permutation
    auto store = core::make_file_store(s.n, s.path, /*keep_file=*/true);
    const auto r = core::solve_apsp(s.g, o, *store);
    EXPECT_TRUE(r.perm.empty());
  }
  const auto ro = core::open_file_store(s.path);
  s.sums = core::compute_store_checksums(*ro, tile);
  s.tile = tile;
  s.tps = s.sums.tiles_per_side;
  s.pristine = read_file(s.path);
  return s;
}

/// One point query per tile, at the tile's top-left corner.
std::vector<Query> tile_corner_queries(const ServedStore& s) {
  std::vector<Query> qs;
  for (vidx_t bi = 0; bi < s.tps; ++bi) {
    for (vidx_t bj = 0; bj < s.tps; ++bj) {
      qs.push_back({QueryKind::kPoint, bi * s.tile, bj * s.tile});
    }
  }
  return qs;
}

TEST(FaultServing, CorruptAtEveryTileSweepRaw) {
  auto s = solve_raw("sweep_raw", /*tile=*/64);
  ASSERT_GE(s.tps, 3);
  const auto queries = tile_corner_queries(s);

  // Reference answers from the pristine bytes.
  std::vector<dist_t> want(queries.size());
  {
    const auto ro = core::open_file_store(s.path);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      want[i] = ro->at(queries[i].u, queries[i].v);
    }
  }

  for (vidx_t bi = 0; bi < s.tps; ++bi) {
    for (vidx_t bj = 0; bj < s.tps; ++bj) {
      auto bytes = s.pristine;
      const std::size_t victim =
          (static_cast<std::size_t>(bi) * s.tile * s.n + bj * s.tile) *
          sizeof(dist_t);
      bytes[victim] ^= 0x5a;
      write_file(s.path, bytes);

      const auto store = core::open_file_store(s.path);
      QueryEngineOptions opt;
      opt.retry = fast_retry(1);
      opt.checksums = s.sums;
      const QueryEngine engine(*store, opt);
      const auto report = engine.run_batch(queries);

      for (std::size_t i = 0; i < queries.size(); ++i) {
        const auto& r = report.results[i];
        const bool hit_victim =
            queries[i].u / s.tile == bi && queries[i].v / s.tile == bj;
        if (hit_victim) {
          // The query that needs the damaged tile degrades typed...
          EXPECT_EQ(r.status, QueryStatus::kQuarantined)
              << "tile (" << bi << "," << bj << ") query " << i;
          EXPECT_FALSE(r.error.empty());
        } else {
          // ...and every sibling stays bit-identical to the pristine store.
          ASSERT_EQ(r.status, QueryStatus::kOk)
              << "tile (" << bi << "," << bj << ") poisoned sibling " << i
              << ": " << r.error;
          ASSERT_EQ(r.dist, want[i]);
        }
      }
      const auto cs = report.cache;
      EXPECT_EQ(cs.quarantined_tiles, 1)
          << "tile (" << bi << "," << bj << ")";
      EXPECT_GE(report.service.corrupt_tiles, 1);
    }
  }
  write_file(s.path, s.pristine);
  std::remove(s.path.c_str());
}

TEST(FaultServing, CorruptAtEveryTileSweepCompressed) {
  auto raw = solve_raw("sweep_z1", /*tile=*/64);
  const std::string zpath = temp_path("sweep_z1_store");
  core::compact_store(raw.path, zpath, /*tile=*/64);
  std::remove(raw.path.c_str());

  const auto info = core::compressed_store_info(zpath);
  const vidx_t tps = info.tiles_per_side;
  const auto pristine = read_file(zpath);

  // Reference answers against the clean compressed store.
  std::vector<Query> queries;
  for (vidx_t bi = 0; bi < tps; ++bi) {
    for (vidx_t bj = 0; bj < tps; ++bj) {
      queries.push_back({QueryKind::kPoint, bi * 64, bj * 64});
    }
  }
  std::vector<dist_t> want(queries.size());
  {
    const auto z = core::open_compressed_store(zpath);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      want[i] = z->at(queries[i].u, queries[i].v);
    }
  }

  // Damage a byte in the payload region (past header + directory) in a few
  // spots; whichever frame it lands in, the invariant is the same. All-kInf
  // tiles have no payload, so the victim frame is found by outcome, not
  // chosen by coordinate.
  const std::size_t payload0 =
      64 + static_cast<std::size_t>(tps) * tps * 16;
  ASSERT_LT(payload0, pristine.size());
  for (int probe = 0; probe < 8; ++probe) {
    auto bytes = pristine;
    const std::size_t at =
        payload0 + (probe * (bytes.size() - payload0)) / 8;
    bytes[at] ^= 0x80;
    write_file(zpath, bytes);

    std::unique_ptr<core::DistStore> store;
    try {
      store = core::open_compressed_store(zpath);
    } catch (const IoError&) {
      continue;  // directory-level damage: typed rejection at open is fine
    }
    QueryEngineOptions opt;
    opt.retry = fast_retry(1);
    const QueryEngine engine(*store, opt);
    const auto report = engine.run_batch(queries);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const auto& r = report.results[i];
      if (r.status == QueryStatus::kOk) {
        ASSERT_EQ(r.dist, want[i]) << "probe " << probe << " query " << i
                                   << " served a wrong answer";
      } else {
        EXPECT_EQ(r.status, QueryStatus::kQuarantined);
        EXPECT_FALSE(r.error.empty());
      }
    }
  }
  std::remove(zpath.c_str());
}

TEST(FaultServing, RepairRecomputeServesThroughDamage) {
  auto s = solve_raw("repair", /*tile=*/64);
  // Corrupt tile (1, 0).
  auto bytes = s.pristine;
  bytes[(static_cast<std::size_t>(64) * s.n + 0) * sizeof(dist_t)] ^= 0xff;
  write_file(s.path, bytes);

  const auto store = core::open_file_store(s.path);
  QueryEngineOptions opt;
  opt.retry = fast_retry(1);
  opt.checksums = s.sums;
  opt.repair = core::make_sssp_repair(s.g);
  const QueryEngine engine(*store, opt);

  const auto queries = tile_corner_queries(s);
  const auto report = engine.run_batch(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(report.results[i].status, QueryStatus::kOk)
        << report.results[i].error;
    const auto ref = test::ref_row(s.g, queries[i].u);
    ASSERT_EQ(report.results[i].dist, ref[queries[i].v]) << "query " << i;
  }
  EXPECT_GE(report.service.repaired, 1);
  EXPECT_EQ(report.cache.quarantined_tiles, 0);  // publish() healed it

  // The repaired tile is a plain cache entry now: a second batch re-serves
  // it without another repair.
  const auto again = engine.run_batch(queries);
  EXPECT_EQ(again.service.repaired, report.service.repaired);
  std::remove(s.path.c_str());
}

TEST(FaultServing, OverloadShedsTypedBeyondMaxQueue) {
  const auto g = graph::make_road(8, 8, 7);
  const auto store = core::make_ram_store(g.num_vertices());
  core::ApspOptions o;
  o.device = sim::DeviceSpec::v100_scaled(2u << 20);
  o.algorithm = core::Algorithm::kJohnson;
  core::solve_apsp(g, o, *store);

  QueryEngineOptions opt;
  opt.max_queue = 4;
  const QueryEngine engine(*store, opt);
  std::vector<Query> queries;
  for (vidx_t i = 0; i < 10; ++i) {
    queries.push_back({QueryKind::kPoint, i, i + 1});
  }
  const auto report = engine.run_batch(queries);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(report.results[i].status, QueryStatus::kOk);
    const auto ref = test::ref_row(g, queries[i].u);
    EXPECT_EQ(report.results[i].dist, ref[queries[i].v]);
  }
  for (std::size_t i = 4; i < 10; ++i) {
    EXPECT_EQ(report.results[i].status, QueryStatus::kShed);
    EXPECT_FALSE(report.results[i].error.empty());
  }
  EXPECT_EQ(report.service.shed, 6);
  EXPECT_EQ(report.service.served, 4);
}

TEST(FaultServing, NeverDiesUnderInjectedReadFaults) {
  auto s = solve_raw("chaos", /*tile=*/64);
  const auto store = core::open_file_store(s.path);

  // p = 0.4 with a retry budget: most reads heal, a few tiles quarantine.
  sim::FaultPlan plan;
  plan.seed = 1234;
  plan.p_store_read = 0.4;
  sim::FaultInjector injector(plan);
  QueryEngineOptions opt;
  opt.retry = fast_retry(4);
  opt.checksums = s.sums;
  opt.faults = &injector;
  const QueryEngine engine(*store, opt);

  std::vector<Query> queries;
  Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    queries.push_back({QueryKind::kPoint,
                       static_cast<vidx_t>(rng.next_below(s.n)),
                       static_cast<vidx_t>(rng.next_below(s.n))});
  }
  queries.push_back({QueryKind::kRow, 3, 0});
  const auto report = engine.run_batch(queries);

  long long ok = 0;
  long long degraded = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto& r = report.results[i];
    if (r.status == QueryStatus::kOk) {
      ++ok;
      if (r.query.kind == QueryKind::kPoint) {
        const auto ref = test::ref_row(s.g, r.query.u);
        ASSERT_EQ(r.dist, ref[r.query.v]) << "faulted read served garbage";
      }
    } else {
      ASSERT_EQ(r.status, QueryStatus::kQuarantined);
      EXPECT_FALSE(r.error.empty());
      ++degraded;
    }
  }
  EXPECT_EQ(ok + degraded, static_cast<long long>(queries.size()));
  EXPECT_GT(ok, 0);                            // retries healed most reads
  EXPECT_GT(report.service.retries, 0);
  EXPECT_EQ(report.service.served, ok);
  EXPECT_EQ(report.service.degraded, degraded);

  // p = 1.0: nothing is servable, everything degrades typed, no crash.
  sim::FaultPlan always;
  always.p_store_read = 1.0;
  sim::FaultInjector kill(always);
  QueryEngineOptions dead_opt;
  dead_opt.retry = fast_retry(1);
  dead_opt.faults = &kill;
  const QueryEngine dead(*store, dead_opt);
  const auto dead_report = dead.run_batch(queries);
  for (const auto& r : dead_report.results) {
    EXPECT_EQ(r.status, QueryStatus::kQuarantined);
  }
  std::remove(s.path.c_str());
}

// ---------------------------------------------------------------------------
// Scrub & repair.
// ---------------------------------------------------------------------------

TEST(Scrub, CleanCorruptRepairCycleRaw) {
  auto s = solve_raw("scrub_raw", /*tile=*/64);
  core::write_store_checksums(s.sums, core::checksum_sidecar_path(s.path));

  core::ScrubOptions sopt;
  sopt.retry = fast_retry(1);
  auto report = core::scrub_store(s.path, sopt);
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.sums_present);
  EXPECT_EQ(report.tiles,
            static_cast<long long>(s.tps) * static_cast<long long>(s.tps));

  // Corrupt two tiles.
  auto bytes = s.pristine;
  bytes[0] ^= 0x11;  // tile (0, 0)
  bytes[(static_cast<std::size_t>(64) * s.n + 64) * sizeof(dist_t)] ^=
      0x22;  // tile (1, 1)
  write_file(s.path, bytes);

  report = core::scrub_store(s.path, sopt);
  EXPECT_EQ(report.corrupt, 2);
  EXPECT_EQ(report.unrepaired, 2);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.damaged.size(), 2u);

  // Repair from the kept CSR, then verify the file is bit-identical to the
  // pristine solve output.
  sopt.repair = true;
  sopt.repair_fn = core::make_sssp_repair(s.g);
  report = core::scrub_store(s.path, sopt);
  EXPECT_EQ(report.corrupt, 2);
  EXPECT_EQ(report.repaired, 2);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(read_file(s.path), s.pristine);

  report = core::scrub_store(s.path, core::ScrubOptions{});
  EXPECT_TRUE(report.clean());
  std::remove(core::checksum_sidecar_path(s.path).c_str());
  std::remove(s.path.c_str());
}

TEST(Scrub, WriteSumsCreatesSidecarForLegacyStore) {
  auto s = solve_raw("scrub_sums", /*tile=*/64);
  std::remove(core::checksum_sidecar_path(s.path).c_str());  // stale runs
  StoreChecksums probe;
  EXPECT_FALSE(core::load_store_checksums(core::checksum_sidecar_path(s.path),
                                          probe));
  core::ScrubOptions sopt;
  sopt.write_sums = true;
  sopt.tile = 64;
  const auto report = core::scrub_store(s.path, sopt);
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(report.sums_written);

  StoreChecksums sums;
  ASSERT_TRUE(core::load_store_checksums(core::checksum_sidecar_path(s.path),
                                         sums));
  EXPECT_EQ(sums.tile, 64);
  std::remove(core::checksum_sidecar_path(s.path).c_str());
  std::remove(s.path.c_str());
}

TEST(Scrub, RepairsCompressedStoreInPlace) {
  auto raw = solve_raw("scrub_z1", /*tile=*/64);
  const std::string zpath = temp_path("scrub_z1_store");
  core::compact_store(raw.path, zpath, /*tile=*/64);
  std::remove(raw.path.c_str());
  const auto pristine = read_file(zpath);

  // Find a payload byte whose flip the scrubber sees as tile damage (not
  // directory damage, which is store-level and rejected at open).
  const auto info = core::compressed_store_info(zpath);
  const std::size_t payload0 =
      64 + static_cast<std::size_t>(info.tiles_per_side) *
               info.tiles_per_side * 16;
  core::ScrubOptions detect;
  detect.retry = fast_retry(1);
  bool damaged_a_tile = false;
  for (std::size_t at = payload0 + 16; at < pristine.size() && !damaged_a_tile;
       at += 97) {
    auto bytes = pristine;
    bytes[at] ^= 0x40;
    write_file(zpath, bytes);
    try {
      const auto report = core::scrub_store(zpath, detect);
      damaged_a_tile = report.corrupt > 0;
    } catch (const IoError&) {
      // Directory-level damage is a store-level typed rejection, not tile
      // damage; keep probing.
      write_file(zpath, pristine);
    }
  }
  ASSERT_TRUE(damaged_a_tile) << "no payload flip damaged any tile";

  core::ScrubOptions sopt;
  sopt.retry = fast_retry(1);
  sopt.repair = true;
  sopt.repair_fn = core::make_sssp_repair(raw.g);
  const auto report = core::scrub_store(zpath, sopt);
  EXPECT_GE(report.corrupt, 1);
  EXPECT_EQ(report.unrepaired, 0);
  EXPECT_TRUE(report.ok());

  // The rebuilt store serves the true distances again.
  const auto fixed = core::open_compressed_store(zpath);
  const auto clean = core::scrub_store(zpath, detect);
  EXPECT_TRUE(clean.clean());
  const auto ref = test::ref_row(raw.g, 0);
  for (vidx_t v = 0; v < raw.n; v += 37) {
    EXPECT_EQ(fixed->at(0, v), ref[v]);
  }
  std::remove(zpath.c_str());
}

}  // namespace
}  // namespace gapsp::service
