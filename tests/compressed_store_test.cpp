// Block-compressed store (GAPSPZ1, DESIGN.md §11) coverage: the z1 codec on
// known patterns, the store against the raw DistStore oracle (full
// decompress must be bit-identical), the compaction/auto-detect entry
// points, directory-answered all-kInf tiles, corruption rejection, and the
// compressed checkpoint sidecar payloads.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/apsp.h"
#include "core/checkpoint.h"
#include "core/compressed_store.h"
#include "graph/generators.h"
#include "test_util.h"
#include "util/rng.h"

namespace gapsp::core {
namespace {

std::string tmp_path(const char* tag) {
  return ::testing::TempDir() + "gapsp_zstore_" + tag + ".bin";
}

std::uint64_t file_size(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return static_cast<std::uint64_t>(size);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::fseek(f, 0, SEEK_END);
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(buf.data(), 1, buf.size(), f), buf.size());
  std::fclose(f);
  return buf;
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(b.data(), 1, b.size(), f), b.size());
  std::fclose(f);
}

void expect_round_trip(const std::vector<std::uint8_t>& raw) {
  const auto frame = z1_compress(raw.data(), raw.size());
  ASSERT_EQ(z1_raw_size(frame.data(), frame.size()), raw.size());
  std::vector<std::uint8_t> back(raw.size());
  z1_decompress(frame.data(), frame.size(), back.data(), back.size());
  EXPECT_EQ(back, raw);
}

/// `components` disjoint side×side grid components — road-like structure
/// where (components−1)/components of all pairs are unreachable, i.e. the
/// kInf-dominated regime the compressed store targets.
graph::CsrGraph disjoint_grids(int components, vidx_t side,
                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<graph::Edge> edges;
  const vidx_t per = side * side;
  for (int c = 0; c < components; ++c) {
    const vidx_t base = static_cast<vidx_t>(c) * per;
    for (vidx_t r = 0; r < side; ++r) {
      for (vidx_t col = 0; col < side; ++col) {
        const vidx_t v = base + r * side + col;
        if (col + 1 < side) {
          edges.push_back({v, v + 1, static_cast<dist_t>(rng.next_in(1, 9))});
        }
        if (r + 1 < side) {
          edges.push_back(
              {v, v + side, static_cast<dist_t>(rng.next_in(1, 9))});
        }
      }
    }
  }
  return graph::CsrGraph::from_edges(static_cast<vidx_t>(components) * per,
                                     std::move(edges), true);
}

std::unique_ptr<DistStore> solve_to_ram(const graph::CsrGraph& g) {
  ApspOptions o;
  o.device = test::tiny_device(2u << 20);
  o.algorithm = Algorithm::kJohnson;
  auto store = make_ram_store(g.num_vertices());
  solve_apsp(g, o, *store);
  return store;
}

void expect_stores_bit_identical(const DistStore& a, const DistStore& b) {
  ASSERT_EQ(a.n(), b.n());
  const vidx_t n = a.n();
  std::vector<dist_t> ra(static_cast<std::size_t>(n));
  std::vector<dist_t> rb(static_cast<std::size_t>(n));
  for (vidx_t r = 0; r < n; ++r) {
    a.read_block(r, 0, 1, n, ra.data(), ra.size());
    b.read_block(r, 0, 1, n, rb.data(), rb.size());
    ASSERT_EQ(ra, rb) << "row " << r;
  }
}

// ---------------------------------------------------------------------------
// z1 codec
// ---------------------------------------------------------------------------

TEST(Z1Codec, RoundTripKnownPatterns) {
  expect_round_trip({});
  expect_round_trip({42});
  expect_round_trip({1, 2, 3});  // shorter than the minimum match
  std::vector<std::uint8_t> text;
  const char* s = "the quick brown fox jumps over the quick brown dog";
  text.assign(s, s + std::strlen(s));
  expect_round_trip(text);
  std::vector<std::uint8_t> periodic(4096);
  for (std::size_t i = 0; i < periodic.size(); ++i) {
    periodic[i] = static_cast<std::uint8_t>(i % 4);
  }
  expect_round_trip(periodic);
}

TEST(Z1Codec, AllInfBufferCompressesMassively) {
  std::vector<dist_t> inf(64 * 1024, kInf);
  const std::size_t raw = inf.size() * sizeof(dist_t);
  const auto frame = z1_compress(inf.data(), raw);
  // The kInf-run fast path reduces a constant 256 KiB tile to a handful of
  // sequences; anything under 1% keeps the acceptance ratios comfortable.
  EXPECT_LT(frame.size(), raw / 100);
  std::vector<dist_t> back(inf.size());
  z1_decompress(frame.data(), frame.size(), back.data(), raw);
  EXPECT_EQ(back, inf);
}

TEST(Z1Codec, IncompressibleInputStaysBounded) {
  Rng rng(7);
  std::vector<std::uint8_t> noise(32 * 1024);
  for (auto& b : noise) b = static_cast<std::uint8_t>(rng.next_u64());
  const auto frame = z1_compress(noise.data(), noise.size());
  // Worst case is literals plus token/extension overhead: ~len/255 + header.
  EXPECT_LT(frame.size(), noise.size() + noise.size() / 128 + 64);
  expect_round_trip(noise);
}

TEST(Z1Codec, TruncatedFramesThrow) {
  std::vector<dist_t> data(2048, kInf);
  data[100] = 17;
  data[2000] = 99;
  const auto frame = z1_compress(data.data(), data.size() * sizeof(dist_t));
  std::vector<dist_t> dst(data.size());
  // Every proper prefix must be rejected, never over-read.
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    EXPECT_THROW(z1_decompress(frame.data(), cut, dst.data(),
                               dst.size() * sizeof(dist_t)),
                 IoError)
        << "prefix length " << cut;
  }
  EXPECT_THROW(z1_raw_size(frame.data(), 15), IoError);
  // Wrong destination size is a mismatch, not a crash.
  EXPECT_THROW(z1_decompress(frame.data(), frame.size(), dst.data(),
                             dst.size() * sizeof(dist_t) - 4),
               IoError);
}

TEST(Z1Codec, DegenerateTileSizes) {
  // Empty tile: a header-only frame that decodes to zero bytes (the store
  // never writes one today, but the codec is shared by the transfer path).
  const auto empty = z1_compress(nullptr, 0);
  EXPECT_EQ(z1_raw_size(empty.data(), empty.size()), 0u);
  z1_decompress(empty.data(), empty.size(), nullptr, 0);
  // One-byte and one-element tiles: below the minimum match, literal-only.
  expect_round_trip({0x5a});
  const dist_t one = 12345;
  const auto frame = z1_compress(&one, sizeof(one));
  dist_t back = 0;
  z1_decompress(frame.data(), frame.size(), &back, sizeof(back));
  EXPECT_EQ(back, one);
}

TEST(Z1Codec, MatchOffsetsAtTheU16Boundary) {
  // Two copies of a distinctive 64-byte motif separated by runs of zeros
  // sized around the u16 match-offset limit. The hash probe sees the far
  // first copy; an encoder that emitted its distance unchecked would wrap
  // the u16 offset field and decode garbage (caught as a round-trip
  // mismatch or a checksum throw). Straddle the limit from both sides.
  std::vector<std::uint8_t> motif(64);
  for (std::size_t i = 0; i < motif.size(); ++i) {
    motif[i] = static_cast<std::uint8_t>(0xA1 + 37 * i);
  }
  for (const std::size_t gap :
       {std::size_t{65400}, std::size_t{65471}, std::size_t{65535},
        std::size_t{65536}, std::size_t{65600}}) {
    std::vector<std::uint8_t> buf;
    buf.insert(buf.end(), motif.begin(), motif.end());
    buf.resize(motif.size() + gap, 0);
    buf.insert(buf.end(), motif.begin(), motif.end());
    expect_round_trip(buf);
  }
  // Total sizes at the boundary as well (length-extension edge cases).
  for (const std::size_t len :
       {std::size_t{65535}, std::size_t{65536}, std::size_t{65537}}) {
    std::vector<std::uint8_t> buf(len);
    for (std::size_t i = 0; i < len; ++i) {
      buf[i] = static_cast<std::uint8_t>(i % 251);
    }
    expect_round_trip(buf);
  }
}

TEST(Z1Codec, ContentChecksumCatchesPayloadCorruption) {
  std::vector<std::uint8_t> data(4096);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i / 7);
  }
  auto frame = z1_compress(data.data(), data.size());
  std::vector<std::uint8_t> dst(data.size());
  // A literal byte flip decodes structurally but must fail the checksum.
  auto bad = frame;
  bad[bad.size() / 2] ^= 0x01;
  EXPECT_THROW(z1_decompress(bad.data(), bad.size(), dst.data(), dst.size()),
               IoError);
}

// ---------------------------------------------------------------------------
// GAPSPZ1 store
// ---------------------------------------------------------------------------

TEST(CompressedStore, BitIdenticalToRawOracle) {
  const auto g = graph::make_road(12, 13, 77);
  const auto ram = solve_to_ram(g);
  const std::string zpath = tmp_path("oracle");
  const auto cs = write_compressed_store(*ram, zpath, /*tile=*/48);
  EXPECT_EQ(cs.raw_bytes, static_cast<std::uint64_t>(g.num_vertices()) *
                              g.num_vertices() * sizeof(dist_t));
  EXPECT_EQ(cs.compressed_bytes, file_size(zpath));
  const auto z = open_compressed_store(zpath);
  EXPECT_EQ(z->tile_size(), 48);
  expect_stores_bit_identical(*ram, *z);
  // Strided partial reads crossing tile boundaries match at().
  std::vector<dist_t> block(5 * 7);
  z->read_block(45, 43, 5, 7, block.data(), 7);
  for (vidx_t r = 0; r < 5; ++r) {
    for (vidx_t c = 0; c < 7; ++c) {
      EXPECT_EQ(block[static_cast<std::size_t>(r) * 7 + c],
                ram->at(45 + r, 43 + c));
    }
  }
  std::remove(zpath.c_str());
}

TEST(CompressedStore, RaggedTilesRoundTrip) {
  // n deliberately not a multiple of the tile side: edge tiles are ragged
  // both ways and must still round-trip exactly.
  const vidx_t n = 30;
  auto ram = make_ram_store(n);
  Rng rng(5);
  std::vector<dist_t> row(static_cast<std::size_t>(n));
  for (vidx_t r = 0; r < n; ++r) {
    for (auto& v : row) {
      v = rng.next_bool(0.3) ? kInf : static_cast<dist_t>(rng.next_below(50));
    }
    ram->write_block(r, 0, 1, n, row.data(), row.size());
  }
  const std::string zpath = tmp_path("ragged");
  write_compressed_store(*ram, zpath, /*tile=*/7);
  const auto z = open_compressed_store(zpath);
  expect_stores_bit_identical(*ram, *z);
  std::remove(zpath.c_str());
}

TEST(CompressedStore, CompactAutodetectsAndServes) {
  const auto g = graph::make_road(10, 10, 31);
  const vidx_t n = g.num_vertices();
  ApspOptions o;
  o.device = test::tiny_device(2u << 20);
  o.algorithm = Algorithm::kJohnson;
  const std::string raw_path = tmp_path("raw");
  {
    auto fs = make_file_store(n, raw_path, /*keep_file=*/true);
    solve_apsp(g, o, *fs);
  }
  auto ram = solve_to_ram(g);

  // A raw kept file is not a compressed store; open_store serves it raw.
  EXPECT_FALSE(is_compressed_store(raw_path));
  expect_stores_bit_identical(*ram, *open_store(raw_path));

  // Out-of-place compaction leaves the raw file usable and both agree.
  const std::string zpath = tmp_path("z");
  const auto cs = compact_store(raw_path, zpath, /*tile=*/32);
  EXPECT_GT(cs.ratio(), 1.0);
  EXPECT_TRUE(is_compressed_store(zpath));
  EXPECT_FALSE(is_compressed_store(raw_path));
  expect_stores_bit_identical(*ram, *open_store(zpath));

  const auto info = compressed_store_info(zpath);
  EXPECT_EQ(info.n, n);
  EXPECT_EQ(info.tile, 32);
  EXPECT_EQ(info.tiles_per_side, (n + 31) / 32);
  EXPECT_EQ(info.file_bytes, file_size(zpath));
  EXPECT_EQ(info.tiles, static_cast<long long>(info.tiles_per_side) *
                            info.tiles_per_side);

  // In-place compaction replaces the raw file; compacting twice is an error
  // (double compression would silently store garbage geometry).
  const auto cs2 = compact_store(raw_path, raw_path);
  EXPECT_TRUE(is_compressed_store(raw_path));
  EXPECT_EQ(cs2.raw_bytes, cs.raw_bytes);
  EXPECT_THROW(compact_store(raw_path, raw_path), IoError);
  expect_stores_bit_identical(*ram, *open_store(raw_path));

  std::remove(raw_path.c_str());
  std::remove(zpath.c_str());
}

TEST(CompressedStore, KnownInfTilesServeWithoutPayload) {
  // Two disjoint grids: every cross-component tile is all-kInf and must be
  // a zero-length directory entry answered without touching the payload.
  const auto g = disjoint_grids(2, 8, 11);
  const vidx_t half = g.num_vertices() / 2;
  const auto ram = solve_to_ram(g);
  const std::string zpath = tmp_path("kinf");
  const auto cs = write_compressed_store(*ram, zpath, /*tile=*/64);
  EXPECT_GT(cs.inf_tiles, 0);
  const auto z = open_compressed_store(zpath);

  EXPECT_TRUE(z->block_known_inf(0, half, half, half));
  EXPECT_TRUE(z->block_known_inf(half, 0, half, half));
  EXPECT_FALSE(z->block_known_inf(0, 0, half, half));  // diagonal has data
  EXPECT_FALSE(z->block_known_inf(0, 0, g.num_vertices(), g.num_vertices()));

  std::vector<dist_t> block(static_cast<std::size_t>(half) * half);
  z->read_block(0, half, half, half, block.data(), half);
  for (const dist_t d : block) EXPECT_EQ(d, kInf);
  expect_stores_bit_identical(*ram, *z);
  std::remove(zpath.c_str());
}

TEST(CompressedStore, KinfDominatedRoadLikeRatioFloor) {
  // Acceptance: ≥4× on a kInf-dominated road-like matrix. Eight disjoint
  // grid components leave 7/8 of all pairs at kInf.
  const auto g = disjoint_grids(8, 8, 23);
  const auto ram = solve_to_ram(g);
  const std::string zpath = tmp_path("ratio");
  const auto cs = write_compressed_store(*ram, zpath);
  EXPECT_GE(cs.ratio(), 4.0) << cs.raw_bytes << " -> " << cs.compressed_bytes;
  expect_stores_bit_identical(*ram, *open_store(zpath));
  std::remove(zpath.c_str());
}

TEST(CompressedStore, RejectsWritesAndValidatesBounds) {
  const auto g = graph::make_road(6, 6, 3);
  const auto ram = solve_to_ram(g);
  const std::string zpath = tmp_path("ro");
  write_compressed_store(*ram, zpath, /*tile=*/16);
  const auto z = open_compressed_store(zpath);
  dist_t v = 1;
  EXPECT_THROW(z->write_block(0, 0, 1, 1, &v, 1), IoError);
  std::vector<dist_t> out(4);
  EXPECT_THROW(z->read_block(-1, 0, 1, 1, out.data(), 1), Error);
  EXPECT_THROW(z->read_block(0, 0, 1, 1 + g.num_vertices(), out.data(),
                             1 + static_cast<std::size_t>(g.num_vertices())),
               Error);
  std::remove(zpath.c_str());
}

TEST(CompressedStore, CorruptionIsRejectedNotServed) {
  const auto g = graph::make_road(8, 8, 9);
  const auto ram = solve_to_ram(g);
  const std::string zpath = tmp_path("corrupt");
  write_compressed_store(*ram, zpath, /*tile=*/16);
  const auto pristine = read_file(zpath);

  // Flipped directory byte: rejected at open by the directory checksum.
  auto bad = pristine;
  bad[64 + 3] ^= 0xff;
  write_file(zpath, bad);
  EXPECT_THROW(open_compressed_store(zpath), IoError);

  // Truncated payload: directory entries point past EOF.
  bad = pristine;
  bad.resize(bad.size() - 9);
  write_file(zpath, bad);
  EXPECT_THROW(open_compressed_store(zpath), IoError);

  // Flipped payload byte: open succeeds (directory intact) but the tile
  // read fails its frame validation instead of returning wrong distances.
  bad = pristine;
  bad[bad.size() - 5] ^= 0x10;
  write_file(zpath, bad);
  const auto z = open_compressed_store(zpath);
  const vidx_t n = g.num_vertices();
  std::vector<dist_t> row(static_cast<std::size_t>(n));
  EXPECT_THROW(
      {
        for (vidx_t r = 0; r < n; ++r) {
          z->read_block(r, 0, 1, n, row.data(), row.size());
        }
      },
      IoError);

  // Not-a-store inputs.
  write_file(zpath, {'G', 'A'});
  EXPECT_FALSE(is_compressed_store(zpath));
  EXPECT_THROW(compressed_store_info(zpath), IoError);
  std::remove(zpath.c_str());
}

// ---------------------------------------------------------------------------
// Compressed checkpoint sidecars
// ---------------------------------------------------------------------------

TEST(CompressedCheckpoint, SidecarPayloadShrinksAndRoundTrips) {
  Checkpoint ck;
  ck.algorithm = 3;
  ck.fingerprint = 0xfeedbeef;
  ck.progress = 7;
  ck.aux0 = 1;
  ck.aux1 = 2;
  // A boundary-style blob: distance data dominated by kInf runs.
  std::vector<dist_t> dists(64 * 1024, kInf);
  for (std::size_t i = 0; i < dists.size(); i += 97) {
    dists[i] = static_cast<dist_t>(i);
  }
  ck.payload.resize(dists.size() * sizeof(dist_t));
  std::memcpy(ck.payload.data(), dists.data(), ck.payload.size());

  const std::string path = tmp_path("ck");
  write_checkpoint(path, ck);
  // The sink compressed: the sidecar is far smaller than the raw payload.
  EXPECT_LT(file_size(path), ck.payload.size() / 4);

  Checkpoint back;
  ASSERT_TRUE(read_checkpoint(path, &back));
  EXPECT_EQ(back.algorithm, ck.algorithm);
  EXPECT_EQ(back.fingerprint, ck.fingerprint);
  EXPECT_EQ(back.progress, ck.progress);
  EXPECT_EQ(back.aux0, ck.aux0);
  EXPECT_EQ(back.aux1, ck.aux1);
  EXPECT_EQ(back.payload, ck.payload);  // callers always see raw bytes
  std::remove(path.c_str());
}

TEST(CompressedCheckpoint, IncompressiblePayloadStoredRaw) {
  Checkpoint ck;
  ck.algorithm = 1;
  ck.fingerprint = 1;
  Rng rng(13);
  ck.payload.resize(8 * 1024);
  for (auto& b : ck.payload) b = static_cast<std::uint8_t>(rng.next_u64());
  const std::string path = tmp_path("ck_raw");
  write_checkpoint(path, ck);
  // Raw fallback: header + payload + checksum, no compression growth.
  EXPECT_LE(file_size(path), ck.payload.size() + 64 + 8);
  Checkpoint back;
  ASSERT_TRUE(read_checkpoint(path, &back));
  EXPECT_EQ(back.payload, ck.payload);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gapsp::core
