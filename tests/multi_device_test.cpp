#include <gtest/gtest.h>

#include <vector>

#include "core/multi_device.h"
#include "graph/generators.h"
#include "test_util.h"

namespace gapsp::core {
namespace {

ApspOptions opts(std::size_t mem = 4u << 20) {
  ApspOptions o;
  o.device = sim::DeviceSpec::v100_scaled(mem);
  o.fw_tile = 32;
  return o;
}

TEST(MultiDevice, SingleDeviceMatchesReference) {
  const auto g = graph::make_road(16, 16, 401);
  auto store = make_ram_store(g.num_vertices());
  const auto r = ooc_boundary_multi(g, opts(), 1, *store);
  EXPECT_EQ(r.multi.num_devices, 1);
  test::expect_store_matches_reference(g, *store, r.result);
}

class MultiDeviceCount : public ::testing::TestWithParam<int> {};

TEST_P(MultiDeviceCount, MatchesReferenceForAnyDeviceCount) {
  const auto g = graph::make_road(18, 17, 402);
  auto store = make_ram_store(g.num_vertices());
  const auto r = ooc_boundary_multi(g, opts(), GetParam(), *store);
  EXPECT_EQ(r.multi.num_devices, GetParam());
  EXPECT_EQ(static_cast<int>(r.multi.device_seconds.size()), GetParam());
  test::expect_store_matches_reference(g, *store, r.result);
}

INSTANTIATE_TEST_SUITE_P(Counts, MultiDeviceCount, ::testing::Values(1, 2, 3, 4));

TEST(MultiDevice, MatchesSingleDeviceDistances) {
  const auto g = graph::make_road(20, 19, 403);
  const vidx_t n = g.num_vertices();
  auto s1 = make_ram_store(n);
  auto s2 = make_ram_store(n);
  const auto single = ooc_boundary(g, opts(), *s1);
  const auto multi = ooc_boundary_multi(g, opts(), 3, *s2);
  std::vector<dist_t> a(n), b(n);
  for (vidx_t u = 0; u < n; u += 7) {
    s1->read_block(single.stored_id(u), 0, 1, n, a.data(), n);
    s2->read_block(multi.result.stored_id(u), 0, 1, n, b.data(), n);
    ASSERT_EQ(a, b) << "row " << u;
  }
}

TEST(MultiDevice, TwoDevicesFasterThanOne) {
  const auto g = graph::make_road(40, 40, 404);
  auto s1 = make_ram_store(g.num_vertices());
  auto s2 = make_ram_store(g.num_vertices());
  const auto one = ooc_boundary_multi(g, opts(8u << 20), 1, *s1);
  const auto two = ooc_boundary_multi(g, opts(8u << 20), 2, *s2);
  EXPECT_LT(two.result.metrics.sim_seconds, one.result.metrics.sim_seconds);
}

TEST(MultiDevice, BarriersAreMonotonic) {
  const auto g = graph::make_road(20, 20, 405);
  auto store = make_ram_store(g.num_vertices());
  const auto r = ooc_boundary_multi(g, opts(), 2, *store);
  EXPECT_GT(r.multi.barrier2_s, 0.0);
  EXPECT_GT(r.multi.barrier3_s, r.multi.barrier2_s);
  for (double t : r.multi.device_seconds) {
    EXPECT_GE(t, r.multi.barrier3_s);
    EXPECT_LE(t, r.result.metrics.sim_seconds + 1e-12);
  }
}

TEST(MultiDevice, MoreDevicesThanComponents) {
  // k = sqrt(n)/4 is small here; extra devices must idle harmlessly.
  const auto g = graph::make_road(10, 10, 406);
  auto store = make_ram_store(g.num_vertices());
  const auto r = ooc_boundary_multi(g, opts(), 8, *store);
  test::expect_store_matches_reference(g, *store, r.result);
}

TEST(MultiDevice, DisconnectedGraph) {
  auto g = graph::make_erdos_renyi(240, 200, 407, /*connect=*/false);
  auto store = make_ram_store(g.num_vertices());
  const auto r = ooc_boundary_multi(g, opts(), 2, *store);
  test::expect_store_matches_reference(g, *store, r.result);
}

TEST(MultiDevice, RejectsZeroDevices) {
  const auto g = graph::make_road(8, 8, 408);
  auto store = make_ram_store(g.num_vertices());
  auto o = opts();
  EXPECT_THROW(ooc_boundary_multi(g, o, 0, *store), Error);
}

TEST(MultiDevice, AggregatedMetricsSumAcrossDevices) {
  const auto g = graph::make_road(24, 24, 409);
  const vidx_t n = g.num_vertices();
  auto s2 = make_ram_store(n);
  const auto two = ooc_boundary_multi(g, opts(), 2, *s2);
  // Output still moves exactly once in total (plus dist2 gather).
  EXPECT_GE(two.result.metrics.bytes_d2h,
            static_cast<std::size_t>(n) * n * sizeof(dist_t));
  EXPECT_GT(two.result.metrics.kernels, 0);
  EXPECT_EQ(two.result.metrics.boundary_k, two.result.metrics.boundary_k);
  EXPECT_LE(two.result.metrics.device_peak_bytes,
            opts().device.memory_bytes);
}

}  // namespace
}  // namespace gapsp::core
