#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "graph/generators.h"
#include "partition/boundary.h"
#include "partition/kway.h"

namespace gapsp::part {
namespace {

graph::CsrGraph road() { return graph::make_road(24, 24, 11); }
graph::CsrGraph mesh() { return graph::make_mesh(500, 12, 12, 0.15); }

Partition run(const graph::CsrGraph& g, int k) {
  PartitionOptions opts;
  opts.k = k;
  opts.seed = 3;
  return kway_partition(g, opts);
}

TEST(Kway, AssignsEveryVertexToValidComponent) {
  const auto g = road();
  const auto p = run(g, 8);
  ASSERT_EQ(p.assignment.size(), static_cast<std::size_t>(g.num_vertices()));
  for (vidx_t a : p.assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 8);
  }
}

TEST(Kway, SizesSumToN) {
  const auto g = road();
  const auto p = run(g, 8);
  EXPECT_EQ(std::accumulate(p.sizes.begin(), p.sizes.end(), vidx_t{0}),
            g.num_vertices());
}

TEST(Kway, AllComponentsNonEmpty) {
  const auto g = road();
  const auto p = run(g, 8);
  for (vidx_t s : p.sizes) EXPECT_GT(s, 0);
}

TEST(Kway, BalanceWithinBound) {
  const auto g = road();
  const auto p = run(g, 8);
  EXPECT_LE(p.imbalance(), 1.35);  // option default 1.15 plus slack
}

TEST(Kway, EdgeCutMatchesAssignment) {
  const auto g = road();
  const auto p = run(g, 4);
  eidx_t cut = 0;
  for (vidx_t u = 0; u < g.num_vertices(); ++u) {
    for (vidx_t v : g.neighbors(u)) {
      if (p.assignment[u] != p.assignment[v]) ++cut;
    }
  }
  EXPECT_EQ(cut, p.edge_cut);
}

TEST(Kway, GridCutNearSqrtN) {
  // A 24×24 grid has an O(√n) separator; a decent partitioner should cut
  // only a small fraction of the ~2n edges.
  const auto g = road();
  const auto p = run(g, 6);
  EXPECT_LT(p.edge_cut, g.num_edges() / 6);
}

TEST(Kway, KOneIsTrivial) {
  const auto g = road();
  const auto p = run(g, 1);
  EXPECT_EQ(p.edge_cut, 0);
  EXPECT_EQ(p.sizes[0], g.num_vertices());
}

TEST(Kway, KEqualsNIsFeasible) {
  auto g = graph::make_erdos_renyi(12, 30, 1);
  const auto p = run(g, 12);
  EXPECT_EQ(p.max_size(), 1);
}

TEST(Kway, RejectsBadK) {
  const auto g = road();
  PartitionOptions opts;
  opts.k = 0;
  EXPECT_THROW(kway_partition(g, opts), Error);
  opts.k = g.num_vertices() + 1;
  EXPECT_THROW(kway_partition(g, opts), Error);
}

TEST(Kway, DeterministicForSeed) {
  const auto g = road();
  const auto a = run(g, 8);
  const auto b = run(g, 8);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(Kway, HandlesDisconnectedGraph) {
  auto g = graph::make_erdos_renyi(200, 60, 2, /*connect=*/false);
  const auto p = run(g, 4);
  EXPECT_EQ(std::accumulate(p.sizes.begin(), p.sizes.end(), vidx_t{0}), 200);
  for (vidx_t s : p.sizes) EXPECT_GT(s, 0);
}

// ---- recursive bisection ----

Partition run_rb(const graph::CsrGraph& g, int k) {
  PartitionOptions opts;
  opts.k = k;
  opts.seed = 3;
  opts.method = Method::kRecursiveBisection;
  return kway_partition(g, opts);
}

TEST(RecursiveBisection, CoversAllVerticesNonEmpty) {
  const auto g = road();
  const auto p = run_rb(g, 8);
  EXPECT_EQ(std::accumulate(p.sizes.begin(), p.sizes.end(), vidx_t{0}),
            g.num_vertices());
  for (vidx_t s : p.sizes) EXPECT_GT(s, 0);
}

TEST(RecursiveBisection, OddKSupported) {
  const auto g = road();
  for (int k : {3, 5, 7, 11}) {
    const auto p = run_rb(g, k);
    EXPECT_EQ(p.k, k);
    for (vidx_t s : p.sizes) EXPECT_GT(s, 0) << "k=" << k;
    EXPECT_LE(p.imbalance(), 1.8) << "k=" << k;
  }
}

TEST(RecursiveBisection, EdgeCutConsistent) {
  const auto g = road();
  const auto p = run_rb(g, 4);
  eidx_t cut = 0;
  for (vidx_t u = 0; u < g.num_vertices(); ++u) {
    for (vidx_t v : g.neighbors(u)) {
      if (p.assignment[u] != p.assignment[v]) ++cut;
    }
  }
  EXPECT_EQ(cut, p.edge_cut);
}

TEST(RecursiveBisection, DeterministicPerSeed) {
  const auto g = road();
  EXPECT_EQ(run_rb(g, 6).assignment, run_rb(g, 6).assignment);
}

TEST(RecursiveBisection, GridCutStaysSmall) {
  const auto g = road();
  const auto p = run_rb(g, 8);
  EXPECT_LT(p.edge_cut, g.num_edges() / 5);
}

TEST(RecursiveBisection, WorksWithBoundaryAnalysis) {
  const auto g = road();
  const auto layout = partition_and_analyze(g, 6, 3,
                                            Method::kRecursiveBisection);
  EXPECT_EQ(layout.comp_offset.back(), g.num_vertices());
  EXPECT_GT(layout.num_boundary, 0);
  EXPECT_LT(layout.num_boundary, g.num_vertices());
}

TEST(RecursiveBisection, HandlesDisconnectedGraph) {
  auto g = graph::make_erdos_renyi(200, 60, 2, /*connect=*/false);
  const auto p = run_rb(g, 4);
  EXPECT_EQ(std::accumulate(p.sizes.begin(), p.sizes.end(), vidx_t{0}), 200);
}

// ---- boundary layout ----

TEST(Boundary, BoundaryIffIncidentToCutEdge) {
  const auto g = road();
  auto layout = analyze_boundary(g, run(g, 6));
  for (vidx_t u = 0; u < g.num_vertices(); ++u) {
    bool cut = false;
    for (vidx_t v : g.neighbors(u)) {
      if (layout.partition.assignment[u] != layout.partition.assignment[v]) {
        cut = true;
      }
    }
    EXPECT_EQ(static_cast<bool>(layout.is_boundary[u]), cut) << u;
  }
}

TEST(Boundary, PermIsBijection) {
  const auto g = road();
  auto layout = analyze_boundary(g, run(g, 6));
  std::set<vidx_t> seen(layout.perm.begin(), layout.perm.end());
  EXPECT_EQ(seen.size(), layout.perm.size());
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), g.num_vertices() - 1);
  for (vidx_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(layout.inv_perm[layout.perm[v]], v);
  }
}

TEST(Boundary, ComponentsContiguousAndBoundaryFirst) {
  const auto g = road();
  auto layout = analyze_boundary(g, run(g, 6));
  for (vidx_t v = 0; v < g.num_vertices(); ++v) {
    const int c = layout.partition.assignment[v];
    const vidx_t nv = layout.perm[v];
    EXPECT_GE(nv, layout.comp_offset[c]);
    EXPECT_LT(nv, layout.comp_offset[c + 1]);
    const bool in_boundary_prefix =
        nv < layout.comp_offset[c] + layout.comp_boundary[c];
    EXPECT_EQ(in_boundary_prefix, static_cast<bool>(layout.is_boundary[v]));
  }
}

TEST(Boundary, OffsetsConsistent) {
  const auto g = road();
  auto layout = analyze_boundary(g, run(g, 6));
  EXPECT_EQ(layout.comp_offset.front(), 0);
  EXPECT_EQ(layout.comp_offset.back(), g.num_vertices());
  EXPECT_EQ(layout.boundary_offset.back(), layout.num_boundary);
  vidx_t total_b = 0;
  for (int i = 0; i < layout.k(); ++i) {
    EXPECT_EQ(layout.comp_offset[i + 1] - layout.comp_offset[i],
              layout.partition.sizes[i]);
    total_b += layout.comp_boundary[i];
  }
  EXPECT_EQ(total_b, layout.num_boundary);
}

TEST(Boundary, CrossEdgesConnectBoundaryPrefixes) {
  const auto g = road();
  auto layout = analyze_boundary(g, run(g, 6));
  const auto gp = g.relabel(layout.perm);
  // In the renumbered graph, every cross-component arc must start and end
  // inside a boundary prefix.
  auto comp_of = [&](vidx_t nv) {
    int c = 0;
    while (layout.comp_offset[c + 1] <= nv) ++c;
    return c;
  };
  for (vidx_t u = 0; u < gp.num_vertices(); ++u) {
    for (vidx_t v : gp.neighbors(u)) {
      const int cu = comp_of(u), cv = comp_of(v);
      if (cu == cv) continue;
      EXPECT_LT(u, layout.comp_offset[cu] + layout.comp_boundary[cu]);
      EXPECT_LT(v, layout.comp_offset[cv] + layout.comp_boundary[cv]);
    }
  }
}

TEST(Boundary, RoadHasSmallerSeparatorRatioThanMesh) {
  const double road_ratio = separator_ratio(road());
  const double mesh_ratio = separator_ratio(mesh());
  EXPECT_LT(road_ratio, mesh_ratio);
}

TEST(Boundary, RoadClassifiedSmallSeparator) {
  EXPECT_TRUE(has_small_separator(road()));
}

TEST(Boundary, RewiredMeshClassifiedLargeSeparator) {
  EXPECT_FALSE(has_small_separator(mesh()));
}

}  // namespace
}  // namespace gapsp::part
