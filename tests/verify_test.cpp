#include <gtest/gtest.h>

#include "core/ooc_boundary.h"
#include "core/ooc_johnson.h"
#include "core/verify.h"
#include "graph/generators.h"
#include "test_util.h"

namespace gapsp::core {
namespace {

ApspOptions opts() {
  ApspOptions o;
  o.device = sim::DeviceSpec::v100_scaled(2u << 20);
  o.fw_tile = 32;
  return o;
}

TEST(Verify, PassesOnCorrectJohnsonResult) {
  const auto g = graph::make_erdos_renyi(150, 600, 911);
  auto store = make_ram_store(g.num_vertices());
  const auto r = ooc_johnson(g, opts(), *store);
  const auto rep = verify_result(g, *store, r);
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.mismatches, 0);
  EXPECT_GE(rep.rows_checked, 2);
  EXPECT_EQ(rep.entries_checked,
            static_cast<long long>(rep.rows_checked) * g.num_vertices());
  EXPECT_TRUE(rep.detail.empty());
}

TEST(Verify, PassesOnPermutedBoundaryResult) {
  const auto g = graph::make_road(14, 14, 912);
  auto store = make_ram_store(g.num_vertices());
  const auto r = ooc_boundary(g, opts(), *store);
  ASSERT_FALSE(r.perm.empty());
  EXPECT_TRUE(verify_result(g, *store, r).ok);
}

TEST(Verify, DetectsCorruptedEntry) {
  const auto g = graph::make_erdos_renyi(120, 500, 913);
  auto store = make_ram_store(g.num_vertices());
  const auto r = ooc_johnson(g, opts(), *store);
  // Corrupt one entry in row 0 (always sampled).
  const dist_t bogus = 123456;
  store->write_block(r.stored_id(0), r.stored_id(5), 1, 1, &bogus, 1);
  const auto rep = verify_result(g, *store, r);
  EXPECT_FALSE(rep.ok);
  EXPECT_GE(rep.mismatches, 1);
  EXPECT_NE(rep.detail.find("dist(0,5)"), std::string::npos);
}

TEST(Verify, DetectsNonZeroDiagonal) {
  const auto g = graph::make_erdos_renyi(80, 300, 914);
  auto store = make_ram_store(g.num_vertices());
  const auto r = ooc_johnson(g, opts(), *store);
  const dist_t bogus = 7;
  store->write_block(r.stored_id(0), r.stored_id(0), 1, 1, &bogus, 1);
  EXPECT_FALSE(verify_result(g, *store, r).ok);
}

TEST(Verify, SampleCountBounded) {
  const auto g = graph::make_erdos_renyi(50, 200, 915);
  auto store = make_ram_store(g.num_vertices());
  const auto r = ooc_johnson(g, opts(), *store);
  const auto rep = verify_result(g, *store, r, /*samples=*/1000);
  EXPECT_EQ(rep.rows_checked, 50);  // clamped at n
  EXPECT_TRUE(rep.ok);
}

}  // namespace
}  // namespace gapsp::core
