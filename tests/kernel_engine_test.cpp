// Kernel-engine equivalence suite (DESIGN.md §9).
//
// The contract under test: every microkernel variant and every grid-
// execution thread setting produces bit-identical distances AND an
// identical simulated timeline. The kernel engine is a host wall-clock
// optimization only — nothing observable through the simulator may move.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/apsp.h"
#include "core/device_kernels.h"
#include "core/kernel_engine.h"
#include "graph/generators.h"
#include "sim/trace.h"
#include "test_util.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace gapsp::core {
namespace {

using test::expect_store_matches_reference;
using test::tiny_device;

// The test container may expose a single hardware thread; force a real pool
// so the parallel grid path is actually exercised. Must run before the
// first ThreadPool::global() — a file-scope initializer precedes main().
[[maybe_unused]] const bool g_pool_env = [] {
  ::setenv("GAPSP_THREADS", "4", /*overwrite=*/0);
  return true;
}();

/// Every test leaves the process-wide engine config at its default.
class KernelEngineTest : public ::testing::Test {
 protected:
  void TearDown() override { set_kernel_config(KernelConfig{}); }
};

std::vector<dist_t> random_matrix(vidx_t rows, vidx_t cols,
                                  std::uint64_t seed, double p_inf) {
  Rng rng(seed);
  std::vector<dist_t> m(static_cast<std::size_t>(rows) * cols);
  for (auto& x : m) {
    x = rng.next_bool(p_inf) ? kInf
                             : static_cast<dist_t>(rng.next_in(1, 1000));
  }
  return m;
}

TEST_F(KernelEngineTest, VariantNamesRoundTrip) {
  for (const KernelVariant v :
       {KernelVariant::kAuto, KernelVariant::kNaive, KernelVariant::kTiled,
        KernelVariant::kTiledReg, KernelVariant::kSimd,
        KernelVariant::kTensor}) {
    EXPECT_EQ(parse_kernel_variant(kernel_variant_name(v)), v);
  }
  EXPECT_THROW(parse_kernel_variant("simd8"), Error);
  EXPECT_THROW(parse_kernel_variant("SIMD"), Error);
  EXPECT_THROW(parse_kernel_variant(""), Error);
}

TEST_F(KernelEngineTest, AutotunePicksConcreteVariant) {
  const KernelVariant v = autotune_kernel_variant();
  EXPECT_NE(v, KernelVariant::kAuto);
  // With the default (auto) config, dispatch must resolve to a concrete
  // variant as well, and cache it.
  EXPECT_NE(resolved_kernel_variant(), KernelVariant::kAuto);
  EXPECT_EQ(resolved_kernel_variant(), resolved_kernel_variant());
}

TEST_F(KernelEngineTest, AllVariantsBitIdenticalToNaive) {
  // Sizes straddle every blocking boundary: below one register block, below
  // one tile, exact tiles, one past, and ragged multiples. kInf density
  // exercises the hoisted dead-row skip.
  const vidx_t sizes[] = {1, 3, 17, 64, 65, 128, 193};
  for (const vidx_t nr : sizes) {
    for (const vidx_t nk : {sizes[1], sizes[3], sizes[6]}) {
      for (const vidx_t nc : sizes) {
        for (const double p_inf : {0.0, 0.3, 1.0}) {
          const std::uint64_t seed =
              static_cast<std::uint64_t>(nr) * 1000003 + nk * 1009 + nc;
          const auto a = random_matrix(nr, nk, seed, p_inf);
          const auto b = random_matrix(nk, nc, seed + 1, p_inf);
          const auto c0 = random_matrix(nr, nc, seed + 2, p_inf / 2);
          auto want = c0;
          minplus_accum_naive(want.data(), nc, a.data(), nk, b.data(), nc,
                              nr, nk, nc);
          for (const KernelVariant v :
               {KernelVariant::kTiled, KernelVariant::kTiledReg}) {
            auto got = c0;
            minplus_accum_variant(v, got.data(), nc, a.data(), nk, b.data(),
                                  nc, nr, nk, nc);
            ASSERT_EQ(got, want)
                << kernel_variant_name(v) << " diverges at " << nr << "x"
                << nk << "x" << nc << " p_inf=" << p_inf;
          }
        }
      }
    }
  }
}

TEST_F(KernelEngineTest, LaunchGridMatchesSerialLaunch) {
  // A grid launch must be indistinguishable from a serial launch on the
  // simulated timeline: same duration, same metrics, one trace event.
  auto run = [](bool grid, int threads, std::vector<int>* out,
                sim::TraceRecorder* trace) {
    sim::Device dev(tiny_device());
    dev.set_kernel_threads(threads);
    if (trace != nullptr) dev.set_trace(trace);
    sim::KernelProfile prof;
    prof.ops = 1e6;
    prof.bytes = 1e5;
    prof.blocks = 7;
    double dur;
    if (grid) {
      dur = dev.launch_grid(
          sim::kDefaultStream, "k", 7,
          [&](int b) { (*out)[static_cast<std::size_t>(b)] = b + 1; },
          [&] { return prof; });
    } else {
      dur = dev.launch(sim::kDefaultStream, "k", [&](sim::LaunchCtx&) {
        for (int b = 0; b < 7; ++b) (*out)[static_cast<std::size_t>(b)] = b + 1;
        return prof;
      });
    }
    dev.synchronize();
    return std::pair<double, sim::DeviceMetrics>(dur, dev.metrics());
  };
  std::vector<int> serial(7), grid1(7), gridN(7);
  sim::TraceRecorder trace;
  const auto [d_serial, m_serial] = run(false, 0, &serial, nullptr);
  const auto [d_grid1, m_grid1] = run(true, 1, &grid1, nullptr);
  const auto [d_gridN, m_gridN] = run(true, 0, &gridN, &trace);
  EXPECT_EQ(grid1, serial);
  EXPECT_EQ(gridN, serial);
  EXPECT_DOUBLE_EQ(d_grid1, d_serial);
  EXPECT_DOUBLE_EQ(d_gridN, d_serial);
  EXPECT_DOUBLE_EQ(m_grid1.sim_seconds, m_serial.sim_seconds);
  EXPECT_DOUBLE_EQ(m_gridN.sim_seconds, m_serial.sim_seconds);
  EXPECT_EQ(m_gridN.kernels, 1);
  ASSERT_EQ(trace.events().size(), 1u);
  EXPECT_EQ(trace.events()[0].kind, sim::TraceEvent::Kind::kKernel);
}

struct DevRun {
  std::vector<dist_t> result;
  double duration = 0.0;
  sim::DeviceMetrics metrics;
};

DevRun run_dev_minplus(KernelVariant v, int threads, int alias) {
  KernelConfig cfg;
  cfg.variant = v;
  cfg.threads = threads;
  set_kernel_config(cfg);
  const vidx_t n = 150;  // ragged against the 64-wide device tile
  sim::Device dev(tiny_device(8u << 20));
  dev.set_kernel_threads(threads);
  auto c = dev.alloc<dist_t>(static_cast<std::size_t>(n) * n, "c");
  auto o = dev.alloc<dist_t>(static_cast<std::size_t>(n) * n, "o");
  auto init_c = random_matrix(n, n, 11, 0.1);
  auto init_o = random_matrix(n, n, 12, 0.1);
  // The bit-exactness contract for the aliased (panel) forms requires the
  // non-aliased operand to be transitively closed — exactly what the FW
  // call sites guarantee (the diagonal block is closed before the panel
  // update). With a closed operand the result is the entry-wise min over a
  // fixed candidate set for every read interleaving. The fully self-aliased
  // form C = min(C, C⊗C) is only order-independent when C is closed (then
  // it is a fixed point), so close C too in that case.
  if (alias != 0) fw_inplace(init_o.data(), n, n);
  if (alias == 3) fw_inplace(init_c.data(), n, n);
  std::copy(init_c.begin(), init_c.end(), c.data());
  std::copy(init_o.begin(), init_o.end(), o.data());
  DevRun out;
  // alias: 0 = none (C = C ⊕ O⊗O), 1 = C==A (col-panel form),
  // 2 = C==B (row-panel form), 3 = both.
  const dist_t* a = alias == 1 || alias == 3 ? c.data() : o.data();
  const dist_t* b = alias == 2 || alias == 3 ? c.data() : o.data();
  out.duration = dev_minplus(dev, sim::kDefaultStream, c.data(), n, a, n, b,
                             n, n, n, n);
  dev.synchronize();
  out.result.assign(c.data(), c.data() + c.size());
  out.metrics = dev.metrics();
  return out;
}

TEST_F(KernelEngineTest, DevMinplusIdenticalAcrossVariantsAndThreads) {
  for (int alias = 0; alias < 4; ++alias) {
    const DevRun base = run_dev_minplus(KernelVariant::kNaive, 1, alias);
    for (const KernelVariant v :
         {KernelVariant::kNaive, KernelVariant::kTiled,
          KernelVariant::kTiledReg, KernelVariant::kSimd,
          KernelVariant::kTensor}) {
      for (const int threads : {1, 2, 0}) {
        const DevRun r = run_dev_minplus(v, threads, alias);
        ASSERT_EQ(r.result, base.result)
            << "alias=" << alias << " variant=" << kernel_variant_name(v)
            << " threads=" << threads;
        EXPECT_DOUBLE_EQ(r.duration, base.duration);
        EXPECT_DOUBLE_EQ(r.metrics.sim_seconds, base.metrics.sim_seconds);
        EXPECT_EQ(r.metrics.total_ops, base.metrics.total_ops);
      }
    }
  }
}

DevRun run_blocked_fw(KernelVariant v, int threads) {
  KernelConfig cfg;
  cfg.variant = v;
  cfg.threads = threads;
  set_kernel_config(cfg);
  const vidx_t n = 200;  // 4 ragged tiles per side at tile 64
  sim::Device dev(tiny_device(8u << 20));
  dev.set_kernel_threads(threads);
  auto m = dev.alloc<dist_t>(static_cast<std::size_t>(n) * n, "m");
  const auto init = random_matrix(n, n, 21, 0.4);
  std::copy(init.begin(), init.end(), m.data());
  DevRun out;
  out.duration = dev_blocked_fw(dev, sim::kDefaultStream, m.data(), n, n);
  dev.synchronize();
  out.result.assign(m.data(), m.data() + m.size());
  out.metrics = dev.metrics();
  return out;
}

TEST_F(KernelEngineTest, BlockedFwIdenticalAcrossVariantsAndThreads) {
  const DevRun base = run_blocked_fw(KernelVariant::kNaive, 1);
  for (const KernelVariant v :
       {KernelVariant::kNaive, KernelVariant::kTiled,
        KernelVariant::kTiledReg, KernelVariant::kSimd,
        KernelVariant::kTensor}) {
    for (const int threads : {1, 2, 0}) {
      const DevRun r = run_blocked_fw(v, threads);
      ASSERT_EQ(r.result, base.result)
          << "variant=" << kernel_variant_name(v) << " threads=" << threads;
      EXPECT_DOUBLE_EQ(r.duration, base.duration);
      EXPECT_DOUBLE_EQ(r.metrics.sim_seconds, base.metrics.sim_seconds);
      EXPECT_DOUBLE_EQ(r.metrics.kernel_seconds, base.metrics.kernel_seconds);
      EXPECT_EQ(r.metrics.kernels, base.metrics.kernels);
      EXPECT_EQ(r.metrics.total_ops, base.metrics.total_ops);
    }
  }
}

void expect_stores_identical(const DistStore& sa, const DistStore& sb) {
  ASSERT_EQ(sa.n(), sb.n());
  const vidx_t n = sa.n();
  std::vector<dist_t> a(static_cast<std::size_t>(n));
  std::vector<dist_t> b(static_cast<std::size_t>(n));
  for (vidx_t r = 0; r < n; ++r) {
    sa.read_block(r, 0, 1, n, a.data(), a.size());
    sb.read_block(r, 0, 1, n, b.data(), b.size());
    ASSERT_EQ(a, b) << "row " << r;
  }
}

class SolveParity : public ::testing::TestWithParam<Algorithm> {
 protected:
  void TearDown() override { set_kernel_config(KernelConfig{}); }
};

TEST_P(SolveParity, FullSolveIdenticalAcrossEngineSettings) {
  const auto road = graph::make_road(12, 12, 31);
  const auto rmat = graph::make_erdos_renyi(150, 900, 32);
  for (const auto* g : {&road, &rmat}) {
    ApspOptions opts;
    opts.device = tiny_device(512u << 10);
    opts.fw_tile = 32;
    opts.algorithm = GetParam();
    opts.kernel_variant = KernelVariant::kNaive;
    opts.kernel_threads = 1;
    auto s_base = make_ram_store(g->num_vertices());
    const auto base = solve_apsp(*g, opts, *s_base);
    EXPECT_EQ(base.metrics.kernel_variant, "naive");
    expect_store_matches_reference(*g, *s_base, base);

    for (const KernelVariant v :
         {KernelVariant::kTiled, KernelVariant::kTiledReg}) {
      for (const int threads : {1, 0}) {
        ApspOptions alt = opts;
        alt.kernel_variant = v;
        alt.kernel_threads = threads;
        auto s_alt = make_ram_store(g->num_vertices());
        const auto r = solve_apsp(*g, alt, *s_alt);
        ASSERT_EQ(r.perm, base.perm);
        EXPECT_DOUBLE_EQ(r.metrics.sim_seconds, base.metrics.sim_seconds);
        EXPECT_EQ(r.metrics.kernels, base.metrics.kernels);
        EXPECT_EQ(r.metrics.kernel_variant, kernel_variant_name(v));
        expect_stores_identical(*s_base, *s_alt);
      }
    }
  }
}

TEST_P(SolveParity, ChaosScheduleIdenticalAcrossEngineSettings) {
  // Fault gating happens at launch granularity, before the body runs —
  // identical launch sequences mean identical fault schedules, retries and
  // distances no matter how the blocks execute on the host.
  const auto g = graph::make_erdos_renyi(130, 700, 33);
  ApspOptions opts;
  opts.device = tiny_device(256u << 10);
  opts.fw_tile = 32;
  opts.algorithm = GetParam();
  sim::FaultPlan plan;
  plan.seed = 99;
  plan.p_kernel = 0.02;
  plan.p_h2d = 0.02;
  plan.p_d2h = 0.02;
  opts.faults = &plan;
  opts.retry.max_retries = 8;
  opts.kernel_variant = KernelVariant::kNaive;
  opts.kernel_threads = 1;
  auto s_base = make_ram_store(g.num_vertices());
  const auto base = solve_apsp(g, opts, *s_base);

  ApspOptions alt = opts;
  alt.kernel_variant = KernelVariant::kTiledReg;
  alt.kernel_threads = 0;
  auto s_alt = make_ram_store(g.num_vertices());
  const auto r = solve_apsp(g, alt, *s_alt);

  EXPECT_EQ(r.metrics.faults_injected, base.metrics.faults_injected);
  EXPECT_EQ(r.metrics.kernel_retries, base.metrics.kernel_retries);
  EXPECT_EQ(r.metrics.transfer_retries, base.metrics.transfer_retries);
  EXPECT_DOUBLE_EQ(r.metrics.sim_seconds, base.metrics.sim_seconds);
  expect_stores_identical(*s_base, *s_alt);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, SolveParity,
                         ::testing::Values(Algorithm::kBlockedFloydWarshall,
                                           Algorithm::kJohnson,
                                           Algorithm::kBoundary));

}  // namespace
}  // namespace gapsp::core
