#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "core/dist_store.h"

namespace gapsp::core {
namespace {

class DistStoreBackends
    : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<DistStore> make(vidx_t n) {
    if (std::string(GetParam()) == "ram") return make_ram_store(n);
    return make_file_store(
        n, testing::TempDir() + "/gapsp_store_test_" +
               std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".bin");
  }
};

TEST_P(DistStoreBackends, FreshStoreReadsInfinity) {
  auto s = make(4);
  EXPECT_EQ(s->at(0, 0), kInf);
  EXPECT_EQ(s->at(3, 3), kInf);
}

TEST_P(DistStoreBackends, WriteReadSingleBlock) {
  auto s = make(4);
  std::vector<dist_t> block{1, 2, 3, 4};
  s->write_block(1, 1, 2, 2, block.data(), 2);
  std::vector<dist_t> out(4, -1);
  s->read_block(1, 1, 2, 2, out.data(), 2);
  EXPECT_EQ(out, block);
  EXPECT_EQ(s->at(0, 0), kInf);  // untouched region
  EXPECT_EQ(s->at(1, 2), 2);
}

TEST_P(DistStoreBackends, StridedWriteAndRead) {
  auto s = make(5);
  // Source with ld=4, writing a 2x3 block.
  std::vector<dist_t> src{1, 2, 3, 99, 4, 5, 6, 99};
  s->write_block(2, 1, 2, 3, src.data(), 4);
  std::vector<dist_t> dst(10, -1);
  s->read_block(2, 1, 2, 3, dst.data(), 5);  // ld=5
  EXPECT_EQ(dst[0], 1);
  EXPECT_EQ(dst[2], 3);
  EXPECT_EQ(dst[5], 4);
  EXPECT_EQ(dst[7], 6);
  EXPECT_EQ(dst[3], -1);  // padding untouched
}

TEST_P(DistStoreBackends, OverlappingWritesLastWins) {
  auto s = make(3);
  std::vector<dist_t> a(9, 7);
  s->write_block(0, 0, 3, 3, a.data(), 3);
  std::vector<dist_t> b{42};
  s->write_block(1, 1, 1, 1, b.data(), 1);
  EXPECT_EQ(s->at(1, 1), 42);
  EXPECT_EQ(s->at(1, 0), 7);
}

TEST_P(DistStoreBackends, FullMatrixRoundTrip) {
  const vidx_t n = 17;
  auto s = make(n);
  std::vector<dist_t> m(static_cast<std::size_t>(n) * n);
  for (std::size_t i = 0; i < m.size(); ++i) m[i] = static_cast<dist_t>(i);
  s->write_block(0, 0, n, n, m.data(), n);
  std::vector<dist_t> out(m.size());
  s->read_block(0, 0, n, n, out.data(), n);
  EXPECT_EQ(out, m);
}

TEST_P(DistStoreBackends, RowWiseWritesComposeToFullMatrix) {
  const vidx_t n = 9;
  auto s = make(n);
  std::vector<dist_t> row(n);
  for (vidx_t r = 0; r < n; ++r) {
    for (vidx_t c = 0; c < n; ++c) row[c] = r * 100 + c;
    s->write_block(r, 0, 1, n, row.data(), n);
  }
  EXPECT_EQ(s->at(4, 7), 407);
  EXPECT_EQ(s->at(8, 0), 800);
}

TEST_P(DistStoreBackends, OutOfBoundsRejected) {
  auto s = make(4);
  std::vector<dist_t> b(16);
  EXPECT_THROW(s->write_block(3, 3, 2, 2, b.data(), 2), Error);
  EXPECT_THROW(s->read_block(0, 0, 5, 1, b.data(), 1), Error);
  EXPECT_THROW(s->write_block(-1, 0, 1, 1, b.data(), 1), Error);
}

INSTANTIATE_TEST_SUITE_P(Backends, DistStoreBackends,
                         ::testing::Values("ram", "file"),
                         [](const auto& info) { return std::string(info.param); });

TEST(DistStore, FileStoreBadPathThrows) {
  EXPECT_THROW(make_file_store(4, "/nonexistent-dir/x/y.bin"), Error);
}

TEST(DistStore, FileStoreErrorsAreTypedIoError) {
  // The distance matrix is the product of hours of simulated work; disk
  // failures must surface as the IoError subtype so callers can distinguish
  // "retry on another volume" from a logic bug.
  try {
    make_file_store(4, "/nonexistent-dir/x/y.bin");
    FAIL() << "expected IoError";
  } catch (const IoError&) {
  }
}

TEST(DistStore, ShortWriteSurfacesAsIoError) {
  // /dev/full accepts the open and fails every flush with ENOSPC — the
  // closest portable stand-in for a disk filling up mid-initialization.
  std::FILE* probe = std::fopen("/dev/full", "wb+");
  if (probe == nullptr) GTEST_SKIP() << "/dev/full not available";
  std::fclose(probe);
  try {
    // keep_file so the failure path does not try to unlink the device node.
    make_file_store(64, "/dev/full", /*keep_file=*/true);
    FAIL() << "expected IoError";
  } catch (const IoError&) {
  }
}

TEST(DistStore, FileRemovedByDefault) {
  const std::string path = testing::TempDir() + "/gapsp_store_rm.bin";
  {
    auto s = make_file_store(3, path);
    EXPECT_EQ(s->n(), 3);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_EQ(f, nullptr);
  if (f != nullptr) std::fclose(f);
}

TEST(DistStore, KeepFileLeavesRawMatrixOnDisk) {
  const std::string path = testing::TempDir() + "/gapsp_store_keep.bin";
  {
    auto s = make_file_store(3, path, /*keep_file=*/true);
    std::vector<dist_t> m(9);
    for (std::size_t i = 0; i < 9; ++i) m[i] = static_cast<dist_t>(i + 1);
    s->write_block(0, 0, 3, 3, m.data(), 3);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  dist_t v = 0;
  ASSERT_EQ(std::fread(&v, sizeof(v), 1, f), 1u);
  EXPECT_EQ(v, 1);
  std::fseek(f, 8 * sizeof(dist_t), SEEK_SET);
  ASSERT_EQ(std::fread(&v, sizeof(v), 1, f), 1u);
  EXPECT_EQ(v, 9);
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(DistStore, KeptFileIsAdoptedBySecondStore) {
  // Cross-process resume depends on this: a new FileStore over a kept file
  // of exactly the right size must see the prior store's contents instead
  // of truncating back to kInf.
  const std::string path = testing::TempDir() + "/gapsp_store_adopt.bin";
  {
    auto s = make_file_store(4, path, /*keep_file=*/true);
    std::vector<dist_t> m(16);
    for (std::size_t i = 0; i < 16; ++i) m[i] = static_cast<dist_t>(i + 10);
    s->write_block(0, 0, 4, 4, m.data(), 4);
  }
  {
    auto s = make_file_store(4, path, /*keep_file=*/true);
    for (vidx_t u = 0; u < 4; ++u) {
      for (vidx_t v = 0; v < 4; ++v) {
        EXPECT_EQ(s->at(u, v), static_cast<dist_t>(u * 4 + v + 10));
      }
    }
  }
  std::remove(path.c_str());
}

TEST(DistStore, WrongSizeFileIsReinitializedNotAdopted) {
  const std::string path = testing::TempDir() + "/gapsp_store_resize.bin";
  {
    auto s = make_file_store(2, path, /*keep_file=*/true);
    const dist_t d = 5;
    s->write_block(0, 0, 1, 1, &d, 1);
  }
  {
    // Different n: the leftover 2x2 file must not be adopted as a 3x3 store.
    auto s = make_file_store(3, path, /*keep_file=*/true);
    EXPECT_EQ(s->at(0, 0), kInf);
    EXPECT_EQ(s->at(2, 2), kInf);
  }
  std::remove(path.c_str());
}

TEST(DistStore, ZeroSizeStoreIsValid) {
  auto s = make_ram_store(0);
  EXPECT_EQ(s->n(), 0);
}

}  // namespace
}  // namespace gapsp::core
