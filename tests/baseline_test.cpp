#include <gtest/gtest.h>

#include <vector>

#include "baseline/baselines.h"
#include "graph/generators.h"
#include "sssp/dijkstra.h"
#include "test_util.h"

namespace gapsp::baseline {
namespace {

TEST(CpuSpec, PresetsSane) {
  const auto ivy = CpuSpec::e5_2680_v2();
  const auto haswell = CpuSpec::e5_2698_v3();
  EXPECT_EQ(ivy.threads, 28);
  EXPECT_EQ(haswell.threads, 64);
  EXPECT_GT(ivy.effective_threads(), 1.0);
  EXPECT_LT(ivy.effective_threads(), ivy.threads);
}

TEST(BglPlus, RowsMatchDijkstra) {
  const auto g = graph::make_road(12, 12, 111);
  auto store = core::make_ram_store(g.num_vertices());
  bgl_plus_apsp(g, CpuSpec::e5_2680_v2(), store.get());
  const vidx_t n = g.num_vertices();
  std::vector<dist_t> row(n);
  for (vidx_t u = 0; u < n; u += 13) {
    const auto ref = sssp::dijkstra(g, u);
    store->read_block(u, 0, 1, n, row.data(), n);
    ASSERT_EQ(row, ref);
  }
}

TEST(BglPlus, ModeledTimePositiveAndWorkBased) {
  const auto g = graph::make_mesh(300, 10, 112);
  const auto r = bgl_plus_apsp(g, CpuSpec::e5_2680_v2());
  EXPECT_GT(r.work_units, static_cast<double>(g.num_edges()));
  EXPECT_GT(r.sim_seconds, 0.0);
  EXPECT_GT(r.wall_seconds, 0.0);
}

TEST(BglPlus, MoreThreadsModeledFaster) {
  const auto g = graph::make_mesh(250, 10, 113);
  auto few = CpuSpec::e5_2680_v2();
  few.threads = 4;
  auto many = CpuSpec::e5_2680_v2();
  many.threads = 32;
  EXPECT_GT(bgl_plus_apsp(g, few).sim_seconds,
            bgl_plus_apsp(g, many).sim_seconds);
}

TEST(SuperFw, MatchesDijkstra) {
  const auto g = graph::make_erdos_renyi(100, 420, 114);
  auto store = core::make_ram_store(g.num_vertices());
  superfw_apsp(g, CpuSpec::e5_2698_v3(), store.get());
  const vidx_t n = g.num_vertices();
  std::vector<dist_t> row(n);
  for (vidx_t u = 0; u < n; u += 7) {
    const auto ref = sssp::dijkstra(g, u);
    store->read_block(u, 0, 1, n, row.data(), n);
    ASSERT_EQ(row, ref);
  }
}

TEST(SuperFw, ModelOnlyModeSkipsWork) {
  const auto g = graph::make_erdos_renyi(400, 1500, 115);
  const auto modeled = superfw_apsp(g, CpuSpec::e5_2698_v3(), nullptr,
                                    /*functional=*/false);
  EXPECT_GT(modeled.sim_seconds, 0.0);
  EXPECT_DOUBLE_EQ(modeled.work_units,
                   2.0 * 400.0 * 400.0 * 400.0);
}

TEST(SuperFw, ModeledTimeIsCubic) {
  const auto g1 = graph::make_erdos_renyi(100, 300, 116);
  const auto g2 = graph::make_erdos_renyi(200, 600, 116);
  const auto r1 = superfw_apsp(g1, CpuSpec::e5_2698_v3(), nullptr, false);
  const auto r2 = superfw_apsp(g2, CpuSpec::e5_2698_v3(), nullptr, false);
  EXPECT_NEAR(r2.sim_seconds / r1.sim_seconds, 8.0, 1e-9);
}

TEST(Galois, RowsMatchDijkstra) {
  const auto g = graph::make_rmat(7, 800, 117);
  auto store = core::make_ram_store(g.num_vertices());
  galois_apsp(g, CpuSpec::e5_2698_v3(), store.get());
  const vidx_t n = g.num_vertices();
  std::vector<dist_t> row(n);
  for (vidx_t u = 0; u < n; u += 11) {
    const auto ref = sssp::dijkstra(g, u);
    store->read_block(u, 0, 1, n, row.data(), n);
    ASSERT_EQ(row, ref);
  }
}

TEST(Galois, SlowerPerUnitThanBglOnSameGraph) {
  // Sanity of the Fig. 4 shape: delta-stepping bucket overhead makes the
  // Galois model slower than BGL-plus on sparse graphs (the paper reports
  // 79.9-152.6x for us vs Galois but only ~2-12x vs BGL-plus... relative
  // ordering Galois > BGL holds for these workloads).
  const auto g = graph::make_road(16, 16, 118);
  const auto bgl = bgl_plus_apsp(g, CpuSpec::e5_2680_v2());
  const auto gal = galois_apsp(g, CpuSpec::e5_2698_v3());
  EXPECT_GT(gal.sim_seconds, bgl.sim_seconds);
}

}  // namespace
}  // namespace gapsp::baseline
