// Property tests of the compute/transfer overlap engine: pipelining is a
// pure timeline optimization, so distances must be bit-identical with
// overlap on and off on any graph, the overlapped makespan may never exceed
// the serialized one on transfer-bound devices, and the pipeline must
// actually hide a substantial share of the transfer time (the paper's §IV
// claim that double buffering pays for itself).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/ooc_boundary.h"
#include "core/ooc_fw.h"
#include "core/ooc_johnson.h"
#include "graph/generators.h"
#include "test_util.h"

namespace gapsp::core {
namespace {

/// Host link slowed well below what the scaled device's kernels need: every
/// algorithm becomes transfer-bound, the regime where overlap matters.
ApspOptions transfer_bound_opts(bool overlap) {
  ApspOptions o;
  o.device = sim::DeviceSpec::v100_scaled();
  o.device.link_bandwidth /= 40.0;
  o.overlap_transfers = overlap;
  return o;
}

ApspOptions compute_bound_opts(bool overlap) {
  ApspOptions o;
  o.device = sim::DeviceSpec::v100_scaled();
  o.overlap_transfers = overlap;
  return o;
}

std::vector<dist_t> store_contents(const DistStore& store) {
  const vidx_t n = store.n();
  std::vector<dist_t> out(static_cast<std::size_t>(n) * n);
  store.read_block(0, 0, n, n, out.data(), static_cast<std::size_t>(n));
  return out;
}

using Runner = ApspResult (*)(const graph::CsrGraph&, const ApspOptions&,
                              DistStore&);

/// Runs `algo` with overlap on and off and asserts the stores match bit for
/// bit (dist_t is int32, so equality is exact, no tolerance).
void expect_bit_identical(Runner algo, const graph::CsrGraph& g,
                          const ApspOptions& base) {
  ApspOptions on = base;
  on.overlap_transfers = true;
  ApspOptions off = base;
  off.overlap_transfers = false;
  auto s_on = make_ram_store(g.num_vertices());
  auto s_off = make_ram_store(g.num_vertices());
  const ApspResult r_on = algo(g, on, *s_on);
  const ApspResult r_off = algo(g, off, *s_off);
  EXPECT_EQ(r_on.perm, r_off.perm);
  EXPECT_EQ(store_contents(*s_on), store_contents(*s_off));
}

TEST(OverlapBitIdentical, FloydWarshallAcrossGraphFamilies) {
  ApspOptions base;
  base.device = test::tiny_device();  // many blocks even at these sizes
  // Sparse, dense, and disconnected random graphs.
  expect_bit_identical(ooc_floyd_warshall,
                       graph::make_erdos_renyi(300, 1200, 11), base);
  expect_bit_identical(ooc_floyd_warshall, graph::make_dense(150, 40.0, 12),
                       base);
  expect_bit_identical(ooc_floyd_warshall,
                       graph::make_erdos_renyi(300, 150, 13), base);
}

TEST(OverlapBitIdentical, JohnsonAcrossGraphFamilies) {
  ApspOptions base;
  base.device = test::tiny_device();
  expect_bit_identical(ooc_johnson, graph::make_erdos_renyi(300, 1200, 21),
                       base);
  expect_bit_identical(ooc_johnson, graph::make_dense(150, 40.0, 22), base);
  expect_bit_identical(ooc_johnson, graph::make_erdos_renyi(300, 150, 23),
                       base);
}

TEST(OverlapBitIdentical, BoundaryOnSmallSeparatorGraph) {
  ApspOptions base;
  base.device = test::tiny_device(1u << 20);
  expect_bit_identical(
      [](const graph::CsrGraph& g, const ApspOptions& o, DistStore& s) {
        return ooc_boundary(g, o, s);
      },
      graph::make_road(18, 18, 31), base);
}

TEST(OverlapBitIdentical, OverlappedRunStillMatchesDijkstra) {
  // Belt and braces: the pipelined FW also agrees with the external oracle.
  const auto g = graph::make_erdos_renyi(200, 900, 41);
  ApspOptions opts;
  opts.device = test::tiny_device();
  opts.overlap_transfers = true;
  auto store = make_ram_store(g.num_vertices());
  const auto r = ooc_floyd_warshall(g, opts, *store);
  test::expect_store_matches_reference(g, *store, r);
}

TEST(OverlapNeverSlower, FwOnTransferBoundDevice) {
  const auto g = graph::make_erdos_renyi(1200, 6000, 51);
  auto s1 = make_ram_store(g.num_vertices());
  auto s2 = make_ram_store(g.num_vertices());
  const auto on = ooc_floyd_warshall(g, transfer_bound_opts(true), *s1);
  const auto off = ooc_floyd_warshall(g, transfer_bound_opts(false), *s2);
  EXPECT_LE(on.metrics.sim_seconds, off.metrics.sim_seconds);
}

TEST(OverlapNeverSlower, JohnsonOnTransferBoundDevice) {
  const auto g = graph::make_mesh(1500, 10, 52);
  auto s1 = make_ram_store(g.num_vertices());
  auto s2 = make_ram_store(g.num_vertices());
  const auto on = ooc_johnson(g, transfer_bound_opts(true), *s1);
  const auto off = ooc_johnson(g, transfer_bound_opts(false), *s2);
  EXPECT_LE(on.metrics.sim_seconds, off.metrics.sim_seconds);
}

TEST(OverlapSpeedup, FwGainsAtLeastTenPercentWhenTransferBound) {
  // The acceptance bar of the pipeline: on a transfer-bound device the
  // prefetching schedule must cut the OOC FW makespan by >= 10% while the
  // distances stay bit-identical. The win comes from the duplex lanes (H2D
  // and D2H proceed concurrently) plus prefetch under the min-plus kernels.
  // n is chosen so the five-resident-block volume tax does not change n_d;
  // when it does (e.g. n = 1500 on this spec), overlap can lose — which is
  // exactly what the overlapped cost model is for.
  const auto g = graph::make_erdos_renyi(1200, 7200, 61);
  auto s1 = make_ram_store(g.num_vertices());
  auto s2 = make_ram_store(g.num_vertices());
  const auto on = ooc_floyd_warshall(g, transfer_bound_opts(true), *s1);
  const auto off = ooc_floyd_warshall(g, transfer_bound_opts(false), *s2);
  const double gain = (off.metrics.sim_seconds - on.metrics.sim_seconds) /
                      off.metrics.sim_seconds;
  EXPECT_GE(gain, 0.10) << "overlapped " << on.metrics.sim_seconds
                        << "s vs serial " << off.metrics.sim_seconds << "s";
  EXPECT_EQ(store_contents(*s1), store_contents(*s2));
}

TEST(OverlapHides, FwHidesHalfOfMinComputeTransfer) {
  // Per the paper's overlap argument, a double-buffered pipeline should hide
  // on the order of min(T_compute, T_transfer); require at least half of it
  // to leave slack for the pipeline's fill/drain ends.
  const auto g = graph::make_erdos_renyi(1500, 9000, 62);
  auto store = make_ram_store(g.num_vertices());
  const auto r = ooc_floyd_warshall(g, transfer_bound_opts(true), *store);
  const auto& m = r.metrics;
  EXPECT_NEAR(m.hidden_transfer_seconds + m.exposed_transfer_seconds,
              m.transfer_seconds, m.transfer_seconds * 1e-9);
  EXPECT_GE(m.hidden_transfer_seconds,
            0.5 * std::min(m.kernel_seconds, m.transfer_seconds));
}

TEST(OverlapHides, SerialRunExposesEverything) {
  const auto g = graph::make_erdos_renyi(800, 4000, 63);
  auto store = make_ram_store(g.num_vertices());
  const auto r = ooc_floyd_warshall(g, transfer_bound_opts(false), *store);
  EXPECT_EQ(r.metrics.hidden_transfer_seconds, 0.0);
  EXPECT_NEAR(r.metrics.exposed_transfer_seconds,
              r.metrics.transfer_seconds,
              r.metrics.transfer_seconds * 1e-9);
}

TEST(OverlapHides, JohnsonHidesTransferUnderNextBatch) {
  // Compute-bound regime: every batch D2H except the last should vanish
  // under the next batch's MSSP kernel.
  const auto g = graph::make_mesh(1500, 10, 64);
  auto store = make_ram_store(g.num_vertices());
  const auto r = ooc_johnson(g, compute_bound_opts(true), *store);
  ASSERT_GT(r.metrics.johnson_num_batches, 2);
  EXPECT_GT(r.metrics.hidden_transfer_seconds, 0.0);
  EXPECT_GE(r.metrics.hidden_transfer_seconds,
            0.5 * std::min(r.metrics.kernel_seconds,
                           r.metrics.transfer_seconds));
}

TEST(OverlapAccounting, PinnedPeakReportedThroughApspMetrics) {
  const auto g = graph::make_erdos_renyi(600, 3000, 71);
  auto store = make_ram_store(g.num_vertices());
  const auto r = ooc_floyd_warshall(g, compute_bound_opts(true), *store);
  // Five resident blocks' worth of staging: col (1) + row (2) + tile (2).
  EXPECT_GT(r.metrics.pinned_peak_bytes, 0u);
  EXPECT_GT(r.metrics.device_peak_bytes, 0u);
}

}  // namespace
}  // namespace gapsp::core
