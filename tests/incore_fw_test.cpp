#include <gtest/gtest.h>

#include "core/incore_fw.h"
#include "core/ooc_fw.h"
#include "graph/generators.h"
#include "test_util.h"

namespace gapsp::core {
namespace {

ApspOptions opts(std::size_t mem = 1u << 20) {
  ApspOptions o;
  o.device = sim::DeviceSpec::v100_scaled(mem);
  o.fw_tile = 32;
  return o;
}

TEST(IncoreFw, FitsPredicate) {
  const auto spec = sim::DeviceSpec::v100_scaled(1u << 20);
  EXPECT_TRUE(incore_fw_fits(spec, 400));   // 640 KB
  EXPECT_FALSE(incore_fw_fits(spec, 600));  // 1.44 MB
}

TEST(IncoreFw, MatchesDijkstra) {
  const auto g = graph::make_erdos_renyi(200, 900, 501);
  auto store = make_ram_store(g.num_vertices());
  const auto r = incore_fw_apsp(g, opts(), *store);
  test::expect_store_matches_reference(g, *store, r);
}

TEST(IncoreFw, ThrowsWhenMatrixDoesNotFit) {
  const auto g = graph::make_erdos_renyi(600, 2000, 502);
  auto store = make_ram_store(g.num_vertices());
  auto o = opts();
  ASSERT_FALSE(incore_fw_fits(o.device, g.num_vertices()));
  EXPECT_THROW(incore_fw_apsp(g, o, *store), Error);
}

TEST(IncoreFw, ExactlyOneRoundTripOfTraffic) {
  const auto g = graph::make_erdos_renyi(180, 700, 503);
  auto store = make_ram_store(g.num_vertices());
  const auto r = incore_fw_apsp(g, opts(), *store);
  const std::size_t n2 = static_cast<std::size_t>(180) * 180 * sizeof(dist_t);
  EXPECT_EQ(r.metrics.bytes_h2d, n2);
  EXPECT_EQ(r.metrics.bytes_d2h, n2);
  EXPECT_EQ(r.metrics.transfers_h2d, 1);
  EXPECT_EQ(r.metrics.transfers_d2h, 1);
}

TEST(IncoreFw, LessTrafficThanOutOfCore) {
  // Same graph, same device: in-core moves the matrix once; the OOC version
  // moves it n_d times per round.
  const auto g = graph::make_erdos_renyi(400, 1600, 504);
  auto o_small = opts(256u << 10);  // forces OOC into several blocks
  auto o_large = opts(1u << 20);    // in-core fits
  auto s1 = make_ram_store(g.num_vertices());
  auto s2 = make_ram_store(g.num_vertices());
  const auto ooc = ooc_floyd_warshall(g, o_small, *s1);
  const auto inc = incore_fw_apsp(g, o_large, *s2);
  EXPECT_GT(ooc.metrics.bytes_d2h, inc.metrics.bytes_d2h);
  // Identical results either way.
  const vidx_t n = g.num_vertices();
  std::vector<dist_t> a(n), b(n);
  for (vidx_t u = 0; u < n; u += 37) {
    s1->read_block(u, 0, 1, n, a.data(), n);
    s2->read_block(u, 0, 1, n, b.data(), n);
    ASSERT_EQ(a, b);
  }
}

TEST(IncoreFw, DisconnectedGraph) {
  const auto g = graph::make_erdos_renyi(150, 100, 505, /*connect=*/false);
  auto store = make_ram_store(g.num_vertices());
  const auto r = incore_fw_apsp(g, opts(), *store);
  test::expect_store_matches_reference(g, *store, r);
}

}  // namespace
}  // namespace gapsp::core
