// CLI regression tests for the serving-flag validation matrix: contradictory
// shard/route/chaos combinations must exit 1 with a typed error (not crash,
// not silently serve the wrong thing), unknown flags exit 2, and the valid
// single-slice and routed paths exit 0. Drives the real apsp_cli binary.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace {

std::string cli_path() {
#ifdef GAPSP_CLI_PATH_FILE
  std::ifstream in(GAPSP_CLI_PATH_FILE);
  std::string path;
  if (in.good() && std::getline(in, path) && !path.empty()) return path;
#endif
  if (const char* env = std::getenv("GAPSP_CLI")) return env;
  return {};
}

/// Runs `apsp_cli <args>` with output discarded; returns the exit code
/// (-1 if the child did not exit normally).
int run_cli(const std::string& cli, const std::string& args) {
  const std::string cmd = cli + " " + args + " >/dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  if (status == -1 || !WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

class CliFlags : public ::testing::Test {
 protected:
  void SetUp() override {
    cli = cli_path();
    if (cli.empty()) {
      GTEST_SKIP() << "apsp_cli path unavailable (set GAPSP_CLI)";
    }
    store = ::testing::TempDir() + "gapsp_cli_flags.bin";
    // Raw kept store (n=64) sharded into 2 × 32 rows.
    ASSERT_EQ(run_cli(cli, "--generate road:8x8 --store file --store-path " +
                               store + " --keep-store --no-compress-store"),
              0);
    ASSERT_EQ(run_cli(cli, "shard --store-path " + store +
                               " --shards 2 --block 16"),
              0);
  }

  void TearDown() override {
    if (store.empty()) return;
    std::remove(store.c_str());
    std::remove((store + ".shards").c_str());
    std::remove((store + ".shard.0").c_str());
    std::remove((store + ".shard.1").c_str());
    std::remove((store + ".sum").c_str());
    std::remove((store + ".cal").c_str());
  }

  std::string q(const std::string& flags) {
    return "query --store-path " + store + " " + flags;
  }

  std::string cli;
  std::string store;
};

TEST_F(CliFlags, ValidServingModesExitZero) {
  EXPECT_EQ(run_cli(cli, q("--point 0,63")), 0);
  EXPECT_EQ(run_cli(cli, q("--shard 0 --point 5,63")), 0);
  EXPECT_EQ(run_cli(cli, q("--shard 1 --row 40")), 0);
  EXPECT_EQ(run_cli(cli, q("--route local --point 0,63 --row 40")), 0);
  EXPECT_EQ(run_cli(cli, q("--route process --point 0,63 --row 40")), 0);
}

TEST_F(CliFlags, ContradictoryServingFlagsExitOne) {
  // --shard serves one slice; --route reaches all of them.
  EXPECT_EQ(run_cli(cli, q("--shard 0 --route local --point 0,1")), 1);
  EXPECT_EQ(run_cli(cli, q("--shard 0 --route process --point 0,1")), 1);
  // --kill-worker only makes sense with worker processes.
  EXPECT_EQ(run_cli(cli, q("--kill-worker 0:1 --point 0,1")), 1);
  EXPECT_EQ(run_cli(cli, q("--route local --kill-worker 0:1 --point 0,1")),
            1);
  // Online repair and single-engine chaos cannot cross the router.
  EXPECT_EQ(run_cli(cli, q("--route local --repair recompute --generate "
                           "road:8x8 --point 0,1")),
            1);
  EXPECT_EQ(run_cli(cli, q("--route process --fault-store-read 0.5 "
                           "--point 0,1")),
            1);
  // --no-verify-shard without any shard serving mode.
  EXPECT_EQ(run_cli(cli, q("--no-verify-shard --point 0,1")), 1);
  // Unknown route name.
  EXPECT_EQ(run_cli(cli, q("--route remote --point 0,1")), 1);
}

TEST_F(CliFlags, QueriesRoutingOutsideTheSliceExitOne) {
  // Shard 0 owns rows [0, 32): a point or row query outside it is a typed
  // usage error, not "unreachable".
  EXPECT_EQ(run_cli(cli, q("--shard 0 --point 40,1")), 1);
  EXPECT_EQ(run_cli(cli, q("--shard 0 --row 32")), 1);
  EXPECT_EQ(run_cli(cli, q("--shard 1 --point 0,1")), 1);
  // Mixed in/out batches fail too — no partial serving of a misrouted batch.
  EXPECT_EQ(run_cli(cli, q("--shard 1 --point '40,1;5,2'")), 1);
  // Shard index out of range.
  EXPECT_EQ(run_cli(cli, q("--shard 2 --point 0,1")), 1);
  EXPECT_EQ(run_cli(cli, q("--shard -1 --point 0,1")), 1);
}

TEST_F(CliFlags, UnknownFlagsExitTwo) {
  EXPECT_EQ(run_cli(cli, q("--point 0,1 --bogus-flag 3")), 2);
  EXPECT_EQ(run_cli(cli, "shard --store-path " + store + " --route local"),
            2);
  EXPECT_EQ(run_cli(cli, "serve --store-path " + store + " --point 0,1"), 2);
}

TEST_F(CliFlags, ServeRequiresAShard) {
  EXPECT_EQ(run_cli(cli, "serve --store-path " + store + " </dev/null"), 1);
}

TEST_F(CliFlags, RoutedQueryWithoutManifestExitsOne) {
  const std::string bare = ::testing::TempDir() + "gapsp_cli_bare.bin";
  ASSERT_EQ(run_cli(cli, "--generate road:8x8 --store file --store-path " +
                             bare + " --keep-store --no-compress-store"),
            0);
  EXPECT_EQ(run_cli(cli, "query --store-path " + bare +
                             " --route local --point 0,1"),
            1);
  EXPECT_EQ(run_cli(cli,
                    "query --store-path " + bare + " --shard 0 --point 0,1"),
            1);
  std::remove(bare.c_str());
  std::remove((bare + ".sum").c_str());
  std::remove((bare + ".cal").c_str());
}

TEST_F(CliFlags, KilledWorkerStillExitsZeroWithTypedDegradation) {
  // Degradation is visible but non-fatal: the batch completes and the
  // process exits 0 even when a worker was killed mid-request.
  EXPECT_EQ(run_cli(cli, q("--route process --kill-worker 1:1 "
                           "--worker-retries 0 --point 0,1 --row 40")),
            0);
}

}  // namespace
