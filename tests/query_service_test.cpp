// Query-service coverage: the block cache's LRU/counter semantics, the
// QueryEngine against DistStore::at() as the oracle (including permuted
// boundary solves and file-backed stores opened read-only), and the
// open_file_store entry point's validation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "core/apsp.h"
#include "core/compressed_store.h"
#include "graph/generators.h"
#include "service/query_engine.h"
#include "test_util.h"
#include "util/rng.h"

namespace gapsp::service {
namespace {

using core::DistStore;

BlockData make_block(std::size_t elems, dist_t fill) {
  return std::make_shared<const std::vector<dist_t>>(elems, fill);
}

TEST(BlockCache, HitMissCounters) {
  BlockCache cache(1u << 20, /*shards=*/2);
  int loads = 0;
  auto loader = [&] {
    ++loads;
    return make_block(16, 7);
  };
  const auto a = cache.get_or_load(0, 0, loader);
  const auto b = cache.get_or_load(0, 0, loader);
  EXPECT_EQ(loads, 1);
  EXPECT_EQ(a.get(), b.get());
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.evictions, 0);
  EXPECT_EQ(s.bytes_cached, 16 * sizeof(dist_t));
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.5);
}

TEST(BlockCache, EvictsLeastRecentlyUsedUnderByteBudget) {
  // One shard, room for exactly two 64-element blocks.
  BlockCache cache(2 * 64 * sizeof(dist_t), /*shards=*/1);
  auto load = [](dist_t v) { return [v] { return make_block(64, v); }; };
  cache.get_or_load(0, 0, load(0));
  cache.get_or_load(0, 1, load(1));
  cache.get_or_load(0, 0, load(0));   // touch (0,0): (0,1) is now LRU
  cache.get_or_load(0, 2, load(2));   // evicts (0,1)
  int reloaded = 0;
  cache.get_or_load(0, 0, [&] { ++reloaded; return make_block(64, 0); });
  cache.get_or_load(0, 2, [&] { ++reloaded; return make_block(64, 2); });
  EXPECT_EQ(reloaded, 0);  // survivors still cached
  cache.get_or_load(0, 1, [&] { ++reloaded; return make_block(64, 1); });
  EXPECT_EQ(reloaded, 1);  // the LRU victim was really gone
  EXPECT_GE(cache.stats().evictions, 1);
}

TEST(BlockCache, OversizedSingleBlockStillServed) {
  // A block larger than a whole shard's budget must be served (and counted),
  // not thrashed into an infinite load loop.
  BlockCache cache(32 * sizeof(dist_t), /*shards=*/1);
  const auto big = cache.get_or_load(0, 0, [] { return make_block(4096, 9); });
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(big->size(), 4096u);
  // The just-inserted entry is kept even though it exceeds the budget.
  int reloaded = 0;
  cache.get_or_load(0, 0, [&] { ++reloaded; return make_block(4096, 9); });
  EXPECT_EQ(reloaded, 0);
}

TEST(BlockCache, EvictionKeepsDataAliveForHolders) {
  BlockCache cache(64 * sizeof(dist_t), /*shards=*/1);
  const auto held = cache.get_or_load(0, 0, [] { return make_block(64, 3); });
  cache.get_or_load(0, 1, [] { return make_block(64, 4); });  // evicts (0,0)
  // The shared_ptr we still hold is untouched by the eviction.
  EXPECT_EQ(held->at(0), 3);
  EXPECT_EQ(held->size(), 64u);
}

TEST(BlockCache, ClearDropsEntriesKeepsCounters) {
  BlockCache cache(1u << 20, 4);
  cache.get_or_load(1, 2, [] { return make_block(8, 1); });
  cache.get_or_load(1, 2, [] { return make_block(8, 1); });
  cache.clear();
  auto s = cache.stats();
  EXPECT_EQ(s.bytes_cached, 0u);
  EXPECT_EQ(s.hits, 1);
  int reloaded = 0;
  cache.get_or_load(1, 2, [&] { ++reloaded; return make_block(8, 1); });
  EXPECT_EQ(reloaded, 1);
}

/// Solves a graph and returns (store, result) for engine tests.
struct Solved {
  std::unique_ptr<DistStore> store;
  core::ApspResult result;
};

Solved solve(const graph::CsrGraph& g, core::Algorithm algo) {
  core::ApspOptions o;
  o.device = sim::DeviceSpec::v100_scaled(2u << 20);
  o.fw_tile = 32;
  o.algorithm = algo;
  Solved s;
  s.store = core::make_ram_store(g.num_vertices());
  s.result = core::solve_apsp(g, o, *s.store);
  return s;
}

TEST(QueryEngine, PointAndRowMatchStore) {
  const auto g = graph::make_road(12, 12, 501);
  const auto s = solve(g, core::Algorithm::kJohnson);
  QueryEngineOptions opt;
  opt.block_size = 37;  // force ragged multi-tile coverage
  opt.cache_bytes = 1u << 20;
  const QueryEngine engine(*s.store, opt, s.result.perm);
  Rng rng(11);
  const vidx_t n = g.num_vertices();
  for (int t = 0; t < 200; ++t) {
    const auto u = static_cast<vidx_t>(rng.next_below(n));
    const auto v = static_cast<vidx_t>(rng.next_below(n));
    EXPECT_EQ(engine.point(u, v),
              s.store->at(s.result.stored_id(u), s.result.stored_id(v)));
  }
  const vidx_t u = 5;
  const auto row = engine.row(u);
  ASSERT_EQ(row.size(), static_cast<std::size_t>(n));
  for (vidx_t v = 0; v < n; ++v) {
    EXPECT_EQ(row[v],
              s.store->at(s.result.stored_id(u), s.result.stored_id(v)));
  }
}

TEST(QueryEngine, PermutedBoundarySolveAnswersInOriginalIds) {
  // The boundary algorithm relabels vertices; the engine must translate so
  // callers query in the graph's own ids.
  const auto g = graph::make_road(14, 14, 502);
  const auto s = solve(g, core::Algorithm::kBoundary);
  ASSERT_FALSE(s.result.perm.empty());  // the permutation is real here
  QueryEngineOptions opt;
  opt.block_size = 64;
  const QueryEngine engine(*s.store, opt, s.result.perm);
  const vidx_t n = g.num_vertices();
  Rng rng(12);
  for (int t = 0; t < 100; ++t) {
    const auto u = static_cast<vidx_t>(rng.next_below(n));
    const auto ref = test::ref_row(g, u);
    const auto v = static_cast<vidx_t>(rng.next_below(n));
    EXPECT_EQ(engine.point(u, v), ref[v]);
  }
  const auto row = engine.row(3);
  const auto ref = test::ref_row(g, 3);
  for (vidx_t v = 0; v < n; ++v) EXPECT_EQ(row[v], ref[v]);
}

TEST(QueryEngine, BlockReadsStoredTile) {
  const auto g = graph::make_mesh(90, 6, 503);
  const auto s = solve(g, core::Algorithm::kJohnson);
  QueryEngineOptions opt;
  opt.block_size = 32;
  const QueryEngine engine(*s.store, opt, s.result.perm);
  // A tile straddling four cache blocks, ragged at the matrix edge.
  const vidx_t row0 = 25, col0 = 17, rows = 40, cols = 50;
  std::vector<dist_t> got(static_cast<std::size_t>(rows) * cols, -1);
  engine.block(row0, col0, rows, cols, got.data(), cols);
  std::vector<dist_t> want(got.size(), -2);
  s.store->read_block(row0, col0, rows, cols, want.data(), cols);
  EXPECT_EQ(got, want);
}

TEST(QueryEngine, WarmBatchHitsCacheOnly) {
  const auto g = graph::make_road(10, 10, 504);
  const auto s = solve(g, core::Algorithm::kJohnson);
  const QueryEngine engine(*s.store, {}, s.result.perm);
  std::vector<Query> qs;
  Rng rng(13);
  for (int i = 0; i < 300; ++i) {
    qs.push_back({QueryKind::kPoint, static_cast<vidx_t>(rng.next_below(100)),
                  static_cast<vidx_t>(rng.next_below(100))});
  }
  qs.push_back({QueryKind::kRow, 7, 0});
  const auto cold = engine.run_batch(qs);
  const auto warm = engine.run_batch(qs);
  EXPECT_EQ(warm.cache.misses, cold.cache.misses);  // nothing new loaded
  EXPECT_GT(warm.cache.hits, cold.cache.hits);
  EXPECT_EQ(warm.results.size(), qs.size());
  EXPECT_GT(warm.qps, 0.0);
  EXPECT_EQ(warm.latency.count, qs.size());
  EXPECT_GE(warm.latency.p95_s, warm.latency.p50_s);
  EXPECT_GE(warm.latency.max_s, warm.latency.p95_s);
  // Batch results equal direct calls, in input order.
  for (std::size_t i = 0; i + 1 < qs.size(); ++i) {
    EXPECT_EQ(warm.results[i].dist, engine.point(qs[i].u, qs[i].v));
  }
  EXPECT_EQ(warm.results.back().row, engine.row(7));
}

TEST(QueryEngine, ConcurrentBatchUnderTinyCacheMatchesStore) {
  // A cache far smaller than the matrix forces constant eviction while the
  // pool fans out; answers must still match the store exactly.
  const auto g = graph::make_mesh(150, 5, 505);
  const auto s = solve(g, core::Algorithm::kJohnson);
  QueryEngineOptions opt;
  opt.block_size = 24;
  opt.cache_bytes = 4 * 24 * 24 * sizeof(dist_t);  // ~4 tiles
  opt.cache_shards = 2;
  const QueryEngine engine(*s.store, opt, s.result.perm);
  std::vector<Query> qs;
  Rng rng(14);
  const vidx_t n = g.num_vertices();
  for (int i = 0; i < 1500; ++i) {
    qs.push_back({QueryKind::kPoint, static_cast<vidx_t>(rng.next_below(n)),
                  static_cast<vidx_t>(rng.next_below(n))});
  }
  const auto rep = engine.run_batch(qs);
  EXPECT_GT(rep.cache.evictions, 0);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    ASSERT_EQ(rep.results[i].dist,
              s.store->at(s.result.stored_id(qs[i].u),
                          s.result.stored_id(qs[i].v)))
        << "query " << i;
  }
}

TEST(QueryService, FileStoreEndToEnd) {
  // Solve into a kept file store, reopen it read-only via open_file_store,
  // and serve queries — the CLI's exact flow.
  const std::string path = "query_service_e2e.bin";
  const auto g = graph::make_road(11, 11, 506);
  const vidx_t n = g.num_vertices();
  core::ApspOptions o;
  o.device = sim::DeviceSpec::v100_scaled(2u << 20);
  o.fw_tile = 32;
  o.algorithm = core::Algorithm::kJohnson;
  core::ApspResult result;
  {
    auto store = core::make_file_store(n, path, /*keep_file=*/true);
    result = core::solve_apsp(g, o, *store);
  }  // store closed; file kept
  auto reopened = core::open_file_store(path);
  ASSERT_EQ(reopened->n(), n);
  QueryEngineOptions opt;
  opt.block_size = 48;
  const QueryEngine engine(*reopened, opt, result.perm);
  Rng rng(15);
  for (int t = 0; t < 150; ++t) {
    const auto u = static_cast<vidx_t>(rng.next_below(n));
    const auto ref = test::ref_row(g, u);
    const auto v = static_cast<vidx_t>(rng.next_below(n));
    ASSERT_EQ(engine.point(u, v), ref[v]) << u << "," << v;
  }
  std::remove(path.c_str());
}

TEST(QueryService, OpenFileStoreRejectsMissingAndMisSized) {
  EXPECT_THROW(core::open_file_store("no_such_store_file.bin"), IoError);
  const std::string path = "query_service_badsize.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    // 7 dist_t elements: not a square matrix of any integer dimension.
    const dist_t junk[7] = {};
    std::fwrite(junk, sizeof(dist_t), 7, f);
    std::fclose(f);
  }
  EXPECT_THROW(core::open_file_store(path), IoError);
  std::remove(path.c_str());
}

TEST(BlockCache, NegativeTileEntriesChargeNoBytes) {
  // Budget fits exactly one real 16-element block; the shared all-kInf
  // tile is far larger, yet caching it must cost nothing and never evict.
  BlockCache cache(16 * sizeof(dist_t), /*shards=*/1);
  const auto inf = make_block(1024, kInf);
  cache.set_negative_tile(inf);
  int neg_loads = 0;
  auto neg_loader = [&] {
    ++neg_loads;
    return inf;
  };
  const auto a = cache.get_or_load(0, 0, neg_loader);
  EXPECT_EQ(a.get(), inf.get());
  cache.get_or_load(0, 0, neg_loader);  // now a hit
  EXPECT_EQ(neg_loads, 1);
  cache.get_or_load(5, 5, [] { return make_block(16, 3); });
  // A flood of negative tiles must not push the real block out.
  for (vidx_t i = 1; i < 40; ++i) cache.get_or_load(i, 0, neg_loader);
  int reloaded = 0;
  cache.get_or_load(5, 5, [&] {
    ++reloaded;
    return make_block(16, 3);
  });
  EXPECT_EQ(reloaded, 0);
  const auto s = cache.stats();
  EXPECT_EQ(s.negative_loads, 40);
  EXPECT_EQ(s.bytes_cached, 16 * sizeof(dist_t));
  EXPECT_EQ(s.evictions, 0);
}

TEST(QueryEngine, NegativeTilesServeDisconnectedRegionsAtZeroCost) {
  // Two disjoint line components over a raw RAM store: the engine's
  // scan-on-load path must collapse every cross-component tile to the
  // shared all-kInf tile instead of spending cache budget on it.
  std::vector<graph::Edge> edges;
  const vidx_t half = 60;
  for (vidx_t v = 0; v + 1 < half; ++v) {
    edges.push_back({v, v + 1, 2});
    edges.push_back({half + v, half + v + 1, 3});
  }
  const auto g = graph::CsrGraph::from_edges(2 * half, std::move(edges), true);
  const auto s = solve(g, core::Algorithm::kJohnson);
  QueryEngineOptions opt;
  opt.block_size = 30;  // cross-component tiles are pure kInf
  const QueryEngine engine(*s.store, opt, s.result.perm);
  for (vidx_t u = 0; u < half; u += 11) {
    for (vidx_t v = half; v < 2 * half; v += 13) {
      ASSERT_EQ(engine.point(u, v), kInf);
      ASSERT_EQ(engine.point(v, u), kInf);
    }
  }
  const auto cs = engine.cache_stats();
  EXPECT_GT(cs.negative_loads, 0);
  EXPECT_EQ(cs.bytes_cached, 0u);  // only all-kInf tiles were touched
}

TEST(QueryEngine, CompressedStoreServesIdenticalAnswers) {
  // Solve → compress → serve: the engine snaps its grid to the stored
  // tiling and must answer exactly like the raw store, point and row.
  const auto g = graph::make_road(13, 12, 507);
  const auto s = solve(g, core::Algorithm::kBoundary);
  const std::string zpath = ::testing::TempDir() + "gapsp_query_z.bin";
  const auto cstats = core::write_compressed_store(*s.store, zpath,
                                                   /*tile=*/40);
  EXPECT_GT(cstats.ratio(), 1.0);
  const auto z = core::open_store(zpath);
  QueryEngineOptions opt;
  opt.block_size = 64;  // deliberately misaligned: the engine must snap
  const QueryEngine raw(*s.store, {}, s.result.perm);
  const QueryEngine zq(*z, opt, s.result.perm);
  std::vector<Query> qs;
  Rng rng(16);
  const vidx_t n = g.num_vertices();
  for (int i = 0; i < 400; ++i) {
    qs.push_back({QueryKind::kPoint, static_cast<vidx_t>(rng.next_below(n)),
                  static_cast<vidx_t>(rng.next_below(n))});
  }
  qs.push_back({QueryKind::kRow, 9, 0});
  const auto want = raw.run_batch(qs);
  const auto got = zq.run_batch(qs);
  ASSERT_EQ(got.results.size(), want.results.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    ASSERT_EQ(got.results[i].dist, want.results[i].dist) << "query " << i;
    ASSERT_EQ(got.results[i].row, want.results[i].row) << "query " << i;
  }
  std::remove(zpath.c_str());
}

TEST(BlockCache, ByteBudgetDistributesDivisionRemainder) {
  // Regression: the per-shard budget used to be the truncating
  // capacity/shards, silently dropping capacity%shards bytes — with small
  // budgets and many shards most of the configured capacity vanished.
  // 60 bytes over 8 shards truncated to 7 bytes/shard, so no shard could
  // ever hold two 4-byte tiles: at most 8 × 4 = 32 bytes cached. With the
  // remainder spread to the leading shards (4 shards of 8 bytes, 4 of 7),
  // half the shards hold two tiles and a full sweep settles above 32.
  BlockCache cache(60, /*shards=*/8);
  for (vidx_t i = 0; i < 400; ++i) {
    cache.get_or_load(i, i, [] { return make_block(1, 1); });
  }
  const auto s = cache.stats();
  EXPECT_GT(s.bytes_cached, 32u);   // pre-fix ceiling
  EXPECT_LE(s.bytes_cached, 60u);   // never above the configured budget
}

TEST(BlockCache, TinyBudgetStillServesEveryShard) {
  // capacity < shards: every shard's budget rounds to 0 or 1 byte; each
  // still keeps its most recent (oversized) block instead of thrashing.
  BlockCache cache(3, /*shards=*/8);
  for (vidx_t i = 0; i < 64; ++i) {
    const auto b = cache.get_or_load(i, 0, [] { return make_block(4, 2); });
    ASSERT_NE(b, nullptr);
    int reloaded = 0;
    cache.get_or_load(i, 0, [&] { ++reloaded; return make_block(4, 2); });
    EXPECT_EQ(reloaded, 0) << "block " << i << " not retained";
  }
}

TEST(LatencyStats, PercentileInterpolatesBetweenRanks) {
  // Regression: percentile() used nearest-rank (llround(q·(n−1))), so with
  // few samples p95 collapsed onto the max and p50 onto an arbitrary
  // neighbor. Linear interpolation gives the textbook values.
  const std::vector<double> four = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(latency_percentile(four, 0.50), 2.5);   // was 3
  EXPECT_DOUBLE_EQ(latency_percentile(four, 0.95), 3.85);  // was 4 == max
  EXPECT_DOUBLE_EQ(latency_percentile(four, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(latency_percentile(four, 1.0), 4.0);
  std::vector<double> ten;
  for (int i = 1; i <= 10; ++i) ten.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(latency_percentile(ten, 0.95), 9.55);
  EXPECT_DOUBLE_EQ(latency_percentile(ten, 0.25), 3.25);
  EXPECT_DOUBLE_EQ(latency_percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(latency_percentile({7.0}, 0.95), 7.0);
}

TEST(QueryService, ReadOnlyStoreRejectsWrites) {
  const std::string path = "query_service_ro.bin";
  {
    auto store = core::make_file_store(4, path, /*keep_file=*/true);
    std::vector<dist_t> row(4, 1);
    for (vidx_t r = 0; r < 4; ++r) {
      store->write_block(r, 0, 1, 4, row.data(), 4);
    }
  }
  auto ro = core::open_file_store(path);
  EXPECT_EQ(ro->at(2, 3), 1);
  dist_t one = 5;
  EXPECT_THROW(ro->write_block(0, 0, 1, 1, &one, 1), IoError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gapsp::service
