// IncrementalEngine correctness: bit-parity against a from-scratch solve on
// every graph × update-pattern cell, kill-mid-update resume, threshold
// fallback, permuted layouts, and the QueryEngine::apply_updates serving
// path. The oracle is a Dijkstra sweep over the updated graph — the same
// master oracle the solver tests use.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "core/checkpoint.h"
#include "core/compressed_store.h"
#include "core/cost_model.h"
#include "core/incremental.h"
#include "core/tile_error.h"
#include "graph/generators.h"
#include "sim/device_spec.h"
#include "sssp/dijkstra.h"
#include "service/query_engine.h"
#include "test_util.h"
#include "util/rng.h"

namespace gapsp {
namespace {

using core::DistStore;
using core::EdgeUpdate;
using core::IncrementalEngine;
using core::IncrementalOptions;
using core::UpdateOutcome;
using graph::CsrGraph;

// Exact APSP by Dijkstra sweep, written in stored order (perm[v] = stored
// id, empty = identity).
void fill_exact(const CsrGraph& g, DistStore& store,
                const std::vector<vidx_t>& perm = {}) {
  const vidx_t n = g.num_vertices();
  std::vector<dist_t> by_vertex(static_cast<std::size_t>(n));
  std::vector<dist_t> row(static_cast<std::size_t>(n));
  for (vidx_t u = 0; u < n; ++u) {
    sssp::dijkstra_into(g, u, by_vertex);
    const vidx_t su = perm.empty() ? u : perm[static_cast<std::size_t>(u)];
    if (perm.empty()) {
      store.write_block(su, 0, 1, n, by_vertex.data(),
                        static_cast<std::size_t>(n));
    } else {
      for (vidx_t v = 0; v < n; ++v) {
        row[perm[static_cast<std::size_t>(v)]] =
            by_vertex[static_cast<std::size_t>(v)];
      }
      store.write_block(su, 0, 1, n, row.data(), static_cast<std::size_t>(n));
    }
  }
}

void expect_stores_equal(const DistStore& got, const DistStore& want) {
  const vidx_t n = got.n();
  ASSERT_EQ(n, want.n());
  std::vector<dist_t> a(static_cast<std::size_t>(n));
  std::vector<dist_t> b(static_cast<std::size_t>(n));
  for (vidx_t i = 0; i < n; ++i) {
    got.read_block(i, 0, 1, n, a.data(), a.size());
    want.read_block(i, 0, 1, n, b.data(), b.size());
    ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(dist_t)))
        << "row " << i << " differs";
  }
}

enum class Pattern { kDecrease, kIncrease, kMixed, kDeleteInsert };

std::vector<EdgeUpdate> make_batch(const CsrGraph& g, Pattern pattern,
                                   std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  const vidx_t n = g.num_vertices();
  std::vector<EdgeUpdate> batch;
  while (batch.size() < count) {
    const auto u = static_cast<vidx_t>(rng.next_below(n));
    const auto nbrs = g.neighbors(u);
    const auto ws = g.weights(u);
    const bool want_decrease =
        pattern == Pattern::kDecrease ||
        (pattern == Pattern::kMixed && rng.next_below(2) == 0);
    if (pattern == Pattern::kDeleteInsert) {
      if (rng.next_below(2) == 0 && !nbrs.empty()) {
        const auto e = rng.next_below(nbrs.size());
        batch.push_back({u, nbrs[e], kInf});  // delete
      } else {
        const auto v = static_cast<vidx_t>(rng.next_below(n));
        if (v == u) continue;
        batch.push_back(
            {u, v, static_cast<dist_t>(1 + rng.next_below(40))});  // insert
      }
      continue;
    }
    if (nbrs.empty()) continue;
    const auto e = rng.next_below(nbrs.size());
    const dist_t w = ws[e];
    if (want_decrease) {
      if (w <= 1) continue;
      batch.push_back(
          {u, nbrs[e], static_cast<dist_t>(rng.next_below(
                           static_cast<std::uint64_t>(w)))});  // [0, w)
    } else {
      batch.push_back(
          {u, nbrs[e],
           static_cast<dist_t>(w + 1 + rng.next_below(60))});  // grow
    }
  }
  return batch;
}

struct Cell {
  const char* graph;
  CsrGraph g;
};

std::vector<Cell> parity_graphs() {
  std::vector<Cell> cells;
  cells.push_back({"road", graph::make_road(12, 10, 7)});
  cells.push_back({"er", graph::make_erdos_renyi(130, 420, 11)});
  cells.push_back({"mesh", graph::make_mesh(110, 6, 13)});
  return cells;
}

void run_parity(Pattern pattern, std::size_t count) {
  for (auto& cell : parity_graphs()) {
    for (std::uint64_t seed : {1u, 2u}) {
      SCOPED_TRACE(std::string(cell.graph) + " seed " + std::to_string(seed));
      const auto batch = make_batch(cell.g, pattern, count, seed);
      const vidx_t n = cell.g.num_vertices();
      auto store = core::make_ram_store(n);
      fill_exact(cell.g, *store);

      IncrementalOptions opt;
      opt.tile = 32;
      IncrementalEngine engine(cell.g, opt);
      const UpdateOutcome out = engine.apply_in_place(*store, batch);

      const CsrGraph updated = core::apply_edge_updates(cell.g, batch);
      auto want = core::make_ram_store(n);
      fill_exact(updated, *want);
      expect_stores_equal(*store, *want);
      EXPECT_GT(out.decreases + out.increases, 0);
      EXPECT_GE(out.seconds, 0.0);
    }
  }
}

TEST(Incremental, ParityDecreaseOnly) { run_parity(Pattern::kDecrease, 8); }
TEST(Incremental, ParityIncreaseOnly) { run_parity(Pattern::kIncrease, 8); }
TEST(Incremental, ParityMixed) { run_parity(Pattern::kMixed, 12); }
TEST(Incremental, ParityDeleteInsert) {
  run_parity(Pattern::kDeleteInsert, 10);
}

TEST(Incremental, ParityLargeBatch) { run_parity(Pattern::kMixed, 60); }

TEST(Incremental, NoopBatchTouchesNothing) {
  const CsrGraph g = graph::make_road(8, 8, 3);
  const vidx_t n = g.num_vertices();
  auto store = core::make_ram_store(n);
  fill_exact(g, *store);
  // Re-assert every existing weight plus a self-loop insert.
  std::vector<EdgeUpdate> batch;
  for (vidx_t u = 0; u < std::min<vidx_t>(n, 10); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto ws = g.weights(u);
    for (std::size_t e = 0; e < nbrs.size(); ++e) {
      batch.push_back({u, nbrs[e], ws[e]});
    }
  }
  batch.push_back({0, 0, 5});
  IncrementalEngine engine(g);
  bool emitted = false;
  const UpdateOutcome out = engine.apply(
      *store, batch,
      [&](vidx_t, vidx_t, vidx_t, vidx_t, vidx_t, vidx_t, const dist_t*) {
        emitted = true;
      });
  EXPECT_FALSE(emitted);
  EXPECT_EQ(out.tiles_touched, 0);
  EXPECT_EQ(out.decreases, 0);
  EXPECT_EQ(out.increases, 0);
  EXPECT_GT(out.noops, 0);
}

TEST(Incremental, DecreaseOnlySkipsProbeAndSssp) {
  const CsrGraph g = graph::make_road(10, 10, 5);
  const vidx_t n = g.num_vertices();
  auto store = core::make_ram_store(n);
  fill_exact(g, *store);
  const auto batch = make_batch(g, Pattern::kDecrease, 6, 9);
  IncrementalEngine engine(g);
  const UpdateOutcome out = engine.apply_in_place(*store, batch);
  EXPECT_EQ(out.damaged_rows, 0);
  EXPECT_GT(out.sources, 0);
  auto want = core::make_ram_store(n);
  fill_exact(core::apply_edge_updates(g, batch), *want);
  expect_stores_equal(*store, *want);
}

TEST(Incremental, ThresholdZeroForcesFullSolve) {
  const CsrGraph g = graph::make_road(9, 9, 17);
  const vidx_t n = g.num_vertices();
  auto store = core::make_ram_store(n);
  fill_exact(g, *store);
  const auto batch = make_batch(g, Pattern::kIncrease, 4, 21);
  IncrementalOptions opt;
  opt.damage_threshold = 0.0;
  IncrementalEngine engine(g, opt);
  const UpdateOutcome out = engine.apply_in_place(*store, batch);
  EXPECT_TRUE(out.full_solve);
  auto want = core::make_ram_store(n);
  fill_exact(core::apply_edge_updates(g, batch), *want);
  expect_stores_equal(*store, *want);
}

TEST(Incremental, ThresholdOneNeverFallsBack) {
  const CsrGraph g = graph::make_road(9, 9, 17);
  const vidx_t n = g.num_vertices();
  auto store = core::make_ram_store(n);
  fill_exact(g, *store);
  const auto batch = make_batch(g, Pattern::kIncrease, 20, 23);
  IncrementalOptions opt;
  opt.damage_threshold = 1.0;
  IncrementalEngine engine(g, opt);
  const UpdateOutcome out = engine.apply_in_place(*store, batch);
  EXPECT_FALSE(out.full_solve);
  auto want = core::make_ram_store(n);
  fill_exact(core::apply_edge_updates(g, batch), *want);
  expect_stores_equal(*store, *want);
}

TEST(Incremental, PermutedStoreRepairs) {
  const CsrGraph g = graph::make_road(9, 8, 29);
  const vidx_t n = g.num_vertices();
  // A deterministic non-trivial permutation (reversal).
  std::vector<vidx_t> perm(static_cast<std::size_t>(n));
  for (vidx_t v = 0; v < n; ++v) {
    perm[static_cast<std::size_t>(v)] = n - 1 - v;
  }
  auto store = core::make_ram_store(n);
  fill_exact(g, *store, perm);
  const auto batch = make_batch(g, Pattern::kMixed, 10, 31);
  IncrementalEngine engine(g, {}, perm);
  engine.apply_in_place(*store, batch);
  auto want = core::make_ram_store(n);
  fill_exact(core::apply_edge_updates(g, batch), *want, perm);
  expect_stores_equal(*store, *want);
}

TEST(Incremental, PermutedStoreFullSolveFallbackPreservesLayout) {
  const CsrGraph g = graph::make_road(8, 8, 37);
  const vidx_t n = g.num_vertices();
  std::vector<vidx_t> perm(static_cast<std::size_t>(n));
  for (vidx_t v = 0; v < n; ++v) {
    perm[static_cast<std::size_t>(v)] = (v * 7 + 3) % n;  // 7 coprime to 64
  }
  auto store = core::make_ram_store(n);
  fill_exact(g, *store, perm);
  const auto batch = make_batch(g, Pattern::kIncrease, 4, 41);
  IncrementalOptions opt;
  opt.damage_threshold = 0.0;
  IncrementalEngine engine(g, opt, perm);
  const UpdateOutcome out = engine.apply_in_place(*store, batch);
  EXPECT_TRUE(out.full_solve);
  auto want = core::make_ram_store(n);
  fill_exact(core::apply_edge_updates(g, batch), *want, perm);
  expect_stores_equal(*store, *want);
}

TEST(Incremental, DisconnectedComponentsBridgedByInsert) {
  // Two disjoint 3-cycles; the update inserts a bridge, turning all-kInf
  // cross tiles finite — the inf fast path and a large frontier at once.
  std::vector<graph::Edge> edges = {{0, 1, 2}, {1, 2, 2}, {2, 0, 2},
                                    {3, 4, 3}, {4, 5, 3}, {5, 3, 3}};
  const CsrGraph g = CsrGraph::from_edges(6, edges, true);
  auto store = core::make_ram_store(6);
  fill_exact(g, *store);
  const std::vector<EdgeUpdate> batch = {{2, 3, 1}, {3, 2, 1}};
  IncrementalOptions opt;
  opt.tile = 2;
  IncrementalEngine engine(g, opt);
  const UpdateOutcome out = engine.apply_in_place(*store, batch);
  EXPECT_GT(out.tiles_touched, 0);
  auto want = core::make_ram_store(6);
  fill_exact(core::apply_edge_updates(g, batch), *want);
  expect_stores_equal(*store, *want);
}

TEST(Incremental, CompressedPristineSource) {
  const CsrGraph g = graph::make_road(10, 9, 43);
  const vidx_t n = g.num_vertices();
  auto ram = core::make_ram_store(n);
  fill_exact(g, *ram);
  const std::string path =
      (std::filesystem::temp_directory_path() / "gapsp_inc_z1.bin").string();
  core::write_compressed_store(*ram, path, /*tile=*/16);
  auto pristine = core::open_compressed_store(path);
  ASSERT_EQ(pristine->tile_size(), 16);

  const auto batch = make_batch(g, Pattern::kMixed, 10, 47);
  // Repair into a copy, reading tiles from the compressed store.
  auto target = core::make_ram_store(n);
  fill_exact(g, *target);
  IncrementalEngine engine(g);
  engine.apply(*pristine, batch,
               [&](vidx_t, vidx_t, vidx_t r0, vidx_t c0, vidx_t rows,
                   vidx_t cols, const dist_t* data) {
                 target->write_block(r0, c0, rows, cols, data,
                                     static_cast<std::size_t>(cols));
               });
  auto want = core::make_ram_store(n);
  fill_exact(core::apply_edge_updates(g, batch), *want);
  expect_stores_equal(*target, *want);
  std::filesystem::remove(path);
}

TEST(Incremental, UpdatedGraphAndEditSemantics) {
  std::vector<graph::Edge> edges = {{0, 1, 5}, {1, 2, 5}};
  const CsrGraph g = CsrGraph::from_edges(3, edges, false);
  // Last update of an arc wins; delete removes; insert adds.
  const std::vector<EdgeUpdate> batch = {
      {0, 1, 9}, {0, 1, 2}, {1, 2, kInf}, {2, 0, 4}};
  const CsrGraph u = core::apply_edge_updates(g, batch);
  EXPECT_EQ(u.num_edges(), 2);  // (0,1) kept at 2, (1,2) deleted, (2,0) new
  auto store = core::make_ram_store(3);
  fill_exact(g, *store);
  IncrementalEngine engine(g);
  engine.apply_in_place(*store, batch);
  EXPECT_EQ(store->at(0, 1), 2);
  EXPECT_EQ(store->at(1, 2), kInf);  // only path was the deleted arc
  EXPECT_EQ(store->at(2, 1), 4 + 2);
  // updated_graph() is the post-batch graph.
  EXPECT_EQ(engine.updated_graph().num_edges(), 2);
}

// ---- checkpointed resume (kill-mid-update chaos) ----------------------

struct CrashAfter {
  explicit CrashAfter(int limit) : limit(limit) {}
  int limit;
  int emitted = 0;
};

// Runs the repair against `pristine` writing into `target`, crashing
// (throwing) after `crash_after` emitted tiles; then resumes and checks
// bit-parity. Mirrors what `apsp_cli update --resume` does after a kill.
void run_crash_resume(int crash_after) {
  const CsrGraph g = graph::make_road(10, 10, 53);
  const vidx_t n = g.num_vertices();
  auto pristine = core::make_ram_store(n);
  fill_exact(g, *pristine);
  const auto batch = make_batch(g, Pattern::kMixed, 14, 59);

  const std::string ck =
      (std::filesystem::temp_directory_path() /
       ("gapsp_inc_ck_" + std::to_string(crash_after) + ".ck"))
          .string();
  std::filesystem::remove(ck);

  auto target = core::make_ram_store(n);
  fill_exact(g, *target);  // the CLI's tmp copy of the pristine store

  IncrementalOptions opt;
  opt.tile = 16;
  opt.checkpoint_path = ck;
  opt.checkpoint_every_tiles = 1;  // checkpoint after every tile

  CrashAfter crash(crash_after);
  bool crashed = false;
  try {
    IncrementalEngine engine(g, opt);
    engine.apply(*pristine, batch,
                 [&](vidx_t, vidx_t, vidx_t r0, vidx_t c0, vidx_t rows,
                     vidx_t cols, const dist_t* data) {
                   if (crash.emitted >= crash.limit) {
                     throw std::runtime_error("injected crash");
                   }
                   ++crash.emitted;
                   target->write_block(r0, c0, rows, cols, data,
                                       static_cast<std::size_t>(cols));
                 });
  } catch (const std::runtime_error&) {
    crashed = true;
  }

  UpdateOutcome out2;
  {
    IncrementalOptions ropt = opt;
    ropt.resume = true;
    IncrementalEngine engine(g, ropt);
    out2 = engine.apply(*pristine, batch,
                        [&](vidx_t, vidx_t, vidx_t r0, vidx_t c0, vidx_t rows,
                            vidx_t cols, const dist_t* data) {
                          target->write_block(r0, c0, rows, cols, data,
                                              static_cast<std::size_t>(cols));
                        });
  }
  // With checkpoint_every_tiles=1 every candidate processed before the
  // crashing emission was checkpointed, so resuming skips at least those.
  // (crash_after==0 dies on the very first emission — the checkpoint may
  // legitimately still sit at progress 0.)
  if (crashed && crash_after >= 1) {
    EXPECT_GT(out2.tiles_resumed, 0) << "crash_after=" << crash_after;
  }

  auto want = core::make_ram_store(n);
  fill_exact(core::apply_edge_updates(g, batch), *want);
  expect_stores_equal(*target, *want);
  // The sidecar is removed once the repair completes.
  core::Checkpoint unused;
  EXPECT_FALSE(core::read_checkpoint(ck, &unused));
  std::filesystem::remove(ck);
}

TEST(IncrementalResume, KillAtEveryTile) {
  // First find how many tiles an uninterrupted run emits, then crash at
  // every prefix (bounded to keep the sweep fast).
  const CsrGraph g = graph::make_road(10, 10, 53);
  const vidx_t n = g.num_vertices();
  auto pristine = core::make_ram_store(n);
  fill_exact(g, *pristine);
  const auto batch = make_batch(g, Pattern::kMixed, 14, 59);
  IncrementalOptions opt;
  opt.tile = 16;
  IncrementalEngine engine(g, opt);
  long long emitted = 0;
  engine.apply(*pristine, batch,
               [&](vidx_t, vidx_t, vidx_t, vidx_t, vidx_t, vidx_t,
                   const dist_t*) { ++emitted; });
  ASSERT_GT(emitted, 1);
  for (int k = 0; k <= std::min<long long>(emitted, 8); ++k) {
    SCOPED_TRACE("crash after " + std::to_string(k) + " tiles");
    run_crash_resume(k);
  }
}

TEST(IncrementalResume, CheckpointFingerprintMatchesRawBatch) {
  // apsp_cli gates its keep-the-tmp-copy decision on
  // incremental_fingerprint(raw batch); the engine must write exactly that
  // fingerprint into the sidecar even though it classifies (dedups,
  // canonicalizes) the batch internally. A mismatch makes the CLI re-copy
  // the pristine matrix over tiles the checkpoint then skips — stale data.
  const CsrGraph g = graph::make_road(8, 8, 21);
  const vidx_t n = g.num_vertices();
  auto pristine = core::make_ram_store(n);
  fill_exact(g, *pristine);
  // Duplicate + noop entries guarantee the classified batch differs from
  // the raw one.
  std::vector<core::EdgeUpdate> batch = make_batch(g, Pattern::kMixed, 6, 77);
  batch.push_back(batch.front());
  const auto arc_w = [&](vidx_t u, vidx_t v) {  // kInf when absent -> noop
    const auto nbrs = g.neighbors(u);
    const auto ws = g.weights(u);
    for (std::size_t e = 0; e < nbrs.size(); ++e) {
      if (nbrs[e] == v) return ws[e];
    }
    return kInf;
  };
  batch.push_back({0, 1, arc_w(0, 1)});

  const std::string ck = (std::filesystem::temp_directory_path() /
                          "gapsp_inc_rawfp.ck")
                             .string();
  std::filesystem::remove(ck);
  IncrementalOptions opt;
  opt.tile = 16;
  opt.checkpoint_path = ck;
  IncrementalEngine engine(g, opt);
  try {
    engine.apply(*pristine, batch,
                 [&](vidx_t, vidx_t, vidx_t, vidx_t, vidx_t, vidx_t,
                     const dist_t*) {
                   throw std::runtime_error("stop after first emission");
                 });
  } catch (const std::runtime_error&) {
  }
  core::Checkpoint saved;
  ASSERT_TRUE(core::read_checkpoint(ck, &saved));
  EXPECT_EQ(saved.fingerprint,
            core::incremental_fingerprint(g, batch, opt.tile,
                                          opt.damage_threshold));
  std::filesystem::remove(ck);
}

TEST(IncrementalResume, SyncHookRunsBeforeEveryCheckpoint) {
  // apsp_cli flushes the buffered tmp store through this hook; a checkpoint
  // written without it can claim tiles a SIGKILL then discards from the
  // stdio buffer (the store resumes past bytes that never reached disk).
  const CsrGraph g = graph::make_road(8, 8, 91);
  const vidx_t n = g.num_vertices();
  auto store = core::make_ram_store(n);
  fill_exact(g, *store);
  const auto batch = make_batch(g, Pattern::kMixed, 8, 93);
  const std::string ck =
      (std::filesystem::temp_directory_path() / "gapsp_inc_sync.ck").string();
  IncrementalOptions opt;
  opt.tile = 16;
  opt.checkpoint_path = ck;
  opt.checkpoint_every_tiles = 1;
  long long syncs = 0;
  long long emitted_at_last_sync = -1;
  long long emitted = 0;
  opt.sync_before_checkpoint = [&] {
    ++syncs;
    emitted_at_last_sync = emitted;
  };
  IncrementalEngine engine(g, opt);
  const UpdateOutcome out = engine.apply(
      *store, batch,
      [&](vidx_t, vidx_t, vidx_t, vidx_t, vidx_t, vidx_t, const dist_t*) {
        ++emitted;
      });
  EXPECT_EQ(syncs, out.checkpoints_written);
  EXPECT_GT(syncs, 0);
  // The final checkpoint came after the last emit — nothing was claimed
  // while still unflushed.
  EXPECT_EQ(emitted_at_last_sync, emitted);
  std::filesystem::remove(ck);
}

TEST(IncrementalResume, TamperedCheckpointStartsFresh) {
  const CsrGraph g = graph::make_road(8, 8, 61);
  const vidx_t n = g.num_vertices();
  auto pristine = core::make_ram_store(n);
  fill_exact(g, *pristine);
  const auto batch = make_batch(g, Pattern::kMixed, 8, 67);
  const std::string ck =
      (std::filesystem::temp_directory_path() / "gapsp_inc_tamper.ck")
          .string();
  {
    std::ofstream out(ck, std::ios::binary);
    out << "GARBAGE NOT A CHECKPOINT";
  }
  auto target = core::make_ram_store(n);
  fill_exact(g, *target);
  IncrementalOptions opt;
  opt.tile = 16;
  opt.checkpoint_path = ck;
  opt.resume = true;
  IncrementalEngine engine(g, opt);
  const UpdateOutcome out = engine.apply_in_place(*target, batch);
  EXPECT_EQ(out.tiles_resumed, 0);
  auto want = core::make_ram_store(n);
  fill_exact(core::apply_edge_updates(g, batch), *want);
  expect_stores_equal(*target, *want);
  std::filesystem::remove(ck);
}

TEST(IncrementalResume, MismatchedBatchStartsFresh) {
  const CsrGraph g = graph::make_road(8, 8, 71);
  const vidx_t n = g.num_vertices();
  auto pristine = core::make_ram_store(n);
  fill_exact(g, *pristine);
  const auto batch_a = make_batch(g, Pattern::kMixed, 8, 73);
  const auto batch_b = make_batch(g, Pattern::kMixed, 8, 79);
  const std::string ck =
      (std::filesystem::temp_directory_path() / "gapsp_inc_mismatch.ck")
          .string();
  std::filesystem::remove(ck);
  // Crash a run of batch_a immediately so a checkpoint exists.
  IncrementalOptions opt;
  opt.tile = 16;
  opt.checkpoint_path = ck;
  opt.checkpoint_every_tiles = 1;
  try {
    IncrementalEngine engine(g, opt);
    engine.apply(*pristine, batch_a,
                 [&](vidx_t, vidx_t, vidx_t, vidx_t, vidx_t, vidx_t,
                     const dist_t*) { throw std::runtime_error("crash"); });
  } catch (const std::runtime_error&) {
  }
  // Resuming with a different batch must ignore the sidecar.
  auto target = core::make_ram_store(n);
  fill_exact(g, *target);
  IncrementalOptions ropt = opt;
  ropt.resume = true;
  IncrementalEngine engine(g, ropt);
  const UpdateOutcome out = engine.apply_in_place(*target, batch_b);
  EXPECT_EQ(out.tiles_resumed, 0);
  auto want = core::make_ram_store(n);
  fill_exact(core::apply_edge_updates(g, batch_b), *want);
  expect_stores_equal(*target, *want);
  std::filesystem::remove(ck);
}

// ---- update-file parsing ----------------------------------------------

TEST(Incremental, ReadEdgeUpdatesParsesAndRejects) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "gapsp_updates.txt").string();
  {
    std::ofstream out(path);
    out << "# comment\n"
        << "0 1 7\n"
        << "\n"
        << "2 3 inf\n"
        << "4 5 -1\n"
        << "6 7 x\n";
  }
  const auto ups = core::read_edge_updates(path);
  ASSERT_EQ(ups.size(), 4u);
  EXPECT_EQ(ups[0].w, 7);
  EXPECT_EQ(ups[1].w, kInf);
  EXPECT_EQ(ups[2].w, kInf);
  EXPECT_EQ(ups[3].w, kInf);
  {
    std::ofstream out(path);
    out << "0 1 notaweight\n";
  }
  EXPECT_THROW(core::read_edge_updates(path), Error);
  {
    std::ofstream out(path);
    out << "0 1 -7\n";
  }
  EXPECT_THROW(core::read_edge_updates(path), Error);
  EXPECT_THROW(core::read_edge_updates(path + ".missing"), IoError);
  std::filesystem::remove(path);
}

// ---- cost-model term ---------------------------------------------------

TEST(Incremental, CostModelTermScales) {
  const auto spec = sim::DeviceSpec::v100();
  const auto small =
      core::estimate_incremental(1000, 4000, 10, 5, 12, 256, spec);
  const auto more_tiles =
      core::estimate_incremental(1000, 4000, 10, 5, 120, 256, spec);
  EXPECT_GT(small.total(), 0.0);
  EXPECT_GT(more_tiles.total(), small.total());
  EXPECT_GT(more_tiles.tile_s, small.tile_s);
  // A 1%-churn repair must model far below the full re-solve.
  const double full = core::incremental_full_solve_model(1000, spec);
  EXPECT_GT(full, small.total());
  // Compressed wire ratio only lowers the transfer leg.
  const auto wired =
      core::estimate_incremental(1000, 4000, 10, 5, 12, 256, spec, 4.0);
  EXPECT_LT(wired.transfer_s, small.transfer_s);
}

TEST(Incremental, OutcomeReportsModeledWin) {
  const CsrGraph g = graph::make_road(12, 12, 83);
  const vidx_t n = g.num_vertices();
  auto store = core::make_ram_store(n);
  fill_exact(g, *store);
  const auto batch = make_batch(g, Pattern::kDecrease, 3, 89);
  IncrementalOptions opt;
  opt.tile = 16;
  IncrementalEngine engine(g, opt);
  const UpdateOutcome out = engine.apply_in_place(*store, batch);
  // At toy n the per-transfer latency legitimately dominates and the model
  // can favor the full solve; the crossover at realistic n is asserted in
  // CostModelTermScales. Here: both legs populated and finite.
  EXPECT_GT(out.modeled_repair_seconds, 0.0);
  EXPECT_GT(out.modeled_full_seconds, 0.0);
}

// ---- serving-path updates ----------------------------------------------

TEST(IncrementalServing, ApplyUpdatesServesNewDistances) {
  const CsrGraph g = graph::make_road(10, 10, 97);
  const vidx_t n = g.num_vertices();
  auto store = core::make_ram_store(n);
  fill_exact(g, *store);
  service::QueryEngineOptions qopt;
  qopt.block_size = 16;
  // Tiny budget: a tile is evicted almost immediately — the overlay, not
  // the stale store, must satisfy the re-miss.
  qopt.cache_bytes = 2 * 16 * 16 * sizeof(dist_t);
  qopt.cache_shards = 1;
  service::QueryEngine engine(*store, qopt);

  const auto batch = make_batch(g, Pattern::kMixed, 12, 101);
  const UpdateOutcome out = engine.apply_updates(g, batch);
  EXPECT_GT(out.tiles_touched, 0);

  const CsrGraph updated = core::apply_edge_updates(g, batch);
  std::vector<dist_t> want(static_cast<std::size_t>(n));
  for (vidx_t u = 0; u < n; ++u) {
    sssp::dijkstra_into(updated, u, want);
    const auto got = engine.row(u);
    for (vidx_t v = 0; v < n; ++v) {
      ASSERT_EQ(got[static_cast<std::size_t>(v)],
                want[static_cast<std::size_t>(v)])
          << "dist(" << u << "," << v << ")";
    }
  }
  // Thrash the cache with scattered points; evictions must reload overlay
  // tiles, never stale store bytes.
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const auto u = static_cast<vidx_t>(rng.next_below(n));
    const auto v = static_cast<vidx_t>(rng.next_below(n));
    sssp::dijkstra_into(updated, u, want);
    ASSERT_EQ(engine.point(u, v), want[static_cast<std::size_t>(v)]);
  }
}

// A store wrapper whose tile (0,0) read throws CorruptError until healed —
// drives a tile into quarantine, then checks apply_updates republishes it.
class FlakyStore : public core::DistStore {
 public:
  explicit FlakyStore(const core::DistStore& inner)
      : core::DistStore(inner.n()), inner_(inner) {}
  bool broken = true;

  void write_block(vidx_t, vidx_t, vidx_t, vidx_t, const dist_t*,
                   std::size_t) override {
    throw IoError("read-only");
  }
  void read_block(vidx_t row0, vidx_t col0, vidx_t rows, vidx_t cols,
                  dist_t* dst, std::size_t dst_ld) const override {
    if (broken && row0 < 16 && col0 < 16) {
      throw CorruptError("injected tile damage");
    }
    inner_.read_block(row0, col0, rows, cols, dst, dst_ld);
  }

 private:
  const core::DistStore& inner_;
};

TEST(IncrementalServing, ApplyUpdatesClearsQuarantine) {
  const CsrGraph g = graph::make_road(10, 10, 103);
  const vidx_t n = g.num_vertices();
  auto ram = core::make_ram_store(n);
  fill_exact(g, *ram);
  FlakyStore flaky(*ram);
  service::QueryEngineOptions qopt;
  qopt.block_size = 16;
  qopt.retry.max_retries = 0;
  service::QueryEngine engine(flaky, qopt);

  // Quarantine tile (0,0): queries in it degrade.
  EXPECT_THROW(engine.point(0, 1), core::TileError);
  flaky.broken = false;  // storage heals, but the quarantine mark persists
  EXPECT_THROW(engine.point(0, 1), core::TileError);

  // Dropping arc (0,1) to weight 0 is guaranteed to change dist(0,1)
  // (weights are ≥1, so the old distance was ≥1), which lives in the
  // quarantined tile (0,0): apply_updates must republish it, and publish
  // clears the quarantine so the query serves again.
  const std::vector<EdgeUpdate> batch = {{0, 1, 0}};
  const UpdateOutcome out = engine.apply_updates(g, batch);
  EXPECT_GT(out.tiles_touched, 0);

  const CsrGraph updated = core::apply_edge_updates(g, batch);
  std::vector<dist_t> want(static_cast<std::size_t>(n));
  sssp::dijkstra_into(updated, 0, want);
  EXPECT_EQ(engine.point(0, 1), want[1]);
}

}  // namespace
}  // namespace gapsp
