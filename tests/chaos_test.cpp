// Chaos suite for fault injection + recovery (DESIGN.md §8).
//
// The contract under test: with a fault plan attached, every run either
// completes with distances bit-identical to a fault-free run, or surfaces a
// typed sim::FaultError — and the recovery layers (retry, degradation,
// checkpoint/resume, multi-device failover) turn as many of the latter into
// the former as the fault model allows. Zero-fault runs with injection
// compiled in must not perturb the simulated timeline at all.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/apsp.h"
#include "core/checkpoint.h"
#include "core/multi_device.h"
#include "graph/generators.h"
#include "test_util.h"
#include "util/rng.h"

namespace gapsp::core {
namespace {

using test::expect_store_matches_reference;
using test::tiny_device;

ApspOptions chaos_opts(Algorithm algo, std::size_t mem) {
  ApspOptions o;
  o.device = tiny_device(mem);
  o.fw_tile = 32;
  o.algorithm = algo;
  return o;
}

std::string ck_path(const char* tag) {
  return ::testing::TempDir() + "gapsp_chaos_" + tag + ".ck";
}

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f != nullptr) std::fclose(f);
  return f != nullptr;
}

/// Seed offset for the randomized schedules, settable from CI so the chaos
/// job explores a different slice of the schedule space per matrix entry.
std::uint64_t chaos_seed() {
  const char* env = std::getenv("GAPSP_CHAOS_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 0;
}

void expect_bit_identical(const DistStore& sa, const ApspResult& ra,
                          const DistStore& sb, const ApspResult& rb) {
  ASSERT_EQ(sa.n(), sb.n());
  ASSERT_EQ(ra.perm, rb.perm);
  const vidx_t n = sa.n();
  std::vector<dist_t> a(static_cast<std::size_t>(n));
  std::vector<dist_t> b(static_cast<std::size_t>(n));
  for (vidx_t r = 0; r < n; ++r) {
    sa.read_block(r, 0, 1, n, a.data(), a.size());
    sb.read_block(r, 0, 1, n, b.data(), b.size());
    ASSERT_EQ(a, b) << "row " << r;
  }
}

// ---------------------------------------------------------------------------
// Zero-fault parity: injection compiled in and attached, but an empty plan —
// the timeline and every counter must match a run without any injector.
// ---------------------------------------------------------------------------

class ZeroFaultParity : public ::testing::TestWithParam<Algorithm> {};

TEST_P(ZeroFaultParity, EmptyPlanDoesNotPerturbTimeline) {
  const auto g = graph::make_erdos_renyi(120, 600, 501);
  const auto opts = chaos_opts(GetParam(), 256u << 10);

  auto s_plain = make_ram_store(g.num_vertices());
  const auto plain = solve_apsp(g, opts, *s_plain);

  sim::FaultPlan empty;  // all probabilities zero, nothing scripted
  ApspOptions with = opts;
  with.faults = &empty;
  auto s_inj = make_ram_store(g.num_vertices());
  const auto inj = solve_apsp(g, with, *s_inj);

  EXPECT_EQ(inj.metrics.faults_injected, 0);
  EXPECT_EQ(inj.metrics.transfer_retries, 0);
  EXPECT_EQ(inj.metrics.kernel_retries, 0);
  EXPECT_EQ(inj.metrics.retry_backoff_seconds, 0.0);
  EXPECT_EQ(inj.metrics.degradations, 0);
  EXPECT_DOUBLE_EQ(inj.metrics.sim_seconds, plain.metrics.sim_seconds);
  EXPECT_DOUBLE_EQ(inj.metrics.kernel_seconds, plain.metrics.kernel_seconds);
  EXPECT_DOUBLE_EQ(inj.metrics.transfer_seconds,
                   plain.metrics.transfer_seconds);
  EXPECT_EQ(inj.metrics.bytes_h2d, plain.metrics.bytes_h2d);
  EXPECT_EQ(inj.metrics.bytes_d2h, plain.metrics.bytes_d2h);
  EXPECT_EQ(inj.metrics.kernels, plain.metrics.kernels);
  expect_bit_identical(*s_plain, plain, *s_inj, inj);
}

TEST_P(ZeroFaultParity, CheckpointingDoesNotPerturbTimeline) {
  const auto g = graph::make_erdos_renyi(120, 600, 502);
  const auto opts = chaos_opts(GetParam(), 256u << 10);

  auto s_plain = make_ram_store(g.num_vertices());
  const auto plain = solve_apsp(g, opts, *s_plain);

  ApspOptions with = opts;
  with.checkpoint_path = ck_path("parity");
  auto s_ck = make_ram_store(g.num_vertices());
  const auto ck = solve_apsp(g, with, *s_ck);

  // Checkpoint writes are host-side sidecar I/O: same simulated makespan.
  EXPECT_DOUBLE_EQ(ck.metrics.sim_seconds, plain.metrics.sim_seconds);
  EXPECT_GT(ck.metrics.checkpoints_written, 0);
  EXPECT_FALSE(file_exists(with.checkpoint_path))
      << "checkpoint must be removed after a successful run";
  expect_bit_identical(*s_plain, plain, *s_ck, ck);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, ZeroFaultParity,
                         ::testing::Values(Algorithm::kBlockedFloydWarshall,
                                           Algorithm::kJohnson,
                                           Algorithm::kBoundary));

// ---------------------------------------------------------------------------
// Transient faults: bounded retry-with-backoff absorbs them; the distances
// are still exact and the backoff shows up on the simulated timeline.
// ---------------------------------------------------------------------------

TEST(ChaosRetry, TransientFaultsAreRetriedBitIdentical) {
  const auto g = graph::make_erdos_renyi(120, 600, 503);
  const auto opts = chaos_opts(Algorithm::kBlockedFloydWarshall, 128u << 10);

  auto s_clean = make_ram_store(g.num_vertices());
  const auto clean = solve_apsp(g, opts, *s_clean);

  sim::FaultPlan plan;
  plan.scripted.push_back({.op = sim::FaultOp::kH2D, .nth = 3});
  plan.scripted.push_back({.op = sim::FaultOp::kD2H, .nth = 2});
  plan.scripted.push_back({.op = sim::FaultOp::kKernel, .nth = 4});
  ApspOptions faulty = opts;
  faulty.faults = &plan;
  auto s_faulty = make_ram_store(g.num_vertices());
  const auto r = solve_apsp(g, faulty, *s_faulty);

  EXPECT_EQ(r.metrics.faults_injected, 3);
  EXPECT_EQ(r.metrics.transfer_retries, 2);
  EXPECT_EQ(r.metrics.kernel_retries, 1);
  EXPECT_GT(r.metrics.retry_backoff_seconds, 0.0);
  // Backoff is idle stream time: the faulty makespan can only grow.
  EXPECT_GE(r.metrics.sim_seconds, clean.metrics.sim_seconds);
  expect_bit_identical(*s_clean, clean, *s_faulty, r);
}

TEST(ChaosRetry, ExhaustedRetriesSurfaceTypedError) {
  const auto g = graph::make_erdos_renyi(90, 400, 504);
  sim::FaultPlan plan;
  plan.scripted.push_back({.op = sim::FaultOp::kH2D, .nth = 1});
  ApspOptions opts = chaos_opts(Algorithm::kBlockedFloydWarshall, 256u << 10);
  opts.faults = &plan;
  opts.retry.max_retries = 0;  // transient, but no retry budget
  auto store = make_ram_store(g.num_vertices());
  try {
    solve_apsp(g, opts, *store);
    FAIL() << "expected FaultError";
  } catch (const sim::FaultError& e) {
    EXPECT_EQ(e.op(), sim::FaultOp::kH2D);
    EXPECT_TRUE(e.transient());
  }
}

TEST(ChaosRetry, NonTransientFaultIsNotRetried) {
  const auto g = graph::make_erdos_renyi(90, 400, 505);
  sim::FaultPlan plan;
  plan.scripted.push_back(
      {.op = sim::FaultOp::kKernel, .nth = 2, .transient = false});
  ApspOptions opts = chaos_opts(Algorithm::kBlockedFloydWarshall, 256u << 10);
  opts.faults = &plan;
  auto store = make_ram_store(g.num_vertices());
  try {
    solve_apsp(g, opts, *store);
    FAIL() << "expected FaultError";
  } catch (const sim::FaultError& e) {
    EXPECT_EQ(e.op(), sim::FaultOp::kKernel);
    EXPECT_FALSE(e.transient());
  }
}

TEST(ChaosRetry, KillAtSimTimeFires) {
  const auto g = graph::make_erdos_renyi(120, 600, 515);
  const auto opts = chaos_opts(Algorithm::kBlockedFloydWarshall, 128u << 10);
  auto s_clean = make_ram_store(g.num_vertices());
  const auto clean = solve_apsp(g, opts, *s_clean);

  sim::FaultPlan plan;
  plan.kill_device = 0;
  plan.kill_at_s = clean.metrics.sim_seconds / 2;  // mid-run, in sim time
  ApspOptions faulty = opts;
  faulty.faults = &plan;
  auto store = make_ram_store(g.num_vertices());
  try {
    solve_apsp(g, faulty, *store);
    FAIL() << "expected FaultError";
  } catch (const sim::FaultError& e) {
    EXPECT_EQ(e.op(), sim::FaultOp::kDeviceLost);
    EXPECT_FALSE(e.transient());
  }
}

// ---------------------------------------------------------------------------
// Degradation: an injected alloc fault (device OOM) makes solve_apsp shrink
// the plan and re-run instead of failing.
// ---------------------------------------------------------------------------

TEST(ChaosDegrade, AllocFaultDegradesAndCompletes) {
  const auto g = graph::make_erdos_renyi(120, 600, 506);
  const auto opts = chaos_opts(Algorithm::kBlockedFloydWarshall, 128u << 10);

  auto s_clean = make_ram_store(g.num_vertices());
  const auto clean = solve_apsp(g, opts, *s_clean);

  sim::FaultPlan plan;
  plan.scripted.push_back({.op = sim::FaultOp::kAlloc, .nth = 1});
  ApspOptions faulty = opts;
  faulty.faults = &plan;
  auto store = make_ram_store(g.num_vertices());
  const auto r = solve_apsp(g, faulty, *store);

  EXPECT_EQ(r.metrics.degradations, 1);
  EXPECT_EQ(r.metrics.faults_injected, 1);
  expect_store_matches_reference(g, *store, r);
  // Distances agree with the full-plan run even though the re-plan differs.
  expect_bit_identical(*s_clean, clean, *store, r);
}

TEST(ChaosDegrade, DegradationBudgetExhaustedRethrows) {
  const auto g = graph::make_erdos_renyi(90, 400, 507);
  sim::FaultPlan plan;
  plan.p_alloc = 1.0;  // every allocation fails: no plan can survive
  ApspOptions opts = chaos_opts(Algorithm::kBlockedFloydWarshall, 256u << 10);
  opts.faults = &plan;
  opts.max_degradations = 2;
  auto store = make_ram_store(g.num_vertices());
  try {
    solve_apsp(g, opts, *store);
    FAIL() << "expected FaultError";
  } catch (const sim::FaultError& e) {
    EXPECT_EQ(e.op(), sim::FaultOp::kAlloc);
    EXPECT_FALSE(e.transient());
  }
}

// ---------------------------------------------------------------------------
// Checkpoint/resume: kill the device at op K for a sweep of K, resume each
// interrupted run from the sidecar, and require bit-identical distances.
// ---------------------------------------------------------------------------

/// Sweeps a device-kill across the whole op stream with stride `stride`
/// (stride 1 interrupts after *every* gated op, which covers every round
/// boundary). Each interrupted run is resumed fault-free from the sidecar
/// and must reproduce the reference run bit-for-bit. The sweep ends when a
/// kill lands beyond the op stream and the run completes untouched.
void kill_resume_sweep(Algorithm algo, const graph::CsrGraph& g,
                       std::size_t mem, long long stride, const char* tag) {
  const std::string path = ck_path(tag);
  ApspOptions clean = chaos_opts(algo, mem);
  auto s_ref = make_ram_store(g.num_vertices());
  const ApspResult ref = solve_apsp(g, clean, *s_ref);

  int interruptions = 0;
  bool saw_resumed_progress = false;
  for (long long kill = 1;; kill += stride) {
    ASSERT_LT(kill, 1000000) << "kill sweep failed to terminate";
    sim::FaultPlan plan;
    plan.kill_device = 0;
    plan.kill_at_op = kill;
    ApspOptions faulty = clean;
    faulty.faults = &plan;
    faulty.checkpoint_path = path;
    auto store = make_ram_store(g.num_vertices());
    try {
      const ApspResult done = solve_apsp(g, faulty, *store);
      // The kill op lies beyond the run's op stream: nothing fired.
      EXPECT_EQ(done.metrics.faults_injected, 0);
      expect_bit_identical(*s_ref, ref, *store, done);
      break;
    } catch (const sim::FaultError& e) {
      ASSERT_EQ(e.op(), sim::FaultOp::kDeviceLost);
      ++interruptions;
    }
    ApspOptions rec = clean;
    rec.checkpoint_path = path;
    rec.resume = true;
    const ApspResult resumed = solve_apsp(g, rec, *store);
    saw_resumed_progress |= resumed.metrics.resumed_progress > 0;
    expect_bit_identical(*s_ref, ref, *store, resumed);
    EXPECT_FALSE(file_exists(path));
  }
  EXPECT_GT(interruptions, 0) << "sweep never actually killed the device";
  EXPECT_TRUE(saw_resumed_progress)
      << "no interruption landed past the first checkpoint";
}

TEST(ChaosResume, FwKilledAtEveryOpResumesBitIdentical) {
  // Small enough that stride 1 interrupts after every single gated op.
  const auto g = graph::make_erdos_renyi(90, 400, 508);
  kill_resume_sweep(Algorithm::kBlockedFloydWarshall, g, 64u << 10, 1, "fw");
}

TEST(ChaosResume, JohnsonKillSweepResumesBitIdentical) {
  const auto g = graph::make_erdos_renyi(120, 500, 509);
  kill_resume_sweep(Algorithm::kJohnson, g, 256u << 10, 3, "johnson");
}

TEST(ChaosResume, BoundaryKillSweepResumesBitIdentical) {
  const auto g = graph::make_road(10, 10, 510);
  kill_resume_sweep(Algorithm::kBoundary, g, 2u << 20, 3, "boundary");
}

TEST(ChaosResume, KinfHeavySweepResumesThroughCompressedSidecars) {
  // Disconnected graph → the boundary dist2/dist3 blobs (and the matrix
  // itself) are dominated by kInf runs, so every sidecar this sweep writes
  // stores its payload as a z1 frame (checkpoint.cpp compresses at the
  // sink). The sweep proves resume from *compressed* checkpoints is
  // bit-identical to the fault-free run across every interruption point.
  const auto g = graph::make_erdos_renyi(110, 150, 512, /*connect=*/false);
  kill_resume_sweep(Algorithm::kBoundary, g, 2u << 20, 3, "zck");
}

TEST(ChaosResume, RealRunSidecarStoresCompressedPayload) {
  // Interrupt a kInf-heavy boundary run mid-flight and inspect the sidecar
  // it left behind: once a checkpoint carries host-side intermediates, the
  // file on disk must be smaller than the raw payload read_checkpoint
  // hands back — i.e. the compression sink is live in the real pipeline,
  // not just in the unit round-trip.
  const auto g = graph::make_erdos_renyi(120, 160, 513, /*connect=*/false);
  const std::string path = ck_path("zsize");
  ApspOptions clean = chaos_opts(Algorithm::kBoundary, 2u << 20);
  bool inspected = false;
  for (long long kill = 1; !inspected; kill += 2) {
    ASSERT_LT(kill, 1000000) << "no checkpoint with a payload ever appeared";
    sim::FaultPlan plan;
    plan.kill_device = 0;
    plan.kill_at_op = kill;
    ApspOptions faulty = clean;
    faulty.faults = &plan;
    faulty.checkpoint_path = path;
    auto store = make_ram_store(g.num_vertices());
    try {
      solve_apsp(g, faulty, *store);
      break;  // kill landed past the op stream; nothing more to inspect
    } catch (const sim::FaultError&) {
    }
    Checkpoint ck;
    if (file_exists(path) && read_checkpoint(path, &ck) &&
        !ck.payload.empty()) {
      std::FILE* f = std::fopen(path.c_str(), "rb");
      ASSERT_NE(f, nullptr);
      std::fseek(f, 0, SEEK_END);
      const auto sidecar_bytes = static_cast<std::size_t>(std::ftell(f));
      std::fclose(f);
      EXPECT_LT(sidecar_bytes, ck.payload.size())
          << "sidecar stored the payload raw despite kInf-run content";
      inspected = true;
    }
    std::remove(path.c_str());
  }
  std::remove(path.c_str());
  EXPECT_TRUE(inspected) << "sweep completed before any payload checkpoint";
}

TEST(ChaosResume, CrossProcessResumeViaDurableFileStore) {
  // Simulate a process death: the interrupted run's FileStore object is
  // destroyed (keep_file=true, so the raw matrix file survives) and the
  // resume builds a NEW FileStore over the kept file. Adopting the on-disk
  // matrix instead of truncating it is what makes the checkpoint's
  // durability argument hold across processes — the sidecar only records
  // progress, the store holds the completed rounds.
  const std::string ck = ck_path("xproc");
  const std::string dist = ::testing::TempDir() + "gapsp_chaos_xproc.bin";
  const auto g = graph::make_erdos_renyi(90, 400, 514);
  const ApspOptions clean =
      chaos_opts(Algorithm::kBlockedFloydWarshall, 64u << 10);
  auto s_ref = make_ram_store(g.num_vertices());
  const ApspResult ref = solve_apsp(g, clean, *s_ref);

  bool resumed_past_round = false;
  // Dense enough that some kill lands between the first checkpoint and the
  // end of the op stream (the compressed transfer path gates two ops per
  // staged tile, which compresses that window).
  for (long long kill = 8; kill <= 4096 && !resumed_past_round;
       kill += std::max<long long>(4, kill / 4)) {
    std::remove(ck.c_str());
    std::remove(dist.c_str());
    sim::FaultPlan plan;
    plan.kill_device = 0;
    plan.kill_at_op = kill;
    ApspOptions faulty = clean;
    faulty.faults = &plan;
    faulty.checkpoint_path = ck;
    bool died = false;
    {
      auto store = make_file_store(g.num_vertices(), dist, /*keep_file=*/true);
      try {
        solve_apsp(g, faulty, *store);
      } catch (const sim::FaultError&) {
        died = true;
      }
    }  // "process" exits here: the store object is gone, the file remains
    if (!died) break;                // kill op beyond the op stream
    if (!file_exists(ck)) continue;  // died before the first checkpoint
    auto store = make_file_store(g.num_vertices(), dist, /*keep_file=*/true);
    ApspOptions rec = clean;
    rec.checkpoint_path = ck;
    rec.resume = true;
    const ApspResult resumed = solve_apsp(g, rec, *store);
    resumed_past_round = resumed.metrics.resumed_progress > 0;
    expect_bit_identical(*s_ref, ref, *store, resumed);
    EXPECT_FALSE(file_exists(ck));
  }
  EXPECT_TRUE(resumed_past_round)
      << "no kill in the sweep left a usable checkpoint";
  std::remove(dist.c_str());
}

TEST(ChaosResume, MismatchedCheckpointStartsFresh) {
  // Interrupt a run on graph A so its checkpoint survives, then point a run
  // on graph B at the same sidecar: the fingerprint must reject it and the
  // B run must start fresh and still be correct.
  const std::string path = ck_path("mismatch");
  const auto a = graph::make_erdos_renyi(90, 400, 511);
  const auto b = graph::make_erdos_renyi(90, 450, 512);

  // Push the kill later until the death happens after at least one round
  // checkpoint landed on disk.
  bool have_checkpoint = false;
  for (long long kill = 8; kill <= 4096 && !have_checkpoint;
       kill += std::max<long long>(4, kill / 4)) {
    sim::FaultPlan plan;
    plan.kill_device = 0;
    plan.kill_at_op = kill;
    ApspOptions opts = chaos_opts(Algorithm::kBlockedFloydWarshall, 64u << 10);
    opts.faults = &plan;
    opts.checkpoint_path = path;
    auto sa = make_ram_store(a.num_vertices());
    EXPECT_THROW(solve_apsp(a, opts, *sa), sim::FaultError);
    have_checkpoint = file_exists(path);
  }
  ASSERT_TRUE(have_checkpoint);

  ApspOptions rec = chaos_opts(Algorithm::kBlockedFloydWarshall, 64u << 10);
  rec.checkpoint_path = path;
  rec.resume = true;
  auto sb = make_ram_store(b.num_vertices());
  const auto r = solve_apsp(b, rec, *sb);
  EXPECT_EQ(r.metrics.resumed_progress, 0);
  expect_store_matches_reference(b, *sb, r);
}

TEST(ChaosResume, CorruptCheckpointIsRejected) {
  const std::string path = ck_path("corrupt");
  Checkpoint ck;
  ck.algorithm = 1;
  ck.fingerprint = 42;
  ck.n = 8;
  ck.progress = 3;
  write_checkpoint(path, ck);
  Checkpoint back;
  ASSERT_TRUE(read_checkpoint(path, &back));
  EXPECT_EQ(back.fingerprint, 42u);
  EXPECT_EQ(back.progress, 3);

  // Flip one byte: the trailing checksum must reject the file.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 20, SEEK_SET), 0);
  const unsigned char junk = 0xA5;
  ASSERT_EQ(std::fwrite(&junk, 1, 1, f), 1u);
  std::fclose(f);
  EXPECT_FALSE(read_checkpoint(path, &back));

  // Truncation must be rejected too.
  std::FILE* t = std::fopen(path.c_str(), "wb");
  ASSERT_NE(t, nullptr);
  ASSERT_EQ(std::fwrite("GAPSPCK1", 1, 8, t), 8u);
  std::fclose(t);
  EXPECT_FALSE(read_checkpoint(path, &back));
  remove_checkpoint(path);
}

// ---------------------------------------------------------------------------
// Multi-device failover: kill one device at op K for a sweep of K — the run
// must complete on the survivors with bit-identical distances and report
// the failover in its metrics.
// ---------------------------------------------------------------------------

TEST(ChaosFailover, KilledDeviceFailsOverBitIdentical) {
  const auto g = graph::make_road(12, 12, 513);
  ApspOptions opts = chaos_opts(Algorithm::kBoundary, 4u << 20);
  opts.num_components = 6;

  auto s_ref = make_ram_store(g.num_vertices());
  const auto ref = ooc_boundary_multi(g, opts, 3, *s_ref);
  ASSERT_TRUE(ref.multi.failed_devices.empty());

  bool saw_failover_work = false;
  int deaths = 0;
  for (long long kill = 1;; kill += 4) {
    ASSERT_LT(kill, 1000000) << "failover sweep failed to terminate";
    sim::FaultPlan plan;
    plan.kill_device = 1;
    plan.kill_at_op = kill;
    ApspOptions faulty = opts;
    faulty.faults = &plan;
    auto store = make_ram_store(g.num_vertices());
    const auto r = ooc_boundary_multi(g, faulty, 3, *store);
    expect_bit_identical(*s_ref, ref.result, *store, r.result);
    if (r.multi.failed_devices.empty()) break;  // kill beyond the op stream
    ++deaths;
    ASSERT_EQ(r.multi.failed_devices, std::vector<int>{1});
    EXPECT_GE(r.multi.failover_cost_s, 0.0);
    saw_failover_work |= r.multi.failover_components > 0;
  }
  EXPECT_GT(deaths, 0);
  EXPECT_TRUE(saw_failover_work)
      << "no death left unfinished components to re-run";
}

TEST(ChaosFailover, AllDevicesLostSurfacesTypedError) {
  const auto g = graph::make_road(10, 10, 514);
  sim::FaultPlan plan;
  plan.kill_device = 0;
  plan.kill_at_op = 1;
  ApspOptions opts = chaos_opts(Algorithm::kBoundary, 4u << 20);
  opts.num_components = 4;
  opts.faults = &plan;
  auto store = make_ram_store(g.num_vertices());
  try {
    ooc_boundary_multi(g, opts, 1, *store);
    FAIL() << "expected FaultError";
  } catch (const sim::FaultError& e) {
    EXPECT_EQ(e.op(), sim::FaultOp::kDeviceLost);
  }
}

// ---------------------------------------------------------------------------
// Randomized fault schedules (seed matrix via GAPSP_CHAOS_SEED): every run
// either completes bit-identical to its clean twin or throws FaultError.
// ---------------------------------------------------------------------------

class ChaosSchedule : public ::testing::TestWithParam<int> {};

TEST_P(ChaosSchedule, RandomScheduleCompletesExactlyOrFailsTyped) {
  Rng rng(0xC0FFEE + chaos_seed() * 7919 +
                static_cast<std::uint64_t>(GetParam()) * 104729);
  const auto g = graph::make_erdos_renyi(
      100 + static_cast<vidx_t>(rng.next_below(60)),
      450 + static_cast<eidx_t>(rng.next_below(300)), rng.next_u64());
  const Algorithm algos[] = {Algorithm::kBlockedFloydWarshall,
                             Algorithm::kJohnson, Algorithm::kBoundary};
  ApspOptions opts = chaos_opts(algos[rng.next_below(3)],
                                (128u << 10) << rng.next_below(3));
  opts.overlap_transfers = rng.next_bool(0.5);

  auto s_clean = make_ram_store(g.num_vertices());
  ApspResult clean;
  try {
    clean = solve_apsp(g, opts, *s_clean);
  } catch (const Error&) {
    return;  // infeasible configuration — nothing to chaos-test
  }

  sim::FaultPlan plan;
  plan.seed = rng.next_u64();
  plan.p_h2d = rng.next_double() * 0.02;
  plan.p_d2h = rng.next_double() * 0.02;
  plan.p_kernel = rng.next_double() * 0.01;
  if (rng.next_bool(0.3)) {
    plan.kill_device = 0;
    plan.kill_at_op = 1 + static_cast<long long>(rng.next_below(400));
  }
  ApspOptions faulty = opts;
  faulty.faults = &plan;
  faulty.retry.max_retries = static_cast<int>(rng.next_below(4));
  auto store = make_ram_store(g.num_vertices());
  try {
    const ApspResult r = solve_apsp(g, faulty, *store);
    expect_bit_identical(*s_clean, clean, *store, r);
  } catch (const sim::FaultError&) {
    // Typed failure is an acceptable outcome; anything else would have
    // escaped this catch and failed the test.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSchedule, ::testing::Range(0, 24));

}  // namespace
}  // namespace gapsp::core
