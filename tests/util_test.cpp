#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "util/common.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace gapsp {
namespace {

TEST(Common, SatAddClampsAtInfinity) {
  EXPECT_EQ(sat_add(1, 2), 3);
  EXPECT_EQ(sat_add(kInf, 5), kInf);
  EXPECT_EQ(sat_add(5, kInf), kInf);
  EXPECT_EQ(sat_add(kInf, kInf), kInf);
  EXPECT_EQ(sat_add(kInf - 1, 1), kInf);
}

TEST(Common, SatAddNeverOverflows) {
  // kInf + kInf must stay representable by construction of the sentinel.
  EXPECT_LT(static_cast<long long>(kInf) * 2,
            static_cast<long long>(std::numeric_limits<dist_t>::max()));
}

TEST(Common, MinPlusPicksShorterPath) {
  EXPECT_EQ(min_plus(10, 3, 4), 7);
  EXPECT_EQ(min_plus(5, 3, 4), 5);
  EXPECT_EQ(min_plus(5, kInf, 1), 5);
  EXPECT_EQ(min_plus(kInf, kInf, kInf), kInf);
}

TEST(Common, CheckThrowsWithContext) {
  EXPECT_THROW(GAPSP_CHECK(false, "context message"), Error);
  try {
    GAPSP_CHECK(1 == 2, "the reason");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("the reason"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(13), 13u);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 2000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 2000, 0.5, 0.05);
}

TEST(Rng, ForkIsIndependentStream) {
  Rng a(5);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Stats, WelfordMatchesClosedForm) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(Stats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Stats, CvPercent) {
  RunningStats s;
  s.add(9.0);
  s.add(11.0);
  EXPECT_NEAR(s.cv_percent(), 100.0 * std::sqrt(2.0) / 10.0, 1e-9);
}

TEST(Table, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CountInsertsThousandsSeparators) {
  EXPECT_EQ(Table::count(14988), "14,988");
  EXPECT_EQ(Table::count(152), "152");
  EXPECT_EQ(Table::count(1000000), "1,000,000");
  EXPECT_EQ(Table::count(-1234), "-1,234");
  EXPECT_EQ(Table::count(0), "0");
}

TEST(Table, NumRespectsDigits) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, GrainChunksStillCoverEverything) {
  ThreadPool pool(3);
  std::atomic<long long> sum{0};
  pool.parallel_for(1000, [&](std::size_t i) { sum += static_cast<long long>(i); },
                    /*grain=*/64);
  EXPECT_EQ(sum.load(), 999LL * 1000 / 2);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, GlobalPoolSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Regression: a parallel_for issued from inside a pool worker used to
  // enqueue its chunks behind the caller's own blocked task. It must inline
  // instead — and still cover every (outer, inner) pair exactly once.
  ThreadPool pool(4);
  constexpr std::size_t kOuter = 8, kInner = 16;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.parallel_for(kOuter, [&](std::size_t o) {
    pool.parallel_for(kInner,
                      [&](std::size_t i) { hits[o * kInner + i]++; });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedCallOnGlobalPoolDoesNotDeadlock) {
  // Same shape as Johnson MSSP (outer over sources) containing a grid
  // launch (inner over blocks), both on the global pool.
  auto& pool = ThreadPool::global();
  std::atomic<long long> sum{0};
  pool.parallel_for(6, [&](std::size_t o) {
    pool.parallel_for(50, [&](std::size_t i) {
      sum += static_cast<long long>(o * 1000 + i);
    });
  });
  long long want = 0;
  for (long long o = 0; o < 6; ++o) {
    for (long long i = 0; i < 50; ++i) want += o * 1000 + i;
  }
  EXPECT_EQ(sum.load(), want);
}

TEST(ThreadPool, AutoGrainCoversAllIndices) {
  // grain <= 1 derives count/(4·workers); coverage must be unaffected for
  // counts around the chunking boundaries.
  ThreadPool pool(3);
  for (const std::size_t count : {1u, 2u, 11u, 12u, 13u, 100u, 1023u}) {
    std::atomic<std::size_t> n{0};
    pool.parallel_for(count, [&](std::size_t) { n++; });
    EXPECT_EQ(n.load(), count) << "count=" << count;
  }
}

TEST(ThreadPool, MaxThreadsOneRunsInlineInOrder) {
  ThreadPool pool(4);
  std::vector<int> order;  // unsynchronized on purpose: must stay inline
  pool.parallel_for(6, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
                    /*grain=*/1, /*max_threads=*/1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(ThreadPool, InWorkerReflectsContext) {
  EXPECT_FALSE(ThreadPool::in_worker());
  ThreadPool pool(2);
  std::atomic<int> inside{0};
  // Each body sleeps long enough that the enqueued worker reliably claims a
  // chunk before the calling thread (which also participates) drains them.
  pool.parallel_for(4, [&](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    if (ThreadPool::in_worker()) inside++;
  });
  EXPECT_GT(inside.load(), 0);
  EXPECT_FALSE(ThreadPool::in_worker());
}

TEST(ThreadPool, ThreadsFromEnvAcceptsPositiveIntegers) {
  EXPECT_EQ(ThreadPool::threads_from_env("1"), 1u);
  EXPECT_EQ(ThreadPool::threads_from_env("4"), 4u);
  EXPECT_EQ(ThreadPool::threads_from_env("128"), 128u);
  EXPECT_EQ(ThreadPool::threads_from_env("  8  "), 8u);  // trimmed
  EXPECT_EQ(ThreadPool::threads_from_env("007"), 7u);
}

TEST(ThreadPool, ThreadsFromEnvRejectsEverythingElse) {
  // Regression: strtol without an end-pointer check once accepted "4x16" as
  // 4 and cast "-2" to a huge size_t — both must fall back (0) instead of
  // half-parsing.
  EXPECT_EQ(ThreadPool::threads_from_env(nullptr), 0u);
  EXPECT_EQ(ThreadPool::threads_from_env(""), 0u);
  EXPECT_EQ(ThreadPool::threads_from_env("   "), 0u);
  EXPECT_EQ(ThreadPool::threads_from_env("0"), 0u);
  EXPECT_EQ(ThreadPool::threads_from_env("-2"), 0u);
  EXPECT_EQ(ThreadPool::threads_from_env("+4"), 0u);
  EXPECT_EQ(ThreadPool::threads_from_env("4x16"), 0u);
  EXPECT_EQ(ThreadPool::threads_from_env("x4"), 0u);
  EXPECT_EQ(ThreadPool::threads_from_env("1e3"), 0u);
  EXPECT_EQ(ThreadPool::threads_from_env("3.5"), 0u);
  EXPECT_EQ(ThreadPool::threads_from_env("4 2"), 0u);
  EXPECT_EQ(ThreadPool::threads_from_env("0x10"), 0u);
  // A value past every plausible range still parses digit-clean; overflow
  // of long falls back rather than wrapping.
  EXPECT_EQ(ThreadPool::threads_from_env("99999999999999999999999999"), 0u);
}

}  // namespace
}  // namespace gapsp
