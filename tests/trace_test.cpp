#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/ooc_boundary.h"
#include "graph/generators.h"
#include "sim/device.h"
#include "sim/trace.h"
#include "test_util.h"

namespace gapsp::sim {
namespace {

TEST(Trace, RecordsKernelsAndTransfers) {
  Device dev(DeviceSpec::v100().with_memory(1 << 20));
  TraceRecorder trace;
  dev.set_trace(&trace);
  auto buf = dev.alloc<dist_t>(256);
  std::vector<dist_t> host(256);
  dev.memcpy_h2d(kDefaultStream, buf.data(), host.data(), 1024);
  dev.launch(kDefaultStream, "my_kernel", [&](LaunchCtx&) {
    KernelProfile p;
    p.ops = 1e6;
    return p;
  });
  dev.memcpy_d2h(kDefaultStream, host.data(), buf.data(), 1024);

  ASSERT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.events()[0].kind, TraceEvent::Kind::kH2D);
  EXPECT_EQ(trace.events()[1].kind, TraceEvent::Kind::kKernel);
  EXPECT_EQ(trace.events()[1].name, "my_kernel");
  EXPECT_EQ(trace.events()[2].kind, TraceEvent::Kind::kD2H);
}

TEST(Trace, EventsAreOrderedAndNonOverlappingPerStream) {
  Device dev(DeviceSpec::v100().with_memory(1 << 20));
  TraceRecorder trace;
  dev.set_trace(&trace);
  auto buf = dev.alloc<dist_t>(1024);
  std::vector<dist_t> host(1024);
  for (int i = 0; i < 5; ++i) {
    dev.memcpy_h2d(kDefaultStream, buf.data(), host.data(), 4096, true);
  }
  double prev_end = 0.0;
  for (const auto& e : trace.events()) {
    EXPECT_GE(e.start_s, prev_end - 1e-15);
    EXPECT_GT(e.end_s, e.start_s);
    prev_end = e.end_s;
  }
}

TEST(Trace, ChildKernelsCounted) {
  Device dev(DeviceSpec::v100().with_memory(1 << 20));
  TraceRecorder trace;
  dev.set_trace(&trace);
  dev.launch(kDefaultStream, "parent", [&](LaunchCtx& ctx) {
    ctx.child_launch(KernelProfile{1e5, 0, 8, 1.0});
    ctx.child_launch(KernelProfile{1e5, 0, 8, 1.0});
    return KernelProfile{};
  });
  ASSERT_EQ(trace.events().size(), 1u);
  EXPECT_EQ(trace.events()[0].child_kernels, 2);
}

TEST(Trace, TotalsByKind) {
  Device dev(DeviceSpec::v100().with_memory(1 << 20));
  TraceRecorder trace;
  dev.set_trace(&trace);
  auto buf = dev.alloc<dist_t>(1024);
  std::vector<dist_t> host(1024);
  dev.memcpy_h2d(kDefaultStream, buf.data(), host.data(), 4096);
  dev.memcpy_d2h(kDefaultStream, host.data(), buf.data(), 4096);
  const double h2d = trace.total(TraceEvent::Kind::kH2D);
  const double d2h = trace.total(TraceEvent::Kind::kD2H);
  EXPECT_GT(h2d, 0.0);
  EXPECT_NEAR(h2d, d2h, 1e-12);  // same bytes, same (pageable) link
  EXPECT_EQ(trace.total(TraceEvent::Kind::kKernel), 0.0);
}

TEST(Trace, ChromeTraceJsonShape) {
  TraceRecorder trace;
  TraceEvent e;
  e.name = "k\"ernel\\";
  e.stream = 2;
  e.start_s = 1e-3;
  e.end_s = 2e-3;
  e.ops = 10;
  trace.record(e);
  std::ostringstream os;
  trace.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1000"), std::string::npos);
  EXPECT_NE(json.find("k\\\"ernel\\\\"), std::string::npos);  // escaped
}

TEST(Trace, ClearEmptiesRecorder) {
  TraceRecorder trace;
  trace.record(TraceEvent{});
  trace.clear();
  EXPECT_TRUE(trace.events().empty());
}

TEST(Trace, EndToEndThroughApspOptions) {
  const auto g = graph::make_road(12, 12, 55);
  TraceRecorder trace;
  core::ApspOptions opts;
  opts.device = DeviceSpec::v100_scaled(2u << 20);
  opts.fw_tile = 32;
  opts.trace = &trace;
  auto store = core::make_ram_store(g.num_vertices());
  const auto r = core::ooc_boundary(g, opts, *store);
  EXPECT_GT(trace.events().size(), 10u);
  // Trace busy time per kind is consistent with the device metrics.
  const double kernels = trace.total(TraceEvent::Kind::kKernel);
  EXPECT_NEAR(kernels, r.metrics.kernel_seconds,
              r.metrics.kernel_seconds * 1e-9);
  const double transfers = trace.total(TraceEvent::Kind::kH2D) +
                           trace.total(TraceEvent::Kind::kD2H);
  EXPECT_NEAR(transfers, r.metrics.transfer_seconds,
              r.metrics.transfer_seconds * 1e-9);
}

}  // namespace
}  // namespace gapsp::sim
