#include <gtest/gtest.h>

#include <limits>

#include "core/apsp.h"
#include "core/selector.h"
#include "graph/generators.h"
#include "test_util.h"

namespace gapsp::core {
namespace {

ApspOptions sel_opts() {
  ApspOptions o;
  o.device = sim::DeviceSpec::v100_scaled(2u << 20);
  o.fw_tile = 32;
  return o;
}

/// Thresholds scaled to this test's graph sizes (density ~ c/n; see
/// DESIGN.md — the paper's 1%/0.01% assume n ≈ 10⁵).
SelectorOptions scaled_thresholds() {
  SelectorOptions s;
  s.dense_percent = 4.0;
  s.sparse_percent = 0.8;
  return s;
}

TEST(Selector, DenseBandConsidersFwAndJohnson) {
  const auto g = graph::make_dense(300, 12.0, 91);  // > 4% density
  const auto report = select_algorithm(g, sel_opts(), scaled_thresholds());
  EXPECT_TRUE(report.estimate(Algorithm::kBlockedFloydWarshall).considered);
  EXPECT_TRUE(report.estimate(Algorithm::kJohnson).considered);
  EXPECT_FALSE(report.estimate(Algorithm::kBoundary).considered);
}

TEST(Selector, SparseBandConsidersBoundaryAndJohnson) {
  const auto g = graph::make_road(30, 30, 92);  // density well below 0.8%
  ASSERT_LT(g.density_percent(), 0.8);
  const auto report = select_algorithm(g, sel_opts(), scaled_thresholds());
  EXPECT_FALSE(report.estimate(Algorithm::kBlockedFloydWarshall).considered);
  EXPECT_TRUE(report.estimate(Algorithm::kBoundary).considered);
}

TEST(Selector, MiddleBandAlwaysJohnson) {
  const auto g = graph::make_mesh(400, 8, 93);  // density between bands
  ASSERT_GT(g.density_percent(), 0.8);
  ASSERT_LT(g.density_percent(), 4.0);
  const auto report = select_algorithm(g, sel_opts(), scaled_thresholds());
  EXPECT_EQ(report.chosen, Algorithm::kJohnson);
  EXPECT_FALSE(report.estimate(Algorithm::kBlockedFloydWarshall).considered);
  EXPECT_FALSE(report.estimate(Algorithm::kBoundary).considered);
}

TEST(Selector, ChoosesBoundaryForSmallSeparatorGraph) {
  // Needs a zoo-scale road graph: below n ≈ 1000 the fixed launch overheads
  // of the per-component FW kernels make Johnson genuinely faster, and the
  // selector (correctly) picks it.
  const auto g = graph::make_road(38, 38, 94);
  auto opts = sel_opts();
  opts.device = sim::DeviceSpec::v100_scaled();  // 8 MiB
  const auto report = select_algorithm(g, opts, scaled_thresholds());
  EXPECT_EQ(report.chosen, Algorithm::kBoundary);
}

TEST(Selector, ChosenMatchesArgminOfEstimates) {
  for (std::uint64_t seed : {95u, 96u, 97u}) {
    const auto g = graph::make_road(20, 21, seed);
    const auto report = select_algorithm(g, sel_opts(), scaled_thresholds());
    double best = std::numeric_limits<double>::infinity();
    Algorithm arg = Algorithm::kJohnson;
    for (const auto& e : report.estimates) {
      if (e.considered && e.cost.feasible && e.cost.total() < best) {
        best = e.cost.total();
        arg = e.algo;
      }
    }
    EXPECT_EQ(report.chosen, arg);
  }
}

TEST(Selector, InfeasibleBoundaryFallsBackToJohnson) {
  const auto g = graph::make_mesh(600, 14, 98, 0.3);
  auto opts = sel_opts();
  opts.device = test::tiny_device(64u << 10);
  SelectorOptions st;
  st.sparse_percent = 100.0;  // force the sparse band
  // Johnson may not fit either on 64 KiB; use a size where it does.
  opts.device = test::tiny_device(900u << 10);
  const auto report = select_algorithm(g, opts, st);
  if (!report.estimate(Algorithm::kBoundary).cost.feasible) {
    EXPECT_EQ(report.chosen, Algorithm::kJohnson);
  }
}

TEST(Selector, InfeasibleJohnsonFallsBackToFeasibleFw) {
  // Regression: the selector seeded `best` from the Johnson estimate without
  // a feasibility check, so when the CSR itself outgrew the device (Johnson
  // infeasible — pre-fix estimate_johnson even threw out of the planner) the
  // selector either crashed or pinned the choice on an unrunnable algorithm
  // instead of falling back to the feasible FW estimate.
  const auto g = graph::make_dense(300, 12.0, 91);  // dense band
  auto opts = sel_opts();
  opts.device = test::tiny_device(64u << 10);  // CSR > 0.95 * 64 KiB
  const auto report = select_algorithm(g, opts, scaled_thresholds());
  EXPECT_FALSE(report.estimate(Algorithm::kJohnson).cost.feasible);
  ASSERT_TRUE(
      report.estimate(Algorithm::kBlockedFloydWarshall).cost.feasible);
  EXPECT_EQ(report.chosen, Algorithm::kBlockedFloydWarshall);
}

TEST(Selector, AllInfeasibleStillReturnsAnAlgorithm) {
  // When nothing fits, the selector must still name a deterministic last
  // resort (Johnson) rather than crash or return kAuto.
  const auto g = graph::make_dense(300, 12.0, 91);
  auto opts = sel_opts();
  opts.device = test::tiny_device(1u << 10);  // 1 KiB: nothing is feasible
  const auto report = select_algorithm(g, opts, scaled_thresholds());
  for (const auto& e : report.estimates) {
    if (e.considered) {
      EXPECT_FALSE(e.cost.feasible);
    }
  }
  EXPECT_EQ(report.chosen, Algorithm::kJohnson);
}

TEST(Selector, ReportDensityMatchesGraph) {
  const auto g = graph::make_road(15, 15, 99);
  const auto report = select_algorithm(g, sel_opts(), scaled_thresholds());
  EXPECT_DOUBLE_EQ(report.density_percent, g.density_percent());
}

TEST(Selector, NeverReturnsAuto) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto g = graph::make_erdos_renyi(200, 700 * seed, seed);
    const auto report = select_algorithm(g, sel_opts(), scaled_thresholds());
    EXPECT_NE(report.chosen, Algorithm::kAuto);
  }
}

TEST(SolveApsp, AutoRunsSelectorAndSolves) {
  const auto g = graph::make_road(14, 14, 100);
  auto store = make_ram_store(g.num_vertices());
  SelectorReport report;
  auto opts = sel_opts();
  const auto r = solve_apsp(g, opts, *store, &report, scaled_thresholds());
  EXPECT_EQ(r.used, report.chosen);
  test::expect_store_matches_reference(g, *store, r);
}

TEST(SolveApsp, ExplicitAlgorithmBypassesSelector) {
  const auto g = graph::make_erdos_renyi(120, 500, 101);
  auto opts = sel_opts();
  opts.algorithm = Algorithm::kJohnson;
  auto store = make_ram_store(g.num_vertices());
  const auto r = solve_apsp(g, opts, *store);
  EXPECT_EQ(r.used, Algorithm::kJohnson);
}

TEST(SolveApsp, EmptyGraphRejected) {
  graph::CsrGraph g;
  auto store = make_ram_store(0);
  auto opts = sel_opts();
  EXPECT_THROW(solve_apsp(g, opts, *store), Error);
}

TEST(SolveApsp, AlgorithmNames) {
  EXPECT_STREQ(algorithm_name(Algorithm::kAuto), "auto");
  EXPECT_STREQ(algorithm_name(Algorithm::kJohnson), "johnson");
  EXPECT_STREQ(algorithm_name(Algorithm::kBoundary), "boundary");
  EXPECT_STREQ(algorithm_name(Algorithm::kBlockedFloydWarshall),
               "blocked-floyd-warshall");
}

}  // namespace
}  // namespace gapsp::core
