// Stream/event semantics of the overlap engine: the discipline the
// StreamPipeline relies on (async ops advance only their own stream clock,
// event waits serialize across streams, synchronize() is the makespan) plus
// the pipeline/ping-pong protocol itself — slot rotation, release gating,
// capacity and pinned-staging accounting, and the hidden/exposed transfer
// split in DeviceMetrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "sim/device.h"
#include "sim/device_spec.h"
#include "sim/stream_pipeline.h"

namespace gapsp::sim {
namespace {

DeviceSpec small_spec() { return DeviceSpec::v100().with_memory(1 << 20); }

KernelProfile full_profile(const Device& dev, double ops) {
  KernelProfile p;
  p.ops = ops;
  p.blocks = dev.spec().max_active_blocks;
  return p;
}

// ---- raw stream/event semantics the pipeline builds on ----

TEST(StreamSemantics, AsyncOpsAdvanceOnlyTheirStream) {
  Device dev(small_spec());
  auto buf = dev.alloc<dist_t>(1024);
  std::vector<dist_t> host(1024);
  const StreamId s2 = dev.create_stream();
  dev.memcpy_h2d(s2, buf.data(), host.data(), 4096, /*async=*/true,
                 /*pinned=*/true);
  // Host clock and stream 0 are untouched: an event recorded on stream 0
  // still carries time zero, and a wait on it is a no-op.
  EXPECT_EQ(dev.now(), 0.0);
  EXPECT_EQ(dev.record_event(kDefaultStream).time, 0.0);
  EXPECT_GT(dev.record_event(s2).time, 0.0);
}

TEST(StreamSemantics, EventWaitSerializesAcrossStreams) {
  Device dev(small_spec());
  auto buf = dev.alloc<dist_t>(1024);
  std::vector<dist_t> host(1024);
  const StreamId s2 = dev.create_stream();
  const double t = dev.transfer_time(4096, /*pinned=*/true);

  dev.memcpy_h2d(kDefaultStream, buf.data(), host.data(), 4096, true, true);
  dev.wait_event(s2, dev.record_event(kDefaultStream));
  dev.memcpy_d2h(s2, host.data(), buf.data(), 4096, true, true);
  dev.synchronize();
  EXPECT_NEAR(dev.now(), 2 * t, t * 1e-9);
}

TEST(StreamSemantics, WaitOnPassedEventIsNoOp) {
  Device dev(small_spec());
  auto buf = dev.alloc<dist_t>(1024);
  std::vector<dist_t> host(1024);
  const StreamId s2 = dev.create_stream();
  dev.memcpy_h2d(s2, buf.data(), host.data(), 4096, true, true);
  const Event e = dev.record_event(s2);
  dev.stream_synchronize(s2);
  // s2's clock already passed e; waiting must not move anything forward.
  const double before = dev.now();
  dev.wait_event(kDefaultStream, e);
  dev.memcpy_h2d(kDefaultStream, buf.data(), host.data(), 4, true, true);
  dev.synchronize();
  EXPECT_GE(dev.now(), before);
  EXPECT_LT(dev.now(), before + dev.transfer_time(4096, true));
}

TEST(StreamSemantics, SynchronizeIsMakespanOverStreams) {
  Device dev(small_spec());
  auto buf = dev.alloc<dist_t>(4096);
  std::vector<dist_t> host(4096);
  const StreamId s2 = dev.create_stream();
  // Unequal loads: stream 0 gets one copy, s2 gets three.
  dev.memcpy_h2d(kDefaultStream, buf.data(), host.data(), 4096, true, true);
  for (int i = 0; i < 3; ++i) {
    dev.memcpy_h2d(s2, buf.data(), host.data(), 4096, true, true);
  }
  dev.synchronize();
  const double t = dev.transfer_time(4096, true);
  EXPECT_NEAR(dev.now(), 3 * t, t * 1e-9);
}

// ---- StreamPipeline ----

TEST(StreamPipeline, SerialModeAliasesEveryLane) {
  Device dev(small_spec());
  StreamPipeline pipe(dev, /*overlap=*/false);
  EXPECT_FALSE(pipe.overlapped());
  EXPECT_EQ(pipe.in_stream(), pipe.compute_stream());
  EXPECT_EQ(pipe.out_stream(), pipe.compute_stream());
}

TEST(StreamPipeline, OverlapModeUsesDistinctLanes) {
  Device dev(small_spec());
  StreamPipeline pipe(dev, /*overlap=*/true);
  EXPECT_TRUE(pipe.overlapped());
  EXPECT_NE(pipe.in_stream(), pipe.compute_stream());
  EXPECT_NE(pipe.out_stream(), pipe.compute_stream());
  EXPECT_NE(pipe.in_stream(), pipe.out_stream());
}

TEST(StreamPipeline, StageInMovesRealDataImmediately) {
  Device dev(small_spec());
  StreamPipeline pipe(dev, true);
  auto buf = dev.alloc<dist_t>(4);
  const std::vector<dist_t> src{7, 8, 9, 10};
  pipe.stage_in(buf.data(), src.data(), 16);
  // Functional copies happen at call time (the simulator's correctness
  // contract) — only the *timeline* is asynchronous.
  EXPECT_EQ(buf[0], 7);
  EXPECT_EQ(buf[3], 10);
}

TEST(StreamPipeline, StageOutOrdersAfterProducerEvent) {
  Device dev(small_spec());
  StreamPipeline pipe(dev, true);
  auto buf = dev.alloc<dist_t>(1024);
  std::vector<dist_t> host(1024);
  const double k = dev.launch(pipe.compute_stream(), "produce",
                              [&](LaunchCtx&) {
                                return full_profile(dev, 1e7);
                              });
  pipe.stage_out(host.data(), buf.data(), 4096, pipe.computed());
  pipe.drain();
  const double t = dev.transfer_time(4096, true);
  // The D2H may not start, in sim time, before the producer kernel ends.
  EXPECT_NEAR(dev.now(), k + t, (k + t) * 1e-9);
}

TEST(StreamPipeline, SerialModeSerializesTheSameCallSequence) {
  // The identical call sequence, overlap off: every duration stacks on one
  // stream, so the makespan is the plain sum.
  Device dev(small_spec());
  StreamPipeline pipe(dev, /*overlap=*/false);
  auto buf = dev.alloc<dist_t>(1024);
  std::vector<dist_t> host(1024);
  const Event in = pipe.stage_in(buf.data(), host.data(), 4096);
  pipe.consume(in);
  const double k = dev.launch(pipe.compute_stream(), "work", [&](LaunchCtx&) {
    return full_profile(dev, 1e7);
  });
  pipe.stage_out(host.data(), buf.data(), 4096, pipe.computed());
  pipe.drain();
  const double t = dev.transfer_time(4096, true);
  EXPECT_NEAR(dev.now(), 2 * t + k, (2 * t + k) * 1e-9);
}

// ---- PingPong slots ----

TEST(PingPong, SlotCountFollowsPipelineMode) {
  Device dev(small_spec());
  StreamPipeline serial(dev, false);
  PingPong<dist_t> one(serial, 256, "buf");
  EXPECT_EQ(one.slots(), 1);

  Device dev2(small_spec());
  StreamPipeline overlap(dev2, true);
  PingPong<dist_t> two(overlap, 256, "buf");
  EXPECT_EQ(two.slots(), 2);
  PingPong<dist_t> pinned_single(overlap, 256, "buf", /*slots=*/1);
  EXPECT_EQ(pinned_single.slots(), 1);
}

TEST(PingPong, CapacityChargesEverySlot) {
  Device dev(small_spec());
  StreamPipeline pipe(dev, true);
  EXPECT_EQ(dev.used_bytes(), 0u);
  {
    PingPong<dist_t> pp(pipe, 1000, "pair");
    EXPECT_EQ(dev.used_bytes(), 2 * 1000 * sizeof(dist_t));
  }
  EXPECT_EQ(dev.used_bytes(), 0u);
}

TEST(PingPong, DoubleBufferedPairMustFitTheDevice) {
  // A buffer that fits once but not twice: the overlapped pair must throw,
  // exactly like cudaMalloc would.
  Device dev(small_spec());
  StreamPipeline pipe(dev, true);
  const std::size_t elems = (1 << 20) / sizeof(dist_t) * 6 / 10;
  EXPECT_THROW(PingPong<dist_t> pp(pipe, elems, "too big"), Error);
  Device dev2(small_spec());
  StreamPipeline serial(dev2, false);
  EXPECT_NO_THROW(PingPong<dist_t> pp(serial, elems, "fits once"));
}

TEST(PingPong, PinnedStagingIsAccounted) {
  Device dev(small_spec());
  StreamPipeline pipe(dev, true);
  EXPECT_EQ(dev.pinned_bytes(), 0u);
  {
    PingPong<dist_t> pp(pipe, 500, "pair");
    EXPECT_EQ(dev.pinned_bytes(), 2 * 500 * sizeof(dist_t));
  }
  EXPECT_EQ(dev.pinned_bytes(), 0u);
  EXPECT_EQ(dev.metrics().pinned_peak_bytes, 2 * 500 * sizeof(dist_t));
}

TEST(PingPong, AcquireRotatesSlots) {
  Device dev(small_spec());
  StreamPipeline pipe(dev, true);
  PingPong<dist_t> pp(pipe, 64, "pair");
  EXPECT_EQ(pp.acquire(pipe.in_stream()), 0);
  EXPECT_EQ(pp.acquire(pipe.in_stream()), 1);
  EXPECT_EQ(pp.acquire(pipe.in_stream()), 0);
}

TEST(PingPong, ReleaseGatesTheNextRefill) {
  // Single-slot pair: the refill of iteration i+1 must wait for the consumer
  // of iteration i, so the loop fully serializes even on separate streams.
  Device dev(small_spec());
  StreamPipeline pipe(dev, true);
  PingPong<dist_t> pp(pipe, 1024, "single", /*slots=*/1);
  std::vector<dist_t> host(1024);
  const int iters = 4;
  double kernel_s = 0.0;
  for (int i = 0; i < iters; ++i) {
    const int s = pp.acquire(pipe.in_stream());
    pp.set_ready(s, pipe.stage_in(pp.device_ptr(s), host.data(), 4096));
    pipe.consume(pp.ready(s));
    kernel_s += dev.launch(pipe.compute_stream(), "consume", [&](LaunchCtx&) {
      return full_profile(dev, 1e7);
    });
    pp.release(s, pipe.computed());
  }
  pipe.drain();
  const double t = dev.transfer_time(4096, true);
  EXPECT_NEAR(dev.now(), iters * t + kernel_s, dev.now() * 1e-9);
}

TEST(PingPong, TwoSlotsPipelineTransfersUnderCompute) {
  // Same loop with two slots: after the first fill, every H2D hides under
  // the previous kernel. Makespan ≈ first transfer + all kernels (kernels
  // dominate here), strictly less than the serialized single-slot run.
  auto run = [](int slots) {
    Device dev(small_spec());
    StreamPipeline pipe(dev, true);
    PingPong<dist_t> pp(pipe, 8192, "pair", slots);
    std::vector<dist_t> host(8192);
    for (int i = 0; i < 6; ++i) {
      const int s = pp.acquire(pipe.in_stream());
      pp.set_ready(s, pipe.stage_in(pp.device_ptr(s), host.data(), 32768));
      pipe.consume(pp.ready(s));
      dev.launch(pipe.compute_stream(), "consume", [&](LaunchCtx&) {
        KernelProfile p;
        p.ops = 1e8;
        p.blocks = dev.spec().max_active_blocks;
        return p;
      });
      pp.release(s, pipe.computed());
    }
    pipe.drain();
    dev.synchronize();
    return dev.metrics();
  };
  const DeviceMetrics serial = run(1);
  const DeviceMetrics pipelined = run(2);
  EXPECT_LT(pipelined.sim_seconds, serial.sim_seconds);
  // Double buffering hides transfers that the single slot exposes.
  EXPECT_GT(pipelined.hidden_transfer_seconds,
            serial.hidden_transfer_seconds);
}

// ---- hidden/exposed transfer metrics ----

TEST(OverlapMetrics, HiddenPlusExposedEqualsTransferSeconds) {
  Device dev(small_spec());
  StreamPipeline pipe(dev, true);
  auto buf = dev.alloc<dist_t>(4096);
  std::vector<dist_t> host(4096);
  dev.launch(pipe.compute_stream(), "work", [&](LaunchCtx&) {
    return full_profile(dev, 1e8);
  });
  pipe.stage_in(buf.data(), host.data(), 16384);
  pipe.stage_out(host.data(), buf.data(), 16384, Event{});
  pipe.drain();
  dev.synchronize();
  const DeviceMetrics m = dev.metrics();
  EXPECT_NEAR(m.hidden_transfer_seconds + m.exposed_transfer_seconds,
              m.transfer_seconds, m.transfer_seconds * 1e-9);
}

TEST(OverlapMetrics, ConcurrentTransferIsFullyHidden) {
  // Kernel on compute, transfer on the H2D lane, both starting at t = 0 and
  // the kernel strictly longer: the whole transfer is hidden.
  Device dev(small_spec());
  StreamPipeline pipe(dev, true);
  auto buf = dev.alloc<dist_t>(1024);
  std::vector<dist_t> host(1024);
  const double k = dev.launch(pipe.compute_stream(), "long", [&](LaunchCtx&) {
    return full_profile(dev, 1e9);
  });
  pipe.stage_in(buf.data(), host.data(), 4096);
  pipe.drain();
  dev.synchronize();
  const DeviceMetrics m = dev.metrics();
  ASSERT_GT(k, m.transfer_seconds);
  EXPECT_NEAR(m.hidden_transfer_seconds, m.transfer_seconds,
              m.transfer_seconds * 1e-9);
  EXPECT_NEAR(m.exposed_transfer_seconds, 0.0, 1e-15);
  // And the makespan is the kernel alone — the transfer cost vanished.
  EXPECT_NEAR(m.sim_seconds, k, k * 1e-9);
}

TEST(OverlapMetrics, SameStreamTransferIsFullyExposed) {
  // On a single stream nothing can overlap: hidden must be zero.
  Device dev(small_spec());
  auto buf = dev.alloc<dist_t>(1024);
  std::vector<dist_t> host(1024);
  dev.launch(kDefaultStream, "work", [&](LaunchCtx&) {
    return full_profile(dev, 1e8);
  });
  dev.memcpy_h2d(kDefaultStream, buf.data(), host.data(), 4096, true, true);
  dev.synchronize();
  const DeviceMetrics m = dev.metrics();
  EXPECT_EQ(m.hidden_transfer_seconds, 0.0);
  EXPECT_NEAR(m.exposed_transfer_seconds, m.transfer_seconds, 1e-15);
}

TEST(OverlapMetrics, StreamBusySecondsPerLane) {
  Device dev(small_spec());
  StreamPipeline pipe(dev, true);
  auto buf = dev.alloc<dist_t>(1024);
  std::vector<dist_t> host(1024);
  const double k = dev.launch(pipe.compute_stream(), "work", [&](LaunchCtx&) {
    return full_profile(dev, 1e7);
  });
  pipe.stage_in(buf.data(), host.data(), 4096);
  pipe.drain();
  dev.synchronize();
  const DeviceMetrics m = dev.metrics();
  const double t = dev.transfer_time(4096, true);
  ASSERT_EQ(m.stream_busy_seconds.size(), 3u);  // compute + in + out lanes
  EXPECT_NEAR(m.stream_busy_seconds[pipe.compute_stream()], k, k * 1e-9);
  EXPECT_NEAR(m.stream_busy_seconds[pipe.in_stream()], t, t * 1e-9);
  EXPECT_EQ(m.stream_busy_seconds[pipe.out_stream()], 0.0);
  const double busy = std::accumulate(m.stream_busy_seconds.begin(),
                                      m.stream_busy_seconds.end(), 0.0);
  EXPECT_NEAR(busy, m.kernel_seconds + m.transfer_seconds, busy * 1e-9);
}

}  // namespace
}  // namespace gapsp::sim
