#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "core/dist_io.h"
#include "core/ooc_boundary.h"
#include "core/ooc_johnson.h"
#include "graph/generators.h"
#include "test_util.h"

namespace gapsp::core {
namespace {

std::string tmp_path(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(DistIo, RoundTripIdentityPermutation) {
  const auto g = graph::make_erdos_renyi(60, 250, 801);
  auto store = make_ram_store(g.num_vertices());
  ApspOptions opts;
  opts.device = test::tiny_device(1u << 20);
  const auto r = ooc_johnson(g, opts, *store);

  const std::string path = tmp_path("dist_io_id.bin");
  save_distances(*store, r, path);
  const auto loaded = load_distances(path);
  ASSERT_EQ(loaded.store->n(), g.num_vertices());
  EXPECT_TRUE(loaded.perm.empty());
  for (vidx_t u = 0; u < g.num_vertices(); u += 7) {
    for (vidx_t v = 0; v < g.num_vertices(); v += 5) {
      EXPECT_EQ(loaded.store->at(u, v), store->at(u, v));
    }
  }
  std::remove(path.c_str());
}

TEST(DistIo, RoundTripWithBoundaryPermutation) {
  const auto g = graph::make_road(12, 12, 802);
  auto store = make_ram_store(g.num_vertices());
  ApspOptions opts;
  opts.device = test::tiny_device(2u << 20);
  opts.fw_tile = 32;
  const auto r = ooc_boundary(g, opts, *store);
  ASSERT_FALSE(r.perm.empty());

  const std::string path = tmp_path("dist_io_perm.bin");
  save_distances(*store, r, path);
  const auto loaded = load_distances(path);
  ASSERT_EQ(loaded.perm.size(), r.perm.size());
  // Query through the loaded mapping, compare with Dijkstra.
  const auto ref = sssp::dijkstra(g, 3);
  for (vidx_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(loaded.store->at(loaded.stored_id(3), loaded.stored_id(v)),
              ref[v]);
  }
  std::remove(path.c_str());
}

TEST(DistIo, RejectsBadMagic) {
  const std::string path = tmp_path("dist_io_bad.bin");
  std::ofstream(path) << "this is not a distance matrix";
  EXPECT_THROW(load_distances(path), Error);
  std::remove(path.c_str());
}

TEST(DistIo, RejectsTruncatedMatrix) {
  const auto g = graph::make_erdos_renyi(40, 120, 803);
  auto store = make_ram_store(g.num_vertices());
  ApspOptions opts;
  opts.device = test::tiny_device(1u << 20);
  const auto r = ooc_johnson(g, opts, *store);
  const std::string path = tmp_path("dist_io_trunc.bin");
  save_distances(*store, r, path);
  // Chop off the tail.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  }
  EXPECT_THROW(load_distances(path), Error);
  std::remove(path.c_str());
}

TEST(DistIo, RejectsMissingFile) {
  EXPECT_THROW(load_distances("/nonexistent/nowhere.gapsp"), Error);
}

TEST(DistIo, RejectsHugeNBeforeAllocating) {
  // Regression: a malformed header announcing a huge n used to reach the
  // n×n allocation before any consistency check — n²·4 bytes can overflow
  // std::size_t arithmetic or OOM-kill the process. The loader must reject
  // the file from its header + real size alone, before allocating anything.
  auto write_header_only = [](const std::string& path, std::int64_t n) {
    std::ofstream out(path, std::ios::binary);
    const char magic[8] = {'G', 'A', 'P', 'S', 'P', 'D', 'M', '1'};
    const std::int64_t has_perm = 0;
    out.write(magic, 8);
    out.write(reinterpret_cast<const char*>(&n), 8);
    out.write(reinterpret_cast<const char*>(&has_perm), 8);
  };
  const std::string path = tmp_path("dist_io_huge.bin");
  // Largest n that passes the plausibility bound: must die at the size
  // cross-check, not in the allocator.
  write_header_only(path, (1LL << 31) - 1);
  EXPECT_THROW(load_distances(path), Error);
  // Beyond the plausibility bound entirely.
  write_header_only(path, 1LL << 40);
  EXPECT_THROW(load_distances(path), Error);
  // Negative n.
  write_header_only(path, -4);
  EXPECT_THROW(load_distances(path), Error);
  // Garbage has_perm discriminator on an otherwise tiny file.
  {
    std::ofstream out(path, std::ios::binary);
    const char magic[8] = {'G', 'A', 'P', 'S', 'P', 'D', 'M', '1'};
    const std::int64_t n = 2, has_perm = 7;
    out.write(magic, 8);
    out.write(reinterpret_cast<const char*>(&n), 8);
    out.write(reinterpret_cast<const char*>(&has_perm), 8);
  }
  EXPECT_THROW(load_distances(path), Error);
  std::remove(path.c_str());
}

TEST(DistIo, RejectsMalformedPermutation) {
  // Hand-craft a header announcing a permutation, then write a bogus one.
  const std::string path = tmp_path("dist_io_badperm.bin");
  {
    std::ofstream out(path, std::ios::binary);
    const char magic[8] = {'G', 'A', 'P', 'S', 'P', 'D', 'M', '1'};
    const std::int64_t n = 2, has_perm = 1;
    out.write(magic, 8);
    out.write(reinterpret_cast<const char*>(&n), 8);
    out.write(reinterpret_cast<const char*>(&has_perm), 8);
    const vidx_t perm[2] = {0, 0};  // not a bijection
    out.write(reinterpret_cast<const char*>(perm), sizeof(perm));
    const dist_t m[4] = {0, 1, 1, 0};
    out.write(reinterpret_cast<const char*>(m), sizeof(m));
  }
  EXPECT_THROW(load_distances(path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gapsp::core
