#include <gtest/gtest.h>

#include <vector>

#include "core/ooc_boundary.h"
#include "graph/generators.h"
#include "test_util.h"

namespace gapsp::core {
namespace {

using test::expect_store_matches_reference;
using test::tiny_device;

ApspOptions boundary_opts(std::size_t mem = 2u << 20) {
  ApspOptions o;
  o.device = tiny_device(mem);
  o.fw_tile = 32;
  return o;
}

TEST(OocBoundary, PlanUsesPaperDefaultK) {
  const auto g = graph::make_road(20, 20, 61);  // n = 400, √n/4 = 5
  const auto plan = plan_boundary(g, boundary_opts());
  EXPECT_EQ(plan.k, 5);
  EXPECT_EQ(plan.nb, plan.layout.num_boundary);
  EXPECT_GT(plan.staging_rows, 0);
}

TEST(OocBoundary, PlanHonoursExplicitK) {
  const auto g = graph::make_road(20, 20, 61);
  auto opts = boundary_opts();
  opts.num_components = 7;
  EXPECT_EQ(plan_boundary(g, opts).k, 7);
}

TEST(OocBoundary, PlanReducesKWhenMemoryTight) {
  // Many components inflate the boundary matrix; with a small device the
  // requested k cannot fit and the plan must fall back to fewer components.
  const auto g = graph::make_road(24, 24, 69);
  auto opts = boundary_opts(640u << 10);
  opts.num_components = 64;
  const auto plan = plan_boundary(g, opts);
  EXPECT_LT(plan.k, 64);
  EXPECT_GE(plan.k, 2);
  // ... and the reduced plan must actually run correctly.
  auto store = make_ram_store(g.num_vertices());
  const auto r = ooc_boundary(g, opts, plan, *store);
  expect_store_matches_reference(g, *store, r);
}

TEST(OocBoundary, PlanThrowsWhenNothingFits) {
  const auto g = graph::make_mesh(600, 14, 63, 0.3);
  auto opts = boundary_opts(64u << 10);
  EXPECT_THROW(plan_boundary(g, opts), Error);
}

TEST(OocBoundary, MatchesDijkstraOnRoad) {
  const auto g = graph::make_road(16, 15, 64);
  auto store = make_ram_store(g.num_vertices());
  const auto r = ooc_boundary(g, boundary_opts(), *store);
  EXPECT_FALSE(r.perm.empty());
  expect_store_matches_reference(g, *store, r);
}

TEST(OocBoundary, MatchesDijkstraOnMesh) {
  const auto g = graph::make_mesh(350, 10, 65, 0.1);
  auto store = make_ram_store(g.num_vertices());
  const auto r = ooc_boundary(g, boundary_opts(4u << 20), *store);
  expect_store_matches_reference(g, *store, r);
}

TEST(OocBoundary, MatchesWithManyComponents) {
  const auto g = graph::make_road(18, 18, 66);
  auto opts = boundary_opts(4u << 20);
  opts.num_components = 12;
  auto store = make_ram_store(g.num_vertices());
  const auto r = ooc_boundary(g, opts, *store);
  EXPECT_EQ(r.metrics.boundary_k, 12);
  expect_store_matches_reference(g, *store, r);
}

TEST(OocBoundary, NaiveBatchedOverlapAllAgree) {
  const auto g = graph::make_road(15, 16, 67);
  const vidx_t n = g.num_vertices();
  std::vector<std::unique_ptr<DistStore>> stores;
  std::vector<ApspResult> results;
  for (const auto& [batch, overlap] :
       std::vector<std::pair<bool, bool>>{{false, false}, {true, false},
                                          {true, true}}) {
    auto opts = boundary_opts();
    opts.batch_transfers = batch;
    opts.overlap_transfers = overlap;
    stores.push_back(make_ram_store(n));
    results.push_back(ooc_boundary(g, opts, *stores.back()));
  }
  std::vector<dist_t> a(n), b(n);
  for (std::size_t variant = 1; variant < stores.size(); ++variant) {
    for (vidx_t u = 0; u < n; ++u) {
      stores[0]->read_block(results[0].stored_id(u), 0, 1, n, a.data(), n);
      stores[variant]->read_block(results[variant].stored_id(u), 0, 1, n,
                                  b.data(), n);
      // Same row content up to the (identical) permutation.
      ASSERT_EQ(a, b) << "variant " << variant << " row " << u;
    }
  }
}

TEST(OocBoundary, BatchingReducesTransferCount) {
  const auto g = graph::make_road(16, 16, 68);
  auto naive_opts = boundary_opts();
  naive_opts.batch_transfers = false;
  naive_opts.overlap_transfers = false;
  auto batched_opts = boundary_opts();
  batched_opts.overlap_transfers = false;
  auto s1 = make_ram_store(g.num_vertices());
  auto s2 = make_ram_store(g.num_vertices());
  const auto naive = ooc_boundary(g, naive_opts, *s1);
  const auto batched = ooc_boundary(g, batched_opts, *s2);
  EXPECT_GT(naive.metrics.transfers_d2h, batched.metrics.transfers_d2h);
  EXPECT_LT(batched.metrics.transfer_seconds, naive.metrics.transfer_seconds);
}

TEST(OocBoundary, OverlapShortensMakespan) {
  // Device sized so the staging buffer holds only part of the output —
  // several flushes happen and the async ones can hide behind compute.
  const auto g = graph::make_road(24, 24, 69);
  auto no_overlap = boundary_opts(1u << 20);
  no_overlap.overlap_transfers = false;
  auto with_overlap = boundary_opts(1u << 20);
  auto s1 = make_ram_store(g.num_vertices());
  auto s2 = make_ram_store(g.num_vertices());
  const auto serial = ooc_boundary(g, no_overlap, *s1);
  const auto overlapped = ooc_boundary(g, with_overlap, *s2);
  EXPECT_LT(overlapped.metrics.sim_seconds, serial.metrics.sim_seconds);
}

TEST(OocBoundary, PermutationStoredAndInvertible) {
  const auto g = graph::make_road(12, 12, 70);
  auto store = make_ram_store(g.num_vertices());
  const auto r = ooc_boundary(g, boundary_opts(), *store);
  ASSERT_EQ(r.perm.size(), static_cast<std::size_t>(g.num_vertices()));
  std::vector<bool> seen(r.perm.size(), false);
  for (vidx_t p : r.perm) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, g.num_vertices());
    ASSERT_FALSE(seen[p]);
    seen[p] = true;
  }
  // Diagonal of the stored matrix is zero.
  for (vidx_t u = 0; u < g.num_vertices(); ++u) {
    EXPECT_EQ(store->at(r.stored_id(u), r.stored_id(u)), 0);
  }
}

TEST(OocBoundary, DisconnectedGraphHandled) {
  // Two islands: distances across must stay kInf; components with zero
  // boundary nodes exercise the b_i == 0 paths.
  auto g = graph::CsrGraph::from_edges(
      60,
      [] {
        std::vector<graph::Edge> e;
        for (vidx_t v = 1; v < 30; ++v)
          e.push_back({v - 1, v, 1});
        for (vidx_t v = 31; v < 60; ++v)
          e.push_back({v - 1, v, 2});
        return e;
      }(),
      /*symmetrize=*/true);
  auto opts = boundary_opts();
  opts.num_components = 2;
  auto store = make_ram_store(g.num_vertices());
  const auto r = ooc_boundary(g, opts, *store);
  expect_store_matches_reference(g, *store, r);
  EXPECT_EQ(store->at(r.stored_id(0), r.stored_id(59)), kInf);
}

TEST(OocBoundary, DeviceCapacityRespected) {
  const auto g = graph::make_road(16, 16, 71);
  const auto opts = boundary_opts(1u << 20);
  auto store = make_ram_store(g.num_vertices());
  const auto r = ooc_boundary(g, opts, *store);
  EXPECT_LE(r.metrics.device_peak_bytes, opts.device.memory_bytes);
  expect_store_matches_reference(g, *store, r);
}

}  // namespace
}  // namespace gapsp::core
