#include <gtest/gtest.h>

#include "util/args.h"

namespace gapsp {
namespace {

Args parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, FlagWithSeparateValue) {
  const auto a = parse({"--input", "graph.mtx"});
  EXPECT_EQ(a.get_or("input", ""), "graph.mtx");
}

TEST(Args, FlagWithEqualsValue) {
  const auto a = parse({"--device=k80"});
  EXPECT_EQ(a.get_or("device", ""), "k80");
}

TEST(Args, SwitchWithoutValue) {
  const auto a = parse({"--stats", "--input", "x"});
  EXPECT_TRUE(a.has("stats"));
  EXPECT_EQ(a.get_or("stats", "?"), "");
}

TEST(Args, SwitchFollowedByFlagTakesNoValue) {
  const auto a = parse({"--keep-store", "--store", "file"});
  EXPECT_TRUE(a.has("keep-store"));
  EXPECT_EQ(a.get_or("keep-store", "?"), "");
  EXPECT_EQ(a.get_or("store", ""), "file");
}

TEST(Args, PositionalArguments) {
  const auto a = parse({"pos1", "--flag", "v", "pos2"});
  // "pos2" is consumed as --flag's value? No: --flag takes "v"; "pos2" is
  // positional.
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "pos1");
  EXPECT_EQ(a.positional()[1], "pos2");
}

TEST(Args, MissingFlagGivesDefault) {
  const auto a = parse({});
  EXPECT_FALSE(a.get("missing").has_value());
  EXPECT_EQ(a.get_or("missing", "dflt"), "dflt");
  EXPECT_EQ(a.get_int_or("missing", 42), 42);
  EXPECT_EQ(a.get_double_or("missing", 2.5), 2.5);
}

TEST(Args, IntAndDoubleParsing) {
  const auto a = parse({"--n", "128", "--ratio", "0.25"});
  EXPECT_EQ(a.get_int_or("n", 0), 128);
  EXPECT_DOUBLE_EQ(a.get_double_or("ratio", 0), 0.25);
}

TEST(Args, BadNumberThrows) {
  const auto a = parse({"--n", "abc"});
  EXPECT_THROW(a.get_int_or("n", 0), Error);
  EXPECT_THROW(a.get_double_or("n", 0), Error);
}

TEST(Args, RepeatedFlagThrows) {
  EXPECT_THROW(parse({"--x", "1", "--x", "2"}), Error);
}

TEST(Args, EmptyFlagNameThrows) { EXPECT_THROW(parse({"--", "v"}), Error); }

TEST(Args, UnknownDetection) {
  const auto a = parse({"--known", "1", "--typo", "2"});
  const auto unknown = a.unknown({"known", "other"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(Args, NegativeNumberAsValue) {
  // A negative number does not start with "--", so it binds as a value.
  const auto a = parse({"--offset", "-5"});
  EXPECT_EQ(a.get_int_or("offset", 0), -5);
}

}  // namespace
}  // namespace gapsp
