// Cross-implementation property sweep: every algorithm × every graph family
// must agree exactly with the Dijkstra oracle, and the outputs must satisfy
// metric-space invariants (symmetry for undirected inputs, triangle
// inequality, zero diagonal).
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "core/apsp.h"
#include "graph/generators.h"
#include "test_util.h"
#include "util/rng.h"

namespace gapsp::core {
namespace {

struct FamilyCase {
  const char* name;
  graph::CsrGraph (*make)();
};

graph::CsrGraph family_road() { return graph::make_road(13, 14, 201); }
graph::CsrGraph family_mesh() { return graph::make_mesh(200, 10, 202); }
graph::CsrGraph family_rmat() { return graph::make_rmat(7, 900, 203); }
graph::CsrGraph family_er() { return graph::make_erdos_renyi(180, 700, 204); }
graph::CsrGraph family_disconnected() {
  return graph::make_erdos_renyi(150, 120, 205, /*connect=*/false);
}

const FamilyCase kFamilies[] = {
    {"road", family_road},
    {"mesh", family_mesh},
    {"rmat", family_rmat},
    {"erdos", family_er},
    {"disconnected", family_disconnected},
};

const Algorithm kAlgorithms[] = {
    Algorithm::kBlockedFloydWarshall,
    Algorithm::kJohnson,
    Algorithm::kBoundary,
};

class ApspProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  static ApspOptions opts() {
    ApspOptions o;
    o.device = test::tiny_device(2u << 20);
    o.fw_tile = 32;
    return o;
  }
};

TEST_P(ApspProperty, MatchesDijkstraOracle) {
  const auto& family = kFamilies[std::get<0>(GetParam())];
  const Algorithm algo = kAlgorithms[std::get<1>(GetParam())];
  const auto g = family.make();
  auto o = opts();
  o.algorithm = algo;
  auto store = make_ram_store(g.num_vertices());
  const auto r = solve_apsp(g, o, *store);
  EXPECT_EQ(r.used, algo);
  test::expect_store_matches_reference(g, *store, r);
}

TEST_P(ApspProperty, MetricSpaceInvariants) {
  const auto& family = kFamilies[std::get<0>(GetParam())];
  const Algorithm algo = kAlgorithms[std::get<1>(GetParam())];
  const auto g = family.make();
  auto o = opts();
  o.algorithm = algo;
  auto store = make_ram_store(g.num_vertices());
  const auto r = solve_apsp(g, o, *store);

  const vidx_t n = g.num_vertices();
  Rng rng(777);
  for (int trial = 0; trial < 200; ++trial) {
    const vidx_t u = static_cast<vidx_t>(rng.next_below(n));
    const vidx_t v = static_cast<vidx_t>(rng.next_below(n));
    const vidx_t w = static_cast<vidx_t>(rng.next_below(n));
    const dist_t duv = store->at(r.stored_id(u), r.stored_id(v));
    const dist_t dvu = store->at(r.stored_id(v), r.stored_id(u));
    const dist_t duw = store->at(r.stored_id(u), r.stored_id(w));
    const dist_t dwv = store->at(r.stored_id(w), r.stored_id(v));
    // Zero diagonal.
    ASSERT_EQ(store->at(r.stored_id(u), r.stored_id(u)), 0);
    // Symmetry (all generators emit undirected graphs).
    ASSERT_EQ(duv, dvu);
    // Triangle inequality (with saturating infinity).
    ASSERT_LE(duv, sat_add(duw, dwv));
    // Distances bounded below by any single edge... non-negative.
    ASSERT_GE(duv, 0);
  }
}

std::string param_name(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  const char* algo_names[] = {"fw", "johnson", "boundary"};
  return std::string(kFamilies[std::get<0>(info.param)].name) + "_" +
         algo_names[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ApspProperty,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 3)),
    param_name);

// ---- targeted edge cases across all algorithms ----

class ApspEdgeCase : public ::testing::TestWithParam<int> {};

TEST_P(ApspEdgeCase, TwoVertexGraph) {
  const auto g =
      graph::CsrGraph::from_edges(2, {{0, 1, 9}}, /*symmetrize=*/true);
  ApspOptions o;
  o.device = test::tiny_device(1u << 20);
  o.algorithm = kAlgorithms[GetParam()];
  auto store = make_ram_store(2);
  const auto r = solve_apsp(g, o, *store);
  EXPECT_EQ(store->at(r.stored_id(0), r.stored_id(1)), 9);
  EXPECT_EQ(store->at(r.stored_id(0), r.stored_id(0)), 0);
}

TEST_P(ApspEdgeCase, ZeroWeightEdges) {
  const auto g = graph::CsrGraph::from_edges(
      4, {{0, 1, 0}, {1, 2, 0}, {2, 3, 5}}, true);
  ApspOptions o;
  o.device = test::tiny_device(1u << 20);
  o.algorithm = kAlgorithms[GetParam()];
  auto store = make_ram_store(4);
  const auto r = solve_apsp(g, o, *store);
  EXPECT_EQ(store->at(r.stored_id(0), r.stored_id(2)), 0);
  EXPECT_EQ(store->at(r.stored_id(0), r.stored_id(3)), 5);
}

TEST_P(ApspEdgeCase, StarGraphHighDegreeHub) {
  std::vector<graph::Edge> edges;
  for (vidx_t leaf = 1; leaf < 40; ++leaf) {
    edges.push_back({0, leaf, static_cast<dist_t>(leaf)});
  }
  const auto g = graph::CsrGraph::from_edges(40, std::move(edges), true);
  ApspOptions o;
  o.device = test::tiny_device(1u << 20);
  o.algorithm = kAlgorithms[GetParam()];
  o.heavy_degree_threshold = 8;  // hub goes through the DP path for Johnson
  auto store = make_ram_store(40);
  const auto r = solve_apsp(g, o, *store);
  test::expect_store_matches_reference(g, *store, r);
}

std::string algo_param_name(const ::testing::TestParamInfo<int>& info) {
  static const char* names[] = {"fw", "johnson", "boundary"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ApspEdgeCase, ::testing::Range(0, 3),
                         algo_param_name);

}  // namespace
}  // namespace gapsp::core
