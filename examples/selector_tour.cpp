// Selector tour: run the Sec. IV selection methodology across all three
// graph regimes and show the density filter plus cost-model estimates that
// drive each decision.
#include <iostream>

#include "core/apsp.h"
#include "graph/generators.h"
#include "util/table.h"

int main() {
  using namespace gapsp;

  struct Scenario {
    const char* label;
    graph::CsrGraph graph;
  };
  const Scenario scenarios[] = {
      {"road map (small separator)", graph::make_road(36, 36, 1)},
      {"FEM mesh (large separator)", graph::make_mesh(900, 24, 2)},
      {"dense random", graph::make_dense(600, 8.0, 3)},
  };

  core::ApspOptions opts;
  opts.device = sim::DeviceSpec::v100_scaled();
  core::SelectorOptions sel;
  sel.dense_percent = 4.0;
  sel.sparse_percent = 0.8;

  Table table({"scenario", "density%", "est FW (ms)", "est Johnson (ms)",
               "est Boundary (ms)", "chosen", "actual (ms)"});
  for (const auto& s : scenarios) {
    auto store = core::make_ram_store(s.graph.num_vertices());
    core::SelectorReport report;
    const auto r = core::solve_apsp(s.graph, opts, *store, &report, sel);
    auto cell = [&](core::Algorithm a) -> std::string {
      const auto& e = report.estimate(a);
      if (!e.considered) return "(filtered)";
      if (!e.cost.feasible) return "(infeasible)";
      return Table::num(e.cost.total() * 1e3, 3);
    };
    table.add_row({s.label, Table::num(report.density_percent, 3),
                   cell(core::Algorithm::kBlockedFloydWarshall),
                   cell(core::Algorithm::kJohnson),
                   cell(core::Algorithm::kBoundary),
                   core::algorithm_name(r.used),
                   Table::num(r.metrics.sim_seconds * 1e3, 3)});
  }
  std::cout << "density filter: >4% -> {FW, Johnson}; <0.8% -> "
               "{Johnson, Boundary}; else Johnson (thresholds scaled to "
               "laptop-size graphs)\n\n";
  table.print(std::cout);
  return 0;
}
