// Domain example: closeness centrality on a scale-free social network.
//
// Scale-free graphs are where the paper's Johnson implementation shines:
// no useful separator, low density, highly skewed degrees (which is exactly
// what the dynamic-parallelism optimization targets). This example runs the
// batched MSSP Johnson solver, derives closeness centrality from the full
// distance matrix, and prints the top influencers.
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/apsp.h"
#include "core/ooc_johnson.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "util/table.h"

int main() {
  using namespace gapsp;

  const graph::CsrGraph net = graph::make_rmat(11, 14000, /*seed=*/31);
  const auto deg = graph::degree_stats(net);
  std::cout << "social network: " << net.num_vertices() << " users, "
            << net.num_edges() / 2 << " ties, max degree " << deg.max
            << " (mean " << deg.mean << ")\n";

  core::ApspOptions opts;
  opts.device = sim::DeviceSpec::v100_scaled();
  opts.algorithm = core::Algorithm::kJohnson;
  opts.heavy_degree_threshold = 32;  // hubs traverse via child kernels

  auto store = core::make_ram_store(net.num_vertices());
  const core::ApspResult r = core::ooc_johnson(net, opts, *store);
  std::cout << "johnson: bat=" << r.metrics.johnson_batch_size << ", "
            << r.metrics.johnson_num_batches << " batches, "
            << r.metrics.child_kernels << " dynamic-parallelism child kernels, "
            << r.metrics.sim_seconds * 1e3 << " ms simulated\n\n";

  // Closeness centrality: (reachable - 1) / sum of distances, per user.
  const vidx_t n = net.num_vertices();
  std::vector<dist_t> row(static_cast<std::size_t>(n));
  std::vector<std::pair<double, vidx_t>> closeness;
  for (vidx_t u = 0; u < n; ++u) {
    store->read_block(u, 0, 1, n, row.data(), row.size());
    long long sum = 0, reach = 0;
    for (dist_t d : row) {
      if (d < kInf && d > 0) {
        sum += d;
        ++reach;
      }
    }
    if (sum > 0) {
      closeness.emplace_back(static_cast<double>(reach) / sum, u);
    }
  }
  std::sort(closeness.rbegin(), closeness.rend());

  Table top({"rank", "user", "degree", "closeness"});
  for (int i = 0; i < 10 && i < static_cast<int>(closeness.size()); ++i) {
    top.add_row({std::to_string(i + 1),
                 "u" + std::to_string(closeness[i].second),
                 std::to_string(net.out_degree(closeness[i].second)),
                 Table::num(closeness[i].first, 5)});
  }
  std::cout << "top-10 users by closeness centrality:\n";
  top.print(std::cout);
  return 0;
}
