// Quickstart: build a graph, let the selector pick an out-of-core APSP
// implementation, solve, and query a few distances.
//
//   ./quickstart            — run on a generated road network
//   ./quickstart graph.mtx  — run on a Matrix Market file
#include <iostream>

#include "core/apsp.h"
#include "graph/generators.h"
#include "graph/matrix_market.h"

int main(int argc, char** argv) {
  using namespace gapsp;

  // 1. Get a graph: a road-like network (or a user-supplied .mtx file).
  graph::CsrGraph g = argc > 1
                          ? graph::read_matrix_market_file(argv[1])
                          : graph::make_road(40, 40, /*seed=*/7);
  std::cout << "graph: n=" << g.num_vertices() << " m=" << g.num_edges()
            << " density=" << g.density_percent() << "%\n";

  // 2. Configure the (simulated) device and let the selector choose.
  core::ApspOptions opts;
  opts.device = sim::DeviceSpec::v100_scaled();
  core::SelectorOptions sel;
  sel.dense_percent = 4.0;   // thresholds scaled to laptop-sized graphs
  sel.sparse_percent = 0.8;  // (see DESIGN.md §2)

  // 3. Solve into a RAM-backed distance store.
  auto store = core::make_ram_store(g.num_vertices());
  core::SelectorReport report;
  const core::ApspResult r = core::solve_apsp(g, opts, *store, &report, sel);

  std::cout << "selector chose: " << core::algorithm_name(r.used)
            << "  (density " << report.density_percent << "%)\n";
  std::cout << "simulated time: " << r.metrics.sim_seconds * 1e3 << " ms, "
            << "kernels " << r.metrics.kernels << ", D2H "
            << r.metrics.bytes_d2h / (1 << 20) << " MiB in "
            << r.metrics.transfers_d2h << " transfers\n";

  // 4. Query distances (stored_id maps through the boundary permutation).
  const vidx_t n = g.num_vertices();
  for (vidx_t v : {n / 4, n / 2, n - 1}) {
    const dist_t d = store->at(r.stored_id(0), r.stored_id(v));
    std::cout << "dist(0, " << v << ") = ";
    if (d >= kInf) {
      std::cout << "unreachable\n";
    } else {
      std::cout << d << "\n";
    }
  }
  return 0;
}
