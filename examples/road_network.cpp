// Domain example: city-to-city distance tables on a road network.
//
// Road networks are the paper's flagship small-separator workload: the
// boundary algorithm partitions the map into regions, solves each region on
// the GPU, stitches them through the (small) boundary graph, and streams the
// full distance table out-of-core. This example builds a synthetic road
// network, runs the boundary algorithm explicitly, compares its simulated
// time against the multicore BGL-plus baseline, and prints a distance table
// between a handful of "cities" (random junctions).
#include <cmath>
#include <iostream>

#include "baseline/baselines.h"
#include "core/apsp.h"
#include "core/ooc_boundary.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace gapsp;

  const graph::CsrGraph map = graph::make_road(46, 46, /*seed=*/2026);
  std::cout << "road network: " << map.num_vertices() << " junctions, "
            << map.num_edges() / 2 << " road segments\n\n";

  core::ApspOptions opts;
  opts.device = sim::DeviceSpec::v100_scaled();
  opts.algorithm = core::Algorithm::kBoundary;

  const core::BoundaryPlan plan = core::plan_boundary(map, opts);
  std::cout << "partition: k=" << plan.k << " components, max size "
            << plan.max_comp << ", " << plan.nb << " boundary junctions "
            << "(√(k·n) ideal ≈ "
            << static_cast<int>(std::sqrt(static_cast<double>(plan.k) *
                                          map.num_vertices()))
            << ")\n";

  auto store = core::make_ram_store(map.num_vertices());
  const core::ApspResult r = core::ooc_boundary(map, opts, plan, *store);
  const auto bgl =
      baseline::bgl_plus_apsp(map, baseline::CpuSpec::e5_2680_v2());

  std::cout << "boundary algorithm (simulated V100): "
            << r.metrics.sim_seconds * 1e3 << " ms\n"
            << "BGL-plus 28-thread baseline (modeled): "
            << bgl.sim_seconds * 1e3 << " ms\n"
            << "speedup: " << bgl.sim_seconds / r.metrics.sim_seconds
            << "x\n\n";

  // Distance table between a few random "cities".
  Rng rng(99);
  std::vector<vidx_t> cities;
  for (int i = 0; i < 6; ++i) {
    cities.push_back(static_cast<vidx_t>(rng.next_below(map.num_vertices())));
  }
  Table table([&] {
    std::vector<std::string> h{"from\\to"};
    for (vidx_t c : cities) h.push_back("j" + std::to_string(c));
    return h;
  }());
  for (vidx_t from : cities) {
    std::vector<std::string> row{"j" + std::to_string(from)};
    for (vidx_t to : cities) {
      const dist_t d = store->at(r.stored_id(from), r.stored_id(to));
      row.push_back(d >= kInf ? "-" : std::to_string(d));
    }
    table.add_row(row);
  }
  std::cout << "pairwise driving distances:\n";
  table.print(std::cout);
  return 0;
}
