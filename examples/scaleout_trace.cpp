// Scale-out + observability example: run the boundary algorithm on 1..4
// simulated GPUs, inspect the speedup, and export a chrome://tracing
// timeline of the single-device run (open timeline.json in a Chromium
// browser at chrome://tracing, or in Perfetto).
#include <fstream>
#include <iostream>

#include "core/multi_device.h"
#include "graph/generators.h"
#include "util/table.h"

int main() {
  using namespace gapsp;

  const graph::CsrGraph map = graph::make_road(44, 44, /*seed=*/7);
  std::cout << "graph: " << map.num_vertices() << " vertices, "
            << map.num_edges() / 2 << " edges\n\n";

  core::ApspOptions opts;
  opts.device = sim::DeviceSpec::v100_scaled();

  Table t({"devices", "makespan (ms)", "speedup", "per-device finish (ms)"});
  double base = 0.0;
  for (int d : {1, 2, 3, 4}) {
    auto store = core::make_ram_store(map.num_vertices());
    const auto r = core::ooc_boundary_multi(map, opts, d, *store);
    if (d == 1) base = r.result.metrics.sim_seconds;
    std::string finishes;
    for (double x : r.multi.device_seconds) {
      finishes += (finishes.empty() ? "" : " / ") + Table::num(x * 1e3, 2);
    }
    t.add_row({std::to_string(d),
               Table::num(r.result.metrics.sim_seconds * 1e3, 3),
               Table::num(base / r.result.metrics.sim_seconds, 2) + "x",
               finishes});
  }
  t.print(std::cout);

  // Timeline of the single-device run.
  sim::TraceRecorder trace;
  opts.trace = &trace;
  auto store = core::make_ram_store(map.num_vertices());
  core::ooc_boundary(map, opts, *store);
  std::ofstream out("timeline.json");
  trace.write_chrome_trace(out);
  std::cout << "\nwrote timeline.json (" << trace.events().size()
            << " events): kernels "
            << trace.total(sim::TraceEvent::Kind::kKernel) * 1e3
            << " ms busy, D2H "
            << trace.total(sim::TraceEvent::Kind::kD2H) * 1e3
            << " ms busy — load it in chrome://tracing to see the overlap.\n";
  return 0;
}
