#include "partition/kway.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

#include "util/rng.h"

namespace gapsp::part {
namespace {

/// Internal weighted graph used across coarsening levels. Edge weights count
/// contracted multiplicity (how many original arcs an edge represents);
/// vertex weights count contracted original vertices.
struct LevelGraph {
  vidx_t n = 0;
  std::vector<eidx_t> offsets;
  std::vector<vidx_t> targets;
  std::vector<eidx_t> eweights;
  std::vector<vidx_t> vweights;
};

LevelGraph from_csr(const graph::CsrGraph& g) {
  LevelGraph lg;
  lg.n = g.num_vertices();
  lg.offsets.assign(g.offsets().begin(), g.offsets().end());
  lg.targets.assign(g.targets().begin(), g.targets().end());
  lg.eweights.assign(lg.targets.size(), 1);
  lg.vweights.assign(static_cast<std::size_t>(lg.n), 1);
  return lg;
}

/// Heavy-edge matching: visit vertices in random order, match each unmatched
/// vertex with its unmatched neighbour of maximum edge weight.
std::vector<vidx_t> heavy_edge_matching(const LevelGraph& g, Rng& rng) {
  std::vector<vidx_t> match(static_cast<std::size_t>(g.n), -1);
  std::vector<vidx_t> order(static_cast<std::size_t>(g.n));
  std::iota(order.begin(), order.end(), 0);
  for (vidx_t i = g.n - 1; i > 0; --i) {
    std::swap(order[i], order[rng.next_below(static_cast<std::uint64_t>(i) + 1)]);
  }
  for (vidx_t u : order) {
    if (match[u] != -1) continue;
    vidx_t best = -1;
    eidx_t best_w = -1;
    for (eidx_t e = g.offsets[u]; e < g.offsets[u + 1]; ++e) {
      const vidx_t v = g.targets[e];
      if (v == u || match[v] != -1) continue;
      if (g.eweights[e] > best_w) {
        best_w = g.eweights[e];
        best = v;
      }
    }
    match[u] = best == -1 ? u : best;
    if (best != -1) match[best] = u;
  }
  for (vidx_t u = 0; u < g.n; ++u) {
    if (match[u] == -1) match[u] = u;
  }
  return match;
}

struct Contraction {
  LevelGraph coarse;
  std::vector<vidx_t> fine_to_coarse;
};

Contraction contract(const LevelGraph& g, const std::vector<vidx_t>& match) {
  Contraction out;
  out.fine_to_coarse.assign(static_cast<std::size_t>(g.n), -1);
  vidx_t nc = 0;
  for (vidx_t u = 0; u < g.n; ++u) {
    if (out.fine_to_coarse[u] != -1) continue;
    out.fine_to_coarse[u] = nc;
    const vidx_t v = match[u];
    if (v != u) out.fine_to_coarse[v] = nc;
    ++nc;
  }
  // Aggregate edges (cu, cv) by sorting.
  struct CEdge {
    vidx_t u, v;
    eidx_t w;
  };
  std::vector<CEdge> cedges;
  cedges.reserve(g.targets.size());
  for (vidx_t u = 0; u < g.n; ++u) {
    const vidx_t cu = out.fine_to_coarse[u];
    for (eidx_t e = g.offsets[u]; e < g.offsets[u + 1]; ++e) {
      const vidx_t cv = out.fine_to_coarse[g.targets[e]];
      if (cu != cv) cedges.push_back(CEdge{cu, cv, g.eweights[e]});
    }
  }
  std::sort(cedges.begin(), cedges.end(), [](const CEdge& a, const CEdge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  LevelGraph& c = out.coarse;
  c.n = nc;
  c.offsets.assign(static_cast<std::size_t>(nc) + 1, 0);
  c.vweights.assign(static_cast<std::size_t>(nc), 0);
  for (vidx_t u = 0; u < g.n; ++u) {
    c.vweights[out.fine_to_coarse[u]] += g.vweights[u];
  }
  std::size_t i = 0;
  while (i < cedges.size()) {
    std::size_t j = i;
    eidx_t w = 0;
    while (j < cedges.size() && cedges[j].u == cedges[i].u &&
           cedges[j].v == cedges[i].v) {
      w += cedges[j].w;
      ++j;
    }
    c.targets.push_back(cedges[i].v);
    c.eweights.push_back(w);
    ++c.offsets[static_cast<std::size_t>(cedges[i].u) + 1];
    i = j;
  }
  std::partial_sum(c.offsets.begin(), c.offsets.end(), c.offsets.begin());
  return out;
}

/// Greedy region growing on the coarsest graph: seeds spread by repeated
/// farthest-BFS, then grow the currently-smallest region through its most
/// strongly connected frontier vertex.
std::vector<vidx_t> initial_partition(const LevelGraph& g, int k,
                                      const std::vector<double>& frac,
                                      Rng& rng) {
  std::vector<vidx_t> part(static_cast<std::size_t>(g.n), -1);
  if (k == 1) {
    std::fill(part.begin(), part.end(), 0);
    return part;
  }
  // Seed selection: farthest-point BFS sweep.
  std::vector<vidx_t> seeds;
  seeds.push_back(static_cast<vidx_t>(rng.next_below(g.n)));
  std::vector<int> hop(static_cast<std::size_t>(g.n));
  while (static_cast<int>(seeds.size()) < k) {
    std::fill(hop.begin(), hop.end(), -1);
    std::queue<vidx_t> q;
    for (vidx_t s : seeds) {
      hop[s] = 0;
      q.push(s);
    }
    while (!q.empty()) {
      const vidx_t u = q.front();
      q.pop();
      for (eidx_t e = g.offsets[u]; e < g.offsets[u + 1]; ++e) {
        const vidx_t v = g.targets[e];
        if (hop[v] == -1) {
          hop[v] = hop[u] + 1;
          q.push(v);
        }
      }
    }
    vidx_t far = -1;
    int far_hop = -1;
    for (vidx_t v = 0; v < g.n; ++v) {
      if (hop[v] > far_hop) {
        far_hop = hop[v];
        far = v;
      }
    }
    if (far == -1 || std::find(seeds.begin(), seeds.end(), far) != seeds.end()) {
      // Disconnected leftover or degenerate graph: pick any unseeded vertex.
      far = -1;
      for (vidx_t v = 0; v < g.n; ++v) {
        if (std::find(seeds.begin(), seeds.end(), v) == seeds.end()) {
          far = v;
          break;
        }
      }
      if (far == -1) break;
    }
    seeds.push_back(far);
  }
  // Grow regions: total vertex weight balanced.
  vidx_t total_w = 0;
  for (vidx_t w : g.vweights) total_w += w;
  std::vector<vidx_t> region_w(static_cast<std::size_t>(k), 0);
  using QItem = std::pair<eidx_t, vidx_t>;  // (connection weight, vertex)
  std::vector<std::priority_queue<QItem>> frontier(static_cast<std::size_t>(k));
  for (int p = 0; p < static_cast<int>(seeds.size()); ++p) {
    part[seeds[p]] = p;
    region_w[p] += g.vweights[seeds[p]];
    for (eidx_t e = g.offsets[seeds[p]]; e < g.offsets[seeds[p] + 1]; ++e) {
      frontier[p].push({g.eweights[e], g.targets[e]});
    }
  }
  vidx_t assigned = 0;
  for (vidx_t v = 0; v < g.n; ++v) {
    if (part[v] != -1) ++assigned;
  }
  auto relative_load = [&](int q2) {
    return static_cast<double>(region_w[q2]) / frac[q2];
  };
  while (assigned < g.n) {
    // Pick the (target-relative) lightest region that still has a frontier.
    int p = -1;
    for (int q2 = 0; q2 < k; ++q2) {
      if (frontier[q2].empty()) continue;
      if (p == -1 || relative_load(q2) < relative_load(p)) p = q2;
    }
    if (p == -1) {
      // All frontiers empty (disconnected graph): assign leftovers to the
      // lightest region directly.
      int lightest = 0;
      for (int q2 = 1; q2 < k; ++q2) {
        if (region_w[q2] < region_w[lightest]) lightest = q2;
      }
      for (vidx_t v = 0; v < g.n; ++v) {
        if (part[v] == -1) {
          part[v] = lightest;
          region_w[lightest] += g.vweights[v];
          ++assigned;
        }
      }
      break;
    }
    vidx_t v = -1;
    while (!frontier[p].empty()) {
      v = frontier[p].top().second;
      frontier[p].pop();
      if (part[v] == -1) break;
      v = -1;
    }
    if (v == -1) continue;
    part[v] = p;
    region_w[p] += g.vweights[v];
    ++assigned;
    for (eidx_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
      if (part[g.targets[e]] == -1) {
        frontier[p].push({g.eweights[e], g.targets[e]});
      }
    }
  }
  return part;
}

/// One greedy boundary refinement pass. Moves boundary vertices to the
/// neighbouring component with the largest cut-weight gain while respecting
/// the balance bound. Returns total gain achieved.
eidx_t refine_pass(const LevelGraph& g, std::vector<vidx_t>& part, int k,
                   const std::vector<double>& frac, double max_imbalance) {
  vidx_t total_w = 0;
  for (vidx_t w : g.vweights) total_w += w;
  std::vector<double> limit(static_cast<std::size_t>(k));
  for (int p = 0; p < k; ++p) {
    limit[p] = max_imbalance * static_cast<double>(total_w) * frac[p];
  }
  std::vector<vidx_t> region_w(static_cast<std::size_t>(k), 0);
  for (vidx_t v = 0; v < g.n; ++v) region_w[part[v]] += g.vweights[v];

  eidx_t total_gain = 0;
  std::vector<eidx_t> conn(static_cast<std::size_t>(k), 0);
  for (vidx_t v = 0; v < g.n; ++v) {
    const int home = part[v];
    bool boundary = false;
    for (eidx_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
      if (part[g.targets[e]] != home) {
        boundary = true;
        break;
      }
    }
    if (!boundary) continue;
    std::fill(conn.begin(), conn.end(), 0);
    for (eidx_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
      conn[part[g.targets[e]]] += g.eweights[e];
    }
    int best = home;
    eidx_t best_gain = 0;
    for (int p = 0; p < k; ++p) {
      if (p == home) continue;
      const eidx_t gain = conn[p] - conn[home];
      const double new_w = region_w[p] + g.vweights[v];
      if (gain > best_gain && new_w <= limit[p] &&
          region_w[home] - g.vweights[v] > 0) {
        best_gain = gain;
        best = p;
      }
    }
    if (best != home) {
      region_w[home] -= g.vweights[v];
      region_w[best] += g.vweights[v];
      part[v] = best;
      total_gain += best_gain;
    }
  }
  return total_gain;
}

}  // namespace

vidx_t Partition::max_size() const {
  vidx_t mx = 0;
  for (vidx_t s : sizes) mx = std::max(mx, s);
  return mx;
}

double Partition::imbalance() const {
  const vidx_t n = static_cast<vidx_t>(assignment.size());
  if (n == 0 || k == 0) return 1.0;
  const double ideal = std::ceil(static_cast<double>(n) / k);
  return static_cast<double>(max_size()) / ideal;
}

namespace {

/// Multilevel pipeline over the whole graph (shared by both methods).
Partition multilevel_partition(const graph::CsrGraph& g,
                               const PartitionOptions& opts);

/// Recursive bisection: split into two with the multilevel 2-way pipeline,
/// recurse on the induced halves until k parts exist.
void bisect_recurse(const graph::CsrGraph& g,
                    const std::vector<vidx_t>& vertices, int k,
                    const PartitionOptions& opts, int first_part,
                    std::vector<vidx_t>& assignment) {
  if (k == 1) {
    for (vidx_t v : vertices) assignment[v] = first_part;
    return;
  }
  // Induced subgraph over `vertices`.
  std::vector<vidx_t> local_id(assignment.size(), -1);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    local_id[vertices[i]] = static_cast<vidx_t>(i);
  }
  std::vector<graph::Edge> edges;
  for (vidx_t u : vertices) {
    const auto nbr = g.neighbors(u);
    const auto wts = g.weights(u);
    for (std::size_t e = 0; e < nbr.size(); ++e) {
      if (local_id[nbr[e]] != -1) {
        edges.push_back(
            graph::Edge{local_id[u], local_id[nbr[e]], wts[e]});
      }
    }
  }
  const graph::CsrGraph sub = graph::CsrGraph::from_edges(
      static_cast<vidx_t>(vertices.size()), std::move(edges),
      /*symmetrize=*/false);
  PartitionOptions bi = opts;
  bi.k = 2;
  bi.method = Method::kMultilevelKway;
  bi.seed = opts.seed * 6364136223846793005ULL + 1442695040888963407ULL;
  bi.target_fractions.clear();
  const Partition half = multilevel_partition(sub, bi);
  std::vector<vidx_t> left, right;
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    (half.assignment[i] == 0 ? left : right).push_back(vertices[i]);
  }
  // Degenerate split (tiny or disconnected pieces): fall back to halving.
  if (left.empty() || right.empty()) {
    left.assign(vertices.begin(), vertices.begin() + vertices.size() / 2);
    right.assign(vertices.begin() + vertices.size() / 2, vertices.end());
  }
  // Split the part budget proportionally to the *achieved* side sizes, so
  // balance survives imperfect bisections and odd k.
  int k_left = static_cast<int>(std::lround(
      static_cast<double>(k) * static_cast<double>(left.size()) /
      static_cast<double>(vertices.size())));
  k_left = std::clamp(k_left, 1, k - 1);
  bisect_recurse(g, left, k_left, opts, first_part, assignment);
  bisect_recurse(g, right, k - k_left, opts, first_part + k_left, assignment);
}

}  // namespace

Partition kway_partition(const graph::CsrGraph& g,
                         const PartitionOptions& opts) {
  const vidx_t n = g.num_vertices();
  GAPSP_CHECK(opts.k >= 1, "partition requires k >= 1");
  GAPSP_CHECK(opts.k <= std::max<vidx_t>(n, 1), "k exceeds vertex count");
  if (opts.method == Method::kRecursiveBisection && opts.k > 1) {
    std::vector<vidx_t> all(static_cast<std::size_t>(n));
    std::iota(all.begin(), all.end(), 0);
    Partition result;
    result.k = opts.k;
    result.assignment.assign(static_cast<std::size_t>(n), 0);
    bisect_recurse(g, all, opts.k, opts, 0, result.assignment);
    result.sizes.assign(static_cast<std::size_t>(opts.k), 0);
    for (vidx_t v = 0; v < n; ++v) ++result.sizes[result.assignment[v]];
    for (vidx_t u = 0; u < n; ++u) {
      for (vidx_t v : g.neighbors(u)) {
        if (result.assignment[u] != result.assignment[v]) ++result.edge_cut;
      }
    }
    return result;
  }
  return multilevel_partition(g, opts);
}

namespace {

Partition multilevel_partition(const graph::CsrGraph& g,
                               const PartitionOptions& opts) {
  const vidx_t n = g.num_vertices();
  Rng rng(opts.seed);

  // --- Coarsening phase ---
  std::vector<LevelGraph> levels;
  std::vector<std::vector<vidx_t>> projections;  // fine -> coarse per level
  levels.push_back(from_csr(g));
  const vidx_t coarse_target =
      std::max<vidx_t>(static_cast<vidx_t>(opts.k) * 16, 128);
  while (levels.back().n > coarse_target) {
    auto match = heavy_edge_matching(levels.back(), rng);
    auto contraction = contract(levels.back(), match);
    if (contraction.coarse.n >= levels.back().n * 95 / 100) break;  // stalled
    projections.push_back(std::move(contraction.fine_to_coarse));
    levels.push_back(std::move(contraction.coarse));
  }

  // --- Initial partition on the coarsest level ---
  std::vector<double> frac = opts.target_fractions;
  if (frac.empty()) {
    frac.assign(static_cast<std::size_t>(opts.k), 1.0 / opts.k);
  }
  GAPSP_CHECK(static_cast<int>(frac.size()) == opts.k,
              "target_fractions size must equal k");
  std::vector<vidx_t> part =
      initial_partition(levels.back(), opts.k, frac, rng);
  for (int pass = 0; pass < opts.refine_passes; ++pass) {
    if (refine_pass(levels.back(), part, opts.k, frac, opts.max_imbalance) ==
        0) {
      break;
    }
  }

  // --- Uncoarsening with refinement at each level ---
  for (std::size_t level = levels.size() - 1; level-- > 0;) {
    const auto& proj = projections[level];
    std::vector<vidx_t> fine_part(proj.size());
    for (std::size_t v = 0; v < proj.size(); ++v) fine_part[v] = part[proj[v]];
    part = std::move(fine_part);
    for (int pass = 0; pass < opts.refine_passes; ++pass) {
      if (refine_pass(levels[level], part, opts.k, frac,
                      opts.max_imbalance) == 0) {
        break;
      }
    }
  }

  Partition result;
  result.k = opts.k;
  result.assignment = std::move(part);
  result.sizes.assign(static_cast<std::size_t>(opts.k), 0);
  for (vidx_t v = 0; v < n; ++v) ++result.sizes[result.assignment[v]];
  for (vidx_t u = 0; u < n; ++u) {
    for (vidx_t v : g.neighbors(u)) {
      if (result.assignment[u] != result.assignment[v]) ++result.edge_cut;
    }
  }
  return result;
}

}  // namespace

}  // namespace gapsp::part
