// Boundary analysis on top of a k-way partition: identifies boundary
// vertices (both endpoints of every cut edge, as in Sec. III-C), builds the
// boundary-first vertex renumbering of Fig. 1(a), and exposes the layout the
// out-of-core boundary algorithm operates on.
#pragma once

#include <vector>

#include "graph/csr_graph.h"
#include "partition/kway.h"

namespace gapsp::part {

struct BoundaryLayout {
  Partition partition;

  /// 1 iff the vertex (original id) is a boundary vertex.
  std::vector<std::uint8_t> is_boundary;
  vidx_t num_boundary = 0;

  /// Renumbering, old id -> new id. Components occupy contiguous new-id
  /// ranges; within each component the boundary vertices come first.
  std::vector<vidx_t> perm;
  /// Inverse renumbering, new id -> old id.
  std::vector<vidx_t> inv_perm;

  /// comp_offset[i]..comp_offset[i+1] is component i's new-id range (k+1).
  std::vector<vidx_t> comp_offset;
  /// Number of boundary vertices in component i (they occupy the first
  /// comp_boundary[i] new ids of the component's range).
  std::vector<vidx_t> comp_boundary;

  /// boundary_offset[i]..boundary_offset[i+1] is component i's index range
  /// in the global boundary ordering (k+1); the global boundary graph of
  /// step 3 is indexed this way.
  std::vector<vidx_t> boundary_offset;

  int k() const { return partition.k; }
  vidx_t comp_size(int i) const { return comp_offset[i + 1] - comp_offset[i]; }
  vidx_t max_comp_size() const;
};

/// Computes boundary vertices and the boundary-first renumbering for a
/// partitioned graph.
BoundaryLayout analyze_boundary(const graph::CsrGraph& g, Partition partition);

/// Convenience: partition with k components then analyze.
BoundaryLayout partition_and_analyze(const graph::CsrGraph& g, int k,
                                     std::uint64_t seed = 1,
                                     Method method = Method::kMultilevelKway);

/// The paper's small-separator test (Sec. IV-B2 / Table III): with k = √n
/// components, a planar-like graph has ~√(k·n) = n^(3/4) boundary vertices.
/// Returns #boundary / n^(3/4); values near 1 mean a small separator.
double separator_ratio(const graph::CsrGraph& g, std::uint64_t seed = 1);

/// Classification used throughout the paper: ratio below `threshold` counts
/// as a small separator. The paper's own Table III "Yes" graphs reach
/// ratios ≈ 2.5 (wy2010: 12,665 boundary vs √(kn) = 5,031) while the "No"
/// graphs sit at 6–20; the default threshold of 4 splits the two classes.
bool has_small_separator(const graph::CsrGraph& g, double threshold = 4.0,
                         std::uint64_t seed = 1);

}  // namespace gapsp::part
