#include "partition/boundary.h"

#include <algorithm>
#include <cmath>

namespace gapsp::part {

vidx_t BoundaryLayout::max_comp_size() const {
  vidx_t mx = 0;
  for (int i = 0; i < k(); ++i) mx = std::max(mx, comp_size(i));
  return mx;
}

BoundaryLayout analyze_boundary(const graph::CsrGraph& g, Partition partition) {
  const vidx_t n = g.num_vertices();
  const int k = partition.k;
  GAPSP_CHECK(static_cast<vidx_t>(partition.assignment.size()) == n,
              "partition does not match graph");
  BoundaryLayout out;
  out.is_boundary.assign(static_cast<std::size_t>(n), 0);
  for (vidx_t u = 0; u < n; ++u) {
    for (vidx_t v : g.neighbors(u)) {
      if (partition.assignment[u] != partition.assignment[v]) {
        out.is_boundary[u] = 1;
        out.is_boundary[v] = 1;
      }
    }
  }
  for (auto b : out.is_boundary) out.num_boundary += b;

  // Component ranges.
  out.comp_offset.assign(static_cast<std::size_t>(k) + 1, 0);
  out.comp_boundary.assign(static_cast<std::size_t>(k), 0);
  for (vidx_t v = 0; v < n; ++v) {
    ++out.comp_offset[static_cast<std::size_t>(partition.assignment[v]) + 1];
    if (out.is_boundary[v]) ++out.comp_boundary[partition.assignment[v]];
  }
  for (int i = 0; i < k; ++i) out.comp_offset[i + 1] += out.comp_offset[i];

  out.boundary_offset.assign(static_cast<std::size_t>(k) + 1, 0);
  for (int i = 0; i < k; ++i) {
    out.boundary_offset[i + 1] = out.boundary_offset[i] + out.comp_boundary[i];
  }

  // Boundary-first renumbering: within component i, boundary vertices take
  // new ids comp_offset[i].., interior vertices follow.
  out.perm.assign(static_cast<std::size_t>(n), 0);
  out.inv_perm.assign(static_cast<std::size_t>(n), 0);
  std::vector<vidx_t> bcursor(static_cast<std::size_t>(k));
  std::vector<vidx_t> icursor(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    bcursor[i] = out.comp_offset[i];
    icursor[i] = out.comp_offset[i] + out.comp_boundary[i];
  }
  for (vidx_t v = 0; v < n; ++v) {
    const int c = partition.assignment[v];
    const vidx_t nv = out.is_boundary[v] ? bcursor[c]++ : icursor[c]++;
    out.perm[v] = nv;
    out.inv_perm[nv] = v;
  }
  out.partition = std::move(partition);
  return out;
}

BoundaryLayout partition_and_analyze(const graph::CsrGraph& g, int k,
                                     std::uint64_t seed, Method method) {
  PartitionOptions opts;
  opts.k = k;
  opts.seed = seed;
  opts.method = method;
  return analyze_boundary(g, kway_partition(g, opts));
}

double separator_ratio(const graph::CsrGraph& g, std::uint64_t seed) {
  const vidx_t n = g.num_vertices();
  if (n < 4) return 1.0;
  const int k = std::max(
      2, static_cast<int>(std::lround(std::sqrt(static_cast<double>(n)))));
  const auto layout = partition_and_analyze(g, k, seed);
  const double ideal = std::pow(static_cast<double>(n), 0.75);  // √(k·n), k=√n
  return static_cast<double>(layout.num_boundary) / ideal;
}

bool has_small_separator(const graph::CsrGraph& g, double threshold,
                         std::uint64_t seed) {
  return separator_ratio(g, seed) < threshold;
}

}  // namespace gapsp::part
