// From-scratch multilevel k-way graph partitioner — the substitute for the
// METIS call in step 1 of the paper's boundary algorithm (Sec. III-C).
//
// Pipeline (classic multilevel scheme):
//   coarsen   — heavy-edge matching, contracting matched pairs, until the
//               coarse graph is small;
//   initial   — greedy region growing from spread-out seeds on the coarsest
//               graph, balanced by vertex weight;
//   uncoarsen — project the partition back level by level, running a greedy
//               boundary Kernighan–Lin refinement at each level.
//
// The objective is the paper's: balanced components and as few boundary
// vertices (endpoints of cut edges) as possible.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"

namespace gapsp::part {

/// Partitioning strategy. Direct multilevel k-way (METIS_PartGraphKway
/// analogue) usually yields fewer boundary vertices; recursive bisection
/// (METIS_PartGraphRecursive analogue) is kept for the partitioner-quality
/// ablation — boundary count feeds straight into the boundary algorithm's
/// cost.
enum class Method {
  kMultilevelKway,
  kRecursiveBisection,
};

struct PartitionOptions {
  int k = 2;                 ///< number of components
  double max_imbalance = 1.15;  ///< max component size / ideal size
  int refine_passes = 6;     ///< boundary-KL passes per level
  std::uint64_t seed = 1;
  Method method = Method::kMultilevelKway;
  /// Optional per-part weight targets (fractions summing to ~1). Empty
  /// means equal parts. Recursive bisection uses this internally to split
  /// proportionally when k is odd.
  std::vector<double> target_fractions;
};

struct Partition {
  int k = 0;
  std::vector<vidx_t> assignment;  ///< vertex -> component in [0, k)
  std::vector<vidx_t> sizes;       ///< vertices per component
  eidx_t edge_cut = 0;             ///< directed arcs crossing components

  vidx_t max_size() const;
  /// max component size divided by ceil(n/k).
  double imbalance() const;
};

/// Partitions g into opts.k components. Requires opts.k >= 1 and
/// opts.k <= num_vertices. Deterministic for a fixed seed.
Partition kway_partition(const graph::CsrGraph& g, const PartitionOptions& opts);

}  // namespace gapsp::part
