// Multicore CPU APSP baselines.
//
//  * bgl_plus_apsp    — the paper's main comparator: OpenMP-style parallelism
//                       over sources, each source a binary-heap Dijkstra
//                       (Boost Graph Library style);
//  * superfw_apsp     — analog of the tuned shared-memory blocked
//                       Floyd–Warshall of [31] (Fig. 4 comparison);
//  * galois_apsp      — analog of the Galois delta-stepping APSP (Fig. 4).
//
// Each runs functionally (results verifiable) and reports a modeled parallel
// time from its operation counts and a CpuSpec machine model.
#pragma once

#include <optional>

#include "baseline/cpu_spec.h"
#include "core/dist_store.h"
#include "graph/csr_graph.h"

namespace gapsp::baseline {

struct BaselineResult {
  double sim_seconds = 0.0;   ///< modeled parallel execution time
  double wall_seconds = 0.0;  ///< actual wall time of the functional run
  double work_units = 0.0;    ///< counted work driving the model
};

/// Dijkstra from every source, parallelized over sources. When `store` is
/// non-null the rows are written into it.
BaselineResult bgl_plus_apsp(const graph::CsrGraph& g, const CpuSpec& cpu,
                             core::DistStore* store = nullptr);

/// Cache-blocked CPU Floyd–Warshall over the full n×n matrix. When
/// `functional` is false only the cost model is evaluated (used by the
/// Fig. 4 bench, where the paper too compares against *reported* numbers).
BaselineResult superfw_apsp(const graph::CsrGraph& g, const CpuSpec& cpu,
                            core::DistStore* store = nullptr,
                            bool functional = true);

/// Delta-stepping from every source, parallelized over sources.
BaselineResult galois_apsp(const graph::CsrGraph& g, const CpuSpec& cpu,
                           core::DistStore* store = nullptr);

}  // namespace gapsp::baseline
