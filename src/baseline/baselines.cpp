#include "baseline/baselines.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <vector>

#include "core/minplus.h"
#include "sssp/delta_stepping.h"
#include "sssp/dijkstra.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace gapsp::baseline {
namespace {

// Work-unit weights of the Dijkstra model: a heap push/pop costs several
// times an edge relaxation (log-factor plus the cache misses of the heap).
constexpr double kPushWeight = 4.0;
constexpr double kPopWeight = 2.0;

}  // namespace

BaselineResult bgl_plus_apsp(const graph::CsrGraph& g, const CpuSpec& cpu,
                             core::DistStore* store) {
  Timer wall;
  const vidx_t n = g.num_vertices();
  std::atomic<long long> relax{0}, pushes{0}, pops{0};
  std::mutex store_mu;
  ThreadPool::global().parallel_for(
      static_cast<std::size_t>(n),
      [&](std::size_t src) {
        sssp::SsspCounters c;
        std::vector<dist_t> row(static_cast<std::size_t>(n));
        sssp::dijkstra_into(g, static_cast<vidx_t>(src), row, &c);
        relax.fetch_add(c.relaxations, std::memory_order_relaxed);
        pushes.fetch_add(c.heap_pushes, std::memory_order_relaxed);
        pops.fetch_add(c.heap_pops, std::memory_order_relaxed);
        if (store != nullptr) {
          std::lock_guard<std::mutex> lk(store_mu);
          store->write_block(static_cast<vidx_t>(src), 0, 1, n, row.data(),
                             row.size());
        }
      },
      /*grain=*/8);

  BaselineResult r;
  r.work_units = static_cast<double>(relax.load()) +
                 kPushWeight * static_cast<double>(pushes.load()) +
                 kPopWeight * static_cast<double>(pops.load());
  r.sim_seconds =
      r.work_units / (cpu.dijkstra_units_per_s * cpu.effective_threads());
  r.wall_seconds = wall.seconds();
  return r;
}

BaselineResult superfw_apsp(const graph::CsrGraph& g, const CpuSpec& cpu,
                            core::DistStore* store, bool functional) {
  Timer wall;
  const vidx_t n = g.num_vertices();
  BaselineResult r;
  r.work_units = 2.0 * static_cast<double>(n) * n * n;
  r.sim_seconds = r.work_units / (cpu.fw_ops_per_s * cpu.effective_threads());
  if (functional) {
    std::vector<dist_t> m(static_cast<std::size_t>(n) *
                          static_cast<std::size_t>(n));
    for (vidx_t u = 0; u < n; ++u) {
      dist_t* row = m.data() + static_cast<std::size_t>(u) * n;
      std::fill_n(row, n, kInf);
      row[u] = 0;
      const auto nbr = g.neighbors(u);
      const auto wts = g.weights(u);
      for (std::size_t i = 0; i < nbr.size(); ++i) {
        row[nbr[i]] = std::min(row[nbr[i]], wts[i]);
      }
    }
    core::fw_inplace(m.data(), static_cast<std::size_t>(n), n);
    if (store != nullptr) {
      store->write_block(0, 0, n, n, m.data(), static_cast<std::size_t>(n));
    }
  }
  r.wall_seconds = wall.seconds();
  return r;
}

BaselineResult galois_apsp(const graph::CsrGraph& g, const CpuSpec& cpu,
                           core::DistStore* store) {
  Timer wall;
  const vidx_t n = g.num_vertices();
  std::atomic<long long> relax{0}, buckets{0};
  std::mutex store_mu;
  ThreadPool::global().parallel_for(
      static_cast<std::size_t>(n),
      [&](std::size_t src) {
        const auto res = sssp::delta_stepping(g, static_cast<vidx_t>(src));
        relax.fetch_add(res.relaxations, std::memory_order_relaxed);
        buckets.fetch_add(res.buckets_processed, std::memory_order_relaxed);
        if (store != nullptr) {
          std::lock_guard<std::mutex> lk(store_mu);
          store->write_block(static_cast<vidx_t>(src), 0, 1, n,
                             res.dist.data(), res.dist.size());
        }
      },
      /*grain=*/8);

  BaselineResult r;
  // Bucket management dominates delta-stepping overhead (the "expensive
  // organization" the paper cites as the reason Near-Far exists).
  r.work_units = static_cast<double>(relax.load()) +
                 64.0 * static_cast<double>(buckets.load());
  r.sim_seconds =
      r.work_units / (cpu.delta_units_per_s * cpu.effective_threads());
  r.wall_seconds = wall.seconds();
  return r;
}

}  // namespace gapsp::baseline
