// CPU machine models for the multicore comparison points. The baselines
// execute for real (their results are testable); the machine model converts
// their counted work into a modeled time comparable with the simulated GPU
// times, mirroring the machines of Sec. V (the authors' 14-core Ivy Bridge
// host for BGL-plus, the 32-core Haswell used by the SuperFW/Galois paper).
#pragma once

#include <string>

namespace gapsp::baseline {

struct CpuSpec {
  std::string name;
  int threads = 1;                  ///< hyperthreads used
  double parallel_efficiency = 0.6; ///< scaling efficiency across threads

  /// Single-thread throughput of weighted Dijkstra work units per second
  /// (one unit = one edge relaxation; heap ops are weighted on top).
  double dijkstra_units_per_s = 5.0e7;
  /// Single-thread min-plus op throughput of a tuned blocked CPU FW
  /// (vectorized regular code is far faster per op than pointer chasing).
  double fw_ops_per_s = 0.9e9;
  /// Single-thread delta-stepping work units per second. Calibrated against
  /// the APSP execution times reported for Galois in [31] — which are far
  /// slower per unit of SSSP work than the BGL Dijkstra baseline (the
  /// paper's Fig. 4 shows 79.9–152.6x GPU speedups over Galois vs 2.2–2.8x
  /// over BGL-plus on the same graphs).
  double delta_units_per_s = 1.2e6;

  double effective_threads() const { return threads * parallel_efficiency; }

  /// The paper's host: Intel Xeon E5-2680 v2, 14 cores / 28 threads.
  static CpuSpec e5_2680_v2() {
    CpuSpec s;
    s.name = "Xeon E5-2680 v2 (28 threads, modeled)";
    s.threads = 28;
    return s;
  }

  /// The SuperFW / Galois paper's machine: dual E5-2698 v3, 64 threads.
  static CpuSpec e5_2698_v3() {
    CpuSpec s;
    s.name = "2x Xeon E5-2698 v3 (64 threads, modeled)";
    s.threads = 64;
    s.parallel_efficiency = 0.55;
    s.dijkstra_units_per_s = 5.5e7;
    s.fw_ops_per_s = 1.1e9;
    s.delta_units_per_s = 1.4e6;
    return s;
  }
};

}  // namespace gapsp::baseline
