#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/rng.h"

namespace gapsp::graph {
namespace {

dist_t rand_weight(Rng& rng, const WeightConfig& w) {
  return static_cast<dist_t>(rng.next_in(w.min_weight, w.max_weight));
}

/// Appends a uniformly random attachment tree over [0, n), guaranteeing
/// connectivity without biasing degree much.
void add_spanning_tree(std::vector<Edge>& edges, vidx_t n, Rng& rng,
                       const WeightConfig& w) {
  std::vector<vidx_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  for (vidx_t i = n - 1; i > 0; --i) {
    std::swap(order[i], order[rng.next_below(static_cast<std::uint64_t>(i) + 1)]);
  }
  for (vidx_t i = 1; i < n; ++i) {
    const vidx_t parent = order[rng.next_below(static_cast<std::uint64_t>(i))];
    edges.push_back(Edge{order[i], parent, rand_weight(rng, w)});
  }
}

/// Simple union-find used to patch connectivity with local edges only.
class UnionFind {
 public:
  explicit UnionFind(vidx_t n) : parent_(static_cast<std::size_t>(n)) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  vidx_t find(vidx_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool unite(vidx_t a, vidx_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<vidx_t> parent_;
};

}  // namespace

CsrGraph make_road(vidx_t rows, vidx_t cols, std::uint64_t seed,
                   double drop_fraction, double shortcut_fraction,
                   WeightConfig w) {
  GAPSP_CHECK(rows > 0 && cols > 0, "grid dimensions must be positive");
  Rng rng(seed);
  const vidx_t n = rows * cols;
  auto id = [cols](vidx_t r, vidx_t c) { return r * cols + c; };
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * 2);
  UnionFind uf(n);
  auto push = [&](vidx_t u, vidx_t v) {
    edges.push_back(Edge{u, v, rand_weight(rng, w)});
    uf.unite(u, v);
  };
  for (vidx_t r = 0; r < rows; ++r) {
    for (vidx_t c = 0; c < cols; ++c) {
      if (c + 1 < cols && !rng.next_bool(drop_fraction)) push(id(r, c), id(r, c + 1));
      if (r + 1 < rows && !rng.next_bool(drop_fraction)) push(id(r, c), id(r + 1, c));
      // Occasional local diagonal (an overpass / shortcut road).
      if (r + 1 < rows && c + 1 < cols && rng.next_bool(shortcut_fraction)) {
        push(id(r, c), id(r + 1, c + 1));
      }
    }
  }
  // Patch connectivity with *local* edges only (row-major neighbours), so
  // the separator structure of the grid is preserved.
  for (vidx_t v = 1; v < n; ++v) {
    if (uf.find(v - 1) != uf.find(v)) push(v - 1, v);
  }
  return CsrGraph::from_edges(n, std::move(edges), /*symmetrize=*/true);
}

CsrGraph make_mesh(vidx_t n, int avg_degree, std::uint64_t seed,
                   double rewire_fraction, WeightConfig w) {
  GAPSP_CHECK(n > 0 && avg_degree > 0, "bad mesh parameters");
  Rng rng(seed);
  std::vector<double> px(static_cast<std::size_t>(n)),
      py(static_cast<std::size_t>(n));
  for (vidx_t v = 0; v < n; ++v) {
    px[v] = rng.next_double();
    py[v] = rng.next_double();
  }
  // Bucket grid sized so each cell holds ~avg_degree points.
  const int cells = std::max(
      1, static_cast<int>(std::sqrt(static_cast<double>(n) / avg_degree)));
  std::vector<std::vector<vidx_t>> bucket(
      static_cast<std::size_t>(cells) * cells);
  for (vidx_t v = 0; v < n; ++v) {
    const int cx = std::min(cells - 1, static_cast<int>(px[v] * cells));
    const int cy = std::min(cells - 1, static_cast<int>(py[v] * cells));
    bucket[static_cast<std::size_t>(cy) * cells + cx].push_back(v);
  }

  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * avg_degree / 2);
  std::vector<std::pair<double, vidx_t>> cand;
  for (vidx_t v = 0; v < n; ++v) {
    cand.clear();
    const int cx = std::min(cells - 1, static_cast<int>(px[v] * cells));
    const int cy = std::min(cells - 1, static_cast<int>(py[v] * cells));
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int bx = cx + dx, by = cy + dy;
        if (bx < 0 || by < 0 || bx >= cells || by >= cells) continue;
        for (vidx_t u : bucket[static_cast<std::size_t>(by) * cells + bx]) {
          if (u == v) continue;
          const double d2 = (px[u] - px[v]) * (px[u] - px[v]) +
                            (py[u] - py[v]) * (py[u] - py[v]);
          cand.emplace_back(d2, u);
        }
      }
    }
    const std::size_t want = std::min<std::size_t>(
        cand.size(), static_cast<std::size_t>(avg_degree) / 2 + 1);
    std::partial_sort(cand.begin(),
                      cand.begin() + static_cast<std::ptrdiff_t>(want),
                      cand.end());
    for (std::size_t i = 0; i < want; ++i) {
      if (rng.next_bool(rewire_fraction)) {
        // Long-range rewire: destroys the separator like FEM fill-in couplings.
        const vidx_t u = static_cast<vidx_t>(rng.next_below(n));
        if (u != v) edges.push_back(Edge{v, u, rand_weight(rng, w)});
      } else {
        edges.push_back(Edge{v, cand[i].second, rand_weight(rng, w)});
      }
    }
  }
  add_spanning_tree(edges, n, rng, w);
  return CsrGraph::from_edges(n, std::move(edges), /*symmetrize=*/true);
}

CsrGraph make_rmat(int scale, eidx_t num_edges, std::uint64_t seed, double a,
                   double b, double c, bool connect, WeightConfig w) {
  GAPSP_CHECK(scale > 0 && scale < 31, "bad R-MAT scale");
  GAPSP_CHECK(a > 0 && b >= 0 && c >= 0 && a + b + c < 1.0,
              "R-MAT probabilities must sum below 1");
  Rng rng(seed);
  const vidx_t n = static_cast<vidx_t>(1) << scale;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(num_edges) + (connect ? n : 0));
  for (eidx_t e = 0; e < num_edges; ++e) {
    vidx_t src = 0, dst = 0;
    for (int level = 0; level < scale; ++level) {
      const double r = rng.next_double();
      src <<= 1;
      dst <<= 1;
      if (r < a) {
        // top-left quadrant: neither bit set
      } else if (r < a + b) {
        dst |= 1;
      } else if (r < a + b + c) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    if (src != dst) edges.push_back(Edge{src, dst, rand_weight(rng, w)});
  }
  if (connect) add_spanning_tree(edges, n, rng, w);
  return CsrGraph::from_edges(n, std::move(edges), /*symmetrize=*/true);
}

CsrGraph make_erdos_renyi(vidx_t n, eidx_t num_edges, std::uint64_t seed,
                          bool connect, WeightConfig w) {
  GAPSP_CHECK(n > 1, "Erdős–Rényi graphs need at least two vertices");
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(num_edges) + (connect ? n : 0));
  for (eidx_t e = 0; e < num_edges; ++e) {
    const vidx_t u = static_cast<vidx_t>(rng.next_below(n));
    const vidx_t v = static_cast<vidx_t>(rng.next_below(n));
    if (u != v) edges.push_back(Edge{u, v, rand_weight(rng, w)});
  }
  if (connect) add_spanning_tree(edges, n, rng, w);
  return CsrGraph::from_edges(n, std::move(edges), /*symmetrize=*/true);
}

CsrGraph make_dense(vidx_t n, double density_percent, std::uint64_t seed,
                    WeightConfig w) {
  GAPSP_CHECK(density_percent > 0 && density_percent <= 100,
              "density must be in (0, 100]");
  const auto target = static_cast<eidx_t>(
      density_percent / 100.0 * static_cast<double>(n) * n / 2.0);
  return make_erdos_renyi(n, target, seed, /*connect=*/true, w);
}

CsrGraph make_small_world(vidx_t n, int k, double rewire, std::uint64_t seed,
                          WeightConfig w) {
  GAPSP_CHECK(n > 2 && k >= 1 && k < n / 2, "bad small-world parameters");
  GAPSP_CHECK(rewire >= 0.0 && rewire <= 1.0, "rewire must be in [0, 1]");
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * k);
  for (vidx_t v = 0; v < n; ++v) {
    for (int d = 1; d <= k; ++d) {
      vidx_t u = (v + d) % n;
      if (rng.next_bool(rewire)) {
        u = static_cast<vidx_t>(rng.next_below(n));
        if (u == v) continue;
      }
      edges.push_back(Edge{v, u, rand_weight(rng, w)});
    }
  }
  // Rewiring can in principle disconnect the ring; keep the lattice backbone
  // connected with local patches only.
  UnionFind uf(n);
  for (const Edge& e : edges) uf.unite(e.src, e.dst);
  for (vidx_t v = 1; v < n; ++v) {
    if (uf.find(v - 1) != uf.find(v)) {
      edges.push_back(Edge{v - 1, v, rand_weight(rng, w)});
      uf.unite(v - 1, v);
    }
  }
  return CsrGraph::from_edges(n, std::move(edges), /*symmetrize=*/true);
}

CsrGraph make_preferential(vidx_t n, int attach, std::uint64_t seed,
                           WeightConfig w) {
  GAPSP_CHECK(n > attach && attach >= 1, "bad preferential parameters");
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * attach);
  // Endpoint pool: sampling uniformly from past edge endpoints realizes
  // degree-proportional attachment.
  std::vector<vidx_t> pool;
  pool.reserve(2 * static_cast<std::size_t>(n) * attach);
  // Seed clique over the first attach+1 vertices.
  for (vidx_t a = 0; a <= attach; ++a) {
    for (vidx_t b = a + 1; b <= attach; ++b) {
      edges.push_back(Edge{a, b, rand_weight(rng, w)});
      pool.push_back(a);
      pool.push_back(b);
    }
  }
  for (vidx_t v = attach + 1; v < n; ++v) {
    for (int e = 0; e < attach; ++e) {
      const vidx_t target = pool[rng.next_below(pool.size())];
      if (target == v) continue;
      edges.push_back(Edge{v, target, rand_weight(rng, w)});
      pool.push_back(v);
      pool.push_back(target);
    }
  }
  return CsrGraph::from_edges(n, std::move(edges), /*symmetrize=*/true);
}

CsrGraph make_grid3d(vidx_t x, vidx_t y, vidx_t z, std::uint64_t seed,
                     WeightConfig w) {
  GAPSP_CHECK(x > 0 && y > 0 && z > 0, "grid dimensions must be positive");
  Rng rng(seed);
  const vidx_t n = x * y * z;
  auto id = [&](vidx_t i, vidx_t j, vidx_t k) { return (k * y + j) * x + i; };
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * 3);
  for (vidx_t k = 0; k < z; ++k) {
    for (vidx_t j = 0; j < y; ++j) {
      for (vidx_t i = 0; i < x; ++i) {
        if (i + 1 < x) {
          edges.push_back(Edge{id(i, j, k), id(i + 1, j, k), rand_weight(rng, w)});
        }
        if (j + 1 < y) {
          edges.push_back(Edge{id(i, j, k), id(i, j + 1, k), rand_weight(rng, w)});
        }
        if (k + 1 < z) {
          edges.push_back(Edge{id(i, j, k), id(i, j, k + 1), rand_weight(rng, w)});
        }
      }
    }
  }
  return CsrGraph::from_edges(n, std::move(edges), /*symmetrize=*/true);
}

}  // namespace gapsp::graph
