// Compressed-sparse-row weighted graph — the input representation shared by
// every APSP implementation in this project.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "util/common.h"

namespace gapsp::graph {

/// A single weighted directed edge (construction-time representation).
struct Edge {
  vidx_t src = 0;
  vidx_t dst = 0;
  dist_t weight = 1;
};

/// Immutable CSR adjacency structure with integer weights.
///
/// Conventions:
///  * vertices are [0, n); no self-loops are stored;
///  * parallel edges are collapsed keeping the minimum weight;
///  * "undirected" inputs are stored as two directed arcs.
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds from an edge list. When `symmetrize` is true every edge is also
  /// inserted in the reverse direction (SuiteSparse matrices are symmetric).
  /// Self-loops are dropped; duplicates keep the smallest weight.
  static CsrGraph from_edges(vidx_t n, std::vector<Edge> edges,
                             bool symmetrize);

  vidx_t num_vertices() const { return n_; }
  eidx_t num_edges() const { return static_cast<eidx_t>(targets_.size()); }

  /// density in percent, m / n^2 * 100 — the paper's selector metric.
  double density_percent() const;

  std::span<const vidx_t> neighbors(vidx_t u) const {
    return {targets_.data() + offsets_[u],
            static_cast<std::size_t>(offsets_[u + 1] - offsets_[u])};
  }
  std::span<const dist_t> weights(vidx_t u) const {
    return {weights_.data() + offsets_[u],
            static_cast<std::size_t>(offsets_[u + 1] - offsets_[u])};
  }
  vidx_t out_degree(vidx_t u) const {
    return static_cast<vidx_t>(offsets_[u + 1] - offsets_[u]);
  }

  std::span<const eidx_t> offsets() const { return offsets_; }
  std::span<const vidx_t> targets() const { return targets_; }
  std::span<const dist_t> edge_weights() const { return weights_; }

  /// Graph with every arc reversed.
  CsrGraph transpose() const;

  /// Relabels vertices: vertex u becomes perm[u]. perm must be a bijection
  /// on [0, n). Used by the boundary algorithm to make components contiguous
  /// with boundary vertices first.
  CsrGraph relabel(std::span<const vidx_t> perm) const;

  /// Storage footprint in bytes when resident on the (simulated) device —
  /// the `S` term of the Johnson batch-size formula.
  std::size_t bytes() const {
    return offsets_.size() * sizeof(eidx_t) +
           targets_.size() * sizeof(vidx_t) + weights_.size() * sizeof(dist_t);
  }

  dist_t max_weight() const { return max_weight_; }
  double mean_weight() const;

 private:
  vidx_t n_ = 0;
  std::vector<eidx_t> offsets_{0};
  std::vector<vidx_t> targets_;
  std::vector<dist_t> weights_;
  dist_t max_weight_ = 0;
};

}  // namespace gapsp::graph
