// Named synthetic stand-ins for the paper's SuiteSparse inputs (Tables III
// and IV), scaled to this machine. Each entry keeps the property the paper's
// analysis depends on: road-family graphs have a small separator, mesh-family
// graphs are denser with a large separator, R-MAT entries are scale-free.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "graph/csr_graph.h"

namespace gapsp::graph {

enum class ZooFamily { kRoad, kMesh, kRmat, kWeb, kRandom };

struct ZooEntry {
  std::string name;        ///< SuiteSparse matrix this instance stands in for
  ZooFamily family;
  bool small_separator;    ///< the paper's Table III classification
  CsrGraph graph;
};

/// The 11 small-separator graphs of Table III (road / redistricting family).
std::vector<ZooEntry> small_separator_zoo();

/// The 8 "other sparse" graphs of Table III (FEM mesh family).
std::vector<ZooEntry> other_sparse_zoo();

/// The 10 large graphs of Table IV (output exceeds host-store RAM budget).
std::vector<ZooEntry> large_zoo();

/// Looks up one entry by stand-in name across all three zoos.
std::optional<ZooEntry> zoo_by_name(const std::string& name);

}  // namespace gapsp::graph
