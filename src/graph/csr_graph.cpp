#include "graph/csr_graph.h"

#include <algorithm>
#include <numeric>

namespace gapsp::graph {

CsrGraph CsrGraph::from_edges(vidx_t n, std::vector<Edge> edges,
                              bool symmetrize) {
  GAPSP_CHECK(n >= 0, "vertex count must be non-negative");
  if (symmetrize) {
    const std::size_t original = edges.size();
    edges.reserve(original * 2);
    for (std::size_t i = 0; i < original; ++i) {
      edges.push_back(Edge{edges[i].dst, edges[i].src, edges[i].weight});
    }
  }
  for (const Edge& e : edges) {
    GAPSP_CHECK(e.src >= 0 && e.src < n && e.dst >= 0 && e.dst < n,
                "edge endpoint out of range");
    GAPSP_CHECK(e.weight >= 0 && e.weight < kInf, "edge weight out of range");
  }
  // Drop self loops, then sort and deduplicate keeping the lightest arc.
  std::erase_if(edges, [](const Edge& e) { return e.src == e.dst; });
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.src != b.src) return a.src < b.src;
    if (a.dst != b.dst) return a.dst < b.dst;
    return a.weight < b.weight;
  });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const Edge& a, const Edge& b) {
                            return a.src == b.src && a.dst == b.dst;
                          }),
              edges.end());

  CsrGraph g;
  g.n_ = n;
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  g.targets_.resize(edges.size());
  g.weights_.resize(edges.size());
  for (const Edge& e : edges) ++g.offsets_[static_cast<std::size_t>(e.src) + 1];
  std::partial_sum(g.offsets_.begin(), g.offsets_.end(), g.offsets_.begin());
  std::vector<eidx_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : edges) {
    const eidx_t at = cursor[e.src]++;
    g.targets_[at] = e.dst;
    g.weights_[at] = e.weight;
    g.max_weight_ = std::max(g.max_weight_, e.weight);
  }
  return g;
}

double CsrGraph::density_percent() const {
  if (n_ == 0) return 0.0;
  const double nn = static_cast<double>(n_) * static_cast<double>(n_);
  return 100.0 * static_cast<double>(num_edges()) / nn;
}

double CsrGraph::mean_weight() const {
  if (weights_.empty()) return 0.0;
  double sum = 0.0;
  for (dist_t w : weights_) sum += static_cast<double>(w);
  return sum / static_cast<double>(weights_.size());
}

CsrGraph CsrGraph::transpose() const {
  std::vector<Edge> rev;
  rev.reserve(targets_.size());
  for (vidx_t u = 0; u < n_; ++u) {
    const auto nbr = neighbors(u);
    const auto wts = weights(u);
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      rev.push_back(Edge{nbr[i], u, wts[i]});
    }
  }
  return from_edges(n_, std::move(rev), /*symmetrize=*/false);
}

CsrGraph CsrGraph::relabel(std::span<const vidx_t> perm) const {
  GAPSP_CHECK(static_cast<vidx_t>(perm.size()) == n_,
              "permutation size mismatch");
  std::vector<Edge> edges;
  edges.reserve(targets_.size());
  for (vidx_t u = 0; u < n_; ++u) {
    const auto nbr = neighbors(u);
    const auto wts = weights(u);
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      edges.push_back(Edge{perm[u], perm[nbr[i]], wts[i]});
    }
  }
  return from_edges(n_, std::move(edges), /*symmetrize=*/false);
}

}  // namespace gapsp::graph
