// Matrix Market (.mtx) reader/writer so real SuiteSparse matrices can be fed
// through the same pipeline as the synthetic zoo.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr_graph.h"

namespace gapsp::graph {

/// Reads a `matrix coordinate {real,integer,pattern} {general,symmetric}`
/// Matrix Market file into a weighted graph. Values are mapped to weights by
/// rounding |v| and clamping to [1, max]; `pattern` entries get weight 1.
/// Rectangular matrices are rejected. Throws gapsp::Error on malformed input.
CsrGraph read_matrix_market(std::istream& in);
CsrGraph read_matrix_market_file(const std::string& path);

/// Writes the graph as a general integer coordinate matrix.
void write_matrix_market(const CsrGraph& g, std::ostream& out);
void write_matrix_market_file(const CsrGraph& g, const std::string& path);

}  // namespace gapsp::graph
