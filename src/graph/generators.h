// Synthetic graph generators standing in for the paper's SuiteSparse inputs.
//
// Three families matter for the paper's analysis:
//  * road-like graphs         — near-planar, small separator (Table III "Yes");
//  * mesh-like graphs         — FEM matrices: denser, large separator;
//  * scale-free R-MAT graphs  — the paper's synthetic scaling workload.
#pragma once

#include <cstdint>

#include "graph/csr_graph.h"

namespace gapsp::graph {

/// Parameters shared by all generators.
struct WeightConfig {
  dist_t min_weight = 1;
  dist_t max_weight = 100;
};

/// Road-network-like graph: a rows×cols 4-neighbour grid with a fraction of
/// the grid edges deleted (dead ends / sparse rural areas) and a few local
/// diagonal shortcuts added. Connectivity is preserved via a random spanning
/// tree. Undirected. Separator is O(sqrt(n)) like real road networks.
CsrGraph make_road(vidx_t rows, vidx_t cols, std::uint64_t seed,
                   double drop_fraction = 0.15, double shortcut_fraction = 0.05,
                   WeightConfig w = {});

/// FEM-mesh-like graph: random points in the unit square connected to their
/// `avg_degree` nearest neighbours (bucketed search) plus a `rewire_fraction`
/// of uniformly random long-range edges. The long-range edges destroy the
/// small separator, matching the paper's "other sparse graphs" (pkustk14,
/// SiO2, ...). Undirected and connected.
CsrGraph make_mesh(vidx_t n, int avg_degree, std::uint64_t seed,
                   double rewire_fraction = 0.08, WeightConfig w = {});

/// R-MAT scale-free generator (Chakrabarti et al.), the paper's synthetic
/// workload. Generates `num_edges` directed edges over `n = 2^scale`
/// vertices then symmetrizes. Default skew (0.57, 0.19, 0.19, 0.05).
CsrGraph make_rmat(int scale, eidx_t num_edges, std::uint64_t seed,
                   double a = 0.57, double b = 0.19, double c = 0.19,
                   bool connect = true, WeightConfig w = {});

/// Erdős–Rényi G(n, m) graph, undirected, optionally forced connected.
CsrGraph make_erdos_renyi(vidx_t n, eidx_t num_edges, std::uint64_t seed,
                          bool connect = true, WeightConfig w = {});

/// Dense random graph with the exact density given in percent (of n^2
/// ordered pairs) — used by the density-filter experiments (Table VI regime).
CsrGraph make_dense(vidx_t n, double density_percent, std::uint64_t seed,
                    WeightConfig w = {});

/// Watts–Strogatz small world: a ring lattice where each vertex connects to
/// its k nearest ring neighbours, each edge rewired to a random endpoint
/// with probability `rewire`. rewire = 0 gives a pure ring (tiny separator);
/// rewire near 1 approaches a random graph (no separator) — a controllable
/// knob for separator-sensitivity tests.
CsrGraph make_small_world(vidx_t n, int k, double rewire, std::uint64_t seed,
                          WeightConfig w = {});

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `attach` existing vertices with probability proportional to degree.
/// Produces the heavy-tailed hubs the dynamic-parallelism optimization
/// targets, with guaranteed connectivity.
CsrGraph make_preferential(vidx_t n, int attach, std::uint64_t seed,
                           WeightConfig w = {});

/// 3-D grid (x × y × z, 6-neighbour): separator Θ(n^(2/3)) — between the
/// road (n^(1/2)) and expander regimes; stresses the separator classifier.
CsrGraph make_grid3d(vidx_t x, vidx_t y, vidx_t z, std::uint64_t seed,
                     WeightConfig w = {});

}  // namespace gapsp::graph
