#include "graph/graph_stats.h"

#include <algorithm>
#include <queue>

namespace gapsp::graph {

DegreeStats degree_stats(const CsrGraph& g) {
  DegreeStats s;
  const vidx_t n = g.num_vertices();
  if (n == 0) return s;
  s.min = g.out_degree(0);
  for (vidx_t v = 0; v < n; ++v) {
    const vidx_t d = g.out_degree(v);
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
    s.mean += d;
  }
  s.mean /= static_cast<double>(n);
  return s;
}

std::vector<vidx_t> component_labels(const CsrGraph& g) {
  // Weak connectivity: arc direction must not matter. Following out-edges
  // only would make labels depend on vertex iteration order on directed
  // graphs (graph 1→0: vertex 0 is labeled first, 1 then starts a new
  // component) and the component solver would split weakly-connected pairs
  // into separate subproblems, reporting ∞ for distances that exist.
  const vidx_t n = g.num_vertices();
  std::vector<vidx_t> label(static_cast<std::size_t>(n), -1);
  const CsrGraph rev = g.transpose();
  vidx_t next = 0;
  std::queue<vidx_t> q;
  for (vidx_t s = 0; s < n; ++s) {
    if (label[s] != -1) continue;
    label[s] = next;
    q.push(s);
    while (!q.empty()) {
      const vidx_t u = q.front();
      q.pop();
      for (const CsrGraph* dir : {&g, &rev}) {
        for (vidx_t v : dir->neighbors(u)) {
          if (label[v] == -1) {
            label[v] = next;
            q.push(v);
          }
        }
      }
    }
    ++next;
  }
  return label;
}

vidx_t count_components(const CsrGraph& g) {
  const auto label = component_labels(g);
  vidx_t max_label = -1;
  for (vidx_t l : label) max_label = std::max(max_label, l);
  return max_label + 1;
}

bool is_connected(const CsrGraph& g) {
  return g.num_vertices() == 0 || count_components(g) == 1;
}

}  // namespace gapsp::graph
