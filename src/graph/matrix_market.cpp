#include "graph/matrix_market.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

namespace gapsp::graph {
namespace {

struct Header {
  bool pattern = false;
  bool symmetric = false;
};

Header parse_banner(const std::string& line) {
  std::istringstream ss(line);
  std::string banner, object, format, field, symmetry;
  ss >> banner >> object >> format >> field >> symmetry;
  GAPSP_CHECK(banner == "%%MatrixMarket", "missing MatrixMarket banner");
  GAPSP_CHECK(object == "matrix", "only 'matrix' objects are supported");
  GAPSP_CHECK(format == "coordinate", "only coordinate format is supported");
  GAPSP_CHECK(field == "real" || field == "integer" || field == "pattern",
              "unsupported field type: " + field);
  GAPSP_CHECK(symmetry == "general" || symmetry == "symmetric",
              "unsupported symmetry: " + symmetry);
  return Header{field == "pattern", symmetry == "symmetric"};
}

dist_t value_to_weight(double v) {
  const double a = std::min(std::round(std::abs(v)),
                            static_cast<double>(kInf - 1));
  return std::max<dist_t>(1, static_cast<dist_t>(a));
}

}  // namespace

CsrGraph read_matrix_market(std::istream& in) {
  std::string line;
  GAPSP_CHECK(static_cast<bool>(std::getline(in, line)), "empty .mtx stream");
  const Header header = parse_banner(line);
  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream dims(line);
  long long rows = 0, cols = 0, nnz = 0;
  GAPSP_CHECK(static_cast<bool>(dims >> rows >> cols >> nnz),
              "malformed size line");
  GAPSP_CHECK(rows == cols, "matrix must be square to be a graph");
  GAPSP_CHECK(rows > 0 && nnz >= 0, "bad matrix dimensions");

  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(nnz));
  for (long long e = 0; e < nnz; ++e) {
    GAPSP_CHECK(static_cast<bool>(std::getline(in, line)),
                "fewer entries than announced nnz");
    std::istringstream es(line);
    long long r = 0, c = 0;
    double v = 1.0;
    GAPSP_CHECK(static_cast<bool>(es >> r >> c), "malformed entry line");
    if (!header.pattern) {
      GAPSP_CHECK(static_cast<bool>(es >> v), "missing value on entry line");
    }
    GAPSP_CHECK(r >= 1 && r <= rows && c >= 1 && c <= cols,
                "entry index out of range");
    edges.push_back(Edge{static_cast<vidx_t>(r - 1),
                         static_cast<vidx_t>(c - 1), value_to_weight(v)});
  }
  return CsrGraph::from_edges(static_cast<vidx_t>(rows), std::move(edges),
                              /*symmetrize=*/header.symmetric);
}

CsrGraph read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  GAPSP_CHECK(in.good(), "cannot open " + path);
  return read_matrix_market(in);
}

void write_matrix_market(const CsrGraph& g, std::ostream& out) {
  out << "%%MatrixMarket matrix coordinate integer general\n";
  out << "% written by gapsp\n";
  out << g.num_vertices() << " " << g.num_vertices() << " " << g.num_edges()
      << "\n";
  for (vidx_t u = 0; u < g.num_vertices(); ++u) {
    const auto nbr = g.neighbors(u);
    const auto wts = g.weights(u);
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      out << (u + 1) << " " << (nbr[i] + 1) << " " << wts[i] << "\n";
    }
  }
}

void write_matrix_market_file(const CsrGraph& g, const std::string& path) {
  std::ofstream out(path);
  GAPSP_CHECK(out.good(), "cannot open " + path + " for writing");
  write_matrix_market(g, out);
  GAPSP_CHECK(out.good(), "write failed for " + path);
}

}  // namespace gapsp::graph
