#include "graph/suite.h"

#include "graph/generators.h"

namespace gapsp::graph {
namespace {

ZooEntry road(const std::string& name, vidx_t rows, vidx_t cols,
              std::uint64_t seed, double drop = 0.15) {
  return ZooEntry{name, ZooFamily::kRoad, /*small_separator=*/true,
                  make_road(rows, cols, seed, drop)};
}

ZooEntry mesh(const std::string& name, vidx_t n, int deg, std::uint64_t seed,
              double rewire = 0.10) {
  return ZooEntry{name, ZooFamily::kMesh, /*small_separator=*/false,
                  make_mesh(n, deg, seed, rewire)};
}

}  // namespace

std::vector<ZooEntry> small_separator_zoo() {
  std::vector<ZooEntry> zoo;
  // Scaled stand-ins for the paper's road / census-tract matrices. Sizes
  // differ per entry so scaling behaviour is visible across the set.
  zoo.push_back(road("usroads-48", 42, 44, 101));
  zoo.push_back(road("usroads", 43, 44, 102));
  zoo.push_back(road("luxembourg_osm", 40, 42, 103, 0.25));
  zoo.push_back(road("wy2010", 40, 42, 104, 0.10));
  zoo.push_back(road("nm2010", 44, 46, 105, 0.12));
  zoo.push_back(road("ri2010", 38, 40, 106, 0.10));
  zoo.push_back(road("ma2010", 44, 46, 107, 0.12));
  zoo.push_back(road("id2010", 45, 46, 108, 0.12));
  zoo.push_back(road("nd2010", 42, 44, 109, 0.12));
  zoo.push_back(road("nj2010", 45, 46, 110, 0.12));
  zoo.push_back(road("wv2010", 43, 44, 111, 0.12));
  return zoo;
}

std::vector<ZooEntry> other_sparse_zoo() {
  std::vector<ZooEntry> zoo;
  // FEM-style meshes: higher average degree, long-range couplings destroy
  // the separator (paper's pkustk14 etc. have ~90% of vertices on the
  // boundary after partitioning).
  zoo.push_back(mesh("pkustk14", 1400, 64, 201, 0.12));
  zoo.push_back(mesh("SiO2", 1400, 52, 202, 0.12));
  zoo.push_back(mesh("bmwcra_1", 1350, 48, 203, 0.12));
  zoo.push_back(mesh("gearbox", 1400, 44, 204, 0.10));
  zoo.push_back(mesh("oilpan", 1200, 36, 205, 0.10));
  zoo.push_back(mesh("net4-1", 1250, 32, 206, 0.14));
  zoo.push_back(mesh("fe_tooth", 1200, 34, 207, 0.10));
  zoo.push_back(mesh("onera_dual", 1250, 30, 208, 0.14));
  return zoo;
}

std::vector<ZooEntry> large_zoo() {
  std::vector<ZooEntry> zoo;
  // Table IV stand-ins: output tiles exceed the host-store RAM budget used
  // by the Fig. 5 bench, exercising the file-backed distance store.
  zoo.push_back(mesh("af_shell1", 4200, 36, 301, 0.10));
  zoo.push_back(ZooEntry{"cage13", ZooFamily::kRandom, false,
                         make_erdos_renyi(3700, 31000, 302)});
  zoo.push_back(mesh("km2_9", 3800, 26, 303, 0.10));
  zoo.push_back(road("lhr71", 46, 47, 304));
  zoo.push_back(mesh("pwtk", 3600, 54, 305, 0.10));
  zoo.push_back(ZooEntry{"stanford", ZooFamily::kWeb, false,
                         make_rmat(12, 24000, 306)});
  zoo.push_back(mesh("stomach", 3500, 28, 307, 0.10));
  zoo.push_back(mesh("troll", 3600, 56, 308, 0.10));
  zoo.push_back(ZooEntry{"boyd2", ZooFamily::kRandom, false,
                         make_erdos_renyi(3900, 15000, 309)});
  zoo.push_back(mesh("CO", 3700, 40, 310, 0.10));
  return zoo;
}

std::optional<ZooEntry> zoo_by_name(const std::string& name) {
  for (auto maker : {small_separator_zoo, other_sparse_zoo, large_zoo}) {
    for (auto& entry : maker()) {
      if (entry.name == name) return entry;
    }
  }
  return std::nullopt;
}

}  // namespace gapsp::graph
