// Structural statistics used by the selector and the feature tables
// (Table III / IV in the paper).
#pragma once

#include <vector>

#include "graph/csr_graph.h"

namespace gapsp::graph {

struct DegreeStats {
  vidx_t min = 0;
  vidx_t max = 0;
  double mean = 0.0;
};

DegreeStats degree_stats(const CsrGraph& g);

/// Number of weakly connected components — arc direction is ignored, so a
/// directed graph's weakly-connected pairs always share a component (on
/// symmetric graphs this equals the number of connected components).
vidx_t count_components(const CsrGraph& g);

/// Weak-component id per vertex (BFS labelling over the union of out- and
/// in-edges).
std::vector<vidx_t> component_labels(const CsrGraph& g);

/// true iff the graph has one weak component (or is empty).
bool is_connected(const CsrGraph& g);

}  // namespace gapsp::graph
