// Structural statistics used by the selector and the feature tables
// (Table III / IV in the paper).
#pragma once

#include <vector>

#include "graph/csr_graph.h"

namespace gapsp::graph {

struct DegreeStats {
  vidx_t min = 0;
  vidx_t max = 0;
  double mean = 0.0;
};

DegreeStats degree_stats(const CsrGraph& g);

/// Number of weakly connected components (graphs here are symmetric, so this
/// equals the number of connected components).
vidx_t count_components(const CsrGraph& g);

/// Component id per vertex (BFS labelling).
std::vector<vidx_t> component_labels(const CsrGraph& g);

/// true iff every vertex is reachable from vertex 0.
bool is_connected(const CsrGraph& g);

}  // namespace gapsp::graph
