#include "service/shard_worker.h"

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/shard_store.h"
#include "service/wire.h"

namespace gapsp::service {

int run_shard_worker(const std::string& store_path, int shard,
                     const ShardWorkerOptions& opt, int in_fd, int out_fd) {
  try {
    core::ShardManifest manifest;
    if (!core::load_shard_manifest(core::shard_manifest_path(store_path),
                                   manifest)) {
      throw IoError("no shard manifest next to " + store_path +
                    " — run `apsp_cli shard` first");
    }
    GAPSP_CHECK(shard >= 0 && shard < manifest.num_shards(),
                "shard " + std::to_string(shard) + " out of range [0, " +
                    std::to_string(manifest.num_shards()) + ")");
    const auto slice =
        core::open_shard_slice(store_path, manifest, shard, opt.verify_shard);
    const QueryEngine engine(*slice, opt.engine);
    const core::ShardRange& range =
        manifest.shards[static_cast<std::size_t>(shard)];

    write_frame(out_fd, WireType::kHello,
                encode_hello({shard, manifest.n, range.row_begin,
                              range.row_end}));

    int batches = 0;
    WireFrame frame;
    while (read_frame(in_fd, frame, /*timeout_ms=*/0)) {
      if (frame.type == WireType::kShutdown) break;
      if (frame.type != WireType::kBatch) {
        throw IoError("unexpected frame type " +
                      std::to_string(static_cast<int>(frame.type)) +
                      " from the router");
      }
      ++batches;
      if (opt.exit_after > 0 && batches == opt.exit_after) {
        // Chaos hook: die exactly like a crashed worker would — no reply,
        // no cleanup, pipe torn mid-request.
        _exit(9);
      }
      const std::vector<Query> queries = decode_batch(frame.payload);

      // Pre-filter misrouted queries: a row outside this shard's range is a
      // router bug and must come back typed, not as a quarantine/transient
      // miscount from the slice store's IoError.
      std::vector<Query> owned;
      std::vector<std::size_t> owned_at;
      owned.reserve(queries.size());
      BatchReport report;
      report.results.resize(queries.size());
      for (std::size_t i = 0; i < queries.size(); ++i) {
        const Query& q = queries[i];
        if (q.u >= range.row_begin && q.u < range.row_end) {
          owned.push_back(q);
          owned_at.push_back(i);
          continue;
        }
        QueryResult& r = report.results[i];
        r.query = q;
        r.status = QueryStatus::kError;
        r.error = "row " + std::to_string(q.u) + " outside shard " +
                  std::to_string(shard) + " rows [" +
                  std::to_string(range.row_begin) + ", " +
                  std::to_string(range.row_end) + ")";
      }
      BatchReport owned_report = engine.run_batch(owned);
      for (std::size_t i = 0; i < owned_at.size(); ++i) {
        report.results[owned_at[i]] = std::move(owned_report.results[i]);
      }
      report.wall_seconds = owned_report.wall_seconds;
      report.cache = owned_report.cache;
      report.service = engine.service_stats();
      write_frame(out_fd, WireType::kBatchReply, encode_batch_reply(report));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "shard worker %d: %s\n", shard, e.what());
    return 1;
  }
}

}  // namespace gapsp::service
