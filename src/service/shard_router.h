// Shard-aware query routing: N QueryEngines (or worker processes), one per
// row-range shard of the kept store, behind the same batch surface as a
// single engine (DESIGN.md §15).
//
// Shards split rows (core/shard_store.h), so a point or row query belongs
// to exactly one shard: routing is one shard_of_row lookup on the query's
// *stored* row, sub-batches fan out to the owning backends concurrently,
// and the merged BatchReport has results back in input order with latency
// stats recomputed over the union and cache/service counters summed.
//
// Failure semantics extend PR 7's typed degradation across process
// boundaries: a backend that cannot be built (corrupt slice), dies
// mid-batch (killed worker, torn pipe), or times out yields kQuarantined
// results for exactly its queries — sibling shards are unaffected and the
// batch always completes. Router-level admission (max_queue) sheds overflow
// before routing, so process workers run with their own queues unbounded
// and shed counts stay deterministic in one place.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <sys/types.h>

#include "core/shard_store.h"
#include "service/query_engine.h"
#include "service/shard_worker.h"

namespace gapsp::service {

/// One shard's serving backend. run_batch must never throw for data or
/// peer faults — a backend that cannot serve returns typed per-query
/// statuses (that is the router's whole contract).
class ShardBackend {
 public:
  virtual ~ShardBackend() = default;
  virtual int shard() const = 0;
  virtual BatchReport run_batch(std::span<const Query> queries) = 0;
  /// False once the backend has permanently given up (spawn failed and
  /// retries exhausted). Purely informational; run_batch still answers.
  virtual bool alive() const { return true; }
};

/// In-process backend: a QueryEngine over one shard slice. Throws
/// IoError/CorruptError when the slice cannot be opened or verified.
std::unique_ptr<ShardBackend> make_local_backend(
    const std::string& store_path, const core::ShardManifest& manifest, int k,
    const QueryEngineOptions& opt, std::vector<vidx_t> perm = {});

/// Local backends for every shard. A shard whose slice fails to open or
/// verify becomes a permanently-degraded backend answering kQuarantined —
/// one corrupt shard file must not take down the other N−1 row ranges.
std::vector<std::unique_ptr<ShardBackend>> make_local_backends(
    const std::string& store_path, const core::ShardManifest& manifest,
    const QueryEngineOptions& opt, std::vector<vidx_t> perm = {});

// ---- multi-process mode ----

/// A spawned worker as the router sees it: pid + the two pipe ends.
struct WorkerProcess {
  pid_t pid = -1;
  int request_fd = -1;  ///< router writes kBatch/kShutdown frames here
  int reply_fd = -1;    ///< router reads kHello/kBatchReply frames here
};

/// Spawns the worker for a shard. Returns pid −1 on spawn failure (the
/// backend degrades; it never throws out of run_batch).
using WorkerSpawner = std::function<WorkerProcess(int shard)>;

/// fork()-only spawner: the child calls run_shard_worker directly and
/// _exits. No exec, so tests drive real process death without depending on
/// the CLI binary's location. Engines in the children run with
/// max_threads=1 (inline parallel_for — a forked child must not touch the
/// parent's thread-pool state).
WorkerSpawner make_fork_worker_spawner(std::string store_path,
                                       ShardWorkerOptions opt);

/// fork+exec spawner: `exe serve --store-path=<store> --shard=K <extra>`
/// with the wire protocol on the child's stdin/stdout. `extra` carries
/// per-worker serving flags (--cache-mb, --exit-after, ...).
WorkerSpawner make_cli_worker_spawner(std::string exe, std::string store_path,
                                      std::vector<std::string> extra);

struct ProcessBackendOptions {
  /// Resend attempts after a dead or timed-out worker (each preceded by a
  /// respawn when `respawn` is set). 0 = first failure degrades the batch.
  int retries = 1;
  bool respawn = true;
  int timeout_ms = 30000;        ///< per-reply wait
  int hello_timeout_ms = 10000;  ///< startup handshake wait
};

/// Process backend: owns the worker child, speaks wire.h, retries through
/// respawn, reaps on destruction. Validates the kHello handshake against
/// the manifest before the first batch.
std::unique_ptr<ShardBackend> make_process_backend(
    WorkerSpawner spawner, int shard, const core::ShardManifest& manifest,
    const ProcessBackendOptions& opt = {});

struct ShardRouterOptions {
  /// Router-level admission: at most this many queries per batch are
  /// routed, the rest shed with QueryStatus::kShed. 0 = no bound. Workers
  /// behind the router should run with max_queue=0 so shedding happens
  /// exactly once.
  std::size_t max_queue = 0;
};

class ShardRouter {
 public:
  /// `backends` must cover every manifest shard at most once; a shard with
  /// no backend degrades its queries to kQuarantined. `perm` is the solve's
  /// vertex permutation (empty = identity), used only for routing — the
  /// backends' engines hold the same perm and translate again themselves.
  ShardRouter(core::ShardManifest manifest,
              std::vector<std::unique_ptr<ShardBackend>> backends,
              ShardRouterOptions opt = {}, std::vector<vidx_t> perm = {});
  ~ShardRouter();

  vidx_t n() const { return manifest_.n; }

  /// Same contract as QueryEngine::run_batch: results in input order, never
  /// throws for data/peer faults, sheds beyond max_queue.
  BatchReport run_batch(std::span<const Query> queries);

 private:
  vidx_t stored_id(vidx_t v) const {
    return perm_.empty() ? v : perm_[static_cast<std::size_t>(v)];
  }

  core::ShardManifest manifest_;
  std::vector<std::unique_ptr<ShardBackend>> backends_;
  std::vector<int> backend_of_shard_;  ///< index into backends_, or -1
  ShardRouterOptions opt_;
  std::vector<vidx_t> perm_;
  long long shed_total_ = 0;      ///< router-level, across batches
  long long degraded_total_ = 0;  ///< unrouteable queries, across batches
};

}  // namespace gapsp::service
