// One shard's serving loop: a QueryEngine over a shard slice behind the
// wire protocol (wire.h). The router (shard_router.h) runs one worker per
// shard — in-process for tests, or as a child process spawned by
// `apsp_cli serve --shard=K` — so a crash, a corrupt slice, or a kill -9
// takes down one row range's worker, not the batch.
#pragma once

#include <string>

#include "service/query_engine.h"

namespace gapsp::service {

struct ShardWorkerOptions {
  QueryEngineOptions engine;
  /// Checksum the shard file against the manifest before serving.
  bool verify_shard = true;
  /// Chaos hook: _exit(9) while handling the Nth kBatch frame, before the
  /// reply is written — a deterministic mid-batch worker death for the
  /// degradation tests and the CI kill-one-worker sweep. 0 = never.
  int exit_after = 0;
};

/// Serves shard `shard` of the sharded store at `store_path` over
/// [in_fd → requests, out_fd → replies] until kShutdown or EOF. Sends the
/// kHello handshake first, then answers kBatch frames; queries whose row
/// lies outside the shard's range come back QueryStatus::kError (a routing
/// bug is typed, never silently kInf — the slice store would also throw,
/// but pre-filtering keeps it from being miscounted as a data fault).
/// Returns the process exit code: 0 on clean shutdown, nonzero when the
/// setup (manifest, slice, verify) or the pipe failed, with the reason on
/// stderr. Never throws.
int run_shard_worker(const std::string& store_path, int shard,
                     const ShardWorkerOptions& opt, int in_fd, int out_fd);

}  // namespace gapsp::service
