#include "service/wire.h"

#include <cerrno>
#include <csignal>
#include <cstring>

#include <poll.h>
#include <unistd.h>

namespace gapsp::service {
namespace {

/// A garbage length prefix (a peer that is not speaking the protocol) must
/// not turn into a multi-gigabyte allocation.
constexpr std::uint32_t kMaxFrameBytes = 1u << 30;

// ---- payload packing ----
// Little scalar writer/reader over a byte vector; the reader bounds-checks
// every get and throws CorruptError, so a truncated or hostile payload can
// never read out of bounds.

struct Packer {
  std::vector<std::uint8_t> out;

  void bytes(const void* p, std::size_t len) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    out.insert(out.end(), b, b + len);
  }
  void u32(std::uint32_t v) { bytes(&v, sizeof(v)); }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  void i64(std::int64_t v) { bytes(&v, sizeof(v)); }
  void f64(double v) { bytes(&v, sizeof(v)); }
};

struct Unpacker {
  std::span<const std::uint8_t> in;
  std::size_t pos = 0;

  void bytes(void* p, std::size_t len) {
    if (len > in.size() - pos) {
      throw CorruptError("wire payload truncated");
    }
    std::memcpy(p, in.data() + pos, len);
    pos += len;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    bytes(&v, sizeof(v));
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    bytes(&v, sizeof(v));
    return v;
  }
  std::int64_t i64() {
    std::int64_t v = 0;
    bytes(&v, sizeof(v));
    return v;
  }
  double f64() {
    double v = 0;
    bytes(&v, sizeof(v));
    return v;
  }
  void done() const {
    if (pos != in.size()) {
      throw CorruptError("wire payload has trailing bytes");
    }
  }
};

std::uint64_t checked_count(std::uint64_t count, std::uint64_t unit,
                            std::size_t remaining) {
  if (unit != 0 && count > remaining / unit) {
    throw CorruptError("wire payload count exceeds its frame");
  }
  return count;
}

/// write_frame must see EPIPE as a return value, not die on SIGPIPE; done
/// once, process-wide, the first time any frame is written.
void ignore_sigpipe() {
  static const bool once = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)once;
}

}  // namespace

std::vector<std::uint8_t> encode_hello(const WireHello& hello) {
  Packer p;
  p.i64(hello.shard);
  p.i64(hello.n);
  p.i64(hello.row_begin);
  p.i64(hello.row_end);
  return std::move(p.out);
}

WireHello decode_hello(std::span<const std::uint8_t> payload) {
  Unpacker u{payload};
  WireHello h;
  h.shard = static_cast<int>(u.i64());
  h.n = static_cast<vidx_t>(u.i64());
  h.row_begin = static_cast<vidx_t>(u.i64());
  h.row_end = static_cast<vidx_t>(u.i64());
  u.done();
  return h;
}

std::vector<std::uint8_t> encode_batch(std::span<const Query> queries) {
  Packer p;
  p.u64(queries.size());
  for (const Query& q : queries) {
    p.u32(static_cast<std::uint32_t>(q.kind));
    p.i64(q.u);
    p.i64(q.v);
  }
  return std::move(p.out);
}

std::vector<Query> decode_batch(std::span<const std::uint8_t> payload) {
  Unpacker u{payload};
  const std::uint64_t count =
      checked_count(u.u64(), 4 + 8 + 8, payload.size() - u.pos);
  std::vector<Query> out(static_cast<std::size_t>(count));
  for (Query& q : out) {
    const std::uint32_t kind = u.u32();
    if (kind > static_cast<std::uint32_t>(QueryKind::kRow)) {
      throw CorruptError("wire batch has an unknown query kind");
    }
    q.kind = static_cast<QueryKind>(kind);
    q.u = static_cast<vidx_t>(u.i64());
    q.v = static_cast<vidx_t>(u.i64());
  }
  u.done();
  return out;
}

std::vector<std::uint8_t> encode_batch_reply(const BatchReport& report) {
  Packer p;
  p.u64(report.results.size());
  for (const QueryResult& r : report.results) {
    p.u32(static_cast<std::uint32_t>(r.status));
    p.u32(static_cast<std::uint32_t>(r.query.kind));
    p.i64(r.query.u);
    p.i64(r.query.v);
    p.i64(r.dist);
    p.f64(r.latency_s);
    p.u64(r.row.size());
    p.bytes(r.row.data(), r.row.size() * sizeof(dist_t));
    p.u64(r.error.size());
    p.bytes(r.error.data(), r.error.size());
  }
  const ServiceStats& s = report.service;
  p.i64(s.served);
  p.i64(s.degraded);
  p.i64(s.shed);
  p.i64(s.repaired);
  p.i64(s.retries);
  p.i64(s.transient_failures);
  p.i64(s.corrupt_tiles);
  const CacheStats& c = report.cache;
  p.i64(c.hits);
  p.i64(c.misses);
  p.i64(c.evictions);
  p.i64(c.negative_loads);
  p.i64(c.quarantined_tiles);
  p.i64(c.quarantine_hits);
  p.u64(c.bytes_cached);
  p.u64(c.capacity_bytes);
  p.f64(report.wall_seconds);
  return std::move(p.out);
}

WireBatchReply decode_batch_reply(std::span<const std::uint8_t> payload) {
  Unpacker u{payload};
  WireBatchReply reply;
  const std::uint64_t count = checked_count(
      u.u64(), 4 + 4 + 8 * 3 + 8 + 8 + 8, payload.size() - u.pos);
  reply.results.resize(static_cast<std::size_t>(count));
  for (QueryResult& r : reply.results) {
    const std::uint32_t status = u.u32();
    if (status > static_cast<std::uint32_t>(QueryStatus::kError)) {
      throw CorruptError("wire reply has an unknown query status");
    }
    r.status = static_cast<QueryStatus>(status);
    const std::uint32_t kind = u.u32();
    if (kind > static_cast<std::uint32_t>(QueryKind::kRow)) {
      throw CorruptError("wire reply has an unknown query kind");
    }
    r.query.kind = static_cast<QueryKind>(kind);
    r.query.u = static_cast<vidx_t>(u.i64());
    r.query.v = static_cast<vidx_t>(u.i64());
    r.dist = static_cast<dist_t>(u.i64());
    r.latency_s = u.f64();
    const std::uint64_t row_len =
        checked_count(u.u64(), sizeof(dist_t), payload.size() - u.pos);
    r.row.resize(static_cast<std::size_t>(row_len));
    u.bytes(r.row.data(), r.row.size() * sizeof(dist_t));
    const std::uint64_t err_len =
        checked_count(u.u64(), 1, payload.size() - u.pos);
    r.error.resize(static_cast<std::size_t>(err_len));
    u.bytes(r.error.data(), r.error.size());
  }
  ServiceStats& s = reply.service;
  s.served = u.i64();
  s.degraded = u.i64();
  s.shed = u.i64();
  s.repaired = u.i64();
  s.retries = u.i64();
  s.transient_failures = u.i64();
  s.corrupt_tiles = u.i64();
  CacheStats& c = reply.cache;
  c.hits = u.i64();
  c.misses = u.i64();
  c.evictions = u.i64();
  c.negative_loads = u.i64();
  c.quarantined_tiles = u.i64();
  c.quarantine_hits = u.i64();
  c.bytes_cached = static_cast<std::size_t>(u.u64());
  c.capacity_bytes = static_cast<std::size_t>(u.u64());
  reply.wall_seconds = u.f64();
  u.done();
  return reply;
}

bool read_frame(int fd, WireFrame& out, int timeout_ms) {
  std::uint32_t header[2] = {0, 0};
  auto* dst = reinterpret_cast<std::uint8_t*>(header);
  std::size_t want = sizeof(header);
  std::size_t got = 0;
  bool reading_payload = false;
  for (;;) {
    struct pollfd pfd {
      fd, POLLIN, 0
    };
    const int ready = ::poll(&pfd, 1, timeout_ms <= 0 ? -1 : timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw IoError("poll on worker pipe failed: " +
                    std::string(std::strerror(errno)));
    }
    if (ready == 0) {
      throw IoError("timed out after " + std::to_string(timeout_ms) +
                    " ms waiting for a frame");
    }
    const ssize_t r = ::read(fd, dst + got, want - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw IoError("read from worker pipe failed: " +
                    std::string(std::strerror(errno)));
    }
    if (r == 0) {
      if (!reading_payload && got == 0) return false;  // clean EOF
      throw IoError("peer closed the pipe mid-frame");
    }
    got += static_cast<std::size_t>(r);
    if (got < want) continue;
    if (reading_payload) break;
    // Header complete: validate and switch to the payload.
    if (header[0] > kMaxFrameBytes) {
      throw IoError("implausible frame length " + std::to_string(header[0]));
    }
    if (header[1] < static_cast<std::uint32_t>(WireType::kHello) ||
        header[1] > static_cast<std::uint32_t>(WireType::kShutdown)) {
      throw IoError("unknown frame type " + std::to_string(header[1]));
    }
    out.type = static_cast<WireType>(header[1]);
    out.payload.resize(header[0]);
    if (header[0] == 0) break;
    dst = out.payload.data();
    want = out.payload.size();
    got = 0;
    reading_payload = true;
  }
  return true;
}

void write_frame(int fd, WireType type,
                 std::span<const std::uint8_t> payload) {
  ignore_sigpipe();
  GAPSP_CHECK(payload.size() <= kMaxFrameBytes, "frame payload too large");
  const std::uint32_t header[2] = {static_cast<std::uint32_t>(payload.size()),
                                   static_cast<std::uint32_t>(type)};
  std::vector<std::uint8_t> buf(sizeof(header) + payload.size());
  std::memcpy(buf.data(), header, sizeof(header));
  if (!payload.empty()) {
    std::memcpy(buf.data() + sizeof(header), payload.data(), payload.size());
  }
  std::size_t sent = 0;
  while (sent < buf.size()) {
    const ssize_t w = ::write(fd, buf.data() + sent, buf.size() - sent);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw IoError("write to worker pipe failed: " +
                    std::string(std::strerror(errno)));
    }
    sent += static_cast<std::size_t>(w);
  }
}

}  // namespace gapsp::service
