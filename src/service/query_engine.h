// Distance-oracle query engine: serves point, row, block, and batched
// queries out of a solved DistStore without re-running the solver.
//
// This is the read side of the system the ROADMAP asks for — the solver
// produces the n×n matrix once (hours of simulated work at production
// scale), and this engine turns it into a servable artifact: a block-
// granular LRU cache (block_cache.h) absorbs the file-backed store's
// per-element seek cost, and batches fan out across ThreadPool::global()
// with a latency sample per query.
//
// Fault tolerance (DESIGN.md §13): every miss-path read goes through a
// CheckedTileReader — checksum-verified against the GAPSPSM1 sidecar for
// raw stores, retried under a RetryPolicy on transient I/O faults. Tiles
// that stay unreadable are quarantined in the cache; queries touching them
// come back with a typed per-query status instead of an exception (batch)
// and never poison sibling queries. With a repair source configured the
// engine recomputes a damaged tile on demand and republishes it. Batches
// admit at most `max_queue` queries; the overflow is shed with
// QueryStatus::kShed so overload degrades predictably instead of queueing
// without bound.
#pragma once

#include <atomic>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/block_cache.h"
#include "core/dist_store.h"
#include "core/incremental.h"
#include "core/store_integrity.h"
#include "core/tile_reader.h"

namespace gapsp::service {

// The cache moved to core (core/block_cache.h) so PathExtractor can share
// it; these aliases keep service callers source-compatible.
using core::BlockCache;
using core::BlockData;
using core::CacheStats;

enum class QueryKind {
  kPoint,  ///< dist(u, v)
  kRow,    ///< all of row u, in original vertex order
};

struct Query {
  QueryKind kind = QueryKind::kPoint;
  vidx_t u = 0;
  vidx_t v = 0;  ///< unused for row queries
};

/// Per-query outcome. Anything other than kOk leaves dist/row unspecified
/// and `error` set; the batch as a whole always completes.
enum class QueryStatus {
  kOk,
  kQuarantined,  ///< a tile this query needs is unserveable (corrupt or
                 ///< persistently unreadable) and no repair source is set
  kShed,         ///< rejected by admission control before any read
  kError,        ///< unexpected failure (bug surface, not a data fault)
};

const char* query_status_name(QueryStatus s);

struct QueryResult {
  Query query;
  QueryStatus status = QueryStatus::kOk;
  dist_t dist = kInf;       ///< point queries
  std::vector<dist_t> row;  ///< row queries, indexed by original vertex id
  double latency_s = 0.0;
  std::string error;  ///< empty when status == kOk
};

struct LatencyStats {
  std::size_t count = 0;
  double mean_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double max_s = 0.0;
};

/// Linear-interpolation percentile over an ascending-sorted sample (the
/// "exclusive max" convention: q lands at rank q·(n−1) and fractional ranks
/// interpolate between neighbors). The earlier nearest-rank rounding made
/// small batches report the max as p95 — with 4 samples, rank llround(0.95·3)
/// = 3 IS the max — and biased even p50 upward. Shared by the engine, the
/// shard router's merged report, and the stats tests.
double latency_percentile(const std::vector<double>& sorted, double q);

/// Engine-cumulative serving counters (atomically maintained across
/// batches and threads; reader stats come from the CheckedTileReader).
struct ServiceStats {
  long long served = 0;    ///< queries answered with kOk
  long long degraded = 0;  ///< queries failed kQuarantined/kError
  long long shed = 0;      ///< queries rejected by admission control
  long long repaired = 0;  ///< tiles recomputed and republished on demand
  long long retries = 0;   ///< physical re-reads after transient faults
  long long transient_failures = 0;  ///< reads that exhausted the budget
  long long corrupt_tiles = 0;       ///< reads that hit persistent damage
};

struct BatchReport {
  std::vector<QueryResult> results;  ///< same order as the input span
  double wall_seconds = 0.0;
  double qps = 0.0;
  LatencyStats latency;
  CacheStats cache;      ///< snapshot after the batch (cumulative counters)
  ServiceStats service;  ///< snapshot after the batch (cumulative counters)
};

struct QueryEngineOptions {
  /// Cache tile side length in elements; edge tiles are smaller. Ignored
  /// when the store is natively tiled (GAPSPZ1) or a checksum sidecar is
  /// present: the engine snaps to that tiling so one cache miss never
  /// spans two verifiable units.
  vidx_t block_size = 256;
  std::size_t cache_bytes = 64u << 20;
  int cache_shards = 8;
  /// Batch fan-out width over ThreadPool::global(): 0 = the whole pool,
  /// 1 = serial.
  int max_threads = 0;

  // ---- fault tolerance ----
  /// Backoff-retry budget for transient miss-path I/O failures.
  util::RetryPolicy retry;
  /// Verify raw-store tiles against `checksums` when present.
  bool verify_checksums = true;
  /// GAPSPSM1 sidecar contents (core/store_integrity.h). Default = absent:
  /// no verification, the pre-fault-tolerance behaviour.
  core::StoreChecksums checksums;
  /// Optional chaos hook applied to every physical store read.
  sim::FaultInjector* faults = nullptr;
  /// Admission bound for run_batch: at most this many queries per batch
  /// are admitted, the rest are shed with QueryStatus::kShed. 0 = no bound.
  std::size_t max_queue = 0;
  /// Optional on-demand repair source (core/scrub.h::make_sssp_repair):
  /// a quarantined tile is recomputed, republished, and the query served.
  core::TileRepairFn repair;
};

class QueryEngine {
 public:
  /// `store` must outlive the engine and must not be written while serving.
  /// `perm` is the solve's vertex permutation (ApspResult::perm; empty =
  /// identity): point and row queries take *original* vertex ids and
  /// translate internally, so callers never see the boundary algorithm's
  /// relabeling.
  explicit QueryEngine(const core::DistStore& store,
                       QueryEngineOptions opt = {},
                       std::vector<vidx_t> perm = {});

  vidx_t n() const { return store_.n(); }

  /// point/row/block throw core::TileError when a needed tile is
  /// unserveable and unrepaired; run_batch converts that into per-query
  /// statuses instead.
  dist_t point(vidx_t u, vidx_t v) const;

  /// Row of `u` with result[v] = dist(u, v) for original vertex ids v.
  std::vector<dist_t> row(vidx_t u) const;

  /// Copies the stored-order tile [row0, row0+rows) × [col0, col0+cols)
  /// into dst (leading dimension dst_ld, elements) through the cache.
  /// Addresses *stored* coordinates: a rectangle is only rectangular in the
  /// solve's own layout.
  void block(vidx_t row0, vidx_t col0, vidx_t rows, vidx_t cols, dist_t* dst,
             std::size_t dst_ld) const;

  /// Runs `queries` concurrently over ThreadPool::global(), timing each.
  /// Results come back in input order. Point queries are grouped by cache
  /// tile: each tile is resolved once per batch (the first query of the
  /// bucket pays it) and the rest of the bucket reads the pinned tile
  /// directly, so cache counters move per *tile*, not per query. Never
  /// throws for data faults: a query touching an unserveable tile comes
  /// back kQuarantined, overflow beyond max_queue comes back kShed, and
  /// sibling queries are unaffected either way.
  BatchReport run_batch(std::span<const Query> queries) const;

  CacheStats cache_stats() const { return cache_.stats(); }
  ServiceStats service_stats() const;

  /// Applies a batch of edge-weight updates to the served matrix without a
  /// restart: an IncrementalEngine (core/incremental.h) repairs the
  /// distances against the read-only store, and every changed tile lands in
  /// an in-memory overlay that the miss path consults before the store — so
  /// an evicted tile can never resurrect stale disk bytes. Each repaired
  /// tile is also republished through BlockCache::publish, which clears its
  /// quarantine mark: a tile that was unserveable before the update serves
  /// again afterwards. `g_before` is the graph the store was solved from
  /// (pre-update); opt.tile is forced to the engine's cache grid. Quiesce
  /// queries for the duration of the call: the repair reads the store
  /// directly (file-backed stores have one stateful stream, so concurrent
  /// miss-path reads would race), and repaired tiles become visible one at
  /// a time, not transactionally. A configured repair source still recomputes
  /// from the graph it captured — swap it via set_repair(make_sssp_repair(
  /// updated_graph, perm)) after the batch.
  core::UpdateOutcome apply_updates(const graph::CsrGraph& g_before,
                                    std::span<const core::EdgeUpdate> updates,
                                    core::IncrementalOptions opt = {});

  /// Replaces the on-demand repair source (used after apply_updates so
  /// repairs recompute from the updated graph).
  void set_repair(core::TileRepairFn fn) { opt_.repair = std::move(fn); }

 private:
  vidx_t stored_id(vidx_t v) const {
    return perm_.empty() ? v : perm_[static_cast<std::size_t>(v)];
  }
  BlockData fetch(vidx_t block_row, vidx_t block_col) const;
  /// Recomputes tile (bi, bj) from opt_.repair and republishes it.
  BlockData repair_tile(vidx_t block_row, vidx_t block_col) const;
  /// Collapses an all-kInf tile to the shared negative tile.
  BlockData collapse_inf(std::shared_ptr<std::vector<dist_t>> data) const;

  const core::DistStore& store_;
  QueryEngineOptions opt_;
  std::vector<vidx_t> perm_;
  vidx_t num_blocks_ = 0;  ///< tiles per side
  /// The one shared all-kInf tile; loaders return it for tiles the store
  /// directory marks empty or that scan as all-kInf, and the cache charges
  /// it no bytes (core/block_cache.h).
  BlockData inf_tile_;
  mutable BlockCache cache_;
  /// All miss-path reads funnel through the checked reader: it serializes
  /// access to the one stateful store stream, injects chaos faults,
  /// retries transients, and verifies checksums. Hits never touch it.
  mutable core::CheckedTileReader reader_;
  mutable std::atomic<long long> served_{0};
  mutable std::atomic<long long> degraded_{0};
  mutable std::atomic<long long> shed_{0};
  mutable std::atomic<long long> repaired_{0};
  /// Tiles rewritten by apply_updates, keyed bi·num_blocks+bj. The truth
  /// for those tiles lives here, not in the (stale) store: the miss path
  /// checks the overlay first, so cache evictions stay correct.
  mutable std::mutex overlay_mu_;
  std::unordered_map<std::uint64_t, BlockData> overlay_;
};

}  // namespace gapsp::service
