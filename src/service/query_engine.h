// Distance-oracle query engine: serves point, row, block, and batched
// queries out of a solved DistStore without re-running the solver.
//
// This is the read side of the system the ROADMAP asks for — the solver
// produces the n×n matrix once (hours of simulated work at production
// scale), and this engine turns it into a servable artifact: a block-
// granular LRU cache (block_cache.h) absorbs the file-backed store's
// per-element seek cost, and batches fan out across ThreadPool::global()
// with a latency sample per query.
#pragma once

#include <mutex>
#include <span>
#include <vector>

#include "core/block_cache.h"
#include "core/dist_store.h"

namespace gapsp::service {

// The cache moved to core (core/block_cache.h) so PathExtractor can share
// it; these aliases keep service callers source-compatible.
using core::BlockCache;
using core::BlockData;
using core::CacheStats;

enum class QueryKind {
  kPoint,  ///< dist(u, v)
  kRow,    ///< all of row u, in original vertex order
};

struct Query {
  QueryKind kind = QueryKind::kPoint;
  vidx_t u = 0;
  vidx_t v = 0;  ///< unused for row queries
};

struct QueryResult {
  Query query;
  dist_t dist = kInf;       ///< point queries
  std::vector<dist_t> row;  ///< row queries, indexed by original vertex id
  double latency_s = 0.0;
};

struct LatencyStats {
  std::size_t count = 0;
  double mean_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double max_s = 0.0;
};

struct BatchReport {
  std::vector<QueryResult> results;  ///< same order as the input span
  double wall_seconds = 0.0;
  double qps = 0.0;
  LatencyStats latency;
  CacheStats cache;  ///< snapshot after the batch (cumulative counters)
};

struct QueryEngineOptions {
  /// Cache tile side length in elements; edge tiles are smaller. Ignored
  /// when the store is natively tiled (GAPSPZ1): the engine snaps to the
  /// stored tile side so one cache miss never decompresses two tiles.
  vidx_t block_size = 256;
  std::size_t cache_bytes = 64u << 20;
  int cache_shards = 8;
  /// Batch fan-out width over ThreadPool::global(): 0 = the whole pool,
  /// 1 = serial.
  int max_threads = 0;
};

class QueryEngine {
 public:
  /// `store` must outlive the engine and must not be written while serving.
  /// `perm` is the solve's vertex permutation (ApspResult::perm; empty =
  /// identity): point and row queries take *original* vertex ids and
  /// translate internally, so callers never see the boundary algorithm's
  /// relabeling.
  explicit QueryEngine(const core::DistStore& store,
                       QueryEngineOptions opt = {},
                       std::vector<vidx_t> perm = {});

  vidx_t n() const { return store_.n(); }

  dist_t point(vidx_t u, vidx_t v) const;

  /// Row of `u` with result[v] = dist(u, v) for original vertex ids v.
  std::vector<dist_t> row(vidx_t u) const;

  /// Copies the stored-order tile [row0, row0+rows) × [col0, col0+cols)
  /// into dst (leading dimension dst_ld, elements) through the cache.
  /// Addresses *stored* coordinates: a rectangle is only rectangular in the
  /// solve's own layout.
  void block(vidx_t row0, vidx_t col0, vidx_t rows, vidx_t cols, dist_t* dst,
             std::size_t dst_ld) const;

  /// Runs `queries` concurrently over ThreadPool::global(), timing each.
  /// Results come back in input order. Point queries are grouped by cache
  /// tile: each tile is resolved once per batch (the first query of the
  /// bucket pays it) and the rest of the bucket reads the pinned tile
  /// directly, so cache counters move per *tile*, not per query.
  BatchReport run_batch(std::span<const Query> queries) const;

  CacheStats cache_stats() const { return cache_.stats(); }

 private:
  vidx_t stored_id(vidx_t v) const {
    return perm_.empty() ? v : perm_[static_cast<std::size_t>(v)];
  }
  BlockData fetch(vidx_t block_row, vidx_t block_col) const;

  const core::DistStore& store_;
  QueryEngineOptions opt_;
  std::vector<vidx_t> perm_;
  vidx_t num_blocks_ = 0;  ///< tiles per side
  /// The one shared all-kInf tile; loaders return it for tiles the store
  /// directory marks empty or that scan as all-kInf, and the cache charges
  /// it no bytes (core/block_cache.h).
  BlockData inf_tile_;
  mutable BlockCache cache_;
  /// Miss-path reads are serialized: the file-backed store is one stateful
  /// FILE* stream (seek+read pairs must not interleave). Hits never touch
  /// this mutex.
  mutable std::mutex store_mu_;
};

}  // namespace gapsp::service
