#include "service/shard_router.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "service/wire.h"
#include "util/timer.h"

namespace gapsp::service {
namespace {

QueryResult typed_result(const Query& q, QueryStatus status,
                         std::string error) {
  QueryResult r;
  r.query = q;
  r.status = status;
  r.error = std::move(error);
  return r;
}

/// In-process backend: a QueryEngine over one shard slice.
class LocalShardBackend final : public ShardBackend {
 public:
  LocalShardBackend(const std::string& store_path,
                    const core::ShardManifest& manifest, int k,
                    const QueryEngineOptions& opt, std::vector<vidx_t> perm)
      : shard_(k),
        slice_(core::open_shard_slice(store_path, manifest, k)),
        engine_(*slice_, opt, std::move(perm)) {}

  int shard() const override { return shard_; }

  BatchReport run_batch(std::span<const Query> queries) override {
    try {
      return engine_.run_batch(queries);
    } catch (const std::exception& e) {
      // The engine only throws for caller bugs (e.g. a vertex out of
      // range that slipped past router validation); keep the backend
      // contract anyway — typed results, never an escaping exception.
      BatchReport report;
      for (const Query& q : queries) {
        report.results.push_back(
            typed_result(q, QueryStatus::kError, e.what()));
      }
      return report;
    }
  }

 private:
  int shard_;
  std::unique_ptr<core::DistStore> slice_;
  QueryEngine engine_;
};

/// Stand-in for a shard whose backend could not be built (corrupt slice,
/// failed spawn): every query degrades to kQuarantined, counters keep the
/// degradation visible in the merged service line.
class FailedShardBackend final : public ShardBackend {
 public:
  FailedShardBackend(int k, std::string reason)
      : shard_(k), reason_(std::move(reason)) {}

  int shard() const override { return shard_; }
  bool alive() const override { return false; }

  BatchReport run_batch(std::span<const Query> queries) override {
    BatchReport report;
    for (const Query& q : queries) {
      report.results.push_back(typed_result(
          q, QueryStatus::kQuarantined,
          "shard " + std::to_string(shard_) + " unavailable: " + reason_));
    }
    degraded_ += static_cast<long long>(queries.size());
    report.service.degraded = degraded_;
    return report;
  }

 private:
  int shard_;
  std::string reason_;
  long long degraded_ = 0;
};

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Worker child behind the wire protocol, with respawn-retry. All peer
/// failures (spawn, handshake, torn pipe, timeout) funnel into the typed
/// degraded report; nothing escapes run_batch.
class ProcessShardBackend final : public ShardBackend {
 public:
  ProcessShardBackend(WorkerSpawner spawner, int shard,
                      const core::ShardManifest& manifest,
                      const ProcessBackendOptions& opt)
      : spawner_(std::move(spawner)),
        shard_(shard),
        n_(manifest.n),
        range_(manifest.shards[static_cast<std::size_t>(shard)]),
        opt_(opt) {
    try {
      ensure_worker();
    } catch (const std::exception& e) {
      reap();
      last_error_ = e.what();
    }
  }

  ~ProcessShardBackend() override { shutdown(); }

  int shard() const override { return shard_; }
  bool alive() const override { return proc_.pid > 0; }

  BatchReport run_batch(std::span<const Query> queries) override {
    const std::vector<std::uint8_t> payload = encode_batch(queries);
    for (int attempt = 0; attempt <= opt_.retries; ++attempt) {
      try {
        ensure_worker();
        write_frame(proc_.request_fd, WireType::kBatch, payload);
        WireFrame frame;
        if (!read_frame(proc_.reply_fd, frame, opt_.timeout_ms)) {
          throw IoError("worker closed the pipe mid-batch");
        }
        if (frame.type != WireType::kBatchReply) {
          throw IoError("unexpected frame type from worker");
        }
        WireBatchReply reply = decode_batch_reply(frame.payload);
        if (reply.results.size() != queries.size()) {
          throw IoError("worker answered " +
                        std::to_string(reply.results.size()) + " of " +
                        std::to_string(queries.size()) + " queries");
        }
        BatchReport report;
        report.results = std::move(reply.results);
        report.service = reply.service;
        report.cache = reply.cache;
        report.wall_seconds = reply.wall_seconds;
        return report;
      } catch (const std::exception& e) {
        last_error_ = e.what();
        reap();
        if (!opt_.respawn) break;
      }
    }
    degraded_ += static_cast<long long>(queries.size());
    BatchReport report;
    for (const Query& q : queries) {
      report.results.push_back(typed_result(
          q, QueryStatus::kQuarantined,
          "shard " + std::to_string(shard_) + " worker dead: " + last_error_));
    }
    report.service.degraded = degraded_;
    return report;
  }

 private:
  /// Spawns (when needed) and validates the kHello handshake so a
  /// misconfigured spawner is caught before any query is trusted to it.
  void ensure_worker() {
    if (proc_.pid > 0) return;
    proc_ = spawner_(shard_);
    if (proc_.pid <= 0) {
      throw IoError("spawn failed for shard " + std::to_string(shard_));
    }
    WireFrame frame;
    if (!read_frame(proc_.reply_fd, frame, opt_.hello_timeout_ms) ||
        frame.type != WireType::kHello) {
      throw IoError("worker for shard " + std::to_string(shard_) +
                    " did not complete the handshake");
    }
    const WireHello hello = decode_hello(frame.payload);
    if (hello.shard != shard_ || hello.n != n_ ||
        hello.row_begin != range_.row_begin ||
        hello.row_end != range_.row_end) {
      throw IoError("worker announced shard " + std::to_string(hello.shard) +
                    " rows [" + std::to_string(hello.row_begin) + ", " +
                    std::to_string(hello.row_end) + "), expected shard " +
                    std::to_string(shard_));
    }
  }

  void reap() {
    close_fd(proc_.request_fd);
    close_fd(proc_.reply_fd);
    if (proc_.pid > 0) {
      ::kill(proc_.pid, SIGKILL);
      int status = 0;
      while (::waitpid(proc_.pid, &status, 0) < 0 && errno == EINTR) {
      }
    }
    proc_.pid = -1;
  }

  void shutdown() {
    if (proc_.pid > 0 && proc_.request_fd >= 0) {
      try {
        write_frame(proc_.request_fd, WireType::kShutdown, {});
      } catch (const std::exception&) {
        // Already gone; reap below.
      }
    }
    reap();
  }

  WorkerSpawner spawner_;
  int shard_;
  vidx_t n_;
  core::ShardRange range_;
  ProcessBackendOptions opt_;
  WorkerProcess proc_;
  std::string last_error_ = "never spawned";
  long long degraded_ = 0;
};

}  // namespace

std::unique_ptr<ShardBackend> make_local_backend(
    const std::string& store_path, const core::ShardManifest& manifest, int k,
    const QueryEngineOptions& opt, std::vector<vidx_t> perm) {
  return std::make_unique<LocalShardBackend>(store_path, manifest, k, opt,
                                             std::move(perm));
}

std::vector<std::unique_ptr<ShardBackend>> make_local_backends(
    const std::string& store_path, const core::ShardManifest& manifest,
    const QueryEngineOptions& opt, std::vector<vidx_t> perm) {
  std::vector<std::unique_ptr<ShardBackend>> out;
  for (int k = 0; k < manifest.num_shards(); ++k) {
    try {
      out.push_back(make_local_backend(store_path, manifest, k, opt, perm));
    } catch (const std::exception& e) {
      out.push_back(std::make_unique<FailedShardBackend>(k, e.what()));
    }
  }
  return out;
}

WorkerSpawner make_fork_worker_spawner(std::string store_path,
                                       ShardWorkerOptions opt) {
  // A forked child must not touch the parent's thread pool: inline batch
  // execution only (parallel_for with width 1 never takes the pool locks).
  opt.engine.max_threads = 1;
  // Children inherit every previously-created pipe end; track them so each
  // new child can close the others' — otherwise a dead worker's reply pipe
  // is held open by its siblings and EOF detection degrades to timeouts.
  auto spawned = std::make_shared<std::vector<int>>();
  return [store_path = std::move(store_path), opt,
          spawned](int shard) -> WorkerProcess {
    int req[2];   // router writes → worker reads
    int rep[2];   // worker writes → router reads
    if (::pipe(req) != 0) return {};
    if (::pipe(rep) != 0) {
      ::close(req[0]);
      ::close(req[1]);
      return {};
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      for (const int fd : {req[0], req[1], rep[0], rep[1]}) ::close(fd);
      return {};
    }
    if (pid == 0) {
      ::close(req[1]);
      ::close(rep[0]);
      for (const int fd : *spawned) ::close(fd);
      _exit(run_shard_worker(store_path, shard, opt, req[0], rep[1]));
    }
    ::close(req[0]);
    ::close(rep[1]);
    spawned->push_back(req[1]);
    spawned->push_back(rep[0]);
    return {pid, req[1], rep[0]};
  };
}

WorkerSpawner make_cli_worker_spawner(std::string exe, std::string store_path,
                                      std::vector<std::string> extra) {
  return [exe = std::move(exe), store_path = std::move(store_path),
          extra = std::move(extra)](int shard) -> WorkerProcess {
    // O_CLOEXEC on every end: the exec'd child keeps only the two ends
    // dup2'd onto its stdin/stdout, so no worker holds a sibling's pipes.
    int req[2];
    int rep[2];
    if (::pipe2(req, O_CLOEXEC) != 0) return {};
    if (::pipe2(rep, O_CLOEXEC) != 0) {
      ::close(req[0]);
      ::close(req[1]);
      return {};
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      for (const int fd : {req[0], req[1], rep[0], rep[1]}) ::close(fd);
      return {};
    }
    if (pid == 0) {
      if (::dup2(req[0], STDIN_FILENO) < 0 ||
          ::dup2(rep[1], STDOUT_FILENO) < 0) {
        _exit(127);
      }
      std::vector<std::string> argv_s = {exe, "serve", "--store-path",
                                         store_path, "--shard",
                                         std::to_string(shard)};
      argv_s.insert(argv_s.end(), extra.begin(), extra.end());
      std::vector<char*> argv;
      for (std::string& s : argv_s) argv.push_back(s.data());
      argv.push_back(nullptr);
      ::execv(exe.c_str(), argv.data());
      _exit(127);
    }
    ::close(req[0]);
    ::close(rep[1]);
    return {pid, req[1], rep[0]};
  };
}

std::unique_ptr<ShardBackend> make_process_backend(
    WorkerSpawner spawner, int shard, const core::ShardManifest& manifest,
    const ProcessBackendOptions& opt) {
  GAPSP_CHECK(shard >= 0 && shard < manifest.num_shards(),
              "shard " + std::to_string(shard) + " out of range [0, " +
                  std::to_string(manifest.num_shards()) + ")");
  return std::make_unique<ProcessShardBackend>(std::move(spawner), shard,
                                               manifest, opt);
}

ShardRouter::ShardRouter(core::ShardManifest manifest,
                         std::vector<std::unique_ptr<ShardBackend>> backends,
                         ShardRouterOptions opt, std::vector<vidx_t> perm)
    : manifest_(std::move(manifest)),
      backends_(std::move(backends)),
      opt_(opt),
      perm_(std::move(perm)) {
  GAPSP_CHECK(manifest_.present(), "shard manifest is empty");
  GAPSP_CHECK(perm_.empty() ||
                  perm_.size() == static_cast<std::size_t>(manifest_.n),
              "permutation size does not match the manifest");
  backend_of_shard_.assign(static_cast<std::size_t>(manifest_.num_shards()),
                           -1);
  for (std::size_t b = 0; b < backends_.size(); ++b) {
    const int k = backends_[b]->shard();
    GAPSP_CHECK(k >= 0 && k < manifest_.num_shards(),
                "backend serves unknown shard " + std::to_string(k));
    GAPSP_CHECK(backend_of_shard_[static_cast<std::size_t>(k)] < 0,
                "two backends claim shard " + std::to_string(k));
    backend_of_shard_[static_cast<std::size_t>(k)] = static_cast<int>(b);
  }
}

ShardRouter::~ShardRouter() = default;

BatchReport ShardRouter::run_batch(std::span<const Query> queries) {
  Timer wall;
  BatchReport report;
  report.results.resize(queries.size());

  // Router-level admission, mirroring the engine's semantics: the overflow
  // is shed before any routing so workers see bounded sub-batches.
  std::size_t admitted = queries.size();
  if (opt_.max_queue > 0 && queries.size() > opt_.max_queue) {
    admitted = opt_.max_queue;
    for (std::size_t i = admitted; i < queries.size(); ++i) {
      report.results[i] = typed_result(
          queries[i], QueryStatus::kShed,
          "shed: batch exceeds admission queue of " +
              std::to_string(opt_.max_queue));
    }
    shed_total_ += static_cast<long long>(queries.size() - admitted);
  }

  // Route by the stored row: shards split stored rows, so each query has
  // exactly one owner. Unrouteable queries degrade typed right here.
  std::vector<std::vector<std::size_t>> routed(backends_.size());
  for (std::size_t i = 0; i < admitted; ++i) {
    const Query& q = queries[i];
    if (q.u < 0 || q.u >= n() ||
        (q.kind == QueryKind::kPoint && (q.v < 0 || q.v >= n()))) {
      report.results[i] =
          typed_result(q, QueryStatus::kError, "query vertex out of range");
      ++degraded_total_;
      continue;
    }
    const int shard = manifest_.shard_of_row(stored_id(q.u));
    const int b = shard < 0
                      ? -1
                      : backend_of_shard_[static_cast<std::size_t>(shard)];
    if (b < 0) {
      report.results[i] = typed_result(
          q, QueryStatus::kQuarantined,
          "no backend serves shard " + std::to_string(shard) + " (row " +
              std::to_string(stored_id(q.u)) + ")");
      ++degraded_total_;
      continue;
    }
    routed[static_cast<std::size_t>(b)].push_back(i);
  }

  // Fan out one thread per busy backend — process workers answer
  // concurrently, and local engines nest safely in the global pool.
  std::vector<BatchReport> sub(backends_.size());
  std::vector<std::thread> threads;
  for (std::size_t b = 0; b < backends_.size(); ++b) {
    if (routed[b].empty()) continue;
    threads.emplace_back([this, &queries, &routed, &sub, b] {
      std::vector<Query> slice;
      slice.reserve(routed[b].size());
      for (const std::size_t i : routed[b]) slice.push_back(queries[i]);
      sub[b] = backends_[b]->run_batch(slice);
    });
  }
  for (std::thread& t : threads) t.join();

  for (std::size_t b = 0; b < backends_.size(); ++b) {
    for (std::size_t j = 0; j < routed[b].size(); ++j) {
      report.results[routed[b][j]] = std::move(sub[b].results[j]);
    }
  }

  report.wall_seconds = wall.seconds();
  report.qps = report.wall_seconds > 0.0
                   ? static_cast<double>(queries.size()) / report.wall_seconds
                   : 0.0;

  std::vector<double> lat;
  lat.reserve(admitted);
  double sum = 0.0;
  for (std::size_t i = 0; i < admitted; ++i) {
    lat.push_back(report.results[i].latency_s);
    sum += report.results[i].latency_s;
  }
  std::sort(lat.begin(), lat.end());
  report.latency.count = lat.size();
  report.latency.mean_s =
      lat.empty() ? 0.0 : sum / static_cast<double>(lat.size());
  report.latency.p50_s = latency_percentile(lat, 0.50);
  report.latency.p95_s = latency_percentile(lat, 0.95);
  report.latency.max_s = lat.empty() ? 0.0 : lat.back();

  // Merged counters: the sum of every backend's cumulative snapshot plus
  // the router's own shed/unrouteable tallies.
  report.service.shed = shed_total_;
  report.service.degraded = degraded_total_;
  for (std::size_t b = 0; b < backends_.size(); ++b) {
    if (routed[b].empty()) continue;
    const ServiceStats& s = sub[b].service;
    report.service.served += s.served;
    report.service.degraded += s.degraded;
    report.service.shed += s.shed;
    report.service.repaired += s.repaired;
    report.service.retries += s.retries;
    report.service.transient_failures += s.transient_failures;
    report.service.corrupt_tiles += s.corrupt_tiles;
    const CacheStats& c = sub[b].cache;
    report.cache.hits += c.hits;
    report.cache.misses += c.misses;
    report.cache.evictions += c.evictions;
    report.cache.negative_loads += c.negative_loads;
    report.cache.quarantined_tiles += c.quarantined_tiles;
    report.cache.quarantine_hits += c.quarantine_hits;
    report.cache.bytes_cached += c.bytes_cached;
    report.cache.capacity_bytes += c.capacity_bytes;
  }
  return report;
}

}  // namespace gapsp::service
