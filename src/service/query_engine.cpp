#include "service/query_engine.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "util/thread_pool.h"
#include "util/timer.h"

namespace gapsp::service {

const char* query_status_name(QueryStatus s) {
  switch (s) {
    case QueryStatus::kOk:
      return "ok";
    case QueryStatus::kQuarantined:
      return "quarantined";
    case QueryStatus::kShed:
      return "shed";
    case QueryStatus::kError:
      return "error";
  }
  return "?";
}

QueryEngine::QueryEngine(const core::DistStore& store, QueryEngineOptions opt,
                         std::vector<vidx_t> perm)
    : store_(store),
      opt_(std::move(opt)),
      perm_(std::move(perm)),
      cache_(opt_.cache_bytes, opt_.cache_shards),
      reader_(store, std::move(opt_.checksums),
              core::TileReaderOptions{opt_.retry, opt_.verify_checksums,
                                      opt_.faults}) {
  GAPSP_CHECK(opt_.block_size > 0, "cache block size must be positive");
  GAPSP_CHECK(perm_.empty() ||
                  perm_.size() == static_cast<std::size_t>(store_.n()),
              "permutation length does not match the store");
  // A natively tiled store (GAPSPZ1) decompresses whole tiles on the miss
  // path: align the cache grid to the stored tiling so one miss never
  // touches two stored tiles. A raw store with a checksum sidecar likewise
  // snaps to the sidecar's tile grid so every miss is a verifiable unit.
  if (store_.tile_size() > 0) {
    opt_.block_size = store_.tile_size();
  } else if (reader_.checksums().present()) {
    opt_.block_size = reader_.checksums().tile;
  }
  opt_.block_size = std::min<vidx_t>(opt_.block_size, std::max<vidx_t>(1, n()));
  num_blocks_ = n() == 0 ? 0 : (n() + opt_.block_size - 1) / opt_.block_size;
  // Edge tiles index at most rows×cols ≤ block_size² elements into this
  // buffer, so one full-sized constant tile serves every negative block.
  inf_tile_ = std::make_shared<const std::vector<dist_t>>(
      static_cast<std::size_t>(opt_.block_size) *
          static_cast<std::size_t>(opt_.block_size),
      kInf);
  cache_.set_negative_tile(inf_tile_);
}

core::UpdateOutcome QueryEngine::apply_updates(
    const graph::CsrGraph& g_before,
    std::span<const core::EdgeUpdate> updates, core::IncrementalOptions opt) {
  // The engine's dirty-tile granularity must be the cache grid so every
  // emitted tile is exactly one overlay/cache entry. (A tiled store already
  // dictates the same side to both.)
  opt.tile = opt_.block_size;
  core::IncrementalEngine engine(g_before, std::move(opt), perm_);
  return engine.apply(
      store_, updates,
      [this](vidx_t bi, vidx_t bj, vidx_t, vidx_t, vidx_t rows, vidx_t cols,
             const dist_t* data) {
        auto tile = std::make_shared<std::vector<dist_t>>(
            data, data + static_cast<std::size_t>(rows) * cols);
        const BlockData fixed = collapse_inf(std::move(tile));
        {
          std::lock_guard<std::mutex> lock(overlay_mu_);
          overlay_[static_cast<std::uint64_t>(bi) *
                       static_cast<std::uint64_t>(num_blocks_) +
                   static_cast<std::uint64_t>(bj)] = fixed;
        }
        // Republish: later misses hit the overlay, current cache readers
        // swap to the new tile, and a quarantine mark — this tile may have
        // been unserveable — is cleared.
        cache_.publish(bi, bj, fixed);
      });
}

ServiceStats QueryEngine::service_stats() const {
  ServiceStats out;
  out.served = served_.load(std::memory_order_relaxed);
  out.degraded = degraded_.load(std::memory_order_relaxed);
  out.shed = shed_.load(std::memory_order_relaxed);
  out.repaired = repaired_.load(std::memory_order_relaxed);
  const core::TileReaderStats r = reader_.stats();
  out.retries = r.retries;
  out.transient_failures = r.transient_failures;
  out.corrupt_tiles = r.corrupt_tiles;
  return out;
}

BlockData QueryEngine::collapse_inf(
    std::shared_ptr<std::vector<dist_t>> data) const {
  // Scan-on-load for raw stores: an all-kInf tile just read from disk
  // collapses to the shared tile instead of occupying cache budget.
  for (const dist_t d : *data) {
    if (d != kInf) return data;
  }
  return inf_tile_;
}

BlockData QueryEngine::repair_tile(vidx_t block_row, vidx_t block_col) const {
  const vidx_t b = opt_.block_size;
  const vidx_t row0 = block_row * b;
  const vidx_t col0 = block_col * b;
  const vidx_t rows = std::min<vidx_t>(b, n() - row0);
  const vidx_t cols = std::min<vidx_t>(b, n() - col0);
  auto data = std::make_shared<std::vector<dist_t>>(
      opt_.repair(row0, col0, rows, cols));
  GAPSP_CHECK(data->size() == static_cast<std::size_t>(rows) * cols,
              "repair source returned a wrong-sized tile");
  BlockData fixed = collapse_inf(std::move(data));
  // Republish: clears the quarantine mark, so the whole service heals —
  // later queries for this tile are plain cache hits.
  cache_.publish(block_row, block_col, fixed);
  repaired_.fetch_add(1, std::memory_order_relaxed);
  return fixed;
}

BlockData QueryEngine::fetch(vidx_t block_row, vidx_t block_col) const {
  try {
    return cache_.get_or_load(block_row, block_col, [&]() -> BlockData {
      // Tiles rewritten by apply_updates live in the overlay, not the
      // store — an evicted tile must reload the repaired truth.
      {
        std::lock_guard<std::mutex> lock(overlay_mu_);
        const auto it = overlay_.find(
            static_cast<std::uint64_t>(block_row) *
                static_cast<std::uint64_t>(num_blocks_) +
            static_cast<std::uint64_t>(block_col));
        if (it != overlay_.end()) return it->second;
      }
      const vidx_t b = opt_.block_size;
      const vidx_t row0 = block_row * b;
      const vidx_t col0 = block_col * b;
      const vidx_t rows = std::min<vidx_t>(b, n() - row0);
      const vidx_t cols = std::min<vidx_t>(b, n() - col0);
      // Directory-backed stores answer "all kInf" without any I/O; the
      // shared tile is cached at zero byte cost.
      if (store_.block_known_inf(row0, col0, rows, cols)) return inf_tile_;
      auto data = std::make_shared<std::vector<dist_t>>(
          static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
      reader_.read_tile(block_row, block_col, row0, col0, rows, cols,
                        data->data());
      return collapse_inf(std::move(data));
    });
  } catch (const core::TileError&) {
    // The cache has quarantined the tile (or it already was). With a
    // repair source the engine recomputes it on demand and the query is
    // served; without one the typed error propagates for the caller to
    // turn into a degraded per-query status.
    if (opt_.repair) return repair_tile(block_row, block_col);
    throw;
  }
}

dist_t QueryEngine::point(vidx_t u, vidx_t v) const {
  GAPSP_CHECK(u >= 0 && u < n() && v >= 0 && v < n(),
              "query vertex out of range");
  const vidx_t su = stored_id(u);
  const vidx_t sv = stored_id(v);
  const vidx_t b = opt_.block_size;
  const vidx_t bi = su / b;
  const vidx_t bj = sv / b;
  const BlockData tile = fetch(bi, bj);
  const vidx_t cols = std::min<vidx_t>(b, n() - bj * b);
  return (*tile)[static_cast<std::size_t>(su - bi * b) *
                     static_cast<std::size_t>(cols) +
                 static_cast<std::size_t>(sv - bj * b)];
}

std::vector<dist_t> QueryEngine::row(vidx_t u) const {
  GAPSP_CHECK(u >= 0 && u < n(), "query vertex out of range");
  const vidx_t su = stored_id(u);
  const vidx_t b = opt_.block_size;
  const vidx_t bi = su / b;
  const vidx_t local_row = su - bi * b;
  std::vector<dist_t> stored_row(static_cast<std::size_t>(n()));
  for (vidx_t bj = 0; bj < num_blocks_; ++bj) {
    const BlockData tile = fetch(bi, bj);
    const vidx_t col0 = bj * b;
    const vidx_t cols = std::min<vidx_t>(b, n() - col0);
    std::copy_n(tile->data() + static_cast<std::size_t>(local_row) *
                                   static_cast<std::size_t>(cols),
                static_cast<std::size_t>(cols),
                stored_row.data() + static_cast<std::size_t>(col0));
  }
  if (perm_.empty()) return stored_row;
  std::vector<dist_t> out(static_cast<std::size_t>(n()));
  for (vidx_t v = 0; v < n(); ++v) {
    out[static_cast<std::size_t>(v)] =
        stored_row[static_cast<std::size_t>(perm_[static_cast<std::size_t>(v)])];
  }
  return out;
}

void QueryEngine::block(vidx_t row0, vidx_t col0, vidx_t rows, vidx_t cols,
                        dist_t* dst, std::size_t dst_ld) const {
  GAPSP_CHECK(row0 >= 0 && col0 >= 0 && rows >= 0 && cols >= 0 &&
                  row0 + rows <= n() && col0 + cols <= n(),
              "block query out of bounds");
  if (rows == 0 || cols == 0) return;
  const vidx_t b = opt_.block_size;
  for (vidx_t bi = row0 / b; bi * b < row0 + rows; ++bi) {
    for (vidx_t bj = col0 / b; bj * b < col0 + cols; ++bj) {
      const BlockData tile = fetch(bi, bj);
      const vidx_t tile_cols = std::min<vidx_t>(b, n() - bj * b);
      // Intersection of the requested rectangle with tile (bi, bj).
      const vidx_t r0 = std::max(row0, bi * b);
      const vidx_t r1 = std::min<vidx_t>(row0 + rows, (bi + 1) * b);
      const vidx_t c0 = std::max(col0, bj * b);
      const vidx_t c1 = std::min<vidx_t>(col0 + cols, (bj + 1) * b);
      for (vidx_t r = r0; r < r1; ++r) {
        std::copy_n(tile->data() +
                        static_cast<std::size_t>(r - bi * b) *
                            static_cast<std::size_t>(tile_cols) +
                        static_cast<std::size_t>(c0 - bj * b),
                    static_cast<std::size_t>(c1 - c0),
                    dst + static_cast<std::size_t>(r - row0) * dst_ld +
                        static_cast<std::size_t>(c0 - col0));
      }
    }
  }
}

double latency_percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos =
      std::clamp(q, 0.0, 1.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

BatchReport QueryEngine::run_batch(std::span<const Query> queries) const {
  BatchReport report;
  report.results.resize(queries.size());
  const auto fanout = static_cast<std::size_t>(std::max(0, opt_.max_threads));
  const auto tiles = static_cast<std::size_t>(num_blocks_) *
                     static_cast<std::size_t>(num_blocks_);

  // Admission control: the batch IS the queue. Everything past max_queue
  // is shed up front with a typed status — bounded work per batch, and the
  // caller can resubmit or spill to another replica.
  std::size_t admitted = queries.size();
  if (opt_.max_queue > 0 && queries.size() > opt_.max_queue) {
    admitted = opt_.max_queue;
    for (std::size_t i = admitted; i < queries.size(); ++i) {
      QueryResult& r = report.results[i];
      r.query = queries[i];
      r.status = QueryStatus::kShed;
      r.error = "shed: batch exceeds admission queue of " +
                std::to_string(opt_.max_queue);
    }
    shed_.fetch_add(static_cast<long long>(queries.size() - admitted),
                    std::memory_order_relaxed);
  }

  // Workers run on ThreadPool::global(), where an escaping exception is
  // fatal (util/thread_pool.h): every failure must become a per-query
  // status here, never a throw.
  const auto run_one = [&](std::size_t i) {
    const Query& q = queries[i];
    QueryResult& r = report.results[i];
    r.query = q;
    Timer t;
    try {
      switch (q.kind) {
        case QueryKind::kPoint:
          r.dist = point(q.u, q.v);
          break;
        case QueryKind::kRow:
          r.row = row(q.u);
          break;
      }
    } catch (const core::TileError& e) {
      r.status = QueryStatus::kQuarantined;
      r.error = e.what();
      r.row.clear();
      r.dist = kInf;
    } catch (const std::exception& e) {
      r.status = QueryStatus::kError;
      r.error = e.what();
      r.row.clear();
      r.dist = kInf;
    }
    r.latency_s = t.seconds();
  };

  // Point queries are grouped by tile so each tile goes through the cache
  // once per batch; the rest of a bucket is answered by direct array reads.
  // A batch much smaller than the tile grid would pay more for the counting
  // pass than it saves — those (and empty stores) take the per-query path.
  const bool grouped =
      tiles > 0 && tiles <= std::max<std::size_t>(1024, 8 * admitted);
  Timer wall;
  if (!grouped) {
    ThreadPool::global().parallel_for(admitted, run_one, /*grain=*/1, fanout);
  } else {
    const vidx_t b = opt_.block_size;
    // Counting sort of point-query indices by tile (validated up front, on
    // the calling thread, so workers never throw for bad arguments).
    std::vector<std::uint32_t> tile_of(admitted);
    std::vector<std::uint32_t> count(tiles, 0);
    std::vector<std::uint32_t> row_queries;
    std::size_t num_points = 0;
    for (std::size_t i = 0; i < admitted; ++i) {
      const Query& q = queries[i];
      GAPSP_CHECK(q.u >= 0 && q.u < n(), "query vertex out of range");
      if (q.kind == QueryKind::kRow) {
        row_queries.push_back(static_cast<std::uint32_t>(i));
        continue;
      }
      GAPSP_CHECK(q.v >= 0 && q.v < n(), "query vertex out of range");
      const auto t = static_cast<std::uint32_t>(
          static_cast<std::size_t>(stored_id(q.u) / b) * num_blocks_ +
          static_cast<std::size_t>(stored_id(q.v) / b));
      tile_of[i] = t;
      ++count[t];
      ++num_points;
    }
    std::vector<std::uint32_t> start(tiles + 1, 0);
    std::vector<std::uint32_t> bucket_tiles;  // non-empty, in tile order
    for (std::size_t t = 0; t < tiles; ++t) {
      start[t + 1] = start[t] + count[t];
      if (count[t] > 0) bucket_tiles.push_back(static_cast<std::uint32_t>(t));
    }
    std::vector<std::uint32_t> order(num_points);
    {
      std::vector<std::uint32_t> cursor(start.begin(), start.end() - 1);
      for (std::size_t i = 0; i < admitted; ++i) {
        if (queries[i].kind == QueryKind::kPoint) {
          order[cursor[tile_of[i]]++] = static_cast<std::uint32_t>(i);
        }
      }
    }
    // One work item per non-empty bucket, plus one per row query. The first
    // query of a bucket pays the (timed) cache resolution; the rest read the
    // pinned tile directly. A tile failure degrades exactly its bucket —
    // the typed error is copied to each query that needed the tile.
    ThreadPool::global().parallel_for(
        bucket_tiles.size() + row_queries.size(),
        [&](std::size_t w) {
          if (w >= bucket_tiles.size()) {
            run_one(row_queries[w - bucket_tiles.size()]);
            return;
          }
          const std::uint32_t tl = bucket_tiles[w];
          const auto bi = static_cast<vidx_t>(tl / static_cast<std::uint32_t>(num_blocks_));
          const auto bj = static_cast<vidx_t>(tl % static_cast<std::uint32_t>(num_blocks_));
          const vidx_t cols = std::min<vidx_t>(b, n() - bj * b);
          Timer t_fetch;
          BlockData tile;
          try {
            tile = fetch(bi, bj);
          } catch (const core::TileError& e) {
            for (std::uint32_t p = start[tl]; p < start[tl + 1]; ++p) {
              QueryResult& r = report.results[order[p]];
              r.query = queries[order[p]];
              r.status = QueryStatus::kQuarantined;
              r.error = e.what();
              r.latency_s = p == start[tl] ? t_fetch.seconds() : 0.0;
            }
            return;
          } catch (const std::exception& e) {
            for (std::uint32_t p = start[tl]; p < start[tl + 1]; ++p) {
              QueryResult& r = report.results[order[p]];
              r.query = queries[order[p]];
              r.status = QueryStatus::kError;
              r.error = e.what();
              r.latency_s = p == start[tl] ? t_fetch.seconds() : 0.0;
            }
            return;
          }
          const double fetch_s = t_fetch.seconds();
          // Per-query latency is amortized over the bucket (timing each
          // ~100ns array read individually would cost more than the read);
          // the tile resolution is billed to the bucket's first query.
          Timer t_reads;
          for (std::uint32_t p = start[tl]; p < start[tl + 1]; ++p) {
            const std::uint32_t i = order[p];
            const Query& q = queries[i];
            QueryResult& r = report.results[i];
            r.query = q;
            r.dist = (*tile)[static_cast<std::size_t>(stored_id(q.u) - bi * b) *
                                 static_cast<std::size_t>(cols) +
                             static_cast<std::size_t>(stored_id(q.v) - bj * b)];
          }
          const auto bucket_n = start[tl + 1] - start[tl];
          const double per_read = t_reads.seconds() / bucket_n;
          for (std::uint32_t p = start[tl]; p < start[tl + 1]; ++p) {
            report.results[order[p]].latency_s =
                per_read + (p == start[tl] ? fetch_s : 0.0);
          }
        },
        /*grain=*/1, fanout);
  }
  report.wall_seconds = wall.seconds();
  report.qps = report.wall_seconds > 0.0
                   ? static_cast<double>(queries.size()) / report.wall_seconds
                   : 0.0;

  long long ok = 0;
  long long bad = 0;
  std::vector<double> lat;
  lat.reserve(admitted);
  double sum = 0.0;
  for (std::size_t i = 0; i < admitted; ++i) {
    const QueryResult& r = report.results[i];
    (r.status == QueryStatus::kOk ? ok : bad) += 1;
    lat.push_back(r.latency_s);
    sum += r.latency_s;
  }
  served_.fetch_add(ok, std::memory_order_relaxed);
  degraded_.fetch_add(bad, std::memory_order_relaxed);
  std::sort(lat.begin(), lat.end());
  report.latency.count = lat.size();
  report.latency.mean_s = lat.empty() ? 0.0 : sum / static_cast<double>(lat.size());
  report.latency.p50_s = latency_percentile(lat, 0.50);
  report.latency.p95_s = latency_percentile(lat, 0.95);
  report.latency.max_s = lat.empty() ? 0.0 : lat.back();
  report.cache = cache_.stats();
  report.service = service_stats();
  return report;
}

}  // namespace gapsp::service
