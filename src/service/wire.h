// Length-prefixed wire protocol between the shard router and shard worker
// processes (DESIGN.md §15).
//
// A worker owns one shard slice of the kept store behind its own QueryEngine
// (shard_worker.h); the router (shard_router.h) speaks to it over a
// socketpair/pipe in frames:
//
//   frame := u32 payload_len | u32 type | payload (payload_len bytes)
//
// Types: kHello (worker → router once at startup: shard id + geometry, so a
// misrouted spawn is caught before any query), kBatch (router → worker: the
// shard's slice of a batch), kBatchReply (worker → router: per-query results
// plus the worker's cumulative cache/service counters), kShutdown (router →
// worker: drain and exit). Same-machine binary like every GAPSP* artifact —
// the two ends are always the same build.
//
// Failure model: encode/decode throw CorruptError on malformed payloads;
// read_frame/write_frame throw IoError on timeout, short frames, or a dead
// peer — the router catches both and degrades that shard's queries to typed
// statuses, never letting one sick worker crash a batch.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "service/query_engine.h"
#include "util/common.h"

namespace gapsp::service {

enum class WireType : std::uint32_t {
  kHello = 1,
  kBatch = 2,
  kBatchReply = 3,
  kShutdown = 4,
};

/// Startup handshake: the worker announces which shard it serves.
struct WireHello {
  int shard = -1;
  vidx_t n = 0;
  vidx_t row_begin = 0;
  vidx_t row_end = 0;
};

/// A worker's answer to one kBatch frame. The counters are the worker
/// engine's *cumulative* snapshots, same semantics as BatchReport.
struct WireBatchReply {
  std::vector<QueryResult> results;
  ServiceStats service;
  CacheStats cache;
  double wall_seconds = 0.0;
};

std::vector<std::uint8_t> encode_hello(const WireHello& hello);
WireHello decode_hello(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_batch(std::span<const Query> queries);
std::vector<Query> decode_batch(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_batch_reply(const BatchReport& report);
WireBatchReply decode_batch_reply(std::span<const std::uint8_t> payload);

struct WireFrame {
  WireType type = WireType::kShutdown;
  std::vector<std::uint8_t> payload;
};

/// Reads one frame from `fd`. Returns false on a clean EOF at a frame
/// boundary (peer closed); throws IoError when no full frame arrives within
/// `timeout_ms` (≤ 0 = wait forever), on a mid-frame EOF, or on an
/// implausible length prefix.
bool read_frame(int fd, WireFrame& out, int timeout_ms);

/// Writes one frame to `fd`, retrying short writes. Throws IoError when the
/// peer is gone (EPIPE is taken on the return path, not via SIGPIPE).
void write_frame(int fd, WireType type, std::span<const std::uint8_t> payload);

}  // namespace gapsp::service
