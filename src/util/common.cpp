#include "util/common.h"

#include <sstream>

namespace gapsp::detail {

void fail_check(const char* expr, const std::string& msg,
                const std::source_location& loc) {
  std::ostringstream os;
  os << loc.file_name() << ":" << loc.line() << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace gapsp::detail
