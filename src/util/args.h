// Minimal command-line flag parser for the tools:
//   --flag value   |   --flag=value   |   --switch
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/common.h"

namespace gapsp {

class Args {
 public:
  /// Parses argv. Tokens starting with "--" are flags; a following token
  /// that is not itself a flag becomes the value. Remaining tokens are
  /// positional. Throws gapsp::Error on a repeated flag.
  Args(int argc, const char* const* argv);

  bool has(const std::string& flag) const { return flags_.count(flag) > 0; }

  std::optional<std::string> get(const std::string& flag) const;
  std::string get_or(const std::string& flag, const std::string& dflt) const;
  long long get_int_or(const std::string& flag, long long dflt) const;
  double get_double_or(const std::string& flag, double dflt) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags seen but never queried — typo detection for tools.
  std::vector<std::string> unknown(
      const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace gapsp
