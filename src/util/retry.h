// Bounded exponential backoff policy shared by every retry site in the
// system: the device simulator retries transient transfer/kernel faults with
// the backoff charged to the stream timeline (sim/device.cpp), and the
// serving tier retries transient tile-read failures with the backoff paid in
// real wall time (core/tile_reader.h). One policy type means one CLI flag
// (--retries) and one tested semantics for "how hard do we try before we
// give up" across the solve and serve paths.
#pragma once

namespace gapsp::util {

/// Bounded exponential backoff for transient faults.
struct RetryPolicy {
  int max_retries = 3;
  double backoff_s = 100e-6;  ///< first retry waits this long
  double backoff_multiplier = 2.0;
};

/// Backoff before the `attempt`-th retry (1-based):
/// backoff_s · multiplier^(attempt-1).
inline double retry_backoff_s(const RetryPolicy& p, int attempt) {
  double b = p.backoff_s;
  for (int i = 1; i < attempt; ++i) b *= p.backoff_multiplier;
  return b;
}

}  // namespace gapsp::util
