// Streaming summary statistics (Welford) used by the cost models (batch-time
// variance, Sec. IV-B2) and by benchmark reporting.
#pragma once

#include <cmath>
#include <cstddef>

namespace gapsp {

class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }

  /// Coefficient of variation in percent — the paper reports batch execution
  /// time spread as 1.67%–13.4% of the mean.
  double cv_percent() const { return mean_ == 0.0 ? 0.0 : 100.0 * stddev() / mean_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace gapsp
