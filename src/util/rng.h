// Small deterministic PRNG used across generators, partitioner tie-breaking
// and sampling. SplitMix64: fast, full 64-bit state, reproducible everywhere.
#pragma once

#include <cstdint>

namespace gapsp {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Multiply-shift rejection-free mapping (Lemire); bias is negligible for
    // the bounds used in this project (< 2^32).
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next_u64()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool next_bool(double p) { return next_double() < p; }

  /// Derive an independent child stream (for parallel reproducibility).
  Rng fork() { return Rng(next_u64() ^ 0xda3e39cb94b95bdbULL); }

 private:
  std::uint64_t state_;
};

}  // namespace gapsp
