// Fixed-size thread pool with a parallel_for helper. The device simulator
// uses it to execute kernel grids; the CPU baselines use it to parallelize
// over SSSP sources. On a single-core host it degrades to inline execution.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gapsp {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Runs fn(i) for i in [0, count), blocking until all iterations finish.
  /// Iterations are distributed in contiguous chunks of `grain`; the default
  /// grain of 1 is auto-sized to count / (4 · workers) so per-index
  /// std::function dispatch cannot dominate tiny bodies. `max_threads`
  /// bounds how many threads participate (0 = the whole pool, 1 = inline).
  /// A call from inside a pool worker (nested parallelism) degrades to
  /// inline execution instead of deadlocking on chunks queued behind the
  /// caller's own blocked task.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1, std::size_t max_threads = 0);

  /// True when called from a thread owned by any ThreadPool — the signal
  /// parallel_for uses to detect (and inline) nested parallelism.
  static bool in_worker() noexcept;

  /// Shared process-wide pool. Sized from the GAPSP_THREADS environment
  /// variable when set, otherwise to the hardware.
  static ThreadPool& global();

  /// Worker count requested by a GAPSP_THREADS-style value: the whole string
  /// must be a positive decimal integer (surrounding whitespace allowed).
  /// Returns 0 — "fall back to hardware concurrency" — for nullptr and for
  /// anything else ("4x", "-2", "0", "", "1e3"): a typo'd override silently
  /// parsing as its numeric prefix (strtol semantics) once pinned a run to
  /// the wrong width. global() warns once to stderr on the fallback.
  static std::size_t threads_from_env(const char* value);

 private:
  struct Task {
    std::function<void()> fn;
  };

  void worker_loop();
  void enqueue(std::function<void()> fn);

  std::vector<std::thread> workers_;
  std::queue<Task> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace gapsp
