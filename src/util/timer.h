// Wall-clock timing helper.
#pragma once

#include <chrono>

namespace gapsp {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed wall time in seconds since construction / last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace gapsp
