// Common scalar types and checked helpers shared by every gapsp module.
#pragma once

#include <cstdint>
#include <limits>
#include <source_location>
#include <stdexcept>
#include <string>

namespace gapsp {

/// Distance value type. The paper uses `int` distances so that the Johnson
/// implementation can rely on atomicMin; we keep the same width.
using dist_t = std::int32_t;

/// Vertex / edge index types. 32-bit indices are sufficient for every graph
/// this reproduction handles and halve the memory traffic of the kernels.
using vidx_t = std::int32_t;
using eidx_t = std::int64_t;

/// "Infinite" distance sentinel. Chosen so that kInf + (max edge weight)
/// cannot overflow a dist_t when computed through sat_add().
inline constexpr dist_t kInf = std::numeric_limits<dist_t>::max() / 4;

/// Saturating addition for path relaxation: any sum involving an unreachable
/// distance stays unreachable instead of wrapping around.
[[nodiscard]] constexpr dist_t sat_add(dist_t a, dist_t b) noexcept {
  if (a >= kInf || b >= kInf) return kInf;
  return a + b;
}

/// min-plus "multiply-accumulate" used by every dense kernel.
[[nodiscard]] constexpr dist_t min_plus(dist_t acc, dist_t a, dist_t b) noexcept {
  const dist_t sum = sat_add(a, b);
  return sum < acc ? sum : acc;
}

/// Exception raised for violated runtime contracts (bad arguments, resource
/// exhaustion in the device simulator, malformed input files, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Error from host filesystem I/O (short writes, failed flush/seek, …), so
/// callers can distinguish a sick disk from a logic bug and react (retry on
/// other storage, fail the checkpoint but keep computing, …).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Data failed an integrity check: a checksum mismatch, a malformed
/// compressed frame, a directory that contradicts itself. Unlike a plain
/// IoError (which may be a transient hiccup worth retrying), corruption is
/// persistent — the fault-tolerant serving tier quarantines or repairs the
/// damaged tile instead of retrying it (core/tile_reader.h).
class CorruptError : public IoError {
 public:
  explicit CorruptError(const std::string& what) : IoError(what) {}
};

namespace detail {
[[noreturn]] void fail_check(const char* expr, const std::string& msg,
                             const std::source_location& loc);
}  // namespace detail

/// Contract check that stays enabled in release builds. Use for conditions
/// that depend on user input or on resource limits.
#define GAPSP_CHECK(cond, msg)                                            \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::gapsp::detail::fail_check(#cond, (msg),                           \
                                  std::source_location::current());       \
    }                                                                     \
  } while (false)

}  // namespace gapsp
