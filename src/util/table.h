// Minimal fixed-width table printer so every bench binary emits the same
// row/series layout as the paper's tables and figures.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gapsp {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; cells beyond the header count are dropped, missing
  /// cells are rendered empty.
  void add_row(std::vector<std::string> cells);

  /// Renders with column-aligned plain text plus a separator under headers.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

  /// Formats a double with `digits` decimal places.
  static std::string num(double v, int digits = 3);
  /// Formats an integer with thousands separators (paper-style "14,988").
  static std::string count(long long v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gapsp
