#include "util/args.h"

#include <algorithm>

namespace gapsp {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    if (tok.rfind("--", 0) != 0) {
      positional_.push_back(std::move(tok));
      continue;
    }
    tok = tok.substr(2);
    std::string value;
    const auto eq = tok.find('=');
    if (eq != std::string::npos) {
      value = tok.substr(eq + 1);
      tok = tok.substr(0, eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    }
    GAPSP_CHECK(!tok.empty(), "empty flag name");
    GAPSP_CHECK(flags_.emplace(tok, value).second, "repeated flag --" + tok);
  }
}

std::optional<std::string> Args::get(const std::string& flag) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string Args::get_or(const std::string& flag,
                         const std::string& dflt) const {
  return get(flag).value_or(dflt);
}

long long Args::get_int_or(const std::string& flag, long long dflt) const {
  const auto v = get(flag);
  if (!v.has_value()) return dflt;
  try {
    return std::stoll(*v);
  } catch (const std::exception&) {
    throw Error("flag --" + flag + " expects an integer, got '" + *v + "'");
  }
}

double Args::get_double_or(const std::string& flag, double dflt) const {
  const auto v = get(flag);
  if (!v.has_value()) return dflt;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw Error("flag --" + flag + " expects a number, got '" + *v + "'");
  }
}

std::vector<std::string> Args::unknown(
    const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [flag, value] : flags_) {
    if (std::find(known.begin(), known.end(), flag) == known.end()) {
      out.push_back(flag);
    }
  }
  return out;
}

}  // namespace gapsp
