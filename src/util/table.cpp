#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace gapsp {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << "\n";
  };
  emit(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule += std::string(width[c], '-');
    if (c + 1 < headers_.size()) rule += "  ";
  }
  os << rule << "\n";
  for (const auto& row : rows_) emit(row);
}

std::string Table::num(double v, int digits) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(digits) << v;
  return ss.str();
}

std::string Table::count(long long v) {
  std::string raw = std::to_string(v < 0 ? -v : v);
  std::string out;
  const std::size_t first = raw.size() % 3 == 0 ? 3 : raw.size() % 3;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (i != 0 && (i - first) % 3 == 0 && i >= first) out += ',';
    out += raw[i];
  }
  if (v < 0) out.insert(out.begin(), '-');
  return out;
}

}  // namespace gapsp
