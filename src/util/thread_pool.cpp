#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

namespace gapsp {
namespace {

/// Set for the lifetime of every pool worker thread. parallel_for consults
/// it so a nested call (e.g. a grid-parallel kernel inside Johnson's MSSP
/// parallel_for) runs inline: its chunks would otherwise sit in the queue
/// behind the very task that is blocked waiting for them.
thread_local bool tls_in_worker = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::in_worker() noexcept { return tls_in_worker; }

void ThreadPool::worker_loop() {
  tls_in_worker = true;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task.fn();
  }
}

void ThreadPool::enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    tasks_.push(Task{std::move(fn)});
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain, std::size_t max_threads) {
  if (count == 0) return;
  if (grain <= 1) {
    // Auto-grain: ~4 chunks per worker balances dispatch overhead against
    // load imbalance when per-index cost varies.
    grain = std::max<std::size_t>(
        1, count / (4 * std::max<std::size_t>(1, workers_.size())));
  }
  const std::size_t chunks = (count + grain - 1) / grain;
  std::size_t width = workers_.size();
  if (max_threads > 0) width = std::min(width, max_threads);
  if (chunks == 1 || width <= 1 || in_worker()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // The latch must live on the heap: the caller's wait predicate can become
  // true through the atomic before the last finisher has taken the mutex to
  // notify, so the caller may return (and pop its stack frame) while that
  // finisher is still inside the notify path. Each participant keeps the
  // state alive through its own shared_ptr.
  struct Work {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t count = 0, grain = 0, chunks = 0, launches = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::mutex mu;
    std::condition_variable cv;
  };
  auto work = std::make_shared<Work>();
  work->count = count;
  work->grain = grain;
  work->chunks = chunks;
  work->launches = std::min(chunks, width);
  // Borrowing fn is safe: every fn(i) call happens before that participant's
  // done increment, and the caller does not return until done == launches.
  work->fn = &fn;
  auto body = [](const std::shared_ptr<Work>& w) {
    for (;;) {
      const std::size_t c = w->next.fetch_add(1);
      if (c >= w->chunks) break;
      const std::size_t lo = c * w->grain;
      const std::size_t hi = std::min(w->count, lo + w->grain);
      for (std::size_t i = lo; i < hi; ++i) (*w->fn)(i);
    }
    if (w->done.fetch_add(1) + 1 == w->launches) {
      std::lock_guard<std::mutex> lk(w->mu);
      w->cv.notify_one();
    }
  };
  for (std::size_t t = 1; t < work->launches; ++t) {
    enqueue([work, body] { body(work); });
  }
  body(work);  // the calling thread participates as launch #0
  std::unique_lock<std::mutex> lk(work->mu);
  work->cv.wait(lk, [&] { return work->done.load() == work->launches; });
}

std::size_t ThreadPool::threads_from_env(const char* value) {
  if (value == nullptr) return 0;
  std::string s(value);
  const auto begin = s.find_first_not_of(" \t");
  if (begin == std::string::npos) return 0;  // all whitespace
  const auto end = s.find_last_not_of(" \t");
  s = s.substr(begin, end - begin + 1);
  // Digits only: strtol would accept "4x16" as 4 and "-2" as a huge size_t
  // after the cast — both must fall back loudly, not half-parse.
  for (const char c : s) {
    if (c < '0' || c > '9') return 0;
  }
  errno = 0;
  char* parse_end = nullptr;
  const long v = std::strtol(s.c_str(), &parse_end, 10);
  if (errno != 0 || parse_end != s.c_str() + s.size() || v <= 0) return 0;
  return static_cast<std::size_t>(v);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("GAPSP_THREADS"); env != nullptr) {
      const std::size_t v = threads_from_env(env);
      if (v == 0) {
        std::fprintf(stderr,
                     "gapsp: ignoring GAPSP_THREADS=\"%s\" (not a positive "
                     "integer); using hardware concurrency\n",
                     env);
      }
      return v;
    }
    return std::size_t{0};
  }());
  return pool;
}

}  // namespace gapsp
