#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace gapsp {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task.fn();
  }
}

void ThreadPool::enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    tasks_.push(Task{std::move(fn)});
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (count == 0) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t chunks = (count + grain - 1) / grain;
  if (chunks == 1 || workers_.size() <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  const std::size_t launches = std::min(chunks, workers_.size());
  auto body = [&] {
    for (;;) {
      const std::size_t c = next.fetch_add(1);
      if (c >= chunks) break;
      const std::size_t lo = c * grain;
      const std::size_t hi = std::min(count, lo + grain);
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }
    if (done.fetch_add(1) + 1 == launches) {
      std::lock_guard<std::mutex> lk(done_mu);
      done_cv.notify_one();
    }
  };
  for (std::size_t t = 1; t < launches; ++t) enqueue(body);
  body();  // the calling thread participates as launch #0
  std::unique_lock<std::mutex> lk(done_mu);
  done_cv.wait(lk, [&] { return done.load() == launches; });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace gapsp
