// Device performance/capacity descriptions for the simulator.
//
// The presets mirror Table II of the paper (Tesla V100 and Tesla K80) with
// the host-link throughputs the authors measured with nvprof (11.75 GB/s and
// 7.23 GB/s). `with_memory()` produces a capacity-scaled variant so the
// out-of-core machinery is exercised at this machine's graph sizes.
#pragma once

#include <cstddef>
#include <string>

namespace gapsp::sim {

struct DeviceSpec {
  std::string name;

  /// Usable device memory in bytes. Allocations beyond this fail, which is
  /// what forces every algorithm in this project out of core.
  std::size_t memory_bytes = 0;

  int sm_count = 0;
  /// Maximum concurrently resident thread blocks. Kernels launched with
  /// fewer blocks run at proportionally lower throughput (the occupancy
  /// effect behind the paper's dynamic-parallelism optimization).
  int max_active_blocks = 0;

  /// Peak scalar min-plus/relax operation throughput (ops/s) at full
  /// occupancy and perfectly regular control flow.
  double compute_ops_per_s = 0;
  /// Device-memory bandwidth (bytes/s).
  double mem_bandwidth = 0;

  /// Host link (PCIe) bandwidth, bytes/s, and fixed per-transfer overhead.
  double link_bandwidth = 0;
  double transfer_latency_s = 10e-6;
  /// Pageable (non-pinned) host memory reaches only this fraction of link
  /// bandwidth — why the overlap optimization stages through pinned buffers.
  double pageable_penalty = 0.35;

  /// Fixed cost of a kernel launch from the host, and of a device-side
  /// (dynamic parallelism) child launch.
  double kernel_launch_s = 8e-6;
  double child_launch_s = 3e-6;

  /// On-device z1 decode/encode throughput for the compressed transfer path,
  /// in GB (1e9 bytes) of *raw* payload per second — the rate an LZ4-class
  /// decompression kernel sustains on this device's memory system. 0 disables
  /// the compressed path entirely (no such kernel on the device). The
  /// autotuned raw-fallback threshold derives from the ratio of this rate to
  /// link_bandwidth (see DESIGN.md §14).
  double decode_gbps = 0.0;

  /// Tesla V100-like preset (16 GB HBM2, 80 SMs, PCIe ~11.75 GB/s).
  static DeviceSpec v100();
  /// Tesla K80-like preset (12 GB GDDR5 per GK210, 13 SMs, PCIe ~7.23 GB/s).
  static DeviceSpec k80();

  /// Capacity-scaled presets for this machine's graph sizes: device memory
  /// AND resident-block capacity are shrunk together (a "mini-V100" with
  /// proportionally fewer SMs), while the host link keeps its measured
  /// throughput — PCIe does not shrink with the working set. This keeps the
  /// occupancy regimes (Johnson's small-bat under-utilization, single-block
  /// diagonal FW kernels) at the same relative positions the paper's full
  /// devices exhibit at SuiteSparse scale. See DESIGN.md §2.
  static DeviceSpec v100_scaled(std::size_t memory = 8u << 20) {
    DeviceSpec s = v100().with_memory(memory);
    s.name = "Tesla V100 (simulated, scaled)";
    s.max_active_blocks = 32;
    return s;
  }
  static DeviceSpec k80_scaled(std::size_t memory = 6u << 20) {
    DeviceSpec s = k80().with_memory(memory);
    s.name = "Tesla K80 (simulated, scaled)";
    s.max_active_blocks = 8;
    return s;
  }

  /// Same throughput characteristics with a different memory capacity —
  /// used to scale experiments down to this machine's graph sizes.
  DeviceSpec with_memory(std::size_t bytes) const {
    DeviceSpec s = *this;
    s.memory_bytes = bytes;
    return s;
  }
};

inline DeviceSpec DeviceSpec::v100() {
  DeviceSpec s;
  s.name = "Tesla V100 (simulated)";
  s.memory_bytes = 16ull << 30;
  s.sm_count = 80;
  s.max_active_blocks = 160;
  s.compute_ops_per_s = 2.0e12;
  s.mem_bandwidth = 900e9;
  s.link_bandwidth = 11.75e9;  // paper-measured D2H throughput
  s.decode_gbps = 64.0;        // LZ4-class decode, bounded by HBM2 bandwidth
  return s;
}

inline DeviceSpec DeviceSpec::k80() {
  DeviceSpec s;
  s.name = "Tesla K80 (simulated)";
  s.memory_bytes = 12ull << 30;
  s.sm_count = 13;
  s.max_active_blocks = 26;
  s.compute_ops_per_s = 0.55e12;
  s.mem_bandwidth = 240e9;
  s.link_bandwidth = 7.23e9;  // paper-measured D2H throughput
  s.kernel_launch_s = 12e-6;
  s.child_launch_s = 5e-6;
  s.decode_gbps = 24.0;  // GDDR5-bound decode rate
  return s;
}

}  // namespace gapsp::sim
