// Deterministic fault injection for the device simulator.
//
// A FaultPlan describes *when* operations fail — per-op-kind probabilities
// drawn from a seeded stream, scripted "fail the Nth H2D", and a device-kill
// rule — and a FaultInjector executes one plan against one Device. Every
// injected fault surfaces as a typed FaultError from the device entry point
// it hit (memcpy_h2d/d2h, launch, alloc), so recovery policy lives with the
// caller: the Device retries transient transfer/kernel faults under its
// RetryPolicy (backoff charged on the stream timeline), core/ degrades or
// checkpoints, and multi_device fails components over to surviving devices.
// See DESIGN.md §8 for the fault model.
#pragma once

#include <string>
#include <vector>

#include "util/common.h"
#include "util/retry.h"
#include "util/rng.h"

namespace gapsp::sim {

/// Operation classes the injector can fail. kStoreRead models the serving
/// tier's host-side tile reads (DistStore miss path under BlockCache), so
/// chaos sweeps can drive the retry/quarantine ladder with the same seeded
/// determinism as the device-op faults. kDecode covers the on-device z1
/// decode/encode kernels of the compressed transfer path — gated before any
/// payload is published, so a retried decode re-runs the whole tile.
enum class FaultOp {
  kH2D,
  kD2H,
  kKernel,
  kAlloc,
  kStoreRead,
  kDecode,
  kDeviceLost,
};

const char* fault_op_name(FaultOp op);

/// Typed error raised by an injected fault. `transient()` faults model
/// recoverable hiccups (link CRC error, launch timeout) and are eligible
/// for retry; non-transient faults model device OOM (kAlloc) or a lost
/// device (kDeviceLost) and propagate to the degradation/failover layers.
class FaultError : public Error {
 public:
  FaultError(FaultOp op, bool transient, const std::string& what)
      : Error(what), op_(op), transient_(transient) {}

  FaultOp op() const { return op_; }
  bool transient() const { return transient_; }

 private:
  FaultOp op_;
  bool transient_;
};

/// Bounded exponential backoff for transient faults. The policy type now
/// lives in util/retry.h so the serving tier (core/tile_reader.h) shares the
/// exact semantics; in the simulator the backoff is charged to the issuing
/// stream's timeline, so retries show up honestly in the simulated makespan
/// and the Chrome trace.
using RetryPolicy = util::RetryPolicy;

/// Seeded fault schedule. Deterministic: the same plan against the same
/// operation sequence injects the same faults (retries consume additional
/// probability draws, which is itself deterministic).
struct FaultPlan {
  std::uint64_t seed = 1;

  /// Per-operation fault probabilities (0 disables that class). Transfer,
  /// kernel, and store-read faults are transient; alloc faults model OOM
  /// and are not.
  double p_h2d = 0.0;
  double p_d2h = 0.0;
  double p_kernel = 0.0;
  double p_alloc = 0.0;
  double p_store_read = 0.0;
  double p_decode = 0.0;

  /// Scripted one-shot faults: fail the nth (1-based) operation of `op` on
  /// `device` (-1 = any device). Consumed once each.
  struct Scripted {
    FaultOp op = FaultOp::kH2D;
    long long nth = 0;
    int device = -1;
    bool transient = true;
  };
  std::vector<Scripted> scripted;

  /// Device-kill rule: device `kill_device` dies at its `kill_at_op`-th
  /// operation (any kind, 1-based) or once its local clock reaches
  /// `kill_at_s`, whichever is configured. A dead device throws
  /// FaultError(kDeviceLost) from every subsequent operation.
  int kill_device = -1;
  long long kill_at_op = -1;
  double kill_at_s = -1.0;
};

/// Executes one FaultPlan against one device (identified by `device_index`
/// so multi-GPU runs can target individual devices and decorrelate their
/// probability streams). Attach with Device::set_fault_injector; the
/// injector outlives retries and re-plans, so scripted faults stay consumed
/// across recovery attempts.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan, int device_index = 0);

  /// Called by the device before each operation; throws FaultError when a
  /// fault fires. `device_now` is the device-local time used by the
  /// kill-at-time rule.
  void on_op(FaultOp op, double device_now, const char* what);

  long long injected() const { return injected_; }
  bool device_killed() const { return killed_; }
  int device_index() const { return device_; }

 private:
  double probability(FaultOp op) const;

  FaultPlan plan_;  // scripted entries are consumed from this copy
  Rng rng_;
  int device_ = 0;
  long long op_count_[6] = {0, 0, 0, 0, 0, 0};  ///< per-kind, indexed by FaultOp
  long long total_ops_ = 0;
  long long injected_ = 0;
  bool killed_ = false;
};

}  // namespace gapsp::sim
