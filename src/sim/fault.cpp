#include "sim/fault.h"

namespace gapsp::sim {

const char* fault_op_name(FaultOp op) {
  switch (op) {
    case FaultOp::kH2D:
      return "h2d";
    case FaultOp::kD2H:
      return "d2h";
    case FaultOp::kKernel:
      return "kernel";
    case FaultOp::kAlloc:
      return "alloc";
    case FaultOp::kStoreRead:
      return "store-read";
    case FaultOp::kDecode:
      return "decode";
    case FaultOp::kDeviceLost:
      return "device-lost";
  }
  return "?";
}

FaultInjector::FaultInjector(const FaultPlan& plan, int device_index)
    : plan_(plan),
      // Decorrelate per-device probability streams without changing the
      // single-device stream (index 0 keeps the plan seed verbatim).
      rng_(plan.seed ^ (static_cast<std::uint64_t>(device_index) *
                        0x9e3779b97f4a7c15ULL)),
      device_(device_index) {}

double FaultInjector::probability(FaultOp op) const {
  switch (op) {
    case FaultOp::kH2D:
      return plan_.p_h2d;
    case FaultOp::kD2H:
      return plan_.p_d2h;
    case FaultOp::kKernel:
      return plan_.p_kernel;
    case FaultOp::kAlloc:
      return plan_.p_alloc;
    case FaultOp::kStoreRead:
      return plan_.p_store_read;
    case FaultOp::kDecode:
      return plan_.p_decode;
    case FaultOp::kDeviceLost:
      break;
  }
  return 0.0;
}

void FaultInjector::on_op(FaultOp op, double device_now, const char* what) {
  const std::string dev_tag = "device " + std::to_string(device_);
  if (killed_) {
    throw FaultError(FaultOp::kDeviceLost, /*transient=*/false,
                     dev_tag + " is lost (" + std::string(what) + " on a dead"
                     " device)");
  }
  ++total_ops_;
  ++op_count_[static_cast<int>(op)];

  // Kill rule first: a dying device takes precedence over any other fault.
  if (plan_.kill_device == device_ &&
      ((plan_.kill_at_op > 0 && total_ops_ >= plan_.kill_at_op) ||
       (plan_.kill_at_s >= 0.0 && device_now >= plan_.kill_at_s))) {
    killed_ = true;
    ++injected_;
    throw FaultError(FaultOp::kDeviceLost, /*transient=*/false,
                     dev_tag + " lost at op " + std::to_string(total_ops_) +
                         " (" + what + ")");
  }

  for (auto it = plan_.scripted.begin(); it != plan_.scripted.end(); ++it) {
    if (it->op == op && (it->device < 0 || it->device == device_) &&
        op_count_[static_cast<int>(op)] == it->nth) {
      const bool transient = it->transient && op != FaultOp::kAlloc;
      plan_.scripted.erase(it);
      ++injected_;
      throw FaultError(op, transient,
                       "scripted " + std::string(fault_op_name(op)) +
                           " fault on " + dev_tag + " (" + what + ")");
    }
  }

  const double p = probability(op);
  if (p > 0.0 && rng_.next_bool(p)) {
    ++injected_;
    // Alloc faults model OOM/fragmentation — retry cannot help, the caller
    // must degrade its plan instead.
    throw FaultError(op, /*transient=*/op != FaultOp::kAlloc,
                     "injected " + std::string(fault_op_name(op)) +
                         " fault on " + dev_tag + " (" + what + ")");
  }
}

}  // namespace gapsp::sim
