// Functional GPU device simulator.
//
// Kernels are ordinary C++ callables that run on the host and produce real
// results; the simulator's job is (a) to enforce the device memory capacity,
// so out-of-core algorithms cannot cheat, and (b) to maintain a discrete-
// event timeline that charges every kernel launch and host<->device transfer
// a cost derived from the DeviceSpec. Streams and events follow CUDA
// semantics: async operations advance only their stream's clock, blocking
// operations join the host clock to the stream, and `synchronize()` is the
// makespan over all streams. See DESIGN.md §2 for why this substitution
// preserves the paper's behaviour.
#pragma once

#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "sim/device_spec.h"
#include "sim/fault.h"
#include "sim/trace.h"
#include "util/common.h"

namespace gapsp::sim {

/// Typed out-of-memory error from the device allocator, so recovery layers
/// can tell capacity exhaustion (degrade the plan and retry) apart from
/// contract violations (propagate).
class OomError : public Error {
 public:
  explicit OomError(const std::string& what) : Error(what) {}
};

/// Cost declaration for one kernel: how much scalar work it did, how many
/// device-memory bytes it touched, over how many thread blocks, and how
/// regular its control flow was (1 = perfectly regular).
struct KernelProfile {
  double ops = 0.0;
  double bytes = 0.0;
  int blocks = 1;
  double efficiency = 1.0;
};

using StreamId = int;
constexpr StreamId kDefaultStream = 0;

/// A recorded point on a stream's timeline (CUDA event analogue).
struct Event {
  double time = 0.0;
};

struct DeviceMetrics {
  double sim_seconds = 0.0;       ///< host clock after the last synchronize()
  double kernel_seconds = 0.0;    ///< sum of kernel durations
  double transfer_seconds = 0.0;  ///< sum of transfer durations
  /// Transfer time that ran concurrently with kernel execution on another
  /// stream ("hidden") vs transfer time the timeline actually pays for
  /// ("exposed"). hidden + exposed == transfer_seconds.
  double hidden_transfer_seconds = 0.0;
  double exposed_transfer_seconds = 0.0;
  /// Busy (occupied) seconds per stream, indexed by StreamId.
  std::vector<double> stream_busy_seconds;
  std::size_t bytes_h2d = 0;
  std::size_t bytes_d2h = 0;
  long long transfers_h2d = 0;
  long long transfers_d2h = 0;
  /// Compressed transfer path (DESIGN.md §14), per lane: logical payload
  /// bytes routed through the TransferCodec (raw) vs bytes actually charged
  /// on the link (wire). A raw-fallback tile counts equally on both sides,
  /// so raw/wire is the end-to-end wire ratio; bytes_h2d/d2h above stay in
  /// logical bytes either way, invariant under the compression mode.
  std::size_t bytes_h2d_raw = 0;
  std::size_t bytes_h2d_wire = 0;
  std::size_t bytes_d2h_raw = 0;
  std::size_t bytes_d2h_wire = 0;
  /// Busy seconds and launch count of the modeled on-device z1 decode
  /// (H2D side) / encode (D2H side) kernels.
  double decode_seconds = 0.0;
  long long decodes = 0;
  long long kernels = 0;
  long long child_kernels = 0;
  double total_ops = 0.0;
  std::size_t peak_bytes = 0;     ///< high-water mark of device allocations
  /// High-water mark of registered pinned-host staging (see
  /// Device::note_pinned_alloc) — what cudaHostAlloc would have reserved.
  std::size_t pinned_peak_bytes = 0;
  /// Fault injection / recovery counters (all zero when no FaultInjector is
  /// attached or the plan never fires).
  long long faults_injected = 0;   ///< FaultErrors raised by this device
  long long transfer_retries = 0;  ///< transient h2d/d2h faults retried
  long long kernel_retries = 0;    ///< transient launch faults retried
  long long decode_retries = 0;    ///< transient decode/encode faults retried
  double retry_backoff_seconds = 0.0;  ///< stream time spent backing off
  /// Name of the min-plus microkernel variant the kernel engine ran with
  /// (set via Device::note_kernel_variant; empty when never noted). The
  /// variant affects host wall-clock only, never the simulated timeline.
  std::string kernel_variant;
};

class Device;

/// Handed to a kernel body; lets it launch dynamic-parallelism children.
/// Child kernels execute inline (the body just does the work) but are
/// charged separately, at their own occupancy — which is the whole point of
/// the paper's dynamic-parallelism optimization for high-degree vertices.
class LaunchCtx {
 public:
  void child_launch(const KernelProfile& profile);
  double child_seconds() const { return child_seconds_; }

 private:
  friend class Device;
  explicit LaunchCtx(const Device& dev) : dev_(dev) {}
  const Device& dev_;
  double child_seconds_ = 0.0;
  long long children_ = 0;
};

/// Capacity-tracked device allocation. Holds real host memory (the simulator
/// computes real results) but counts against DeviceSpec::memory_bytes.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(DeviceBuffer&& other) noexcept { *this = std::move(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept;
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  ~DeviceBuffer() { release(); }

  T* data() { return storage_.data(); }
  const T* data() const { return storage_.data(); }
  std::size_t size() const { return storage_.size(); }
  std::size_t bytes() const { return storage_.size() * sizeof(T); }
  T& operator[](std::size_t i) { return storage_[i]; }
  const T& operator[](std::size_t i) const { return storage_[i]; }

  void release();

 private:
  friend class Device;
  DeviceBuffer(Device* dev, std::size_t count)
      : dev_(dev), storage_(count) {}
  Device* dev_ = nullptr;
  std::vector<T> storage_;
};

class Device {
 public:
  explicit Device(DeviceSpec spec) : spec_(std::move(spec)) {}
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const DeviceSpec& spec() const { return spec_; }

  // ---- memory ----

  /// Allocates `count` elements of T. Throws gapsp::Error when the request
  /// would exceed the device capacity.
  template <typename T>
  DeviceBuffer<T> alloc(std::size_t count, const char* what = "buffer") {
    reserve_bytes(count * sizeof(T), what);
    return DeviceBuffer<T>(this, count);
  }

  std::size_t used_bytes() const { return used_bytes_; }
  std::size_t free_bytes() const { return spec_.memory_bytes - used_bytes_; }

  /// Pinned-host staging accounting. Pinned memory is a host-side resource
  /// (cudaHostAlloc), so it does not count against device capacity, but the
  /// overlap machinery stages every transfer through it — the high-water
  /// mark is reported in DeviceMetrics::pinned_peak_bytes.
  void note_pinned_alloc(std::size_t bytes);
  void note_pinned_release(std::size_t bytes);
  std::size_t pinned_bytes() const { return pinned_bytes_; }

  // ---- streams & events ----

  /// Creates an additional stream; stream 0 always exists.
  StreamId create_stream();
  Event record_event(StreamId s);
  /// Makes stream `s` wait until `e` (cross-stream dependency).
  void wait_event(StreamId s, const Event& e);
  /// Joins the host clock to all stream clocks (cudaDeviceSynchronize).
  void synchronize();
  /// Joins the host clock to one stream (cudaStreamSynchronize).
  void stream_synchronize(StreamId s);

  /// Advances the host clock and every stream clock to at least `t` —
  /// models a synchronization barrier across multiple devices.
  void advance_to(double t);

  double now() const { return host_time_; }

  // ---- transfers ----

  /// Host-to-device copy of `bytes` from `src` to `dst` (real memcpy plus a
  /// timeline charge). `async` follows cudaMemcpyAsync semantics; `pinned`
  /// selects full link bandwidth vs the pageable penalty.
  void memcpy_h2d(StreamId s, void* dst, const void* src, std::size_t bytes,
                  bool async = false, bool pinned = false);
  void memcpy_d2h(StreamId s, void* dst, const void* src, std::size_t bytes,
                  bool async = false, bool pinned = false);

  /// Compressed transfer (pinned staging implied): charges `wire_bytes` on
  /// the link lane of stream `s` plus a modeled on-device z1 decode (H2D)
  /// or encode (D2H) of `raw_bytes` at spec().decode_gbps. The functional
  /// payload movement is performed by `materialize`, which runs exactly
  /// once, after every fault gate has passed — a mid-decode fault therefore
  /// retries the whole tile and never publishes partial output. The decode
  /// occupies the stream as kernel time (it can hide other lanes'
  /// transfers); the wire span is charged as transfer time.
  void copy_z1(StreamId s, bool to_device, std::size_t wire_bytes,
               std::size_t raw_bytes, const std::function<void()>& materialize,
               bool async = false);

  /// Accounts a raw-fallback tile on the compressed path's per-lane
  /// raw/wire counters (the copy itself went through memcpy_h2d/d2h).
  void note_z1_fallback(bool to_device, std::size_t bytes);

  /// Modeled duration of the on-device z1 decode/encode of `raw_bytes`.
  double decode_time(std::size_t raw_bytes) const;

  // ---- kernels ----

  /// Launches a kernel on stream `s`. The body executes immediately (it must
  /// perform the real computation) and returns its KernelProfile; the
  /// timeline charge is derived from that profile plus any dynamic-
  /// parallelism children launched through the ctx. Returns the simulated
  /// kernel duration in seconds.
  double launch(StreamId s, const std::string& name,
                const std::function<KernelProfile(LaunchCtx&)>& body);

  /// Grid-parallel launch form: `block_body(b)` performs the real work of
  /// thread block b in [0, grid). Blocks must own disjoint outputs, so
  /// serial and parallel execution are bit-identical — the thread pool only
  /// changes host wall-clock, never results. `profile` is evaluated once on
  /// the calling thread after every block finished (deterministic ops/bytes
  /// accounting), and the timeline charge is exactly that of an equivalent
  /// serial launch(). Honors set_kernel_threads().
  double launch_grid(StreamId s, const std::string& name, int grid,
                     const std::function<void(int)>& block_body,
                     const std::function<KernelProfile()>& profile);

  /// Host threads used to execute a launch_grid's blocks: 0 = the whole
  /// global pool, 1 = serial. Purely a wall-clock knob.
  void set_kernel_threads(int threads) { kernel_threads_ = threads; }
  int kernel_threads() const { return kernel_threads_; }

  /// Records the microkernel-variant name reported in DeviceMetrics.
  void note_kernel_variant(const std::string& name) {
    metrics_.kernel_variant = name;
  }

  // ---- modeled costs (exposed for the Sec. IV cost models) ----

  /// Duration of a kernel with the given profile at its declared occupancy.
  double kernel_time(const KernelProfile& p) const;
  /// Duration of one transfer of `bytes`.
  double transfer_time(std::size_t bytes, bool pinned) const;

  DeviceMetrics metrics() const;

  /// Attaches a timeline recorder (nullptr detaches). Not owned.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  // ---- fault injection & recovery ----

  /// Attaches a fault injector (nullptr detaches). Not owned; the injector
  /// may outlive retries and re-plans so scripted faults stay consumed.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  /// Bounded retry-with-backoff applied to transient transfer/kernel faults
  /// before they propagate as FaultError.
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }
  /// True once the attached injector killed this device; every further
  /// transfer/launch/alloc throws FaultError(kDeviceLost).
  bool lost() const { return injector_ != nullptr && injector_->device_killed(); }

 private:
  template <typename T>
  friend class DeviceBuffer;

  void reserve_bytes(std::size_t bytes, const char* what);
  void release_bytes(std::size_t bytes);
  void do_copy(StreamId s, void* dst, const void* src, std::size_t bytes,
               bool async, bool pinned, bool to_device);

  /// Consults the fault injector before an operation on stream `s`. Retries
  /// transient faults under retry_ (charging backoff to the stream clock and
  /// recording each fault in the trace) and rethrows when the fault is not
  /// transient or the retry budget is exhausted. Returns once the operation
  /// may proceed.
  void fault_gate(FaultOp op, StreamId s, const char* what);

  /// A busy interval on a stream's timeline, kept so metrics() can compute
  /// how much transfer time was hidden under concurrent kernel execution.
  struct Interval {
    double start = 0.0;
    double end = 0.0;
    bool transfer = false;
  };

  DeviceSpec spec_;
  std::size_t used_bytes_ = 0;
  std::size_t peak_bytes_ = 0;
  std::size_t pinned_bytes_ = 0;
  std::size_t pinned_peak_bytes_ = 0;

  double host_time_ = 0.0;
  std::vector<double> stream_ready_{0.0};  // stream 0
  std::vector<double> stream_busy_{0.0};   // occupied seconds per stream
  std::vector<Interval> intervals_;
  DeviceMetrics metrics_{};
  TraceRecorder* trace_ = nullptr;
  FaultInjector* injector_ = nullptr;
  RetryPolicy retry_;
  int kernel_threads_ = 0;
};

template <typename T>
DeviceBuffer<T>& DeviceBuffer<T>::operator=(DeviceBuffer&& other) noexcept {
  if (this != &other) {
    release();
    dev_ = other.dev_;
    storage_ = std::move(other.storage_);
    other.dev_ = nullptr;
    other.storage_.clear();
  }
  return *this;
}

template <typename T>
void DeviceBuffer<T>::release() {
  if (dev_ != nullptr) {
    dev_->release_bytes(storage_.size() * sizeof(T));
    dev_ = nullptr;
  }
  storage_.clear();
  storage_.shrink_to_fit();
}

}  // namespace gapsp::sim
