#include "sim/stream_pipeline.h"

namespace gapsp::sim {

StreamPipeline::StreamPipeline(Device& dev, bool overlap, StreamId compute)
    : dev_(&dev), overlap_(overlap), compute_(compute) {
  in_ = overlap ? dev.create_stream() : compute;
  out_ = overlap ? dev.create_stream() : compute;
}

Event StreamPipeline::stage_in(void* dst, const void* src, std::size_t bytes) {
  dev_->memcpy_h2d(in_, dst, src, bytes, /*async=*/true, /*pinned=*/true);
  return dev_->record_event(in_);
}

Event StreamPipeline::stage_out(void* dst, const void* src, std::size_t bytes,
                                Event after) {
  dev_->wait_event(out_, after);
  dev_->memcpy_d2h(out_, dst, src, bytes, /*async=*/true, /*pinned=*/true);
  return dev_->record_event(out_);
}

Event StreamPipeline::stage_in_z1(std::size_t wire_bytes,
                                  std::size_t raw_bytes,
                                  const std::function<void()>& materialize) {
  dev_->copy_z1(in_, /*to_device=*/true, wire_bytes, raw_bytes, materialize,
                /*async=*/true);
  return dev_->record_event(in_);
}

Event StreamPipeline::stage_out_z1(std::size_t wire_bytes,
                                   std::size_t raw_bytes,
                                   const std::function<void()>& materialize,
                                   Event after) {
  dev_->wait_event(out_, after);
  dev_->copy_z1(out_, /*to_device=*/false, wire_bytes, raw_bytes, materialize,
                /*async=*/true);
  return dev_->record_event(out_);
}

void StreamPipeline::consume(const Event& e) { dev_->wait_event(compute_, e); }

Event StreamPipeline::computed() { return dev_->record_event(compute_); }

void StreamPipeline::drain() {
  dev_->stream_synchronize(compute_);
  if (overlap_) {
    dev_->stream_synchronize(in_);
    dev_->stream_synchronize(out_);
  }
}

}  // namespace gapsp::sim
