// Reusable compute/transfer overlap engine over the device simulator.
//
// The paper's §IV optimization — two CUDA streams with double buffering into
// pinned host memory — first appeared as ad-hoc logic inside the boundary
// algorithm. This layer generalizes it so every out-of-core algorithm can
// overlap transfers with compute through one protocol:
//
//   StreamPipeline  — owns the stream roles: a compute stream, an H2D
//                     prefetch lane and a D2H writeback lane (both collapse
//                     onto the compute stream when overlap is disabled, so
//                     call sites keep a single code path and the serialized
//                     timeline falls out of the same calls).
//   PingPong<T>     — a pair of capacity-charged DeviceBuffers (one when
//                     serial) with matching pinned-host staging and per-slot
//                     ready/free events. acquire() rotates slots and makes
//                     the refilling stream wait until the previous consumer
//                     released the slot; release() publishes the consumer's
//                     completion event.
//
// Kernels in the simulator execute functionally at launch, so issuing work
// in plain program order is always *correct*; the events exist to keep the
// simulated timeline honest — an H2D into a buffer may not start, in
// sim-time, before the kernel still reading that buffer has finished, which
// is exactly the discipline CUDA double buffering enforces on real hardware.
#pragma once

#include <vector>

#include "sim/device.h"

namespace gapsp::sim {

class StreamPipeline {
 public:
  /// When `overlap` is false every lane aliases `compute`: the same call
  /// sequence then charges a fully serialized timeline.
  StreamPipeline(Device& dev, bool overlap, StreamId compute = kDefaultStream);
  StreamPipeline(const StreamPipeline&) = delete;
  StreamPipeline& operator=(const StreamPipeline&) = delete;

  Device& device() { return *dev_; }
  bool overlapped() const { return overlap_; }
  StreamId compute_stream() const { return compute_; }
  StreamId in_stream() const { return in_; }    ///< H2D prefetch lane
  StreamId out_stream() const { return out_; }  ///< D2H writeback lane

  /// Async pinned H2D on the prefetch lane. Returns the completion event a
  /// consumer must pass to consume() before reading `dst` on device.
  Event stage_in(void* dst, const void* src, std::size_t bytes);

  /// Async pinned D2H on the writeback lane, ordered after `after` (the
  /// producer kernel's completion). Returns the drain event that frees the
  /// source device buffer for refill.
  Event stage_out(void* dst, const void* src, std::size_t bytes, Event after);

  /// Compressed variants (Device::copy_z1 on the same lanes): charge
  /// `wire_bytes` on the lane plus the modeled on-device decode/encode of
  /// `raw_bytes`; `materialize` performs the functional payload movement
  /// and runs exactly once, after the fault gates pass.
  Event stage_in_z1(std::size_t wire_bytes, std::size_t raw_bytes,
                    const std::function<void()>& materialize);
  Event stage_out_z1(std::size_t wire_bytes, std::size_t raw_bytes,
                     const std::function<void()>& materialize, Event after);

  /// Makes the compute stream wait for `e` (no-op once `e` has passed).
  void consume(const Event& e);

  /// Event marking everything issued on the compute stream so far.
  Event computed();

  /// Joins the host clock to all three lanes (end of a pipelined phase).
  void drain();

 private:
  Device* dev_;
  bool overlap_;
  StreamId compute_;
  StreamId in_;
  StreamId out_;
};

/// Ping-pong device-buffer pair (double-buffered when the pipeline overlaps,
/// single-buffered otherwise) with pinned-host staging of the same shape.
/// Slot lifecycle: acquire(writer) → fill → set_ready → consume/compute →
/// release(consumer event) → next acquire of the slot waits on that event.
template <typename T>
class PingPong {
 public:
  /// `slots` = 0 picks the pipeline default (2 when overlapped, else 1).
  PingPong(StreamPipeline& pipe, std::size_t elems, const char* what,
           int slots = 0)
      : pipe_(&pipe), elems_(elems) {
    const int n = slots > 0 ? slots : (pipe.overlapped() ? 2 : 1);
    dev_.reserve(static_cast<std::size_t>(n));
    host_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      dev_.push_back(pipe.device().alloc<T>(elems, what));
      host_.emplace_back(elems);
    }
    ready_.assign(static_cast<std::size_t>(n), Event{});
    free_.assign(static_cast<std::size_t>(n), Event{});
    pipe.device().note_pinned_alloc(static_cast<std::size_t>(n) * elems *
                                    sizeof(T));
  }
  ~PingPong() {
    if (pipe_ != nullptr) {
      pipe_->device().note_pinned_release(host_.size() * elems_ * sizeof(T));
    }
  }
  PingPong(const PingPong&) = delete;
  PingPong& operator=(const PingPong&) = delete;

  int slots() const { return static_cast<int>(dev_.size()); }
  std::size_t elems() const { return elems_; }

  /// Rotates to the next slot; `writer` (the stream about to refill it)
  /// waits until the slot's previous consumer released it.
  int acquire(StreamId writer) {
    const int s = next_;
    next_ = (next_ + 1) % slots();
    pipe_->device().wait_event(writer, free_[static_cast<std::size_t>(s)]);
    return s;
  }

  T* device_ptr(int slot) { return dev_[static_cast<std::size_t>(slot)].data(); }
  T* host_ptr(int slot) { return host_[static_cast<std::size_t>(slot)].data(); }

  /// Publishes the event after which the slot's device contents are valid.
  void set_ready(int slot, Event e) { ready_[static_cast<std::size_t>(slot)] = e; }
  Event ready(int slot) const { return ready_[static_cast<std::size_t>(slot)]; }

  /// Marks `slot` reusable once `e` (its last consumer) has fired.
  void release(int slot, Event e) { free_[static_cast<std::size_t>(slot)] = e; }

 private:
  StreamPipeline* pipe_;
  std::size_t elems_;
  std::vector<DeviceBuffer<T>> dev_;
  std::vector<std::vector<T>> host_;  // pinned staging (accounted)
  std::vector<Event> ready_;
  std::vector<Event> free_;
  int next_ = 0;
};

}  // namespace gapsp::sim
