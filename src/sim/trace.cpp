#include "sim/trace.h"

#include <algorithm>
#include <ostream>
#include <utility>
#include <vector>

namespace gapsp::sim {
namespace {

const char* kind_name(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kKernel:
      return "kernel";
    case TraceEvent::Kind::kH2D:
      return "h2d";
    case TraceEvent::Kind::kD2H:
      return "d2h";
    case TraceEvent::Kind::kDecode:
      return "decode";
    case TraceEvent::Kind::kFault:
      return "fault";
  }
  return "?";
}

/// Escapes the few characters kernel names could contain.
std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

double TraceRecorder::total(TraceEvent::Kind kind) const {
  double sum = 0.0;
  for (const auto& e : events_) {
    if (e.kind == kind) sum += e.duration_s();
  }
  return sum;
}

OverlapStats TraceRecorder::overlap_stats() const {
  OverlapStats stats;
  std::vector<std::pair<double, double>> kernels;
  int max_stream = -1;
  for (const auto& e : events_) {
    max_stream = std::max(max_stream, e.stream);
    // Decode spans are device-busy compute: they hide transfers on other
    // lanes exactly like kernels do.
    if (e.kind == TraceEvent::Kind::kKernel ||
        e.kind == TraceEvent::Kind::kDecode) {
      kernels.emplace_back(e.start_s, e.end_s);
    }
  }
  stats.stream_busy_s.assign(static_cast<std::size_t>(max_stream + 1), 0.0);
  for (const auto& e : events_) {
    stats.stream_busy_s[static_cast<std::size_t>(e.stream)] += e.duration_s();
  }
  std::sort(kernels.begin(), kernels.end());
  std::vector<std::pair<double, double>> merged;
  for (const auto& k : kernels) {
    if (!merged.empty() && k.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, k.second);
    } else {
      merged.push_back(k);
    }
  }
  double transfer_total = 0.0;
  for (const auto& e : events_) {
    // Only transfers participate in the hidden/exposed split; fault/backoff
    // markers are idle time, not link occupancy.
    if (e.kind != TraceEvent::Kind::kH2D && e.kind != TraceEvent::Kind::kD2H) {
      continue;
    }
    transfer_total += e.duration_s();
    for (const auto& k : merged) {
      if (k.first >= e.end_s) break;
      stats.hidden_transfer_s +=
          std::max(0.0, std::min(e.end_s, k.second) -
                            std::max(e.start_s, k.first));
    }
  }
  stats.exposed_transfer_s =
      std::max(0.0, transfer_total - stats.hidden_transfer_s);
  return stats;
}

void TraceRecorder::write_chrome_trace(std::ostream& os) const {
  const OverlapStats stats = overlap_stats();
  os << "{\"traceEvents\":[";
  bool first = true;
  // Name each stream lane with its busy occupancy so the overlap shows up
  // directly in the chrome://tracing sidebar.
  for (std::size_t s = 0; s < stats.stream_busy_s.size(); ++s) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << s
       << ",\"args\":{\"name\":\"stream " << s << " (busy "
       << stats.stream_busy_s[s] * 1e3 << " ms)\"}}";
  }
  if (!events_.empty()) {
    os << ",\n{\"name\":\"overlap summary\",\"ph\":\"i\",\"pid\":0,\"tid\":0,"
       << "\"ts\":0,\"s\":\"g\",\"args\":{\"hidden_transfer_ms\":"
       << stats.hidden_transfer_s * 1e3 << ",\"exposed_transfer_ms\":"
       << stats.exposed_transfer_s * 1e3 << ",\"hidden_fraction\":"
       << stats.hidden_fraction() << "}}";
  }
  for (const auto& e : events_) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
       << kind_name(e.kind) << "\",\"ph\":\"X\",\"pid\":0,\"tid\":"
       << e.stream << ",\"ts\":" << e.start_s * 1e6
       << ",\"dur\":" << e.duration_s() * 1e6 << ",\"args\":{\"ops\":"
       << e.ops << ",\"bytes\":" << e.bytes << ",\"children\":"
       << e.child_kernels << "}}";
  }
  os << "\n]}\n";
}

}  // namespace gapsp::sim
