#include "sim/trace.h"

#include <ostream>

namespace gapsp::sim {
namespace {

const char* kind_name(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kKernel:
      return "kernel";
    case TraceEvent::Kind::kH2D:
      return "h2d";
    case TraceEvent::Kind::kD2H:
      return "d2h";
  }
  return "?";
}

/// Escapes the few characters kernel names could contain.
std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

double TraceRecorder::total(TraceEvent::Kind kind) const {
  double sum = 0.0;
  for (const auto& e : events_) {
    if (e.kind == kind) sum += e.duration_s();
  }
  return sum;
}

void TraceRecorder::write_chrome_trace(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : events_) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
       << kind_name(e.kind) << "\",\"ph\":\"X\",\"pid\":0,\"tid\":"
       << e.stream << ",\"ts\":" << e.start_s * 1e6
       << ",\"dur\":" << e.duration_s() * 1e6 << ",\"args\":{\"ops\":"
       << e.ops << ",\"bytes\":" << e.bytes << ",\"children\":"
       << e.child_kernels << "}}";
  }
  os << "\n]}\n";
}

}  // namespace gapsp::sim
