#include "sim/device.h"

#include <algorithm>

#include "util/thread_pool.h"

namespace gapsp::sim {

void Device::fault_gate(FaultOp op, StreamId s, const char* what) {
  if (injector_ == nullptr) return;
  for (int attempt = 0;; ++attempt) {
    try {
      injector_->on_op(op, std::max(host_time_, stream_ready_[s]), what);
      return;
    } catch (const FaultError& e) {
      ++metrics_.faults_injected;
      const bool retryable = e.transient() && attempt < retry_.max_retries;
      // Failure is detected at issue time; a retried attempt charges the
      // backoff wait to the issuing stream's clock (idle, not busy — it can
      // hide nothing), so retries lengthen the simulated makespan honestly.
      double backoff = 0.0;
      if (retryable) {
        backoff = retry_.backoff_s;
        for (int i = 0; i < attempt; ++i) backoff *= retry_.backoff_multiplier;
      }
      const double start = std::max(stream_ready_[s], host_time_);
      if (trace_ != nullptr) {
        TraceEvent ev;
        ev.name = std::string("fault:") + fault_op_name(e.op()) +
                  (retryable ? " (retry)" : " (fatal)");
        ev.kind = TraceEvent::Kind::kFault;
        ev.stream = s;
        ev.start_s = start;
        ev.end_s = start + backoff;
        trace_->record(std::move(ev));
      }
      if (!retryable) throw;
      stream_ready_[s] = start + backoff;
      metrics_.retry_backoff_seconds += backoff;
      if (op == FaultOp::kKernel) {
        ++metrics_.kernel_retries;
      } else if (op == FaultOp::kDecode) {
        ++metrics_.decode_retries;
      } else {
        ++metrics_.transfer_retries;
      }
    }
  }
}

void LaunchCtx::child_launch(const KernelProfile& profile) {
  child_seconds_ += dev_.spec().child_launch_s + dev_.kernel_time(profile);
  ++children_;
}

StreamId Device::create_stream() {
  // New streams become usable from "now" on the host timeline.
  stream_ready_.push_back(host_time_);
  stream_busy_.push_back(0.0);
  return static_cast<StreamId>(stream_ready_.size() - 1);
}

Event Device::record_event(StreamId s) {
  GAPSP_CHECK(s >= 0 && s < static_cast<StreamId>(stream_ready_.size()),
              "bad stream id");
  return Event{stream_ready_[s]};
}

void Device::wait_event(StreamId s, const Event& e) {
  GAPSP_CHECK(s >= 0 && s < static_cast<StreamId>(stream_ready_.size()),
              "bad stream id");
  stream_ready_[s] = std::max(stream_ready_[s], e.time);
}

void Device::synchronize() {
  for (double t : stream_ready_) host_time_ = std::max(host_time_, t);
  metrics_.sim_seconds = host_time_;
}

void Device::advance_to(double t) {
  host_time_ = std::max(host_time_, t);
  for (double& ready : stream_ready_) ready = std::max(ready, t);
  metrics_.sim_seconds = std::max(metrics_.sim_seconds, host_time_);
}

void Device::stream_synchronize(StreamId s) {
  GAPSP_CHECK(s >= 0 && s < static_cast<StreamId>(stream_ready_.size()),
              "bad stream id");
  host_time_ = std::max(host_time_, stream_ready_[s]);
  metrics_.sim_seconds = std::max(metrics_.sim_seconds, host_time_);
}

double Device::kernel_time(const KernelProfile& p) const {
  // Occupancy: a grid with fewer blocks than the device can keep resident
  // only reaches a proportional fraction of peak throughput.
  const double occupancy =
      std::clamp(static_cast<double>(std::max(1, p.blocks)) /
                     static_cast<double>(std::max(1, spec_.max_active_blocks)),
                 0.0, 1.0);
  const double eff = std::clamp(p.efficiency, 1e-3, 1.0) * occupancy;
  const double compute = p.ops / (spec_.compute_ops_per_s * eff);
  const double memory = p.bytes / (spec_.mem_bandwidth * eff);
  return std::max(compute, memory);
}

double Device::transfer_time(std::size_t bytes, bool pinned) const {
  const double bw =
      spec_.link_bandwidth * (pinned ? 1.0 : spec_.pageable_penalty);
  return spec_.transfer_latency_s + static_cast<double>(bytes) / bw;
}

void Device::do_copy(StreamId s, void* dst, const void* src, std::size_t bytes,
                     bool async, bool pinned, bool to_device) {
  GAPSP_CHECK(s >= 0 && s < static_cast<StreamId>(stream_ready_.size()),
              "bad stream id");
  fault_gate(to_device ? FaultOp::kH2D : FaultOp::kD2H, s,
             to_device ? "memcpy_h2d" : "memcpy_d2h");
  if (bytes > 0) std::memcpy(dst, src, bytes);
  const double dur = transfer_time(bytes, pinned);
  const double start = std::max(stream_ready_[s], host_time_);
  stream_ready_[s] = start + dur;
  stream_busy_[s] += dur;
  intervals_.push_back({start, start + dur, /*transfer=*/true});
  metrics_.transfer_seconds += dur;
  if (trace_ != nullptr) {
    TraceEvent e;
    e.name = to_device ? "h2d" : "d2h";
    e.kind = to_device ? TraceEvent::Kind::kH2D : TraceEvent::Kind::kD2H;
    e.stream = s;
    e.start_s = start;
    e.end_s = start + dur;
    e.bytes = static_cast<double>(bytes);
    trace_->record(std::move(e));
  }
  if (to_device) {
    metrics_.bytes_h2d += bytes;
    ++metrics_.transfers_h2d;
  } else {
    metrics_.bytes_d2h += bytes;
    ++metrics_.transfers_d2h;
  }
  if (!async) {
    host_time_ = stream_ready_[s];
    metrics_.sim_seconds = std::max(metrics_.sim_seconds, host_time_);
  }
}

void Device::memcpy_h2d(StreamId s, void* dst, const void* src,
                        std::size_t bytes, bool async, bool pinned) {
  do_copy(s, dst, src, bytes, async, pinned, /*to_device=*/true);
}

void Device::memcpy_d2h(StreamId s, void* dst, const void* src,
                        std::size_t bytes, bool async, bool pinned) {
  do_copy(s, dst, src, bytes, async, pinned, /*to_device=*/false);
}

double Device::decode_time(std::size_t raw_bytes) const {
  GAPSP_CHECK(spec_.decode_gbps > 0.0,
              "compressed transfer on a device without a decode rate");
  return static_cast<double>(raw_bytes) / (spec_.decode_gbps * 1e9);
}

void Device::note_z1_fallback(bool to_device, std::size_t bytes) {
  if (to_device) {
    metrics_.bytes_h2d_raw += bytes;
    metrics_.bytes_h2d_wire += bytes;
  } else {
    metrics_.bytes_d2h_raw += bytes;
    metrics_.bytes_d2h_wire += bytes;
  }
}

void Device::copy_z1(StreamId s, bool to_device, std::size_t wire_bytes,
                     std::size_t raw_bytes,
                     const std::function<void()>& materialize, bool async) {
  GAPSP_CHECK(s >= 0 && s < static_cast<StreamId>(stream_ready_.size()),
              "bad stream id");
  // Both gates pass before any payload moves — same discipline as launch():
  // a fault on the wire or mid-decode retries the whole tile, and partial
  // decode output is never published.
  fault_gate(to_device ? FaultOp::kH2D : FaultOp::kD2H, s,
             to_device ? "z1 wire h2d" : "z1 wire d2h");
  fault_gate(FaultOp::kDecode, s, to_device ? "z1 decode" : "z1 encode");
  if (materialize) materialize();
  const double wire_s = transfer_time(wire_bytes, /*pinned=*/true);
  const double dec_s = decode_time(raw_bytes);
  const double start = std::max(stream_ready_[s], host_time_);
  // H2D decodes after the wire arrives; D2H encodes before the wire leaves.
  const double mid = start + (to_device ? wire_s : dec_s);
  const double end = mid + (to_device ? dec_s : wire_s);
  const double wire_start = to_device ? start : mid;
  const double dec_start = to_device ? mid : start;
  stream_ready_[s] = end;
  stream_busy_[s] += end - start;
  intervals_.push_back({wire_start, wire_start + wire_s, /*transfer=*/true});
  intervals_.push_back({dec_start, dec_start + dec_s, /*transfer=*/false});
  metrics_.transfer_seconds += wire_s;
  metrics_.decode_seconds += dec_s;
  ++metrics_.decodes;
  if (to_device) {
    metrics_.bytes_h2d += raw_bytes;  // logical bytes, mode-invariant
    ++metrics_.transfers_h2d;
    metrics_.bytes_h2d_raw += raw_bytes;
    metrics_.bytes_h2d_wire += wire_bytes;
  } else {
    metrics_.bytes_d2h += raw_bytes;
    ++metrics_.transfers_d2h;
    metrics_.bytes_d2h_raw += raw_bytes;
    metrics_.bytes_d2h_wire += wire_bytes;
  }
  if (trace_ != nullptr) {
    TraceEvent wire_ev;
    wire_ev.name = to_device ? "h2d.z1" : "d2h.z1";
    wire_ev.kind = to_device ? TraceEvent::Kind::kH2D : TraceEvent::Kind::kD2H;
    wire_ev.stream = s;
    wire_ev.start_s = wire_start;
    wire_ev.end_s = wire_start + wire_s;
    wire_ev.bytes = static_cast<double>(wire_bytes);
    trace_->record(std::move(wire_ev));
    TraceEvent dec_ev;  // decode-busy span: device compute on the timeline
    dec_ev.name = to_device ? "z1_decode" : "z1_encode";
    dec_ev.kind = TraceEvent::Kind::kDecode;
    dec_ev.stream = s;
    dec_ev.start_s = dec_start;
    dec_ev.end_s = dec_start + dec_s;
    dec_ev.bytes = static_cast<double>(raw_bytes);
    trace_->record(std::move(dec_ev));
  }
  if (!async) {
    host_time_ = stream_ready_[s];
    metrics_.sim_seconds = std::max(metrics_.sim_seconds, host_time_);
  }
}

double Device::launch(StreamId s, const std::string& name,
                      const std::function<KernelProfile(LaunchCtx&)>& body) {
  GAPSP_CHECK(s >= 0 && s < static_cast<StreamId>(stream_ready_.size()),
              "bad stream id: " + name);
  // The gate runs before the body: a failed launch has no side effects, so
  // a retry simply re-executes the (idempotent, min-plus monotone) kernel.
  fault_gate(FaultOp::kKernel, s, name.c_str());
  LaunchCtx ctx(*this);
  const KernelProfile profile = body(ctx);  // real work happens here
  const double dur =
      spec_.kernel_launch_s + kernel_time(profile) + ctx.child_seconds();
  const double start = std::max(stream_ready_[s], host_time_);
  stream_ready_[s] = start + dur;
  stream_busy_[s] += dur;
  intervals_.push_back({start, start + dur, /*transfer=*/false});
  metrics_.kernel_seconds += dur;
  metrics_.total_ops += profile.ops;
  ++metrics_.kernels;
  metrics_.child_kernels += ctx.children_;
  if (trace_ != nullptr) {
    TraceEvent e;
    e.name = name;
    e.kind = TraceEvent::Kind::kKernel;
    e.stream = s;
    e.start_s = start;
    e.end_s = start + dur;
    e.ops = profile.ops;
    e.bytes = profile.bytes;
    e.child_kernels = static_cast<int>(ctx.children_);
    trace_->record(std::move(e));
  }
  return dur;
}

double Device::launch_grid(StreamId s, const std::string& name, int grid,
                           const std::function<void(int)>& block_body,
                           const std::function<KernelProfile()>& profile) {
  // Rides the plain launch path so fault gating, retry replay, tracing, and
  // the timeline charge are shared: a grid launch is indistinguishable from
  // a serial launch on the simulated timeline.
  return launch(s, name, [&](LaunchCtx&) {
    if (grid <= 1 || kernel_threads_ == 1) {
      for (int b = 0; b < grid; ++b) block_body(b);
    } else {
      ThreadPool::global().parallel_for(
          static_cast<std::size_t>(grid),
          [&](std::size_t b) { block_body(static_cast<int>(b)); },
          /*grain=*/1,
          /*max_threads=*/kernel_threads_ <= 0
              ? 0
              : static_cast<std::size_t>(kernel_threads_));
    }
    return profile();
  });
}

void Device::reserve_bytes(std::size_t bytes, const char* what) {
  fault_gate(FaultOp::kAlloc, kDefaultStream, what);
  if (used_bytes_ + bytes > spec_.memory_bytes) {
    throw OomError(std::string("device out of memory allocating ") + what +
                   ": " + std::to_string(bytes) + " bytes requested, " +
                   std::to_string(spec_.memory_bytes - used_bytes_) +
                   " available on " + spec_.name);
  }
  used_bytes_ += bytes;
  peak_bytes_ = std::max(peak_bytes_, used_bytes_);
}

void Device::release_bytes(std::size_t bytes) {
  GAPSP_CHECK(bytes <= used_bytes_, "device allocator underflow");
  used_bytes_ -= bytes;
}

void Device::note_pinned_alloc(std::size_t bytes) {
  pinned_bytes_ += bytes;
  pinned_peak_bytes_ = std::max(pinned_peak_bytes_, pinned_bytes_);
}

void Device::note_pinned_release(std::size_t bytes) {
  GAPSP_CHECK(bytes <= pinned_bytes_, "pinned staging accounting underflow");
  pinned_bytes_ -= bytes;
}

DeviceMetrics Device::metrics() const {
  DeviceMetrics m = metrics_;  // includes the fault/retry counters
  m.peak_bytes = peak_bytes_;
  m.pinned_peak_bytes = pinned_peak_bytes_;
  m.stream_busy_seconds = stream_busy_;
  double makespan = host_time_;
  for (double t : stream_ready_) makespan = std::max(makespan, t);
  m.sim_seconds = makespan;

  // Hidden vs exposed transfer time: a transfer is hidden to the extent its
  // interval intersects kernel execution (necessarily on another stream —
  // one stream never runs two operations at once). Merge the kernel
  // intervals, then measure each transfer's intersection with the union.
  std::vector<Interval> kernels;
  for (const Interval& iv : intervals_) {
    if (!iv.transfer) kernels.push_back(iv);
  }
  std::sort(kernels.begin(), kernels.end(),
            [](const Interval& a, const Interval& b) { return a.start < b.start; });
  std::vector<Interval> merged;
  for (const Interval& iv : kernels) {
    if (!merged.empty() && iv.start <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, iv.end);
    } else {
      merged.push_back(iv);
    }
  }
  double hidden = 0.0;
  for (const Interval& iv : intervals_) {
    if (!iv.transfer) continue;
    // Binary search to the first merged kernel interval that could overlap.
    auto it = std::upper_bound(
        merged.begin(), merged.end(), iv.start,
        [](double t, const Interval& k) { return t < k.end; });
    for (; it != merged.end() && it->start < iv.end; ++it) {
      hidden += std::max(0.0, std::min(iv.end, it->end) -
                                  std::max(iv.start, it->start));
    }
  }
  m.hidden_transfer_seconds = hidden;
  m.exposed_transfer_seconds = std::max(0.0, m.transfer_seconds - hidden);
  return m;
}

}  // namespace gapsp::sim
