// Timeline tracing for the device simulator. When a TraceRecorder is
// attached to a Device, every kernel launch and transfer is recorded with
// its simulated start/end time, and the trace can be exported in the
// chrome://tracing JSON format — one lane per stream — to inspect exactly
// how the batching/overlap optimizations reshape the timeline.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gapsp::sim {

struct TraceEvent {
  /// kDecode is the modeled on-device z1 decode/encode of the compressed
  /// transfer path: device-busy like a kernel (it joins the kernel union of
  /// the hidden/exposed split) but accounted separately so kernel and decode
  /// busy totals stay independently checkable against DeviceMetrics.
  /// kFault marks an injected fault on a stream's lane; a retried fault's
  /// duration is the backoff wait, a fatal one is an instant marker.
  enum class Kind { kKernel, kH2D, kD2H, kDecode, kFault };

  std::string name;
  Kind kind = Kind::kKernel;
  int stream = 0;
  double start_s = 0.0;
  double end_s = 0.0;
  double ops = 0.0;
  double bytes = 0.0;
  int child_kernels = 0;

  double duration_s() const { return end_s - start_s; }
};

/// Per-stream overlap summary computed from a recorded timeline: how much
/// transfer time ran under concurrent kernel execution (hidden) vs extended
/// the critical path (exposed), and each stream's busy occupancy.
struct OverlapStats {
  double hidden_transfer_s = 0.0;
  double exposed_transfer_s = 0.0;
  std::vector<double> stream_busy_s;  ///< indexed by stream id

  /// Fraction of transfer time hidden under compute (0 when no transfers).
  double hidden_fraction() const {
    const double total = hidden_transfer_s + exposed_transfer_s;
    return total > 0.0 ? hidden_transfer_s / total : 0.0;
  }
};

class TraceRecorder {
 public:
  void record(TraceEvent event) { events_.push_back(std::move(event)); }
  void clear() { events_.clear(); }

  const std::vector<TraceEvent>& events() const { return events_; }

  /// Total busy time per kind (seconds of simulated occupancy).
  double total(TraceEvent::Kind kind) const;

  /// Overlap efficiency of the recorded timeline (see OverlapStats).
  OverlapStats overlap_stats() const;

  /// chrome://tracing "traceEvents" JSON; streams map to tids, each named
  /// with its busy time, plus an instant event carrying the overlap summary.
  void write_chrome_trace(std::ostream& os) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace gapsp::sim
