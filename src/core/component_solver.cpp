#include "core/component_solver.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "graph/graph_stats.h"
#include "util/timer.h"

namespace gapsp::core {
namespace {

/// A DistStore view that maps a group's local ids onto a row/column window
/// of the parent store.
class WindowStore final : public DistStore {
 public:
  WindowStore(DistStore& parent, vidx_t offset, vidx_t n)
      : DistStore(n), parent_(parent), offset_(offset) {}

  void write_block(vidx_t row0, vidx_t col0, vidx_t rows, vidx_t cols,
                   const dist_t* src, std::size_t src_ld) override {
    check_block(row0, col0, rows, cols);
    parent_.write_block(offset_ + row0, offset_ + col0, rows, cols, src,
                        src_ld);
  }

  void read_block(vidx_t row0, vidx_t col0, vidx_t rows, vidx_t cols,
                  dist_t* dst, std::size_t dst_ld) const override {
    check_block(row0, col0, rows, cols);
    parent_.read_block(offset_ + row0, offset_ + col0, rows, cols, dst,
                       dst_ld);
  }

 private:
  DistStore& parent_;
  vidx_t offset_;
};

}  // namespace

ComponentResult solve_apsp_per_component(const graph::CsrGraph& g,
                                         const ApspOptions& opts,
                                         DistStore& store,
                                         const SelectorOptions& sel,
                                         const ComponentSolverOptions& cs) {
  Timer wall;
  const vidx_t n = g.num_vertices();
  GAPSP_CHECK(store.n() == n, "store size mismatch");
  const auto label = graph::component_labels(g);
  vidx_t num_comp = 0;
  for (vidx_t l : label) num_comp = std::max(num_comp, l + 1);

  ComponentResult out;
  out.num_components = static_cast<int>(num_comp);

  std::vector<vidx_t> comp_size(static_cast<std::size_t>(num_comp), 0);
  for (vidx_t l : label) ++comp_size[l];
  for (vidx_t s : comp_size) {
    out.largest_component = std::max(out.largest_component, s);
  }

  // ---- form solve groups: big components alone, small ones packed ----
  std::vector<vidx_t> order(static_cast<std::size_t>(num_comp));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](vidx_t a, vidx_t b) { return comp_size[a] > comp_size[b]; });
  std::vector<std::vector<vidx_t>> groups;  // component ids per group
  for (vidx_t c : order) {
    bool packed = false;
    // Small components append to the current pack (descending order means
    // packs only ever contain small components).
    if (comp_size[c] < cs.small_threshold && !groups.empty() &&
        comp_size[groups.back().front()] < cs.small_threshold) {
      auto& last = groups.back();
      vidx_t last_size = 0;
      for (vidx_t lc : last) last_size += comp_size[lc];
      if (last_size + comp_size[c] <= cs.group_target) {
        last.push_back(c);
        packed = true;
      }
    }
    if (!packed) groups.push_back({c});
  }
  out.num_groups = static_cast<int>(groups.size());

  // ---- group-contiguous renumbering ----
  out.result.perm.assign(static_cast<std::size_t>(n), -1);
  std::vector<std::vector<vidx_t>> members(static_cast<std::size_t>(num_comp));
  for (vidx_t v = 0; v < n; ++v) members[label[v]].push_back(v);
  std::vector<vidx_t> group_offset;
  std::vector<vidx_t> group_size;
  {
    vidx_t at = 0;
    for (const auto& grp : groups) {
      group_offset.push_back(at);
      vidx_t sz = 0;
      for (vidx_t c : grp) {
        for (vidx_t v : members[c]) out.result.perm[v] = at + sz++;
      }
      group_size.push_back(sz);
      at += sz;
    }
    GAPSP_CHECK(at == n, "group renumbering did not cover all vertices");
  }

  // ---- solve each group through its store window ----
  out.result.used = opts.algorithm;
  ApspMetrics& agg = out.result.metrics;
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    const vidx_t ng = group_size[gi];
    const vidx_t off = group_offset[gi];
    WindowStore window(store, off, ng);
    if (ng == 1) {
      const dist_t zero = 0;
      window.write_block(0, 0, 1, 1, &zero, 1);
      out.per_group.push_back(Algorithm::kAuto);
      continue;
    }
    std::vector<graph::Edge> edges;
    for (vidx_t c : groups[gi]) {
      for (vidx_t v : members[c]) {
        const auto nbr = g.neighbors(v);
        const auto wts = g.weights(v);
        for (std::size_t e = 0; e < nbr.size(); ++e) {
          edges.push_back(graph::Edge{out.result.perm[v] - off,
                                      out.result.perm[nbr[e]] - off, wts[e]});
        }
      }
    }
    const graph::CsrGraph sub =
        graph::CsrGraph::from_edges(ng, std::move(edges), false);
    ApspResult r = solve_apsp(sub, opts, window, nullptr, sel);
    if (!r.perm.empty()) {
      // Compose the group-internal permutation into the global mapping.
      for (vidx_t c : groups[gi]) {
        for (vidx_t v : members[c]) {
          out.result.perm[v] = off + r.perm[out.result.perm[v] - off];
        }
      }
    }
    out.per_group.push_back(r.used);
    if (ng == out.largest_component) out.result.used = r.used;
    agg.sim_seconds += r.metrics.sim_seconds;
    agg.kernel_seconds += r.metrics.kernel_seconds;
    agg.transfer_seconds += r.metrics.transfer_seconds;
    agg.bytes_h2d += r.metrics.bytes_h2d;
    agg.bytes_d2h += r.metrics.bytes_d2h;
    agg.transfers_h2d += r.metrics.transfers_h2d;
    agg.transfers_d2h += r.metrics.transfers_d2h;
    agg.kernels += r.metrics.kernels;
    agg.child_kernels += r.metrics.child_kernels;
    agg.total_ops += r.metrics.total_ops;
    agg.device_peak_bytes =
        std::max(agg.device_peak_bytes, r.metrics.device_peak_bytes);
    if (!r.metrics.kernel_variant.empty()) {
      agg.kernel_variant = r.metrics.kernel_variant;
    }
  }
  agg.wall_seconds = wall.seconds();
  return out;
}

}  // namespace gapsp::core
