#include "core/ooc_boundary.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <optional>
#include <vector>

#include "core/checkpoint.h"
#include "core/device_kernels.h"
#include "core/transfer_codec.h"
#include "sim/stream_pipeline.h"
#include "util/timer.h"

namespace gapsp::core {
namespace {

int default_components(vidx_t n) {
  // The paper's experimental setting: k = √n / 4 (Sec. V-F), at least 2.
  return std::max(2, static_cast<int>(std::lround(std::sqrt(
                         static_cast<double>(n)) / 4.0)));
}

/// Fixed (non-staging) device working set of a plan, in bytes. With
/// `overlap` the component block of Step 2 doubles up for its ping-pong.
std::size_t fixed_bytes(const part::BoundaryLayout& layout, bool overlap) {
  const int k = layout.k();
  const std::size_t dmax = layout.max_comp_size();
  const std::size_t nb = layout.num_boundary;
  std::size_t bmax = 0;
  std::size_t b2c_all = 0;
  for (int j = 0; j < k; ++j) {
    bmax = std::max<std::size_t>(bmax, layout.comp_boundary[j]);
    b2c_all += static_cast<std::size_t>(layout.comp_boundary[j]) *
               layout.comp_size(j);
  }
  // component FW tile (ping-pong pair under overlap)
  const std::size_t diag = dmax * dmax * (overlap ? 2 : 1);
  const std::size_t out = dmax * dmax;        // naive-mode output tile
  const std::size_t bound = nb * nb;          // dist3 matrix
  const std::size_t c2b = dmax * bmax;        // per-i upload
  const std::size_t tmp = dmax * nb;          // C2B[i] ⊗ bound(i,:)
  return (diag + out + bound + c2b + b2c_all + tmp) * sizeof(dist_t);
}

/// Global boundary index of a renumbered vertex, or -1 if interior.
vidx_t global_boundary_index(const part::BoundaryLayout& layout, int comp,
                             vidx_t new_id) {
  const vidx_t local = new_id - layout.comp_offset[comp];
  if (local >= layout.comp_boundary[comp]) return -1;
  return layout.boundary_offset[comp] + local;
}

}  // namespace

BoundaryPlan plan_boundary(const graph::CsrGraph& g, const ApspOptions& opts) {
  const vidx_t n = g.num_vertices();
  GAPSP_CHECK(n >= 2, "boundary algorithm needs at least two vertices");
  int k = opts.num_components > 0 ? opts.num_components : default_components(n);
  k = std::min<int>(k, n);
  const std::size_t budget =
      static_cast<std::size_t>(0.95 * static_cast<double>(opts.device.memory_bytes));

  while (k >= 2) {
    BoundaryPlan plan;
    plan.layout =
        part::partition_and_analyze(g, k, opts.seed, opts.partition_method);
    plan.k = k;
    plan.max_comp = plan.layout.max_comp_size();
    plan.nb = plan.layout.num_boundary;
    const std::size_t one_row =
        static_cast<std::size_t>(n) * sizeof(dist_t);
    // Batched mode needs at least one component block-row of staging (twice
    // that when overlapping); require it whenever batching is requested.
    std::size_t staging_min = 0;
    if (opts.batch_transfers) {
      staging_min = static_cast<std::size_t>(plan.max_comp) * one_row *
                    (opts.overlap_transfers ? 2 : 1);
    }
    // Prefer the double-buffered Step-2 component block when overlapping,
    // but degrade to a single buffer at the same k before halving k — the
    // second buffer is an optimization, not a feasibility requirement.
    plan.pipeline_comp = opts.overlap_transfers;
    std::size_t fixed = fixed_bytes(plan.layout, plan.pipeline_comp);
    if (plan.pipeline_comp && fixed + staging_min > budget) {
      plan.pipeline_comp = false;
      fixed = fixed_bytes(plan.layout, false);
    }
    if (fixed + staging_min <= budget) {
      plan.s_dia = static_cast<std::size_t>(plan.max_comp) * plan.max_comp *
                   sizeof(dist_t);
      plan.s_bound =
          static_cast<std::size_t>(plan.nb) * plan.nb * sizeof(dist_t);
      plan.s_rem = budget - fixed;
      const std::size_t buffers = opts.overlap_transfers ? 2 : 1;
      plan.staging_rows = opts.batch_transfers
                              ? static_cast<vidx_t>(plan.s_rem /
                                                    (buffers * one_row))
                              : 0;
      return plan;
    }
    // The working set does not fit: fewer, larger components shrink the
    // boundary matrix (the dominant term on large-separator graphs) — the
    // "maximal number of components allowed is small" effect of Sec. I.
    k /= 2;
  }
  throw Error(
      "boundary algorithm infeasible on " + opts.device.name +
      ": boundary matrix does not fit device memory for any k >= 2");
}

ApspResult ooc_boundary(const graph::CsrGraph& g, const ApspOptions& opts,
                        const BoundaryPlan& plan, DistStore& store) {
  Timer wall;
  const vidx_t n = g.num_vertices();
  GAPSP_CHECK(store.n() == n, "store size mismatch");
  const part::BoundaryLayout& layout = plan.layout;
  const int k = plan.k;
  const vidx_t nb = plan.nb;
  const vidx_t dmax = plan.max_comp;

  // Work in the boundary-first renumbering (Fig. 1a).
  const graph::CsrGraph gp = g.relabel(layout.perm);
  std::vector<int> comp_of(static_cast<std::size_t>(n));
  for (int c = 0; c < k; ++c) {
    for (vidx_t v = layout.comp_offset[c]; v < layout.comp_offset[c + 1]; ++v) {
      comp_of[v] = c;
    }
  }

  sim::Device dev(opts.device);
  dev.set_trace(opts.trace);
  configure_kernels(dev, opts);
  FaultScope faults(dev, opts);
  sim::StreamPipeline pipe(dev, opts.overlap_transfers);
  TransferCodec codec(dev, opts.transfer_compression);
  const sim::StreamId compute = pipe.compute_stream();

  // Step-level checkpointing. Unlike FW/Johnson the store is not the whole
  // state here: steps 2 and 3 produce host-side intermediates (dist2, dist3)
  // that step 4 consumes, so the sidecar carries them as its payload.
  const bool use_ck = !opts.checkpoint_path.empty();
  std::uint64_t fp = 0;
  int resume_step = 0;  // last completed step restored from the sidecar
  long long ck_written = 0;
  Checkpoint ck_in;
  std::size_t dist2_elems = 0;
  for (int i = 0; i < k; ++i) {
    dist2_elems += static_cast<std::size_t>(layout.comp_size(i)) *
                   layout.comp_size(i);
  }
  const std::size_t bound_elems = static_cast<std::size_t>(nb) * nb;
  if (use_ck) {
    fp = graph_fingerprint(g);
    const std::int64_t shape[5] = {n, k, nb, dmax,
                                   static_cast<std::int64_t>(opts.seed)};
    fp = fnv1a(shape, sizeof(shape), fp);
    if (opts.resume && read_checkpoint(opts.checkpoint_path, &ck_in) &&
        ck_in.algorithm == static_cast<std::uint32_t>(Algorithm::kBoundary) &&
        ck_in.fingerprint == fp && ck_in.n == n && ck_in.aux0 == k &&
        ck_in.aux1 == nb) {
      const int step = static_cast<int>(
          std::clamp<std::int64_t>(ck_in.progress, 0, 3));
      const std::size_t need =
          (dist2_elems + (step >= 3 ? bound_elems : 0)) * sizeof(dist_t);
      if (step >= 2 && ck_in.payload.size() == need) resume_step = step;
    }
  }

  // ---- device allocations (accounted against capacity) ----
  // Step-2 component block, ping-ponged so the next component's weight
  // matrix prefetches and the previous dist2 drains while the current
  // in-core FW runs. The plan may have degraded to a single buffer when
  // the second block did not fit at the chosen k.
  sim::PingPong<dist_t> comp_pp(pipe, static_cast<std::size_t>(dmax) * dmax,
                                "component block",
                                plan.pipeline_comp ? 2 : 1);
  auto out_buf = dev.alloc<dist_t>(
      static_cast<std::size_t>(dmax) * dmax, "output tile");
  auto bound_buf = dev.alloc<dist_t>(
      static_cast<std::size_t>(nb) * nb, "boundary matrix");
  std::size_t bmax = 0, b2c_elems = 0;
  std::vector<std::size_t> b2c_off(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) {
    bmax = std::max<std::size_t>(bmax, layout.comp_boundary[j]);
    b2c_off[j] = b2c_elems;
    b2c_elems += static_cast<std::size_t>(layout.comp_boundary[j]) *
                 layout.comp_size(j);
  }
  auto c2b_buf =
      dev.alloc<dist_t>(static_cast<std::size_t>(dmax) * bmax, "C2B[i]");
  auto b2c_buf = dev.alloc<dist_t>(std::max<std::size_t>(b2c_elems, 1),
                                   "B2C (all components)");
  auto tmp_buf = dev.alloc<dist_t>(
      static_cast<std::size_t>(dmax) * nb, "tmp1 = C2B ⊗ bound");

  const bool batching = opts.batch_transfers && plan.staging_rows > 0;
  // Ping-pong staging for the finished block-rows (one buffer when not
  // overlapping, matching plan_boundary's budget split).
  std::optional<sim::PingPong<dist_t>> staging;
  if (batching) {
    staging.emplace(pipe, static_cast<std::size_t>(plan.staging_rows) * n,
                    "staging");
  }

  std::vector<std::vector<dist_t>> dist2(static_cast<std::size_t>(k));
  std::vector<dist_t> hbuf(static_cast<std::size_t>(dmax) *
                           std::max<vidx_t>(n, dmax));

  // Serializes the step intermediates into a sidecar payload: every dist2
  // block, then (after step 3) the solved boundary matrix.
  auto save_step = [&](int step, const dist_t* bound) {
    Checkpoint ck;
    ck.algorithm = static_cast<std::uint32_t>(Algorithm::kBoundary);
    ck.fingerprint = fp;
    ck.n = n;
    ck.progress = step;
    ck.aux0 = k;
    ck.aux1 = nb;
    ck.payload.resize((dist2_elems + (bound != nullptr ? bound_elems : 0)) *
                      sizeof(dist_t));
    std::uint8_t* out = ck.payload.data();
    for (int i = 0; i < k; ++i) {
      const std::size_t bytes = dist2[i].size() * sizeof(dist_t);
      std::memcpy(out, dist2[i].data(), bytes);
      out += bytes;
    }
    if (bound != nullptr) {
      std::memcpy(out, bound, bound_elems * sizeof(dist_t));
    }
    write_checkpoint(opts.checkpoint_path, ck);
    ++ck_written;
  };

  // ---- Step 2: per-component APSP (blocked FW on the device) ----
  // Pipelined: component i+1's weight matrix stages in and component i-1's
  // dist2 drains while component i's in-core FW runs on the compute stream.
  if (resume_step >= 2) {
    const std::uint8_t* in = ck_in.payload.data();
    for (int i = 0; i < k; ++i) {
      const std::size_t elems =
          static_cast<std::size_t>(layout.comp_size(i)) * layout.comp_size(i);
      dist2[i].resize(elems);
      std::memcpy(dist2[i].data(), in, elems * sizeof(dist_t));
      in += elems * sizeof(dist_t);
    }
  } else {
    for (int i = 0; i < k; ++i) {
      const vidx_t off = layout.comp_offset[i];
      const vidx_t ni = layout.comp_size(i);
      const std::size_t bytes =
          static_cast<std::size_t>(ni) * ni * sizeof(dist_t);
      const int s = comp_pp.acquire(pipe.in_stream());
      weight_block(gp, off, off, ni, ni, comp_pp.host_ptr(s), ni);
      comp_pp.set_ready(s, codec.stage_in(pipe, comp_pp.device_ptr(s),
                                          comp_pp.host_ptr(s), bytes));
      pipe.consume(comp_pp.ready(s));
      dev_blocked_fw(dev, compute, comp_pp.device_ptr(s), ni, ni, opts.fw_tile);
      const sim::Event drained =
          codec.stage_out(pipe, comp_pp.host_ptr(s), comp_pp.device_ptr(s),
                          bytes, pipe.computed());
      dist2[i].assign(comp_pp.host_ptr(s),
                      comp_pp.host_ptr(s) + static_cast<std::size_t>(ni) * ni);
      comp_pp.release(s, drained);
    }
    if (use_ck) save_step(2, nullptr);
  }

  // ---- Step 3: boundary graph (virtual + cross edges), FW -> dist3 ----
  std::vector<dist_t> hbound(static_cast<std::size_t>(nb) * nb, kInf);
  if (resume_step >= 3) {
    // The payload holds the *solved* boundary matrix; upload it in place of
    // re-running the boundary FW.
    std::memcpy(hbound.data(),
                ck_in.payload.data() + dist2_elems * sizeof(dist_t),
                bound_elems * sizeof(dist_t));
    dev.memcpy_h2d(compute, bound_buf.data(), hbound.data(),
                   hbound.size() * sizeof(dist_t));
  } else {
    for (vidx_t b = 0; b < nb; ++b) {
      hbound[static_cast<std::size_t>(b) * nb + b] = 0;
    }
    for (int i = 0; i < k; ++i) {
      const vidx_t bi = layout.comp_boundary[i];
      const vidx_t ni = layout.comp_size(i);
      const vidx_t go = layout.boundary_offset[i];
      for (vidx_t r = 0; r < bi; ++r) {
        for (vidx_t c = 0; c < bi; ++c) {
          dist_t& cell = hbound[static_cast<std::size_t>(go + r) * nb + go + c];
          cell = std::min(cell, dist2[i][static_cast<std::size_t>(r) * ni + c]);
        }
      }
    }
    for (vidx_t u = 0; u < n; ++u) {
      const int cu = comp_of[u];
      const auto nbr = gp.neighbors(u);
      const auto wts = gp.weights(u);
      for (std::size_t e = 0; e < nbr.size(); ++e) {
        const int cv = comp_of[nbr[e]];
        if (cu == cv) continue;
        const vidx_t gu = global_boundary_index(layout, cu, u);
        const vidx_t gv = global_boundary_index(layout, cv, nbr[e]);
        GAPSP_CHECK(gu >= 0 && gv >= 0,
                    "cross edge between non-boundary nodes");
        dist_t& cell = hbound[static_cast<std::size_t>(gu) * nb + gv];
        cell = std::min(cell, wts[e]);
      }
    }
    dev.memcpy_h2d(compute, bound_buf.data(), hbound.data(),
                   hbound.size() * sizeof(dist_t));
    dev_blocked_fw(dev, compute, bound_buf.data(), nb, nb, opts.fw_tile);
    // The functional FW result is already in bound_buf host storage; the
    // sidecar serialization reads it directly (host-side bookkeeping, no
    // extra simulated transfer).
    if (use_ck) save_step(3, bound_buf.data());
  }

  // ---- Step 4 prep: upload B2C of every component (first b_j rows of
  // dist2[j], contiguous because boundary vertices come first) ----
  for (int j = 0; j < k; ++j) {
    const vidx_t bj = layout.comp_boundary[j];
    const vidx_t nj = layout.comp_size(j);
    if (bj == 0) continue;
    dev.memcpy_h2d(compute, b2c_buf.data() + b2c_off[j], dist2[j].data(),
                   static_cast<std::size_t>(bj) * nj * sizeof(dist_t));
  }

  // ---- Step 4: A(i,j) = min(direct, C2B[i] ⊗ bound(i,j) ⊗ B2C[j]) ----
  // Batched mode: finished block-rows accumulate in a staging slot that is
  // flushed with one large transfer on the D2H lane while compute fills the
  // other slot.
  int active = -1;               // staging slot being filled
  vidx_t staged_rows = 0;        // rows currently in `active`
  vidx_t staged_row0 = 0;        // matrix row of the first staged row

  auto flush_staging = [&]() {
    if (staged_rows == 0) return;
    const std::size_t bytes = static_cast<std::size_t>(staged_rows) * n *
                              sizeof(dist_t);
    // The D2H lane waits for the kernels that filled this slot; the slot's
    // next acquire (on compute) waits until the drain finished.
    const sim::Event drained =
        codec.stage_out(pipe, staging->host_ptr(active),
                        staging->device_ptr(active), bytes, pipe.computed());
    store.write_block(staged_row0, 0, staged_rows, n,
                      staging->host_ptr(active), static_cast<std::size_t>(n));
    staging->release(active, drained);
    active = -1;
    staged_rows = 0;
  };

  for (int i = 0; i < k; ++i) {
    const vidx_t off = layout.comp_offset[i];
    const vidx_t ni = layout.comp_size(i);
    const vidx_t bi = layout.comp_boundary[i];

    // Upload C2B[i]: columns 0..b_i of dist2[i], packed on the host.
    if (bi > 0) {
      for (vidx_t r = 0; r < ni; ++r) {
        std::copy_n(dist2[i].data() + static_cast<std::size_t>(r) * ni, bi,
                    hbuf.data() + static_cast<std::size_t>(r) * bi);
      }
      dev.memcpy_h2d(compute, c2b_buf.data(), hbuf.data(),
                     static_cast<std::size_t>(ni) * bi * sizeof(dist_t));
      // tmp = C2B[i] ⊗ bound(i, :)  (b_i × NB view of dist3), one launch.
      dev.launch(compute, "fill_tmp", [&](sim::LaunchCtx&) {
        std::fill_n(tmp_buf.data(), static_cast<std::size_t>(ni) * nb, kInf);
        sim::KernelProfile p;
        p.bytes = static_cast<double>(ni) * nb * sizeof(dist_t);
        p.ops = static_cast<double>(ni) * nb;
        p.blocks = std::max(1, static_cast<int>(ni * nb / 4096));
        return p;
      });
      dev_minplus(dev, compute, tmp_buf.data(), nb, c2b_buf.data(), bi,
                  bound_buf.data() + static_cast<std::size_t>(
                                         layout.boundary_offset[i]) * nb,
                  nb, ni, bi, nb, opts.fw_tile);
    }

    if (batching) {
      if (staged_rows + ni > plan.staging_rows) flush_staging();
      GAPSP_CHECK(ni <= plan.staging_rows, "staging too small for component");
      if (staged_rows == 0) {
        staged_row0 = off;
        active = staging->acquire(compute);
      }
      dist_t* row_base = staging->device_ptr(active) +
                         static_cast<std::size_t>(staged_rows) * n;
      // Initialize the block-row: kInf everywhere, dist2 on the diagonal.
      dev.launch(compute, "init_block_row", [&](sim::LaunchCtx&) {
        std::fill_n(row_base, static_cast<std::size_t>(ni) * n, kInf);
        sim::KernelProfile p;
        p.bytes = static_cast<double>(ni) * n * sizeof(dist_t);
        p.ops = static_cast<double>(ni) * n;
        p.blocks = std::max(1, static_cast<int>(ni * (n / 4096)));
        return p;
      });
      for (vidx_t r = 0; r < ni; ++r) {
        std::copy_n(dist2[i].data() + static_cast<std::size_t>(r) * ni, ni,
                    row_base + static_cast<std::size_t>(r) * n + off);
      }
      // Charge the dist2 upload as one h2d transfer (the scatter above is
      // the functional side of it).
      dev.memcpy_h2d(compute, hbuf.data(), dist2[i].data(),
                     static_cast<std::size_t>(ni) * ni * sizeof(dist_t));
      // One launch computes the whole block-row: for every j,
      // A(i,j) = min(A(i,j), tmp(:, bnd_j) ⊗ B2C[j]).
      if (bi > 0) {
        // Grid over destination components: block j owns the disjoint
        // column range [comp_offset[j], comp_offset[j]+n_j) of the block-row
        // and only reads tmp / B2C, so parallel execution is race-free and
        // bit-identical to serial.
        dev.launch_grid(
            compute, "block_row_minplus", k,
            [&](int j) {
              const vidx_t bj = layout.comp_boundary[j];
              const vidx_t nj = layout.comp_size(j);
              if (bj == 0) return;
              minplus_accum(row_base + layout.comp_offset[j], n,
                            tmp_buf.data() + layout.boundary_offset[j], nb,
                            b2c_buf.data() + b2c_off[j], nj, ni, bj, nj);
            },
            [&] {
              double ops = 0.0, bytes = 0.0;
              int blocks = 0;
              for (int j = 0; j < k; ++j) {
                const vidx_t bj = layout.comp_boundary[j];
                const vidx_t nj = layout.comp_size(j);
                if (bj == 0) continue;
                ops += minplus_ops(ni, bj, nj);
                bytes += minplus_bytes(ni, bj, nj, opts.fw_tile);
                blocks += ((ni + opts.fw_tile - 1) / opts.fw_tile) *
                          ((nj + opts.fw_tile - 1) / opts.fw_tile);
              }
              sim::KernelProfile p;
              p.ops = ops;
              p.bytes = bytes;
              p.blocks = std::max(1, blocks);
              return p;
            });
      }
      staged_rows += ni;
    } else {
      // Naive mode (Fig. 8 baseline): one tile at a time, one synchronous
      // pageable transfer per tile — k² small transfers.
      for (int j = 0; j < k; ++j) {
        const vidx_t nj = layout.comp_size(j);
        const vidx_t bj = layout.comp_boundary[j];
        dev.launch(compute, "init_tile", [&](sim::LaunchCtx&) {
          if (i == j) {
            std::copy_n(dist2[i].data(), static_cast<std::size_t>(ni) * ni,
                        out_buf.data());
          } else {
            std::fill_n(out_buf.data(), static_cast<std::size_t>(ni) * nj,
                        kInf);
          }
          sim::KernelProfile p;
          p.bytes = static_cast<double>(ni) * nj * sizeof(dist_t);
          p.ops = static_cast<double>(ni) * nj;
          return p;
        });
        if (bi > 0 && bj > 0) {
          dev_minplus(dev, compute, out_buf.data(), nj,
                      tmp_buf.data() + layout.boundary_offset[j], nb,
                      b2c_buf.data() + b2c_off[j], nj, ni, bj, nj,
                      opts.fw_tile);
        }
        dev.memcpy_d2h(compute, hbuf.data(), out_buf.data(),
                       static_cast<std::size_t>(ni) * nj * sizeof(dist_t),
                       /*async=*/false, /*pinned=*/false);
        store.write_block(off, layout.comp_offset[j], ni, nj, hbuf.data(),
                          static_cast<std::size_t>(nj));
      }
    }
  }
  if (batching) flush_staging();
  pipe.drain();
  dev.synchronize();
  if (use_ck) remove_checkpoint(opts.checkpoint_path);

  ApspResult result;
  result.used = Algorithm::kBoundary;
  result.metrics = metrics_from_device(dev, wall.seconds());
  result.metrics.boundary_k = k;
  result.metrics.boundary_nodes = nb;
  result.metrics.checkpoints_written = ck_written;
  result.metrics.resumed_progress = resume_step;
  result.perm = layout.perm;
  return result;
}

ApspResult ooc_boundary(const graph::CsrGraph& g, const ApspOptions& opts,
                        DistStore& store) {
  return ooc_boundary(g, opts, plan_boundary(g, opts), store);
}

}  // namespace gapsp::core
