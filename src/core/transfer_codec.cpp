#include "core/transfer_codec.h"

#include <algorithm>

#include "core/z1_codec.h"
#include "util/common.h"

namespace gapsp::core {

const char* transfer_compression_name(TransferCompression mode) {
  switch (mode) {
    case TransferCompression::kAuto:
      return "auto";
    case TransferCompression::kOn:
      return "on";
    case TransferCompression::kOff:
      return "off";
  }
  return "?";
}

TransferCompression parse_transfer_compression(const std::string& name) {
  if (name == "auto") return TransferCompression::kAuto;
  if (name == "on") return TransferCompression::kOn;
  if (name == "off") return TransferCompression::kOff;
  throw Error("unknown --transfer-compression '" + name +
              "' (expected auto|on|off)");
}

TransferCodec::TransferCodec(sim::Device& dev, TransferCompression mode)
    : dev_(&dev) {
  const sim::DeviceSpec& spec = dev.spec();
  const double decode_rate = spec.decode_gbps * 1e9;
  switch (mode) {
    case TransferCompression::kOff:
      enabled_ = false;
      break;
    case TransferCompression::kOn:
      enabled_ = decode_rate > 0.0;
      break;
    case TransferCompression::kAuto:
      // Worth trying only when the decode kernel outruns the host link —
      // otherwise even a free frame loses to the raw transfer.
      enabled_ = decode_rate > spec.link_bandwidth;
      break;
  }
  // Autotuned per-tile fallback threshold, from the attached device's own
  // rates: compressed wins iff wire/link + raw/decode < raw/link, i.e.
  // wire < raw · (1 − link/decode). Forcing the path on a device whose
  // decode cannot beat the link degenerates to always-fallback (frac 0).
  if (enabled_) {
    max_wire_frac_ =
        std::max(0.0, 1.0 - spec.link_bandwidth / decode_rate);
  }
}

TransferCodec::~TransferCodec() {
  if (pinned_noted_ > 0) dev_->note_pinned_release(pinned_noted_);
}

void TransferCodec::note_wire_capacity() {
  // The wire buffer models a pinned staging area (frames are DMA'd from
  // it), so its growth is accounted like the ping-pong buffers.
  if (frame_.capacity() > pinned_noted_) {
    dev_->note_pinned_alloc(frame_.capacity() - pinned_noted_);
    pinned_noted_ = frame_.capacity();
  }
}

bool TransferCodec::encode_wins(const void* src, std::size_t bytes) {
  last_wire_bytes_ = bytes;
  if (!enabled_ || bytes == 0) return false;
  // Sampled-entropy early-out: incompressible tiles skip the greedy match
  // entirely and take the raw path at probe cost.
  if (!z1_probe_compressible(src, bytes)) return false;
  z1_compress(src, bytes, frame_);
  note_wire_capacity();
  if (static_cast<double>(frame_.size()) >=
      max_wire_frac_ * static_cast<double>(bytes)) {
    return false;
  }
  last_wire_bytes_ = frame_.size();
  return true;
}

sim::Event TransferCodec::stage_in(sim::StreamPipeline& pipe, void* dst,
                                   const void* src, std::size_t bytes) {
  if (!encode_wins(src, bytes)) {
    if (enabled_) dev_->note_z1_fallback(/*to_device=*/true, bytes);
    return pipe.stage_in(dst, src, bytes);
  }
  // The frame is the real carrier: the device buffer is produced by decoding
  // it, so a codec defect surfaces as wrong distances, not silent drift.
  return pipe.stage_in_z1(frame_.size(), bytes, [this, dst, bytes] {
    z1_decompress(frame_.data(), frame_.size(), dst, bytes);
  });
}

sim::Event TransferCodec::stage_out(sim::StreamPipeline& pipe, void* dst,
                                    const void* src, std::size_t bytes,
                                    sim::Event after) {
  if (!encode_wins(src, bytes)) {
    if (enabled_) dev_->note_z1_fallback(/*to_device=*/false, bytes);
    return pipe.stage_out(dst, src, bytes, after);
  }
  return pipe.stage_out_z1(
      frame_.size(), bytes,
      [this, dst, bytes] {
        z1_decompress(frame_.data(), frame_.size(), dst, bytes);
      },
      after);
}

void TransferCodec::h2d(sim::StreamId s, void* dst, const void* src,
                        std::size_t bytes, bool pinned) {
  if (!encode_wins(src, bytes)) {
    if (enabled_) dev_->note_z1_fallback(/*to_device=*/true, bytes);
    dev_->memcpy_h2d(s, dst, src, bytes, /*async=*/false, pinned);
    return;
  }
  dev_->copy_z1(s, /*to_device=*/true, frame_.size(), bytes,
                [this, dst, bytes] {
                  z1_decompress(frame_.data(), frame_.size(), dst, bytes);
                });
}

void TransferCodec::d2h(sim::StreamId s, void* dst, const void* src,
                        std::size_t bytes, bool pinned) {
  if (!encode_wins(src, bytes)) {
    if (enabled_) dev_->note_z1_fallback(/*to_device=*/false, bytes);
    dev_->memcpy_d2h(s, dst, src, bytes, /*async=*/false, pinned);
    return;
  }
  dev_->copy_z1(s, /*to_device=*/false, frame_.size(), bytes,
                [this, dst, bytes] {
                  z1_decompress(frame_.data(), frame_.size(), dst, bytes);
                });
}

}  // namespace gapsp::core
