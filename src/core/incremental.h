// Incremental APSP: delta-repair of a kept distance store after a batch of
// edge-weight updates, instead of a full O(n³/p) re-solve.
//
// The kept store is the expensive artifact; a batch of edge changes perturbs
// only the rows/columns reachable through the changed arcs (RAPID-Graph's
// recursive DP-block framing is exactly what makes localized repair legal).
// The engine splits a batch into the two monotone halves and repairs each
// with the cheapest exact method:
//
//   Increases/deletes (distances can only grow) — one min-plus probe of the
//   changed endpoints' column panels finds the conservatively-damaged row
//   set DR = { i : D(i,u) + w_old == D(i,v) for some increased arc (u,v) }.
//   A shortest path i→j through arc (u,v) makes its prefix i→u→v a shortest
//   i→v path, so every truly damaged row passes the test (predecessor-free:
//   no parent pointers kept, just two column reads per arc). The equality
//   fires on every tie, so when the batch has fewer distinct arc heads than
//   probe hits the set is refined exactly: one reverse-graph SSSP per head
//   yields the new column d_mid(·,v), and a row can only change if some
//   head column grew (the last increased arc on a changed path leaves an
//   unchanged suffix). Damaged rows are repaired in place by dynamic
//   SWSF-FP (Ramalingam–Reps) over the graph with only the increases
//   applied — output-sensitive, so a row that lost one entry pays for one
//   entry, not a fresh Dijkstra (graphs with zero-weight arcs fall back to
//   per-row Dijkstra). An optional damage threshold
//   (|DR| > damage_threshold · n) can still force a full layout-preserving
//   re-solve.
//
//   Decreases/inserts (distances can only shrink) — bounded repair. With S
//   = the stored endpoints of decreased arcs (k = |S|), close the k×k
//   seed matrix M[a][b] = min(D(S_a,S_b), w_new(S_a→S_b)) with one in-place
//   Floyd–Warshall, then
//
//     D' = min(D, D[:,S] ⊗ M* ⊗ D[S,:])
//
//   is exact: any shortest path of the updated graph decomposes into
//   maximal old-distance segments separated by decreased arcs, whose
//   endpoints all lie in S. Rows/columns whose panel product does not
//   improve (affected sets AR/AC) provably cannot change — the min-plus
//   relaxation is applied only to tiles in AR×AC, the dirty-tile frontier
//   tracked at the store's block granularity.
//
// A mixed batch runs increases first (producing exact distances of the
// intermediate graph g_mid) and then the decrease repair on top, so each
// phase's exactness argument applies verbatim.
//
// Crash tolerance reuses the GAPSPCK1 sidecar (checkpoint.h): every emitted
// tile is a pure function of the *pristine* store plus the deterministic
// phase-B rows (stored in the checkpoint payload), so a resumed run skips
// completed tiles and recomputes in-flight ones bit-identically. Callers
// repairing on-disk stores therefore write into a copy and never mutate the
// pristine matrix until the atomic rename (apsp_cli update does exactly
// that).
//
// The repair is charged by the cost model's estimate_incremental term
// (cost_model.h): touched-tile bytes over the (optionally compressed)
// host link plus the closure/panel/tile min-plus op counts. See DESIGN.md
// §16 for the full semantics and the sidecar-invalidation matrix.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/apsp_options.h"
#include "core/dist_store.h"
#include "graph/csr_graph.h"
#include "util/common.h"

namespace gapsp::core {

/// One edge-weight update: set the weight of directed arc u→v to `w`.
/// An arc absent from the graph is inserted; w >= kInf deletes it. Callers
/// with undirected graphs supply both directions. Within a batch the last
/// update of an arc wins.
struct EdgeUpdate {
  vidx_t u = 0;
  vidx_t v = 0;
  dist_t w = 0;
};

/// Parses a text update file: one `u v w` triple per line, `#` comments and
/// blank lines skipped; `w` may be `inf`, `x`, or `-1` for delete. Throws
/// IoError when the file is unreadable, Error on a malformed line.
std::vector<EdgeUpdate> read_edge_updates(const std::string& path);

/// The graph after applying `updates` to `g` (directed arc semantics above).
graph::CsrGraph apply_edge_updates(const graph::CsrGraph& g,
                                   std::span<const EdgeUpdate> updates);

struct IncrementalOptions {
  /// Increase repair falls back to a full re-solve when the damaged row
  /// count exceeds this fraction of n (`apsp_cli update --update-threshold`).
  /// 0 forces the fallback whenever any row is damaged; >= 1 disables it.
  /// Disabled by default: phase-B repair is output-sensitive (SWSF-FP), so
  /// the damaged-row FRACTION no longer predicts repair cost — on road-like
  /// graphs a two-arc batch legitimately damages most rows by one entry
  /// each. The knob remains for operators who want to cap repair work.
  double damage_threshold = 1.0;

  /// Dirty-tile granularity when the store itself is untiled (a tiled
  /// backend's own tile size always wins, so emitted tiles line up with the
  /// GAPSPZ1 directory / cache grid).
  vidx_t tile = 256;

  /// GAPSPCK1 delta sidecar path; empty disables checkpointing.
  std::string checkpoint_path;
  /// Resume from `checkpoint_path` when it matches this (graph, updates,
  /// tile, threshold) configuration; otherwise start fresh.
  bool resume = false;
  /// Tiles between checkpoint rewrites.
  long long checkpoint_every_tiles = 64;
  /// Called immediately before every checkpoint write. Callers whose sink
  /// buffers (a file-backed copy) MUST flush it here: a checkpoint claiming
  /// tiles that still sit in a userspace buffer makes a SIGKILL resume skip
  /// tiles that never reached disk (`apsp_cli update` passes the tmp
  /// store's flush).
  std::function<void()> sync_before_checkpoint;

  /// Options of the full-solve fallback (algorithm kAuto is forced to
  /// blocked FW so the store layout — identity permutation — is preserved).
  ApspOptions solve_opts;
};

/// What one apply() did, for CLI/bench reporting and cost-model comparison.
struct UpdateOutcome {
  bool full_solve = false;  ///< damage threshold tripped
  long long decreases = 0;  ///< deduped arcs whose weight dropped (or new)
  long long increases = 0;  ///< deduped arcs whose weight rose (or deleted)
  long long noops = 0;      ///< deduped arcs whose weight did not change
  long long sources = 0;    ///< |S|, decrease-repair seed set
  long long damaged_rows = 0;   ///< |DR|, increase-probe hits
  long long affected_rows = 0;  ///< |AR|
  long long affected_cols = 0;  ///< |AC|
  long long tiles_total = 0;    ///< tiles of the full matrix
  long long tiles_candidate = 0;  ///< tiles the frontier marked dirty
  long long tiles_touched = 0;    ///< tiles whose bytes actually changed
  long long tiles_resumed = 0;    ///< candidates skipped via checkpoint
  long long checkpoints_written = 0;
  double seconds = 0;        ///< host wall-clock of the whole apply
  double probe_seconds = 0;  ///< increase-probe column scans
  double sssp_seconds = 0;   ///< phase-B row recomputes
  double panel_seconds = 0;  ///< closure + L/R panel products
  double tile_seconds = 0;   ///< dirty-tile reads + min-plus + emits
  /// Cost-model charge of this repair (estimate_incremental) vs a modeled
  /// full blocked-FW re-solve on the same device — the selector-facing
  /// "was the delta path worth it" comparison.
  double modeled_repair_seconds = 0;
  double modeled_full_seconds = 0;
};

/// Fingerprint binding a delta checkpoint to (graph, update batch, tile,
/// threshold); a resume with any mismatch starts fresh.
std::uint64_t incremental_fingerprint(const graph::CsrGraph& g,
                                      std::span<const EdgeUpdate> updates,
                                      vidx_t tile, double damage_threshold);

class IncrementalEngine {
 public:
  /// `g` is the PRE-update graph the store was solved from; `perm` the
  /// solver's vertex permutation (stored index = perm[vertex], empty =
  /// identity — boundary-solved stores pass ApspResult::perm). The graph is
  /// captured by reference and must outlive the engine.
  explicit IncrementalEngine(const graph::CsrGraph& g,
                             IncrementalOptions opt = {},
                             std::vector<vidx_t> perm = {});

  /// Receives the final rows×cols contents (row-major, ld == cols, stored
  /// coordinates) of every tile whose bytes changed, in deterministic
  /// (bi, bj) order. (bi, bj) index the tile grid; (row0, col0) its corner.
  using TileSink =
      std::function<void(vidx_t bi, vidx_t bj, vidx_t row0, vidx_t col0,
                         vidx_t rows, vidx_t cols, const dist_t* data)>;

  /// Repairs the matrix in `pristine` (the exact APSP of `g`, read-only —
  /// never written) against `updates`, streaming every changed tile to
  /// `sink`. Deterministic: same (graph, store, updates, options) produce
  /// the same tile sequence bit-for-bit, which is what makes checkpointed
  /// resume sound. Throws Error on negative update weights or dimension
  /// mismatch, IoError/CorruptError from the store.
  UpdateOutcome apply(const DistStore& pristine,
                      std::span<const EdgeUpdate> updates,
                      const TileSink& sink);

  /// Convenience for writable stores: apply() with a sink that writes each
  /// tile back into `store`. Sound because every tile is read before any
  /// byte of it is written and tiles are disjoint — but NOT crash-safe
  /// (a killed in-place repair leaves a store that is neither old nor new);
  /// callers wanting resume must repair into a copy like `apsp_cli update`.
  UpdateOutcome apply_in_place(DistStore& store,
                               std::span<const EdgeUpdate> updates);

  /// The updated graph built by the last apply() (g with the batch applied).
  const graph::CsrGraph& updated_graph() const { return g_final_; }

 private:
  struct Classified;
  void classify(std::span<const EdgeUpdate> updates, Classified& out,
                UpdateOutcome& outcome) const;

  const graph::CsrGraph& g_;
  IncrementalOptions opt_;
  std::vector<vidx_t> perm_;      // empty = identity
  std::vector<vidx_t> inv_perm_;  // stored index -> original vertex
  graph::CsrGraph g_final_;
};

}  // namespace gapsp::core
