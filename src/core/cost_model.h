// The detailed cost models of Sec. IV-B: data-transfer equations per
// algorithm plus compute estimators — scaling laws calibrated from small
// runs for Floyd–Warshall and the boundary algorithm, and batch sampling for
// Johnson's algorithm.
#pragma once

#include <algorithm>

#include "core/apsp_options.h"
#include "core/ooc_boundary.h"
#include "graph/csr_graph.h"

namespace gapsp::core {

// ---- Transfer models (Sec. IV-B1) ----
//
// Each model takes `out_bytes_per_element`, the effective per-element cost
// of the n² output stream (ApspOptions::store_bytes_per_element): a
// block-compressed sink at ratio R shrinks it to sizeof(dist_t)/R. Working
// tiles that bounce to the device and back (FW's 3b² term) stay at the raw
// element size — only the stream that lands in the store compresses.
//
// `wire_ratio` extends the equations to the compressed transfer path
// (DESIGN.md §14): every byte volume is charged at the effective link
// bandwidth of a tile that shrinks `wire_ratio`× on the wire and pays the
// on-device decode. 1.0 (the default) is the legacy raw link.

/// Effective host-link bandwidth of the compressed transfer path: a raw
/// byte costs 1/(R·TH) on the wire plus 1/decode_rate in the modeled decode
/// kernel, so TH_eff = 1 / (1/(R·TH) + 1/decode). Degenerates to the raw
/// link when the ratio is ≤ 1 or the device has no decode rate.
double compressed_link_bandwidth(const sim::DeviceSpec& spec,
                                 double wire_ratio);

/// Expected wire ratio (raw/wire) of `g`'s weight tiles through the
/// TransferCodec under `opts`: z1-compresses sampled weight blocks and
/// applies the codec's own per-tile fallback threshold. Returns 1.0 when
/// the codec would not engage (mode off, or auto on a device whose decode
/// cannot beat the link).
double estimate_transfer_ratio(const graph::CsrGraph& g,
                               const ApspOptions& opts);

/// Floyd–Warshall: T = n_d · (W·3b² + w·n²) / TH. With `overlap` the block
/// size comes from the five-resident-block pipelined schedule (smaller b,
/// larger n_d — the volume cost of double buffering).
double fw_transfer_model(vidx_t n, const sim::DeviceSpec& spec,
                         bool overlap = false,
                         double out_bytes_per_element = sizeof(dist_t),
                         double wire_ratio = 1.0);

/// Johnson: T = w · n² / TH.
double johnson_transfer_model(vidx_t n, const sim::DeviceSpec& spec,
                              double out_bytes_per_element = sizeof(dist_t),
                              double wire_ratio = 1.0);

/// Boundary: (k / N_row) transfers of S_rem bytes each.
double boundary_transfer_model(const BoundaryPlan& plan, vidx_t n,
                               const sim::DeviceSpec& spec,
                               double out_bytes_per_element = sizeof(dist_t),
                               double wire_ratio = 1.0);

// ---- Compute models (Sec. IV-B2) ----

/// Calibration data for the scaling-law models, obtained by running small
/// training graphs through the simulator once per device configuration.
struct Calibration {
  // Blocked FW: measured compute time fw_t0 on a graph with fw_n0 vertices;
  // estimate T = fw_t0 · (n/fw_n0)^fw_exponent. The paper uses the
  // asymptotic exponent 3; at this reproduction's scaled sizes launch
  // overhead and occupancy make the measured exponent smaller, so it is
  // fitted from two calibration runs (see EXPERIMENTS.md).
  double fw_t0 = 0.0;
  vidx_t fw_n0 = 0;
  double fw_exponent = 3.0;
  // Boundary on a small-separator graph: T = bnd_t0 · (n/bnd_n0)^e, paper
  // exponent 3/2, fitted the same way.
  double bnd_t0 = 0.0;
  vidx_t bnd_n0 = 0;
  double bnd_exponent = 1.5;
  // Large-separator boundary: cost per operation c_unit, bucketed by
  // NB ∈ [n^(3/4)·2^r, n^(3/4)·2^(r+1)). Missing buckets borrow the nearest
  // trained value.
  std::vector<double> c_unit;
};

/// Runs the calibration workloads (cached per device name+memory, so the
/// cost is paid once per process per configuration).
const Calibration& calibrate(const ApspOptions& opts);

/// The in-process cache key for `opts`: every option that changes what the
/// probe runs measure. Also the key a persisted table is matched against.
std::string calibration_cache_key(const ApspOptions& opts);

/// Serializes the cached calibration for `opts` to `path` (a "GAPSPCAL1"
/// sidecar, atomic tmp+rename). Returns false without touching the file
/// when calibrate() has not run for this configuration yet. The CLI drops
/// one next to a kept store so a serving process skips the warm-up solves.
bool save_calibration(const ApspOptions& opts, const std::string& path);

/// Seeds the in-process cache from `path`. Returns false (cache untouched)
/// when the file is missing, corrupt, or keyed for a different
/// configuration; true means the next calibrate() is a cache hit.
bool load_calibration(const ApspOptions& opts, const std::string& path);

/// Drops every cached calibration (test hook for the persistence path).
void clear_calibration_cache();

/// Number of full calibration probe runs this process has executed; tests
/// assert a load_calibration() really skips the probes.
long long calibration_runs();

/// Operation count of the boundary algorithm on a large-separator graph:
/// N_op = n³/k² + (kB)³ + nkB² + n²B, B = average boundary nodes/component.
double boundary_nop(vidx_t n, int k, double avg_boundary);

/// c_unit bucket index for a boundary count NB on an n-vertex graph.
int boundary_bucket(vidx_t n, vidx_t nb, int num_buckets);

struct CostBreakdown {
  double compute_s = 0.0;
  double transfer_s = 0.0;
  bool feasible = true;
  /// True when the estimate assumes compute/transfer overlap
  /// (opts.overlap_transfers): the pipeline hides the shorter leg, so the
  /// total is the longer one instead of the sum.
  bool overlapped = false;
  /// Host-side wall-clock prediction for the algorithm's min-plus work under
  /// the kernel variant the run would resolve to: scalar op count × the
  /// autotuner's measured per-element constant for that variant
  /// (kernel_tuning(), DESIGN.md §12). The simulated timeline — and thus
  /// compute_s and total() — is variant-invariant by design; this field is
  /// what makes the estimate variant-aware without perturbing the selector's
  /// modeled-device ordering. Zero for algorithms that are not
  /// min-plus-bound (Johnson) and when the estimate is infeasible.
  double host_minplus_s = 0.0;
  /// Measured speed of the resolved variant relative to kNaive on the
  /// autotune working set (kernel_variant_rel_speed); 1.0 when unmeasured.
  double kernel_rel_speed = 1.0;
  double total() const {
    return overlapped ? std::max(compute_s, transfer_s)
                      : compute_s + transfer_s;
  }
};

/// FW estimate: calibrated cubic scaling + transfer model.
CostBreakdown estimate_fw(const graph::CsrGraph& g, const ApspOptions& opts);

/// Number of Johnson batches ⌈n / bat⌉, computed in 64-bit so large n with
/// a small batch size cannot overflow 32-bit arithmetic.
std::int64_t johnson_num_batches(vidx_t n, int bat);

/// Johnson estimate: run `sample_batches` random batches (paper uses 5) and
/// scale by n_b / sampled; plus the transfer model. Infeasible (infinite
/// cost) when not even one SSSP instance fits the device.
CostBreakdown estimate_johnson(const graph::CsrGraph& g,
                               const ApspOptions& opts,
                               int sample_batches = 5);

/// Boundary estimate: n^(3/2) scaling when the partition shows a small
/// separator, N_op · c_unit otherwise; infeasible when no k fits.
CostBreakdown estimate_boundary(const graph::CsrGraph& g,
                                const ApspOptions& opts);

// ---- Incremental repair (core/incremental.h, DESIGN.md §16) ----

/// Cost-model charge of one delta repair, split by phase. Transfer covers
/// the seed row/column panels, the recomputed damaged rows, and a read +
/// write of every touched tile over the (optionally compressed, see
/// compressed_link_bandwidth) host link; compute covers the SSSP row
/// repairs, the k×k seed closure, the two panel products, and the
/// dirty-tile min-plus relaxations.
struct IncrementalCost {
  double sssp_s = 0.0;     ///< damaged-row SSSP repairs
  double closure_s = 0.0;  ///< k×k Floyd–Warshall on the seed matrix
  double panel_s = 0.0;    ///< L = Cc ⊗ M* and R' = M* ⊗ R products
  double tile_s = 0.0;     ///< min-plus over the touched tiles
  double transfer_s = 0.0;
  double total() const {
    return sssp_s + closure_s + panel_s + tile_s + transfer_s;
  }
};

/// Models a repair with `sources` decrease seeds, `damaged_rows` SSSP row
/// recomputes and `tiles_touched` rewritten tiles of side `tile` on an
/// n-vertex, m-arc graph. `wire_ratio` charges tile traffic at the
/// compressed transfer path's effective bandwidth (1.0 = raw link).
IncrementalCost estimate_incremental(vidx_t n, eidx_t m, std::size_t sources,
                                     std::size_t damaged_rows,
                                     std::size_t tiles_touched, vidx_t tile,
                                     const sim::DeviceSpec& spec,
                                     double wire_ratio = 1.0);

/// The comparison baseline of the delta path: a modeled full blocked-FW
/// re-solve (2n³ min-plus ops at peak throughput plus the Sec. IV-B1
/// transfer model) on the same device.
double incremental_full_solve_model(vidx_t n, const sim::DeviceSpec& spec,
                                    double wire_ratio = 1.0);

}  // namespace gapsp::core
