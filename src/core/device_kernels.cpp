#include "core/device_kernels.h"

#include <algorithm>

namespace gapsp::core {

double dev_minplus(sim::Device& dev, sim::StreamId stream, dist_t* c,
                   std::size_t ldc, const dist_t* a, std::size_t lda,
                   const dist_t* b, std::size_t ldb, vidx_t nr, vidx_t nk,
                   vidx_t nc, int tile) {
  if (nr == 0 || nc == 0 || nk == 0) return 0.0;
  const vidx_t rt = (nr + tile - 1) / tile;
  const vidx_t ct = (nc + tile - 1) / tile;
  // Blocks must own disjoint outputs AND disjoint reads of any aliased
  // operand, so parallel execution is race-free and bit-identical to serial.
  // Panel updates alias C with one operand (P = min(P, D⊗P) or P ⊗ D
  // against a transitively closed diagonal D), so the grid decomposes along
  // the non-aliased axis: column strips when C==B (each strip reads/writes
  // only its own columns of P), row strips when C==A. The profile always
  // declares the full 2D tile grid — that is what the CUDA kernel this
  // stands for would launch, and it feeds the occupancy model.
  const bool alias_a = (c == a);
  const bool alias_b = (c == b);
  auto profile = [&] {
    sim::KernelProfile p;
    p.ops = minplus_ops(nr, nk, nc);
    p.bytes = minplus_bytes(nr, nk, nc, tile);
    p.blocks = static_cast<int>(rt * ct);
    return p;
  };
  if (alias_a && alias_b) {
    // Fully self-referential (C = min(C, C⊗C)): no disjoint decomposition;
    // run as a single block.
    return dev.launch_grid(stream, "minplus", 1,
                           [&](int) {
                             minplus_accum(c, ldc, a, lda, b, ldb, nr, nk, nc);
                           },
                           profile);
  }
  if (alias_b) {
    return dev.launch_grid(stream, "minplus", static_cast<int>(ct),
                           [&](int blk) {
                             const vidx_t c0 = static_cast<vidx_t>(blk) * tile;
                             const vidx_t cols = std::min<vidx_t>(tile, nc - c0);
                             minplus_accum(c + c0, ldc, a, lda, b + c0, ldb,
                                           nr, nk, cols);
                           },
                           profile);
  }
  if (alias_a) {
    return dev.launch_grid(
        stream, "minplus", static_cast<int>(rt),
        [&](int blk) {
          const vidx_t r0 = static_cast<vidx_t>(blk) * tile;
          const vidx_t rows = std::min<vidx_t>(tile, nr - r0);
          minplus_accum(c + static_cast<std::size_t>(r0) * ldc, ldc,
                        a + static_cast<std::size_t>(r0) * lda, lda, b, ldb,
                        rows, nk, nc);
        },
        profile);
  }
  return dev.launch_grid(
      stream, "minplus", static_cast<int>(rt * ct),
      [&](int blk) {
        const vidx_t tr = static_cast<vidx_t>(blk) / ct;
        const vidx_t tc = static_cast<vidx_t>(blk) % ct;
        const vidx_t r0 = tr * tile;
        const vidx_t c0 = tc * tile;
        const vidx_t rows = std::min<vidx_t>(tile, nr - r0);
        const vidx_t cols = std::min<vidx_t>(tile, nc - c0);
        minplus_accum(c + static_cast<std::size_t>(r0) * ldc + c0, ldc,
                      a + static_cast<std::size_t>(r0) * lda, lda, b + c0,
                      ldb, rows, nk, cols);
      },
      profile);
}

double dev_blocked_fw(sim::Device& dev, sim::StreamId stream, dist_t* m,
                      std::size_t ld, vidx_t n, int tile) {
  if (n == 0) return 0.0;
  double total = 0.0;
  const vidx_t nt = (n + tile - 1) / tile;
  auto dim = [&](vidx_t t) { return std::min<vidx_t>(tile, n - t * tile); };
  auto at = [&](vidx_t tr, vidx_t tc) {
    return m + static_cast<std::size_t>(tr) * tile * ld +
           static_cast<std::size_t>(tc) * tile;
  };
  for (vidx_t kk = 0; kk < nt; ++kk) {
    const vidx_t dk = dim(kk);
    // Maps a dense block index in [0, nt-1) to a tile index skipping kk.
    auto other = [&](vidx_t t) { return t >= kk ? t + 1 : t; };
    // Phase 1: diagonal tile, classic FW, one thread block.
    total += dev.launch(stream, "fw_diag", [&](sim::LaunchCtx&) {
      fw_inplace(at(kk, kk), ld, dk);
      sim::KernelProfile p;
      p.ops = minplus_ops(dk, dk, dk);
      p.bytes = 2.0 * sizeof(dist_t) * dk * dk;  // resident in shared memory
      p.blocks = 1;
      return p;
    });
    if (nt == 1) break;
    // Phase 2: row panel A(kk, j) and column panel A(i, kk), one launch,
    // one block per panel tile. Each block owns one off-diagonal tile and
    // reads only it plus the (already closed, read-only) diagonal — blocks
    // are disjoint, so parallel execution is bit-identical to serial.
    total += dev.launch_grid(
        stream, "fw_panels", static_cast<int>(2 * (nt - 1)),
        [&](int pb) {
          const vidx_t row_panels = nt - 1;
          if (pb < static_cast<int>(row_panels)) {
            const vidx_t j = other(static_cast<vidx_t>(pb));
            fw_row_panel(at(kk, j), ld, at(kk, kk), ld, dk, dim(j));
          } else {
            const vidx_t i = other(static_cast<vidx_t>(pb) - row_panels);
            fw_col_panel(at(i, kk), ld, at(kk, kk), ld, dim(i), dk);
          }
        },
        [&] {
          double ops = 0.0, bytes = 0.0;
          for (vidx_t j = 0; j < nt; ++j) {
            if (j == kk) continue;
            ops += minplus_ops(dk, dk, dim(j));
            bytes += minplus_bytes(dk, dk, dim(j), tile);
          }
          for (vidx_t i = 0; i < nt; ++i) {
            if (i == kk) continue;
            ops += minplus_ops(dim(i), dk, dk);
            bytes += minplus_bytes(dim(i), dk, dk, tile);
          }
          sim::KernelProfile p;
          p.ops = ops;
          p.bytes = bytes;
          p.blocks = static_cast<int>(2 * (nt - 1));
          return p;
        });
    // Phase 3: all remaining tiles, one launch, one block per output tile.
    // Block (i, j) writes tile (i, j) and reads the frozen panels — outputs
    // are disjoint from every input of this phase.
    total += dev.launch_grid(
        stream, "fw_update", static_cast<int>((nt - 1) * (nt - 1)),
        [&](int tb) {
          const vidx_t i = other(static_cast<vidx_t>(tb) / (nt - 1));
          const vidx_t j = other(static_cast<vidx_t>(tb) % (nt - 1));
          minplus_accum(at(i, j), ld, at(i, kk), ld, at(kk, j), ld, dim(i),
                        dk, dim(j));
        },
        [&] {
          double ops = 0.0, bytes = 0.0;
          for (vidx_t i = 0; i < nt; ++i) {
            if (i == kk) continue;
            for (vidx_t j = 0; j < nt; ++j) {
              if (j == kk) continue;
              ops += minplus_ops(dim(i), dk, dim(j));
              bytes += minplus_bytes(dim(i), dk, dim(j), tile);
            }
          }
          sim::KernelProfile p;
          p.ops = ops;
          p.bytes = bytes;
          p.blocks = static_cast<int>((nt - 1) * (nt - 1));
          return p;
        });
  }
  return total;
}

}  // namespace gapsp::core
