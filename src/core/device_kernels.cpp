#include "core/device_kernels.h"

#include <algorithm>

namespace gapsp::core {

double dev_minplus(sim::Device& dev, sim::StreamId stream, dist_t* c,
                   std::size_t ldc, const dist_t* a, std::size_t lda,
                   const dist_t* b, std::size_t ldb, vidx_t nr, vidx_t nk,
                   vidx_t nc, int tile) {
  if (nr == 0 || nc == 0 || nk == 0) return 0.0;
  const int grid = static_cast<int>(((nr + tile - 1) / tile) *
                                    ((nc + tile - 1) / tile));
  return dev.launch(stream, "minplus", [&](sim::LaunchCtx&) {
    minplus_accum(c, ldc, a, lda, b, ldb, nr, nk, nc);
    sim::KernelProfile p;
    p.ops = minplus_ops(nr, nk, nc);
    p.bytes = minplus_bytes(nr, nk, nc, tile);
    p.blocks = grid;
    return p;
  });
}

double dev_blocked_fw(sim::Device& dev, sim::StreamId stream, dist_t* m,
                      std::size_t ld, vidx_t n, int tile) {
  if (n == 0) return 0.0;
  double total = 0.0;
  const vidx_t nt = (n + tile - 1) / tile;
  auto dim = [&](vidx_t t) { return std::min<vidx_t>(tile, n - t * tile); };
  auto at = [&](vidx_t tr, vidx_t tc) {
    return m + static_cast<std::size_t>(tr) * tile * ld +
           static_cast<std::size_t>(tc) * tile;
  };
  for (vidx_t kk = 0; kk < nt; ++kk) {
    const vidx_t dk = dim(kk);
    // Phase 1: diagonal tile, classic FW, one thread block.
    total += dev.launch(stream, "fw_diag", [&](sim::LaunchCtx&) {
      fw_inplace(at(kk, kk), ld, dk);
      sim::KernelProfile p;
      p.ops = minplus_ops(dk, dk, dk);
      p.bytes = 2.0 * sizeof(dist_t) * dk * dk;  // resident in shared memory
      p.blocks = 1;
      return p;
    });
    if (nt == 1) break;
    // Phase 2: row panel A(kk, j) and column panel A(i, kk), one launch.
    total += dev.launch(stream, "fw_panels", [&](sim::LaunchCtx&) {
      double ops = 0.0, bytes = 0.0;
      for (vidx_t j = 0; j < nt; ++j) {
        if (j == kk) continue;
        fw_row_panel(at(kk, j), ld, at(kk, kk), ld, dk, dim(j));
        ops += minplus_ops(dk, dk, dim(j));
        bytes += minplus_bytes(dk, dk, dim(j), tile);
      }
      for (vidx_t i = 0; i < nt; ++i) {
        if (i == kk) continue;
        fw_col_panel(at(i, kk), ld, at(kk, kk), ld, dim(i), dk);
        ops += minplus_ops(dim(i), dk, dk);
        bytes += minplus_bytes(dim(i), dk, dk, tile);
      }
      sim::KernelProfile p;
      p.ops = ops;
      p.bytes = bytes;
      p.blocks = static_cast<int>(2 * (nt - 1));
      return p;
    });
    // Phase 3: all remaining tiles, one launch, one block per tile.
    total += dev.launch(stream, "fw_update", [&](sim::LaunchCtx&) {
      double ops = 0.0, bytes = 0.0;
      for (vidx_t i = 0; i < nt; ++i) {
        if (i == kk) continue;
        for (vidx_t j = 0; j < nt; ++j) {
          if (j == kk) continue;
          minplus_accum(at(i, j), ld, at(i, kk), ld, at(kk, j), ld, dim(i),
                        dk, dim(j));
          ops += minplus_ops(dim(i), dk, dim(j));
          bytes += minplus_bytes(dim(i), dk, dim(j), tile);
        }
      }
      sim::KernelProfile p;
      p.ops = ops;
      p.bytes = bytes;
      p.blocks = static_cast<int>((nt - 1) * (nt - 1));
      return p;
    });
  }
  return total;
}

}  // namespace gapsp::core
