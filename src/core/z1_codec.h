// The z1 codec: a hand-rolled LZ4-style byte compressor shared by the
// GAPSPZ1 at-rest store (compressed_store.h) and the compressed host↔device
// transfer path (transfer_codec.h). Factored out of the store so working
// tiles of any size/alignment can ride the same frames.
//
// Frame layout:
//   frame := u64 raw_len | u64 fnv1a(raw) | sequences
//   sequence := token (hi nibble literal count, lo nibble match length − 4,
//               15 = extended by 255-continuation bytes) | literal-length
//               extension | literals | u16 LE offset | match-length extension
// The final sequence is literals only: the stream ends immediately after
// them. Matches are greedy hash-probed with a fast path for 4-byte-periodic
// runs (kInf blocks match themselves at offset 4 without hashing every
// position). Decoding is strictly bounds-checked: truncated or corrupt
// frames throw CorruptError and never read or write out of bounds.
//
// Incompressible early-out: before the greedy match, the encoder runs a
// cheap sampled-entropy probe (z1_probe_compressible). Tiles the probe
// rejects — R-MAT-dense weight blocks, random payloads — are emitted as a
// single literal-only sequence without ever probing the hash table, so a
// raw-fallback decision upstream pays the probe, not a full compression.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gapsp::core {

/// Cheap compressibility probe: samples up to a few KiB of `src` at an even
/// stride and estimates the byte entropy plus the 4-byte-periodic run mass.
/// Returns false when the sample says the greedy matcher cannot win (near
/// 8 bits/byte and no periodic structure). Conservative on purpose: a false
/// "compressible" costs one wasted match pass, a false "incompressible"
/// would forfeit real ratio, so the threshold sits close to 8 bits.
bool z1_probe_compressible(const void* src, std::size_t len);

/// Compresses `len` bytes at `src` into a self-describing z1 frame,
/// replacing the contents of `out` (capacity is reused across calls).
/// Applies the incompressible early-out: rejected inputs become a
/// literal-only frame (slightly larger than raw) without any matching.
void z1_compress(const void* src, std::size_t len,
                 std::vector<std::uint8_t>& out);

/// Convenience form returning a fresh frame.
std::vector<std::uint8_t> z1_compress(const void* src, std::size_t len);

/// Worst-case frame size for `len` raw bytes (literal-only frame plus
/// header and length-extension overhead) — what a reused output buffer
/// must be able to hold.
std::size_t z1_max_compressed_size(std::size_t len);

/// Decompressed size recorded in a frame header. Throws CorruptError when
/// the frame is too short to carry a header.
std::uint64_t z1_raw_size(const std::uint8_t* frame, std::size_t frame_len);

/// Decompresses a frame into `dst` (`dst_len` must equal z1_raw_size).
/// Throws CorruptError on truncation, malformed sequences, or a content
/// checksum mismatch — never reads past `frame + frame_len` or writes past
/// `dst + dst_len`.
void z1_decompress(const std::uint8_t* frame, std::size_t frame_len,
                   void* dst, std::size_t dst_len);

}  // namespace gapsp::core
