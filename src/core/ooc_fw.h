// Out-of-core blocked Floyd–Warshall (Algorithm 1 of the paper).
//
// The n×n distance matrix is tiled into n_d×n_d blocks of side b, where b is
// the largest block size whose working set (three resident blocks) fits the
// device. Each round k runs the classic three stages — diagonal block FW,
// row/column panel updates against the closed diagonal, then the min-plus
// update of every remaining block — streaming every block between the host
// store and the device. Data movement is O(n_d · n²); compute is O(n³).
#pragma once

#include "core/apsp_common.h"

namespace gapsp::core {

/// Largest block side b such that three b×b dist_t blocks (plus slack) fit
/// in the device memory of `spec`. Exposed for the Sec. IV cost models.
vidx_t fw_block_size(const sim::DeviceSpec& spec, vidx_t n);

/// Runs Algorithm 1. `store` receives the final distances (original vertex
/// order). The graph's weight matrix is written into `store` first.
ApspResult ooc_floyd_warshall(const graph::CsrGraph& g,
                              const ApspOptions& opts, DistStore& store);

}  // namespace gapsp::core
