// Out-of-core blocked Floyd–Warshall (Algorithm 1 of the paper).
//
// The n×n distance matrix is tiled into n_d×n_d blocks of side b, where b is
// the largest block size whose working set (three resident blocks) fits the
// device. Each round k runs the classic three stages — diagonal block FW,
// row/column panel updates against the closed diagonal, then the min-plus
// update of every remaining block — streaming every block between the host
// store and the device. Data movement is O(n_d · n²); compute is O(n³).
//
// With opts.overlap_transfers the block traffic is pipelined through
// sim::StreamPipeline: the next row-panel and remainder tiles prefetch on an
// H2D stream and finished tiles drain on a D2H stream while the current
// min-plus kernel runs, at the price of two extra resident blocks (the
// ping-pong halves of the row and tile buffers).
#pragma once

#include "core/apsp_common.h"

namespace gapsp::core {

/// Number of resident b×b blocks the FW schedule keeps on device: three in
/// the serialized schedule (A(i,j), A(i,k), A(k,j)); five when transfers
/// overlap, because the row-panel and remainder-tile buffers double up for
/// the prefetch ping-pong.
int fw_resident_blocks(bool overlap_transfers);

/// Largest block side b such that `resident_blocks` b×b dist_t blocks (plus
/// slack) fit in the device memory of `spec`. Exposed for the Sec. IV cost
/// models.
vidx_t fw_block_size(const sim::DeviceSpec& spec, vidx_t n,
                     int resident_blocks = 3);

/// Runs Algorithm 1. `store` receives the final distances (original vertex
/// order). The graph's weight matrix is written into `store` first.
ApspResult ooc_floyd_warshall(const graph::CsrGraph& g,
                              const ApspOptions& opts, DistStore& store);

}  // namespace gapsp::core
