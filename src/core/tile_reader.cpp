#include "core/tile_reader.h"

#include <chrono>
#include <string>
#include <thread>

#include "core/dist_store.h"
#include "sim/fault.h"

namespace gapsp::core {

namespace {

std::string tile_tag(vidx_t row_block, vidx_t col_block) {
  return "tile (" + std::to_string(row_block) + "," +
         std::to_string(col_block) + ")";
}

}  // namespace

CheckedTileReader::CheckedTileReader(const DistStore& store,
                                     StoreChecksums sums, TileReaderOptions opt)
    : store_(store), sums_(std::move(sums)), opt_(opt) {
  if (sums_.present()) {
    GAPSP_CHECK(sums_.n == store.n(),
                "checksum sidecar covers a different matrix dimension");
  }
}

bool CheckedTileReader::verifying() const {
  return opt_.verify_checksums && sums_.present();
}

TileReaderStats CheckedTileReader::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void CheckedTileReader::read_tile(vidx_t row_block, vidx_t col_block,
                                  vidx_t row0, vidx_t col0, vidx_t rows,
                                  vidx_t cols, dist_t* dst) {
  // Only verify rectangles that exactly cover one sidecar tile; anything
  // else (a misaligned caller) is read unverified rather than mis-verified.
  const bool verify =
      verifying() && sums_.tile > 0 && row0 % sums_.tile == 0 &&
      col0 % sums_.tile == 0 &&
      rows == std::min<vidx_t>(sums_.tile, sums_.n - row0) &&
      cols == std::min<vidx_t>(sums_.tile, sums_.n - col0);
  const vidx_t sum_bi = verify ? row0 / sums_.tile : 0;
  const vidx_t sum_bj = verify ? col0 / sums_.tile : 0;

  for (int attempt = 0;; ++attempt) {
    try {
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (opt_.faults != nullptr) {
          opt_.faults->on_op(sim::FaultOp::kStoreRead, /*device_now=*/0.0,
                             tile_tag(row_block, col_block).c_str());
        }
        store_.read_block(row0, col0, rows, cols, dst, cols);
      }
      if (verify) {
        const std::uint64_t got =
            tile_checksum(dst, static_cast<std::size_t>(rows) * cols);
        if (got != sums_.tile_sum(sum_bi, sum_bj)) {
          throw CorruptError("checksum mismatch on " +
                             tile_tag(row_block, col_block));
        }
      }
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.reads;
      return;
    } catch (const CorruptError& e) {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.corrupt_tiles;
      throw TileError(TileFailure::kCorrupt, row_block, col_block, e.what());
    } catch (const sim::FaultError& e) {
      if (!e.transient()) {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.corrupt_tiles;
        throw TileError(TileFailure::kCorrupt, row_block, col_block, e.what());
      }
      if (attempt >= opt_.retry.max_retries) {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.transient_failures;
        throw TileError(TileFailure::kTransient, row_block, col_block,
                        std::string(e.what()) + " (retries exhausted)");
      }
    } catch (const IoError& e) {
      if (attempt >= opt_.retry.max_retries) {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.transient_failures;
        throw TileError(TileFailure::kTransient, row_block, col_block,
                        std::string(e.what()) + " (retries exhausted)");
      }
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.retries;
    }
    const double backoff = util::retry_backoff_s(opt_.retry, attempt + 1);
    if (backoff > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
  }
}

}  // namespace gapsp::core
