// Fault-tolerant tile reads over a DistStore.
//
// The serving tier's single chokepoint for pulling bytes off disk. One
// CheckedTileReader wraps one store and runs the full DESIGN.md §13 read
// ladder per tile:
//
//   1. optional injected fault (sim::FaultInjector, op class kStoreRead) —
//      chaos sweeps exercise this path deterministically;
//   2. the actual DistStore::read_block, serialized by an internal mutex
//      (the raw FileStore is one stateful stdio stream);
//   3. optional checksum verification against the GAPSPSM1 sidecar
//      (store_integrity.h) — raw stores only; the compressed store verifies
//      its own frame checksums during decode.
//
// Transient failures (IoError, transient FaultError) are retried under a
// util::RetryPolicy with real exponential-backoff sleeps; exhausting the
// budget raises TileError(kTransient). Persistent damage (CorruptError,
// sidecar mismatch, non-transient FaultError) raises TileError(kCorrupt)
// immediately — retrying a checksum mismatch cannot help. Callers
// (BlockCache loaders) turn those into quarantine marks.
#pragma once

#include <mutex>

#include "core/store_integrity.h"
#include "core/tile_error.h"
#include "util/retry.h"

namespace gapsp::sim {
class FaultInjector;
}  // namespace gapsp::sim

namespace gapsp::core {

struct TileReaderOptions {
  util::RetryPolicy retry;
  /// Verify raw-store tiles against the sidecar when one is loaded. Off =
  /// trust the disk (the pre-fault-tolerance behaviour).
  bool verify_checksums = true;
  /// Optional chaos hook; fires before every physical read attempt.
  sim::FaultInjector* faults = nullptr;
};

struct TileReaderStats {
  long long reads = 0;       ///< successful tile reads
  long long retries = 0;     ///< physical re-reads after a transient failure
  long long transient_failures = 0;  ///< reads that exhausted the retry budget
  long long corrupt_tiles = 0;       ///< reads that hit persistent damage
};

class CheckedTileReader {
 public:
  /// `sums` may be absent (default StoreChecksums) — verification is then a
  /// no-op regardless of opt.verify_checksums. When present its tile grid
  /// must match the grid the caller reads on (the query engine snaps its
  /// block size to sums.tile for exactly this reason); rectangles that are
  /// not full sidecar tiles are read unverified.
  CheckedTileReader(const DistStore& store, StoreChecksums sums,
                    TileReaderOptions opt);

  /// Reads the rows×cols rectangle at (row0, col0) into dst (row-major,
  /// leading dimension cols), retrying/verifying per the options.
  /// (row_block, col_block) is the caller's grid coordinate for the tile; it
  /// is carried verbatim on any TileError so the caller can map the failure
  /// back to its own cache key.
  void read_tile(vidx_t row_block, vidx_t col_block, vidx_t row0, vidx_t col0,
                 vidx_t rows, vidx_t cols, dist_t* dst);

  const StoreChecksums& checksums() const { return sums_; }
  bool verifying() const;
  TileReaderStats stats() const;

 private:
  const DistStore& store_;
  StoreChecksums sums_;
  TileReaderOptions opt_;
  mutable std::mutex mu_;  ///< serializes store reads and guards stats
  TileReaderStats stats_;
};

}  // namespace gapsp::core
