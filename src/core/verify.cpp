#include "core/verify.h"

#include <set>
#include <sstream>
#include <vector>

#include "sssp/dijkstra.h"
#include "util/rng.h"

namespace gapsp::core {

VerifyReport verify_result(const graph::CsrGraph& g, const DistStore& store,
                           const ApspResult& result, int samples,
                           std::uint64_t seed) {
  VerifyReport rep;
  const vidx_t n = g.num_vertices();
  GAPSP_CHECK(store.n() == n, "store does not match graph");
  if (n == 0) return rep;

  std::set<vidx_t> rows{0, n - 1};
  Rng rng(seed);
  while (static_cast<int>(rows.size()) < std::min<int>(samples, n)) {
    rows.insert(static_cast<vidx_t>(rng.next_below(n)));
  }

  std::ostringstream detail;
  std::vector<dist_t> row(static_cast<std::size_t>(n));
  for (vidx_t u : rows) {
    const auto ref = sssp::dijkstra(g, u);
    store.read_block(result.stored_id(u), 0, 1, n, row.data(), row.size());
    ++rep.rows_checked;
    for (vidx_t v = 0; v < n; ++v) {
      ++rep.entries_checked;
      if (row[result.stored_id(v)] != ref[v]) {
        if (++rep.mismatches <= 5) {
          detail << "dist(" << u << "," << v << ") stored "
                 << row[result.stored_id(v)] << " expected " << ref[v]
                 << "\n";
        }
      }
    }
    // Zero diagonal, independently of the reference row.
    if (row[result.stored_id(u)] != 0) {
      ++rep.mismatches;
      detail << "dist(" << u << "," << u << ") != 0\n";
    }
  }
  rep.ok = rep.mismatches == 0;
  rep.detail = detail.str();
  return rep;
}

}  // namespace gapsp::core
