#include "core/z1_codec.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/checkpoint.h"  // fnv1a
#include "util/common.h"

namespace gapsp::core {
namespace {

constexpr std::size_t kFrameHeaderBytes = 16;  // u64 raw_len + u64 checksum
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
constexpr int kHashBits = 13;

// Probe tuning: inputs below kProbeMinLen skip the probe (compressing them
// is cheaper than being wrong), larger ones are sampled at ~kProbeSamples
// points. The entropy threshold sits near 8 bits/byte so only genuinely
// structureless data is rejected — a borderline tile still gets the full
// match pass rather than forfeiting ratio.
constexpr std::size_t kProbeMinLen = 1024;
constexpr std::size_t kProbeSamples = 4096;
constexpr double kProbeEntropyBits = 7.2;

std::uint32_t load32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::size_t hash32(std::uint32_t v) {
  return static_cast<std::size_t>((v * 2654435761u) >> (32 - kHashBits));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

void put_len_extension(std::vector<std::uint8_t>& out, std::size_t rem) {
  while (rem >= 255) {
    out.push_back(255);
    rem -= 255;
  }
  out.push_back(static_cast<std::uint8_t>(rem));
}

/// One sequence: literals then (unless final) a back-reference match.
void emit_sequence(std::vector<std::uint8_t>& out, const std::uint8_t* lit,
                   std::size_t nlit, std::size_t match_len,
                   std::size_t offset) {
  const std::size_t lit_nib = std::min<std::size_t>(nlit, 15);
  std::size_t match_nib = 0;
  if (match_len > 0) {
    match_nib = std::min<std::size_t>(match_len - kMinMatch, 15);
  }
  out.push_back(static_cast<std::uint8_t>((lit_nib << 4) | match_nib));
  if (lit_nib == 15) put_len_extension(out, nlit - 15);
  out.insert(out.end(), lit, lit + nlit);
  if (match_len == 0) return;  // final literal-only sequence: stream ends here
  out.push_back(static_cast<std::uint8_t>(offset & 0xff));
  out.push_back(static_cast<std::uint8_t>(offset >> 8));
  if (match_nib == 15) put_len_extension(out, match_len - kMinMatch - 15);
}

[[noreturn]] void bad_frame(const char* what) {
  // Typed CorruptError (not plain IoError): a malformed frame is persistent
  // damage — the serving tier quarantines/repairs instead of retrying.
  throw CorruptError(std::string("z1 frame: ") + what);
}

}  // namespace

bool z1_probe_compressible(const void* src_v, std::size_t len) {
  if (len < kProbeMinLen) return true;
  const auto* src = static_cast<const std::uint8_t*>(src_v);
  // Odd stride so the samples rotate through the byte lanes of any 4-byte
  // element structure instead of pinning to one lane.
  const std::size_t stride =
      std::max<std::size_t>(1, len / kProbeSamples) | 1u;
  std::uint32_t hist[256] = {};
  std::size_t count = 0;
  std::size_t periodic = 0;
  for (std::size_t i = 0; i < len; i += stride) {
    ++hist[src[i]];
    ++count;
    if (i >= 4 && src[i] == src[i - 4]) ++periodic;
  }
  // 4-byte-periodic mass (kInf runs, constant dist_t regions) compresses
  // regardless of what the byte histogram says.
  if (periodic * 2 >= count) return true;
  double entropy = 0.0;
  for (std::uint32_t c : hist) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(count);
    entropy -= p * std::log2(p);
  }
  return entropy < kProbeEntropyBits;
}

std::size_t z1_max_compressed_size(std::size_t len) {
  // Literal-only frame: header, token, 255-continuation extension, literals.
  return kFrameHeaderBytes + 1 + (len / 255 + 1) + len;
}

void z1_compress(const void* src_v, std::size_t len,
                 std::vector<std::uint8_t>& out) {
  const auto* src = static_cast<const std::uint8_t*>(src_v);
  out.clear();
  out.reserve(kFrameHeaderBytes + len / 4 + 64);
  GAPSP_CHECK(len < (1ull << 32) - 2, "z1 input too large");
  put_u64(out, len);
  put_u64(out, fnv1a(src, len));
  if (len == 0) return;

  if (!z1_probe_compressible(src, len)) {
    // Incompressible early-out: one literal-only sequence, no matching.
    emit_sequence(out, src, len, 0, 0);
    return;
  }

  std::vector<std::uint32_t> table(1u << kHashBits, 0);  // position + 1
  std::size_t pos = 0;
  std::size_t lit_start = 0;
  // Matches must not start within the last kMinMatch bytes (nothing to
  // compare a 4-byte probe against); those trail out as final literals.
  const std::size_t match_limit = len >= kMinMatch ? len - kMinMatch + 1 : 0;
  while (pos < match_limit) {
    std::size_t match_pos = 0;
    bool found = false;
    // Fast path for 4-byte-periodic runs: a tile of kInf (or any constant
    // dist_t region) matches itself at offset 4, so long runs are consumed
    // without probing the hash table at every byte.
    if (pos >= 4 && load32(src + pos) == load32(src + pos - 4)) {
      match_pos = pos - 4;
      found = true;
    } else {
      const std::uint32_t v = load32(src + pos);
      const std::size_t h = hash32(v);
      const std::uint32_t cand = table[h];
      table[h] = static_cast<std::uint32_t>(pos + 1);
      if (cand != 0) {
        const std::size_t c = cand - 1;
        if (pos - c <= kMaxOffset && load32(src + c) == v) {
          match_pos = c;
          found = true;
        }
      }
    }
    if (!found) {
      ++pos;
      continue;
    }
    std::size_t match_len = kMinMatch;
    while (pos + match_len < len &&
           src[match_pos + match_len] == src[pos + match_len]) {
      ++match_len;
    }
    emit_sequence(out, src + lit_start, pos - lit_start, match_len,
                  pos - match_pos);
    // Seed the table at the match head so the next occurrence of this
    // content is findable; skipping the interior keeps compression O(len).
    if (pos + match_len < match_limit) {
      table[hash32(load32(src + pos))] = static_cast<std::uint32_t>(pos + 1);
    }
    pos += match_len;
    lit_start = pos;
  }
  // The stream must end with a literal-only sequence (possibly empty): the
  // decoder recognizes the end of the frame as "input exhausted right after
  // the literals".
  emit_sequence(out, src + lit_start, len - lit_start, 0, 0);
}

std::vector<std::uint8_t> z1_compress(const void* src, std::size_t len) {
  std::vector<std::uint8_t> out;
  z1_compress(src, len, out);
  return out;
}

std::uint64_t z1_raw_size(const std::uint8_t* frame, std::size_t frame_len) {
  if (frame_len < kFrameHeaderBytes) bad_frame("truncated header");
  return get_u64(frame);
}

void z1_decompress(const std::uint8_t* frame, std::size_t frame_len,
                   void* dst_v, std::size_t dst_len) {
  if (frame_len < kFrameHeaderBytes) bad_frame("truncated header");
  const std::uint64_t raw_len = get_u64(frame);
  const std::uint64_t want_sum = get_u64(frame + 8);
  if (raw_len != dst_len) bad_frame("destination size mismatch");
  auto* dst = static_cast<std::uint8_t*>(dst_v);
  const std::uint8_t* ip = frame + kFrameHeaderBytes;
  const std::uint8_t* const end = frame + frame_len;
  std::size_t op = 0;

  // Bounds-checked 255-continuation length reader. The accumulated value is
  // capped by the output that could still legally be produced, so a
  // malicious run of 0xff bytes cannot overflow the accumulator.
  const auto read_extension = [&](std::size_t base) -> std::size_t {
    std::size_t v = base;
    while (true) {
      if (ip >= end) bad_frame("truncated length");
      const std::uint8_t b = *ip++;
      v += b;
      if (v > dst_len) bad_frame("length exceeds output");
      if (b != 255) return v;
    }
  };

  if (raw_len == 0) {
    if (ip != end) bad_frame("trailing bytes after empty frame");
    return;
  }
  while (true) {
    if (ip >= end) bad_frame("missing final sequence");
    const std::uint8_t token = *ip++;
    std::size_t nlit = token >> 4;
    if (nlit == 15) nlit = read_extension(15);
    if (nlit > static_cast<std::size_t>(end - ip)) bad_frame("literals overrun input");
    if (nlit > dst_len - op) bad_frame("literals overrun output");
    std::memcpy(dst + op, ip, nlit);
    ip += nlit;
    op += nlit;
    if (ip == end) break;  // final sequence carries no match
    if (end - ip < 2) bad_frame("truncated offset");
    const std::size_t offset =
        static_cast<std::size_t>(ip[0]) | (static_cast<std::size_t>(ip[1]) << 8);
    ip += 2;
    if (offset == 0 || offset > op) bad_frame("offset outside produced output");
    std::size_t match_len = (token & 0x0f) + kMinMatch;
    if ((token & 0x0f) == 15) match_len = read_extension(match_len);
    if (match_len > dst_len - op) bad_frame("match overruns output");
    // Byte-by-byte on purpose: offsets shorter than the match length copy
    // the run they are producing (the kInf fast path emits offset 4).
    const std::uint8_t* from = dst + op - offset;
    for (std::size_t i = 0; i < match_len; ++i) dst[op + i] = from[i];
    op += match_len;
  }
  if (op != raw_len) bad_frame("short output");
  if (fnv1a(dst, dst_len) != want_sum) bad_frame("content checksum mismatch");
}

}  // namespace gapsp::core
