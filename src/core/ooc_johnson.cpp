#include "core/ooc_johnson.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "core/checkpoint.h"
#include "core/transfer_codec.h"
#include "sim/stream_pipeline.h"
#include "sssp/bellman_ford.h"
#include "sssp/delta_stepping.h"
#include "sssp/near_far.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace gapsp::core {
namespace {

// Cost coefficients of the irregular MSSP kernel. One relax is a CSR edge
// read plus an atomicMin on a random dist entry plus worklist bookkeeping;
// uncoalesced accesses make the kernel strongly memory-bound.
constexpr double kOpsPerRelax = 4.0;
constexpr double kBytesPerRelax = 64.0;
constexpr double kIrregularEfficiency = 0.20;
// Child kernels of the dynamic-parallelism path traverse equally-partitioned
// edge-list chunks: the gathered per-vertex edge lists stream coalesced and
// the grid is full, so only the scattered distance updates pay an
// irregularity tax — roughly half of peak instead of a fifth.
constexpr double kChildEfficiency = 0.48;

class JohnsonRunner {
 public:
  JohnsonRunner(const graph::CsrGraph& g, const ApspOptions& opts)
      : g_(g), opts_(opts), dev_(opts.device), faults_(dev_, opts),
        pipe_(dev_, opts.overlap_transfers),
        codec_(dev_, opts.transfer_compression) {
    dev_.set_trace(opts.trace);
    configure_kernels(dev_, opts);
    bat_ = johnson_batch_size(dev_.spec(), g, opts.johnson_queue_factor,
                              opts.overlap_transfers ? 2 : 1);
    nb_ = static_cast<int>(
        (static_cast<std::int64_t>(g.num_vertices()) + bat_ - 1) / bat_);
    dg_ = upload_graph(dev_, pipe_.compute_stream(), g);
    rows_.emplace(pipe_,
                  static_cast<std::size_t>(bat_) * g.num_vertices(),
                  "dist rows");
    const auto queue_elems = static_cast<std::size_t>(
        opts.johnson_queue_factor * static_cast<double>(g.num_edges()) * bat_);
    // The worklists are scratch of the running batch only — the writeback
    // never touches them, so they stay single-buffered.
    worklists_ = dev_.alloc<dist_t>(queue_elems, "near/far worklists");
  }

  int bat() const { return bat_; }
  int num_batches() const { return nb_; }
  sim::Device& device() { return dev_; }

  /// Ends the pipelined phase: waits out the last writeback.
  void finish() {
    pipe_.drain();
    dev_.synchronize();
  }

  struct BatchTimes {
    double kernel_s = 0.0;
    double transfer_s = 0.0;
  };

  /// Runs batch `bi` (sources [bi·bat, ...)); returns simulated seconds of
  /// the MSSP kernel and the result transfer. Rows land in `store` if
  /// non-null. With overlap_transfers the previous batch's rows drain on the
  /// D2H lane while this batch's MSSP kernel runs.
  BatchTimes run_batch(int bi, DistStore* store) {
    const vidx_t n = g_.num_vertices();
    const vidx_t s0 = static_cast<vidx_t>(bi) * bat_;
    const vidx_t cnt = std::min<vidx_t>(bat_, n - s0);
    GAPSP_CHECK(cnt > 0, "empty batch");
    // The kernel (on compute) waits until the slot's previous writeback
    // drained before it may rewrite the rows.
    const int slot = rows_->acquire(pipe_.compute_stream());
    dist_t* dist_rows = rows_->device_ptr(slot);

    sssp::NearFarConfig nf;
    nf.delta = opts_.delta;
    nf.heavy_degree_threshold =
        opts_.dynamic_parallelism ? opts_.heavy_degree_threshold : 0;

    // Per-instance work counters, filled by whichever SSSP kernel runs.
    struct InstanceStats {
      long long relax = 0;
      long long heavy = 0;
      long long processed = 0;  ///< worklist pops / bucket entries
    };
    std::vector<InstanceStats> stats(static_cast<std::size_t>(cnt));
    const SsspKernel kernel = opts_.sssp_kernel;
    const double kernel_s = dev_.launch(
        pipe_.compute_stream(), "MSSP", [&](sim::LaunchCtx& ctx) {
          // One SSSP instance per thread block (Algorithm 2's MSSP kernel).
          ThreadPool::global().parallel_for(
              static_cast<std::size_t>(cnt), [&](std::size_t i) {
                std::span<dist_t> row(
                    dist_rows + i * static_cast<std::size_t>(n),
                    static_cast<std::size_t>(n));
                const vidx_t src = s0 + static_cast<vidx_t>(i);
                switch (kernel) {
                  case SsspKernel::kNearFar: {
                    const auto st = sssp::near_far_sssp(g_, src, row, nf);
                    stats[i] = {st.relaxations, st.heavy_relaxations,
                                st.vertices_processed};
                    break;
                  }
                  case SsspKernel::kDeltaStepping: {
                    const auto r = sssp::delta_stepping(g_, src, opts_.delta);
                    std::copy(r.dist.begin(), r.dist.end(), row.begin());
                    // Full delta-stepping: same relaxation work, but every
                    // bucket processed costs device-wide reorganization
                    // (compaction + scan) — the "expensive organization"
                    // of Sec. II-B / [24].
                    stats[i] = {r.relaxations, 0,
                                static_cast<long long>(r.buckets_processed) *
                                    256};
                    break;
                  }
                  case SsspKernel::kBellmanFord: {
                    const auto r = sssp::bellman_ford(g_, src);
                    std::copy(r.dist.begin(), r.dist.end(), row.begin());
                    // Redundant whole-edge-list sweeps: far more relax work,
                    // counted honestly from the functional run.
                    stats[i] = {r.relaxations, 0, r.rounds};
                    break;
                  }
                }
              });
          long long relax = 0, heavy = 0, processed = 0;
          for (const auto& st : stats) {
            relax += st.relax;
            heavy += st.heavy;
            processed += st.processed;
          }
          const long long light = relax - heavy;
          if (heavy > 0) {
            // Dynamic parallelism: a child kernel gathers the heavy edge
            // lists, a second one traverses the equal-size partitions at
            // full occupancy (Sec. III-B).
            sim::KernelProfile gather;
            gather.ops = static_cast<double>(heavy);
            gather.bytes = 8.0 * static_cast<double>(heavy);
            gather.blocks = dev_.spec().max_active_blocks;
            ctx.child_launch(gather);
            sim::KernelProfile traverse;
            traverse.ops = kOpsPerRelax * static_cast<double>(heavy);
            traverse.bytes = kBytesPerRelax * static_cast<double>(heavy);
            traverse.blocks = dev_.spec().max_active_blocks;
            traverse.efficiency = kChildEfficiency;
            ctx.child_launch(traverse);
          }
          sim::KernelProfile p;
          p.ops = kOpsPerRelax * static_cast<double>(light) +
                  2.0 * static_cast<double>(processed);
          p.bytes = kBytesPerRelax * static_cast<double>(light) +
                    sizeof(dist_t) * 2.0 * static_cast<double>(n) * cnt;
          p.blocks = static_cast<int>(cnt);
          switch (kernel) {
            case SsspKernel::kNearFar:
              p.efficiency = kIrregularEfficiency;
              break;
            case SsspKernel::kDeltaStepping:
              // Bucket reorganization adds divergence on top of the
              // irregular relaxations.
              p.efficiency = 0.15;
              break;
            case SsspKernel::kBellmanFord:
              // Whole-edge-list sweeps are regular and coalesce well — the
              // (much larger) relax count is the real cost.
              p.efficiency = 0.35;
              break;
          }
          return p;
        });

    const std::size_t bytes =
        static_cast<std::size_t>(cnt) * static_cast<std::size_t>(n) *
        sizeof(dist_t);
    const sim::Event drained = codec_.stage_out(
        pipe_, rows_->host_ptr(slot), dist_rows, bytes, pipe_.computed());
    if (store != nullptr) {
      store->write_block(s0, 0, cnt, n, rows_->host_ptr(slot),
                         static_cast<std::size_t>(n));
    }
    rows_->release(slot, drained);
    // Report what the timeline was actually charged: the wire bytes of the
    // frame plus the on-device encode when the batch compressed, so sampled
    // estimates see the compressed regime (DESIGN.md §14).
    double transfer_s =
        dev_.transfer_time(codec_.last_wire_bytes(), /*pinned=*/true);
    if (codec_.last_wire_bytes() != bytes) transfer_s += dev_.decode_time(bytes);
    return BatchTimes{kernel_s, transfer_s};
  }

 private:
  const graph::CsrGraph& g_;
  ApspOptions opts_;
  sim::Device dev_;
  // Attached before upload_graph in the ctor body so even the CSR upload is
  // subject to the fault schedule.
  FaultScope faults_;
  sim::StreamPipeline pipe_;
  TransferCodec codec_;
  DeviceGraph dg_;
  // Deferred because its size depends on bat_, computed in the ctor body.
  std::optional<sim::PingPong<dist_t>> rows_;
  sim::DeviceBuffer<dist_t> worklists_;
  int bat_ = 0;
  int nb_ = 0;
};

}  // namespace

int johnson_batch_size(const sim::DeviceSpec& spec, const graph::CsrGraph& g,
                       double queue_factor, int row_buffers) {
  const double L = 0.95 * static_cast<double>(spec.memory_bytes);
  const double S =
      static_cast<double>(g.offsets().size() * sizeof(eidx_t) +
                          static_cast<std::size_t>(g.num_edges()) *
                              (sizeof(vidx_t) + sizeof(dist_t)));
  // Only the dist rows double up under overlap; the worklists belong to the
  // running batch alone.
  const double per_instance =
      sizeof(dist_t) * (row_buffers * static_cast<double>(g.num_vertices()) +
                        queue_factor * static_cast<double>(g.num_edges()));
  const double bat = (L - S) / per_instance;
  GAPSP_CHECK(bat >= 1.0,
              "graph too large for even one SSSP instance on " + spec.name);
  return static_cast<int>(
      std::min<double>(bat, static_cast<double>(g.num_vertices())));
}

ApspResult ooc_johnson(const graph::CsrGraph& g, const ApspOptions& opts,
                       DistStore& store) {
  Timer wall;
  GAPSP_CHECK(store.n() == g.num_vertices(), "store size mismatch");
  JohnsonRunner runner(g, opts);

  // Per-batch checkpointing: each batch fully overwrites its block of rows
  // in the store, so completed-batch count is the whole recovery state.
  const bool use_ck = !opts.checkpoint_path.empty();
  std::uint64_t fp = 0;
  int start_bi = 0;
  long long ck_written = 0;
  if (use_ck) {
    fp = graph_fingerprint(g);
    const std::int64_t shape[3] = {g.num_vertices(), runner.bat(),
                                   runner.num_batches()};
    fp = fnv1a(shape, sizeof(shape), fp);
    Checkpoint ck;
    if (opts.resume && read_checkpoint(opts.checkpoint_path, &ck) &&
        ck.algorithm == static_cast<std::uint32_t>(Algorithm::kJohnson) &&
        ck.fingerprint == fp && ck.n == g.num_vertices() &&
        ck.aux0 == runner.bat() && ck.aux1 == runner.num_batches()) {
      start_bi = static_cast<int>(
          std::clamp<std::int64_t>(ck.progress, 0, runner.num_batches()));
    }
  }

  for (int bi = start_bi; bi < runner.num_batches(); ++bi) {
    runner.run_batch(bi, &store);
    if (use_ck) {
      Checkpoint ck;
      ck.algorithm = static_cast<std::uint32_t>(Algorithm::kJohnson);
      ck.fingerprint = fp;
      ck.n = g.num_vertices();
      ck.progress = bi + 1;
      ck.aux0 = runner.bat();
      ck.aux1 = runner.num_batches();
      write_checkpoint(opts.checkpoint_path, ck);
      ++ck_written;
    }
  }
  runner.finish();
  if (use_ck) remove_checkpoint(opts.checkpoint_path);
  ApspResult result;
  result.used = Algorithm::kJohnson;
  result.metrics = metrics_from_device(runner.device(), wall.seconds());
  result.metrics.johnson_batch_size = runner.bat();
  result.metrics.johnson_num_batches = runner.num_batches();
  result.metrics.checkpoints_written = ck_written;
  result.metrics.resumed_progress = start_bi;
  return result;
}

JohnsonSample johnson_sample_batches(const graph::CsrGraph& g,
                                     const ApspOptions& opts,
                                     std::span<const int> batches) {
  JohnsonRunner runner(g, opts);
  JohnsonSample sample;
  sample.bat = runner.bat();
  sample.num_batches = runner.num_batches();
  for (int bi : batches) {
    GAPSP_CHECK(bi >= 0 && bi < runner.num_batches(), "batch index range");
    const auto times = runner.run_batch(bi, nullptr);
    sample.kernel_seconds += times.kernel_s;
    sample.transfer_seconds += times.transfer_s;
    ++sample.sampled;
  }
  runner.finish();
  return sample;
}

}  // namespace gapsp::core
