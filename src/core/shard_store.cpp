#include "core/shard_store.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "core/checkpoint.h"  // fnv1a
#include "core/compressed_store.h"
#include "core/z1_codec.h"
#include "util/timer.h"

namespace gapsp::core {
namespace {

constexpr char kManifestMagic[8] = {'G', 'A', 'P', 'S', 'P', 'S', 'H', '1'};
constexpr char kShardMagic[8] = {'G', 'A', 'P', 'S', 'P', 'S', 'D', '1'};
constexpr std::uint64_t kFlagCompressed = 1;

struct ManifestHeader {
  char magic[8];
  std::int64_t n;
  std::int64_t tile;
  std::int64_t num_shards;
  std::uint64_t flags;
  std::uint64_t dir_checksum;  ///< fnv1a over the entry array
  std::uint64_t reserved[2];
};
static_assert(sizeof(ManifestHeader) == 64, "GAPSPSH1 header layout drifted");

struct ManifestEntry {
  std::int64_t row_begin;
  std::int64_t row_end;
  std::uint64_t bytes;
  std::uint64_t checksum;
};
static_assert(sizeof(ManifestEntry) == 32, "GAPSPSH1 entry layout drifted");

struct ShardHeader {
  char magic[8];
  std::int64_t n;
  std::int64_t tile;
  std::int64_t row_begin;
  std::int64_t row_end;
  std::uint64_t flags;
  std::uint64_t dir_checksum;  ///< z1 payload: fnv1a over the directory; raw: 0
  std::uint64_t reserved;
};
static_assert(sizeof(ShardHeader) == 64, "GAPSPSD1 header layout drifted");

struct SliceDirEntry {
  std::uint64_t offset = 0;  ///< absolute shard-file offset of the frame
  std::uint64_t bytes = 0;   ///< 0 = all-kInf tile, nothing stored
};
static_assert(sizeof(SliceDirEntry) == 16, "GAPSPSD1 directory layout drifted");

/// RAII stdio handle (mirrors compressed_store.cpp) so error paths cannot
/// leak.
struct File {
  std::FILE* f = nullptr;
  explicit File(std::FILE* f) : f(f) {}
  ~File() {
    if (f != nullptr) std::fclose(f);
  }
  std::FILE* release() {
    std::FILE* out = f;
    f = nullptr;
    return out;
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
};

std::uint64_t file_size_of(std::FILE* f, const std::string& path) {
  if (std::fseek(f, 0, SEEK_END) != 0) {
    throw IoError(path + ": seek failed");
  }
  const long bytes = std::ftell(f);
  GAPSP_CHECK(bytes >= 0, "ftell failed on " + path);
  return static_cast<std::uint64_t>(bytes);
}

/// Streams the whole file through fnv1a. Also reports the size.
std::uint64_t checksum_file(const std::string& path, std::uint64_t& bytes_out) {
  File file(std::fopen(path.c_str(), "rb"));
  if (file.f == nullptr) {
    throw IoError("cannot open shard file " + path);
  }
  std::vector<std::uint8_t> buf(1u << 20);
  std::uint64_t sum = fnv1a(nullptr, 0);
  std::uint64_t total = 0;
  for (;;) {
    const std::size_t got = std::fread(buf.data(), 1, buf.size(), file.f);
    if (got == 0) break;
    sum = fnv1a(buf.data(), got, sum);
    total += got;
  }
  if (std::ferror(file.f) != 0) {
    throw IoError(path + ": read failed while checksumming");
  }
  bytes_out = total;
  return sum;
}

/// Balanced row ranges: B tile rows split as evenly as whole tiles allow,
/// remainder tiles going to the leading shards. The last shard's range is
/// ragged when tile does not divide n.
std::vector<ShardRange> split_rows(vidx_t n, vidx_t tile, int num_shards) {
  const long long blocks = (static_cast<long long>(n) + tile - 1) / tile;
  GAPSP_CHECK(num_shards >= 1, "need at least one shard");
  GAPSP_CHECK(num_shards <= blocks,
              "more shards than tile rows: " + std::to_string(num_shards) +
                  " shards over " + std::to_string(blocks) +
                  " tile rows of " + std::to_string(tile));
  const long long base = blocks / num_shards;
  const long long rem = blocks % num_shards;
  std::vector<ShardRange> out(static_cast<std::size_t>(num_shards));
  long long cursor = 0;
  for (int i = 0; i < num_shards; ++i) {
    const long long take = base + (i < rem ? 1 : 0);
    out[static_cast<std::size_t>(i)].row_begin =
        static_cast<vidx_t>(cursor * tile);
    cursor += take;
    out[static_cast<std::size_t>(i)].row_end = static_cast<vidx_t>(
        std::min<long long>(n, cursor * tile));
  }
  return out;
}

void write_exact(std::FILE* f, const void* data, std::size_t bytes,
                 const std::string& path) {
  if (bytes != 0 && std::fwrite(data, 1, bytes, f) != bytes) {
    throw IoError(path + ": short write");
  }
}

void read_exact(std::FILE* f, void* data, std::size_t bytes,
                const std::string& path) {
  if (bytes != 0 && std::fread(data, 1, bytes, f) != bytes) {
    throw IoError(path + ": short read");
  }
}

void seek_to(std::FILE* f, std::uint64_t offset, const std::string& path) {
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0) {
    throw IoError(path + ": seek failed");
  }
}

/// Atomically replaces `path` with the fully-written tmp file.
void commit_tmp(const std::string& tmp, const std::string& path) {
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("cannot rename " + tmp + " to " + path);
  }
}

/// Writes one raw shard file: header + the source's byte range for rows
/// [row_begin, row_end), copied through a bounded buffer.
void write_raw_shard(const DistStore& src, const std::string& out_path,
                     vidx_t tile, const ShardRange& r) {
  const std::string tmp = out_path + ".tmp";
  File file(std::fopen(tmp.c_str(), "wb"));
  if (file.f == nullptr) {
    throw IoError("cannot create " + tmp);
  }
  ShardHeader h{};
  std::memcpy(h.magic, kShardMagic, sizeof(kShardMagic));
  h.n = src.n();
  h.tile = tile;
  h.row_begin = r.row_begin;
  h.row_end = r.row_end;
  write_exact(file.f, &h, sizeof(h), tmp);

  const vidx_t n = src.n();
  const vidx_t chunk_rows = std::max<vidx_t>(
      1, static_cast<vidx_t>((1u << 20) / (static_cast<std::size_t>(n) *
                                           sizeof(dist_t)) +
                             1));
  std::vector<dist_t> buf(static_cast<std::size_t>(chunk_rows) * n);
  for (vidx_t row = r.row_begin; row < r.row_end; row += chunk_rows) {
    const vidx_t rows = std::min<vidx_t>(chunk_rows, r.row_end - row);
    src.read_block(row, 0, rows, n, buf.data(), static_cast<std::size_t>(n));
    write_exact(file.f, buf.data(),
                static_cast<std::size_t>(rows) * n * sizeof(dist_t), tmp);
  }
  if (std::fflush(file.f) != 0) {
    throw IoError(tmp + ": flush failed");
  }
  std::fclose(file.release());
  commit_tmp(tmp, out_path);
}

/// Writes one GAPSPZ1-sliced shard file: the source directory rows for the
/// shard's tile rows with offsets rebased, then the frames copied verbatim.
void write_z1_shard(std::FILE* src, const std::string& src_path,
                    const CompressedDirectory& dir, const std::string& out_path,
                    const ShardRange& r) {
  const vidx_t tps = dir.tiles_per_side;
  const vidx_t bb0 = r.row_begin / dir.tile;
  const vidx_t bb1 = (r.row_end + dir.tile - 1) / dir.tile;
  const std::size_t entries =
      static_cast<std::size_t>(bb1 - bb0) * static_cast<std::size_t>(tps);

  std::vector<SliceDirEntry> slice(entries);
  std::uint64_t cursor = sizeof(ShardHeader) + entries * sizeof(SliceDirEntry);
  for (std::size_t i = 0; i < entries; ++i) {
    const CompressedTileEntry& e =
        dir.entries[static_cast<std::size_t>(bb0) * tps + i];
    slice[i].bytes = e.bytes;
    slice[i].offset = e.bytes == 0 ? 0 : cursor;
    cursor += e.bytes;
  }

  const std::string tmp = out_path + ".tmp";
  File file(std::fopen(tmp.c_str(), "wb"));
  if (file.f == nullptr) {
    throw IoError("cannot create " + tmp);
  }
  ShardHeader h{};
  std::memcpy(h.magic, kShardMagic, sizeof(kShardMagic));
  h.n = dir.n;
  h.tile = dir.tile;
  h.row_begin = r.row_begin;
  h.row_end = r.row_end;
  h.flags = kFlagCompressed;
  h.dir_checksum = fnv1a(slice.data(), entries * sizeof(SliceDirEntry));
  write_exact(file.f, &h, sizeof(h), tmp);
  write_exact(file.f, slice.data(), entries * sizeof(SliceDirEntry), tmp);

  std::vector<std::uint8_t> frame;
  for (std::size_t i = 0; i < entries; ++i) {
    const CompressedTileEntry& e =
        dir.entries[static_cast<std::size_t>(bb0) * tps + i];
    if (e.bytes == 0) continue;
    frame.resize(e.bytes);
    seek_to(src, e.offset, src_path);
    read_exact(src, frame.data(), e.bytes, src_path);
    write_exact(file.f, frame.data(), e.bytes, tmp);
  }
  if (std::fflush(file.f) != 0) {
    throw IoError(tmp + ": flush failed");
  }
  std::fclose(file.release());
  commit_tmp(tmp, out_path);
}

void save_manifest(const std::string& path, const ShardManifest& m) {
  std::vector<ManifestEntry> entries(m.shards.size());
  for (std::size_t i = 0; i < m.shards.size(); ++i) {
    entries[i].row_begin = m.shards[i].row_begin;
    entries[i].row_end = m.shards[i].row_end;
    entries[i].bytes = m.shards[i].bytes;
    entries[i].checksum = m.shards[i].checksum;
  }
  ManifestHeader h{};
  std::memcpy(h.magic, kManifestMagic, sizeof(kManifestMagic));
  h.n = m.n;
  h.tile = m.tile;
  h.num_shards = m.num_shards();
  h.flags = m.compressed ? kFlagCompressed : 0;
  h.dir_checksum = fnv1a(entries.data(), entries.size() * sizeof(ManifestEntry));

  const std::string tmp = path + ".tmp";
  File file(std::fopen(tmp.c_str(), "wb"));
  if (file.f == nullptr) {
    throw IoError("cannot create " + tmp);
  }
  write_exact(file.f, &h, sizeof(h), tmp);
  write_exact(file.f, entries.data(), entries.size() * sizeof(ManifestEntry),
              tmp);
  if (std::fflush(file.f) != 0) {
    throw IoError(tmp + ": flush failed");
  }
  std::fclose(file.release());
  commit_tmp(tmp, path);
}

/// Read-only DistStore over one shard file. Full dimension n; rows outside
/// the shard's range throw IoError so routing bugs surface typed. Both
/// payload formats report the manifest tile as tile_size() — the serving
/// cache grid must align to shard boundaries, and a raw slice reporting 0
/// would let the engine pick a block size that straddles them.
class ShardSliceStore final : public DistStore {
 public:
  ShardSliceStore(std::FILE* f, std::string path, vidx_t n, vidx_t tile,
                  vidx_t row_begin, vidx_t row_end,
                  std::vector<SliceDirEntry> dir)
      : DistStore(n),
        f_(f),
        path_(std::move(path)),
        tile_(tile),
        row_begin_(row_begin),
        row_end_(row_end),
        dir_(std::move(dir)),
        tiles_per_side_((n + tile - 1) / tile),
        first_block_(row_begin / tile) {}

  ~ShardSliceStore() override {
    if (f_ != nullptr) std::fclose(f_);
  }

  void write_block(vidx_t, vidx_t, vidx_t, vidx_t, const dist_t*,
                   std::size_t) override {
    throw IoError(path_ + ": shard slices are read-only");
  }

  void read_block(vidx_t row0, vidx_t col0, vidx_t rows, vidx_t cols,
                  dist_t* dst, std::size_t dst_ld) const override {
    check_block(row0, col0, rows, cols);
    if (rows == 0 || cols == 0) return;
    check_owned(row0, rows);
    if (dir_.empty()) {
      read_raw(row0, col0, rows, cols, dst, dst_ld);
    } else {
      read_z1(row0, col0, rows, cols, dst, dst_ld);
    }
  }

  vidx_t tile_size() const override { return tile_; }

  bool block_known_inf(vidx_t row0, vidx_t col0, vidx_t rows,
                       vidx_t cols) const override {
    check_block(row0, col0, rows, cols);
    if (dir_.empty() || rows == 0 || cols == 0) return false;
    if (row0 < row_begin_ || row0 + rows > row_end_) return false;
    const vidx_t bi0 = row0 / tile_;
    const vidx_t bi1 = (row0 + rows - 1) / tile_;
    const vidx_t bj0 = col0 / tile_;
    const vidx_t bj1 = (col0 + cols - 1) / tile_;
    for (vidx_t bi = bi0; bi <= bi1; ++bi) {
      for (vidx_t bj = bj0; bj <= bj1; ++bj) {
        if (entry(bi, bj).bytes != 0) return false;
      }
    }
    return true;
  }

 private:
  void check_owned(vidx_t row0, vidx_t rows) const {
    if (row0 < row_begin_ || row0 + rows > row_end_) {
      throw IoError(path_ + ": rows [" + std::to_string(row0) + ", " +
                    std::to_string(row0 + rows) + ") outside shard rows [" +
                    std::to_string(row_begin_) + ", " +
                    std::to_string(row_end_) +
                    ") — route the query to the owning shard");
    }
  }

  const SliceDirEntry& entry(vidx_t bi, vidx_t bj) const {
    return dir_[static_cast<std::size_t>(bi - first_block_) * tiles_per_side_ +
                bj];
  }

  void read_raw(vidx_t row0, vidx_t col0, vidx_t rows, vidx_t cols,
                dist_t* dst, std::size_t dst_ld) const {
    const std::uint64_t row_bytes =
        static_cast<std::uint64_t>(n()) * sizeof(dist_t);
    if (cols == n() && dst_ld == static_cast<std::size_t>(cols)) {
      seek_to(f_, sizeof(ShardHeader) +
                      static_cast<std::uint64_t>(row0 - row_begin_) * row_bytes,
              path_);
      read_exact(f_, dst, static_cast<std::size_t>(rows) * cols * sizeof(dist_t),
                 path_);
      return;
    }
    for (vidx_t r = 0; r < rows; ++r) {
      seek_to(f_,
              sizeof(ShardHeader) +
                  static_cast<std::uint64_t>(row0 - row_begin_ + r) * row_bytes +
                  static_cast<std::uint64_t>(col0) * sizeof(dist_t),
              path_);
      read_exact(f_, dst + static_cast<std::size_t>(r) * dst_ld,
                 static_cast<std::size_t>(cols) * sizeof(dist_t), path_);
    }
  }

  void read_z1(vidx_t row0, vidx_t col0, vidx_t rows, vidx_t cols, dist_t* dst,
               std::size_t dst_ld) const {
    const vidx_t bi0 = row0 / tile_;
    const vidx_t bi1 = (row0 + rows - 1) / tile_;
    const vidx_t bj0 = col0 / tile_;
    const vidx_t bj1 = (col0 + cols - 1) / tile_;
    for (vidx_t bi = bi0; bi <= bi1; ++bi) {
      for (vidx_t bj = bj0; bj <= bj1; ++bj) {
        const vidx_t tr0 = bi * tile_;
        const vidx_t tc0 = bj * tile_;
        const vidx_t trows = std::min<vidx_t>(tile_, n() - tr0);
        const vidx_t tcols = std::min<vidx_t>(tile_, n() - tc0);
        const vidx_t r0 = std::max(row0, tr0);
        const vidx_t r1 = std::min(row0 + rows, tr0 + trows);
        const vidx_t c0 = std::max(col0, tc0);
        const vidx_t c1 = std::min(col0 + cols, tc0 + tcols);
        const SliceDirEntry& e = entry(bi, bj);
        if (e.bytes == 0) {
          for (vidx_t r = r0; r < r1; ++r) {
            dist_t* out = dst + static_cast<std::size_t>(r - row0) * dst_ld +
                          (c0 - col0);
            std::fill(out, out + (c1 - c0), kInf);
          }
          continue;
        }
        decode_tile(bi, bj, e, trows, tcols);
        for (vidx_t r = r0; r < r1; ++r) {
          const dist_t* in = memo_tile_.data() +
                             static_cast<std::size_t>(r - tr0) * tcols +
                             (c0 - tc0);
          std::copy(in, in + (c1 - c0),
                    dst + static_cast<std::size_t>(r - row0) * dst_ld +
                        (c0 - col0));
        }
      }
    }
  }

  /// Decompresses the (bi, bj) tile into the single-tile memo, reusing the
  /// previous decode when the same tile is read again (row sweeps hit every
  /// tile `tile_` consecutive times).
  void decode_tile(vidx_t bi, vidx_t bj, const SliceDirEntry& e, vidx_t trows,
                   vidx_t tcols) const {
    if (memo_bi_ == bi && memo_bj_ == bj) return;
    frame_.resize(e.bytes);
    seek_to(f_, e.offset, path_);
    read_exact(f_, frame_.data(), e.bytes, path_);
    const std::size_t raw = static_cast<std::size_t>(trows) * tcols;
    if (z1_raw_size(frame_.data(), frame_.size()) != raw * sizeof(dist_t)) {
      throw CorruptError(path_ + ": tile (" + std::to_string(bi) + ", " +
                         std::to_string(bj) + ") frame does not decode to " +
                         std::to_string(raw * sizeof(dist_t)) + " bytes");
    }
    memo_tile_.resize(raw);
    z1_decompress(frame_.data(), frame_.size(), memo_tile_.data(),
                  raw * sizeof(dist_t));
    memo_bi_ = bi;
    memo_bj_ = bj;
  }

  std::FILE* f_ = nullptr;
  std::string path_;
  vidx_t tile_;
  vidx_t row_begin_;
  vidx_t row_end_;
  std::vector<SliceDirEntry> dir_;  ///< empty = raw payload
  vidx_t tiles_per_side_;
  vidx_t first_block_;
  mutable std::vector<std::uint8_t> frame_;
  mutable std::vector<dist_t> memo_tile_;
  mutable vidx_t memo_bi_ = -1;
  mutable vidx_t memo_bj_ = -1;
};

}  // namespace

int ShardManifest::shard_of_row(vidx_t stored_row) const {
  if (stored_row < 0 || stored_row >= n || shards.empty()) return -1;
  int lo = 0;
  int hi = num_shards() - 1;
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (stored_row < shards[static_cast<std::size_t>(mid)].row_end) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  const ShardRange& r = shards[static_cast<std::size_t>(lo)];
  return stored_row >= r.row_begin && stored_row < r.row_end ? lo : -1;
}

std::string shard_manifest_path(const std::string& store_path) {
  return store_path + ".shards";
}

std::string shard_file_path(const std::string& store_path, int shard) {
  return store_path + ".shard." + std::to_string(shard);
}

ShardManifest shard_store_file(const std::string& store_path, int num_shards,
                               vidx_t tile, ShardingStats* stats) {
  Timer timer;
  ShardManifest m;
  m.compressed = is_compressed_store(store_path);
  if (m.compressed) {
    // Frames are copied verbatim, so the source tiling is the only valid
    // routing granularity; the caller's `tile` is for raw sources.
    const CompressedDirectory dir = read_compressed_directory(store_path);
    m.n = dir.n;
    m.tile = dir.tile;
    m.shards = split_rows(m.n, m.tile, num_shards);
    File src(std::fopen(store_path.c_str(), "rb"));
    if (src.f == nullptr) {
      throw IoError("cannot open dist store file " + store_path);
    }
    for (int k = 0; k < num_shards; ++k) {
      write_z1_shard(src.f, store_path, dir, shard_file_path(store_path, k),
                     m.shards[static_cast<std::size_t>(k)]);
    }
  } else {
    const auto src = open_file_store(store_path);
    GAPSP_CHECK(tile > 0, "shard tile must be positive");
    m.n = src->n();
    m.tile = std::min(tile, m.n);
    m.shards = split_rows(m.n, m.tile, num_shards);
    for (int k = 0; k < num_shards; ++k) {
      write_raw_shard(*src, shard_file_path(store_path, k), m.tile,
                      m.shards[static_cast<std::size_t>(k)]);
    }
  }

  std::uint64_t total = 0;
  for (int k = 0; k < num_shards; ++k) {
    ShardRange& r = m.shards[static_cast<std::size_t>(k)];
    r.checksum = checksum_file(shard_file_path(store_path, k), r.bytes);
    total += r.bytes;
  }
  const std::string manifest = shard_manifest_path(store_path);
  save_manifest(manifest, m);
  {
    File f(std::fopen(manifest.c_str(), "rb"));
    if (f.f != nullptr) total += file_size_of(f.f, manifest);
  }
  if (stats != nullptr) {
    stats->shards = num_shards;
    stats->compressed = m.compressed;
    stats->bytes_written = total;
    stats->seconds = timer.seconds();
  }
  return m;
}

bool load_shard_manifest(const std::string& path, ShardManifest& out) {
  File file(std::fopen(path.c_str(), "rb"));
  if (file.f == nullptr) return false;
  ManifestHeader h{};
  if (std::fread(&h, sizeof(h), 1, file.f) != 1) {
    throw CorruptError(path + ": short read of GAPSPSH1 header");
  }
  if (std::memcmp(h.magic, kManifestMagic, sizeof(kManifestMagic)) != 0) {
    throw CorruptError(path + ": not a GAPSPSH1 shard manifest");
  }
  if (h.n <= 0 || h.tile <= 0 || h.tile > h.n || h.num_shards < 1 ||
      h.num_shards > (h.n + h.tile - 1) / h.tile) {
    throw CorruptError(path + ": implausible shard manifest geometry");
  }
  std::vector<ManifestEntry> entries(static_cast<std::size_t>(h.num_shards));
  read_exact(file.f, entries.data(), entries.size() * sizeof(ManifestEntry),
             path);
  if (fnv1a(entries.data(), entries.size() * sizeof(ManifestEntry)) !=
      h.dir_checksum) {
    throw CorruptError(path + ": shard manifest checksum mismatch");
  }
  ShardManifest m;
  m.n = static_cast<vidx_t>(h.n);
  m.tile = static_cast<vidx_t>(h.tile);
  m.compressed = (h.flags & kFlagCompressed) != 0;
  std::int64_t cursor = 0;
  for (const ManifestEntry& e : entries) {
    if (e.row_begin != cursor || e.row_end <= e.row_begin ||
        e.row_begin % h.tile != 0) {
      throw CorruptError(path + ": shard row ranges not contiguous");
    }
    cursor = e.row_end;
    m.shards.push_back({static_cast<vidx_t>(e.row_begin),
                        static_cast<vidx_t>(e.row_end), e.bytes, e.checksum});
  }
  if (cursor != h.n) {
    throw CorruptError(path + ": shard row ranges do not cover the matrix");
  }
  out = std::move(m);
  return true;
}

std::unique_ptr<DistStore> open_shard_slice(const std::string& store_path,
                                            const ShardManifest& manifest,
                                            int k, bool verify) {
  GAPSP_CHECK(manifest.present(), "shard manifest is empty");
  GAPSP_CHECK(k >= 0 && k < manifest.num_shards(),
              "shard " + std::to_string(k) + " out of range [0, " +
                  std::to_string(manifest.num_shards()) + ")");
  const ShardRange& r = manifest.shards[static_cast<std::size_t>(k)];
  const std::string path = shard_file_path(store_path, k);
  if (verify) {
    std::uint64_t bytes = 0;
    const std::uint64_t sum = checksum_file(path, bytes);
    if (bytes != r.bytes) {
      throw CorruptError(path + ": shard file does not match its manifest (" +
                         std::to_string(bytes) + " bytes vs " +
                         std::to_string(r.bytes) + " expected)");
    }
    if (sum != r.checksum) {
      throw CorruptError(path +
                         ": shard file checksum mismatch against its "
                         "manifest — the slice is damaged; re-run `apsp_cli "
                         "shard` to rebuild it");
    }
  }
  File file(std::fopen(path.c_str(), "rb"));
  if (file.f == nullptr) {
    throw IoError("cannot open shard file " + path);
  }
  const std::uint64_t file_bytes = file_size_of(file.f, path);
  seek_to(file.f, 0, path);
  ShardHeader h{};
  if (std::fread(&h, sizeof(h), 1, file.f) != 1) {
    throw CorruptError(path + ": short read of GAPSPSD1 header");
  }
  if (std::memcmp(h.magic, kShardMagic, sizeof(kShardMagic)) != 0) {
    throw CorruptError(path + ": not a GAPSPSD1 shard file");
  }
  const bool compressed = (h.flags & kFlagCompressed) != 0;
  if (h.n != manifest.n || h.tile != manifest.tile ||
      h.row_begin != r.row_begin || h.row_end != r.row_end ||
      compressed != manifest.compressed) {
    throw CorruptError(path + ": shard header disagrees with the manifest");
  }

  std::vector<SliceDirEntry> dir;
  if (compressed) {
    const std::int64_t tps = (h.n + h.tile - 1) / h.tile;
    const std::int64_t row_blocks =
        (h.row_end + h.tile - 1) / h.tile - h.row_begin / h.tile;
    dir.resize(static_cast<std::size_t>(row_blocks * tps));
    read_exact(file.f, dir.data(), dir.size() * sizeof(SliceDirEntry), path);
    if (fnv1a(dir.data(), dir.size() * sizeof(SliceDirEntry)) !=
        h.dir_checksum) {
      throw CorruptError(path + ": shard directory checksum mismatch");
    }
    const std::uint64_t data_start =
        sizeof(ShardHeader) + dir.size() * sizeof(SliceDirEntry);
    for (const SliceDirEntry& e : dir) {
      if (e.bytes == 0) continue;
      if (e.offset < data_start || e.offset + e.bytes > file_bytes) {
        throw CorruptError(path + ": shard directory entry out of bounds");
      }
    }
  } else {
    const std::uint64_t want =
        sizeof(ShardHeader) +
        static_cast<std::uint64_t>(h.row_end - h.row_begin) *
            static_cast<std::uint64_t>(h.n) * sizeof(dist_t);
    if (file_bytes != want) {
      throw CorruptError(path + ": raw shard payload is " +
                         std::to_string(file_bytes) + " bytes, expected " +
                         std::to_string(want));
    }
  }
  return std::make_unique<ShardSliceStore>(
      file.release(), path, manifest.n, manifest.tile, r.row_begin, r.row_end,
      std::move(dir));
}

}  // namespace gapsp::core
