// In-core GPU blocked Floyd–Warshall — the prior-work baseline ([16], [20]
// in the paper): the whole n×n matrix resident in device memory, one upload,
// one download. Fast while it fits; fails outright when it does not, which
// is precisely the limitation the paper's out-of-core methods remove
// (Sec. VI: "All of this work only considered small graphs").
#pragma once

#include "core/apsp_common.h"

namespace gapsp::core {

/// true iff the n×n matrix fits the device of `spec` (with runtime slack).
bool incore_fw_fits(const sim::DeviceSpec& spec, vidx_t n);

/// Solves APSP fully in-core. Throws gapsp::Error (device out of memory)
/// when the matrix does not fit — no out-of-core fallback, by design.
ApspResult incore_fw_apsp(const graph::CsrGraph& g, const ApspOptions& opts,
                          DistStore& store);

}  // namespace gapsp::core
