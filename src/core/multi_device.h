// Multi-GPU out-of-core boundary algorithm — the natural extension of the
// paper's method back toward its ancestry (Djidjev et al. designed the
// boundary algorithm for multi-node clusters; the paper runs it on one GPU).
//
// Work distribution: components are assigned to devices by longest-
// processing-time (LPT) scheduling on component size. Each device runs
// step 2 (per-component FW) for its components; after a barrier the boundary
// graph is assembled on the host, closed on device 0 (step 3), and
// broadcast; each device then computes and streams out the block-rows of
// its own components (step 4). Simulated end-to-end time is the makespan
// across devices; every device has its own memory capacity, streams and
// transfer link.
#pragma once

#include "core/apsp_common.h"
#include "core/ooc_boundary.h"

namespace gapsp::core {

struct MultiDeviceMetrics {
  int num_devices = 0;
  std::vector<double> device_seconds;  ///< per-device local finish time
  double barrier2_s = 0.0;             ///< barrier after step 2
  double barrier3_s = 0.0;             ///< barrier after the dist3 broadcast
  /// Failover accounting (empty/zero on fault-free runs). When a device
  /// dies mid-run its unfinished components are re-assigned by LPT over the
  /// survivors; the run completes as long as one device stays alive.
  std::vector<int> failed_devices;     ///< indices of devices that died
  long long failover_components = 0;   ///< components re-run on survivors
  /// Device-local busy time survivors spent re-executing reassigned
  /// components (the price of the failure, on top of the lost work).
  double failover_cost_s = 0.0;
};

struct MultiApspResult {
  ApspResult result;           ///< aggregated (sim_seconds = makespan)
  MultiDeviceMetrics multi;
};

/// Runs the boundary algorithm across `num_devices` identical devices of
/// opts.device. num_devices == 1 degrades to the single-device plan (but is
/// still executed through this code path). Results land in `store` in the
/// permuted order, like ooc_boundary.
MultiApspResult ooc_boundary_multi(const graph::CsrGraph& g,
                                   const ApspOptions& opts, int num_devices,
                                   DistStore& store);

}  // namespace gapsp::core
