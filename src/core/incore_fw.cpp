#include "core/incore_fw.h"

#include <vector>

#include "core/device_kernels.h"
#include "util/timer.h"

namespace gapsp::core {

bool incore_fw_fits(const sim::DeviceSpec& spec, vidx_t n) {
  const double bytes =
      static_cast<double>(n) * static_cast<double>(n) * sizeof(dist_t);
  return bytes <= 0.95 * static_cast<double>(spec.memory_bytes);
}

ApspResult incore_fw_apsp(const graph::CsrGraph& g, const ApspOptions& opts,
                          DistStore& store) {
  Timer wall;
  const vidx_t n = g.num_vertices();
  GAPSP_CHECK(store.n() == n, "store size does not match graph");
  sim::Device dev(opts.device);
  dev.set_trace(opts.trace);
  configure_kernels(dev, opts);

  // The single full-matrix allocation is the make-or-break step.
  auto mat = dev.alloc<dist_t>(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
      "full distance matrix");

  std::vector<dist_t> host(mat.size());
  weight_block(g, 0, 0, n, n, host.data(), static_cast<std::size_t>(n));
  dev.memcpy_h2d(sim::kDefaultStream, mat.data(), host.data(), mat.bytes(),
                 /*async=*/false, /*pinned=*/true);
  dev_blocked_fw(dev, sim::kDefaultStream, mat.data(), n, n, opts.fw_tile);
  dev.memcpy_d2h(sim::kDefaultStream, host.data(), mat.data(), mat.bytes(),
                 /*async=*/false, /*pinned=*/true);
  store.write_block(0, 0, n, n, host.data(), static_cast<std::size_t>(n));
  dev.synchronize();

  ApspResult result;
  result.used = Algorithm::kBlockedFloydWarshall;
  result.metrics = metrics_from_device(dev, wall.seconds());
  result.metrics.fw_num_blocks = 1;
  return result;
}

}  // namespace gapsp::core
