// Typed tile-read failures for the serving tier.
//
// Every fault-tolerant read path — BlockCache's guarded miss path, the
// CheckedTileReader underneath it, the QueryEngine's per-query degrade, the
// scrubber — speaks this one error type, so a caller can tell *why* a tile
// is unserveable and pick the right reaction from the DESIGN.md §13 matrix:
// retry (kTransient, before the reader gives up), quarantine + degrade
// (kCorrupt / kTransient after retries), answer-from-repair (either, when a
// repair source is configured), or reject (kShed, admission control).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "util/common.h"

namespace gapsp::core {

enum class TileFailure {
  kTransient,    ///< I/O kept failing through the whole retry budget
  kCorrupt,      ///< checksum/decode mismatch — persistent, retry is useless
  kQuarantined,  ///< tile already marked bad in the cache; load not attempted
  kShed,         ///< rejected by admission control, nothing was read
};

inline const char* tile_failure_name(TileFailure f) {
  switch (f) {
    case TileFailure::kTransient:
      return "transient";
    case TileFailure::kCorrupt:
      return "corrupt";
    case TileFailure::kQuarantined:
      return "quarantined";
    case TileFailure::kShed:
      return "shed";
  }
  return "?";
}

/// Raised by tile reads that cannot be served. Carries the tile coordinate
/// (in the read grid) so batch callers can fail exactly the queries that
/// touch it and leave sibling queries alone.
class TileError : public Error {
 public:
  TileError(TileFailure kind, vidx_t row_block, vidx_t col_block,
            const std::string& what)
      : Error(what), kind_(kind), row_block_(row_block),
        col_block_(col_block) {}

  TileFailure kind() const { return kind_; }
  vidx_t row_block() const { return row_block_; }
  vidx_t col_block() const { return col_block_; }

 private:
  TileFailure kind_;
  vidx_t row_block_;
  vidx_t col_block_;
};

/// On-demand tile re-derivation: returns the true row-major rows×cols
/// contents of the stored-coordinate rectangle at (row0, col0) — typically a
/// bounded SSSP recompute from the kept CSR (scrub.h::make_sssp_repair).
/// Must be thread-safe: the query engine calls it from pool workers.
using TileRepairFn = std::function<std::vector<dist_t>(
    vidx_t row0, vidx_t col0, vidx_t rows, vidx_t cols)>;

}  // namespace gapsp::core
