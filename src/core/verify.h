// Result verification: spot-checks a solved distance store against
// independently computed Dijkstra rows plus structural invariants. Cheap
// enough to run after every production solve (O(samples · m log n) —
// nothing like the solve itself), and exposed in the CLI as --verify.
#pragma once

#include <string>

#include "core/apsp_options.h"
#include "core/dist_store.h"
#include "graph/csr_graph.h"

namespace gapsp::core {

struct VerifyReport {
  bool ok = true;
  int rows_checked = 0;
  long long entries_checked = 0;
  int mismatches = 0;
  /// First few mismatches, human-readable (empty when ok).
  std::string detail;
};

/// Verifies `samples` uniformly random rows (always including row 0 and the
/// last row) of the store against Dijkstra, plus the zero diagonal.
VerifyReport verify_result(const graph::CsrGraph& g, const DistStore& store,
                           const ApspResult& result, int samples = 8,
                           std::uint64_t seed = 1);

}  // namespace gapsp::core
