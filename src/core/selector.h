// The paper's implementation selector (Sec. IV): a density filter prunes the
// candidate set cheaply, then the detailed cost models pick the winner.
//
// Filter rules (Sec. IV-C), thresholds configurable because they scale with
// graph size (density = m/n² shrinks as 1/n for bounded-degree graphs):
//   density > dense_percent   -> {Johnson, blocked Floyd-Warshall}
//   density < sparse_percent  -> {Johnson, Boundary}
//   otherwise                 -> Johnson only
#pragma once

#include <string>
#include <vector>

#include "core/cost_model.h"

namespace gapsp::core {

struct SelectorOptions {
  /// Density filter thresholds, in percent of n² (paper defaults: 1%/0.01%
  /// at SuiteSparse scale).
  double dense_percent = 1.0;
  double sparse_percent = 0.01;
  /// Batches sampled for the Johnson estimate (paper: 5).
  int sample_batches = 5;
};

struct AlgoEstimate {
  Algorithm algo = Algorithm::kAuto;
  bool considered = false;   ///< survived the density filter
  CostBreakdown cost;        ///< filled only when considered
};

struct SelectorReport {
  double density_percent = 0.0;
  std::vector<AlgoEstimate> estimates;  ///< FW, Johnson, Boundary (in order)
  Algorithm chosen = Algorithm::kJohnson;

  const AlgoEstimate& estimate(Algorithm a) const;
};

/// Applies the density filter and cost models; never returns kAuto.
SelectorReport select_algorithm(const graph::CsrGraph& g,
                                const ApspOptions& opts,
                                const SelectorOptions& sel = {});

}  // namespace gapsp::core
