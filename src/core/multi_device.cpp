#include "core/multi_device.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <vector>

#include "core/device_kernels.h"
#include "core/transfer_codec.h"
#include "util/timer.h"

namespace gapsp::core {
namespace {

/// LPT assignment of `comps` to `devices`: largest component first onto the
/// least-loaded device. Writes owner[i] for each i in comps; other entries
/// of `owner` are untouched. Deterministic (ties broken by component id and
/// device position), so the full-set/full-fleet call reproduces the fault-
/// free schedule exactly, and failover re-assignment is reproducible too.
void assign_components(const part::BoundaryLayout& layout,
                       std::vector<int> comps,
                       const std::vector<int>& devices,
                       std::vector<int>& owner) {
  std::sort(comps.begin(), comps.end(), [&](int a, int b) {
    if (layout.comp_size(a) != layout.comp_size(b)) {
      return layout.comp_size(a) > layout.comp_size(b);
    }
    return a < b;
  });
  std::vector<long long> load(devices.size(), 0);
  for (int i : comps) {
    const std::size_t d = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    owner[i] = devices[d];
    // Step-2 work is cubic in component size; balance on that.
    const long long ni = layout.comp_size(i);
    load[d] += ni * ni * ni;
  }
}

}  // namespace

MultiApspResult ooc_boundary_multi(const graph::CsrGraph& g,
                                   const ApspOptions& opts, int num_devices,
                                   DistStore& store) {
  Timer wall;
  GAPSP_CHECK(num_devices >= 1, "need at least one device");
  const vidx_t n = g.num_vertices();
  GAPSP_CHECK(store.n() == n, "store size mismatch");

  // The global single-device plan also proves per-device feasibility: every
  // device allocates the same working set over a subset of the components.
  ApspOptions plan_opts = opts;
  plan_opts.batch_transfers = true;
  plan_opts.overlap_transfers = false;  // one staging buffer per device
  const BoundaryPlan plan = plan_boundary(g, plan_opts);
  const part::BoundaryLayout& layout = plan.layout;
  const int k = plan.k;
  const vidx_t nb = plan.nb;
  const vidx_t dmax = plan.max_comp;

  const graph::CsrGraph gp = g.relabel(layout.perm);
  std::vector<int> comp_of(static_cast<std::size_t>(n));
  for (int c = 0; c < k; ++c) {
    for (vidx_t v = layout.comp_offset[c]; v < layout.comp_offset[c + 1];
         ++v) {
      comp_of[v] = c;
    }
  }
  std::vector<int> all_comps(static_cast<std::size_t>(k));
  std::iota(all_comps.begin(), all_comps.end(), 0);
  std::vector<int> all_devices(static_cast<std::size_t>(num_devices));
  std::iota(all_devices.begin(), all_devices.end(), 0);
  std::vector<int> owner(static_cast<std::size_t>(k), 0);
  assign_components(layout, all_comps, all_devices, owner);

  // ---- per-device state ----
  struct DeviceState {
    std::unique_ptr<sim::Device> dev;
    std::unique_ptr<sim::FaultInjector> injector;
    std::unique_ptr<TransferCodec> codec;
    sim::DeviceBuffer<dist_t> diag;
    sim::DeviceBuffer<dist_t> bound;
    sim::DeviceBuffer<dist_t> c2b;
    sim::DeviceBuffer<dist_t> b2c;
    sim::DeviceBuffer<dist_t> tmp;
    sim::DeviceBuffer<dist_t> staging;
    std::vector<dist_t> host_staging;
    vidx_t staging_rows = 0;
    vidx_t staged_rows = 0;
    vidx_t staged_row0 = 0;
    /// Step-4 components resident in `staging` but not yet flushed to the
    /// store — lost (and re-run elsewhere) if this device dies.
    std::vector<int> staged_comps;
    bool alive = true;
  };
  std::size_t bmax = 0, b2c_elems = 0;
  std::vector<std::size_t> b2c_off(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) {
    bmax = std::max<std::size_t>(bmax, layout.comp_boundary[j]);
    b2c_off[j] = b2c_elems;
    b2c_elems += static_cast<std::size_t>(layout.comp_boundary[j]) *
                 layout.comp_size(j);
  }
  std::vector<DeviceState> devs(static_cast<std::size_t>(num_devices));
  for (auto& st : devs) {
    st.dev = std::make_unique<sim::Device>(opts.device);
    st.dev->set_trace(opts.trace);
    configure_kernels(*st.dev, opts);
    st.codec = std::make_unique<TransferCodec>(*st.dev,
                                               opts.transfer_compression);
    st.diag = st.dev->alloc<dist_t>(static_cast<std::size_t>(dmax) * dmax,
                                    "diagonal block");
    st.bound = st.dev->alloc<dist_t>(static_cast<std::size_t>(nb) * nb,
                                     "boundary matrix");
    st.c2b =
        st.dev->alloc<dist_t>(static_cast<std::size_t>(dmax) * bmax, "C2B");
    st.b2c =
        st.dev->alloc<dist_t>(std::max<std::size_t>(b2c_elems, 1), "B2C");
    st.tmp =
        st.dev->alloc<dist_t>(static_cast<std::size_t>(dmax) * nb, "tmp1");
    const std::size_t stage_elems =
        st.dev->free_bytes() / sizeof(dist_t) / 100 * 95;
    st.staging_rows =
        static_cast<vidx_t>(stage_elems / static_cast<std::size_t>(n));
    GAPSP_CHECK(st.staging_rows >= dmax, "staging too small on device");
    st.staging = st.dev->alloc<dist_t>(
        static_cast<std::size_t>(st.staging_rows) * n, "staging");
    st.host_staging.resize(st.staging.size());
  }
  // Injectors attach after the fixed allocations: the fault model targets
  // the steady-state run (step 2 onward), one decorrelated injector per
  // device so "kill device d" schedules are expressible.
  for (int d = 0; d < num_devices; ++d) {
    if (opts.faults != nullptr) {
      devs[d].injector = std::make_unique<sim::FaultInjector>(*opts.faults, d);
      devs[d].dev->set_fault_injector(devs[d].injector.get());
    }
    devs[d].dev->set_retry_policy(opts.retry);
  }

  const sim::StreamId s0 = sim::kDefaultStream;
  std::vector<std::vector<dist_t>> dist2(static_cast<std::size_t>(k));
  std::vector<dist_t> hbuf(static_cast<std::size_t>(dmax) *
                           std::max<vidx_t>(n, dmax));

  // ---- failover bookkeeping ----
  std::vector<int> failed_devices;
  long long failover_components = 0;
  double failover_cost = 0.0;
  std::vector<char> reassigned(static_cast<std::size_t>(k), 0);
  auto alive_devices = [&]() {
    std::vector<int> out;
    for (int d = 0; d < num_devices; ++d) {
      if (devs[d].alive) out.push_back(d);
    }
    return out;
  };
  // Marks newly-dead devices, returns the components (from `done`'s
  // complement, plus any staged-but-unflushed ones) that must be re-run,
  // and re-runs LPT over the survivors. Rethrows `e` when no device is
  // left to fail over to.
  auto handle_death = [&](const sim::FaultError& e,
                          const std::vector<char>& done) {
    bool found = false;
    for (int d = 0; d < num_devices; ++d) {
      DeviceState& st = devs[d];
      if (!st.alive || !st.dev->lost()) continue;
      st.alive = false;
      found = true;
      failed_devices.push_back(d);
      // Anything staged on the dead device never reached the store.
      st.staged_comps.clear();
      st.staged_rows = 0;
    }
    if (!found) throw e;  // a non-device-lost fatal fault escaped retries
    const std::vector<int> survivors = alive_devices();
    if (survivors.empty()) throw e;  // nobody left to fail over to
    std::vector<int> pending;
    for (int i = 0; i < k; ++i) {
      if (!done[i] && !devs[owner[i]].alive) pending.push_back(i);
    }
    failover_components += static_cast<long long>(pending.size());
    for (int i : pending) reassigned[i] = 1;
    assign_components(layout, pending, survivors, owner);
  };

  // ---- Step 2: per-component FW on the owning device ----
  // Failover loop: a device death re-queues its unfinished components onto
  // the survivors (dist2 of completed components is already host-side).
  std::vector<char> s2_done(static_cast<std::size_t>(k), 0);
  for (bool complete = false; !complete;) {
    try {
      for (int i = 0; i < k; ++i) {
        if (s2_done[i]) continue;
        DeviceState& st = devs[owner[i]];
        const double t0 = st.dev->record_event(s0).time;
        const vidx_t off = layout.comp_offset[i];
        const vidx_t ni = layout.comp_size(i);
        weight_block(gp, off, off, ni, ni, hbuf.data(), ni);
        st.codec->h2d(s0, st.diag.data(), hbuf.data(),
                      static_cast<std::size_t>(ni) * ni * sizeof(dist_t),
                      /*pinned=*/false);
        dev_blocked_fw(*st.dev, s0, st.diag.data(), ni, ni, opts.fw_tile);
        dist2[i].resize(static_cast<std::size_t>(ni) * ni);
        st.codec->d2h(s0, dist2[i].data(), st.diag.data(),
                      dist2[i].size() * sizeof(dist_t), /*pinned=*/false);
        s2_done[i] = 1;
        if (reassigned[i]) {
          failover_cost += st.dev->record_event(s0).time - t0;
        }
      }
      complete = true;
    } catch (const sim::FaultError& e) {
      if (e.op() != sim::FaultOp::kDeviceLost) throw;
      handle_death(e, s2_done);
    }
  }
  // Barrier: the boundary graph needs every component's dist2.
  double barrier2 = 0.0;
  for (auto& st : devs) {
    if (!st.alive) continue;
    st.dev->synchronize();
    barrier2 = std::max(barrier2, st.dev->now());
  }
  for (auto& st : devs) {
    if (st.alive) st.dev->advance_to(barrier2);
  }

  // ---- Step 3: boundary graph on device 0, then broadcast ----
  std::vector<dist_t> hbound(static_cast<std::size_t>(nb) * nb, kInf);
  for (vidx_t b = 0; b < nb; ++b) {
    hbound[static_cast<std::size_t>(b) * nb + b] = 0;
  }
  for (int i = 0; i < k; ++i) {
    const vidx_t bi = layout.comp_boundary[i];
    const vidx_t ni = layout.comp_size(i);
    const vidx_t go = layout.boundary_offset[i];
    for (vidx_t r = 0; r < bi; ++r) {
      for (vidx_t c = 0; c < bi; ++c) {
        dist_t& cell = hbound[static_cast<std::size_t>(go + r) * nb + go + c];
        cell = std::min(cell, dist2[i][static_cast<std::size_t>(r) * ni + c]);
      }
    }
  }
  for (vidx_t u = 0; u < n; ++u) {
    const int cu = comp_of[u];
    const auto nbr = gp.neighbors(u);
    const auto wts = gp.weights(u);
    for (std::size_t e = 0; e < nbr.size(); ++e) {
      const int cv = comp_of[nbr[e]];
      if (cu == cv) continue;
      const vidx_t gu =
          layout.boundary_offset[cu] + (u - layout.comp_offset[cu]);
      const vidx_t gv =
          layout.boundary_offset[cv] + (nbr[e] - layout.comp_offset[cv]);
      dist_t& cell = hbound[static_cast<std::size_t>(gu) * nb + gv];
      cell = std::min(cell, wts[e]);
    }
  }
  // The boundary FW runs on the first alive device; if that one dies too,
  // the next survivor retries from the host-side hbound copy. hbound is
  // only overwritten by the (synchronous, functional) d2h once FW finished,
  // so a retry starts from the same pre-FW matrix.
  int step3_dev = -1;
  double barrier3 = 0.0;
  for (bool complete = false; !complete;) {
    const std::vector<int> survivors = alive_devices();
    if (survivors.empty()) {
      throw sim::FaultError(sim::FaultOp::kDeviceLost, /*transient=*/false,
                            "all devices lost before step 3");
    }
    DeviceState& st = devs[survivors.front()];
    try {
      st.codec->h2d(s0, st.bound.data(), hbound.data(),
                    hbound.size() * sizeof(dist_t), /*pinned=*/false);
      dev_blocked_fw(*st.dev, s0, st.bound.data(), nb, nb, opts.fw_tile);
      // Ship dist3 back so it can be broadcast to the other devices.
      st.codec->d2h(s0, hbound.data(), st.bound.data(),
                    hbound.size() * sizeof(dist_t), /*pinned=*/false);
      st.dev->synchronize();
      step3_dev = survivors.front();
      barrier3 = st.dev->now();
      complete = true;
    } catch (const sim::FaultError& e) {
      if (e.op() != sim::FaultOp::kDeviceLost) throw;
      handle_death(e, s2_done);  // step-2 work is all done; just mark deaths
    }
  }
  for (auto& st : devs) {
    if (st.alive) st.dev->advance_to(barrier3);
  }
  // Broadcast dist3 and B2C; a death here surfaces in step 4's failover
  // loop (the dead device's components re-run on survivors, which already
  // hold the broadcast data).
  for (int d = 0; d < num_devices; ++d) {
    if (!devs[d].alive || d == step3_dev) continue;
    try {
      devs[d].codec->h2d(s0, devs[d].bound.data(), hbound.data(),
                         hbound.size() * sizeof(dist_t), /*pinned=*/false);
    } catch (const sim::FaultError& e) {
      if (e.op() != sim::FaultOp::kDeviceLost) throw;
      handle_death(e, s2_done);
    }
  }
  // Every device needs B2C of every component for its step-4 rows.
  for (auto& st : devs) {
    if (!st.alive) continue;
    try {
      for (int j = 0; j < k; ++j) {
        const vidx_t bj = layout.comp_boundary[j];
        const vidx_t nj = layout.comp_size(j);
        if (bj == 0) continue;
        st.codec->h2d(s0, st.b2c.data() + b2c_off[j], dist2[j].data(),
                      static_cast<std::size_t>(bj) * nj * sizeof(dist_t),
                      /*pinned=*/false);
      }
    } catch (const sim::FaultError& e) {
      if (e.op() != sim::FaultOp::kDeviceLost) throw;
      handle_death(e, s2_done);
    }
  }

  // ---- Step 4: each device streams out its components' block-rows ----
  std::vector<char> s4_done(static_cast<std::size_t>(k), 0);
  auto flush = [&](DeviceState& st) {
    if (st.staged_rows == 0) return;
    const std::size_t bytes =
        static_cast<std::size_t>(st.staged_rows) * n * sizeof(dist_t);
    st.codec->d2h(s0, st.host_staging.data(), st.staging.data(), bytes,
                  /*pinned=*/true);
    store.write_block(st.staged_row0, 0, st.staged_rows, n,
                      st.host_staging.data(), static_cast<std::size_t>(n));
    st.staged_rows = 0;
    // Only now are these components durable; a death before this point
    // re-runs them on a survivor.
    for (int c : st.staged_comps) s4_done[c] = 1;
    st.staged_comps.clear();
  };

  // Components stranded on devices that died after step 2 (during the
  // boundary phase) get new owners before the loop starts.
  {
    std::vector<int> stranded;
    for (int i = 0; i < k; ++i) {
      if (!devs[owner[i]].alive) stranded.push_back(i);
    }
    if (!stranded.empty()) {
      failover_components += static_cast<long long>(stranded.size());
      for (int i : stranded) reassigned[i] = 1;
      assign_components(layout, stranded, alive_devices(), owner);
    }
  }

  // Computes component i's block-row into its owner's staging slot
  // (flushing when full/non-contiguous); durability is deferred to flush().
  auto run_component = [&](int i) {
    DeviceState& st = devs[owner[i]];
    const vidx_t off = layout.comp_offset[i];
    const vidx_t ni = layout.comp_size(i);
    const vidx_t bi = layout.comp_boundary[i];

    if (bi > 0) {
      for (vidx_t r = 0; r < ni; ++r) {
        std::copy_n(dist2[i].data() + static_cast<std::size_t>(r) * ni, bi,
                    hbuf.data() + static_cast<std::size_t>(r) * bi);
      }
      st.dev->memcpy_h2d(s0, st.c2b.data(), hbuf.data(),
                         static_cast<std::size_t>(ni) * bi * sizeof(dist_t));
      st.dev->launch(s0, "fill_tmp", [&](sim::LaunchCtx&) {
        std::fill_n(st.tmp.data(), static_cast<std::size_t>(ni) * nb, kInf);
        sim::KernelProfile p;
        p.bytes = static_cast<double>(ni) * nb * sizeof(dist_t);
        p.ops = static_cast<double>(ni) * nb;
        p.blocks = std::max(1, static_cast<int>(ni * nb / 4096));
        return p;
      });
      dev_minplus(*st.dev, s0, st.tmp.data(), nb, st.c2b.data(), bi,
                  st.bound.data() +
                      static_cast<std::size_t>(layout.boundary_offset[i]) * nb,
                  nb, ni, bi, nb, opts.fw_tile);
    }

    // Block-rows of one device are contiguous only per component; flush per
    // staging fill, tracking the first staged row.
    if (st.staged_rows + ni > st.staging_rows ||
        (st.staged_rows > 0 && st.staged_row0 + st.staged_rows != off)) {
      flush(st);
    }
    if (st.staged_rows == 0) st.staged_row0 = off;
    dist_t* row_base =
        st.staging.data() + static_cast<std::size_t>(st.staged_rows) * n;
    st.dev->launch(s0, "init_block_row", [&](sim::LaunchCtx&) {
      std::fill_n(row_base, static_cast<std::size_t>(ni) * n, kInf);
      sim::KernelProfile p;
      p.bytes = static_cast<double>(ni) * n * sizeof(dist_t);
      p.ops = static_cast<double>(ni) * n;
      p.blocks = std::max(1, static_cast<int>(ni * (n / 4096)));
      return p;
    });
    for (vidx_t r = 0; r < ni; ++r) {
      std::copy_n(dist2[i].data() + static_cast<std::size_t>(r) * ni, ni,
                  row_base + static_cast<std::size_t>(r) * n + off);
    }
    st.dev->memcpy_h2d(s0, hbuf.data(), dist2[i].data(),
                       static_cast<std::size_t>(ni) * ni * sizeof(dist_t));
    if (bi > 0) {
      // Grid over destination components (disjoint column ranges of the
      // block-row), same decomposition as the single-device path.
      st.dev->launch_grid(
          s0, "block_row_minplus", k,
          [&](int j) {
            const vidx_t bj = layout.comp_boundary[j];
            const vidx_t nj = layout.comp_size(j);
            if (bj == 0) return;
            minplus_accum(row_base + layout.comp_offset[j], n,
                          st.tmp.data() + layout.boundary_offset[j], nb,
                          st.b2c.data() + b2c_off[j], nj, ni, bj, nj);
          },
          [&] {
            double ops = 0.0, bytes = 0.0;
            int blocks = 0;
            for (int j = 0; j < k; ++j) {
              const vidx_t bj = layout.comp_boundary[j];
              const vidx_t nj = layout.comp_size(j);
              if (bj == 0) continue;
              ops += minplus_ops(ni, bj, nj);
              bytes += minplus_bytes(ni, bj, nj, opts.fw_tile);
              blocks += ((ni + opts.fw_tile - 1) / opts.fw_tile) *
                        ((nj + opts.fw_tile - 1) / opts.fw_tile);
            }
            sim::KernelProfile p;
            p.ops = ops;
            p.bytes = bytes;
            p.blocks = std::max(1, blocks);
            return p;
          });
    }
    st.staged_rows += ni;
    st.staged_comps.push_back(i);
  };

  for (bool complete = false; !complete;) {
    try {
      for (int i = 0; i < k; ++i) {
        if (s4_done[i]) continue;
        DeviceState& st = devs[owner[i]];
        const double t0 = st.dev->record_event(s0).time;
        run_component(i);
        if (reassigned[i]) {
          failover_cost += st.dev->record_event(s0).time - t0;
        }
      }
      for (auto& st : devs) {
        if (st.alive) flush(st);
      }
      complete = true;
    } catch (const sim::FaultError& e) {
      if (e.op() != sim::FaultOp::kDeviceLost) throw;
      handle_death(e, s4_done);
    }
  }

  // ---- makespan + aggregated metrics ----
  MultiApspResult out;
  out.multi.num_devices = num_devices;
  out.multi.barrier2_s = barrier2;
  out.multi.barrier3_s = barrier3;
  out.multi.failed_devices = failed_devices;
  out.multi.failover_components = failover_components;
  out.multi.failover_cost_s = failover_cost;
  double makespan = 0.0;
  ApspMetrics agg;
  for (auto& st : devs) {
    st.dev->synchronize();
    out.multi.device_seconds.push_back(st.dev->now());
    makespan = std::max(makespan, st.dev->now());
    const ApspMetrics m = metrics_from_device(*st.dev, 0.0);
    agg.kernel_seconds += m.kernel_seconds;
    agg.transfer_seconds += m.transfer_seconds;
    agg.hidden_transfer_seconds += m.hidden_transfer_seconds;
    agg.exposed_transfer_seconds += m.exposed_transfer_seconds;
    agg.pinned_peak_bytes += m.pinned_peak_bytes;
    agg.bytes_h2d += m.bytes_h2d;
    agg.bytes_d2h += m.bytes_d2h;
    agg.transfers_h2d += m.transfers_h2d;
    agg.transfers_d2h += m.transfers_d2h;
    agg.bytes_h2d_raw += m.bytes_h2d_raw;
    agg.bytes_h2d_wire += m.bytes_h2d_wire;
    agg.bytes_d2h_raw += m.bytes_d2h_raw;
    agg.bytes_d2h_wire += m.bytes_d2h_wire;
    agg.decode_seconds += m.decode_seconds;
    agg.decodes += m.decodes;
    agg.kernels += m.kernels;
    agg.child_kernels += m.child_kernels;
    agg.total_ops += m.total_ops;
    agg.faults_injected += m.faults_injected;
    agg.transfer_retries += m.transfer_retries;
    agg.kernel_retries += m.kernel_retries;
    agg.decode_retries += m.decode_retries;
    agg.retry_backoff_seconds += m.retry_backoff_seconds;
    if (!m.kernel_variant.empty()) agg.kernel_variant = m.kernel_variant;
    agg.device_peak_bytes = std::max(agg.device_peak_bytes, m.device_peak_bytes);
  }
  agg.sim_seconds = makespan;
  agg.wall_seconds = wall.seconds();
  agg.boundary_k = k;
  agg.boundary_nodes = nb;
  out.result.used = Algorithm::kBoundary;
  out.result.metrics = agg;
  out.result.perm = layout.perm;
  return out;
}

}  // namespace gapsp::core
