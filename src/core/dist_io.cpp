#include "core/dist_io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <vector>

namespace gapsp::core {
namespace {

constexpr char kMagic[8] = {'G', 'A', 'P', 'S', 'P', 'D', 'M', '1'};

struct Header {
  char magic[8];
  std::int64_t n;
  std::int64_t has_perm;
};

class FileCloser {
 public:
  explicit FileCloser(std::FILE* f) : f_(f) {}
  ~FileCloser() {
    if (f_ != nullptr) std::fclose(f_);
  }
  std::FILE* get() const { return f_; }

 private:
  std::FILE* f_;
};

}  // namespace

void save_distances(const DistStore& store, const ApspResult& result,
                    const std::string& path) {
  FileCloser f(std::fopen(path.c_str(), "wb"));
  GAPSP_CHECK(f.get() != nullptr, "cannot create " + path);
  const vidx_t n = store.n();
  GAPSP_CHECK(result.perm.empty() ||
                  result.perm.size() == static_cast<std::size_t>(n),
              "result permutation does not match store");
  Header h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.n = n;
  h.has_perm = result.perm.empty() ? 0 : 1;
  GAPSP_CHECK(std::fwrite(&h, sizeof(h), 1, f.get()) == 1, "header write");
  if (!result.perm.empty()) {
    GAPSP_CHECK(std::fwrite(result.perm.data(), sizeof(vidx_t),
                            result.perm.size(),
                            f.get()) == result.perm.size(),
                "permutation write");
  }
  std::vector<dist_t> row(static_cast<std::size_t>(n));
  for (vidx_t r = 0; r < n; ++r) {
    store.read_block(r, 0, 1, n, row.data(), row.size());
    GAPSP_CHECK(std::fwrite(row.data(), sizeof(dist_t), row.size(),
                            f.get()) == row.size(),
                "row write to " + path);
  }
}

LoadedDistances load_distances(const std::string& path) {
  FileCloser f(std::fopen(path.c_str(), "rb"));
  GAPSP_CHECK(f.get() != nullptr, "cannot open " + path);
  Header h{};
  GAPSP_CHECK(std::fread(&h, sizeof(h), 1, f.get()) == 1,
              "truncated header in " + path);
  GAPSP_CHECK(std::memcmp(h.magic, kMagic, sizeof(kMagic)) == 0,
              path + " is not a gapsp distance file");
  GAPSP_CHECK(h.n >= 0 && h.n < (1LL << 31), "implausible matrix size");
  GAPSP_CHECK(h.has_perm == 0 || h.has_perm == 1,
              "malformed header in " + path);
  const auto n = static_cast<vidx_t>(h.n);

  // A malformed header with a huge n must be rejected *before* any
  // allocation: n² elements can overflow std::size_t on 32-bit hosts and
  // OOM-kill the process on 64-bit ones. n < 2^31 keeps every term below
  // exactly representable in uint64, so compare the implied file size
  // against the real one first.
  const auto un = static_cast<std::uint64_t>(n);
  GAPSP_CHECK(un == 0 ||
                  un <= std::numeric_limits<std::size_t>::max() /
                            sizeof(dist_t) / un,
              "matrix size overflows addressable memory");
  const std::uint64_t expected = sizeof(Header) +
                                 (h.has_perm != 0 ? un * sizeof(vidx_t) : 0) +
                                 un * un * sizeof(dist_t);
  GAPSP_CHECK(std::fseek(f.get(), 0, SEEK_END) == 0, "cannot seek " + path);
  const long actual = std::ftell(f.get());
  GAPSP_CHECK(actual >= 0, "cannot size " + path);
  GAPSP_CHECK(static_cast<std::uint64_t>(actual) == expected,
              path + " size does not match its header (truncated or "
                     "malformed n)");
  GAPSP_CHECK(std::fseek(f.get(), sizeof(Header), SEEK_SET) == 0,
              "cannot seek " + path);

  LoadedDistances out;
  if (h.has_perm != 0) {
    out.perm.resize(static_cast<std::size_t>(n));
    GAPSP_CHECK(std::fread(out.perm.data(), sizeof(vidx_t), out.perm.size(),
                           f.get()) == out.perm.size(),
                "truncated permutation in " + path);
    std::vector<std::uint8_t> seen(static_cast<std::size_t>(n), 0);
    for (vidx_t p : out.perm) {
      GAPSP_CHECK(p >= 0 && p < n && !seen[p],
                  "malformed permutation in " + path);
      seen[p] = 1;
    }
  }
  out.store = make_ram_store(n);
  std::vector<dist_t> row(static_cast<std::size_t>(n));
  for (vidx_t r = 0; r < n; ++r) {
    GAPSP_CHECK(std::fread(row.data(), sizeof(dist_t), row.size(), f.get()) ==
                    row.size(),
                "truncated matrix in " + path);
    out.store->write_block(r, 0, 1, n, row.data(), row.size());
  }
  return out;
}

}  // namespace gapsp::core
