#include "core/dist_store.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

namespace gapsp::core {

void DistStore::check_block(vidx_t row0, vidx_t col0, vidx_t rows,
                            vidx_t cols) const {
  GAPSP_CHECK(row0 >= 0 && col0 >= 0 && rows >= 0 && cols >= 0 &&
                  row0 + rows <= n_ && col0 + cols <= n_,
              "block out of bounds");
}

dist_t DistStore::at(vidx_t u, vidx_t v) const {
  dist_t d = kInf;
  read_block(u, v, 1, 1, &d, 1);
  return d;
}

namespace {

class RamStore final : public DistStore {
 public:
  explicit RamStore(vidx_t n)
      : DistStore(n),
        data_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), kInf) {}

  void write_block(vidx_t row0, vidx_t col0, vidx_t rows, vidx_t cols,
                   const dist_t* src, std::size_t src_ld) override {
    check_block(row0, col0, rows, cols);
    for (vidx_t r = 0; r < rows; ++r) {
      std::copy_n(src + static_cast<std::size_t>(r) * src_ld, cols,
                  data_.data() + row_offset(row0 + r) + col0);
    }
  }

  void read_block(vidx_t row0, vidx_t col0, vidx_t rows, vidx_t cols,
                  dist_t* dst, std::size_t dst_ld) const override {
    check_block(row0, col0, rows, cols);
    for (vidx_t r = 0; r < rows; ++r) {
      std::copy_n(data_.data() + row_offset(row0 + r) + col0, cols,
                  dst + static_cast<std::size_t>(r) * dst_ld);
    }
  }

 private:
  std::size_t row_offset(vidx_t r) const {
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(n());
  }
  std::vector<dist_t> data_;
};

/// stdio-backed store. Rows are contiguous on disk; unwritten regions read
/// back as kInf via an initialization pass at construction. Every stdio
/// return value is checked and surfaces as a typed IoError — the distance
/// matrix is the product of hours of simulated work, so a silently-shorted
/// write (full disk, quota) must not masquerade as success.
class FileStore final : public DistStore {
 public:
  /// Tag for the read-only "adopt an existing matrix" constructor.
  struct OpenExisting {};

  FileStore(vidx_t n, const std::string& path, OpenExisting)
      : DistStore(n), path_(path), keep_file_(true), read_only_(true) {
    file_ = std::fopen(path.c_str(), "rb");
    if (file_ == nullptr) {
      throw IoError("cannot open dist store file " + path);
    }
  }

  FileStore(vidx_t n, const std::string& path, bool keep_file)
      : DistStore(n), path_(path), keep_file_(keep_file) {
    // Adopt an existing file of exactly the right size instead of
    // truncating: the store is the durable state of a checkpointed run, so
    // resuming across processes must see the rounds the dead run completed.
    // (Safe for fresh runs too — every algorithm fully overwrites the
    // region it reads back.)
    const std::uint64_t expected = static_cast<std::uint64_t>(n) *
                                   static_cast<std::uint64_t>(n) *
                                   sizeof(dist_t);
    file_ = std::fopen(path.c_str(), "rb+");
    if (file_ != nullptr) {
      if (std::fseek(file_, 0, SEEK_END) == 0 &&
          static_cast<std::uint64_t>(std::ftell(file_)) == expected) {
        return;  // matrix already on disk; no kInf prefill
      }
      std::fclose(file_);
      file_ = nullptr;
    }
    file_ = std::fopen(path.c_str(), "wb+");
    if (file_ == nullptr) {
      throw IoError("cannot create dist store file " + path);
    }
    try {
      // Pre-fill with kInf one row at a time (bounded scratch).
      std::vector<dist_t> row(static_cast<std::size_t>(n), kInf);
      for (vidx_t r = 0; r < n; ++r) {
        const std::size_t wrote =
            std::fwrite(row.data(), sizeof(dist_t), row.size(), file_);
        if (wrote != row.size()) {
          throw IoError("short write initializing " + path);
        }
      }
      if (std::fflush(file_) != 0) {
        throw IoError("flush failed initializing " + path);
      }
    } catch (...) {
      // The destructor will not run for a throwing constructor: close (and
      // scrub) the partial file here or leak the handle.
      std::fclose(file_);
      if (!keep_file_) std::remove(path.c_str());
      throw;
    }
  }

  ~FileStore() override {
    if (file_ != nullptr) std::fclose(file_);
    if (!keep_file_) std::remove(path_.c_str());
  }

  void write_block(vidx_t row0, vidx_t col0, vidx_t rows, vidx_t cols,
                   const dist_t* src, std::size_t src_ld) override {
    check_block(row0, col0, rows, cols);
    if (read_only_) {
      throw IoError("dist store " + path_ + " is opened read-only");
    }
    dirty_ = true;
    // Full-width multi-row blocks are one contiguous span on disk when the
    // source rows are packed too: a single fwrite instead of a per-row loop.
    if (cols == n() && rows > 1 && src_ld == static_cast<std::size_t>(cols)) {
      seek(row0, 0);
      const auto count =
          static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
      if (std::fwrite(src, sizeof(dist_t), count, file_) != count) {
        throw IoError("short write to " + path_);
      }
      return;
    }
    for (vidx_t r = 0; r < rows; ++r) {
      seek(row0 + r, col0);
      const std::size_t wrote =
          std::fwrite(src + static_cast<std::size_t>(r) * src_ld,
                      sizeof(dist_t), static_cast<std::size_t>(cols), file_);
      if (wrote != static_cast<std::size_t>(cols)) {
        throw IoError("short write to " + path_);
      }
    }
  }

  void read_block(vidx_t row0, vidx_t col0, vidx_t rows, vidx_t cols,
                  dist_t* dst, std::size_t dst_ld) const override {
    check_block(row0, col0, rows, cols);
    // Only a store with buffered writes needs the flush; the query-serving
    // read-only path must not pay a flush per point lookup.
    if (dirty_) {
      if (std::fflush(file_) != 0) {
        throw IoError("flush failed in " + path_);
      }
      dirty_ = false;
    }
    // Row-contiguous fast path: full-width rows packed in the destination
    // read back as one span (the query service's block loads and the CLI's
    // row queries land here).
    if (cols == n() && rows >= 1 && dst_ld == static_cast<std::size_t>(cols)) {
      seek(row0, 0);
      const auto count =
          static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
      if (std::fread(dst, sizeof(dist_t), count, file_) != count) {
        throw IoError("short read from " + path_);
      }
      return;
    }
    for (vidx_t r = 0; r < rows; ++r) {
      seek(row0 + r, col0);
      const std::size_t got =
          std::fread(dst + static_cast<std::size_t>(r) * dst_ld,
                     sizeof(dist_t), static_cast<std::size_t>(cols), file_);
      if (got != static_cast<std::size_t>(cols)) {
        throw IoError("short read from " + path_);
      }
    }
  }

  void flush() override {
    if (!dirty_) return;
    if (std::fflush(file_) != 0) {
      throw IoError("flush failed in " + path_);
    }
    dirty_ = false;
  }

 private:
  void seek(vidx_t row, vidx_t col) const {
    const long long off =
        (static_cast<long long>(row) * n() + col) *
        static_cast<long long>(sizeof(dist_t));
    if (std::fseek(file_, static_cast<long>(off), SEEK_SET) != 0) {
      throw IoError("seek failed in " + path_);
    }
  }
  std::string path_;
  bool keep_file_ = false;
  bool read_only_ = false;
  /// Buffered writes pending since the last flush; read_block() only pays
  /// the fflush when this is set (mutated from the const read path).
  mutable bool dirty_ = false;
  std::FILE* file_ = nullptr;
};

}  // namespace

std::unique_ptr<DistStore> make_ram_store(vidx_t n) {
  return std::make_unique<RamStore>(n);
}

std::unique_ptr<DistStore> make_file_store(vidx_t n, const std::string& path,
                                           bool keep_file) {
  return std::make_unique<FileStore>(n, path, keep_file);
}

std::unique_ptr<DistStore> open_file_store(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw IoError("cannot open dist store file " + path);
  }
  std::uint64_t bytes = 0;
  if (std::fseek(f, 0, SEEK_END) == 0) {
    const long long end = std::ftell(f);
    if (end > 0) bytes = static_cast<std::uint64_t>(end);
  }
  std::fclose(f);
  const std::uint64_t elems = bytes / sizeof(dist_t);
  const auto n = static_cast<vidx_t>(std::llround(std::sqrt(
      static_cast<double>(elems))));
  if (bytes == 0 || bytes % sizeof(dist_t) != 0 ||
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n) != elems) {
    throw IoError("file " + path + " is not a square dist_t matrix (" +
                  std::to_string(bytes) + " bytes)");
  }
  return std::make_unique<FileStore>(n, path, FileStore::OpenExisting{});
}

}  // namespace gapsp::core
