#include "core/minplus.h"

#include <algorithm>

#include "core/kernel_engine.h"

namespace gapsp::core {

void minplus_accum(dist_t* c, std::size_t ldc, const dist_t* a,
                   std::size_t lda, const dist_t* b, std::size_t ldb,
                   vidx_t nr, vidx_t nk, vidx_t nc) {
  // Dispatches through the kernel engine: the configured (or autotuned)
  // microkernel variant runs here. All variants are bit-identical — they
  // take the min over the same candidate set and integer min is
  // order-independent — so callers never observe which one executed.
  minplus_accum_variant(resolved_kernel_variant(), c, ldc, a, lda, b, ldb,
                        nr, nk, nc);
}

void fw_inplace(dist_t* m, std::size_t ld, vidx_t n) {
  for (vidx_t k = 0; k < n; ++k) {
    const dist_t* __restrict krow = m + static_cast<std::size_t>(k) * ld;
    for (vidx_t i = 0; i < n; ++i) {
      dist_t* __restrict irow = m + static_cast<std::size_t>(i) * ld;
      const dist_t dik = irow[k];
      if (dik >= kInf) continue;
      for (vidx_t j = 0; j < n; ++j) {
        const dist_t cand = dik + krow[j];
        irow[j] = std::min(irow[j], cand);
      }
    }
  }
}

}  // namespace gapsp::core
