#include "core/minplus.h"

#include <algorithm>

namespace gapsp::core {

void minplus_accum(dist_t* c, std::size_t ldc, const dist_t* a,
                   std::size_t lda, const dist_t* b, std::size_t ldb,
                   vidx_t nr, vidx_t nk, vidx_t nc) {
  // r-k-c loop order: A[r][k] is hoisted, B row k and C row r stream
  // sequentially — cache-friendly and auto-vectorizable.
  for (vidx_t r = 0; r < nr; ++r) {
    dist_t* __restrict crow = c + static_cast<std::size_t>(r) * ldc;
    const dist_t* __restrict arow = a + static_cast<std::size_t>(r) * lda;
    for (vidx_t k = 0; k < nk; ++k) {
      const dist_t aval = arow[k];
      if (aval >= kInf) continue;
      const dist_t* __restrict brow = b + static_cast<std::size_t>(k) * ldb;
      for (vidx_t col = 0; col < nc; ++col) {
        // brow[col] may be kInf: aval + kInf stays >= kInf and the min is a
        // no-op because crow is never above kInf. Guarded by the sentinel
        // headroom of kInf (max/4), so no overflow check is needed here.
        const dist_t cand = aval + brow[col];
        crow[col] = std::min(crow[col], cand);
      }
    }
  }
}

void fw_inplace(dist_t* m, std::size_t ld, vidx_t n) {
  for (vidx_t k = 0; k < n; ++k) {
    const dist_t* __restrict krow = m + static_cast<std::size_t>(k) * ld;
    for (vidx_t i = 0; i < n; ++i) {
      dist_t* __restrict irow = m + static_cast<std::size_t>(i) * ld;
      const dist_t dik = irow[k];
      if (dik >= kInf) continue;
      for (vidx_t j = 0; j < n; ++j) {
        const dist_t cand = dik + krow[j];
        irow[j] = std::min(irow[j], cand);
      }
    }
  }
}

}  // namespace gapsp::core
