// Out-of-core Johnson's algorithm (Algorithm 2 of the paper).
//
// APSP as n SSSP instances, executed in batches of `bat` concurrent Near-Far
// instances inside one MSSP kernel — one instance per simulated thread
// block. bat = (L - S)/(c·m) where L is device memory, S the resident CSR
// graph, and c·m the per-instance worklist storage. When bat drops below the
// device's active-block capacity, the launch is under-occupied; the dynamic-
// parallelism optimization moves the edge lists of high-out-degree vertices
// into child kernels that run at full occupancy (Sec. III-B).
//
// Weights in this project are non-negative, so the classic reweighting
// (Bellman-Ford) phase of Johnson's algorithm is unnecessary, exactly as in
// the paper's setting.
#pragma once

#include "core/apsp_common.h"

namespace gapsp::core {

/// The batch size bat for a given device/graph (Sec. III-B formula).
/// `row_buffers` is the number of resident dist-row blocks: 2 when the batch
/// result D2H is double-buffered against the next batch's MSSP kernel
/// (overlap_transfers), 1 otherwise. Throws gapsp::Error when even one
/// instance does not fit.
int johnson_batch_size(const sim::DeviceSpec& spec, const graph::CsrGraph& g,
                       double queue_factor, int row_buffers = 1);

/// Runs Algorithm 2, writing finished rows into `store` batch by batch
/// (original vertex order).
ApspResult ooc_johnson(const graph::CsrGraph& g, const ApspOptions& opts,
                       DistStore& store);

/// Outcome of sampling a few batches (Sec. IV-B2 cost model).
struct JohnsonSample {
  double kernel_seconds = 0.0;    ///< summed simulated MSSP kernel time
  double transfer_seconds = 0.0;  ///< summed simulated result-transfer time
  int bat = 0;
  int num_batches = 0;
  int sampled = 0;
};

/// Runs only the batches whose indices are listed in `batches` — the
/// sampling primitive of the Sec. IV-B2 cost model ("randomly choose k
/// batches to run").
JohnsonSample johnson_sample_batches(const graph::CsrGraph& g,
                                     const ApspOptions& opts,
                                     std::span<const int> batches);

}  // namespace gapsp::core
