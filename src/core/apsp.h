// Unified public entry point of the gapsp library.
//
//   auto store = gapsp::core::make_ram_store(g.num_vertices());
//   gapsp::core::ApspOptions opts;                 // simulated V100, kAuto
//   auto result = gapsp::core::solve_apsp(g, opts, *store);
//   dist_t d = store->at(result.stored_id(u), result.stored_id(v));
//
// With Algorithm::kAuto the Sec. IV selector (density filter + cost models)
// picks among the three out-of-core implementations.
#pragma once

#include "core/apsp_options.h"
#include "core/dist_store.h"
#include "core/selector.h"
#include "graph/csr_graph.h"

namespace gapsp::core {

/// Solves APSP into `store` using opts.algorithm, running the selector when
/// it is kAuto. When `report` is non-null and the selector ran, the full
/// selection report is copied there.
ApspResult solve_apsp(const graph::CsrGraph& g, const ApspOptions& opts,
                      DistStore& store, SelectorReport* report = nullptr,
                      const SelectorOptions& sel = {});

}  // namespace gapsp::core
