// Offline scrub & repair for kept distance stores.
//
// A serving fleet cannot wait for a query to trip over bit rot: the scrubber
// walks every tile of a kept store (raw + GAPSPSM1 sidecar, or GAPSPZ1 with
// its built-in frame checksums), reports damage, and — when given a repair
// source — rewrites the damaged tiles with recomputed truth. Exposed as
// `apsp_cli scrub`; see EXPERIMENTS.md for the walkthrough and DESIGN.md §13
// for where scrub sits in the failure-semantics matrix.
#pragma once

#include <string>
#include <vector>

#include "core/tile_error.h"
#include "util/retry.h"

namespace gapsp::sim {
class FaultInjector;
}  // namespace gapsp::sim
namespace gapsp::graph {
class CsrGraph;
}  // namespace gapsp::graph

namespace gapsp::core {

struct ScrubOptions {
  /// Rewrite damaged tiles using `repair_fn` (required when set). Without
  /// it the scrub only detects and reports.
  bool repair = false;
  TileRepairFn repair_fn;
  util::RetryPolicy retry;
  sim::FaultInjector* faults = nullptr;
  /// Raw stores only: (re)compute and write the checksum sidecar after the
  /// scan — from current contents when the store is clean or repaired, so a
  /// legacy store without a sidecar gains one.
  bool write_sums = false;
  /// Tile size used when no sidecar/store tiling dictates one.
  vidx_t tile = 256;
};

struct DamagedTile {
  vidx_t row_block = 0;
  vidx_t col_block = 0;
  bool repaired = false;
  std::string reason;
};

struct ScrubReport {
  vidx_t n = 0;
  vidx_t tile = 0;
  long long tiles = 0;      ///< tiles scanned
  long long corrupt = 0;    ///< tiles that failed their integrity check
  long long repaired = 0;
  long long unrepaired = 0;
  bool compressed = false;    ///< GAPSPZ1 store (self-checksummed frames)
  bool sums_present = false;  ///< raw store had a sidecar before the scrub
  bool sums_written = false;  ///< sidecar (re)written by this scrub
  /// First damaged tiles, bounded so a fully-rotten store stays reportable.
  std::vector<DamagedTile> damaged;

  bool clean() const { return corrupt == 0; }
  /// True when serving from this store is safe: nothing broken, or
  /// everything broken was repaired.
  bool ok() const { return unrepaired == 0; }
};

/// Scrubs the store at `path`. A raw store without a sidecar can only be
/// checked for readability (and gains a sidecar when opt.write_sums);
/// corruption detection needs the sidecar or the GAPSPZ1 frame checksums.
/// Throws IoError/CorruptError only for store-level damage that prevents
/// the walk entirely (missing file, unreadable GAPSPZ1 directory).
ScrubReport scrub_store(const std::string& path, const ScrubOptions& opt);

/// Repair source that recomputes tiles by bounded SSSP over the kept CSR.
/// `perm` is the solver's vertex permutation (stored index = perm[vertex]);
/// empty = identity. Thread-safe; each call runs its own Dijkstras. The
/// graph is captured by reference and must outlive the returned function.
TileRepairFn make_sssp_repair(const graph::CsrGraph& g,
                              std::vector<vidx_t> perm = {});

}  // namespace gapsp::core
