// Compressed host↔device transfer path: z1 tiles through the pinned
// staging lanes with decompress-on-device.
//
// The out-of-core drivers are transfer-bound — the O(n_d·n²) movement term
// is what the PR-1 overlap engine can only hide, never shrink — while the
// tiles they ship raw every round compress 11.3×/3.0× at rest (GAPSPZ1).
// This layer moves the compression onto the wire: each staged tile is
// z1-encoded on the host into a pinned wire buffer, charged on the link at
// its *wire* size, and materialized on device by a modeled decode kernel
// running at DeviceSpec::decode_gbps (Device::copy_z1). D2H returns encode
// on device and decode on the host side of the staging buffer. Transfer
// time becomes a function of tile entropy instead of n².
//
// Raw fallback: a tile only rides the compressed path when the encoded
// frame beats the raw transfer under the device's own rates — the threshold
// wire < raw · (1 − link_bandwidth / decode_rate) is derived ("autotuned")
// from the attached DeviceSpec at construction, and the sampled-entropy
// probe in the z1 encoder rejects incompressible tiles before the full
// greedy match. Fallback tiles go through the ordinary pinned lanes and are
// counted on both sides of the per-lane raw/wire byte split in
// DeviceMetrics, so the reported wire ratio is end-to-end honest.
//
// Failure semantics: the frame is the real carrier (the device buffer is
// produced by actually decoding it), and Device::copy_z1 runs its fault
// gates before materializing — a mid-decode fault retries the whole tile
// and never publishes a partial decode. See DESIGN.md §14.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/stream_pipeline.h"

namespace gapsp::core {

enum class TransferCompression {
  kAuto,  ///< on when the device's decode rate beats its host link
  kOn,    ///< force the compressed path (per-tile raw fallback still applies)
  kOff,   ///< legacy raw transfers only
};

const char* transfer_compression_name(TransferCompression mode);

/// Parses "auto" | "on" | "off". Unknown names are hard errors (throws
/// gapsp::Error), matching the --kernel-variant convention.
TransferCompression parse_transfer_compression(const std::string& name);

class TransferCodec {
 public:
  TransferCodec(sim::Device& dev, TransferCompression mode);
  ~TransferCodec();
  TransferCodec(const TransferCodec&) = delete;
  TransferCodec& operator=(const TransferCodec&) = delete;

  /// True when tiles are considered for the compressed path at all.
  bool enabled() const { return enabled_; }

  /// Bytes charged on the link by the most recent transfer through this
  /// codec (the frame size when it compressed, the raw size on fallback).
  /// Lets samplers report the compressed rate to the cost estimators.
  std::size_t last_wire_bytes() const { return last_wire_bytes_; }

  // ---- staged (async pinned-lane) transfers ----

  /// Stage `bytes` of pinned host `src` into device `dst` through `pipe`'s
  /// H2D lane, compressed when the frame wins. Drop-in replacement for
  /// StreamPipeline::stage_in.
  sim::Event stage_in(sim::StreamPipeline& pipe, void* dst, const void* src,
                      std::size_t bytes);

  /// Stage `bytes` of device `src` into pinned host `dst` through `pipe`'s
  /// D2H lane (encode-on-device when the frame wins), ordered after `after`.
  /// Drop-in replacement for StreamPipeline::stage_out.
  sim::Event stage_out(sim::StreamPipeline& pipe, void* dst, const void* src,
                       std::size_t bytes, sim::Event after);

  // ---- synchronous transfers (multi-device path) ----

  void h2d(sim::StreamId s, void* dst, const void* src, std::size_t bytes,
           bool pinned);
  void d2h(sim::StreamId s, void* dst, const void* src, std::size_t bytes,
           bool pinned);

 private:
  /// Probes + encodes `src` into the wire buffer; true when the frame beats
  /// the raw transfer under the autotuned threshold.
  bool encode_wins(const void* src, std::size_t bytes);
  void note_wire_capacity();

  sim::Device* dev_;
  bool enabled_ = false;
  double max_wire_frac_ = 0.0;  ///< autotuned fallback threshold
  std::vector<std::uint8_t> frame_;  ///< pinned wire staging (accounted)
  std::size_t pinned_noted_ = 0;
  std::size_t last_wire_bytes_ = 0;
};

}  // namespace gapsp::core
