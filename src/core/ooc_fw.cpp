#include "core/ooc_fw.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/checkpoint.h"
#include "core/device_kernels.h"
#include "core/transfer_codec.h"
#include "sim/stream_pipeline.h"
#include "util/timer.h"

namespace gapsp::core {

int fw_resident_blocks(bool overlap_transfers) {
  // Serial: A(i,j), A(i,k), A(k,j). Overlapped: A(i,k) stays single (it is
  // reused across a whole row of updates) while the row-panel and remainder
  // buffers become ping-pong pairs.
  return overlap_transfers ? 5 : 3;
}

vidx_t fw_block_size(const sim::DeviceSpec& spec, vidx_t n,
                     int resident_blocks) {
  // `resident_blocks` resident b×b tiles; keep ~5% slack for the runtime.
  // b is also capped at n (single-block in-core case).
  const double budget = 0.95 * static_cast<double>(spec.memory_bytes);
  const double b =
      std::sqrt(budget / (resident_blocks * static_cast<double>(sizeof(dist_t))));
  GAPSP_CHECK(b >= 32.0, "device too small for blocked Floyd-Warshall");
  return std::min<vidx_t>(n, static_cast<vidx_t>(b));
}

ApspResult ooc_floyd_warshall(const graph::CsrGraph& g,
                              const ApspOptions& opts, DistStore& store) {
  Timer wall;
  const vidx_t n = g.num_vertices();
  GAPSP_CHECK(store.n() == n, "store size does not match graph");
  sim::Device dev(opts.device);
  dev.set_trace(opts.trace);
  configure_kernels(dev, opts);
  FaultScope faults(dev, opts);
  const bool overlap = opts.overlap_transfers;
  const vidx_t b =
      fw_block_size(dev.spec(), n, fw_resident_blocks(overlap));
  const vidx_t nd = (n + b - 1) / b;
  auto bdim = [&](vidx_t t) { return std::min<vidx_t>(b, n - t * b); };

  // Round-level checkpointing: the store is the durable state (it already
  // holds every block round k wrote back by the time round k ends), so the
  // sidecar only records how many k-rounds completed under this exact
  // blocking of this exact graph.
  const bool use_ck = !opts.checkpoint_path.empty();
  std::uint64_t fp = 0;
  vidx_t start_k = 0;
  long long ck_written = 0;
  if (use_ck) {
    fp = graph_fingerprint(g);
    const std::int64_t shape[3] = {n, b, nd};
    fp = fnv1a(shape, sizeof(shape), fp);
    Checkpoint ck;
    if (opts.resume && read_checkpoint(opts.checkpoint_path, &ck) &&
        ck.algorithm ==
            static_cast<std::uint32_t>(Algorithm::kBlockedFloydWarshall) &&
        ck.fingerprint == fp && ck.n == n && ck.aux0 == b && ck.aux1 == nd) {
      start_k = static_cast<vidx_t>(
          std::clamp<std::int64_t>(ck.progress, 0, nd));
    }
  }
  // A resumed run continues on the partially-relaxed matrix already in the
  // store; re-initializing would discard the completed rounds.
  if (start_k == 0) init_weight_matrix(g, store);

  sim::StreamPipeline pipe(dev, overlap);
  TransferCodec codec(dev, opts.transfer_compression);
  const std::size_t elems = static_cast<std::size_t>(b) * b;
  // col holds A(i,k) for a whole row of stage-3 updates (and A(k,k) through
  // stages 1–2), so it never ping-pongs; row and tile double up when the
  // pipeline overlaps.
  sim::PingPong<dist_t> col(pipe, elems, "A(i,k)", 1);
  sim::PingPong<dist_t> row(pipe, elems, "A(k,j)");
  sim::PingPong<dist_t> tile(pipe, elems, "A(i,j)");

  // Prefetch block (ti,tj) into the next slot of `pp`: the H2D lane waits
  // until the slot's previous consumer released it, so in overlap mode the
  // copy runs under whatever kernel the compute stream is executing.
  auto load = [&](sim::PingPong<dist_t>& pp, vidx_t ti, vidx_t tj) {
    const int s = pp.acquire(pipe.in_stream());
    const vidx_t rows = bdim(ti), cols = bdim(tj);
    store.read_block(ti * b, tj * b, rows, cols, pp.host_ptr(s), cols);
    pp.set_ready(s, codec.stage_in(pipe, pp.device_ptr(s), pp.host_ptr(s),
                                   static_cast<std::size_t>(rows) * cols *
                                       sizeof(dist_t)));
    return s;
  };
  // Drain slot `s` of `pp` to the store on the D2H lane, after everything
  // issued on compute so far, then free the slot for the next prefetch.
  auto save = [&](sim::PingPong<dist_t>& pp, int s, vidx_t ti, vidx_t tj) {
    const vidx_t rows = bdim(ti), cols = bdim(tj);
    const sim::Event drained = codec.stage_out(
        pipe, pp.host_ptr(s), pp.device_ptr(s),
        static_cast<std::size_t>(rows) * cols * sizeof(dist_t),
        pipe.computed());
    store.write_block(ti * b, tj * b, rows, cols, pp.host_ptr(s), cols);
    pp.release(s, drained);
  };

  const sim::StreamId compute = pipe.compute_stream();

  for (vidx_t k = start_k; k < nd; ++k) {
    const vidx_t dk = bdim(k);
    // --- Stage 1: close the diagonal block with an in-core blocked FW ---
    // col doubles as the diagonal block A(k,k) through stages 1 and 2.
    const int diag = load(col, k, k);
    pipe.consume(col.ready(diag));
    dev_blocked_fw(dev, compute, col.device_ptr(diag), dk, dk, opts.fw_tile);
    save(col, diag, k, k);

    // --- Stage 2: row panels A(k,j) and column panels A(i,k) ---
    for (vidx_t j = 0; j < nd; ++j) {
      if (j == k) continue;
      const int t = load(tile, k, j);
      pipe.consume(tile.ready(t));
      // A(k,j) = min(A(k,j), A(k,k) ⊗ A(k,j))
      dev_minplus(dev, compute, tile.device_ptr(t), bdim(j),
                  col.device_ptr(diag), dk, tile.device_ptr(t), bdim(j), dk,
                  dk, bdim(j), opts.fw_tile);
      save(tile, t, k, j);
    }
    for (vidx_t i = 0; i < nd; ++i) {
      if (i == k) continue;
      const int t = load(tile, i, k);
      pipe.consume(tile.ready(t));
      // A(i,k) = min(A(i,k), A(i,k) ⊗ A(k,k))
      dev_minplus(dev, compute, tile.device_ptr(t), dk, tile.device_ptr(t),
                  dk, col.device_ptr(diag), dk, bdim(i), dk, dk, opts.fw_tile);
      save(tile, t, i, k);
    }
    // The next col refill (stage 3's first A(i,k)) must also wait for the
    // stage-2 kernels that read the diagonal out of the same buffer.
    col.release(diag, pipe.computed());

    // --- Stage 3: A(i,j) = min(A(i,j), A(i,k) ⊗ A(k,j)) ---
    for (vidx_t i = 0; i < nd; ++i) {
      if (i == k) continue;
      const int ci = load(col, i, k);  // cached for the whole row of updates
      pipe.consume(col.ready(ci));
      for (vidx_t j = 0; j < nd; ++j) {
        if (j == k) continue;
        const int rj = load(row, k, j);
        const int t = load(tile, i, j);
        pipe.consume(row.ready(rj));
        pipe.consume(tile.ready(t));
        dev_minplus(dev, compute, tile.device_ptr(t), bdim(j),
                    col.device_ptr(ci), dk, row.device_ptr(rj), bdim(j),
                    bdim(i), dk, bdim(j), opts.fw_tile);
        row.release(rj, pipe.computed());
        save(tile, t, i, j);
      }
      col.release(ci, pipe.computed());
    }
    // Every store.write_block of round k has executed (the functional copy
    // happens at issue time), so progress = k+1 is durable.
    if (use_ck) {
      Checkpoint ck;
      ck.algorithm =
          static_cast<std::uint32_t>(Algorithm::kBlockedFloydWarshall);
      ck.fingerprint = fp;
      ck.n = n;
      ck.progress = k + 1;
      ck.aux0 = b;
      ck.aux1 = nd;
      write_checkpoint(opts.checkpoint_path, ck);
      ++ck_written;
    }
  }
  pipe.drain();
  dev.synchronize();
  if (use_ck) remove_checkpoint(opts.checkpoint_path);

  ApspResult result;
  result.used = Algorithm::kBlockedFloydWarshall;
  result.metrics = metrics_from_device(dev, wall.seconds());
  result.metrics.fw_num_blocks = static_cast<int>(nd);
  result.metrics.checkpoints_written = ck_written;
  result.metrics.resumed_progress = start_k;
  return result;
}

}  // namespace gapsp::core
