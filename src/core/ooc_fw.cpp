#include "core/ooc_fw.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/device_kernels.h"
#include "util/timer.h"

namespace gapsp::core {

vidx_t fw_block_size(const sim::DeviceSpec& spec, vidx_t n) {
  // Three resident blocks (A(i,j), A(i,k), A(k,j)); keep ~5% slack for the
  // runtime. b is also capped at n (single-block in-core case).
  const double budget = 0.95 * static_cast<double>(spec.memory_bytes);
  const double b = std::sqrt(budget / (3.0 * sizeof(dist_t)));
  GAPSP_CHECK(b >= 32.0, "device too small for blocked Floyd-Warshall");
  return std::min<vidx_t>(n, static_cast<vidx_t>(b));
}

ApspResult ooc_floyd_warshall(const graph::CsrGraph& g,
                              const ApspOptions& opts, DistStore& store) {
  Timer wall;
  const vidx_t n = g.num_vertices();
  GAPSP_CHECK(store.n() == n, "store size does not match graph");
  sim::Device dev(opts.device);
  dev.set_trace(opts.trace);
  const vidx_t b = fw_block_size(dev.spec(), n);
  const vidx_t nd = (n + b - 1) / b;
  auto bdim = [&](vidx_t t) { return std::min<vidx_t>(b, n - t * b); };

  init_weight_matrix(g, store);

  auto tile_buf = dev.alloc<dist_t>(static_cast<std::size_t>(b) * b, "A(i,j)");
  auto row_buf = dev.alloc<dist_t>(static_cast<std::size_t>(b) * b, "A(k,j)");
  auto col_buf = dev.alloc<dist_t>(static_cast<std::size_t>(b) * b, "A(i,k)");
  std::vector<dist_t> host(static_cast<std::size_t>(b) * b);  // pinned staging

  const sim::StreamId s = sim::kDefaultStream;

  auto load = [&](sim::DeviceBuffer<dist_t>& buf, vidx_t ti, vidx_t tj) {
    const vidx_t rows = bdim(ti), cols = bdim(tj);
    store.read_block(ti * b, tj * b, rows, cols, host.data(), cols);
    dev.memcpy_h2d(s, buf.data(), host.data(),
                   static_cast<std::size_t>(rows) * cols * sizeof(dist_t),
                   /*async=*/false, /*pinned=*/true);
  };
  auto save = [&](const sim::DeviceBuffer<dist_t>& buf, vidx_t ti, vidx_t tj) {
    const vidx_t rows = bdim(ti), cols = bdim(tj);
    dev.memcpy_d2h(s, host.data(), buf.data(),
                   static_cast<std::size_t>(rows) * cols * sizeof(dist_t),
                   /*async=*/false, /*pinned=*/true);
    store.write_block(ti * b, tj * b, rows, cols, host.data(), cols);
  };

  for (vidx_t k = 0; k < nd; ++k) {
    const vidx_t dk = bdim(k);
    // --- Stage 1: close the diagonal block with an in-core blocked FW ---
    load(row_buf, k, k);  // row_buf doubles as the diagonal block A(k,k)
    dev_blocked_fw(dev, s, row_buf.data(), dk, dk, opts.fw_tile);
    save(row_buf, k, k);

    // --- Stage 2: row panels A(k,j) and column panels A(i,k) ---
    // row_buf keeps the closed A(k,k) resident through this stage.
    for (vidx_t j = 0; j < nd; ++j) {
      if (j == k) continue;
      load(tile_buf, k, j);
      // A(k,j) = min(A(k,j), A(k,k) ⊗ A(k,j))
      dev_minplus(dev, s, tile_buf.data(), bdim(j), row_buf.data(), dk,
                  tile_buf.data(), bdim(j), dk, dk, bdim(j), opts.fw_tile);
      save(tile_buf, k, j);
    }
    for (vidx_t i = 0; i < nd; ++i) {
      if (i == k) continue;
      load(tile_buf, i, k);
      // A(i,k) = min(A(i,k), A(i,k) ⊗ A(k,k))
      dev_minplus(dev, s, tile_buf.data(), dk, tile_buf.data(), dk,
                  row_buf.data(), dk, bdim(i), dk, dk, opts.fw_tile);
      save(tile_buf, i, k);
    }

    // --- Stage 3: A(i,j) = min(A(i,j), A(i,k) ⊗ A(k,j)) ---
    for (vidx_t i = 0; i < nd; ++i) {
      if (i == k) continue;
      load(col_buf, i, k);  // cached for the whole row of updates
      for (vidx_t j = 0; j < nd; ++j) {
        if (j == k) continue;
        load(row_buf, k, j);
        load(tile_buf, i, j);
        dev_minplus(dev, s, tile_buf.data(), bdim(j), col_buf.data(), dk,
                    row_buf.data(), bdim(j), bdim(i), dk, bdim(j),
                    opts.fw_tile);
        save(tile_buf, i, j);
      }
    }
  }
  dev.synchronize();

  ApspResult result;
  result.used = Algorithm::kBlockedFloydWarshall;
  result.metrics = metrics_from_device(dev, wall.seconds());
  result.metrics.fw_num_blocks = static_cast<int>(nd);
  return result;
}

}  // namespace gapsp::core
