// Block-granular read cache over a solved distance store.
//
// The solved n×n matrix is orders of magnitude larger than the input
// (dist_store.h) and, for the file-backed store, lives on disk — a service
// answering millions of point queries cannot afford a seek+read per element.
// The cache holds square tiles of the matrix keyed on (row_block, col_block)
// in a sharded LRU: per-shard locking keeps concurrent readers from
// serializing on one global mutex, and a byte budget (not an entry count)
// bounds host memory no matter how ragged the edge tiles are.
//
// Lives in core (it depends only on util) so both the query service
// (service/query_engine.h) and path extraction (core/path_extract.h) read
// through it instead of paying DistStore::at() per element.
//
// Negative-tile support: kInf-dominated matrices (road-like, disconnected)
// are mostly tiles in which every element is kInf. A loader that recognizes
// such a tile — from the compressed store's directory for free, or by
// scanning what it just read — returns the one shared constant tile
// registered via set_negative_tile(); entries backed by it charge zero
// bytes against the budget, so a huge unreachable region never evicts real
// data.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "util/common.h"

namespace gapsp::core {

/// Aggregate cache counters, summed over shards.
struct CacheStats {
  long long hits = 0;
  long long misses = 0;
  long long evictions = 0;
  /// Misses whose loader resolved to the shared all-kInf tile; those
  /// entries are cached at zero byte cost.
  long long negative_loads = 0;
  std::size_t bytes_cached = 0;
  std::size_t capacity_bytes = 0;

  double hit_rate() const {
    const auto total = static_cast<double>(hits + misses);
    return total == 0.0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// A cached block. Immutable once published and shared with readers, so an
/// eviction never invalidates a tile a query is still copying from.
using BlockData = std::shared_ptr<const std::vector<dist_t>>;

class BlockCache {
 public:
  /// `capacity_bytes` is split evenly across `shards` independent LRU lists.
  explicit BlockCache(std::size_t capacity_bytes, int shards = 8);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Registers the shared all-kInf tile. A loader returning exactly this
  /// pointer marks its block negative: cached, but charged no bytes. Set it
  /// before the first get_or_load and never change it mid-flight.
  void set_negative_tile(BlockData tile) { negative_ = std::move(tile); }

  using Loader = std::function<BlockData()>;

  /// Returns the block keyed (row_block, col_block), invoking `loader` on a
  /// miss and caching its result. The loader runs outside the shard lock so
  /// a slow disk read never blocks hits on the same shard; when two threads
  /// race on one key the first published copy wins and the loser's load is
  /// discarded. Eviction pops least-recently-used entries until the shard is
  /// back under budget, but always keeps the entry just inserted (a single
  /// over-budget block is served, not thrashed).
  BlockData get_or_load(vidx_t row_block, vidx_t col_block,
                        const Loader& loader);

  CacheStats stats() const;

  /// Drops every entry; counters keep accumulating.
  void clear();

 private:
  struct Entry {
    std::uint64_t key = 0;
    BlockData data;
    std::size_t bytes = 0;  ///< charged size (0 for the negative tile)
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
    std::size_t bytes = 0;
    long long hits = 0;
    long long misses = 0;
    long long evictions = 0;
    long long negative_loads = 0;
  };

  Shard& shard_of(std::uint64_t key);

  std::size_t capacity_bytes_;
  std::size_t shard_capacity_;
  std::vector<Shard> shards_;
  BlockData negative_;
};

}  // namespace gapsp::core
