// Block-granular read cache over a solved distance store.
//
// The solved n×n matrix is orders of magnitude larger than the input
// (dist_store.h) and, for the file-backed store, lives on disk — a service
// answering millions of point queries cannot afford a seek+read per element.
// The cache holds square tiles of the matrix keyed on (row_block, col_block)
// in a sharded LRU: per-shard locking keeps concurrent readers from
// serializing on one global mutex, and a byte budget (not an entry count)
// bounds host memory no matter how ragged the edge tiles are.
//
// Lives in core (it depends only on util) so both the query service
// (service/query_engine.h) and path extraction (core/path_extract.h) read
// through it instead of paying DistStore::at() per element.
//
// Negative-tile support: kInf-dominated matrices (road-like, disconnected)
// are mostly tiles in which every element is kInf. A loader that recognizes
// such a tile — from the compressed store's directory for free, or by
// scanning what it just read — returns the one shared constant tile
// registered via set_negative_tile(); entries backed by it charge zero
// bytes against the budget, so a huge unreachable region never evicts real
// data.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/tile_error.h"
#include "util/common.h"

namespace gapsp::core {

/// Aggregate cache counters, summed over shards.
struct CacheStats {
  long long hits = 0;
  long long misses = 0;
  long long evictions = 0;
  /// Misses whose loader resolved to the shared all-kInf tile; those
  /// entries are cached at zero byte cost.
  long long negative_loads = 0;
  /// Tiles currently quarantined (loader raised a persistent TileError).
  long long quarantined_tiles = 0;
  /// Misses answered by an existing quarantine mark without re-reading.
  long long quarantine_hits = 0;
  std::size_t bytes_cached = 0;
  std::size_t capacity_bytes = 0;

  double hit_rate() const {
    const auto total = static_cast<double>(hits + misses);
    return total == 0.0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// A cached block. Immutable once published and shared with readers, so an
/// eviction never invalidates a tile a query is still copying from.
using BlockData = std::shared_ptr<const std::vector<dist_t>>;

class BlockCache {
 public:
  /// `capacity_bytes` is split across `shards` independent LRU lists, the
  /// division remainder going to the leading shards so no byte of budget is
  /// lost to truncation.
  explicit BlockCache(std::size_t capacity_bytes, int shards = 8);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Registers the shared all-kInf tile. A loader returning exactly this
  /// pointer marks its block negative: cached, but charged no bytes. Set it
  /// before the first get_or_load and never change it mid-flight.
  void set_negative_tile(BlockData tile) { negative_ = std::move(tile); }

  using Loader = std::function<BlockData()>;

  /// Returns the block keyed (row_block, col_block), invoking `loader` on a
  /// miss and caching its result. The loader runs outside the shard lock so
  /// a slow disk read never blocks hits on the same shard; when two threads
  /// race on one key the first published copy wins and the loser's load is
  /// discarded. Eviction pops least-recently-used entries until the shard is
  /// back under budget, but always keeps the entry just inserted (a single
  /// over-budget block is served, not thrashed).
  ///
  /// Failure semantics: if the loader throws but a racing thread has
  /// meanwhile published a valid copy of the same key, that copy is served
  /// and the exception is swallowed (the data exists; the loser's read
  /// outcome is irrelevant). Otherwise a TileError{kCorrupt,kTransient}
  /// from the loader marks the key quarantined — later misses on it throw
  /// TileError(kQuarantined) without re-reading the sick byte range — and
  /// every loader exception (quarantining or not) propagates to the caller.
  BlockData get_or_load(vidx_t row_block, vidx_t col_block,
                        const Loader& loader);

  /// Force-publishes a block (repair path): clears any quarantine mark for
  /// the key and replaces whatever the cache holds for it.
  void publish(vidx_t row_block, vidx_t col_block, BlockData data);

  bool is_quarantined(vidx_t row_block, vidx_t col_block) const;

  /// Drops every quarantine mark (e.g. after an offline scrub repaired the
  /// store). Returns the number of marks cleared.
  long long clear_quarantine();

  CacheStats stats() const;

  /// Drops every entry; counters and quarantine marks keep accumulating.
  void clear();

 private:
  struct Entry {
    std::uint64_t key = 0;
    BlockData data;
    std::size_t bytes = 0;  ///< charged size (0 for the negative tile)
  };
  struct Shard {
    mutable std::mutex mu;
    std::size_t capacity = 0;  ///< this shard's slice of the byte budget
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
    std::unordered_set<std::uint64_t> quarantined;
    std::size_t bytes = 0;
    long long hits = 0;
    long long misses = 0;
    long long evictions = 0;
    long long negative_loads = 0;
    long long quarantine_hits = 0;
  };

  static std::uint64_t key_of(vidx_t row_block, vidx_t col_block) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(row_block))
            << 32) |
           static_cast<std::uint32_t>(col_block);
  }

  Shard& shard_of(std::uint64_t key);
  const Shard& shard_of(std::uint64_t key) const;
  /// Inserts at LRU front and evicts over-budget entries. Caller holds s.mu.
  BlockData insert_locked(Shard& s, std::uint64_t key, BlockData data,
                          std::size_t size);

  std::size_t capacity_bytes_;
  std::vector<Shard> shards_;
  BlockData negative_;
};

}  // namespace gapsp::core
