#include "core/path_extract.h"

#include <algorithm>

namespace gapsp::core {

PathExtractor::PathExtractor(const graph::CsrGraph& g, const DistStore& store,
                             const ApspResult& result)
    : g_(g), reverse_(g.transpose()), store_(store), perm_(result.perm) {
  GAPSP_CHECK(store.n() == g.num_vertices(), "store does not match graph");
  GAPSP_CHECK(perm_.empty() ||
                  perm_.size() == static_cast<std::size_t>(g.num_vertices()),
              "result permutation does not match graph");
}

dist_t PathExtractor::distance(vidx_t u, vidx_t v) const {
  const vidx_t su = perm_.empty() ? u : perm_[u];
  const vidx_t sv = perm_.empty() ? v : perm_[v];
  return store_.at(su, sv);
}

std::vector<vidx_t> PathExtractor::path(vidx_t u, vidx_t v) const {
  const vidx_t n = g_.num_vertices();
  GAPSP_CHECK(u >= 0 && u < n && v >= 0 && v < n, "vertex out of range");
  if (u == v) return {u};
  if (distance(u, v) >= kInf) return {};

  // Backtrack from v. With zero-weight edges several candidates can share
  // the same distance; preferring strictly-closer predecessors and marking
  // visited vertices guarantees termination, and a valid chain always
  // exists because the distances came from a real shortest-path run.
  std::vector<vidx_t> rev_path{v};
  std::vector<std::uint8_t> visited(static_cast<std::size_t>(n), 0);
  visited[v] = 1;
  vidx_t cur = v;
  for (vidx_t steps = 0; steps < n && cur != u; ++steps) {
    const dist_t d_cur = distance(u, cur);
    const auto preds = reverse_.neighbors(cur);
    const auto wts = reverse_.weights(cur);
    vidx_t best = -1;
    dist_t best_d = kInf;
    for (std::size_t i = 0; i < preds.size(); ++i) {
      const vidx_t w = preds[i];
      if (visited[w] && w != u) continue;
      const dist_t dw = distance(u, w);
      if (sat_add(dw, wts[i]) != d_cur) continue;
      if (dw < best_d || (dw == best_d && w == u)) {
        best_d = dw;
        best = w;
      }
    }
    GAPSP_CHECK(best != -1, "backtracking dead end: inconsistent distances");
    visited[best] = 1;
    rev_path.push_back(best);
    cur = best;
  }
  GAPSP_CHECK(cur == u, "path reconstruction exceeded n steps");
  std::reverse(rev_path.begin(), rev_path.end());
  return rev_path;
}

dist_t PathExtractor::walk_length(const std::vector<vidx_t>& path) const {
  if (path.empty()) return kInf;
  dist_t total = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto nbr = g_.neighbors(path[i]);
    const auto wts = g_.weights(path[i]);
    dist_t best = kInf;
    for (std::size_t e = 0; e < nbr.size(); ++e) {
      if (nbr[e] == path[i + 1]) best = std::min(best, wts[e]);
    }
    if (best >= kInf) return kInf;  // not an edge
    total = sat_add(total, best);
  }
  return total;
}

}  // namespace gapsp::core
