#include "core/path_extract.h"

#include <algorithm>

namespace gapsp::core {

PathExtractor::PathExtractor(const graph::CsrGraph& g, const DistStore& store,
                             const ApspResult& result,
                             std::size_t cache_bytes, StoreChecksums checksums,
                             TileReaderOptions reader_opt)
    : g_(g),
      reverse_(g.transpose()),
      store_(store),
      perm_(result.perm),
      cache_(cache_bytes, /*shards=*/4),
      reader_(store, std::move(checksums), reader_opt) {
  GAPSP_CHECK(store.n() == g.num_vertices(), "store does not match graph");
  GAPSP_CHECK(perm_.empty() ||
                  perm_.size() == static_cast<std::size_t>(g.num_vertices()),
              "result permutation does not match graph");
  // Same tiling policy as the query service: follow the store's native tile
  // side when it has one so a miss never decompresses two tiles; a sidecar
  // grid likewise so every miss is a verifiable unit.
  block_ = store.tile_size() > 0 ? store.tile_size()
           : reader_.checksums().present() ? reader_.checksums().tile
                                           : 256;
  block_ = std::min<vidx_t>(block_, std::max<vidx_t>(1, store.n()));
  num_blocks_ =
      store.n() == 0 ? 0 : (store.n() + block_ - 1) / block_;
  inf_tile_ = std::make_shared<const std::vector<dist_t>>(
      static_cast<std::size_t>(block_) * static_cast<std::size_t>(block_),
      kInf);
  cache_.set_negative_tile(inf_tile_);
}

BlockData PathExtractor::fetch(vidx_t block_row, vidx_t block_col) const {
  return cache_.get_or_load(block_row, block_col, [&]() -> BlockData {
    const vidx_t n = store_.n();
    const vidx_t row0 = block_row * block_;
    const vidx_t col0 = block_col * block_;
    const vidx_t rows = std::min<vidx_t>(block_, n - row0);
    const vidx_t cols = std::min<vidx_t>(block_, n - col0);
    if (store_.block_known_inf(row0, col0, rows, cols)) return inf_tile_;
    auto data = std::make_shared<std::vector<dist_t>>(
        static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
    reader_.read_tile(block_row, block_col, row0, col0, rows, cols,
                      data->data());
    for (const dist_t d : *data) {
      if (d != kInf) return data;
    }
    return inf_tile_;
  });
}

dist_t PathExtractor::distance(vidx_t u, vidx_t v) const {
  GAPSP_CHECK(u >= 0 && u < store_.n() && v >= 0 && v < store_.n(),
              "vertex out of range");
  const vidx_t su = perm_.empty() ? u : perm_[u];
  const vidx_t sv = perm_.empty() ? v : perm_[v];
  const vidx_t bi = su / block_;
  const vidx_t bj = sv / block_;
  const BlockData tile = fetch(bi, bj);
  const vidx_t cols = std::min<vidx_t>(block_, store_.n() - bj * block_);
  return (*tile)[static_cast<std::size_t>(su - bi * block_) *
                     static_cast<std::size_t>(cols) +
                 static_cast<std::size_t>(sv - bj * block_)];
}

std::vector<vidx_t> PathExtractor::path(vidx_t u, vidx_t v) const {
  const vidx_t n = g_.num_vertices();
  GAPSP_CHECK(u >= 0 && u < n && v >= 0 && v < n, "vertex out of range");
  if (u == v) return {u};
  if (distance(u, v) >= kInf) return {};

  // Backtrack from v. With zero-weight edges several candidates can share
  // the same distance; preferring strictly-closer predecessors and marking
  // visited vertices guarantees termination, and a valid chain always
  // exists because the distances came from a real shortest-path run.
  std::vector<vidx_t> rev_path{v};
  std::vector<std::uint8_t> visited(static_cast<std::size_t>(n), 0);
  visited[v] = 1;
  vidx_t cur = v;
  for (vidx_t steps = 0; steps < n && cur != u; ++steps) {
    const dist_t d_cur = distance(u, cur);
    const auto preds = reverse_.neighbors(cur);
    const auto wts = reverse_.weights(cur);
    vidx_t best = -1;
    dist_t best_d = kInf;
    for (std::size_t i = 0; i < preds.size(); ++i) {
      const vidx_t w = preds[i];
      if (visited[w] && w != u) continue;
      const dist_t dw = distance(u, w);
      if (sat_add(dw, wts[i]) != d_cur) continue;
      if (dw < best_d || (dw == best_d && w == u)) {
        best_d = dw;
        best = w;
      }
    }
    GAPSP_CHECK(best != -1, "backtracking dead end: inconsistent distances");
    visited[best] = 1;
    rev_path.push_back(best);
    cur = best;
  }
  GAPSP_CHECK(cur == u, "path reconstruction exceeded n steps");
  std::reverse(rev_path.begin(), rev_path.end());
  return rev_path;
}

dist_t PathExtractor::walk_length(const std::vector<vidx_t>& path) const {
  if (path.empty()) return kInf;
  dist_t total = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto nbr = g_.neighbors(path[i]);
    const auto wts = g_.weights(path[i]);
    dist_t best = kInf;
    for (std::size_t e = 0; e < nbr.size(); ++e) {
      if (nbr[e] == path[i + 1]) best = std::min(best, wts[e]);
    }
    if (best >= kInf) return kInf;  // not an edge
    total = sat_add(total, best);
  }
  return total;
}

}  // namespace gapsp::core
