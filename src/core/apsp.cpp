#include "core/apsp.h"

#include "core/ooc_boundary.h"
#include "core/ooc_fw.h"
#include "core/ooc_johnson.h"

namespace gapsp::core {

const char* algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kAuto:
      return "auto";
    case Algorithm::kBlockedFloydWarshall:
      return "blocked-floyd-warshall";
    case Algorithm::kJohnson:
      return "johnson";
    case Algorithm::kBoundary:
      return "boundary";
  }
  return "?";
}

const char* sssp_kernel_name(SsspKernel k) {
  switch (k) {
    case SsspKernel::kNearFar:
      return "near-far";
    case SsspKernel::kDeltaStepping:
      return "delta-stepping";
    case SsspKernel::kBellmanFord:
      return "bellman-ford";
  }
  return "?";
}

ApspResult solve_apsp(const graph::CsrGraph& g, const ApspOptions& opts,
                      DistStore& store, SelectorReport* report,
                      const SelectorOptions& sel) {
  GAPSP_CHECK(g.num_vertices() > 0, "empty graph");
  Algorithm algo = opts.algorithm;
  if (algo == Algorithm::kAuto) {
    const SelectorReport r = select_algorithm(g, opts, sel);
    if (report != nullptr) *report = r;
    algo = r.chosen;
  }
  switch (algo) {
    case Algorithm::kBlockedFloydWarshall:
      return ooc_floyd_warshall(g, opts, store);
    case Algorithm::kJohnson:
      return ooc_johnson(g, opts, store);
    case Algorithm::kBoundary:
      return ooc_boundary(g, opts, store);
    case Algorithm::kAuto:
      break;
  }
  throw Error("selector returned kAuto");
}

}  // namespace gapsp::core
